// Tests for the Section 5 step model: routing proceeding hand-in-hand with
// the information constructions, Theorem 1 (recoveries don't hurt optimal
// routing), and the Theorem 3/4 instrumentation.

#include <gtest/gtest.h>

#include "src/core/dynamic_simulation.h"
#include "src/core/network.h"
#include "src/core/scenario.h"
#include "src/fault/safety.h"

namespace lgfi {
namespace {

TEST(DynamicSimulation, FaultFreeMessageTakesMinimalPath) {
  const MeshTopology mesh(2, 10);
  DynamicSimulation sim(mesh, FaultSchedule{});
  const int id = sim.launch_message(Coord{0, 0}, Coord{7, 5});
  sim.run();
  const auto& msg = sim.message(id);
  EXPECT_TRUE(msg.delivered);
  EXPECT_EQ(msg.header.total_steps(), 12);
  EXPECT_EQ(msg.detours(), 0);
  EXPECT_EQ(msg.end_step, 12) << "one hop per step, launched at step 0";
}

TEST(DynamicSimulation, StaticFaultsConvergeThenRouteMinimallyIfSafe) {
  // Faults occur before the routing starts (p >= 1); after convergence a
  // safe-source message is minimal, as in the static world.
  const MeshTopology mesh(2, 12);
  FaultSchedule schedule;
  for (const auto& c : box_fault_placement(mesh, Box(Coord{8, 8}, Coord{9, 9})))
    schedule.add_fail(0, c);
  DynamicSimulation sim(mesh, schedule);
  for (int i = 0; i < 60; ++i) sim.step();  // let everything converge

  const int id = sim.launch_message(Coord{0, 0}, Coord{6, 6});
  sim.run();
  const auto& msg = sim.message(id);
  EXPECT_TRUE(msg.delivered);
  EXPECT_EQ(msg.detours(), 0);
}

TEST(DynamicSimulation, OccurrenceRecordsMeasureConvergence) {
  const MeshTopology mesh(3, 8);
  FaultSchedule schedule;
  for (const auto& c : figure1_faults()) schedule.add_fail(2, c);
  DynamicSimulation sim(mesh, schedule);
  sim.run(200);
  ASSERT_EQ(sim.occurrences().size(), 1u);
  const auto& rec = sim.occurrences()[0];
  EXPECT_EQ(rec.step, 2);
  EXPECT_GT(rec.rounds_labeling, 0);
  EXPECT_LE(rec.rounds_labeling, 6);
  EXPECT_GT(rec.rounds_identification, rec.rounds_labeling);
  EXPECT_GE(rec.rounds_boundary, rec.rounds_identification - 2);
  EXPECT_EQ(rec.e_max_after, 3);
  EXPECT_TRUE(rec.stabilized_before_next);
}

TEST(DynamicSimulation, LambdaSpeedsUpConvergenceInSteps) {
  // With lambda rounds per step, stabilization takes ~1/lambda as many steps.
  auto steps_to_converge = [](int lambda) {
    const MeshTopology mesh(3, 8);
    FaultSchedule schedule;
    for (const auto& c : figure1_faults()) schedule.add_fail(0, c);
    DynamicSimulationOptions opts;
    opts.lambda = lambda;
    DynamicSimulation sim(mesh, schedule, opts);
    sim.run(2000);
    const auto& rec = sim.occurrences()[0];
    return (rec.rounds_boundary + lambda - 1) / lambda;
  };
  const int steps1 = steps_to_converge(1);
  const int steps4 = steps_to_converge(4);
  EXPECT_LT(steps4, steps1);
  EXPECT_LE(steps4, steps1 / 2);
}

TEST(DynamicSimulation, MessageSurvivesMidRouteFault) {
  // A block appears right in the message's path while it travels.
  const MeshTopology mesh(2, 16);
  FaultSchedule schedule;
  for (const auto& c : box_fault_placement(mesh, Box(Coord{7, 8}, Coord{10, 9})))
    schedule.add_fail(4, c);
  DynamicSimulation sim(mesh, schedule);
  const int id = sim.launch_message(Coord{8, 1}, Coord{8, 14});
  sim.run(4000);
  const auto& msg = sim.message(id);
  EXPECT_TRUE(msg.delivered) << "dynamic fault must not kill the route";
  EXPECT_GT(msg.detours(), 0) << "the new block forces a detour";
  ASSERT_EQ(msg.distance_at_occurrence.size(), 1u);
  EXPECT_LE(msg.distance_at_occurrence[0], msg.initial_distance);
}

TEST(DynamicSimulation, Theorem1RecoveryDoesNotHurtOptimality) {
  // Recover a fault before launching: once constructions stabilize, a path
  // through the recovered area is minimal again (Theorem 1's spirit).
  const MeshTopology mesh(2, 12);
  FaultSchedule schedule;
  for (const auto& c : box_fault_placement(mesh, Box(Coord{5, 5}, Coord{6, 6})))
    schedule.add_fail(0, c);
  for (const auto& c : box_fault_placement(mesh, Box(Coord{5, 5}, Coord{6, 6})))
    schedule.add_recover(30, c);
  DynamicSimulation sim(mesh, schedule);
  for (int i = 0; i < 90; ++i) sim.step();

  const int id = sim.launch_message(Coord{5, 0}, Coord{5, 11});
  sim.run(4000);
  const auto& msg = sim.message(id);
  EXPECT_TRUE(msg.delivered);
  EXPECT_EQ(msg.detours(), 0) << "stale boundary info must not cause detours";
}

TEST(DynamicSimulation, TimelineFeedsTheoremBounds) {
  const MeshTopology mesh(2, 14);
  FaultSchedule schedule;
  schedule.add_fail(0, Coord{4, 4});
  schedule.add_fail(40, Coord{9, 9});
  schedule.add_fail(80, Coord{4, 9});
  DynamicSimulation sim(mesh, schedule);
  const int id = sim.launch_message(Coord{0, 0}, Coord{12, 12});
  sim.run(4000);
  EXPECT_TRUE(sim.message(id).delivered);

  const auto tl = sim.timeline(0);
  ASSERT_EQ(tl.t.size(), 3u);
  EXPECT_EQ(tl.t[0], 0);
  EXPECT_EQ(tl.t[1], 40);
  EXPECT_GT(tl.e_max, 0);
  const auto bound = theorem4_bound(tl, sim.message(id).initial_distance);
  EXPECT_EQ(bound.max_extra_steps, 2 * bound.max_detours);
  EXPECT_GE(bound.max_extra_steps, sim.message(id).detours())
      << "Theorem 4 must bound the measured extra steps";
}

TEST(DynamicSimulation, InfoModesAllDeliver) {
  for (const InfoMode mode : {InfoMode::kLimitedGlobal, InfoMode::kNone,
                              InfoMode::kInstantGlobal, InfoMode::kDelayedGlobal}) {
    const MeshTopology mesh(2, 12);
    FaultSchedule schedule;
    for (const auto& c : box_fault_placement(mesh, Box(Coord{4, 5}, Coord{7, 6})))
      schedule.add_fail(0, c);
    DynamicSimulationOptions opts;
    opts.info_mode = mode;
    DynamicSimulation sim(mesh, schedule, opts);
    for (int i = 0; i < 60; ++i) sim.step();
    const int id = sim.launch_message(Coord{5, 1}, Coord{5, 10});
    sim.run(4000);
    EXPECT_TRUE(sim.message(id).delivered) << "mode " << static_cast<int>(mode);
  }
}

TEST(Network, QuickstartFacade) {
  Network net(MeshTopology(3, 8));
  for (const auto& c : figure1_faults()) net.inject_fault(c);
  net.stabilize();
  const auto blocks = net.blocks();
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].box, figure1_block());

  const auto r = net.route(Coord{0, 0, 0}, Coord{7, 7, 7});
  EXPECT_TRUE(r.delivered);
}

}  // namespace
}  // namespace lgfi
