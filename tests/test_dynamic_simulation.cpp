// Tests for the Section 5 step model: routing proceeding hand-in-hand with
// the information constructions, Theorem 1 (recoveries don't hurt optimal
// routing), and the Theorem 3/4 instrumentation.

#include <gtest/gtest.h>

#include "src/core/dynamic_simulation.h"
#include "src/core/network.h"
#include "src/core/scenario.h"
#include "src/fault/safety.h"

namespace lgfi {
namespace {

TEST(DynamicSimulation, FaultFreeMessageTakesMinimalPath) {
  const MeshTopology mesh(2, 10);
  DynamicSimulation sim(mesh, FaultSchedule{});
  const int id = sim.launch_message(Coord{0, 0}, Coord{7, 5});
  sim.run();
  const auto& msg = sim.message(id);
  EXPECT_TRUE(msg.delivered);
  EXPECT_EQ(msg.header.total_steps(), 12);
  EXPECT_EQ(msg.detours(), 0);
  EXPECT_EQ(msg.end_step, 12) << "one hop per step, launched at step 0";
}

TEST(DynamicSimulation, StaticFaultsConvergeThenRouteMinimallyIfSafe) {
  // Faults occur before the routing starts (p >= 1); after convergence a
  // safe-source message is minimal, as in the static world.
  const MeshTopology mesh(2, 12);
  FaultSchedule schedule;
  for (const auto& c : box_fault_placement(mesh, Box(Coord{8, 8}, Coord{9, 9})))
    schedule.add_fail(0, c);
  DynamicSimulation sim(mesh, schedule);
  for (int i = 0; i < 60; ++i) sim.step();  // let everything converge

  const int id = sim.launch_message(Coord{0, 0}, Coord{6, 6});
  sim.run();
  const auto& msg = sim.message(id);
  EXPECT_TRUE(msg.delivered);
  EXPECT_EQ(msg.detours(), 0);
}

TEST(DynamicSimulation, OccurrenceRecordsMeasureConvergence) {
  const MeshTopology mesh(3, 8);
  FaultSchedule schedule;
  for (const auto& c : figure1_faults()) schedule.add_fail(2, c);
  DynamicSimulation sim(mesh, schedule);
  sim.run(200);
  ASSERT_EQ(sim.occurrences().size(), 1u);
  const auto& rec = sim.occurrences()[0];
  EXPECT_EQ(rec.step, 2);
  EXPECT_GT(rec.rounds_labeling, 0);
  EXPECT_LE(rec.rounds_labeling, 6);
  EXPECT_GT(rec.rounds_identification, rec.rounds_labeling);
  EXPECT_GE(rec.rounds_boundary, rec.rounds_identification - 2);
  EXPECT_EQ(rec.e_max_after, 3);
  EXPECT_TRUE(rec.stabilized_before_next);
}

TEST(DynamicSimulation, LambdaSpeedsUpConvergenceInSteps) {
  // With lambda rounds per step, stabilization takes ~1/lambda as many steps.
  auto steps_to_converge = [](int lambda) {
    const MeshTopology mesh(3, 8);
    FaultSchedule schedule;
    for (const auto& c : figure1_faults()) schedule.add_fail(0, c);
    DynamicSimulationOptions opts;
    opts.lambda = lambda;
    DynamicSimulation sim(mesh, schedule, opts);
    sim.run(2000);
    const auto& rec = sim.occurrences()[0];
    return (rec.rounds_boundary + lambda - 1) / lambda;
  };
  const int steps1 = steps_to_converge(1);
  const int steps4 = steps_to_converge(4);
  EXPECT_LT(steps4, steps1);
  EXPECT_LE(steps4, steps1 / 2);
}

TEST(DynamicSimulation, MessageSurvivesMidRouteFault) {
  // A block appears right in the message's path while it travels.
  const MeshTopology mesh(2, 16);
  FaultSchedule schedule;
  for (const auto& c : box_fault_placement(mesh, Box(Coord{7, 8}, Coord{10, 9})))
    schedule.add_fail(4, c);
  DynamicSimulation sim(mesh, schedule);
  const int id = sim.launch_message(Coord{8, 1}, Coord{8, 14});
  sim.run(4000);
  const auto& msg = sim.message(id);
  EXPECT_TRUE(msg.delivered) << "dynamic fault must not kill the route";
  EXPECT_GT(msg.detours(), 0) << "the new block forces a detour";
  ASSERT_EQ(msg.distance_at_occurrence.size(), 1u);
  EXPECT_LE(msg.distance_at_occurrence[0], msg.initial_distance);
}

TEST(DynamicSimulation, Theorem1RecoveryDoesNotHurtOptimality) {
  // Recover a fault before launching: once constructions stabilize, a path
  // through the recovered area is minimal again (Theorem 1's spirit).
  const MeshTopology mesh(2, 12);
  FaultSchedule schedule;
  for (const auto& c : box_fault_placement(mesh, Box(Coord{5, 5}, Coord{6, 6})))
    schedule.add_fail(0, c);
  for (const auto& c : box_fault_placement(mesh, Box(Coord{5, 5}, Coord{6, 6})))
    schedule.add_recover(30, c);
  DynamicSimulation sim(mesh, schedule);
  for (int i = 0; i < 90; ++i) sim.step();

  const int id = sim.launch_message(Coord{5, 0}, Coord{5, 11});
  sim.run(4000);
  const auto& msg = sim.message(id);
  EXPECT_TRUE(msg.delivered);
  EXPECT_EQ(msg.detours(), 0) << "stale boundary info must not cause detours";
}

TEST(DynamicSimulation, TimelineFeedsTheoremBounds) {
  const MeshTopology mesh(2, 14);
  FaultSchedule schedule;
  schedule.add_fail(0, Coord{4, 4});
  schedule.add_fail(40, Coord{9, 9});
  schedule.add_fail(80, Coord{4, 9});
  DynamicSimulation sim(mesh, schedule);
  const int id = sim.launch_message(Coord{0, 0}, Coord{12, 12});
  sim.run(4000);
  EXPECT_TRUE(sim.message(id).delivered);

  const auto tl = sim.timeline(0);
  ASSERT_EQ(tl.t.size(), 3u);
  EXPECT_EQ(tl.t[0], 0);
  EXPECT_EQ(tl.t[1], 40);
  EXPECT_GT(tl.e_max, 0);
  const auto bound = theorem4_bound(tl, sim.message(id).initial_distance);
  EXPECT_EQ(bound.max_extra_steps, 2 * bound.max_detours);
  EXPECT_GE(bound.max_extra_steps, sim.message(id).detours())
      << "Theorem 4 must bound the measured extra steps";
}

TEST(DynamicSimulation, InfoModesAllDeliver) {
  for (const InfoMode mode : {InfoMode::kLimitedGlobal, InfoMode::kNone,
                              InfoMode::kInstantGlobal, InfoMode::kDelayedGlobal}) {
    const MeshTopology mesh(2, 12);
    FaultSchedule schedule;
    for (const auto& c : box_fault_placement(mesh, Box(Coord{4, 5}, Coord{7, 6})))
      schedule.add_fail(0, c);
    DynamicSimulationOptions opts;
    opts.info_mode = mode;
    DynamicSimulation sim(mesh, schedule, opts);
    for (int i = 0; i < 60; ++i) sim.step();
    const int id = sim.launch_message(Coord{5, 1}, Coord{5, 10});
    sim.run(4000);
    EXPECT_TRUE(sim.message(id).delivered) << "mode " << static_cast<int>(mode);
  }
}

TEST(DynamicSimulation, StepBudgetExhaustionTerminatesTheMessage) {
  // A fault-free route of distance 12 with a budget of 5: the message must
  // stop as budget_exhausted (not delivered, not unreachable), and the run
  // loop must terminate promptly via the active-message counter.
  const MeshTopology mesh(2, 10);
  DynamicSimulationOptions opts;
  opts.step_budget_per_message = 5;
  DynamicSimulation sim(mesh, FaultSchedule{}, opts);
  const int id = sim.launch_message(Coord{0, 0}, Coord{7, 5});
  EXPECT_EQ(sim.active_messages(), 1);
  sim.run(1000);
  const auto& msg = sim.message(id);
  EXPECT_TRUE(msg.budget_exhausted);
  EXPECT_FALSE(msg.delivered);
  EXPECT_FALSE(msg.unreachable);
  EXPECT_EQ(msg.header.total_steps(), 5);
  EXPECT_EQ(msg.end_step, 4) << "the budget-exhausting hop happens at step 5 - 1";
  EXPECT_TRUE(sim.all_messages_done());
  EXPECT_EQ(sim.active_messages(), 0);
  EXPECT_LE(sim.now(), 6) << "run() must stop at the counter, not the step cap";
}

TEST(DynamicSimulation, StepBudgetExhaustionUnderArbitration) {
  // The arbitrated advance phase enforces the same budget.
  const MeshTopology mesh(2, 10);
  DynamicSimulationOptions opts;
  opts.step_budget_per_message = 5;
  opts.link_arbitration = true;
  DynamicSimulation sim(mesh, FaultSchedule{}, opts);
  const int id = sim.launch_message(Coord{0, 0}, Coord{7, 5});
  sim.run(1000);
  EXPECT_TRUE(sim.message(id).budget_exhausted);
  EXPECT_EQ(sim.message(id).header.total_steps(), 5);
  EXPECT_TRUE(sim.all_messages_done());
}

TEST(DynamicSimulation, ActiveMessageCounterTracksEveryOutcome) {
  const MeshTopology mesh(2, 10);
  FaultSchedule schedule;
  // Wall off a destination so one message becomes unreachable.
  for (int x = 3; x <= 5; ++x)
    for (int y = 3; y <= 5; ++y)
      if (!(x == 4 && y == 4)) schedule.add_fail(0, Coord{x, y});
  DynamicSimulationOptions opts;
  opts.persistent_marks = true;  // detects unreachability (DESIGN.md §6.7)
  DynamicSimulation sim(mesh, schedule, opts);
  for (int i = 0; i < 40; ++i) sim.step();

  const int delivered = sim.launch_message(Coord{0, 0}, Coord{9, 9});
  const int walled = sim.launch_message(Coord{0, 0}, Coord{4, 4});
  EXPECT_EQ(sim.active_messages(), 2);
  sim.run(100000);
  EXPECT_TRUE(sim.message(delivered).delivered);
  EXPECT_TRUE(sim.message(walled).unreachable);
  EXPECT_EQ(sim.active_messages(), 0);
}

TEST(DynamicSimulation, DelayedGlobalPublishesFromTheFaultSite) {
  // The routing-table baseline spreads the new snapshot from the site of
  // the change, one hop per step.  On an asymmetric mesh, a node next to
  // the fault must learn of it long before a node next to mesh origin 0 —
  // the regression guards against broadcasting from coord_of(0) instead.
  const MeshTopology mesh(std::vector<int>{17, 5});
  FaultSchedule schedule;
  schedule.add_fail(0, Coord{13, 2});
  DynamicSimulationOptions opts;
  opts.info_mode = InfoMode::kDelayedGlobal;
  DynamicSimulation sim(mesh, schedule, opts);

  // Step until the occurrence stabilizes and the snapshot is published.
  for (int i = 0; i < 60 && !(sim.occurrences().size() == 1 &&
                              sim.occurrences()[0].e_max_after > 0);
       ++i)
    sim.step();
  ASSERT_EQ(sim.occurrences().size(), 1u);
  EXPECT_EQ(sim.occurrences()[0].origin, (Coord{13, 2}));

  const auto* provider = sim.delayed_provider();
  ASSERT_NE(provider, nullptr);
  // One more step: visibility radius >= 1 around the fault site.
  sim.step();
  EXPECT_FALSE(provider->info_at(mesh.index_of(Coord{12, 2})).empty())
      << "a neighbour of the fault site must see the snapshot first";
  EXPECT_TRUE(provider->info_at(mesh.index_of(Coord{1, 1})).empty())
      << "a node near mesh origin 0 is ~12 hops from the change and cannot "
         "know yet (the old bug broadcast from node 0)";

  // After enough steps, the wave reaches everyone.
  for (int i = 0; i < 25; ++i) sim.step();
  EXPECT_FALSE(provider->info_at(mesh.index_of(Coord{1, 1})).empty());
}

TEST(Network, QuickstartFacade) {
  Network net(MeshTopology(3, 8));
  for (const auto& c : figure1_faults()) net.inject_fault(c);
  net.stabilize();
  const auto blocks = net.blocks();
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].box, figure1_block());

  const auto r = net.route(Coord{0, 0, 0}, Coord{7, 7, 7});
  EXPECT_TRUE(r.delivered);
}

}  // namespace
}  // namespace lgfi
