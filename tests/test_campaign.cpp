// Tests for the Campaign API: the sweep grammar (lists, ranges, the rates=
// alias), Cartesian grid expansion order, the CampaignRunner determinism
// contract (byte-identical output for any thread count, streamed in grid
// order), and the 1-point campaign's byte-compatibility with the historical
// single-run reporters.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "src/core/campaign.h"
#include "src/core/experiment_runner.h"

namespace lgfi {
namespace {

SweepSpec small_spec(const std::string& line = "") {
  SweepSpec spec(experiment_config());
  if (!line.empty()) spec.parse_string(line);
  return spec;
}

TEST(SweepSpec, ScalarTokensStillSetTheBase) {
  const SweepSpec spec = small_spec("mesh_dims=3 radix=9");
  EXPECT_TRUE(spec.axes().empty());
  EXPECT_EQ(spec.base().get_int("mesh_dims"), 3);
  EXPECT_EQ(spec.base().get_int("radix"), 9);
  EXPECT_EQ(spec.point_count(), 1u);
}

TEST(SweepSpec, GridExpandsInDeclarationOrderLastAxisFastest) {
  const SweepSpec spec =
      small_spec("router=[no_info,fault_info] injection_rate=[0.02,0.05,0.1]");
  ASSERT_EQ(spec.axes().size(), 2u);
  EXPECT_EQ(spec.axes()[0].key, "router");
  EXPECT_EQ(spec.axes()[1].key, "injection_rate");
  EXPECT_EQ(spec.point_count(), 6u);

  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 6u);
  const std::vector<std::pair<std::string, std::string>> want = {
      {"no_info", "0.02"},    {"no_info", "0.05"},    {"no_info", "0.1"},
      {"fault_info", "0.02"}, {"fault_info", "0.05"}, {"fault_info", "0.1"}};
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
    ASSERT_EQ(points[i].swept.size(), 2u);
    EXPECT_EQ(points[i].swept[0], (std::pair<std::string, std::string>{"router", want[i].first}));
    EXPECT_EQ(points[i].swept[1],
              (std::pair<std::string, std::string>{"injection_rate", want[i].second}));
    EXPECT_EQ(points[i].config.get_str("router"), want[i].first);
    EXPECT_DOUBLE_EQ(points[i].config.get_double("injection_rate"),
                     std::stod(want[i].second));
  }
}

TEST(SweepSpec, RangeIncludesBothEndpointsWhenTheyLand) {
  const SweepSpec spec = small_spec("injection_rate=range(0.02,0.1,0.04)");
  ASSERT_EQ(spec.axes().size(), 1u);
  EXPECT_EQ(spec.axes()[0].values, (std::vector<std::string>{"0.02", "0.06", "0.1"}));
}

TEST(SweepSpec, RangeStopsBeforeAnOffGridHi) {
  const SweepSpec spec = small_spec("injection_rate=range(0.01,0.1,0.04)");
  EXPECT_EQ(spec.axes()[0].values, (std::vector<std::string>{"0.01", "0.05", "0.09"}));
}

TEST(SweepSpec, IntRangeUsesIntegerArithmetic) {
  const SweepSpec spec = small_spec("faults=range(0,24,8)");
  EXPECT_EQ(spec.axes()[0].values, (std::vector<std::string>{"0", "8", "16", "24"}));
  // A one-point range is a valid (degenerate) axis.
  const SweepSpec one = small_spec("radix=range(6,6,1)");
  EXPECT_EQ(one.axes()[0].values, (std::vector<std::string>{"6"}));
}

TEST(SweepSpec, MalformedTokensThrowNamingTheToken) {
  const auto expect_throw_naming = [](const std::string& line, const std::string& fragment) {
    try {
      small_spec(line);
      FAIL() << line << " must throw";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << line << " error should name '" << fragment << "': " << e.what();
    }
  };
  expect_throw_naming("injection_rate=[]", "injection_rate=[]");
  expect_throw_naming("injection_rate=[0.1,]", "injection_rate=[0.1,]");
  expect_throw_naming("injection_rate=[0.1,,0.2]", "injection_rate=[0.1,,0.2]");
  expect_throw_naming("radix=[8,8]", "radix=[8,8]");
  expect_throw_naming("radix=[8,x]", "radix=[8,x]");
  expect_throw_naming("radix=[8,9", "radix=[8,9");
  expect_throw_naming("injection_rate=range(0.1,0.02,0.04)", "lo <= hi");
  expect_throw_naming("injection_rate=range(0.02,0.1,0)", "step");
  expect_throw_naming("injection_rate=range(0.02,0.1)", "range(lo,hi,step)");
  expect_throw_naming("injection_rate=range(a,b,c)", "bad number");
  expect_throw_naming("faults=range(0,10,2.5)", "must be integers");
  expect_throw_naming("router=range(1,3,1)", "numeric");
  // Campaign-level keys cannot be swept.
  expect_throw_naming("threads=[1,2]", "threads");
  expect_throw_naming("report=[csv,json]", "report");
  // Unknown keys fail through the Config error, naming the sweep token.
  expect_throw_naming("bogus=[1,2]", "bogus");
}

TEST(SweepSpec, DuplicateAxisAndScalarConflictsThrow) {
  EXPECT_THROW(small_spec("radix=[6,8] radix=[10,12]"), ConfigError);
  EXPECT_THROW(small_spec("radix=[6,8] radix=10"), ConfigError);
  // rates= is an injection_rate axis, so sweeping both is a duplicate.
  EXPECT_THROW(small_spec("rates=0.1,0.2 injection_rate=[0.3,0.4]"), ConfigError);
}

TEST(SweepSpec, RatesAliasSweepsInjectionRate) {
  const SweepSpec spec = small_spec("rates=0.01,0.02,0.3");
  ASSERT_EQ(spec.axes().size(), 1u);
  EXPECT_EQ(spec.axes()[0].key, "injection_rate");
  EXPECT_EQ(spec.axes()[0].values, (std::vector<std::string>{"0.01", "0.02", "0.3"}));
  // Bracketed spelling accepted too.
  EXPECT_EQ(small_spec("rates=[0.5,0.6]").axes()[0].values,
            (std::vector<std::string>{"0.5", "0.6"}));
}

TEST(SweepSpec, DefaultAxesYieldToUserTokensButKeepTheirPosition) {
  SweepSpec spec(experiment_config());
  spec.add_default_axis("router", {"fault_info", "no_info"});
  spec.add_default_axis("injection_rate", {"0.02", "0.05"});
  // The user re-sweeps the first axis: values replaced, position kept.
  spec.parse_token("router=[oracle]");
  ASSERT_EQ(spec.axes().size(), 2u);
  EXPECT_EQ(spec.axes()[0].key, "router");
  EXPECT_EQ(spec.axes()[0].values, (std::vector<std::string>{"oracle"}));
  EXPECT_EQ(spec.axes()[1].key, "injection_rate");
  // A default added after a user sweep of the same key is a no-op.
  spec.add_default_axis("router", {"dimension_order"});
  EXPECT_EQ(spec.axes()[0].values, (std::vector<std::string>{"oracle"}));
  // A scalar collapses a default axis back to a point.
  spec.parse_token("injection_rate=0.3");
  ASSERT_EQ(spec.axes().size(), 1u);
  EXPECT_DOUBLE_EQ(spec.base().get_double("injection_rate"), 0.3);
}

TEST(CampaignRunner, ValidatesEveryGridPointEagerly) {
  try {
    const CampaignRunner runner(small_spec("router=[no_info,fault_inof]"));
    FAIL() << "a bad name anywhere in the grid must fail before any task runs";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'fault_info'?"), std::string::npos)
        << e.what();
  }
}

TEST(CampaignRunner, RunsTheGridAndMergesPerPoint) {
  const SweepSpec spec = small_spec(
      "router=[no_info,fault_info] faults=[2,4] mesh_dims=2 radix=8 "
      "replications=3 routes=2 seed=11");
  const CampaignRunner runner(spec);
  const auto results = runner.run();
  ASSERT_EQ(results.size(), 4u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].result.replications, 3);
    EXPECT_EQ(results[i].result.metrics.stats("delivered").count(), 6)
        << "routes * replications";
  }
  // Grid order: router outer, faults inner.
  EXPECT_EQ(results[0].result.config.get_str("router"), "no_info");
  EXPECT_EQ(results[0].result.config.get_int("faults"), 2);
  EXPECT_EQ(results[1].result.config.get_int("faults"), 4);
  EXPECT_EQ(results[2].result.config.get_str("router"), "fault_info");
}

TEST(CampaignRunner, PointResultsMatchStandaloneExperimentRunner) {
  // A campaign point must reproduce exactly what a standalone run of its
  // config produces — the grid changes scheduling, never results.
  const SweepSpec spec =
      small_spec("faults=[2,5] mesh_dims=2 radix=8 replications=4 routes=3 seed=9");
  const auto results = CampaignRunner(spec).run();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& point : results) {
    const ExperimentResult standalone = ExperimentRunner(point.result.config).run();
    std::ostringstream a, b;
    JsonReporter().report(standalone, a);
    JsonReporter().report(point.result, b);
    EXPECT_EQ(a.str(), b.str());
  }
}

TEST(CampaignRunner, OnePointCampaignByteIdenticalToSingleRunReport) {
  for (const char* report : {"table", "csv", "json"}) {
    Config cfg = experiment_config();
    cfg.parse_string("mesh_dims=2 radix=8 faults=3 replications=2 routes=3 seed=5");
    cfg.set_str("report", report);

    std::ostringstream single;
    ExperimentRunner(cfg).run_and_report(single);

    SweepSpec spec(cfg);
    std::ostringstream campaign;
    CampaignRunner(spec).run_and_report(campaign);
    EXPECT_EQ(single.str(), campaign.str()) << report;
    // And the historical shape is preserved (no campaign wrapping).
    if (std::string(report) == "csv")
      EXPECT_EQ(campaign.str().find("config,metric,count,mean,stddev,min,max"), 0u);
    if (std::string(report) == "json") EXPECT_EQ(campaign.str().find("{\"config\":{"), 0u);
    if (std::string(report) == "table") EXPECT_EQ(campaign.str().find("config: "), 0u);
  }
}

TEST(CampaignRunner, CampaignOutputByteIdenticalAcrossThreadCounts) {
  const auto render = [](const char* report, int threads) {
    SweepSpec spec = small_spec(
        "router=[no_info,fault_info] injection_rate=[0.02,0.05,0.1] traffic=uniform "
        "mesh_dims=2 radix=6 warmup_steps=10 measure_steps=60 routes=0 faults=0 "
        "replications=2 seed=3");
    spec.base().set_str("report", report);
    spec.base().set_int("threads", threads);
    std::ostringstream os;
    CampaignRunner(spec).run_and_report(os);
    return os.str();
  };
  // JSON: swept values + metrics only, so even the full bytes are
  // schedule-independent (threads never appears in campaign output).
  const std::string json1 = render("json", 1);
  EXPECT_EQ(json1, render("json", 8));
  EXPECT_EQ(json1.front(), '[');
  EXPECT_EQ(json1.substr(json1.size() - 2), "]\n");

  // CSV: drop the "# config:" comment (threads legitimately differs there);
  // header and all 6 rows must match byte for byte.
  const auto rows = [](const std::string& csv) { return csv.substr(csv.find('\n') + 1); };
  const std::string csv1 = render("csv", 1);
  EXPECT_EQ(rows(csv1), rows(render("csv", 8)));
  EXPECT_EQ(csv1.find("# config: "), 0u);
}

TEST(CampaignRunner, CampaignCsvHasOneHeaderAndOneRowPerPoint) {
  SweepSpec spec = small_spec(
      "router=[no_info,fault_info] faults=[0,3,6] mesh_dims=2 radix=8 "
      "replications=2 routes=2 seed=7 report=csv");
  std::ostringstream os;
  CampaignRunner(spec).run_and_report(os);
  std::istringstream lines(os.str());
  std::string line;
  int headers = 0, rows = 0, comments = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("# config: ", 0) == 0) ++comments;
    else if (line.rfind("router,faults,", 0) == 0) ++headers;
    else if (!line.empty()) ++rows;
  }
  EXPECT_EQ(comments, 1);
  EXPECT_EQ(headers, 1);
  EXPECT_EQ(rows, 6) << os.str();
  // Leading columns are the swept values in grid order.
  EXPECT_NE(os.str().find("\nno_info,0,"), std::string::npos);
  EXPECT_NE(os.str().find("\nfault_info,6,"), std::string::npos);
}

TEST(CampaignRunner, SinkReceivesPointsInGridOrderWhileParallel) {
  // A recording sink observes the streaming contract directly: add() runs
  // once per point, in grid order, between one begin() and one end() —
  // whatever the thread count.
  class RecordingSink final : public Reporter {
   public:
    void begin(const Campaign& campaign, std::ostream&) override {
      begun = true;
      expected_points = campaign.points.size();
    }
    void add(const PointResult& point) override { indices.push_back(point.index); }
    void end() override { ended = true; }
    [[nodiscard]] std::string name() const override { return "recording"; }

    bool begun = false, ended = false;
    size_t expected_points = 0;
    std::vector<size_t> indices;
  };

  SweepSpec spec = small_spec(
      "faults=[1,2,3,4,5,6] mesh_dims=2 radix=8 replications=3 routes=1 threads=8");
  RecordingSink sink;
  std::ostringstream os;
  const auto results = CampaignRunner(spec).run(sink, os);
  EXPECT_TRUE(sink.begun);
  EXPECT_TRUE(sink.ended);
  EXPECT_EQ(sink.expected_points, 6u);
  ASSERT_EQ(sink.indices.size(), 6u);
  for (size_t i = 0; i < sink.indices.size(); ++i) EXPECT_EQ(sink.indices[i], i);
  EXPECT_EQ(results.size(), 6u);
}

TEST(CampaignRunner, ExplicitGridZipsKeysAndRunsCustomBodies) {
  // The high_dimensional_sweep shape: co-varying keys, a bespoke
  // per-replication body, swept labels rendered from each point config.
  Config base = experiment_config();
  base.set_int("replications", 2);
  std::vector<Config> points;
  for (const int radix : {6, 8}) {
    Config cfg = base;
    cfg.set_int("radix", radix);
    cfg.set_int("mesh_dims", radix == 6 ? 3 : 2);
    points.push_back(std::move(cfg));
  }
  const CampaignRunner runner(base, {"mesh_dims", "radix"}, std::move(points));
  ASSERT_EQ(runner.campaign().points.size(), 2u);
  EXPECT_EQ(runner.campaign().points[0].swept,
            (std::vector<std::pair<std::string, std::string>>{{"mesh_dims", "3"},
                                                              {"radix", "6"}}));
  const auto results = runner.run_with([](const ExperimentRunner& r, Rng&, MetricSet& out) {
    out.add("nodes_per_dim", static_cast<double>(r.config().get_int("radix")));
  });
  ASSERT_EQ(results.size(), 2u);
  EXPECT_DOUBLE_EQ(results[0].result.metrics.mean("nodes_per_dim"), 6.0);
  EXPECT_DOUBLE_EQ(results[1].result.metrics.mean("nodes_per_dim"), 8.0);
  EXPECT_EQ(results[0].result.metrics.stats("nodes_per_dim").count(), 2);
}

TEST(CampaignRunner, ReplicationErrorsSurfaceAfterTheFanOutDrains) {
  // A throwing body must reach the caller as the exception, not terminate a
  // pool worker, and not reach the sink's end().
  SweepSpec spec = small_spec("faults=[1,2] replications=4 threads=4 mesh_dims=2 radix=8");
  const CampaignRunner runner(spec);
  std::atomic<int> calls{0};
  EXPECT_THROW(runner.run_with([&](const ExperimentRunner&, Rng&, MetricSet&) {
                 ++calls;
                 throw ConfigError("boom");
               }),
               ConfigError);
  EXPECT_EQ(calls.load(), 8) << "the fan-out drains before rethrowing";
}

TEST(CampaignRunner, GridCapRejectsRunawayProducts) {
  // A single over-cap range fails at parse time...
  EXPECT_THROW(small_spec("faults=range(0,99999,1)"), ConfigError);
  // ...and a grid whose *product* exceeds the cap fails at expansion.
  SweepSpec spec = small_spec("faults=range(0,199,1) seed=range(0,99,1)");
  EXPECT_THROW(spec.point_count(), ConfigError);
}

TEST(SweepSpec, ScalarPinSuppressesDefaultsAddedAfterParsing) {
  // The benches install their default axes *after* the CLI tokens; a scalar
  // the user passed must stay a point, not be resurrected into the sweep.
  SweepSpec spec(experiment_config());
  spec.parse_token("injection_rate=0.07");
  spec.add_default_axis("injection_rate", {"0.02", "0.05"});
  EXPECT_FALSE(spec.has_axis("injection_rate"));
  EXPECT_DOUBLE_EQ(spec.base().get_double("injection_rate"), 0.07);
  // Unpinned keys still get their default axis.
  spec.add_default_axis("router", {"fault_info", "no_info"});
  EXPECT_TRUE(spec.has_axis("router"));
}

TEST(CampaignRunner, CsvAndTableColumnsAreTheUnionOverHeterogeneousPoints) {
  // A switching sweep emits flit-level metrics only at the wormhole points;
  // the csv/table column set must be the union, not whatever the first
  // (ideal) point happened to record.
  SweepSpec spec = small_spec(
      "switching=[ideal,wormhole] traffic=uniform mesh_dims=2 radix=6 warmup_steps=10 "
      "measure_steps=60 routes=0 faults=0 replications=1 seed=2 report=csv");
  std::ostringstream csv;
  CampaignRunner(spec).run_and_report(csv);
  std::istringstream lines(csv.str());
  std::string comment, header, ideal_row, wormhole_row;
  std::getline(lines, comment);
  std::getline(lines, header);
  std::getline(lines, ideal_row);
  std::getline(lines, wormhole_row);
  EXPECT_NE(header.find("head_latency"), std::string::npos) << header;
  EXPECT_NE(header.find("sw_flit_moves"), std::string::npos) << header;
  // The ideal row has empty cells for the wormhole-only columns.
  EXPECT_EQ(ideal_row.rfind("ideal,", 0), 0u);
  EXPECT_NE(ideal_row.find(",,"), std::string::npos) << ideal_row;
  EXPECT_EQ(wormhole_row.rfind("wormhole,", 0), 0u);
  EXPECT_EQ(wormhole_row.find(",,"), std::string::npos) << wormhole_row;
}

}  // namespace
}  // namespace lgfi
