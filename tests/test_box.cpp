// Unit tests for Box, the geometric core of the faulty-block model.

#include <gtest/gtest.h>

#include "src/mesh/box.h"

namespace lgfi {
namespace {

TEST(Box, CornerConstructionNormalizes) {
  const Box b(Coord{5, 1}, Coord{2, 4});
  EXPECT_EQ(b.lo(0), 2);
  EXPECT_EQ(b.hi(0), 5);
  EXPECT_EQ(b.lo(1), 1);
  EXPECT_EQ(b.hi(1), 4);
}

TEST(Box, PaperNotationString) {
  // The paper writes the Figure 1 block as [3:5, 5:6, 3:4].
  const Box b(Coord{3, 5, 3}, Coord{5, 6, 4});
  EXPECT_EQ(b.to_string(), "[3:5, 5:6, 3:4]");
}

TEST(Box, EmptyAndVolume) {
  EXPECT_TRUE(Box().empty());
  const Box b(Coord{3, 5, 3}, Coord{5, 6, 4});
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.volume(), 3 * 2 * 2);
  EXPECT_EQ(Box::point(Coord{1, 1}).volume(), 1);
}

TEST(Box, MaxExtentIsEmax) {
  const Box b(Coord{3, 5, 3}, Coord{5, 6, 4});
  EXPECT_EQ(b.max_extent(), 3);  // x spans 3:5
}

TEST(Box, Contains) {
  const Box b(Coord{3, 5, 3}, Coord{5, 6, 4});
  EXPECT_TRUE(b.contains(Coord{4, 5, 3}));
  EXPECT_TRUE(b.contains(Coord{3, 5, 3}));
  EXPECT_TRUE(b.contains(Coord{5, 6, 4}));
  EXPECT_FALSE(b.contains(Coord{2, 5, 3}));
  EXPECT_FALSE(b.contains(Coord{4, 7, 3}));
}

TEST(Box, IntersectionAndHull) {
  const Box a(Coord{0, 0}, Coord{4, 4});
  const Box b(Coord{3, 2}, Coord{7, 9});
  ASSERT_TRUE(a.intersects(b));
  const auto i = a.intersection(b);
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(*i, Box(Coord{3, 2}, Coord{4, 4}));
  EXPECT_EQ(a.hull(b), Box(Coord{0, 0}, Coord{7, 9}));

  const Box c(Coord{6, 0}, Coord{8, 1});
  EXPECT_FALSE(a.intersects(c));
  EXPECT_FALSE(a.intersection(c).has_value());
}

TEST(Box, InflatedIsTheEnvelopeShell) {
  const Box b(Coord{3, 5, 3}, Coord{5, 6, 4});
  const Box e = b.inflated(1);
  EXPECT_EQ(e, Box(Coord{2, 4, 2}, Coord{6, 7, 5}));
  EXPECT_EQ(e.volume() - b.volume(), 5 * 4 * 4 - 12);
}

TEST(Box, TouchesUsesChebyshevDistanceOne) {
  const Box a(Coord{0, 0}, Coord{1, 1});
  EXPECT_TRUE(a.touches(Box(Coord{2, 2}, Coord{3, 3})));   // diagonal contact
  EXPECT_FALSE(a.touches(Box(Coord{3, 0}, Coord{4, 1})));  // gap of one column
  EXPECT_TRUE(a.touches(Box(Coord{2, 0}, Coord{3, 1})));   // face contact
}

TEST(Box, ForEachVisitsEveryNodeOnce) {
  const Box b(Coord{1, 2, 3}, Coord{2, 3, 4});
  const auto coords = b.all_coords();
  EXPECT_EQ(static_cast<long long>(coords.size()), b.volume());
  for (const auto& c : coords) EXPECT_TRUE(b.contains(c));
  // Lexicographic order, no duplicates.
  for (size_t i = 1; i < coords.size(); ++i) EXPECT_TRUE(coords[i - 1] < coords[i]);
}

TEST(Box, HullWithCoordGrowsMinimally) {
  Box b = Box::point(Coord{3, 3});
  b = b.hull(Coord{5, 1});
  EXPECT_EQ(b, Box(Coord{3, 1}, Coord{5, 3}));
}

TEST(Box, MinimalPathBoxIsRect) {
  EXPECT_EQ(minimal_path_box(Coord{1, 7}, Coord{4, 2}), Box(Coord{1, 2}, Coord{4, 7}));
}

}  // namespace
}  // namespace lgfi
