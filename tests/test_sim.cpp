// Unit tests for the simulation substrate: RNG determinism, mailbox BSP
// semantics, engine quiescence, fault schedules, statistics, thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "src/sim/engine.h"
#include "src/sim/fault_schedule.h"
#include "src/sim/mailbox.h"
#include "src/sim/rng.h"
#include "src/sim/statistics.h"
#include "src/sim/thread_pool.h"

namespace lgfi {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkStreamsDiffer) {
  Rng base(7);
  Rng f0 = base.fork(0);
  Rng f1 = base.fork(1);
  int differing = 0;
  for (int i = 0; i < 64; ++i)
    if (f0.next_u64() != f1.next_u64()) ++differing;
  EXPECT_GT(differing, 60);
}

TEST(Rng, UniformIntInRange) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const int v = r.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng r(11);
  std::vector<int> seen(4, 0);
  for (int i = 0; i < 4000; ++i) ++seen[static_cast<size_t>(r.uniform_int(0, 3))];
  for (int count : seen) EXPECT_GT(count, 800);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng r(5);
  const auto s = r.sample_without_replacement(10, 6);
  ASSERT_EQ(s.size(), 6u);
  auto copy = s;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(std::unique(copy.begin(), copy.end()), copy.end());
  for (int v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
  }
}

TEST(Mailbox, MessagesVisibleOnlyAfterFlip) {
  MailboxSystem<int> mb(3);
  mb.send(1, 42);
  EXPECT_TRUE(mb.inbox(1).empty()) << "delivery must wait for the round boundary";
  mb.flip();
  ASSERT_EQ(mb.inbox(1).size(), 1u);
  EXPECT_EQ(mb.inbox(1)[0], 42);
  mb.flip();
  EXPECT_TRUE(mb.inbox(1).empty()) << "messages last exactly one round";
}

TEST(Mailbox, DeterministicDeliveryOrder) {
  MailboxSystem<int> mb(2);
  mb.send(0, 1);
  mb.send(0, 2);
  mb.send(0, 3);
  mb.flip();
  EXPECT_EQ(mb.inbox(0), (std::vector<int>{1, 2, 3}));
}

TEST(Mailbox, PendingAndStats) {
  MailboxSystem<int> mb(2);
  EXPECT_TRUE(mb.next_round_empty());
  mb.send(0, 9);
  EXPECT_EQ(mb.pending(), 1);
  EXPECT_FALSE(mb.next_round_empty());
  mb.flip();
  EXPECT_EQ(mb.stats().messages_sent, 1);
  EXPECT_EQ(mb.stats().rounds_flipped, 1);
}

// A protocol that is active for exactly `n` rounds.
class CountdownProtocol final : public SynchronousProtocol {
 public:
  explicit CountdownProtocol(int n) : remaining_(n) {}
  bool run_round() override { return remaining_-- > 0; }
  std::string name() const override { return "countdown"; }

 private:
  int remaining_;
};

TEST(Engine, CountsActiveRounds) {
  CountdownProtocol p(5);
  const auto r = run_until_quiescent(p, 100);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.rounds, 5);
}

TEST(Engine, ReportsNonConvergence) {
  CountdownProtocol p(1000);
  const auto r = run_until_quiescent(p, 10);
  EXPECT_FALSE(r.converged);
}

TEST(Engine, LockstepAllQuiescent) {
  CountdownProtocol a(3), b(7);
  std::vector<SynchronousProtocol*> ps{&a, &b};
  const auto r = run_all_until_quiescent(ps, 100);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.rounds, 7) << "lockstep runs until the slowest protocol quiets";
}

TEST(FaultSchedule, SortedAndQueryable) {
  FaultSchedule s;
  s.add_fail(10, Coord{1, 1});
  s.add_fail(5, Coord{2, 2});
  s.add_recover(10, Coord{3, 3});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.events()[0].step, 5);
  EXPECT_EQ(s.events_at(10).size(), 2u);
  EXPECT_EQ(s.last_step(), 10);
  EXPECT_EQ(s.occurrence_times(), (std::vector<long long>{5, 10}));
}

TEST(FaultSchedule, RandomPlacementAvoidsSurfaceAndDuplicates) {
  const MeshTopology m(3, 8);
  Rng rng(1);
  const auto faults = random_fault_placement(m, 30, rng);
  EXPECT_EQ(faults.size(), 30u);
  std::vector<Coord> sorted = faults;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (const auto& c : faults) EXPECT_FALSE(m.on_outer_surface(c));
}

TEST(FaultSchedule, PlacementHonoursForbiddenList) {
  const MeshTopology m(2, 8);
  Rng rng(2);
  const std::vector<Coord> forbidden{Coord{3, 3}, Coord{4, 4}};
  for (int trial = 0; trial < 20; ++trial) {
    const auto faults = random_fault_placement(m, 20, rng, {}, forbidden);
    for (const auto& c : faults) {
      EXPECT_NE(c, forbidden[0]);
      EXPECT_NE(c, forbidden[1]);
    }
  }
}

TEST(FaultSchedule, ClusteredPlacementIsConnected) {
  const MeshTopology m(3, 10);
  Rng rng(3);
  const auto faults = clustered_fault_placement(m, 12, rng);
  ASSERT_EQ(faults.size(), 12u);
  // Connectivity: every fault after the first is adjacent to an earlier one.
  for (size_t i = 1; i < faults.size(); ++i) {
    bool adjacent = false;
    for (size_t j = 0; j < i; ++j)
      if (manhattan_distance(faults[i], faults[j]) == 1) adjacent = true;
    EXPECT_TRUE(adjacent) << "fault " << faults[i].to_string() << " disconnected";
  }
}

TEST(FaultSchedule, BoxPlacementFillsInterior) {
  const MeshTopology m(2, 8);
  const auto faults = box_fault_placement(m, Box(Coord{2, 2}, Coord{4, 3}));
  EXPECT_EQ(faults.size(), 6u);
}

TEST(FaultSchedule, PeriodicScheduleHasRequestedIntervals) {
  const MeshTopology m(3, 8);
  Rng rng(4);
  const auto s = periodic_random_schedule(m, 5, 2, 10, 20, rng);
  const auto times = s.occurrence_times();
  ASSERT_EQ(times.size(), 5u);
  for (size_t i = 1; i < times.size(); ++i) EXPECT_EQ(times[i] - times[i - 1], 20);
}

TEST(Statistics, RunningStatsBasics) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_EQ(s.count(), 4);
}

TEST(Statistics, MergeMatchesSequential) {
  RunningStats all, a, b;
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniform_double() * 10;
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(Statistics, HistogramPercentiles) {
  IntHistogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_EQ(h.percentile(0.5), 50);
  EXPECT_EQ(h.percentile(0.99), 99);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Statistics, HistogramPercentileRejectsOutOfRangeQ) {
  // These used to be assert-only, so NDEBUG builds silently returned 0 for
  // q <= 0 and max() for q > 1.
  IntHistogram h;
  h.add(3);
  h.add(7);
  EXPECT_THROW((void)h.percentile(0.0), std::invalid_argument);
  EXPECT_THROW((void)h.percentile(-0.5), std::invalid_argument);
  EXPECT_THROW((void)h.percentile(1.5), std::invalid_argument);
  EXPECT_THROW((void)h.percentile(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_EQ(h.percentile(1.0), 7) << "q = 1 stays valid (the maximum)";
  // The empty histogram still answers 0 for valid q.
  EXPECT_EQ(IntHistogram{}.percentile(0.5), 0);
}

TEST(Statistics, HistogramAddRejectsNegativeValues) {
  IntHistogram h;
  EXPECT_THROW(h.add(-1), std::invalid_argument);
  EXPECT_THROW(h.add(std::numeric_limits<long long>::min()), std::invalid_argument);
  EXPECT_EQ(h.count(), 0) << "a rejected add must not corrupt the totals";
  h.add(0);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 0);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ResultsIndependentOfThreadCount) {
  // Forked RNG per index makes the reduction order-independent.
  auto run = [](unsigned threads) {
    ThreadPool pool(threads);
    std::vector<uint64_t> out(64);
    pool.parallel_for(64, [&](int64_t i) {
      Rng r = Rng(99).fork(static_cast<uint64_t>(i));
      out[static_cast<size_t>(i)] = r.next_u64();
    });
    return out;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int64_t> sum{0};
    pool.parallel_for(100, [&](int64_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950);
  }
}

}  // namespace
}  // namespace lgfi
