// Tests for the ExperimentRunner facade: config-driven environment
// construction, the standard static/dynamic runs, reporters, and the
// determinism guarantee (byte-identical results for any thread count).

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "src/core/experiment_runner.h"
#include "src/core/scenario.h"

namespace lgfi {
namespace {

TEST(ExperimentRunner, BuildStaticReproducesFigure1) {
  Config cfg = experiment_config();
  cfg.parse_string("scenario=figure1");
  Rng rng(1);
  const auto env = ExperimentRunner(cfg).build_static(rng);
  ASSERT_EQ(env.net->blocks().size(), 1u);
  EXPECT_EQ(env.net->blocks()[0].box, figure1_block());
  EXPECT_EQ(env.faults.size(), figure1_faults().size());
  EXPECT_GT(env.rounds.labeling, 0);
}

TEST(ExperimentRunner, StandardStaticRunRecordsTheCoreMetrics) {
  Config cfg = experiment_config();
  cfg.parse_string("mesh_dims=2 radix=10 faults=4 replications=3 routes=5 seed=7");
  const auto res = ExperimentRunner(cfg).run();
  EXPECT_EQ(res.replications, 3);
  EXPECT_EQ(res.metrics.stats("delivered").count(), 15) << "routes * replications";
  EXPECT_EQ(res.metrics.stats("blocks").count(), 3);
  EXPECT_GT(res.metrics.mean("delivered"), 0.0);
}

TEST(ExperimentRunner, DynamicModeRunsTheStepLoop) {
  Config cfg = experiment_config();
  cfg.parse_string("mode=dynamic mesh_dims=2 radix=10 faults=3 batches=2 "
                   "fault_interval=30 warmup_steps=20 replications=2 routes=2 "
                   "max_steps=4000 seed=9");
  const auto res = ExperimentRunner(cfg).run();
  EXPECT_EQ(res.metrics.stats("delivered").count(), 4);
  EXPECT_GE(res.metrics.mean("occurrences"), 1.0);
}

TEST(ExperimentRunner, Figure1ResultByteIdenticalAcrossThreadCounts) {
  // The determinism contract: same seed => byte-identical report whether the
  // replications run on 1 thread or fan out over 8.
  const auto report_with_threads = [](int threads) {
    Config cfg = experiment_config();
    cfg.parse_string("scenario=figure1 routes=6 replications=16 min_pair_distance=7 seed=3");
    cfg.set_int("threads", threads);
    const auto res = ExperimentRunner(cfg).run();
    std::ostringstream os;
    JsonReporter().report(res, os);
    // Drop the config section (the threads key legitimately differs); the
    // metrics bytes must match exactly.
    const std::string s = os.str();
    return s.substr(s.find("\"metrics\""));
  };
  const std::string serial = report_with_threads(1);
  EXPECT_EQ(serial, report_with_threads(8));
  EXPECT_EQ(serial, report_with_threads(3));
  EXPECT_NE(serial.find("\"delivered\":{\"count\":96"), std::string::npos)
      << "routes * replications samples: " << serial;
}

TEST(ExperimentRunner, RunEachStaticExposesTheBuiltEnvironment) {
  Config cfg = experiment_config();
  cfg.parse_string("mesh_dims=3 radix=8 fault_model=clustered faults=6 replications=4");
  const auto res = ExperimentRunner(cfg).run_each_static(
      [](ExperimentRunner::StaticEnv& env, Rng&, MetricSet& out) {
        out.add("nodes", static_cast<double>(env.mesh().node_count()));
        out.add("rounds", env.rounds.total);
      });
  EXPECT_EQ(res.metrics.stats("nodes").count(), 4);
  EXPECT_DOUBLE_EQ(res.metrics.mean("nodes"), 512.0);
}

TEST(ExperimentRunner, RejectsBadConfigurationEagerly) {
  Config cfg = experiment_config();
  cfg.set_str("router", "nonexistent");
  EXPECT_THROW(ExperimentRunner{cfg}, ConfigError);

  Config bad_report = experiment_config();
  bad_report.set_str("report", "telegram");
  EXPECT_THROW(ExperimentRunner{bad_report}, ConfigError);

  Config bad_mode = experiment_config();
  bad_mode.set_str("mode", "quantum");
  EXPECT_THROW(ExperimentRunner(bad_mode).run(), ConfigError);

  Config bad_traffic = experiment_config();
  bad_traffic.set_str("traffic", "rush_hour");
  EXPECT_THROW(ExperimentRunner{bad_traffic}, ConfigError);

  Config bad_model = experiment_config();
  bad_model.set_str("fault_model", "gremlins");
  Rng rng(1);
  EXPECT_THROW(ExperimentRunner(bad_model).build_static(rng), ConfigError);

  Config bad_box = experiment_config();
  bad_box.parse_string("fault_model=box fault_box=oops");
  EXPECT_THROW(ExperimentRunner(bad_box).build_static(rng), ConfigError);
}

TEST(ExperimentRunner, FaultBoxWithTrailingGarbageRejectedNamingTheToken) {
  // std::stoi("5x") returns 5, so "5x:6,3:4" used to silently run as
  // "5:6,3:4"; every bound must now consume its whole token.
  Config cfg = experiment_config();
  cfg.parse_string("mesh_dims=2 radix=12 fault_model=box fault_box=5x:6,3:4");
  try {
    ExperimentRunner runner(cfg);
    FAIL() << "partially-numeric fault_box bound must throw, not truncate";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'5x'"), std::string::npos) << "names the bad token: " << msg;
    EXPECT_NE(msg.find("5x:6,3:4"), std::string::npos) << "names the full spec: " << msg;
  }
  for (const char* bad : {"x5:6,3:4", "5:6x,3:4", "5:,3:4", ":6,3:4", "5:6,", "nope"}) {
    Config c = experiment_config();
    c.set_str("fault_model", "box");
    c.set_str("fault_box", bad);
    EXPECT_THROW(ExperimentRunner{c}, ConfigError) << bad;
  }
  // The valid grammar still parses: full ranges and bare "v" (= v:v).
  EXPECT_EQ(parse_box_spec("3:5,5:6,3:4"), Box(Coord{3, 5, 3}, Coord{5, 6, 4}));
  EXPECT_EQ(parse_box_spec("4,2:3"), Box(Coord{4, 2}, Coord{4, 3}));
  EXPECT_EQ(parse_box_spec("-2:-1"), Box(Coord{-2}, Coord{-1}));
}

TEST(ExperimentRunner, UnknownComponentNamesFailEagerlyWithSuggestion) {
  // Every pluggable axis fails in the constructor — before any replication
  // runs — listing the registered names plus a did-you-mean.
  const auto expect_eager = [](const std::string& overrides, const std::string& suggestion) {
    Config cfg = experiment_config();
    cfg.parse_string(overrides);
    try {
      ExperimentRunner runner(cfg);
      FAIL() << overrides << " must be rejected eagerly";
    } catch (const ConfigError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("registered:"), std::string::npos) << overrides << ": " << msg;
      EXPECT_NE(msg.find("did you mean '" + suggestion + "'?"), std::string::npos)
          << overrides << ": " << msg;
    }
  };
  expect_eager("router=fault_inof", "fault_info");
  expect_eager("traffic=unifrom", "uniform");
  expect_eager("switching=wormhol", "wormhole");
  expect_eager("fault_model=clusterd", "clustered");
  expect_eager("report=jsn", "json");
  // The traffic disable sentinel is offered alongside the patterns.
  expect_eager("traffic=non", "none");
}

TEST(ExperimentRunner, FaultBoxDimensionMismatchRejected) {
  Config cfg = experiment_config();
  cfg.parse_string("mesh_dims=3 radix=8 fault_model=box fault_box=4:6,5:7");
  Rng rng(1);
  EXPECT_THROW(ExperimentRunner(cfg).build_static(rng), ConfigError)
      << "a 2-D box on a 3-D mesh must not silently run fault-free";
}

TEST(ExperimentRunner, DynamicModeForwardsRouterOptionsToTheFactory) {
  Config cfg = experiment_config();
  cfg.parse_string("mode=dynamic mesh_dims=2 radix=8 faults=2 router=oracle "
                   "oracle_avoid=psychic");
  Rng rng(1);
  EXPECT_THROW(ExperimentRunner(cfg).build_dynamic(rng), ConfigError)
      << "router-level options must reach the registry factory in dynamic mode too";
}

TEST(ExperimentRunner, ReplicationBodyErrorsSurfaceInsteadOfTerminating) {
  // A ConfigError thrown inside a pool worker must reach the caller as an
  // exception, not std::terminate the process.  The box/mesh dimension
  // mismatch is checked at build time (inside the replication body), so —
  // unlike a bad name or a malformed fault_box, which now fail eagerly in
  // the constructor — it genuinely escapes from the workers.
  Config cfg = experiment_config();
  cfg.parse_string("mesh_dims=3 fault_model=box fault_box=4:5,4:5 replications=8 threads=4");
  EXPECT_THROW(ExperimentRunner(cfg).run(), ConfigError);
}

TEST(ExperimentRunner, BoxModelWithMultipleBatchesRejected) {
  Config cfg = experiment_config();
  cfg.parse_string("mode=dynamic fault_model=box fault_box=4:5,4:5 batches=3 "
                   "mesh_dims=2 radix=10");
  Rng rng(1);
  EXPECT_THROW(ExperimentRunner(cfg).build_dynamic(rng), ConfigError)
      << "a deterministic placement cannot honour batches>1; fail loudly";
}

TEST(ExperimentRunner, DynamicBatchesNeverRefailEarlierNodes) {
  Config cfg = experiment_config();
  cfg.parse_string("mode=dynamic mesh_dims=2 radix=10 faults=6 batches=3 "
                   "fault_interval=10 seed=5");
  Rng rng(2);
  const auto env = ExperimentRunner(cfg).build_dynamic(rng);
  std::set<std::string> seen;
  for (const auto& e : env.schedule.events())
    EXPECT_TRUE(seen.insert(e.node.to_string()).second)
        << e.node.to_string() << " scheduled to fail twice";
}

TEST(ExperimentRunner, FaultBoxPlantsTheExactBlock) {
  Config cfg = experiment_config();
  cfg.parse_string("mesh_dims=2 radix=12 fault_model=box fault_box=4:6,5:7");
  Rng rng(1);
  const auto env = ExperimentRunner(cfg).build_static(rng);
  ASSERT_EQ(env.net->blocks().size(), 1u);
  EXPECT_EQ(env.net->blocks()[0].box, Box(Coord{4, 5}, Coord{6, 7}));
}

TEST(Reporters, TableReporterPrintsEveryMetric) {
  ExperimentResult res;
  res.config = experiment_config();
  res.replications = 2;
  res.metrics.add("alpha", 1.0);
  res.metrics.add("beta", 2.5);
  std::ostringstream os;
  TableReporter().report(res, os);
  EXPECT_NE(os.str().find("alpha"), std::string::npos);
  EXPECT_NE(os.str().find("beta"), std::string::npos);
  EXPECT_NE(os.str().find("config:"), std::string::npos);
}

TEST(Reporters, CsvReporterEmitsHeaderAndRows) {
  ExperimentResult res;
  res.config = experiment_config();
  res.metrics.add("alpha", 1.0);
  std::ostringstream os;
  CsvReporter().report(res, os);
  const std::string out = os.str();
  EXPECT_EQ(out.find("config,metric,count,mean,stddev,min,max"), 0u);
  EXPECT_NE(out.find(",alpha,1,"), std::string::npos);
}

TEST(Reporters, JsonReporterEmitsConfigAndMetrics) {
  ExperimentResult res;
  res.config = experiment_config();
  res.replications = 1;
  res.metrics.add("alpha", 0.5);
  std::ostringstream os;
  JsonReporter().report(res, os);
  const std::string out = os.str();
  EXPECT_EQ(out.find("{\"config\":{"), 0u);
  EXPECT_NE(out.find("\"alpha\":{\"count\":1,\"mean\":0.5"), std::string::npos);
}

TEST(Reporters, FactoryResolvesNamesAndRejectsUnknown) {
  EXPECT_EQ(make_reporter("table")->name(), "table");
  EXPECT_EQ(make_reporter("csv")->name(), "csv");
  EXPECT_EQ(make_reporter("json")->name(), "json");
  EXPECT_THROW(make_reporter("morse"), ConfigError);
}

}  // namespace
}  // namespace lgfi
