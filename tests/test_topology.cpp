// Unit tests for the k-ary n-D mesh topology (Section 2.1).

#include <gtest/gtest.h>

#include "src/mesh/topology.h"

namespace lgfi {
namespace {

TEST(Topology, KAryNDMeshBasics) {
  // "A k-ary n-dimensional mesh with N = k^n nodes has an interior node
  // degree of 2n and the network diameter is (k-1)n."
  const MeshTopology m(3, 8);  // 8-ary 3-D
  EXPECT_EQ(m.node_count(), 512);
  EXPECT_EQ(m.direction_count(), 6);
  EXPECT_EQ(m.diameter(), 21);
  EXPECT_EQ(m.dims(), 3);
  EXPECT_EQ(m.extent(1), 8);
}

TEST(Topology, MixedRadix) {
  const MeshTopology m({4, 6, 2});
  EXPECT_EQ(m.node_count(), 48);
  EXPECT_EQ(m.diameter(), 3 + 5 + 1);
}

TEST(Topology, IndexCoordRoundTrip) {
  const MeshTopology m({5, 3, 4});
  for (NodeId id = 0; id < m.node_count(); ++id) {
    const Coord c = m.coord_of(id);
    EXPECT_EQ(m.index_of(c), id);
    EXPECT_TRUE(m.in_bounds(c));
  }
}

TEST(Topology, InteriorDegreeIs2N) {
  const MeshTopology m(4, 5);
  EXPECT_EQ(m.neighbors(Coord{2, 2, 2, 2}).size(), 8u);
}

TEST(Topology, CornerDegreeIsN) {
  const MeshTopology m(3, 5);
  EXPECT_EQ(m.neighbors(Coord{0, 0, 0}).size(), 3u);
  EXPECT_EQ(m.neighbors(Coord{4, 4, 4}).size(), 3u);
}

TEST(Topology, NeighborsDifferInExactlyOneDim) {
  const MeshTopology m(3, 6);
  const Coord u{3, 0, 5};
  for (const Coord& v : m.neighbors(u)) {
    EXPECT_EQ(manhattan_distance(u, v), 1);
  }
}

TEST(Topology, NeighborIdMatchesCoordShift) {
  const MeshTopology m({4, 4, 4});
  const Coord u{1, 2, 3};
  const NodeId uid = m.index_of(u);
  for (int i = 0; i < m.direction_count(); ++i) {
    const Direction d = Direction::from_index(i);
    const NodeId nid = m.neighbor(uid, d);
    if (!m.has_neighbor(u, d)) {
      EXPECT_EQ(nid, kInvalidNode);
    } else {
      EXPECT_EQ(nid, m.index_of(d.apply(u)));
    }
  }
}

TEST(Topology, OuterSurfaceDetection) {
  const MeshTopology m(3, 8);
  EXPECT_TRUE(m.on_outer_surface(Coord{0, 4, 4}));
  EXPECT_TRUE(m.on_outer_surface(Coord{3, 7, 4}));
  EXPECT_FALSE(m.on_outer_surface(Coord{3, 4, 4}));
}

TEST(Topology, PreferredDirectionsReduceDistance) {
  const MeshTopology m(3, 8);
  const Coord u{2, 5, 3};
  const Coord d{6, 5, 1};
  const auto dirs = m.preferred_directions(u, d);
  ASSERT_EQ(dirs.size(), 2u);  // y already matches
  for (const Direction dir : dirs) {
    EXPECT_LT(manhattan_distance(dir.apply(u), d), manhattan_distance(u, d));
  }
}

TEST(Topology, ClipToBounds) {
  const MeshTopology m(2, 6);
  EXPECT_EQ(m.clip(Box(Coord{-2, 3}, Coord{9, 4})), Box(Coord{0, 3}, Coord{5, 4}));
  EXPECT_TRUE(m.clip(Box(Coord{7, 7}, Coord{9, 9})).empty());
}

TEST(Topology, RejectsInvalidShapes) {
  EXPECT_THROW(MeshTopology(std::vector<int>{}), std::invalid_argument);
  EXPECT_THROW(MeshTopology(std::vector<int>{4, 0, 4}), std::invalid_argument);
  EXPECT_THROW(MeshTopology(std::vector<int>(kMaxDims + 1, 3)), std::invalid_argument);
}

TEST(Topology, BoundsBoxCoversAllNodes) {
  const MeshTopology m(std::vector<int>{3, 4});
  EXPECT_EQ(m.bounds().volume(), m.node_count());
}

}  // namespace
}  // namespace lgfi
