// Tests for the open-loop traffic engine: the zero-injection reduction to
// the historical single-message experiment, warmup/measure/drain phasing,
// and the determinism contract (same seed => identical latency histograms,
// byte-identical reports for any thread count).

#include <gtest/gtest.h>

#include <sstream>

#include "src/core/experiment_runner.h"
#include "src/core/traffic_workload.h"

namespace lgfi {
namespace {

TEST(TrafficWorkload, ZeroInjectionProbeReproducesSingleMessageDynamics) {
  // A traffic run with injection_rate=0 and one probe is exactly the
  // historical single-message dynamic experiment — and its detours obey the
  // Theorem 3/4 machinery, so the theorem regime stays reachable from the
  // traffic surface.
  const MeshTopology mesh(2, 12);
  FaultSchedule schedule;
  for (const auto& c : box_fault_placement(mesh, Box(Coord{5, 5}, Coord{7, 6})))
    schedule.add_fail(15, c);

  DynamicSimulationOptions opts;
  opts.link_arbitration = true;
  DynamicSimulation sim(mesh, schedule, opts);
  Rng rng(21);
  TrafficWorkloadOptions topts;
  topts.injection_rate = 0.0;
  topts.warmup_steps = 10;
  topts.measure_steps = 50;
  topts.probes = 1;
  topts.min_probe_distance = 8;
  auto pattern = make_traffic_pattern("uniform", mesh, Config{}, rng);
  TrafficWorkload workload(sim, *pattern, topts, rng);
  const TrafficResult r = workload.run();

  EXPECT_EQ(r.injected, 0);
  EXPECT_EQ(r.measured, 0);
  EXPECT_EQ(r.accepted_throughput, 0.0);
  ASSERT_EQ(r.probe_ids.size(), 1u);
  const MessageProgress& probe = sim.message(r.probe_ids[0]);
  ASSERT_TRUE(probe.delivered);
  EXPECT_EQ(probe.stall_steps, 0) << "an empty network has no contention";

  // Replay the same pair on a plain contention-free simulation launched at
  // the same step: byte-identical message outcome.
  DynamicSimulation replay(mesh, schedule);
  for (int s = 0; s < 10; ++s) replay.step();
  const int id =
      replay.launch_message(probe.header.source(), probe.header.destination());
  replay.run(4000);
  const MessageProgress& direct = replay.message(id);
  EXPECT_EQ(direct.delivered, probe.delivered);
  EXPECT_EQ(direct.end_step, probe.end_step);
  EXPECT_EQ(direct.header.total_steps(), probe.header.total_steps());
  EXPECT_EQ(direct.detours(), probe.detours());

  // Theorem 4 bounds the probe's extra steps, exactly as in the historical
  // experiment.
  const auto bound = theorem4_bound(sim.timeline(probe.start_step), probe.initial_distance);
  EXPECT_GE(bound.max_extra_steps, probe.detours());
}

TEST(TrafficWorkload, PhasesInjectAndDrain) {
  const MeshTopology mesh(2, 8);
  DynamicSimulationOptions opts;
  opts.link_arbitration = true;
  DynamicSimulation sim(mesh, FaultSchedule{}, opts);
  Rng rng(5);
  TrafficWorkloadOptions topts;
  topts.injection_rate = 0.1;
  topts.warmup_steps = 20;
  topts.measure_steps = 60;
  auto pattern = make_traffic_pattern("uniform", mesh, Config{}, rng);
  TrafficWorkload workload(sim, *pattern, topts, rng);
  const TrafficResult r = workload.run();

  EXPECT_GT(r.measured, 0);
  EXPECT_GT(r.injected, r.measured) << "warmup injections are not measured";
  EXPECT_EQ(r.measured_unfinished, 0) << "the drain phase must finish the tagged traffic";
  EXPECT_EQ(r.measured_delivered, r.measured) << "fault-free uniform traffic all delivers";
  EXPECT_EQ(static_cast<long long>(r.latency.count()), r.measured_delivered);
  EXPECT_TRUE(sim.all_messages_done());
  EXPECT_GT(r.accepted_throughput, 0.0);
  EXPECT_LE(r.accepted_throughput, r.offered_load + 1e-12);
  // Minimum latency is at least one step; contention shows up as stalls.
  EXPECT_GE(r.latency.min(), 1);
}

TEST(TrafficWorkload, SameSeedSameLatencyHistogram) {
  const auto histogram = [] {
    const MeshTopology mesh(2, 8);
    DynamicSimulationOptions opts;
    opts.link_arbitration = true;
    DynamicSimulation sim(mesh, FaultSchedule{}, opts);
    Rng rng(99);
    TrafficWorkloadOptions topts;
    topts.injection_rate = 0.2;
    topts.warmup_steps = 10;
    topts.measure_steps = 50;
    auto pattern = make_traffic_pattern("uniform", mesh, Config{}, rng);
    TrafficWorkload workload(sim, *pattern, topts, rng);
    return workload.run().latency.buckets();
  };
  EXPECT_EQ(histogram(), histogram());
}

TEST(TrafficWorkload, ContentionProducesStallsUnderLoad) {
  const MeshTopology mesh(2, 8);
  DynamicSimulationOptions opts;
  opts.link_arbitration = true;
  DynamicSimulation sim(mesh, FaultSchedule{}, opts);
  Rng rng(17);
  TrafficWorkloadOptions topts;
  topts.injection_rate = 0.4;
  topts.warmup_steps = 20;
  topts.measure_steps = 80;
  auto pattern = make_traffic_pattern("bit_complement", mesh, Config{}, rng);
  TrafficWorkload workload(sim, *pattern, topts, rng);
  const TrafficResult r = workload.run();
  EXPECT_GT(r.stall_steps, 0) << "bit_complement at 0.4 must contend on an 8x8 mesh";
  EXPECT_GT(sim.total_stalls(), 0);
}

TEST(TrafficRunner, ReportByteIdenticalAcrossThreadCounts) {
  // The determinism contract extends to the traffic engine: same seed =>
  // byte-identical latency statistics whether the replications run on one
  // thread or fan out over 8.
  const auto report_with_threads = [](int threads) {
    Config cfg = experiment_config();
    cfg.parse_string(
        "traffic=uniform injection_rate=0.15 warmup_steps=20 measure_steps=60 "
        "mesh_dims=2 radix=8 faults=3 routes=2 replications=6 seed=13");
    cfg.set_int("threads", threads);
    const auto res = ExperimentRunner(cfg).run();
    std::ostringstream os;
    JsonReporter().report(res, os);
    const std::string s = os.str();
    return s.substr(s.find("\"metrics\""));
  };
  const std::string serial = report_with_threads(1);
  EXPECT_EQ(serial, report_with_threads(8));
  EXPECT_EQ(serial, report_with_threads(3));
  EXPECT_NE(serial.find("\"latency\""), std::string::npos);
  EXPECT_NE(serial.find("\"throughput\""), std::string::npos);
  EXPECT_NE(serial.find("\"stall_steps\""), std::string::npos);
}

TEST(TrafficRunner, ZeroRateRecordsProbesButNoThroughput) {
  Config cfg = experiment_config();
  cfg.parse_string(
      "traffic=uniform injection_rate=0 warmup_steps=5 measure_steps=40 "
      "mesh_dims=2 radix=8 routes=3 faults=0 replications=2 seed=4");
  const auto res = ExperimentRunner(cfg).run();
  EXPECT_EQ(res.metrics.stats("delivered").count(), 6) << "routes * replications probes";
  EXPECT_DOUBLE_EQ(res.metrics.mean("delivered"), 1.0);
  EXPECT_DOUBLE_EQ(res.metrics.mean("throughput"), 0.0);
  EXPECT_FALSE(res.metrics.has("latency")) << "no tagged traffic at rate 0";
}

TEST(TrafficRunner, UnknownPatternRejectedEagerly) {
  Config cfg = experiment_config();
  cfg.set_str("traffic", "tornado");
  EXPECT_THROW(ExperimentRunner{cfg}, ConfigError);
}

TEST(TrafficRunner, TransposeUniformRadixRunsEndToEnd) {
  // The config surface only builds uniform-radix meshes, so transpose always
  // works here; the mixed-radix rejection is covered at the pattern level
  // (test_traffic_pattern.cpp).  This asserts the happy path end-to-end.
  Config cfg = experiment_config();
  cfg.parse_string("traffic=transpose mesh_dims=2 radix=8 measure_steps=20");
  const auto res = ExperimentRunner(cfg).run();
  EXPECT_GT(res.metrics.mean("throughput"), 0.0);
}

}  // namespace
}  // namespace lgfi
