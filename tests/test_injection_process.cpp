// Tests for the injection-process axis (`injection=`): every registered
// process constructs, the default bernoulli path is byte-identical to the
// pre-axis hand-rolled loop, closed-loop request-reply obeys its window and
// keeps the thread-count determinism contract, batch injects its exact
// quota, traces round-trip record -> replay bit-for-bit, and eager
// validation rejects bad steps/knob-on-wrong-process configs by name.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/core/campaign.h"
#include "src/core/component_catalog.h"
#include "src/core/experiment_runner.h"
#include "src/core/traffic_workload.h"
#include "src/sim/injection_process.h"
#include "src/sim/trace_io.h"

namespace lgfi {
namespace {

Config traffic_config(const std::string& overrides) {
  Config cfg = experiment_config();
  cfg.parse_string("traffic=uniform mesh_dims=2 radix=6 warmup_steps=5 measure_steps=40 "
                   "routes=0 faults=0 replications=1 seed=11");
  if (!overrides.empty()) cfg.parse_string(overrides);
  return cfg;
}

TEST(InjectionProcessRegistry, EveryRegisteredProcessConstructs) {
  const MeshTopology mesh(2, 6);
  // `trace` needs an existing file recorded on the same topology.
  const std::string trace_path = testing::TempDir() + "injection_ctor.trace";
  {
    TraceWriter writer(trace_path, mesh);
    writer.add(0, 3, 17, 1);
    writer.close();
  }
  Config cfg = experiment_config();
  cfg.set_str("trace_file", trace_path);
  for (const auto& name : InjectionProcessRegistry::instance().names()) {
    Rng rng(1);
    auto process = make_injection_process(name, mesh, cfg, rng);
    ASSERT_NE(process, nullptr) << name;
    EXPECT_EQ(process->name(), name);
  }
  EXPECT_GE(InjectionProcessRegistry::instance().names().size(), 5u);
}

TEST(InjectionProcessRegistry, UnknownNameFailsEagerlyWithSuggestion) {
  Config cfg = traffic_config("");
  cfg.set_str("injection", "bernouli");
  try {
    ExperimentRunner runner(cfg);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("injection process"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean 'bernoulli'"), std::string::npos) << what;
  }
}

TEST(InjectionProcessRegistry, CatalogListsTheInjectionSectionWithKeys) {
  const std::string text = describe_components();
  const size_t section = text.find("injection processes (injection=)");
  ASSERT_NE(section, std::string::npos);
  for (const char* expected : {"bernoulli", "onoff", "batch", "closed_loop", "trace",
                               "window", "duty_cycle", "burst_len", "trace_file"})
    EXPECT_NE(text.find(expected, section), std::string::npos) << expected;
}

// The pre-axis TrafficWorkload loop, verbatim: one Bernoulli coin per
// terminal per step, pattern draw on fire, warmup/measure/drain phasing.
// The pin: driving a twin simulation with this replica produces the exact
// message table the registry-built bernoulli process produces.
struct LegacyResult {
  long long offered = 0;
  long long injected = 0;
  long long measured = 0;
};

LegacyResult legacy_bernoulli_run(DynamicSimulation& sim, TrafficPattern& pattern,
                                  const TrafficWorkloadOptions& o, Rng& rng) {
  LegacyResult result;
  const Topology& mesh = sim.mesh();
  const auto inject = [&](bool measured) {
    const StatusField& field = sim.model().field();
    for (NodeId node = 0; node < static_cast<NodeId>(mesh.node_count()); ++node) {
      for (int t = 0; t < mesh.concentration(); ++t) {
        if (!rng.bernoulli(o.injection_rate)) continue;
        if (measured) ++result.offered;
        if (field.at(node) != NodeStatus::kEnabled) continue;
        const Coord source = mesh.coord_of(node);
        const Coord dest = pattern.destination(source, rng);
        if (dest == source) continue;
        if (is_block_member(field.at(dest))) continue;
        (void)sim.launch_message(source, dest);
        ++result.injected;
        if (measured) ++result.measured;
      }
    }
  };
  for (long long s = 0; s < o.warmup_steps; ++s) {
    inject(false);
    sim.step();
  }
  for (long long s = 0; s < o.measure_steps; ++s) {
    inject(true);
    sim.step();
  }
  long long cap = 4ll * mesh.direction_count() * mesh.node_count();
  while (!sim.all_messages_done() && cap-- > 0) sim.step();
  return result;
}

TEST(InjectionProcess, BernoulliByteIdenticalToLegacyLoop) {
  const MeshTopology mesh(2, 10);
  FaultSchedule schedule;
  for (const auto& c : box_fault_placement(mesh, Box(Coord{4, 4}, Coord{6, 5})))
    schedule.add_fail(12, c);
  TrafficWorkloadOptions topts;
  topts.injection_rate = 0.15;
  topts.warmup_steps = 15;
  topts.measure_steps = 60;

  DynamicSimulationOptions opts;
  opts.link_arbitration = true;

  DynamicSimulation legacy_sim(mesh, schedule, opts);
  Rng legacy_rng(42);
  auto legacy_pattern = make_traffic_pattern("uniform", mesh, Config{}, legacy_rng);
  const LegacyResult legacy =
      legacy_bernoulli_run(legacy_sim, *legacy_pattern, topts, legacy_rng);

  DynamicSimulation sim(mesh, schedule, opts);
  Rng rng(42);
  auto pattern = make_traffic_pattern("uniform", mesh, Config{}, rng);
  Config cfg = experiment_config();
  cfg.set_double("injection_rate", topts.injection_rate);
  auto process = make_injection_process("bernoulli", mesh, cfg, rng);
  TrafficWorkload workload(sim, *pattern, *process, topts, rng);
  const TrafficResult r = workload.run();

  EXPECT_EQ(r.offered, legacy.offered);
  EXPECT_EQ(r.injected, legacy.injected);
  EXPECT_EQ(r.measured, legacy.measured);
  ASSERT_EQ(sim.messages().size(), legacy_sim.messages().size());
  for (size_t i = 0; i < sim.messages().size(); ++i) {
    const MessageProgress& a = sim.messages()[i];
    const MessageProgress& b = legacy_sim.messages()[i];
    ASSERT_EQ(a.header.source(), b.header.source()) << "message " << i;
    ASSERT_EQ(a.header.destination(), b.header.destination()) << "message " << i;
    EXPECT_EQ(a.start_step, b.start_step) << "message " << i;
    EXPECT_EQ(a.end_step, b.end_step) << "message " << i;
    EXPECT_EQ(a.delivered, b.delivered) << "message " << i;
    EXPECT_EQ(a.stall_steps, b.stall_steps) << "message " << i;
  }
}

TEST(InjectionProcess, ClosedLoopWindowBoundsOutstandingPairs) {
  // rate=1 would saturate an open loop instantly; with window=1 every slot
  // holds one pair at a time, so the achieved offered load collapses to the
  // pair completion rate and every latency sample is a full round trip.
  Config cfg = traffic_config(
      "injection=closed_loop window=1 injection_rate=1 measure_steps=80 drain_steps=2000");
  const auto res = ExperimentRunner(cfg).run();
  EXPECT_GT(res.metrics.mean("throughput"), 0.0);
  EXPECT_LT(res.metrics.mean("offered_load"), 0.6)
      << "window=1 must self-throttle far below the configured rate 1.0";
  EXPECT_DOUBLE_EQ(res.metrics.mean("delivered_frac"), 1.0);
  EXPECT_DOUBLE_EQ(res.metrics.mean("drained"), 1.0);
  EXPECT_GE(res.metrics.stats("latency").min(), 2.0)
      << "a pair is a round trip: at least one step out, one back";
}

TEST(InjectionProcess, ClosedLoopCampaignByteIdenticalAcrossThreadCounts) {
  const auto render = [](int threads) {
    SweepSpec spec(experiment_config());
    spec.parse_string(
        "injection=closed_loop window=2 injection_rate=[0.05,0.2] traffic=uniform "
        "mesh_dims=2 radix=6 warmup_steps=10 measure_steps=60 routes=0 faults=3 "
        "replications=4 seed=8 report=json");
    spec.base().set_int("threads", threads);
    std::ostringstream os;
    CampaignRunner(spec).run_and_report(os);
    return os.str();
  };
  const std::string serial = render(1);
  EXPECT_EQ(serial, render(8));
  EXPECT_NE(serial.find("\"latency\""), std::string::npos);
}

TEST(InjectionProcess, BatchInjectsTheExactQuota) {
  // Fault-free uniform traffic admits every offer (uniform never returns the
  // source), so total injections are exactly terminals * size * count —
  // including the second batch, which only starts once the first drains.
  Config cfg = traffic_config(
      "injection=batch batch_size=3 batch_count=2 measure_steps=200 drain_steps=2000");
  const auto res = ExperimentRunner(cfg).run();
  EXPECT_DOUBLE_EQ(res.metrics.mean("injected"), 36.0 * 3.0 * 2.0);
  EXPECT_DOUBLE_EQ(res.metrics.mean("delivered_frac"), 1.0);
  EXPECT_DOUBLE_EQ(res.metrics.mean("drained"), 1.0);
}

TEST(InjectionProcess, OnOffLongRunLoadMatchesTheConfiguredRate) {
  // The ON-phase coin is injection_rate / duty_cycle, so over whole cycles
  // the offered load averages back to injection_rate (loose bounds: one
  // replication, finite window).
  Config cfg = traffic_config(
      "injection=onoff duty_cycle=0.25 burst_len=4 injection_rate=0.1 "
      "measure_steps=160 replications=4");
  const auto res = ExperimentRunner(cfg).run();
  const double offered = res.metrics.mean("offered_load");
  EXPECT_GT(offered, 0.05);
  EXPECT_LT(offered, 0.2);
  EXPECT_GT(res.metrics.mean("throughput"), 0.0);
}

TEST(InjectionProcess, TraceRecordReplayRoundTripsBitForBit) {
  const std::string trace_a = testing::TempDir() + "roundtrip_a.trace";
  const std::string trace_b = testing::TempDir() + "roundtrip_b.trace";

  Config record = traffic_config("faults=3 injection_rate=0.1 seed=9");
  record.set_str("trace_record", trace_a);
  const auto res_a = ExperimentRunner(record).run();

  Config replay = traffic_config("faults=3 injection_rate=0.1 seed=9");
  replay.set_str("injection", "trace");
  replay.set_str("trace_file", trace_a);
  replay.set_str("trace_record", trace_b);
  const auto res_b = ExperimentRunner(replay).run();

  // The replayed injection stream re-records byte-for-byte.
  const MeshTopology mesh(2, 6);
  const auto records_a = read_trace(trace_a, mesh);
  const auto records_b = read_trace(trace_b, mesh);
  ASSERT_FALSE(records_a.empty());
  EXPECT_EQ(records_a, records_b);

  // Same packets at the same steps through the same network: identical
  // delivery statistics.  (offered_load legitimately differs — offers
  // rejected by admission are never recorded, so on replay offered ==
  // injected.)
  EXPECT_EQ(res_a.metrics.stats("latency").count(), res_b.metrics.stats("latency").count());
  EXPECT_DOUBLE_EQ(res_a.metrics.mean("latency"), res_b.metrics.mean("latency"));
  EXPECT_DOUBLE_EQ(res_a.metrics.mean("throughput"), res_b.metrics.mean("throughput"));
  EXPECT_DOUBLE_EQ(res_a.metrics.mean("stall_steps"), res_b.metrics.mean("stall_steps"));
}

TEST(InjectionProcess, TraceRejectsTopologyMismatch) {
  const std::string path = testing::TempDir() + "mismatch.trace";
  {
    TraceWriter writer(path, MeshTopology(2, 6));
    writer.add(0, 0, 1, 1);
    writer.close();
  }
  Config cfg = traffic_config("radix=8");
  cfg.set_str("injection", "trace");
  cfg.set_str("trace_file", path);
  EXPECT_THROW(ExperimentRunner{cfg}, ConfigError);
}

TEST(InjectionProcess, EagerValidationRejectsBadTrafficConfigs) {
  const auto expect_rejected = [](const std::string& overrides, const std::string& needle) {
    Config cfg = traffic_config(overrides);
    try {
      ExperimentRunner runner(cfg);
      FAIL() << "expected ConfigError for: " << overrides;
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << overrides << " -> " << e.what();
    }
  };
  expect_rejected("measure_steps=0", "measure_steps");
  expect_rejected("measure_steps=-5", "measure_steps");
  expect_rejected("drain_steps=-1", "drain_steps");
  // Knobs on a process that ignores them fail by name.
  expect_rejected("window=8", "window");
  expect_rejected("injection=closed_loop duty_cycle=0.3", "duty_cycle");
  expect_rejected("injection=batch burst_len=4", "burst_len");
  expect_rejected("injection=onoff batch_size=2", "batch_size");
  expect_rejected("injection=trace", "trace_file");
  // Out-of-range knob values fail eagerly through the throwaway build.
  expect_rejected("injection=closed_loop window=0", "window");
  expect_rejected("injection=onoff duty_cycle=1.5", "duty_cycle");
  expect_rejected("injection=onoff burst_len=0", "burst_len");
  expect_rejected("injection=batch batch_size=0", "batch_size");
  expect_rejected("injection_rate=-0.1", "injection_rate");
}

TEST(InjectionProcess, EagerValidationRejectsProcessesWithoutTraffic) {
  Config cfg = experiment_config();
  cfg.set_str("injection", "closed_loop");
  EXPECT_THROW(ExperimentRunner{cfg}, ConfigError) << "closed_loop without traffic=";
  Config cfg2 = experiment_config();
  cfg2.set_str("trace_record", "/tmp/nope.trace");
  EXPECT_THROW(ExperimentRunner{cfg2}, ConfigError) << "trace_record without traffic=";
}

TEST(InjectionProcess, TraceRecordNeedsSingleReplication) {
  Config cfg = traffic_config("replications=2");
  cfg.set_str("trace_record", testing::TempDir() + "multi.trace");
  try {
    ExperimentRunner runner(cfg);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("replications"), std::string::npos) << e.what();
  }
}

TEST(InjectionProcess, DefaultInjectionKeyIsBernoulliAndRunsUnchanged) {
  // The schema default must be the historical behavior: leaving injection=
  // alone runs bernoulli, and the key exists for campaigns to sweep.
  const Config cfg = experiment_config();
  EXPECT_EQ(cfg.get_str("injection"), "bernoulli");
  EXPECT_TRUE(cfg.is_default("injection"));
  const auto res = ExperimentRunner(traffic_config("injection_rate=0.1")).run();
  EXPECT_GT(res.metrics.mean("throughput"), 0.0);
}

}  // namespace
}  // namespace lgfi
