// Tests for the router registry: every built-in router resolves by name,
// unknown names are rejected, factories honour config options, and InfoMode
// resolution follows the router's registered default.

#include <gtest/gtest.h>

#include "src/core/experiment_runner.h"
#include "src/routing/route_walker.h"
#include "src/routing/router_registry.h"

namespace lgfi {
namespace {

TEST(RouterRegistry, AllFiveBuiltInsResolve) {
  for (const char* name :
       {"dimension_order", "no_info", "fault_info", "global_table", "oracle"}) {
    EXPECT_TRUE(RouterRegistry::instance().contains(name)) << name;
    const auto router = make_router(name);
    ASSERT_NE(router, nullptr) << name;
    EXPECT_FALSE(router->name().empty()) << name;
  }
  const auto names = RouterRegistry::instance().names();
  EXPECT_GE(names.size(), 5u);
}

TEST(RouterRegistry, UnknownNameRejectedListingRegistered) {
  try {
    make_router("warp_drive");
    FAIL() << "unknown router must throw";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("warp_drive"), std::string::npos);
    EXPECT_NE(msg.find("fault_info"), std::string::npos) << "message lists registered names";
  }
}

TEST(RouterRegistry, DuplicateRegistrationRejected) {
  EXPECT_THROW(RouterRegistry::instance().add(
                   "fault_info", InfoMode::kLimitedGlobal,
                   [](const Config&) -> std::unique_ptr<Router> { return nullptr; }),
               ConfigError);
}

TEST(RouterRegistry, DefaultInfoModesMatchTheRoutersDesign) {
  auto& reg = RouterRegistry::instance();
  EXPECT_EQ(reg.default_info_mode("fault_info"), InfoMode::kLimitedGlobal);
  EXPECT_EQ(reg.default_info_mode("no_info"), InfoMode::kNone);
  EXPECT_EQ(reg.default_info_mode("global_table"), InfoMode::kInstantGlobal);
  EXPECT_EQ(reg.default_info_mode("dimension_order"), InfoMode::kNone);
}

TEST(RouterRegistry, InfoModeParsingRoundTrips) {
  for (const InfoMode mode : {InfoMode::kLimitedGlobal, InfoMode::kNone,
                              InfoMode::kInstantGlobal, InfoMode::kDelayedGlobal})
    EXPECT_EQ(parse_info_mode(to_string(mode)), mode);
  EXPECT_THROW(parse_info_mode("telepathy"), ConfigError);
}

TEST(RouterRegistry, ResolveInfoModeFromConfig) {
  Config cfg = experiment_config();
  // auto: follow the router's registered default.
  cfg.set_str("router", "no_info");
  EXPECT_EQ(resolve_info_mode(cfg), InfoMode::kNone);
  cfg.set_str("router", "fault_info");
  EXPECT_EQ(resolve_info_mode(cfg), InfoMode::kLimitedGlobal);
  // An explicit mode overrides the router default.
  cfg.set_str("info_mode", "delayed_global");
  EXPECT_EQ(resolve_info_mode(cfg), InfoMode::kDelayedGlobal);
}

TEST(RouterRegistry, FactoriesHonourConfigOptions) {
  Config cfg = experiment_config();
  cfg.set_str("oracle_avoid", "faulty_only");
  EXPECT_NE(make_router("oracle", cfg), nullptr);
  cfg.set_str("oracle_avoid", "psychic");
  EXPECT_THROW(make_router("oracle", cfg), ConfigError);

  Config ecube = experiment_config();
  ecube.set_bool("ecube_strict", false);
  EXPECT_NE(make_router("dimension_order", ecube), nullptr);
}

TEST(RouterRegistry, RegistryRoutersRouteEndToEnd) {
  // Each built-in router delivers on a fault-free 2-D field.
  const MeshTopology mesh(2, 8);
  StatusField field(mesh);
  EmptyInfoProvider info;
  RoutingContext ctx{&mesh, &field, &info};
  for (const char* name :
       {"dimension_order", "no_info", "fault_info", "global_table", "oracle"}) {
    const auto router = make_router(name);
    const auto r = run_static_route(ctx, *router, Coord{0, 0}, Coord{6, 5});
    EXPECT_TRUE(r.delivered) << name;
    EXPECT_EQ(r.total_steps, 11) << name << " must be minimal on a clean mesh";
  }
}

TEST(RouterRegistry, RouterNameForModeMatchesHistoricalPairing) {
  EXPECT_STREQ(router_name_for(InfoMode::kLimitedGlobal), "fault_info");
  EXPECT_STREQ(router_name_for(InfoMode::kNone), "no_info");
  EXPECT_STREQ(router_name_for(InfoMode::kInstantGlobal), "global_table");
  EXPECT_STREQ(router_name_for(InfoMode::kDelayedGlobal), "global_table");
}

}  // namespace
}  // namespace lgfi
