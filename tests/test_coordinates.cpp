// Unit tests for Coord, Direction and DirectionSet (Section 2.1 geometry).

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "src/mesh/coordinates.h"
#include "src/mesh/direction.h"

namespace lgfi {
namespace {

TEST(Coord, ConstructionAndAccess) {
  const Coord c{3, 5, 4};
  EXPECT_EQ(c.size(), 3);
  EXPECT_EQ(c[0], 3);
  EXPECT_EQ(c[1], 5);
  EXPECT_EQ(c[2], 4);
  EXPECT_EQ(c.to_string(), "(3,5,4)");
}

TEST(Coord, ZeroOfDims) {
  const Coord z(4);
  EXPECT_EQ(z.size(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(z[i], 0);
}

TEST(Coord, WithAndShifted) {
  const Coord c{1, 2, 3};
  EXPECT_EQ(c.with(1, 9), (Coord{1, 9, 3}));
  EXPECT_EQ(c.shifted(2, -1), (Coord{1, 2, 2}));
  EXPECT_EQ(c, (Coord{1, 2, 3})) << "with/shifted must not mutate";
}

TEST(Coord, ManhattanDistanceMatchesPaperDefinition) {
  // D(u, v) = |u1-v1| + |u2-v2| + ... + |un-vn|
  EXPECT_EQ(manhattan_distance(Coord{0, 0, 0}, Coord{3, 5, 4}), 12);
  EXPECT_EQ(manhattan_distance(Coord{5, 5}, Coord{5, 5}), 0);
  EXPECT_EQ(manhattan_distance(Coord{2, 7}, Coord{7, 2}), 10);
}

TEST(Coord, LexicographicOrder) {
  std::set<Coord> s{Coord{1, 2}, Coord{0, 9}, Coord{1, 1}};
  auto it = s.begin();
  EXPECT_EQ(*it++, (Coord{0, 9}));
  EXPECT_EQ(*it++, (Coord{1, 1}));
  EXPECT_EQ(*it++, (Coord{1, 2}));
}

TEST(Coord, HashDistinguishesDimensionality) {
  std::unordered_set<Coord, CoordHash> s;
  s.insert(Coord{0, 0});
  s.insert(Coord{0, 0, 0});
  EXPECT_EQ(s.size(), 2u);
}

TEST(Direction, EncodingRoundTrip) {
  for (int dim = 0; dim < kMaxDims; ++dim) {
    for (bool pos : {false, true}) {
      const Direction d(dim, pos);
      EXPECT_EQ(d.dim(), dim);
      EXPECT_EQ(d.positive(), pos);
      EXPECT_EQ(Direction::from_index(d.index()), d);
    }
  }
}

TEST(Direction, OppositeFlipsSignOnly) {
  const Direction d(2, true);
  EXPECT_EQ(d.opposite(), Direction(2, false));
  EXPECT_EQ(d.opposite().opposite(), d);
}

TEST(Direction, ApplyMovesOneHop) {
  const Coord c{4, 4, 4};
  EXPECT_EQ(Direction(0, true).apply(c), (Coord{5, 4, 4}));
  EXPECT_EQ(Direction(1, false).apply(c), (Coord{4, 3, 4}));
  EXPECT_EQ(Direction(2, true).apply(c), (Coord{4, 4, 5}));
}

TEST(Direction, NoneIsDistinct) {
  EXPECT_TRUE(Direction::none().is_none());
  EXPECT_FALSE(Direction(0, false).is_none());
}

TEST(DirectionSet, InsertContainsErase) {
  DirectionSet s;
  EXPECT_TRUE(s.empty());
  s.insert(Direction(1, true));
  s.insert(Direction(0, false));
  EXPECT_TRUE(s.contains(Direction(1, true)));
  EXPECT_FALSE(s.contains(Direction(1, false)));
  EXPECT_EQ(s.count(), 2);
  s.erase(Direction(1, true));
  EXPECT_FALSE(s.contains(Direction(1, true)));
  EXPECT_EQ(s.count(), 1);
}

TEST(DirectionSet, HoldsAllDirectionsOfMaxDims) {
  DirectionSet s;
  for (int i = 0; i < 2 * kMaxDims; ++i) s.insert(Direction::from_index(i));
  EXPECT_EQ(s.count(), 2 * kMaxDims);
}

}  // namespace
}  // namespace lgfi
