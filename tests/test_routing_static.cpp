// Static-environment routing tests: Algorithm 3 semantics, direction
// classification, P5 (safe source => minimal delivery), P6 (termination /
// completeness with persistent marks), and baseline router behaviour.

#include <gtest/gtest.h>

#include "src/fault/block_analyzer.h"
#include "src/fault/boundary_model.h"
#include "src/fault/labeling.h"
#include "src/fault/safety.h"
#include "src/routing/direction_policy.h"
#include "src/routing/global_table_router.h"
#include "src/routing/oracle_router.h"
#include "src/routing/route_walker.h"
#include "src/routing/router_registry.h"
#include "src/sim/fault_schedule.h"
#include "src/sim/rng.h"

namespace lgfi {
namespace {

struct StaticWorld {
  MeshTopology mesh;
  StatusField field;
  std::vector<Box> blocks;
  InformationPlacement placement;
  StoreInfoProvider provider;
  RoutingContext ctx;

  StaticWorld(int dims, int radix, const std::vector<Coord>& faults)
      : mesh(dims, radix),
        field(stabilized_field(mesh, faults)),
        blocks(block_boxes(field)),
        placement(compute_information_placement(mesh, blocks)),
        provider(placement.store) {
    ctx.mesh = &mesh;
    ctx.field = &field;
    ctx.info = &provider;
  }
};

TEST(RoutingHeader, ForwardAndBacktrackMaintainStack) {
  RoutingHeader h(Coord{0, 0}, Coord{3, 3});
  EXPECT_TRUE(h.at_source());
  h.forward(Direction(0, true));
  EXPECT_EQ(h.current(), (Coord{1, 0}));
  EXPECT_EQ(h.path_hops(), 1);
  EXPECT_TRUE(h.path()[0].used.contains(Direction(0, true)));
  h.forward(Direction(1, true));
  EXPECT_EQ(h.current(), (Coord{1, 1}));
  h.backtrack();
  EXPECT_EQ(h.current(), (Coord{1, 0}));
  EXPECT_EQ(h.forward_steps(), 2);
  EXPECT_EQ(h.backtrack_steps(), 1);
  EXPECT_EQ(h.total_steps(), 3);
}

TEST(RoutingHeader, PoppedNodesLoseMarksByDefault) {
  RoutingHeader h(Coord{0, 0}, Coord{3, 3});
  h.forward(Direction(0, true));
  h.forward(Direction(1, true));
  h.backtrack();
  h.backtrack();
  h.forward(Direction(0, true));  // revisit (1,0)
  EXPECT_TRUE(h.top().used.empty()) << "paper semantics: marks live on the path only";
}

TEST(RoutingHeader, PersistentMarksSurviveBacktrack) {
  RoutingHeader h(Coord{0, 0}, Coord{3, 3});
  h.enable_persistent_marks();
  h.forward(Direction(0, true));
  h.forward(Direction(1, true));
  h.backtrack();  // pops (1,1)
  h.backtrack();  // pops (1,0), whose used = {+d1}
  h.forward(Direction(0, true));  // revisit (1,0)
  EXPECT_TRUE(h.top().used.contains(Direction(1, true)));
}

TEST(DirectionPolicy, ClassifiesPreferredAndSpare) {
  StaticWorld w(2, 8, {});
  const Coord u{4, 4};
  const Coord d{6, 4};
  DirectionPolicyOptions opts;
  EXPECT_EQ(classify_direction(w.ctx, u, d, Direction(0, true), {}, opts),
            DirectionClass::kPreferred);
  EXPECT_EQ(classify_direction(w.ctx, u, d, Direction(0, false), {}, opts),
            DirectionClass::kSpare);
  EXPECT_EQ(classify_direction(w.ctx, u, d, Direction(1, true), {}, opts),
            DirectionClass::kSpare);
}

TEST(DirectionPolicy, UsedAndBlockedAreExcluded) {
  StaticWorld w(2, 8, {Coord{5, 4}});
  const Coord u{4, 4};
  const Coord d{6, 4};
  DirectionPolicyOptions opts;
  DirectionSet used;
  used.insert(Direction(1, true));
  EXPECT_EQ(classify_direction(w.ctx, u, d, Direction(1, true), used, opts),
            DirectionClass::kExcluded);
  EXPECT_EQ(classify_direction(w.ctx, u, d, Direction(0, true), {}, opts),
            DirectionClass::kExcluded)
      << "direction into a faulty node is excluded";
}

TEST(DirectionPolicy, SpareAlongBlockOutranksPlainSpare) {
  // Block to the east of u; a spare that slides along it (y moves) ranks
  // above the spare moving away from everything (-x).
  StaticWorld w(2, 10, {Coord{5, 4}, Coord{5, 5}, Coord{5, 3}});
  const Coord u{4, 4};  // west of the fault column
  const Coord d{7, 4};  // east of it: +x preferred but faulty
  const auto cands = ordered_candidates(w.ctx, u, d, {}, Direction::none(), {});
  ASSERT_FALSE(cands.empty());
  EXPECT_EQ(cands.front().cls, DirectionClass::kSpareAlongBlock);
  EXPECT_EQ(cands.front().dir.dim(), 1) << "slide along the block in y";
}

TEST(DirectionPolicy, DetourPreferredDemotedBelowSpares) {
  // u sits below a block that cuts all minimal paths to d; the preferred +y
  // becomes preferred-but-detour and must rank below the lateral spares.
  const MeshTopology mesh(2, 12);
  StatusField field(mesh);  // keep everything enabled; info alone drives it
  InfoStore store(mesh);
  const Box block(Coord{3, 6}, Coord{7, 7});
  const Coord u{5, 4};
  store.deposit(mesh.index_of(u), BlockInfo{block, 0});
  StoreInfoProvider provider(store);
  RoutingContext ctx{&mesh, &field, &provider};
  const Coord d{5, 10};

  const auto cands = ordered_candidates(ctx, u, d, {}, Direction::none(), {});
  ASSERT_FALSE(cands.empty());
  bool found_detour = false;
  for (const auto& c : cands) {
    if (c.dir == Direction(1, true)) {
      EXPECT_EQ(c.cls, DirectionClass::kPreferredDetour);
      found_detour = true;
    }
  }
  EXPECT_TRUE(found_detour);
  EXPECT_NE(cands.front().cls, DirectionClass::kPreferredDetour)
      << "something else must outrank the detour direction";
}

TEST(Routing, FaultFreeDeliversMinimal) {
  StaticWorld w(3, 8, {});
  const auto router = make_router("fault_info");
  const auto r = run_static_route(w.ctx, *router, Coord{0, 0, 0}, Coord{7, 7, 7});
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.total_steps, 21);
  EXPECT_EQ(r.detours(), 0);
  EXPECT_EQ(r.final_path_hops, 21);
}

TEST(Routing, SourceEqualsDestination) {
  StaticWorld w(2, 8, {});
  const auto router = make_router("fault_info");
  const auto r = run_static_route(w.ctx, *router, Coord{3, 3}, Coord{3, 3});
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.total_steps, 0);
}

TEST(Routing, SafeSourceDeliversMinimal) {
  // P5: safe source (Theorem 2) => delivery in exactly D steps.
  const MeshTopology mesh(3, 8);
  Rng rng(0x5AFE2);
  int tested = 0;
  for (int trial = 0; trial < 30; ++trial) {
    Rng t = rng.fork(static_cast<uint64_t>(trial));
    const auto faults = clustered_fault_placement(mesh, 8, t);
    StaticWorld w(3, 8, faults);
    const auto router = make_router("fault_info");
    for (int pair = 0; pair < 10; ++pair) {
      Coord s(3), d(3);
      for (int i = 0; i < 3; ++i) {
        s[i] = t.uniform_int(0, 7);
        d[i] = t.uniform_int(0, 7);
      }
      if (w.field.at(s) != NodeStatus::kEnabled || w.field.at(d) != NodeStatus::kEnabled)
        continue;
      if (!is_safe_source(w.blocks, s, d)) continue;
      const auto r = run_static_route(w.ctx, *router, s, d);
      EXPECT_TRUE(r.delivered) << s.to_string() << " -> " << d.to_string();
      EXPECT_EQ(r.total_steps, manhattan_distance(s, d))
          << s.to_string() << " -> " << d.to_string();
      ++tested;
    }
  }
  EXPECT_GT(tested, 50) << "sample size sanity";
}

TEST(Routing, InformedAvoidsDangerousPrism) {
  // Classic trap: wide block [4:11, 8:9]; the dangerous prism for +y
  // crossings is x in [4,11], y < 8.  A route from WEST of the prism to a
  // destination above the block crosses the wall at x = 3 and must turn
  // north there instead of entering; the walk stays minimal.
  StaticWorld w(2, 16, box_fault_placement(MeshTopology(2, 16), Box(Coord{4, 8}, Coord{11, 9})));
  ASSERT_EQ(w.blocks.size(), 1u);
  const auto informed = make_router("fault_info");
  const Coord s{1, 2}, d{7, 14};
  const auto r = run_static_route(w.ctx, *informed, s, d);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.backtrack_steps, 0) << "boundary info should prevent dead-ends";
  EXPECT_EQ(r.total_steps, manhattan_distance(s, d))
      << "turning at the wall keeps the route minimal";

  // The info-free router walks into the prism, hits the block surface and
  // must crawl around it — strictly more steps.
  const auto blind = make_router("no_info");
  EmptyInfoProvider empty;
  RoutingContext blind_ctx = w.ctx;
  blind_ctx.info = &empty;
  const auto rb = run_static_route(blind_ctx, *blind, s, d);
  EXPECT_TRUE(rb.delivered);
  EXPECT_GT(rb.total_steps, r.total_steps) << "information must help";
}

TEST(Routing, SourceInsidePrismStillDelivers) {
  // A source already inside the dangerous area (an unsafe source in
  // Theorem 5's sense) gets no early warning — walls only guard entry — but
  // the route still delivers after learning at the block's envelope.
  StaticWorld w(2, 16, box_fault_placement(MeshTopology(2, 16), Box(Coord{4, 8}, Coord{11, 9})));
  const auto informed = make_router("fault_info");
  const auto r = run_static_route(w.ctx, *informed, Coord{7, 2}, Coord{8, 14});
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.backtrack_steps, 0);
  EXPECT_GT(r.total_steps, manhattan_distance(Coord{7, 2}, Coord{8, 14}))
      << "a detour around the block is unavoidable from inside the prism";
}

TEST(Routing, PersistentMarksCompleteness) {
  // P6: with persistent marks, routing always terminates with the correct
  // verdict on random connected fields.
  const MeshTopology mesh(3, 8);
  Rng rng(0x7E57);
  for (int trial = 0; trial < 15; ++trial) {
    Rng t = rng.fork(static_cast<uint64_t>(trial));
    const auto faults = random_fault_placement(mesh, 30, t);
    StaticWorld w(3, 8, faults);
    const auto router = make_router("fault_info");
    for (int pair = 0; pair < 6; ++pair) {
      Coord s(3), d(3);
      for (int i = 0; i < 3; ++i) {
        s[i] = t.uniform_int(0, 7);
        d[i] = t.uniform_int(0, 7);
      }
      if (w.field.at(s) != NodeStatus::kEnabled || w.field.at(d) != NodeStatus::kEnabled)
        continue;
      RoutingHeader header(s, d);
      header.enable_persistent_marks();
      // drive manually so we can use the persistent header
      RouteResult r;
      r.min_distance = manhattan_distance(s, d);
      for (long long step = 0; step < 100000; ++step) {
        const RouteDecision dec = router->decide(w.ctx, header);
        if (dec.action == RouteAction::kDelivered) {
          r.delivered = true;
          break;
        }
        if (dec.action == RouteAction::kUnreachable) {
          r.unreachable = true;
          break;
        }
        if (dec.action == RouteAction::kForward) header.forward(dec.direction);
        else header.backtrack();
      }
      EXPECT_TRUE(r.delivered || r.unreachable);
      // Enabled regions of interior-fault fields are connected, and with
      // avoid-disabled routing the enabled subgraph is what matters: if the
      // oracle finds a path, so must the persistent DFS.
      const auto oracle = oracle_path_length(mesh, w.field, s, d, OracleAvoid::kBlockMembers);
      if (oracle.has_value()) {
        EXPECT_TRUE(r.delivered) << s.to_string() << " -> " << d.to_string();
      } else {
        EXPECT_TRUE(r.unreachable);
      }
    }
  }
}

TEST(Routing, PaperModeTerminatesWithinBudget) {
  // Paper-faithful marks (path-local): must still terminate inside the
  // safety budget on random fields.
  const MeshTopology mesh(2, 12);
  Rng rng(0xF00D);
  for (int trial = 0; trial < 20; ++trial) {
    Rng t = rng.fork(static_cast<uint64_t>(trial));
    const auto faults = random_fault_placement(mesh, 20, t);
    StaticWorld w(2, 12, faults);
    const auto router = make_router("fault_info");
    Coord s(2), d(2);
    for (int i = 0; i < 2; ++i) {
      s[i] = t.uniform_int(0, 11);
      d[i] = t.uniform_int(0, 11);
    }
    if (w.field.at(s) != NodeStatus::kEnabled || w.field.at(d) != NodeStatus::kEnabled)
      continue;
    const auto r = run_static_route(w.ctx, *router, s, d);
    EXPECT_TRUE(r.delivered || r.unreachable) << "budget exhausted at trial " << trial;
  }
}

TEST(Routing, UnreachableDestinationNeedsPersistentMarks) {
  // Destination enclosed by a fault ring becomes a disabled block member —
  // unreachable.  The paper assumes an enabled destination and a connected
  // enabled region, and with path-local used sets (the literal header
  // semantics) the probe orbits the block forever: spare-along-block keeps
  // it circling and fresh path entries never accumulate marks.  We document
  // that livelock here and show the persistent-marks variant detects
  // unreachability correctly (see DESIGN.md §6.7).
  const MeshTopology mesh(2, 10);
  std::vector<Coord> ring;
  for (int x = 3; x <= 5; ++x)
    for (int y = 3; y <= 5; ++y)
      if (!(x == 4 && y == 4)) ring.push_back(Coord{x, y});
  StaticWorld w(2, 10, ring);
  ASSERT_EQ(w.field.at(Coord{4, 4}), NodeStatus::kDisabled)
      << "the walled-in node is absorbed into the block";
  const auto router = make_router("fault_info");

  // Paper-literal mode: the safety budget is what terminates the walk.
  const auto r = run_static_route(w.ctx, *router, Coord{0, 0}, Coord{4, 4});
  EXPECT_TRUE(r.budget_exhausted) << "literal Algorithm 3 livelocks on unreachable dests";

  // Persistent-marks mode: every (node, direction) pair is tried at most
  // once, so the DFS exhausts and reports unreachable.
  RoutingHeader header(Coord{0, 0}, Coord{4, 4});
  header.enable_persistent_marks();
  bool unreachable = false;
  for (int step = 0; step < 100000; ++step) {
    const RouteDecision dec = router->decide(w.ctx, header);
    ASSERT_NE(dec.action, RouteAction::kDelivered);
    if (dec.action == RouteAction::kUnreachable) {
      unreachable = true;
      break;
    }
    if (dec.action == RouteAction::kForward) header.forward(dec.direction);
    else header.backtrack();
  }
  EXPECT_TRUE(unreachable);
}

TEST(Routing, OracleMatchesBfsLength) {
  StaticWorld w(2, 12, box_fault_placement(MeshTopology(2, 12), Box(Coord{4, 4}, Coord{7, 7})));
  const auto oracle = make_router("oracle");
  const Coord s{2, 5}, d{10, 6};
  const auto len = oracle_path_length(w.mesh, w.field, s, d);
  ASSERT_TRUE(len.has_value());
  const auto r = run_static_route(w.ctx, *oracle, s, d);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.total_steps, *len);
  EXPECT_EQ(r.backtrack_steps, 0);
}

TEST(Routing, OracleFaultyOnlyCanCrossDisabled) {
  // A disabled (but non-faulty) corridor: block-avoiding oracle detours,
  // faulty-only oracle may pass straight through.
  const MeshTopology mesh(2, 12);
  const std::vector<Coord> faults{Coord{4, 4}, Coord{6, 4}, Coord{4, 6}, Coord{6, 6},
                                  Coord{5, 5}};
  StaticWorld w(2, 12, faults);
  const Coord s{5, 1}, d{5, 10};
  const auto strict = oracle_path_length(mesh, w.field, s, d, OracleAvoid::kBlockMembers);
  const auto lax = oracle_path_length(mesh, w.field, s, d, OracleAvoid::kFaultyOnly);
  ASSERT_TRUE(strict.has_value());
  ASSERT_TRUE(lax.has_value());
  EXPECT_LE(*lax, *strict);
}

TEST(Routing, DimensionOrderFailsAtBlocks) {
  StaticWorld w(2, 10, box_fault_placement(MeshTopology(2, 10), Box(Coord{4, 2}, Coord{5, 7})));
  const auto ecube = make_router("dimension_order");
  // Path 0->x first: runs straight into the wall.
  const auto r = run_static_route(w.ctx, *ecube, Coord{1, 4}, Coord{8, 4});
  EXPECT_TRUE(r.unreachable);
  // An unobstructed pair works and is minimal.
  const auto ok = run_static_route(w.ctx, *ecube, Coord{0, 0}, Coord{8, 1});
  EXPECT_TRUE(ok.delivered);
  EXPECT_EQ(ok.total_steps, 9);
}

TEST(Routing, GlobalTableEqualsLimitedInfoOnStaticFields) {
  // With stable information both schemes hold the same boxes wherever the
  // route consults them, so the paths coincide on these scenarios.
  const MeshTopology mesh(2, 14);
  const auto faults = box_fault_placement(mesh, Box(Coord{5, 6}, Coord{9, 8}));
  StaticWorld w(2, 14, faults);

  GlobalInfoProvider global_provider(
      [&] {
        std::vector<BlockInfo> v;
        for (const auto& b : w.blocks) v.push_back(BlockInfo{b, 0});
        return v;
      }());
  RoutingContext global_ctx = w.ctx;
  global_ctx.info = &global_provider;

  const auto limited = make_router("fault_info");
  const auto global = make_router("global_table");
  const Coord s{7, 2}, d{7, 12};
  const auto rl = run_static_route(w.ctx, *limited, s, d);
  const auto rg = run_static_route(global_ctx, *global, s, d);
  EXPECT_TRUE(rl.delivered);
  EXPECT_TRUE(rg.delivered);
  EXPECT_EQ(rl.total_steps, rg.total_steps);
}

TEST(Routing, DetourForwardStepsCounted) {
  // Force the route to take a detour-preferred direction: destination above
  // a block, source inside the prism, surrounded by used-up options... the
  // simplest observable: routing from inside the prism still delivers.
  StaticWorld w(2, 16, box_fault_placement(MeshTopology(2, 16), Box(Coord{4, 8}, Coord{11, 9})));
  const auto router = make_router("fault_info");
  const auto r = run_static_route(w.ctx, *router, Coord{7, 5}, Coord{7, 13});
  EXPECT_TRUE(r.delivered);
  EXPECT_GT(r.total_steps, manhattan_distance(Coord{7, 5}, Coord{7, 13}));
}

}  // namespace
}  // namespace lgfi
