// The active-set round engine contract (DESIGN.md §14): byte-identical
// trajectories to the historical full-scan engine, and zero per-node work in
// quiescent rounds.

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "src/core/experiment_runner.h"
#include "src/fault/distributed_model.h"
#include "src/mesh/topology.h"
#include "src/sim/rng.h"

namespace lgfi {
namespace {

DistributedModelOptions engine(bool active) {
  DistributedModelOptions o;
  o.active_set = active;
  return o;
}

/// Asserts both engines hold exactly the same observable state.
void expect_same_state(const DistributedFaultModel& a, const DistributedFaultModel& b) {
  ASSERT_EQ(a.mesh().node_count(), b.mesh().node_count());
  EXPECT_EQ(a.rounds_run(), b.rounds_run());
  EXPECT_EQ(a.messages_sent(), b.messages_sent());
  EXPECT_EQ(a.epoch(), b.epoch());
  for (NodeId id = 0; id < a.mesh().node_count(); ++id) {
    ASSERT_EQ(a.field().at(id), b.field().at(id)) << "status at node " << id;
    ASSERT_EQ(a.levels_at(id), b.levels_at(id)) << "levels at node " << id;
    const auto ia = a.info().at(id);
    const auto ib = b.info().at(id);
    ASSERT_EQ(ia.size(), ib.size()) << "info count at node " << id;
    for (size_t i = 0; i < ia.size(); ++i) {
      ASSERT_EQ(ia[i].box, ib[i].box) << "info box at node " << id;
      ASSERT_EQ(ia[i].epoch, ib[i].epoch) << "info epoch at node " << id;
    }
  }
}

TEST(ActiveSet, TrajectoryMatchesFullScanThroughChurn) {
  // Inject, stabilize, recover, re-inject: every phase of the protocol stack
  // (labeling, levels, identification, envelope, walls, cancellation) fires,
  // and after each round both engines must agree on all observable state.
  const MeshTopology mesh(3, 8);
  DistributedFaultModel active(mesh, engine(true));
  DistributedFaultModel scan(mesh, engine(false));

  Rng rng(11);
  std::vector<Coord> injected;
  const auto inject = [&](const Coord& c) {
    active.inject_fault(c);
    scan.inject_fault(c);
    injected.push_back(c);
  };
  const auto lockstep_rounds = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      const bool aa = active.run_round();
      const bool sa = scan.run_round();
      ASSERT_EQ(aa, sa) << "round activity diverged at round " << r;
      expect_same_state(active, scan);
      if (!aa) break;
    }
  };

  // A clustered batch that merges into one block plus an outlier.
  inject(Coord({2, 2, 2}));
  inject(Coord({2, 3, 2}));
  inject(Coord({3, 2, 2}));
  inject(Coord({6, 6, 6}));
  lockstep_rounds(500);

  // Recovery shrinks the block: the deletion process must fire identically.
  active.recover(Coord({3, 2, 2}));
  scan.recover(Coord({3, 2, 2}));
  lockstep_rounds(500);

  // A second epoch of random churn.
  for (int i = 0; i < 4; ++i) {
    const Coord c({rng.uniform_int(0, 7), rng.uniform_int(0, 7), rng.uniform_int(0, 7)});
    inject(c);
  }
  lockstep_rounds(800);
  EXPECT_FALSE(active.run_round());  // both quiesced
  EXPECT_FALSE(scan.run_round());
  expect_same_state(active, scan);
}

TEST(ActiveSet, QuiescentStepPerformsZeroProtocolVisits) {
  // The headline property: once the network has stabilized, a round under
  // the active-set engine touches no node at all, while the full scan pays
  // ~6 visits per node per round (one per phase, plus the extra cancel-phase
  // sweeps).
  const MeshTopology mesh(3, 8);
  const long long n = mesh.node_count();

  DistributedFaultModel active(mesh, engine(true));
  active.inject_fault(Coord({3, 3, 3}));
  active.inject_fault(Coord({3, 4, 3}));
  active.stabilize();
  const long long before = active.protocol_node_visits();
  EXPECT_GT(before, 0);
  for (int r = 0; r < 5; ++r) EXPECT_FALSE(active.run_round());
  EXPECT_EQ(active.protocol_node_visits(), before)
      << "a quiescent active-set round must visit zero nodes";

  DistributedFaultModel scan(mesh, engine(false));
  scan.inject_fault(Coord({3, 3, 3}));
  scan.inject_fault(Coord({3, 4, 3}));
  scan.stabilize();
  const long long scan_before = scan.protocol_node_visits();
  EXPECT_FALSE(scan.run_round());
  EXPECT_GE(scan.protocol_node_visits() - scan_before, 6 * n)
      << "the full scan visits every node in every phase even when idle";
}

TEST(ActiveSet, ReportByteIdenticalAcrossEnginesAndThreadCounts) {
  // E14-style end-to-end determinism matrix: the metrics bytes must not
  // depend on the engine choice or on how replications are scheduled.
  const auto report_with = [](int threads, bool active) {
    Config cfg = experiment_config();
    cfg.parse_string(
        "traffic=uniform mesh_dims=2 radix=8 faults=6 fault_model=clustered "
        "warmup_steps=30 measure_steps=120 replications=3 seed=5");
    cfg.set_int("threads", threads);
    cfg.set_bool("active_set", active);
    const auto res = ExperimentRunner(cfg).run();
    std::ostringstream os;
    JsonReporter().report(res, os);
    // Drop the config echo (threads / active_set legitimately differ).
    const std::string s = os.str();
    return s.substr(s.find("\"metrics\""));
  };
  const std::string base = report_with(1, true);
  EXPECT_EQ(base, report_with(8, true));
  EXPECT_EQ(base, report_with(1, false));
  EXPECT_EQ(base, report_with(8, false));
}

}  // namespace
}  // namespace lgfi
