// Integration tests for the distributed fault-information stack (P3):
// labeling, level detection, the n-level identification process, envelope
// propagation and boundary construction must converge to the centralized
// geometric references — across dimensions, fault shapes, merges, and
// recovery dynamics.

#include <gtest/gtest.h>

#include <algorithm>
#include <span>

#include "src/fault/block_analyzer.h"
#include "src/fault/boundary_model.h"
#include "src/fault/corner_taxonomy.h"
#include "src/fault/distributed_model.h"
#include "src/fault/labeling.h"
#include "src/sim/fault_schedule.h"
#include "src/sim/rng.h"

namespace lgfi {
namespace {

std::vector<Box> sorted_boxes(std::span<const BlockInfo> infos) {
  std::vector<Box> out;
  for (const auto& i : infos) out.push_back(i.box);
  std::sort(out.begin(), out.end());
  return out;
}

/// Compares the distributed InfoStore against the centralized fixpoint.
/// Returns the number of mismatching nodes (and reports the first few).
int placement_mismatches(const Topology& mesh, const DistributedFaultModel& model,
                         const InfoStore& expected, int report_limit = 5) {
  int mismatches = 0;
  for (NodeId id = 0; id < mesh.node_count(); ++id) {
    const auto got = sorted_boxes(model.info().at(id));
    const auto want = sorted_boxes(expected.at(id));
    if (got != want) {
      ++mismatches;
      if (mismatches <= report_limit) {
        std::string g = "{", w = "{";
        for (const auto& b : got) g += b.to_string() + " ";
        for (const auto& b : want) w += b.to_string() + " ";
        ADD_FAILURE() << "node " << mesh.coord_of(id).to_string() << ": got " << g
                      << "} want " << w << "}";
      }
    }
  }
  return mismatches;
}

void expect_converges_to_reference(const Topology& mesh,
                                   const std::vector<Coord>& faults) {
  DistributedFaultModel model(mesh);
  for (const auto& f : faults) model.inject_fault(f);
  const auto rounds = model.stabilize(20000);

  // Labeling fixpoint matches the centralized stabilization.
  const StatusField expected_field = stabilized_field(mesh, faults);
  for (NodeId id = 0; id < mesh.node_count(); ++id) {
    ASSERT_EQ(model.field().at(id), expected_field.at(id))
        << "status mismatch at " << mesh.coord_of(id).to_string();
  }

  // Information placement matches the centralized fixpoint (epoch equals the
  // model's running epoch after the injections).
  const auto blocks = block_boxes(expected_field);
  const auto placement = compute_information_placement(mesh, blocks, model.epoch());
  EXPECT_EQ(placement_mismatches(mesh, model, placement.store), 0);
  EXPECT_GT(rounds.total, 0);
}

TEST(DistributedModel, SingleBlock2D) {
  expect_converges_to_reference(MeshTopology(2, 12),
                                {Coord{4, 5}, Coord{5, 6}, Coord{4, 6}, Coord{5, 5}});
}

TEST(DistributedModel, DiagonalChain2D) {
  expect_converges_to_reference(MeshTopology(2, 12), {Coord{3, 3}, Coord{4, 4}, Coord{5, 5}});
}

TEST(DistributedModel, TwoBlocks2D) {
  expect_converges_to_reference(MeshTopology(2, 14),
                                {Coord{3, 3}, Coord{3, 4}, Coord{9, 9}, Coord{10, 9}});
}

TEST(DistributedModel, StackedBlocksMerge2D) {
  // Block A directly above wider block B: A's wall must merge onto B and
  // continue below it (Figure 3(d) geometry).
  std::vector<Coord> faults;
  for (const auto& c : box_fault_placement(MeshTopology(2, 16), Box(Coord{6, 10}, Coord{8, 11})))
    faults.push_back(c);
  for (const auto& c : box_fault_placement(MeshTopology(2, 16), Box(Coord{5, 4}, Coord{9, 6})))
    faults.push_back(c);
  expect_converges_to_reference(MeshTopology(2, 16), faults);
}

TEST(DistributedModel, Figure1Block3D) {
  const MeshTopology mesh(3, 8);
  DistributedFaultModel model(mesh);
  for (const auto& f :
       {Coord{3, 5, 4}, Coord{4, 5, 4}, Coord{5, 5, 3}, Coord{3, 6, 3}})
    model.inject_fault(f);
  model.stabilize(20000);

  // The block [3:5, 5:6, 3:4] must be identified and present at, e.g., the
  // Figure 2 corner (6,4,5).
  const Box fig1(Coord{3, 5, 3}, Coord{5, 6, 4});
  EXPECT_TRUE(model.info().holds(mesh.index_of(Coord{6, 4, 5}), fig1));
  // ... and at a wall node below the block (surface S1 ring at y=4, column
  // extended toward y=0: e.g. (2,2,3) sits on the x-side wall).
  const auto wall = wall_positions_ignoring_merges(mesh, fig1, Surface{1, true});
  ASSERT_FALSE(wall.empty());
  for (const auto& w : wall) {
    EXPECT_TRUE(model.info().holds(mesh.index_of(w), fig1))
        << "missing wall info at " << w.to_string();
  }
}

TEST(DistributedModel, ReferenceMatch3D) {
  expect_converges_to_reference(
      MeshTopology(3, 8), {Coord{3, 5, 4}, Coord{4, 5, 4}, Coord{5, 5, 3}, Coord{3, 6, 3}});
}

TEST(DistributedModel, ReferenceMatch4D) {
  const MeshTopology mesh(4, 6);
  std::vector<Coord> faults;
  Box block(Coord{2, 2, 2, 2}, Coord{3, 3, 2, 3});
  block.for_each([&](const Coord& c) { faults.push_back(c); });
  expect_converges_to_reference(mesh, faults);
}

TEST(DistributedModel, ReferenceMatchRandom) {
  Rng rng(0xD15C);
  for (int trial = 0; trial < 6; ++trial) {
    Rng t = rng.fork(static_cast<uint64_t>(trial));
    const MeshTopology mesh(2 + trial % 3, trial % 3 == 2 ? 7 : 10);
    const auto faults = clustered_fault_placement(mesh, 5 + trial, t);
    SCOPED_TRACE("trial " + std::to_string(trial));
    expect_converges_to_reference(mesh, faults);
  }
}

TEST(DistributedModel, LevelDetectionMatchesGeometry) {
  const MeshTopology mesh(3, 8);
  DistributedFaultModel model(mesh);
  for (const auto& f :
       {Coord{3, 5, 4}, Coord{4, 5, 4}, Coord{5, 5, 3}, Coord{3, 6, 3}})
    model.inject_fault(f);
  model.stabilize(20000);

  const Box fig1(Coord{3, 5, 3}, Coord{5, 6, 4});
  for (NodeId id = 0; id < mesh.node_count(); ++id) {
    const Coord c = mesh.coord_of(id);
    const int geometric =
        model.field().at(id) == NodeStatus::kEnabled ? corner_level(c, fig1) : 0;
    // The distributed entry for this block (anchor inside fig1) must exist
    // exactly when the geometry says so, with the same level.
    int found = 0;
    for (const auto& e : model.levels_at(id))
      if (fig1.contains(e.anchor)) found = e.level;
    EXPECT_EQ(found, geometric) << "at " << c.to_string();
  }
}

TEST(DistributedModel, ConvergenceRoundCountsAreReasonable) {
  // a_i is bounded by the block extent; identification (b_i) and boundary
  // (c_i) finish within a small multiple of mesh extents — the "information
  // can be distributed quickly" claim in round units.
  const MeshTopology mesh(3, 8);
  DistributedFaultModel model(mesh);
  for (const auto& f :
       {Coord{3, 5, 4}, Coord{4, 5, 4}, Coord{5, 5, 3}, Coord{3, 6, 3}})
    model.inject_fault(f);
  const auto rounds = model.stabilize(20000);
  EXPECT_GT(rounds.labeling, 0);
  EXPECT_LE(rounds.labeling, 6);
  EXPECT_GT(rounds.identification, 0);
  EXPECT_LE(rounds.total, 8 * 8 * 3) << "well under TTL";
}

TEST(DistributedModel, RecoveryShrinksAndRedistributes) {
  // Figure 4 dynamics end-to-end: recovery triggers clean propagation, the
  // old block info is deleted, the new (smaller) block is identified and
  // its information redistributed.
  const MeshTopology mesh(3, 8);
  DistributedFaultModel model(mesh);
  for (const auto& f :
       {Coord{3, 5, 4}, Coord{4, 5, 4}, Coord{5, 5, 3}, Coord{3, 6, 3}})
    model.inject_fault(f);
  model.stabilize(20000);

  model.recover(Coord{5, 5, 3});
  model.stabilize(20000);

  const StatusField expected = [&] {
    StatusField f = stabilized_field(
        mesh, {Coord{3, 5, 4}, Coord{4, 5, 4}, Coord{5, 5, 3}, Coord{3, 6, 3}});
    f.recover(Coord{5, 5, 3});
    stabilize_labeling(f, 1 << 20, {Coord{5, 5, 3}});
    return f;
  }();
  for (NodeId id = 0; id < mesh.node_count(); ++id)
    ASSERT_EQ(model.field().at(id), expected.at(id))
        << "status mismatch at " << mesh.coord_of(id).to_string();

  const auto new_blocks = block_boxes(expected);
  ASSERT_EQ(new_blocks.size(), 1u);
  EXPECT_EQ(new_blocks[0], Box(Coord{3, 5, 3}, Coord{4, 6, 4}));

  const auto placement = compute_information_placement(mesh, new_blocks, model.epoch());
  EXPECT_EQ(placement_mismatches(mesh, model, placement.store), 0);
}

TEST(DistributedModel, GrowthSupersedesOldInfo) {
  // New faults enlarge a block: the old, smaller box must disappear from
  // every store and the bigger one take its place.
  const MeshTopology mesh(2, 14);
  DistributedFaultModel model(mesh);
  model.inject_fault(Coord{6, 6});
  model.stabilize(20000);
  EXPECT_TRUE(model.info().holds(mesh.index_of(Coord{5, 5}), Box::point(Coord{6, 6})));

  model.inject_fault(Coord{7, 7});  // merges into [6:7, 6:7]
  model.stabilize(20000);

  const StatusField expected = stabilized_field(mesh, {Coord{6, 6}, Coord{7, 7}});
  const auto blocks = block_boxes(expected);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], Box(Coord{6, 6}, Coord{7, 7}));
  const auto placement = compute_information_placement(mesh, blocks, model.epoch());
  EXPECT_EQ(placement_mismatches(mesh, model, placement.store), 0);
}

TEST(DistributedModel, NoFaultsNoActivity) {
  const MeshTopology mesh(3, 6);
  DistributedFaultModel model(mesh);
  const auto rounds = model.stabilize(100);
  EXPECT_EQ(rounds.total, 0);
  EXPECT_EQ(model.info().total_entries(), 0);
}

}  // namespace
}  // namespace lgfi
