// The fault-lifecycle event queue (DESIGN.md §17): heap ordering with FIFO
// same-step ties, schedule conversion, the link-fault mask, and the
// common-random-number structure of the lifecycle generators (identical
// arrival histories across repair_rate values).

#include <gtest/gtest.h>

#include <vector>

#include "src/core/experiment_runner.h"
#include "src/mesh/link_fault_mask.h"
#include "src/mesh/topology.h"
#include "src/sim/fault_timeline.h"

namespace lgfi {
namespace {

LifecycleEvent node_event(long long step, const Coord& c, LifecycleEventKind kind) {
  LifecycleEvent e;
  e.step = step;
  e.node = c;
  e.kind = kind;
  return e;
}

TEST(FaultTimeline, PopsInStepOrderRegardlessOfPushOrder) {
  FaultTimeline t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.next_step(), -1);
  EXPECT_EQ(t.last_step(), -1);

  t.push(node_event(30, Coord({3, 0}), LifecycleEventKind::kRepair));
  t.push(node_event(10, Coord({1, 0}), LifecycleEventKind::kFail));
  t.push(node_event(20, Coord({2, 0}), LifecycleEventKind::kTransientStart));

  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.next_step(), 10);
  EXPECT_EQ(t.last_step(), 30);
  EXPECT_TRUE(t.has_events_at(10));
  EXPECT_FALSE(t.has_events_at(15));

  EXPECT_TRUE(t.pop_events_at(5).empty());  // nothing due yet
  const auto first = t.pop_events_at(10);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].node, Coord({1, 0}));
  EXPECT_EQ(t.next_step(), 20);

  (void)t.pop_events_at(20);
  (void)t.pop_events_at(30);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.last_step(), 30) << "last_step survives popping";
}

TEST(FaultTimeline, SameStepBatchComesOutInPushOrder) {
  // The FIFO tiebreak is what makes schedule conversion byte-identical: a
  // step's batch must apply in exactly the order it was recorded.
  FaultTimeline t;
  for (int i = 0; i < 16; ++i)
    t.push(node_event(7, Coord({i, 0}), LifecycleEventKind::kFail));
  const auto batch = t.pop_events_at(7);
  ASSERT_EQ(batch.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(batch[static_cast<size_t>(i)].node, Coord({i, 0}));
}

TEST(FaultTimeline, DownEdgeAndLinkPredicates) {
  LifecycleEvent e = node_event(0, Coord({0, 0}), LifecycleEventKind::kFail);
  EXPECT_TRUE(e.is_down_edge());
  EXPECT_FALSE(e.is_link());
  e.kind = LifecycleEventKind::kTransientStart;
  EXPECT_TRUE(e.is_down_edge());
  e.kind = LifecycleEventKind::kRepair;
  EXPECT_FALSE(e.is_down_edge());
  e.kind = LifecycleEventKind::kTransientEnd;
  EXPECT_FALSE(e.is_down_edge());
  e.link = Direction(0, true);
  EXPECT_TRUE(e.is_link());
}

TEST(FaultTimeline, ConvertsScheduleInOrder) {
  FaultSchedule s;
  s.add_fail(5, Coord({1, 1}));
  s.add_fail(5, Coord({2, 2}));
  s.add_recover(9, Coord({1, 1}));

  FaultTimeline t = timeline_from_schedule(s);
  EXPECT_EQ(t.size(), 3u);
  const auto at5 = t.pop_events_at(5);
  ASSERT_EQ(at5.size(), 2u);
  EXPECT_EQ(at5[0].node, Coord({1, 1}));
  EXPECT_EQ(at5[0].kind, LifecycleEventKind::kFail);
  EXPECT_EQ(at5[1].node, Coord({2, 2}));
  const auto at9 = t.pop_events_at(9);
  ASSERT_EQ(at9.size(), 1u);
  EXPECT_EQ(at9[0].kind, LifecycleEventKind::kRepair);
}

TEST(LinkFaultMask, FailRepairAndVersionSemantics) {
  const MeshTopology mesh(2, 4);
  LinkFaultMask mask(mesh);
  const Direction east = Direction(0, true);

  EXPECT_FALSE(mask.any());
  EXPECT_FALSE(mask.faulty(5, east));
  const uint64_t v0 = mask.version();

  mask.fail(5, east);
  EXPECT_TRUE(mask.any());
  EXPECT_TRUE(mask.faulty(5, east));
  EXPECT_FALSE(mask.faulty(5, east.opposite()))
      << "directed: only the (from, dir) channel died";
  EXPECT_EQ(mask.faulty_count(), 1);
  EXPECT_EQ(mask.version(), v0 + 1);

  mask.fail(5, east);  // idempotent: no double-count, no version bump
  EXPECT_EQ(mask.faulty_count(), 1);
  EXPECT_EQ(mask.version(), v0 + 1);

  mask.repair(5, east);
  EXPECT_FALSE(mask.any());
  EXPECT_FALSE(mask.faulty(5, east));
  EXPECT_EQ(mask.version(), v0 + 2);
  mask.repair(5, east);  // idempotent on the repair side too
  EXPECT_EQ(mask.version(), v0 + 2);
  EXPECT_GT(mask.memory_bytes(), 0);
}

Config lifecycle_config(const std::string& model, double arrival, double repair) {
  Config cfg = experiment_config();
  cfg.set_str("fault_model", model);
  cfg.set_double("fault_arrival_rate", arrival);
  cfg.set_double("repair_rate", repair);
  return cfg;
}

TEST(LifecycleGenerator, IsLifecycleModelNames) {
  EXPECT_TRUE(is_lifecycle_model("lifecycle"));
  EXPECT_TRUE(is_lifecycle_model("lifecycle_links"));
  EXPECT_FALSE(is_lifecycle_model("random"));
  EXPECT_FALSE(is_lifecycle_model("box"));
}

TEST(LifecycleGenerator, DeterministicInSeedAndBoundedByHorizon) {
  const MeshTopology mesh(2, 8);
  const Config cfg = lifecycle_config("lifecycle", 0.1, 0.05);
  Rng a(42);
  Rng b(42);
  FaultTimeline ta = build_lifecycle_timeline(mesh, cfg, a, 500);
  FaultTimeline tb = build_lifecycle_timeline(mesh, cfg, b, 500);
  ASSERT_EQ(ta.size(), tb.size());
  EXPECT_GT(ta.size(), 0u);
  while (!ta.empty()) {
    const long long step = ta.next_step();
    ASSERT_EQ(step, tb.next_step());
    const auto ea = ta.pop_events_at(step);
    const auto eb = tb.pop_events_at(step);
    ASSERT_EQ(ea.size(), eb.size());
    for (size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].node, eb[i].node);
      EXPECT_EQ(ea[i].kind, eb[i].kind);
      EXPECT_EQ(ea[i].link.index(), eb[i].link.index());
      // Down edges land on [0, horizon]; repairs past it were dropped, and
      // a transient repairs no later than its permanent twin would.
      if (ea[i].is_down_edge()) EXPECT_LE(ea[i].step, 500);
    }
  }
}

TEST(LifecycleGenerator, ArrivalHistoryIdenticalAcrossRepairRates) {
  // The CRN contract behind the E17 monotone curves: sweeping repair_rate
  // must not perturb which faults arrive where and when — only when they
  // get repaired.
  const MeshTopology mesh(2, 8);
  const auto down_edges = [&](double repair) {
    Rng rng(7);
    FaultTimeline t =
        build_lifecycle_timeline(mesh, lifecycle_config("lifecycle", 0.2, repair), rng, 400);
    std::vector<LifecycleEvent> down;
    while (!t.empty())
      for (const auto& e : t.pop_events_at(t.next_step()))
        if (e.is_down_edge()) down.push_back(e);
    return down;
  };
  const auto slow = down_edges(0.01);
  const auto fast = down_edges(1.0);
  ASSERT_EQ(slow.size(), fast.size()) << "repair_rate changed the arrival history";
  for (size_t i = 0; i < slow.size(); ++i) {
    EXPECT_EQ(slow[i].step, fast[i].step);
    EXPECT_EQ(slow[i].node, fast[i].node);
  }
}

TEST(LifecycleGenerator, RepairDelayMonotoneInRepairRate) {
  // Shared-uniform repairs: each fault's downtime is pointwise
  // non-increasing as repair_rate grows.
  const MeshTopology mesh(2, 8);
  const auto repair_steps = [&](double repair) {
    Rng rng(13);
    FaultTimeline t =
        build_lifecycle_timeline(mesh, lifecycle_config("lifecycle", 0.2, repair), rng, 400);
    std::vector<long long> ups;
    while (!t.empty())
      for (const auto& e : t.pop_events_at(t.next_step()))
        if (!e.is_down_edge()) ups.push_back(e.step);
    return ups;
  };
  const auto slow = repair_steps(0.05);
  const auto fast = repair_steps(0.5);
  // Faster repair can only add repairs (fewer dropped past the horizon).
  ASSERT_GE(fast.size(), slow.size());
  EXPECT_GT(fast.size(), 0u);
}

TEST(LifecycleGenerator, ZeroRepairRateMakesFaultsPermanent) {
  const MeshTopology mesh(2, 8);
  Rng rng(3);
  FaultTimeline t =
      build_lifecycle_timeline(mesh, lifecycle_config("lifecycle", 0.2, 0.0), rng, 300);
  EXPECT_GT(t.size(), 0u);
  while (!t.empty())
    for (const auto& e : t.pop_events_at(t.next_step()))
      EXPECT_TRUE(e.is_down_edge()) << "repair_rate=0 must schedule no repairs";
}

TEST(LifecycleGenerator, LinksModelEmitsPairedDirectedEvents) {
  const MeshTopology mesh(2, 8);
  Rng rng(21);
  FaultTimeline t =
      build_lifecycle_timeline(mesh, lifecycle_config("lifecycle_links", 0.2, 0.1), rng, 300);
  EXPECT_GT(t.size(), 0u);
  while (!t.empty()) {
    const auto batch = t.pop_events_at(t.next_step());
    // Physical-link transitions are emitted as consecutive directed pairs:
    // (u, d) then (v, d.opposite()) with v = u + d.
    ASSERT_EQ(batch.size() % 2, 0u);
    for (size_t i = 0; i < batch.size(); i += 2) {
      const LifecycleEvent& a = batch[i];
      const LifecycleEvent& b = batch[i + 1];
      ASSERT_TRUE(a.is_link());
      ASSERT_TRUE(b.is_link());
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_EQ(b.link.index(), a.link.opposite().index());
      EXPECT_EQ(b.node, mesh.step(a.node, a.link));
    }
  }
}

}  // namespace
}  // namespace lgfi
