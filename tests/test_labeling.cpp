// Tests for Definition 1 / Definition 4 / Algorithm 1 labeling, including
// the paper's Figure 1 block-formation example and the Figure 4 recovery
// walkthrough, plus convergence properties.

#include <gtest/gtest.h>

#include "src/fault/block_analyzer.h"
#include "src/fault/labeling.h"
#include "src/sim/fault_schedule.h"
#include "src/sim/rng.h"

namespace lgfi {
namespace {

// The Figure 1(a) configuration: four faults in an 8-ary 3-D mesh.
std::vector<Coord> figure1_faults() {
  return {Coord{3, 5, 4}, Coord{4, 5, 4}, Coord{5, 5, 3}, Coord{3, 6, 3}};
}

TEST(Labeling, SingleFaultDisablesNobody) {
  const MeshTopology m(2, 8);
  LabelingResult r;
  const StatusField f = stabilized_field(m, {Coord{4, 4}}, &r);
  EXPECT_EQ(f.count(NodeStatus::kDisabled), 0);
  EXPECT_EQ(f.count(NodeStatus::kFaulty), 1);
  EXPECT_EQ(r.rounds, 0) << "no status ever changes";
}

TEST(Labeling, TwoFaultsSameDimensionDisableNobody) {
  // Opposite neighbours along one dimension do NOT disable the node between
  // them: rule 1 requires different dimensions.
  const MeshTopology m(2, 8);
  const StatusField f = stabilized_field(m, {Coord{3, 4}, Coord{5, 4}});
  EXPECT_EQ(f.at(Coord{4, 4}), NodeStatus::kEnabled);
  EXPECT_EQ(f.count(NodeStatus::kDisabled), 0);
}

TEST(Labeling, DiagonalFaultsFormSquareBlock) {
  const MeshTopology m(2, 8);
  const StatusField f = stabilized_field(m, {Coord{3, 3}, Coord{4, 4}});
  EXPECT_EQ(f.at(Coord{3, 4}), NodeStatus::kDisabled);
  EXPECT_EQ(f.at(Coord{4, 3}), NodeStatus::kDisabled);
  const auto blocks = extract_blocks(f);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].box, Box(Coord{3, 3}, Coord{4, 4}));
  EXPECT_TRUE(blocks[0].filled);
}

TEST(Labeling, LShapedFaultsFillTheirBoundingBox) {
  const MeshTopology m(2, 10);
  const std::vector<Coord> faults{Coord{1, 1}, Coord{1, 2}, Coord{1, 3}, Coord{2, 3},
                                  Coord{3, 3}};
  const StatusField f = stabilized_field(m, faults);
  const auto blocks = extract_blocks(f);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].box, Box(Coord{1, 1}, Coord{3, 3}));
  EXPECT_TRUE(blocks[0].filled);
  EXPECT_EQ(blocks[0].member_count, 9);
}

TEST(Labeling, Figure1BlockFormation) {
  // "by four faults (3,5,4), (4,5,4), (5,5,3), and (3,6,3) in a 3-D mesh,
  //  the corresponding block contains nodes which form a block [3:5, 5:6, 3:4]"
  const MeshTopology m(3, 8);
  const StatusField f = stabilized_field(m, figure1_faults());
  const auto blocks = extract_blocks(f);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].box, Box(Coord{3, 5, 3}, Coord{5, 6, 4}));
  EXPECT_TRUE(blocks[0].filled);
  EXPECT_EQ(blocks[0].member_count, 12);
  EXPECT_EQ(blocks[0].faulty_count, 4);
}

TEST(Labeling, Figure1NodesOutsideBlockStayEnabled) {
  const MeshTopology m(3, 8);
  const StatusField f = stabilized_field(m, figure1_faults());
  const Box block(Coord{3, 5, 3}, Coord{5, 6, 4});
  for (NodeId id = 0; id < f.node_count(); ++id) {
    const Coord c = m.coord_of(id);
    if (!block.contains(c)) {
      EXPECT_EQ(f.at(id), NodeStatus::kEnabled) << "at " << c.to_string();
    } else {
      EXPECT_TRUE(is_block_member(f.at(id))) << "at " << c.to_string();
    }
  }
}

TEST(Labeling, RulePredicatesOnHandBuiltField) {
  const MeshTopology m(2, 6);
  StatusField f(m);
  f.inject_fault(Coord{2, 3});
  f.inject_fault(Coord{3, 2});
  // (2,2) has faulty neighbours in dims y and x -> rule 1.
  EXPECT_TRUE(rule1_applies(f, m.index_of(Coord{2, 2})));
  // (1,1) touches nothing.
  EXPECT_FALSE(rule1_applies(f, m.index_of(Coord{1, 1})));
  // (2,4): only one faulty neighbour -> no rule 1.
  EXPECT_FALSE(rule1_applies(f, m.index_of(Coord{2, 4})));
}

TEST(Labeling, Figure4RecoveryWalkthrough) {
  // Figure 4: starting from the Figure 1 block, node (5,5,3) recovers.
  const MeshTopology m(3, 8);
  StatusField f = stabilized_field(m, figure1_faults());

  // (5,5,3) is labeled clean (rule 5) and the wave propagates.
  f.recover(Coord{5, 5, 3});
  const auto r = stabilize_labeling(f, 1 << 20, {Coord{5, 5, 3}});
  ASSERT_TRUE(r.converged);

  // Stabilized: a single smaller block [3:4, 5:6, 3:4] (Figure 4(b)).
  const auto blocks = extract_blocks(f);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].box, Box(Coord{3, 5, 3}, Coord{4, 6, 4}))
      << "block should shrink in x after the recovery";
  EXPECT_TRUE(blocks[0].filled);

  // Paper call-outs:
  //  - the recovered node ends enabled,
  EXPECT_EQ(f.at(Coord{5, 5, 3}), NodeStatus::kEnabled);
  //  - (3,5,3) never turns clean: it keeps two faulty neighbours in
  //    different dimensions,
  EXPECT_EQ(f.at(Coord{3, 5, 3}), NodeStatus::kDisabled);
  //  - (4,5,3) went clean -> enabled -> disabled again (one faulty neighbour
  //    (4,5,4) plus disabled (3,5,3) in different dimensions),
  EXPECT_EQ(f.at(Coord{4, 5, 3}), NodeStatus::kDisabled);
  //  - the other triggered neighbours (5,6,3) and (5,5,4) end enabled,
  EXPECT_EQ(f.at(Coord{5, 6, 3}), NodeStatus::kEnabled);
  EXPECT_EQ(f.at(Coord{5, 5, 4}), NodeStatus::kEnabled);
  //  - no clean node remains after stabilization.
  EXPECT_EQ(f.count(NodeStatus::kClean), 0);
}

TEST(Labeling, Figure4IntermediateCleanWave) {
  // Check the transient the paper narrates: after one round the disabled
  // neighbours of the recovered node are clean.
  const MeshTopology m(3, 8);
  StatusField f = stabilized_field(m, figure1_faults());
  f.recover(Coord{5, 5, 3});
  std::vector<uint8_t> fresh(static_cast<size_t>(f.node_count()), 0);
  fresh[static_cast<size_t>(m.index_of(Coord{5, 5, 3}))] = 1;

  labeling_round(f, fresh);  // round 1: clean label becomes visible
  labeling_round(f, fresh);  // round 2: rule 2 fires at the neighbours
  EXPECT_EQ(f.at(Coord{4, 5, 3}), NodeStatus::kClean);
  EXPECT_EQ(f.at(Coord{5, 6, 3}), NodeStatus::kClean);
  EXPECT_EQ(f.at(Coord{5, 5, 4}), NodeStatus::kClean);
  EXPECT_EQ(f.at(Coord{3, 5, 3}), NodeStatus::kDisabled)
      << "(3,5,3) has two faults in different dimensions and must not clean";
}

TEST(Labeling, RecoveryOfIsolatedFaultLeavesCleanMesh) {
  const MeshTopology m(2, 8);
  StatusField f = stabilized_field(m, {Coord{4, 4}});
  f.recover(Coord{4, 4});
  const auto r = stabilize_labeling(f, 1 << 20, {Coord{4, 4}});
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(f.count(NodeStatus::kEnabled), m.node_count());
}

TEST(Labeling, ConvergenceRoundsBoundedByBlockExtent) {
  // The disable wave travels one hop per round inside the future block, so
  // a_i can't exceed the block's dominant extent (property P2-ish bound).
  const MeshTopology m(2, 16);
  for (int size = 2; size <= 6; ++size) {
    // Diagonal fault chain -> a size x size block built by propagation.
    std::vector<Coord> faults;
    for (int i = 0; i < size; ++i) faults.push_back(Coord{2 + i, 2 + i});
    LabelingResult r;
    const StatusField f = stabilized_field(m, faults, &r);
    const auto blocks = extract_blocks(f);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].box, Box(Coord{2, 2}, Coord{1 + size, 1 + size}));
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.rounds, 2 * size) << "wave speed is one hop per round";
  }
}

TEST(Labeling, StaticFaultsNeverProduceClean) {
  const MeshTopology m(3, 8);
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    Rng t = rng.fork(static_cast<uint64_t>(trial));
    const auto faults = random_fault_placement(m, 20, t);
    const StatusField f = stabilized_field(m, faults);
    EXPECT_EQ(f.count(NodeStatus::kClean), 0);
  }
}

TEST(Labeling, MonotoneWithoutRecovery) {
  // Property P2: with no clean nodes, statuses only move enabled->disabled,
  // so re-running stabilization is a no-op (idempotence).
  const MeshTopology m(3, 8);
  Rng rng(23);
  const auto faults = clustered_fault_placement(m, 15, rng);
  StatusField f = stabilized_field(m, faults);
  StatusField g = f;
  const auto r = stabilize_labeling(g);
  EXPECT_EQ(r.rounds, 0);
  EXPECT_TRUE(f == g);
}

}  // namespace
}  // namespace lgfi
