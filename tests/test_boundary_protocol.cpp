// Targeted tests for the distributed boundary construction and deletion
// machinery: wall spawning geometry, provenance tracking, cancel waves,
// carried-info sweeps, memory wipe semantics, and the out-of-date-segment
// retraction when a new block forms across an existing wall.

#include <gtest/gtest.h>

#include "src/fault/block_analyzer.h"
#include "src/fault/boundary_model.h"
#include "src/fault/corner_taxonomy.h"
#include "src/fault/distributed_model.h"
#include "src/fault/labeling.h"
#include "src/sim/fault_schedule.h"

namespace lgfi {
namespace {

TEST(BoundaryProtocol, WallProvenanceRecorded) {
  const MeshTopology mesh(2, 12);
  DistributedFaultModel model(mesh);
  model.inject_fault(Coord{6, 6});
  model.stabilize(20000);

  const Box block = Box::point(Coord{6, 6});
  // (5, 3) is on the S_{y,+} wall (ring (5,5), extending -y).
  const NodeId wall_node = mesh.index_of(Coord{5, 3});
  ASSERT_TRUE(model.info().holds(wall_node, block));
  const auto provs = model.info().provenance_at(wall_node);
  ASSERT_EQ(provs.size(), 1u);
  EXPECT_EQ(provs[0].via, InfoVia::kWall);

  // (5, 5) is a ring/envelope node: provenance must be envelope.
  const NodeId env_node = mesh.index_of(Coord{5, 5});
  ASSERT_TRUE(model.info().holds(env_node, block));
  EXPECT_EQ(model.info().provenance_at(env_node)[0].via, InfoVia::kEnvelope);
}

TEST(BoundaryProtocol, MergedProvenanceNamesCarrier) {
  // Upper block's wall merges onto the lower block.
  const MeshTopology mesh(2, 16);
  DistributedFaultModel model(mesh);
  const Box upper(Coord{6, 10}, Coord{8, 11});
  const Box lower(Coord{5, 4}, Coord{9, 6});
  for (const auto& c : box_fault_placement(mesh, upper)) model.inject_fault(c);
  for (const auto& c : box_fault_placement(mesh, lower)) model.inject_fault(c);
  model.stabilize(20000);

  // A lateral envelope node of the lower block that is NOT on the upper
  // block's own structures: its copy of `upper` must be a merged deposit.
  const Coord side{4, 5};  // west face of lower's envelope
  const NodeId id = mesh.index_of(side);
  ASSERT_TRUE(model.info().holds(id, upper));
  const auto infos = model.info().at(id);
  const auto provs = model.info().provenance_at(id);
  for (size_t i = 0; i < infos.size(); ++i) {
    if (infos[i].box == upper) {
      EXPECT_EQ(provs[i].via, InfoVia::kMerged);
      EXPECT_EQ(provs[i].carrier, lower);
    }
  }
}

TEST(BoundaryProtocol, CancelWaveClearsWalls) {
  const MeshTopology mesh(2, 12);
  DistributedFaultModel model(mesh);
  model.inject_fault(Coord{6, 6});
  model.stabilize(20000);
  EXPECT_GT(model.info().total_entries(), 0);

  model.recover(Coord{6, 6});
  model.stabilize(20000);
  EXPECT_EQ(model.info().total_entries(), 0)
      << "single-block recovery must leave zero residue";
  EXPECT_EQ(model.field().count(NodeStatus::kEnabled), mesh.node_count());
}

TEST(BoundaryProtocol, CarrierDeathSweepsCarriedInfo) {
  // Kill upper and lower; recover the LOWER (carrier) first: the merged
  // copies of `upper` riding its envelope must disappear with it, while
  // upper's own structures stay intact.
  const MeshTopology mesh(2, 16);
  DistributedFaultModel model(mesh);
  const Box upper(Coord{6, 10}, Coord{8, 11});
  const Box lower(Coord{5, 4}, Coord{9, 6});
  for (const auto& c : box_fault_placement(mesh, upper)) model.inject_fault(c);
  for (const auto& c : box_fault_placement(mesh, lower)) model.inject_fault(c);
  model.stabilize(20000);

  for (const auto& c : box_fault_placement(mesh, lower)) model.recover(c);
  model.stabilize(20000);

  // No node may still hold a kMerged deposit naming the dead carrier.
  for (NodeId id = 0; id < mesh.node_count(); ++id) {
    for (const auto& p : model.info().provenance_at(id)) {
      EXPECT_FALSE(p.via == InfoVia::kMerged && p.carrier == lower)
          << "stale merged deposit at " << mesh.coord_of(id).to_string();
    }
  }
  // Upper's own envelope still informed.
  for (const auto& c : envelope_positions(mesh, upper))
    EXPECT_TRUE(model.info().holds(mesh.index_of(c), upper)) << c.to_string();
  // The distributed placement may UNDER-cover the centralized fixpoint in
  // the dead carrier's shadow (walls are not re-extended through freed
  // space — deliberate, see boundary_protocol.cpp), but it must never hold
  // anything the fixpoint doesn't: no stale boxes anywhere.
  const auto placement = compute_information_placement(mesh, {upper}, model.epoch());
  for (NodeId id = 0; id < mesh.node_count(); ++id) {
    for (const auto& held : model.info().at(id)) {
      EXPECT_TRUE(placement.store.holds(id, held.box))
          << "stale " << held.box.to_string() << " at " << mesh.coord_of(id).to_string();
    }
  }
}

TEST(BoundaryProtocol, NewBlockRetractsOutOfDateWallSegment) {
  // A wall exists first; a block then forms across it.  The stale straight
  // segment beyond the new block must be retracted and replaced by the
  // merge structure (the paper's "deletion of out of date boundaries").
  const MeshTopology mesh(2, 16);
  DistributedFaultModel model(mesh);
  const Box upper(Coord{6, 10}, Coord{8, 11});
  for (const auto& c : box_fault_placement(mesh, upper)) model.inject_fault(c);
  model.stabilize(20000);
  // Upper's S_{y,+} wall runs down columns x=5 and x=9.
  ASSERT_TRUE(model.info().holds(mesh.index_of(Coord{5, 1}), upper));

  const Box lower(Coord{4, 4}, Coord{9, 6});  // swallows part of both columns
  for (const auto& c : box_fault_placement(mesh, lower)) model.inject_fault(c);
  model.stabilize(20000);

  // The merge places upper's info on lower's envelope and continuation
  // walls at lower's rings (x=3 and x=10); the old straight segments at
  // x=5/x=9 BELOW the lower block are out of date and must be gone.
  EXPECT_FALSE(model.info().holds(mesh.index_of(Coord{5, 1}), upper))
      << "stale pre-merge wall segment survived";
  EXPECT_FALSE(model.info().holds(mesh.index_of(Coord{9, 1}), upper));
  // Fixpoint equality with the centralized reference.
  const auto placement = compute_information_placement(mesh, {upper, lower}, model.epoch());
  long long mismatches = 0;
  for (NodeId id = 0; id < mesh.node_count(); ++id) {
    const auto got = model.info().at(id);
    const auto want = placement.store.at(id);
    if (got.size() != want.size()) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0);
}

TEST(BoundaryProtocol, MemoryWipedOnFailureAndRecovery) {
  const MeshTopology mesh(2, 12);
  DistributedFaultModel model(mesh);
  model.inject_fault(Coord{6, 6});
  model.stabilize(20000);

  // (5,5) is an envelope corner holding info; fail it — its memory must go.
  const NodeId victim = mesh.index_of(Coord{5, 5});
  ASSERT_FALSE(model.info().at(victim).empty());
  model.inject_fault(Coord{5, 5});
  EXPECT_TRUE(model.info().at(victim).empty());
  model.stabilize(20000);

  // Recover it: it must boot empty and then RELEARN the (new, merged) block
  // info from its neighbours' constructions.
  model.recover(Coord{5, 5});
  model.stabilize(20000);
  const auto blocks = block_boxes(model.field());
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_TRUE(model.info().holds(victim, blocks[0]))
      << "recovered node must relearn the surviving block's info";
}

TEST(BoundaryProtocol, EagerInvalidationAblation) {
  // With eager invalidation off, deletion still happens via the corner rule
  // (slower but converging to the same fixpoint for simple shrink events).
  const MeshTopology mesh(2, 12);
  DistributedModelOptions opts;
  opts.eager_invalidation = false;
  DistributedFaultModel model(mesh, opts);
  model.inject_fault(Coord{6, 6});
  model.stabilize(20000);
  model.recover(Coord{6, 6});
  model.stabilize(20000);
  EXPECT_EQ(model.info().total_entries(), 0);
}

TEST(BoundaryProtocol, InfoStoreEpochSemantics) {
  const MeshTopology mesh(2, 6);
  InfoStore store(mesh);
  const Box b(Coord{2, 2}, Coord{3, 3});
  EXPECT_TRUE(store.deposit(0, BlockInfo{b, 5}));
  EXPECT_FALSE(store.deposit(0, BlockInfo{b, 5})) << "same epoch: no change";
  EXPECT_FALSE(store.deposit(0, BlockInfo{b, 3})) << "older epoch: ignored";
  EXPECT_TRUE(store.deposit(0, BlockInfo{b, 9})) << "newer epoch: refresh";

  EXPECT_FALSE(store.cancel(0, b, 5)) << "cancel below stored epoch: no-op";
  EXPECT_TRUE(store.holds(0, b));
  EXPECT_TRUE(store.cancel(0, b, 9));
  EXPECT_FALSE(store.holds(0, b));
}

TEST(BoundaryProtocol, InfoStoreProvenanceUpgrade) {
  const MeshTopology mesh(2, 6);
  InfoStore store(mesh);
  const Box b(Coord{2, 2}, Coord{3, 3});
  Provenance merged;
  merged.via = InfoVia::kMerged;
  merged.carrier = Box(Coord{0, 0}, Coord{1, 1});
  store.deposit(0, BlockInfo{b, 1}, merged);
  EXPECT_EQ(store.provenance_at(0)[0].via, InfoVia::kMerged);

  Provenance wall;
  wall.via = InfoVia::kWall;
  store.deposit(0, BlockInfo{b, 1}, wall);
  EXPECT_EQ(store.provenance_at(0)[0].via, InfoVia::kWall) << "stronger justification wins";

  store.deposit(0, BlockInfo{b, 1}, Provenance{});  // envelope
  EXPECT_EQ(store.provenance_at(0)[0].via, InfoVia::kEnvelope);

  store.deposit(0, BlockInfo{b, 2}, merged);
  EXPECT_EQ(store.provenance_at(0)[0].via, InfoVia::kEnvelope)
      << "weaker justification never downgrades";
}

TEST(BoundaryProtocol, OnWallColumnGeometry) {
  const Box b(Coord{4, 6}, Coord{6, 8});  // 2-D block
  // Wall columns for S_{y,+} sit at x = 3 and x = 7, y < 6.
  EXPECT_TRUE(DistributedFaultModel::on_wall_column(Coord{3, 2}, b, 1, true));
  EXPECT_TRUE(DistributedFaultModel::on_wall_column(Coord{7, 5}, b, 1, true));
  EXPECT_FALSE(DistributedFaultModel::on_wall_column(Coord{5, 2}, b, 1, true))
      << "inside the cross-section is the dangerous area, not the wall";
  EXPECT_FALSE(DistributedFaultModel::on_wall_column(Coord{2, 2}, b, 1, true))
      << "two columns out is beyond the wall";
  EXPECT_FALSE(DistributedFaultModel::on_wall_column(Coord{3, 7}, b, 1, true))
      << "beside the block, not beyond it";
  EXPECT_FALSE(DistributedFaultModel::on_wall_column(Coord{3, 12}, b, 1, true))
      << "wrong side for S_{y,+}";
  EXPECT_TRUE(DistributedFaultModel::on_wall_column(Coord{3, 12}, b, 1, false));
}

}  // namespace
}  // namespace lgfi
