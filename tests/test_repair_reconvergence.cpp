// Repair semantics through the whole protocol stack (DESIGN.md §17): both
// round engines agree through fail -> repair -> fail churn, a fully repaired
// mesh is indistinguishable from a never-faulted one, and the reliability
// reporting surface (csv_ci, memory accounting) holds its contracts.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/core/dynamic_simulation.h"
#include "src/core/experiment_runner.h"
#include "src/fault/distributed_model.h"
#include "src/mesh/topology.h"
#include "src/sim/fault_timeline.h"

namespace lgfi {
namespace {

/// Asserts both simulations' protocol models hold the same observable state.
void expect_same_model_state(const DistributedFaultModel& a, const DistributedFaultModel& b) {
  ASSERT_EQ(a.mesh().node_count(), b.mesh().node_count());
  EXPECT_EQ(a.rounds_run(), b.rounds_run());
  EXPECT_EQ(a.messages_sent(), b.messages_sent());
  EXPECT_EQ(a.epoch(), b.epoch());
  for (NodeId id = 0; id < a.mesh().node_count(); ++id) {
    ASSERT_EQ(a.field().at(id), b.field().at(id)) << "status at node " << id;
    ASSERT_EQ(a.levels_at(id), b.levels_at(id)) << "levels at node " << id;
    const auto ia = a.info().at(id);
    const auto ib = b.info().at(id);
    ASSERT_EQ(ia.size(), ib.size()) << "info count at node " << id;
    for (size_t i = 0; i < ia.size(); ++i) {
      ASSERT_EQ(ia[i].box, ib[i].box) << "info box at node " << id;
      ASSERT_EQ(ia[i].epoch, ib[i].epoch) << "info epoch at node " << id;
    }
  }
}

FaultSchedule churn_schedule() {
  // fail -> repair -> fail over the same region: blocks must form, shrink,
  // dissolve, and re-form, re-arming worklists each time.
  FaultSchedule s;
  s.add_fail(0, Coord({2, 2, 2}));
  s.add_fail(0, Coord({2, 3, 2}));
  s.add_fail(0, Coord({3, 2, 2}));
  s.add_fail(5, Coord({6, 6, 6}));
  s.add_recover(40, Coord({3, 2, 2}));
  s.add_recover(70, Coord({2, 2, 2}));
  s.add_recover(70, Coord({2, 3, 2}));
  s.add_recover(90, Coord({6, 6, 6}));
  s.add_fail(110, Coord({2, 2, 2}));
  s.add_fail(110, Coord({2, 4, 2}));
  return s;
}

DynamicSimulationOptions engine_opts(bool active) {
  DynamicSimulationOptions o;
  o.model.active_set = active;
  return o;
}

TEST(RepairReconvergence, ActiveSetMatchesFullScanThroughFailRepairChurn) {
  const MeshTopology mesh(3, 8);
  const FaultSchedule schedule = churn_schedule();
  DynamicSimulation active(mesh, schedule, engine_opts(true));
  DynamicSimulation scan(mesh, schedule, engine_opts(false));
  for (int step = 0; step < 200; ++step) {
    active.step();
    scan.step();
    expect_same_model_state(active.model(), scan.model());
  }
}

TEST(RepairReconvergence, FullyRepairedMeshIsIndistinguishableFromNeverFaulted) {
  // Everything fails, everything repairs, the protocol quiesces: the field,
  // levels and information stores must equal a fresh, never-faulted model's,
  // and routing the same pairs must behave identically.
  const MeshTopology mesh(3, 8);
  const FaultSchedule schedule = churn_schedule();

  FaultSchedule repaired_all = schedule;
  repaired_all.add_recover(130, Coord({2, 2, 2}));
  repaired_all.add_recover(130, Coord({2, 4, 2}));

  DynamicSimulation churned(mesh, repaired_all, DynamicSimulationOptions{});
  DynamicSimulation fresh(mesh, FaultSchedule{}, DynamicSimulationOptions{});
  for (int step = 0; step < 260; ++step) {
    churned.step();
    fresh.step();
  }

  for (NodeId id = 0; id < mesh.node_count(); ++id) {
    ASSERT_EQ(churned.model().field().at(id), fresh.model().field().at(id))
        << "status at node " << id;
    ASSERT_EQ(churned.model().levels_at(id), fresh.model().levels_at(id))
        << "levels at node " << id;
    ASSERT_TRUE(churned.model().info().at(id).empty())
        << "stale block info survived full repair at node " << id;
  }
  EXPECT_EQ(churned.link_faults().faulty_count(), 0);

  // Same pairs through both: every message must take an identical path.
  const std::vector<std::pair<Coord, Coord>> pairs = {
      {Coord({0, 0, 0}), Coord({7, 7, 7})},
      {Coord({2, 2, 2}), Coord({5, 2, 2})},
      {Coord({6, 1, 3}), Coord({0, 6, 4})},
  };
  std::vector<int> churned_ids;
  std::vector<int> fresh_ids;
  for (const auto& [s, d] : pairs) {
    churned_ids.push_back(churned.launch_message(s, d));
    fresh_ids.push_back(fresh.launch_message(s, d));
  }
  churned.run(1000);
  fresh.run(1000);
  for (size_t i = 0; i < pairs.size(); ++i) {
    const MessageProgress& mc = churned.message(churned_ids[i]);
    const MessageProgress& mf = fresh.message(fresh_ids[i]);
    EXPECT_TRUE(mc.delivered);
    EXPECT_EQ(mc.delivered, mf.delivered);
    EXPECT_EQ(mc.end_step - mc.start_step, mf.end_step - mf.start_step)
        << "repaired mesh took a different route for pair " << i;
  }
}

TEST(RepairReconvergence, LifecycleReportByteIdenticalAcrossEnginesAndThreads) {
  // The E14-style determinism matrix over the new subsystem: lifecycle churn
  // with transients and repairs must produce the same metric bytes for any
  // engine and thread count.
  const auto report_with = [](int threads, bool active) {
    Config cfg = experiment_config();
    cfg.parse_string(
        "traffic=uniform mesh_dims=2 radix=8 fault_model=lifecycle "
        "fault_arrival_rate=0.08 repair_rate=0.1 transient_frac=0.4 "
        "measure_steps=150 replications=3 seed=17");
    cfg.set_int("threads", threads);
    cfg.set_bool("active_set", active);
    const auto res = ExperimentRunner(cfg).run();
    std::ostringstream os;
    JsonReporter().report(res, os);
    // Drop the config echo (threads / active_set legitimately differ).
    const std::string s = os.str();
    return s.substr(s.find("\"metrics\""));
  };
  const std::string base = report_with(1, true);
  EXPECT_EQ(base, report_with(8, true));
  EXPECT_EQ(base, report_with(1, false));
  EXPECT_EQ(base, report_with(8, false));
}

TEST(RepairReconvergence, CsvCiEmitsEmptyFieldNotNanForSingleReplication) {
  // replications=1 has no spread: the ci95 cell must be *empty*, never a
  // literal "nan" token (the bug this reporter exists to fix).
  Config cfg = experiment_config();
  cfg.parse_string(
      "traffic=uniform mesh_dims=2 radix=6 fault_model=lifecycle "
      "fault_arrival_rate=0.1 repair_rate=0.2 measure_steps=60 "
      "replications=1 seed=3 report=csv_ci");
  const auto res = ExperimentRunner(cfg).run();
  std::ostringstream os;
  CsvCiReporter().report(res, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("config,metric,count,mean,ci95,stddev,min,max"), std::string::npos);
  // Cell-delimited, so the config echo ("info_mode=...") can't false-match.
  EXPECT_EQ(out.find(",nan"), std::string::npos) << out;
  EXPECT_EQ(out.find(",inf"), std::string::npos) << out;
  EXPECT_NE(out.find(",,"), std::string::npos) << "expected an empty ci95 cell:\n" << out;
}

TEST(RepairReconvergence, MemoryAccountsForTimelineAndMask) {
  const MeshTopology mesh(2, 8);
  Config cfg = experiment_config();
  cfg.set_str("fault_model", "lifecycle");
  cfg.set_double("fault_arrival_rate", 0.2);
  cfg.set_double("repair_rate", 0.1);
  Rng rng(9);
  FaultTimeline timeline = build_lifecycle_timeline(mesh, cfg, rng, 400);
  const long long timeline_bytes = timeline.memory_bytes();
  EXPECT_GT(timeline_bytes, 0);

  DynamicSimulation sim(mesh, std::move(timeline), DynamicSimulationOptions{});
  // The simulation's footprint must cover the model, the pending event heap,
  // and the link mask.
  EXPECT_GE(sim.memory_bytes(),
            sim.model().memory_bytes() + sim.link_faults().memory_bytes());
  EXPECT_GT(sim.memory_bytes(), sim.model().memory_bytes());
}

}  // namespace
}  // namespace lgfi
