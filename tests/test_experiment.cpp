// Tests for the experiment harness and node inspection utilities.

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/core/network.h"
#include "src/core/node_process.h"
#include "src/core/scenario.h"

namespace lgfi {
namespace {

TEST(Experiment, MetricSetAccumulates) {
  MetricSet m;
  m.add("x", 1.0);
  m.add("x", 3.0);
  m.add("y", 10.0);
  EXPECT_DOUBLE_EQ(m.mean("x"), 2.0);
  EXPECT_DOUBLE_EQ(m.mean("y"), 10.0);
  EXPECT_DOUBLE_EQ(m.mean("absent"), 0.0) << "mean stays lenient for optional metrics";
  EXPECT_EQ(m.names(), (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(m.stats("x").count(), 2);
}

TEST(Experiment, StatsThrowsNamingTheMissingMetric) {
  MetricSet m;
  m.add("steps", 4.0);
  try {
    (void)m.stats("setps");  // typo'd metric name
    FAIL() << "stats() must throw on a missing metric";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("setps"), std::string::npos)
        << "error must name the missing metric";
    EXPECT_NE(std::string(e.what()).find("steps"), std::string::npos)
        << "error must list what was recorded";
  }
}

TEST(Experiment, MetricSetMergeCombinesStreams) {
  MetricSet a, b;
  a.add("v", 1.0);
  a.add("v", 2.0);
  b.add("v", 3.0);
  b.add("w", 7.0);
  a.merge(b);
  EXPECT_EQ(a.stats("v").count(), 3);
  EXPECT_DOUBLE_EQ(a.mean("v"), 2.0);
  EXPECT_DOUBLE_EQ(a.mean("w"), 7.0);
}

TEST(Experiment, ParallelReplicateDeterministic) {
  auto run = [] {
    MetricSet m;
    parallel_replicate(64, 1234, m, [](Rng& rng, MetricSet& out) {
      out.add("v", static_cast<double>(rng.next_below(1000)));
    });
    return m.mean("v");
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Experiment, ReplicationCountsMatch) {
  MetricSet m;
  parallel_replicate(100, 7, m, [](Rng&, MetricSet& out) { out.add("n", 1.0); });
  EXPECT_EQ(m.stats("n").count(), 100);
}

TEST(NodeInspection, RolesReported) {
  Network net(MeshTopology(3, 8));
  for (const auto& c : figure1_faults()) net.inject_fault(c);
  net.stabilize();

  const auto corner = inspect_node(net.model(), figure2_corner());
  EXPECT_EQ(corner.status, NodeStatus::kEnabled);
  EXPECT_EQ(corner.corner_level, 3);
  EXPECT_TRUE(corner.on_some_envelope);
  EXPECT_FALSE(corner.held.empty());
  EXPECT_NE(corner.describe().find("3-level corner"), std::string::npos);

  const auto inside = inspect_node(net.model(), Coord{4, 5, 3});
  EXPECT_EQ(inside.status, NodeStatus::kDisabled);

  // A wall node far below the block holds info without being adjacent.
  const auto wall = inspect_node(net.model(), Coord{2, 0, 3});
  EXPECT_TRUE(wall.on_some_wall);
  EXPECT_NE(wall.describe().find("boundary"), std::string::npos);
}

TEST(NodeInspection, FootprintIsLimited) {
  Network net(MeshTopology(3, 8));
  for (const auto& c : figure1_faults()) net.inject_fault(c);
  net.stabilize();
  const auto f = placement_footprint(net.model());
  EXPECT_GT(f.nodes_with_info, 0);
  EXPECT_LT(f.fraction_of_mesh(), 0.75);
  EXPECT_EQ(f.nodes_with_info, f.envelope_nodes + f.wall_nodes);
  EXPECT_GT(f.envelope_nodes, 0);
  EXPECT_GT(f.wall_nodes, 0);
}

}  // namespace
}  // namespace lgfi
