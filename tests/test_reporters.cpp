// Tests for the table/CSV reporters backing the benchmark harness.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/sim/table_printer.h"

namespace lgfi {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
  // All data lines share the same column start for "value"/1/22.
  std::istringstream is(out);
  std::string header, sep, row1, row2;
  std::getline(is, header);
  std::getline(is, sep);
  std::getline(is, row1);
  std::getline(is, row2);
  EXPECT_EQ(header.find("value"), row1.find("1"));
  EXPECT_EQ(header.find("value"), row2.find("22"));
}

TEST(TablePrinter, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_EQ(t.rows()[0].size(), 3u);
  EXPECT_EQ(t.rows()[0][2], "");
}

TEST(TablePrinter, NumberFormatting) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(3.0, 0), "3");
  EXPECT_EQ(TablePrinter::num(42), "42");
  EXPECT_EQ(TablePrinter::num(-7LL), "-7");
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  const std::string path = testing::TempDir() + "lgfi_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"plain", "with,comma", "with\"quote", "multi\nline"});
  }
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "plain,\"with,comma\",\"with\"\"quote\",\"multi\nline\"\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, WritesWholeTable) {
  const std::string path = testing::TempDir() + "lgfi_csv_table.csv";
  {
    TablePrinter t({"h1", "h2"});
    t.add_row({"a", "b"});
    t.add_row({"c", "d"});
    CsvWriter csv(path);
    csv.write_table(t);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h1,h2");
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "c,d");
  std::remove(path.c_str());
}

TEST(CsvWriter, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-lgfi/x.csv"), std::runtime_error);
}

TEST(Banner, Format) {
  std::ostringstream os;
  print_banner(os, "Title Here");
  EXPECT_EQ(os.str(), "\n== Title Here ==\n");
}

}  // namespace
}  // namespace lgfi
