// Tests for LinkArbiter: one message per directed channel per step,
// deterministic round-robin among contenders, and the contention behaviour
// of the arbitrated advance phase in DynamicSimulation.

#include <gtest/gtest.h>

#include "src/core/dynamic_simulation.h"
#include "src/sim/link_arbiter.h"

namespace lgfi {
namespace {

TEST(LinkArbiter, SingleRequesterAlwaysGranted) {
  const MeshTopology mesh(2, 4);
  LinkArbiter arb(mesh);
  for (int step = 0; step < 5; ++step) {
    arb.begin_step();
    const int t = arb.request(0, Direction(0, true));
    arb.arbitrate();
    EXPECT_TRUE(arb.granted(t));
    EXPECT_EQ(arb.stalled_this_step(), 0);
  }
  EXPECT_EQ(arb.total_stalled(), 0);
}

TEST(LinkArbiter, ContendedChannelGrantsExactlyOne) {
  const MeshTopology mesh(2, 4);
  LinkArbiter arb(mesh);
  arb.begin_step();
  const int a = arb.request(0, Direction(0, true));
  const int b = arb.request(0, Direction(0, true));
  const int c = arb.request(0, Direction(0, true));
  arb.arbitrate();
  EXPECT_EQ((arb.granted(a) ? 1 : 0) + (arb.granted(b) ? 1 : 0) + (arb.granted(c) ? 1 : 0), 1);
  EXPECT_EQ(arb.stalled_this_step(), 2);
  EXPECT_EQ(arb.total_stalled(), 2);
}

TEST(LinkArbiter, DistinctChannelsDoNotContend) {
  const MeshTopology mesh(2, 4);
  LinkArbiter arb(mesh);
  arb.begin_step();
  // Same node, different directions; and the opposite directed channel of a
  // neighbouring node: all distinct channels.
  const int a = arb.request(5, Direction(0, true));
  const int b = arb.request(5, Direction(1, true));
  const int c = arb.request(6, Direction(0, false));
  arb.arbitrate();
  EXPECT_TRUE(arb.granted(a));
  EXPECT_TRUE(arb.granted(b));
  EXPECT_TRUE(arb.granted(c));
  EXPECT_EQ(arb.stalled_this_step(), 0);
}

TEST(LinkArbiter, RoundRobinRotatesAmongPersistentContenders) {
  const MeshTopology mesh(2, 4);
  LinkArbiter arb(mesh);
  // Two requesters contending for the same channel every step: the winner
  // position must alternate (round-robin), so over two steps both win once.
  int wins_first = 0, wins_second = 0;
  for (int step = 0; step < 4; ++step) {
    arb.begin_step();
    const int a = arb.request(0, Direction(1, true));
    const int b = arb.request(0, Direction(1, true));
    arb.arbitrate();
    ASSERT_NE(arb.granted(a), arb.granted(b));
    wins_first += arb.granted(a) ? 1 : 0;
    wins_second += arb.granted(b) ? 1 : 0;
  }
  EXPECT_EQ(wins_first, 2);
  EXPECT_EQ(wins_second, 2);
}

TEST(LinkArbiter, GrantSequenceIsDeterministic) {
  const MeshTopology mesh(3, 4);
  const auto run = [&mesh] {
    LinkArbiter arb(mesh);
    std::vector<bool> grants;
    for (int step = 0; step < 6; ++step) {
      arb.begin_step();
      std::vector<int> tickets;
      for (int r = 0; r < 3; ++r) tickets.push_back(arb.request(7, Direction(2, false)));
      tickets.push_back(arb.request(9, Direction(0, true)));
      arb.arbitrate();
      for (const int t : tickets) grants.push_back(arb.granted(t));
    }
    return grants;
  };
  EXPECT_EQ(run(), run());
}

TEST(DynamicSimulationArbitration, ColocatedMessagesShareAChannel) {
  // Two messages launched at the same source toward the same destination
  // want the same channel every step: with arbitration one of them stalls
  // each step, without arbitration both advance in lockstep.
  const MeshTopology mesh(2, 10);
  DynamicSimulationOptions opts;
  opts.link_arbitration = true;
  DynamicSimulation sim(mesh, FaultSchedule{}, opts);
  const int a = sim.launch_message(Coord{0, 0}, Coord{0, 6});
  const int b = sim.launch_message(Coord{0, 0}, Coord{0, 6});
  sim.run(200);

  EXPECT_TRUE(sim.message(a).delivered);
  EXPECT_TRUE(sim.message(b).delivered);
  // Both take the minimal 6 hops; contention shows up as stalls, not moves.
  EXPECT_EQ(sim.message(a).header.total_steps(), 6);
  EXPECT_EQ(sim.message(b).header.total_steps(), 6);
  EXPECT_GT(sim.total_stalls(), 0);
  const int total_stalls = sim.message(a).stall_steps + sim.message(b).stall_steps;
  EXPECT_EQ(total_stalls, static_cast<int>(sim.total_stalls()));
  // Latency = moves + stalls.
  for (const int id : {a, b}) {
    const auto& m = sim.message(id);
    EXPECT_EQ(m.end_step - m.start_step, m.header.total_steps() + m.stall_steps);
  }

  DynamicSimulation free_sim(mesh, FaultSchedule{});
  const int c = free_sim.launch_message(Coord{0, 0}, Coord{0, 6});
  const int d = free_sim.launch_message(Coord{0, 0}, Coord{0, 6});
  free_sim.run(200);
  EXPECT_EQ(free_sim.message(c).end_step, free_sim.message(d).end_step)
      << "the Figure 7 idealization has no contention";
  EXPECT_EQ(free_sim.total_stalls(), 0);
}

TEST(DynamicSimulationArbitration, SingleMessageMatchesContentionFreeExactly) {
  // The thin-wrapper guarantee: with one message in flight, arbitration is
  // a no-op and the historical results are byte-identical.
  const MeshTopology mesh(2, 12);
  FaultSchedule schedule;
  for (const auto& c : box_fault_placement(mesh, Box(Coord{5, 5}, Coord{7, 6})))
    schedule.add_fail(4, c);

  const auto run_with = [&](bool arbitration) {
    DynamicSimulationOptions opts;
    opts.link_arbitration = arbitration;
    DynamicSimulation sim(mesh, schedule, opts);
    const int id = sim.launch_message(Coord{6, 0}, Coord{6, 11});
    sim.run(2000);
    return sim.message(id);
  };
  const MessageProgress with = run_with(true);
  const MessageProgress without = run_with(false);
  EXPECT_EQ(with.delivered, without.delivered);
  EXPECT_EQ(with.end_step, without.end_step);
  EXPECT_EQ(with.header.total_steps(), without.header.total_steps());
  EXPECT_EQ(with.header.backtrack_steps(), without.header.backtrack_steps());
  EXPECT_EQ(with.stall_steps, 0);
}

TEST(DynamicSimulationArbitration, PhasesComposeLikeStep) {
  // Driving the phases manually through a StepContext reproduces step().
  const MeshTopology mesh(2, 8);
  FaultSchedule schedule;
  schedule.add_fail(1, Coord{4, 4});

  DynamicSimulationOptions opts;
  opts.link_arbitration = true;
  DynamicSimulation manual(mesh, schedule, opts);
  DynamicSimulation composed(mesh, schedule, opts);
  const int m1 = manual.launch_message(Coord{1, 1}, Coord{6, 6});
  const int m2 = composed.launch_message(Coord{1, 1}, Coord{6, 6});

  for (int s = 0; s < 40; ++s) {
    StepContext ctx = manual.begin_step();
    EXPECT_EQ(ctx.step, manual.now());
    manual.apply_fault_events(ctx);
    if (s == 1) {
      ASSERT_EQ(ctx.events.size(), 1u);
      EXPECT_TRUE(ctx.occurrence_opened);
    }
    manual.run_information_rounds(ctx);
    manual.arbitrate_and_advance(ctx);
    manual.end_step(ctx);
    composed.step();
  }
  EXPECT_EQ(manual.message(m1).delivered, composed.message(m2).delivered);
  EXPECT_EQ(manual.message(m1).end_step, composed.message(m2).end_step);
  EXPECT_EQ(manual.now(), composed.now());
}

}  // namespace
}  // namespace lgfi
