// Parameterized property sweeps for the routing layer (P4-P7 across
// dimensionalities, radices and fault densities): termination, delivery
// completeness, safe-source minimality, boundary interception end-to-end,
// and consistency between router variants.

#include <gtest/gtest.h>

#include "src/core/network.h"
#include "src/core/scenario.h"
#include "src/fault/boundary_model.h"
#include "src/fault/safety.h"
#include "src/routing/oracle_router.h"
#include "src/routing/route_walker.h"
#include "src/routing/router_registry.h"
#include "src/sim/fault_schedule.h"

namespace lgfi {
namespace {

struct SweepCase {
  int dims;
  int radix;
  int faults;
  uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  return "d" + std::to_string(info.param.dims) + "k" + std::to_string(info.param.radix) +
         "f" + std::to_string(info.param.faults);
}

class RoutingSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  void SetUp() override {
    const auto p = GetParam();
    mesh_ = std::make_unique<MeshTopology>(p.dims, p.radix);
    net_ = std::make_unique<Network>(*mesh_);
    rng_ = std::make_unique<Rng>(p.seed);
    for (const auto& c : random_fault_placement(*mesh_, p.faults, *rng_))
      net_->inject_fault(c);
    net_->stabilize(200000);
  }

  std::unique_ptr<MeshTopology> mesh_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<Rng> rng_;
};

TEST_P(RoutingSweep, EveryRouteTerminates) {
  for (int i = 0; i < 25; ++i) {
    const auto pair = random_enabled_pair(*mesh_, net_->field(), *rng_);
    const auto r = net_->route(pair.source, pair.dest);
    EXPECT_TRUE(r.delivered || r.unreachable || r.budget_exhausted);
  }
}

TEST_P(RoutingSweep, SafeSourceIsMinimal) {
  const auto blocks = block_boxes(net_->field());
  int tested = 0;
  for (int i = 0; i < 60 && tested < 15; ++i) {
    const auto pair = random_enabled_pair(*mesh_, net_->field(), *rng_);
    if (!is_safe_source(blocks, pair.source, pair.dest)) continue;
    ++tested;
    const auto r = net_->route(pair.source, pair.dest);
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(r.detours(), 0) << pair.source.to_string() << " -> " << pair.dest.to_string();
  }
  EXPECT_GT(tested, 0);
}

TEST_P(RoutingSweep, InformedNeverWorseThanBlindOnAverage) {
  // Aggregate over pairs: the limited-global info must not increase the
  // total step count (per-pair ties are common; regressions are not).
  EmptyInfoProvider empty;
  const auto blind = make_router("no_info");
  RoutingContext blind_ctx = net_->context();
  blind_ctx.info = &empty;

  long long informed_steps = 0, blind_steps = 0;
  int comparable = 0;
  for (int i = 0; i < 30; ++i) {
    const auto pair = random_enabled_pair(*mesh_, net_->field(), *rng_);
    const auto a = net_->route(pair.source, pair.dest);
    const auto b = run_static_route(blind_ctx, *blind, pair.source, pair.dest);
    if (!a.delivered || !b.delivered) continue;
    ++comparable;
    informed_steps += a.total_steps;
    blind_steps += b.total_steps;
  }
  ASSERT_GT(comparable, 5);
  EXPECT_LE(informed_steps, blind_steps);
}

TEST_P(RoutingSweep, InformedTracksOracle) {
  // Delivered informed routes stay within a small factor of the BFS optimum.
  int tested = 0;
  double worst_ratio = 1.0;
  for (int i = 0; i < 30; ++i) {
    const auto pair = random_enabled_pair(*mesh_, net_->field(), *rng_);
    const auto opt = oracle_path_length(*mesh_, net_->field(), pair.source, pair.dest);
    if (!opt.has_value() || *opt == 0) continue;
    const auto r = net_->route(pair.source, pair.dest);
    if (!r.delivered) continue;
    ++tested;
    worst_ratio = std::max(worst_ratio,
                           static_cast<double>(r.total_steps) / static_cast<double>(*opt));
  }
  ASSERT_GT(tested, 5);
  EXPECT_LT(worst_ratio, 4.0) << "informed routing should not blow up vs the oracle";
}

TEST_P(RoutingSweep, InterceptionEndToEnd) {
  // P4 on the live distributed placement: any monotone walk entering a
  // block's dangerous prism crosses an informed node no later than entry.
  const auto blocks = block_boxes(net_->field());
  for (const auto& block : blocks) {
    for (int dim = 0; dim < mesh_->dims(); ++dim) {
      for (bool positive : {false, true}) {
        const Box danger = dangerous_region(*mesh_, block, Surface{dim, positive});
        if (danger.empty() || danger.volume() < 2) continue;
        // Walk straight into the prism along `dim` from outside.
        Coord goal = danger.lo();
        Coord start = goal.with(dim, positive ? 0 : mesh_->extent(dim) - 1);
        if (danger.contains(start)) continue;
        Coord cur = start;
        bool informed = net_->model().info().holds(mesh_->index_of(cur), block);
        bool ok = true;
        int guard = 0;
        while (cur != goal && guard++ < 2 * mesh_->extent(dim)) {
          cur = cur.shifted(dim, cur[dim] < goal[dim] ? 1 : -1);
          if (block.contains(cur)) break;
          if (net_->model().info().holds(mesh_->index_of(cur), block)) informed = true;
          if (danger.contains(cur) && !informed) ok = false;
        }
        EXPECT_TRUE(ok) << "uninformed entry into " << danger.to_string() << " of "
                        << block.to_string();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoutingSweep,
    ::testing::Values(SweepCase{2, 12, 6, 11}, SweepCase{2, 16, 14, 12},
                      SweepCase{2, 20, 28, 13}, SweepCase{3, 8, 8, 14},
                      SweepCase{3, 10, 18, 15}, SweepCase{3, 12, 30, 16},
                      SweepCase{4, 6, 10, 17}, SweepCase{4, 7, 20, 18},
                      SweepCase{5, 5, 10, 19}),
    case_name);

}  // namespace
}  // namespace lgfi
