// Tests for the Config subsystem: typed defaults, parsing, overrides,
// rejection of unknown keys / bad values, and round-trip serialization.

#include <gtest/gtest.h>

#include "src/core/config.h"
#include "src/core/experiment_runner.h"

namespace lgfi {
namespace {

Config small_schema() {
  Config cfg;
  cfg.define_int("count", 4, "a counter")
      .define_double("rate", 0.5, "a rate")
      .define_bool("flag", false, "a flag")
      .define_string("name", "alpha", "a name");
  return cfg;
}

TEST(Config, DefaultsAndTypedAccess) {
  const Config cfg = small_schema();
  EXPECT_EQ(cfg.get_int("count"), 4);
  EXPECT_DOUBLE_EQ(cfg.get_double("rate"), 0.5);
  EXPECT_FALSE(cfg.get_bool("flag"));
  EXPECT_EQ(cfg.get_str("name"), "alpha");
  // int promotes to double, nothing else crosses types.
  EXPECT_DOUBLE_EQ(cfg.get_double("count"), 4.0);
  EXPECT_THROW((void)cfg.get_int("rate"), ConfigError);
  EXPECT_THROW((void)cfg.get_bool("name"), ConfigError);
  EXPECT_THROW((void)cfg.get_str("count"), ConfigError);
}

TEST(Config, SettersAreTypeChecked) {
  Config cfg = small_schema();
  cfg.set_int("count", 9);
  cfg.set_double("rate", 0.25);
  cfg.set_bool("flag", true);
  cfg.set_str("name", "beta");
  EXPECT_EQ(cfg.get_int("count"), 9);
  EXPECT_TRUE(cfg.get_bool("flag"));
  EXPECT_THROW(cfg.set_int("rate", 1), ConfigError);
  EXPECT_THROW(cfg.set_str("flag", "x"), ConfigError);
}

TEST(Config, UnknownKeyRejectedWithKnownKeysListed) {
  Config cfg = small_schema();
  try {
    cfg.parse_token("typo=1");
    FAIL() << "unknown key must throw";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("typo"), std::string::npos);
    EXPECT_NE(msg.find("count"), std::string::npos) << "message lists known keys";
  }
  EXPECT_THROW((void)cfg.get_int("typo"), ConfigError);
}

TEST(Config, BadValuesRejected) {
  Config cfg = small_schema();
  EXPECT_THROW(cfg.set_from_string("count", "seven"), ConfigError);
  EXPECT_THROW(cfg.set_from_string("count", "7x"), ConfigError);
  EXPECT_THROW(cfg.set_from_string("rate", "fast"), ConfigError);
  EXPECT_THROW(cfg.set_from_string("flag", "maybe"), ConfigError);
  EXPECT_THROW(cfg.parse_token("no-equals-sign"), ConfigError);
  EXPECT_THROW(cfg.parse_token("=5"), ConfigError);
  // Nothing was modified by the failed parses.
  EXPECT_EQ(cfg.get_int("count"), 4);
}

TEST(Config, BoolSpellings) {
  Config cfg = small_schema();
  for (const char* yes : {"true", "1", "yes", "on", "TRUE", "Yes"}) {
    cfg.set_from_string("flag", yes);
    EXPECT_TRUE(cfg.get_bool("flag")) << yes;
  }
  for (const char* no : {"false", "0", "no", "off", "FALSE"}) {
    cfg.set_from_string("flag", no);
    EXPECT_FALSE(cfg.get_bool("flag")) << no;
  }
}

TEST(Config, CommandLineOverrides) {
  Config cfg = small_schema();
  const char* argv[] = {"prog", "count=12", "name=gamma", "flag=yes"};
  cfg.parse_args(4, argv);
  EXPECT_EQ(cfg.get_int("count"), 12);
  EXPECT_EQ(cfg.get_str("name"), "gamma");
  EXPECT_TRUE(cfg.get_bool("flag"));
}

TEST(Config, RoundTripSerialization) {
  Config cfg = small_schema();
  cfg.parse_string("count=42 rate=0.125 flag=true name=delta");
  Config copy = small_schema();
  copy.parse_string(cfg.to_string());
  EXPECT_EQ(cfg, copy);
  EXPECT_EQ(cfg.to_string(), copy.to_string());
  EXPECT_EQ(copy.get_int("count"), 42);
  EXPECT_DOUBLE_EQ(copy.get_double("rate"), 0.125);
}

TEST(Config, ExperimentSchemaRoundTrips) {
  Config cfg = experiment_config();
  cfg.parse_string("mesh_dims=4 radix=6 router=global_table replications=200 "
                   "fault_box=3:5,5:6,3:4 lambda=2 persistent_marks=true");
  Config copy = experiment_config();
  copy.parse_string(cfg.to_string());
  EXPECT_EQ(cfg, copy);
  EXPECT_EQ(copy.get_int("mesh_dims"), 4);
  EXPECT_EQ(copy.get_str("fault_box"), "3:5,5:6,3:4");
  EXPECT_TRUE(copy.get_bool("persistent_marks"));
}

TEST(Config, WhitespaceStringValuesRejected) {
  // Values with embedded whitespace would break the to_string() /
  // parse_string() round trip, so they are rejected up front.
  Config cfg = small_schema();
  EXPECT_THROW(cfg.set_str("name", "two words"), ConfigError);
  EXPECT_THROW(cfg.set_from_string("name", "a\tb"), ConfigError);
  EXPECT_EQ(cfg.get_str("name"), "alpha") << "failed set must not modify the value";
}

TEST(Config, DuplicateDefinitionRejected) {
  Config cfg;
  cfg.define_int("k", 1);
  EXPECT_THROW(cfg.define_int("k", 2), ConfigError);
  EXPECT_THROW(cfg.define_string("k", "v"), ConfigError);
}

TEST(Config, HelpListsEveryKey) {
  const Config cfg = experiment_config();
  const std::string help = cfg.help();
  for (const auto& key : cfg.keys())
    EXPECT_NE(help.find(key), std::string::npos) << key;
}

}  // namespace
}  // namespace lgfi
