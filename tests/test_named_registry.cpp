// Tests for the shared NamedRegistry template and the component
// introspection surface: metadata round-trips, duplicate and unknown names,
// did-you-mean suggestions, every registered factory across every registry
// constructs, and the --list catalog covers all five axes.

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "src/core/component_catalog.h"
#include "src/core/experiment_runner.h"
#include "src/core/named_registry.h"
#include "src/routing/router_registry.h"
#include "src/sim/fault_schedule.h"
#include "src/sim/fault_timeline.h"
#include "src/sim/switching_model.h"
#include "src/sim/traffic_pattern.h"

namespace lgfi {
namespace {

TEST(NamedRegistry, AddContainsRequireAndMetaRoundTrip) {
  NamedRegistry<int> reg("widget");
  reg.add("alpha", 1, {"the first widget", {"alpha_knob"}});
  reg.add("beta", 2);
  EXPECT_TRUE(reg.contains("alpha"));
  EXPECT_FALSE(reg.contains("gamma"));
  EXPECT_EQ(reg.require("alpha"), 1);
  EXPECT_EQ(reg.require("beta"), 2);
  EXPECT_EQ(reg.meta("alpha").help, "the first widget");
  ASSERT_EQ(reg.meta("alpha").config_keys.size(), 1u);
  EXPECT_EQ(reg.meta("alpha").config_keys[0], "alpha_knob");
  EXPECT_EQ(reg.kind(), "widget");
}

TEST(NamedRegistry, NamesAndDescribeAreSortedRegardlessOfInsertionOrder) {
  NamedRegistry<int> reg("widget");
  reg.add("zeta", 1);
  reg.add("alpha", 2);
  reg.add("mu", 3);
  const auto names = reg.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[2], "zeta");
  const auto rows = reg.describe();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].name, "alpha");
  EXPECT_EQ(rows[1].name, "mu");
  EXPECT_EQ(rows[2].name, "zeta");
}

TEST(NamedRegistry, DuplicateNameRejectedNamingTheKind) {
  NamedRegistry<int> reg("widget");
  reg.add("alpha", 1);
  try {
    reg.add("alpha", 2);
    FAIL() << "duplicate registration must throw";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("widget 'alpha' registered twice"),
              std::string::npos)
        << e.what();
  }
}

TEST(NamedRegistry, UnknownNameListsRegisteredAndSuggests) {
  NamedRegistry<int> reg("widget");
  reg.add("uniform", 1);
  reg.add("transpose", 2);
  try {
    (void)reg.require("unifrom");
    FAIL() << "unknown name must throw";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown widget 'unifrom'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("registered: transpose, uniform"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean 'uniform'?"), std::string::npos) << msg;
  }
}

TEST(NamedRegistry, FarFetchedNameGetsNoSuggestion) {
  NamedRegistry<int> reg("widget");
  reg.add("uniform", 1);
  try {
    (void)reg.require("warp_drive");
    FAIL() << "unknown name must throw";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("registered: uniform"), std::string::npos) << msg;
    EXPECT_EQ(msg.find("did you mean"), std::string::npos)
        << "'warp_drive' is not a plausible typo of 'uniform': " << msg;
  }
}

TEST(NamedRegistry, ClosestNamePicksEditDistanceWinnerDeterministically) {
  EXPECT_EQ(closest_name("unifrom", {"uniform", "transpose"}), "uniform");
  EXPECT_EQ(closest_name("fault_inof", {"fault_info", "no_info", "oracle"}), "fault_info");
  EXPECT_EQ(closest_name("xyzzy", {"uniform", "transpose"}), "");
  // Exact ties break lexicographically.
  EXPECT_EQ(closest_name("ac", {"ab", "aa"}), "aa");
}

// ---------------------------------------------------------------------------
// Satellite coverage: for every registry, every registered name constructs,
// and the unknown-name error lists the available names plus a suggestion.
// ---------------------------------------------------------------------------

void expect_unknown_error_quality(const std::function<void()>& call,
                                  const std::string& expected_listed,
                                  const std::string& expected_suggestion) {
  try {
    call();
    FAIL() << "unknown name must throw ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("registered:"), std::string::npos) << msg;
    EXPECT_NE(msg.find(expected_listed), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean '" + expected_suggestion + "'?"), std::string::npos)
        << msg;
  }
}

TEST(RegistryCoverage, EveryRegisteredRouterConstructs) {
  const Config cfg = experiment_config();
  for (const auto& name : RouterRegistry::instance().names()) {
    const auto router = RouterRegistry::instance().make(name, cfg);
    EXPECT_NE(router, nullptr) << name;
  }
  expect_unknown_error_quality([] { (void)make_router("fault_inof"); }, "fault_info",
                               "fault_info");
}

TEST(RegistryCoverage, EveryRegisteredTrafficPatternConstructs) {
  const MeshTopology mesh(2, 6);
  const Config cfg = experiment_config();
  Rng rng(3);
  for (const auto& name : TrafficPatternRegistry::instance().names()) {
    const auto pattern = make_traffic_pattern(name, mesh, cfg, rng);
    ASSERT_NE(pattern, nullptr) << name;
    EXPECT_EQ(pattern->name(), name);
  }
  expect_unknown_error_quality(
      [&] {
        Rng r(1);
        (void)make_traffic_pattern("unifrom", MeshTopology(2, 4), Config{}, r);
      },
      "uniform", "uniform");
}

TEST(RegistryCoverage, EveryRegisteredSwitchingModelConstructs) {
  const MeshTopology mesh(2, 4);
  for (const auto& name : SwitchingModelRegistry::instance().names()) {
    const auto model = make_switching_model(name, mesh, SwitchingOptions{});
    ASSERT_NE(model, nullptr) << name;
    EXPECT_EQ(model->name(), name);
  }
  expect_unknown_error_quality(
      [&] { (void)make_switching_model("wormhol", mesh, SwitchingOptions{}); }, "ideal",
      "wormhole");
}

TEST(RegistryCoverage, EveryRegisteredFaultModelPlaces) {
  const MeshTopology mesh(2, 8);
  Config cfg = experiment_config();
  cfg.set_str("fault_box", "2:3,2:3");
  cfg.set_int("faults", 3);
  for (const auto& name : fault_model_registry().names()) {
    Rng rng(5);
    cfg.set_str("fault_model", name);
    if (is_lifecycle_model(name)) {
      // The lifecycle models generate a timeline, not a static placement;
      // their registry factories throw a steering ConfigError by design.
      EXPECT_THROW((void)place_faults(mesh, cfg, rng), ConfigError) << name;
      continue;
    }
    const auto placed = place_faults(mesh, cfg, rng);
    EXPECT_FALSE(placed.empty()) << name;
    for (const auto& c : placed) EXPECT_TRUE(mesh.in_bounds(c)) << name;
  }
  expect_unknown_error_quality(
      [&] {
        Rng rng(5);
        cfg.set_str("fault_model", "clusterd");
        (void)place_faults(mesh, cfg, rng);
      },
      "clustered", "clustered");
}

TEST(RegistryCoverage, EveryRegisteredReporterConstructs) {
  for (const auto& name : reporter_registry().names()) {
    const auto reporter = make_reporter(name);
    ASSERT_NE(reporter, nullptr) << name;
    EXPECT_EQ(reporter->name(), name);
  }
  expect_unknown_error_quality([] { (void)make_reporter("jsn"); }, "json", "json");
}

// ---------------------------------------------------------------------------
// The describe/--list catalog.
// ---------------------------------------------------------------------------

TEST(ComponentCatalog, CoversAllSevenAxes) {
  const auto sections = component_catalog();
  ASSERT_EQ(sections.size(), 7u);
  EXPECT_EQ(sections[0].config_key, "topology");
  EXPECT_EQ(sections[1].config_key, "router");
  EXPECT_EQ(sections[2].config_key, "traffic");
  EXPECT_EQ(sections[3].config_key, "injection");
  EXPECT_EQ(sections[4].config_key, "switching");
  EXPECT_EQ(sections[5].config_key, "fault_model");
  EXPECT_EQ(sections[6].config_key, "report");
  for (const auto& section : sections) {
    EXPECT_FALSE(section.components.empty()) << section.kind;
    for (const auto& c : section.components)
      EXPECT_FALSE(c.help.empty()) << section.kind << "/" << c.name
                                   << " needs a help line for the catalog";
  }
}

TEST(ComponentCatalog, DescribeTextNamesOneComponentPerRegistry) {
  const std::string text = describe_components();
  for (const char* expected : {"fault_info", "uniform", "wormhole", "clustered", "json",
                               "torus", "closed_loop", "injection processes (injection=",
                               "(topology=", "(router=", "(traffic="})
    EXPECT_NE(text.find(expected), std::string::npos) << "missing '" << expected << "'";
}

TEST(ComponentCatalog, CatalogConfigKeysExistInTheExperimentSchema) {
  // Every config key a component claims to consume must be a real key of
  // the experiment schema — the introspection surface cannot drift.
  const Config schema = experiment_config();
  for (const auto& section : component_catalog()) {
    EXPECT_TRUE(schema.defined(section.config_key)) << section.config_key;
    for (const auto& c : section.components)
      for (const auto& key : c.config_keys)
        EXPECT_TRUE(schema.defined(key)) << section.kind << "/" << c.name << " claims '"
                                         << key << "'";
  }
}

}  // namespace
}  // namespace lgfi
