// Tests for Theorem 2's safe-source classification.

#include <gtest/gtest.h>

#include "src/fault/block_analyzer.h"
#include "src/fault/labeling.h"
#include "src/fault/safety.h"
#include "src/sim/fault_schedule.h"
#include "src/sim/rng.h"

namespace lgfi {
namespace {

TEST(Safety, NoBlocksMeansAlwaysSafe) {
  EXPECT_TRUE(is_safe_source({}, Coord{0, 0}, Coord{7, 7}));
}

TEST(Safety, BlockInsideSectionMakesUnsafe) {
  // Theorem 2 with source at the origin: block intersecting [0:u_i] sections.
  const std::vector<Box> blocks{Box(Coord{3, 3}, Coord{4, 4})};
  EXPECT_FALSE(is_safe_source(blocks, Coord{0, 0}, Coord{7, 7}));
  EXPECT_TRUE(is_safe_source(blocks, Coord{0, 0}, Coord{2, 7}))
      << "block outside the x-section";
  EXPECT_TRUE(is_safe_source(blocks, Coord{0, 0}, Coord{7, 2}))
      << "block outside the y-section";
}

TEST(Safety, GeneralSourceUsesMinimalPathBox) {
  const std::vector<Box> blocks{Box(Coord{5, 5, 5}, Coord{6, 6, 6})};
  EXPECT_FALSE(is_safe_source(blocks, Coord{4, 4, 4}, Coord{7, 7, 7}));
  EXPECT_TRUE(is_safe_source(blocks, Coord{4, 4, 4}, Coord{4, 7, 7}))
      << "degenerate x-range misses the block";
  EXPECT_FALSE(is_safe_source(blocks, Coord{7, 7, 7}, Coord{4, 4, 4}))
      << "safety is symmetric in the pair";
}

TEST(Safety, TouchingTheBoxBoundaryCounts) {
  const std::vector<Box> blocks{Box(Coord{3, 3}, Coord{3, 3})};
  EXPECT_FALSE(is_safe_source(blocks, Coord{0, 0}, Coord{3, 3}))
      << "destination inside a block section is unsafe";
}

TEST(Safety, SafeFractionDecreasesWithMoreBlocks) {
  const MeshTopology m(2, 16);
  Rng rng(0x5AFE);
  std::vector<Coord> candidates;
  m.bounds().for_each([&](const Coord& c) { candidates.push_back(c); });

  std::vector<Box> few{Box(Coord{7, 7}, Coord{8, 8})};
  std::vector<Box> many{Box(Coord{3, 3}, Coord{4, 4}), Box(Coord{7, 7}, Coord{8, 8}),
                        Box(Coord{11, 11}, Coord{12, 12}), Box(Coord{3, 11}, Coord{4, 12}),
                        Box(Coord{11, 3}, Coord{12, 4})};
  Rng r1 = rng.fork(1);
  Rng r2 = rng.fork(1);  // identical sampling for a fair comparison
  const double f_few = safe_pair_fraction(few, candidates, 2000, r1);
  const double f_many = safe_pair_fraction(many, candidates, 2000, r2);
  EXPECT_GT(f_few, f_many);
  EXPECT_GT(f_few, 0.5);
  EXPECT_GT(f_many, 0.0);
}

TEST(Safety, SafeImpliesMinimalBoxClearOnRealFields) {
  const MeshTopology m(3, 8);
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 10; ++trial) {
    Rng t = rng.fork(static_cast<uint64_t>(trial));
    const auto faults = clustered_fault_placement(m, 6, t);
    const StatusField f = stabilized_field(m, faults);
    const auto blocks = block_boxes(f);
    const Coord s{0, 0, 0};
    const Coord d{7, 7, 7};
    const bool safe = is_safe_source(blocks, s, d);
    bool any_member_in_box = false;
    minimal_path_box(s, d).for_each([&](const Coord& c) {
      if (is_block_member(f.at(c))) any_member_in_box = true;
    });
    EXPECT_EQ(safe, !any_member_in_box);
  }
}

}  // namespace
}  // namespace lgfi
