// Property tests for block extraction (P1): stabilized disabled∪faulty
// components fill their bounding boxes, are pairwise well separated, and the
// enabled region stays connected for interior fault placements.

#include <gtest/gtest.h>

#include "src/fault/block_analyzer.h"
#include "src/fault/labeling.h"
#include "src/sim/fault_schedule.h"
#include "src/sim/rng.h"

namespace lgfi {
namespace {

struct RandomFieldCase {
  int dims;
  int radix;
  int faults;
};

class BlockPropertyTest : public ::testing::TestWithParam<RandomFieldCase> {};

TEST_P(BlockPropertyTest, FilledSeparatedAndConnected) {
  const auto param = GetParam();
  const MeshTopology m(param.dims, param.radix);
  Rng rng(0xB10C + static_cast<uint64_t>(param.dims * 1000 + param.faults));

  for (int trial = 0; trial < 8; ++trial) {
    Rng t = rng.fork(static_cast<uint64_t>(trial));
    const auto faults = random_fault_placement(m, param.faults, t);
    const StatusField f = stabilized_field(m, faults);
    const auto blocks = extract_blocks(f);

    // P1a: every component fills its bounding box.
    EXPECT_TRUE(all_blocks_filled(blocks)) << "trial " << trial;
    // P1b: pairwise Chebyshev separation >= 2.
    EXPECT_TRUE(blocks_well_separated(blocks)) << "trial " << trial;
    // Each fault is inside some block; block member counts add up.
    long long members = 0;
    for (const auto& b : blocks) members += b.member_count;
    EXPECT_EQ(members,
              f.count(NodeStatus::kDisabled) + f.count(NodeStatus::kFaulty));
    for (const auto& fault : faults) {
      bool inside = false;
      for (const auto& b : blocks) inside |= b.box.contains(fault);
      EXPECT_TRUE(inside);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomFields, BlockPropertyTest,
    ::testing::Values(RandomFieldCase{2, 12, 6}, RandomFieldCase{2, 12, 14},
                      RandomFieldCase{2, 16, 25}, RandomFieldCase{3, 8, 10},
                      RandomFieldCase{3, 8, 20}, RandomFieldCase{3, 10, 35},
                      RandomFieldCase{4, 6, 12}, RandomFieldCase{4, 6, 25},
                      RandomFieldCase{5, 4, 10}),
    [](const ::testing::TestParamInfo<RandomFieldCase>& info) {
      return "d" + std::to_string(info.param.dims) + "k" + std::to_string(info.param.radix) +
             "f" + std::to_string(info.param.faults);
    });

TEST(BlockAnalyzer, NoFaultsNoBlocks) {
  const MeshTopology m(3, 6);
  const StatusField f = stabilized_field(m, {});
  EXPECT_TRUE(extract_blocks(f).empty());
  EXPECT_TRUE(enabled_region_connected(f));
}

TEST(BlockAnalyzer, TwoSeparateFaultsTwoBlocks) {
  const MeshTopology m(2, 10);
  const StatusField f = stabilized_field(m, {Coord{2, 2}, Coord{7, 7}});
  const auto blocks = extract_blocks(f);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].box, Box::point(Coord{2, 2}));
  EXPECT_EQ(blocks[1].box, Box::point(Coord{7, 7}));
}

TEST(BlockAnalyzer, NearbyFaultsMergeIntoOneBlock) {
  const MeshTopology m(2, 10);
  // Chebyshev distance 1 (diagonal) forces a merge through rule 1.
  const StatusField f = stabilized_field(m, {Coord{3, 3}, Coord{4, 4}, Coord{5, 5}});
  const auto blocks = extract_blocks(f);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].box, Box(Coord{3, 3}, Coord{5, 5}));
}

TEST(BlockAnalyzer, MaxBlockExtentIsEmax) {
  const MeshTopology m(2, 12);
  const auto faults = box_fault_placement(m, Box(Coord{2, 3}, Coord{6, 4}));
  const StatusField f = stabilized_field(m, faults);
  const auto blocks = extract_blocks(f);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(max_block_extent(blocks), 5);
  EXPECT_EQ(max_block_extent(block_boxes(f)), 5);
}

TEST(BlockAnalyzer, InteriorFaultsKeepEnabledRegionConnected) {
  // Section 5: "there is no disconnected area in such a mesh" when faults
  // avoid the outmost surface.
  const MeshTopology m(3, 8);
  Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 12; ++trial) {
    Rng t = rng.fork(static_cast<uint64_t>(trial));
    const auto faults = random_fault_placement(m, 25, t);
    const StatusField f = stabilized_field(m, faults);
    EXPECT_TRUE(enabled_region_connected(f)) << "trial " << trial;
  }
}

TEST(BlockAnalyzer, BlocksSortedDeterministically) {
  const MeshTopology m(2, 12);
  const StatusField f = stabilized_field(m, {Coord{9, 1}, Coord{1, 9}, Coord{5, 5}});
  const auto blocks = extract_blocks(f);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_TRUE(blocks[0].box < blocks[1].box);
  EXPECT_TRUE(blocks[1].box < blocks[2].box);
}

}  // namespace
}  // namespace lgfi
