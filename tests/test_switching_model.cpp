// Tests for the pluggable switching layer (DESIGN.md §10): registry surface,
// byte-identity of the ideal model with the pre-layer pipeline, wormhole
// flit/VC/credit mechanics with invariant checking, the deadlock-avoidance
// escapes, config round-tripping of the switching keys, and the determinism
// contract (threads=1 vs 8 byte-identical under wormhole).

#include <gtest/gtest.h>

#include <sstream>

#include "src/core/experiment_runner.h"
#include "src/core/traffic_workload.h"
#include "src/sim/switching_model.h"
#include "src/sim/wormhole_switching.h"

namespace lgfi {
namespace {

// ---------------------------------------------------------------------------
// Registry and config surface.
// ---------------------------------------------------------------------------

TEST(SwitchingRegistry, KnowsIdealAndWormhole) {
  auto& reg = SwitchingModelRegistry::instance();
  EXPECT_TRUE(reg.contains("ideal"));
  EXPECT_TRUE(reg.contains("wormhole"));
  const auto names = reg.names();
  EXPECT_EQ(names.front(), "ideal") << "names() is sorted";
  EXPECT_THROW((void)reg.make("cut_through", MeshTopology(2, 4), SwitchingOptions{}),
               ConfigError);
}

TEST(SwitchingRegistry, WormholeRejectsOutOfRangeOptions) {
  const MeshTopology mesh(2, 4);
  SwitchingOptions opts;
  opts.num_vcs = 0;
  EXPECT_THROW((void)make_switching_model("wormhole", mesh, opts), ConfigError);
  opts.num_vcs = 2;
  opts.vc_buffer_depth = 0;
  EXPECT_THROW((void)make_switching_model("wormhole", mesh, opts), ConfigError);
  opts.vc_buffer_depth = 4;
  opts.flits_per_packet = 0;
  EXPECT_THROW((void)make_switching_model("wormhole", mesh, opts), ConfigError);
}

TEST(SwitchingConfig, NewKeysRoundTrip) {
  Config cfg = experiment_config();
  cfg.parse_string("switching=wormhole num_vcs=3 vc_buffer_depth=2 flits_per_packet=6");
  Config copy = experiment_config();
  copy.parse_string(cfg.to_string());
  EXPECT_EQ(cfg, copy);
  EXPECT_EQ(copy.get_str("switching"), "wormhole");
  EXPECT_EQ(copy.get_int("num_vcs"), 3);
  EXPECT_EQ(copy.get_int("vc_buffer_depth"), 2);
  EXPECT_EQ(copy.get_int("flits_per_packet"), 6);
}

TEST(SwitchingConfig, UnknownModelAndBadCombinationsRejectedEagerly) {
  Config cfg = experiment_config();
  cfg.set_str("switching", "cut_through");
  EXPECT_THROW(ExperimentRunner{cfg}, ConfigError);

  Config worm = experiment_config();
  worm.parse_string("switching=wormhole arbitration=false");
  EXPECT_THROW(ExperimentRunner{worm}, ConfigError)
      << "wormhole always arbitrates its switch; arbitration=false is a config error";

  Config bad = experiment_config();
  bad.parse_string("switching=wormhole traffic=uniform num_vcs=0 measure_steps=10");
  EXPECT_THROW((void)ExperimentRunner(bad).run(), ConfigError);
}

// ---------------------------------------------------------------------------
// Wormhole mechanics on a hand-driven simulation.
// ---------------------------------------------------------------------------

DynamicSimulationOptions wormhole_options(int flits, int vcs = 2, int depth = 4) {
  DynamicSimulationOptions opts;
  opts.link_arbitration = true;
  opts.switching = "wormhole";
  opts.flits_per_packet = flits;
  opts.num_vcs = vcs;
  opts.vc_buffer_depth = depth;
  return opts;
}

TEST(WormholeSwitching, SingleWormLatencyIsSetupPlusStreaming) {
  // One packet, empty 1-D mesh: setup takes D steps (one hop per step), then
  // F-1 data flits pipeline along the D-hop path behind a per-step ejector.
  const MeshTopology mesh(1, 10);
  const int flits = 4;
  DynamicSimulation sim(mesh, FaultSchedule{}, wormhole_options(flits));
  const int id = sim.launch_message(Coord{0}, Coord{6});
  sim.run(4000);

  const MessageProgress& msg = sim.message(id);
  ASSERT_TRUE(msg.delivered);
  EXPECT_EQ(msg.head_arrival_step - msg.start_step, 6) << "setup is one hop per step";
  // The lead data flit re-traverses the 6-hop path one hop per step and the
  // remaining flits pipeline one step apart, so the tail (flit F, the head
  // counting as flit 1) ejects hops + F - 1 steps after head arrival.
  const long long serialization = msg.end_step - msg.head_arrival_step;
  EXPECT_EQ(serialization, 6 + flits - 1) << "lead flit re-traverses, tail pipelines behind";
  EXPECT_EQ(msg.stall_steps, 0);

  const auto& ws = dynamic_cast<const WormholeSwitching&>(sim.switching());
  EXPECT_EQ(ws.reserved_vc_count(), 0) << "delivery tears the whole circuit down";
  EXPECT_EQ(ws.worm(id).flits_ejected, flits);
  EXPECT_NO_THROW(ws.validate());
}

TEST(WormholeSwitching, SingleFlitPacketMatchesIdealTiming) {
  // flits_per_packet=1: the head is the whole packet, so wormhole timing
  // degenerates to the ideal arbitrated model on an empty mesh.
  const MeshTopology mesh(2, 8);
  DynamicSimulation worm(mesh, FaultSchedule{}, wormhole_options(1));
  DynamicSimulationOptions ideal;
  ideal.link_arbitration = true;
  DynamicSimulation ref(mesh, FaultSchedule{}, ideal);

  const int a = worm.launch_message(Coord{0, 0}, Coord{5, 3});
  const int b = ref.launch_message(Coord{0, 0}, Coord{5, 3});
  worm.run(1000);
  ref.run(1000);
  ASSERT_TRUE(worm.message(a).delivered);
  EXPECT_EQ(worm.message(a).end_step, ref.message(b).end_step);
  EXPECT_EQ(worm.message(a).head_arrival_step, worm.message(a).end_step);
}

TEST(WormholeSwitching, ProbeHoldsAtMostTheWormWindow) {
  // A probe's setup reservation is a sliding window of its last
  // flits_per_packet hops — a wandering walk must not hog the network.
  const MeshTopology mesh(1, 12);
  const int flits = 3;
  DynamicSimulation sim(mesh, FaultSchedule{}, wormhole_options(flits));
  const int id = sim.launch_message(Coord{0}, Coord{11});
  const auto& ws = dynamic_cast<const WormholeSwitching&>(sim.switching());
  for (int s = 0; s < 8; ++s) {
    sim.step();
    ws.validate();
    const auto v = ws.worm(id);
    if (!v.streaming && !v.done)
      EXPECT_LE(v.held_vcs, flits) << "setup window exceeded at step " << s;
  }
}

TEST(WormholeSwitching, CreditBackpressureNeverOverflowsSingleFlitBuffers) {
  // vc_buffer_depth=1 is the tightest credit regime: every flit needs its
  // downstream buffer to drain first.  Drive a congested mesh by hand —
  // every node fires at a random far destination over several waves — and
  // validate() the occupancy invariants (underflow/overflow) every step.
  const MeshTopology mesh(2, 6);
  DynamicSimulation sim(mesh, FaultSchedule{}, wormhole_options(5, 1, 1));
  const auto& ws = dynamic_cast<const WormholeSwitching&>(sim.switching());
  Rng rng(77);
  const auto nodes = static_cast<NodeId>(mesh.node_count());
  for (int wave = 0; wave < 3; ++wave) {
    for (NodeId n = 0; n < nodes; ++n) {
      const Coord src = mesh.coord_of(n);
      const Coord dst = mesh.coord_of(
          static_cast<NodeId>(rng.uniform_int(0, static_cast<int>(mesh.node_count()) - 1)));
      if (dst == src) continue;
      sim.launch_message(src, dst);
    }
    for (int s = 0; s < 15; ++s) {
      sim.step();
      ASSERT_NO_THROW(ws.validate()) << "wave " << wave << " step " << s;
    }
  }
  long long guard = 4000;
  while (!sim.all_messages_done() && guard-- > 0) {
    sim.step();
    ASSERT_NO_THROW(ws.validate());
  }
  EXPECT_TRUE(sim.all_messages_done());
  EXPECT_EQ(ws.reserved_vc_count(), 0);
  // Deep congestion at depth 1 must show credit stalls on the single VC.
  double credit0 = -1.0;
  for (const auto& [name, value] : ws.metrics())
    if (name == "credit_stalls_vc0") credit0 = value;
  EXPECT_GT(credit0, 0.0);
}

TEST(WormholeSwitching, StepContextCountersObserveTheAdvancePhase) {
  // Phase-driving callers read the per-step counters instead of rescanning
  // messages; pin them across a whole single-worm run.
  const MeshTopology mesh(1, 8);
  const int flits = 3;
  DynamicSimulation sim(mesh, FaultSchedule{}, wormhole_options(flits));
  const int id = sim.launch_message(Coord{0}, Coord{4});
  int moved = 0, delivered = 0, finished = 0, flit_moves = 0;
  for (int s = 0; s < 40 && !sim.message(id).done(); ++s) {
    StepContext ctx = sim.begin_step();
    sim.apply_fault_events(ctx);
    sim.run_information_rounds(ctx);
    sim.arbitrate_and_advance(ctx);
    sim.end_step(ctx);
    moved += ctx.moved;
    delivered += ctx.delivered;
    finished += ctx.finished;
    flit_moves += ctx.flits_moved;
  }
  EXPECT_TRUE(sim.message(id).done());
  EXPECT_EQ(moved, 4) << "the probe took D = 4 hops";
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(finished, 1);
  // F - 1 data flits each cross all 4 hops of the circuit.
  EXPECT_EQ(flit_moves, 4 * (flits - 1));
}

TEST(WormholeSwitching, MidStreamFaultTearsTheCircuitDown) {
  // The probe delivers the head, then a node on the established circuit
  // dies while the body is still streaming: the worm must be torn down
  // (reported unreachable), not glide through the dead node.
  const MeshTopology mesh(1, 12);
  const int flits = 8;
  FaultSchedule schedule;
  schedule.add_fail(12, Coord{5});  // head (launched at 0, D=9) arrives at 9
  DynamicSimulation sim(mesh, schedule, wormhole_options(flits));
  const int id = sim.launch_message(Coord{0}, Coord{9});
  sim.run(4000);

  const MessageProgress& msg = sim.message(id);
  EXPECT_GE(msg.head_arrival_step, 0) << "the probe must have delivered the head";
  EXPECT_FALSE(msg.delivered) << "the tail cannot cross a node that died mid-stream";
  EXPECT_TRUE(msg.unreachable);
  const auto& ws = dynamic_cast<const WormholeSwitching&>(sim.switching());
  EXPECT_EQ(ws.total_fault_drops(), 1);
  EXPECT_EQ(ws.reserved_vc_count(), 0) << "teardown releases every VC";
  EXPECT_NO_THROW(ws.validate());
}

TEST(WormholeSwitching, DrainEmptiesEveryReservation) {
  const MeshTopology mesh(2, 8);
  DynamicSimulation sim(mesh, FaultSchedule{}, wormhole_options(4, 2, 2));
  Rng rng(5);
  TrafficWorkloadOptions topts;
  topts.injection_rate = 0.05;
  topts.warmup_steps = 10;
  topts.measure_steps = 80;
  auto pattern = make_traffic_pattern("uniform", mesh, Config{}, rng);
  TrafficWorkload workload(sim, *pattern, topts, rng);
  const TrafficResult r = workload.run();
  EXPECT_EQ(r.measured_unfinished, 0);
  EXPECT_TRUE(sim.all_messages_done());
  const auto& ws = dynamic_cast<const WormholeSwitching&>(sim.switching());
  EXPECT_EQ(ws.reserved_vc_count(), 0) << "a drained network holds no VCs";
  EXPECT_NO_THROW(ws.validate());
}

TEST(WormholeSwitching, HeadTailAccountingDecomposesLatency) {
  const MeshTopology mesh(2, 8);
  DynamicSimulation sim(mesh, FaultSchedule{}, wormhole_options(4));
  Rng rng(31);
  TrafficWorkloadOptions topts;
  topts.injection_rate = 0.03;
  topts.warmup_steps = 10;
  topts.measure_steps = 100;
  auto pattern = make_traffic_pattern("uniform", mesh, Config{}, rng);
  TrafficWorkload workload(sim, *pattern, topts, rng);
  const TrafficResult r = workload.run();
  ASSERT_GT(r.measured_delivered, 0);
  EXPECT_EQ(r.head_latency.count(), r.latency.count());
  EXPECT_EQ(r.serialization.count(), r.latency.count());
  // Sample-by-sample latency = head + serialization, so the sums agree.
  long long latency_sum = 0, parts_sum = 0;
  for (const auto& [v, n] : r.latency.buckets()) latency_sum += v * n;
  for (const auto& [v, n] : r.head_latency.buckets()) parts_sum += v * n;
  for (const auto& [v, n] : r.serialization.buckets()) parts_sum += v * n;
  EXPECT_EQ(latency_sum, parts_sum);
  // Streaming needs at least one step per data flit: tail >= head + flits.
  EXPECT_GE(r.serialization.min(), 4);
}

TEST(WormholeSwitching, VcExhaustionShowsUpInTheStallCounters) {
  // A single VC per channel under a 90% hotspot pattern: nearly every worm
  // funnels into the center, so VC allocation must fail visibly.
  const MeshTopology mesh(2, 6);
  DynamicSimulation sim(mesh, FaultSchedule{}, wormhole_options(6, 1, 1));
  Rng rng(13);
  TrafficWorkloadOptions topts;
  topts.injection_rate = 0.5;
  topts.warmup_steps = 0;
  topts.measure_steps = 150;
  topts.drain_steps = 1500;
  Config pcfg;
  pcfg.define_double("hotspot_frac", 0.9);
  auto pattern = make_traffic_pattern("hotspot", mesh, pcfg, rng);
  TrafficWorkload workload(sim, *pattern, topts, rng);
  (void)workload.run();
  const auto& ws = dynamic_cast<const WormholeSwitching&>(sim.switching());
  EXPECT_GT(ws.total_vc_alloc_stalls(), 0) << "1 VC at rate 0.5 must exhaust";
  EXPECT_NO_THROW(ws.validate());
}

// ---------------------------------------------------------------------------
// Determinism: the VC/switch allocator is a pure function of simulator
// state, so replicated wormhole sweeps are byte-identical for any thread
// count (DESIGN.md §2).
// ---------------------------------------------------------------------------

TEST(WormholeRunner, ReportByteIdenticalAcrossThreadCounts) {
  const auto report_with_threads = [](int threads) {
    Config cfg = experiment_config();
    cfg.parse_string(
        "traffic=uniform switching=wormhole flits_per_packet=4 num_vcs=2 "
        "vc_buffer_depth=2 injection_rate=0.04 warmup_steps=20 measure_steps=80 "
        "mesh_dims=2 radix=8 faults=4 fault_model=clustered routes=2 "
        "replications=6 seed=29");
    cfg.set_int("threads", threads);
    const auto res = ExperimentRunner(cfg).run();
    std::ostringstream os;
    JsonReporter().report(res, os);
    const std::string s = os.str();
    return s.substr(s.find("\"metrics\""));
  };
  const std::string serial = report_with_threads(1);
  EXPECT_EQ(serial, report_with_threads(8));
  EXPECT_EQ(serial, report_with_threads(3));
  EXPECT_NE(serial.find("\"head_latency\""), std::string::npos);
  EXPECT_NE(serial.find("\"serialization_latency\""), std::string::npos);
  EXPECT_NE(serial.find("\"sw_flit_moves\""), std::string::npos);
}

TEST(WormholeRunner, IdealModelEmitsNoFlitMetrics) {
  // The default switching model must keep the historical metric set — the
  // byte-identity guarantee for pre-layer outputs.
  Config cfg = experiment_config();
  cfg.parse_string(
      "traffic=uniform injection_rate=0.05 warmup_steps=10 measure_steps=50 "
      "mesh_dims=2 radix=6 replications=2 seed=3");
  const auto res = ExperimentRunner(cfg).run();
  EXPECT_FALSE(res.metrics.has("head_latency"));
  EXPECT_FALSE(res.metrics.has("serialization_latency"));
  EXPECT_FALSE(res.metrics.has("sw_flit_moves"));
}

TEST(WormholeRunner, ProbeMessagesCarrySwitchingLatency) {
  // The historical probe surface works under wormhole too; head arrival is
  // recorded for probes exactly as for background traffic.
  Config cfg = experiment_config();
  cfg.parse_string(
      "traffic=uniform switching=wormhole injection_rate=0 routes=3 "
      "warmup_steps=5 measure_steps=60 mesh_dims=2 radix=8 faults=0 "
      "replications=2 seed=8");
  const auto res = ExperimentRunner(cfg).run();
  EXPECT_EQ(res.metrics.stats("delivered").count(), 6);
  EXPECT_DOUBLE_EQ(res.metrics.mean("delivered"), 1.0);
}

}  // namespace
}  // namespace lgfi
