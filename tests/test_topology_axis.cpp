// Tests for the pluggable topology axis: torus wraparound semantics, the
// concentrated mesh, per-topology minimal-hop properties (checked against a
// reference BFS over the channel graph), the topology registry's config
// surface, and byte-identity of topology=mesh with the seed behavior.

#include <gtest/gtest.h>

#include <deque>
#include <sstream>

#include "src/core/experiment_runner.h"
#include "src/core/topology_registry.h"
#include "src/mesh/topology.h"

namespace lgfi {
namespace {

/// Reference fault-free distance: BFS over the channel graph.
int bfs_hops(const Topology& t, const Coord& from, const Coord& to) {
  std::vector<int> dist(static_cast<size_t>(t.node_count()), -1);
  std::deque<NodeId> queue{t.index_of(from)};
  dist[static_cast<size_t>(t.index_of(from))] = 0;
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    t.for_each_neighbor(t.coord_of(cur), [&](Direction, const Coord& nb) {
      const NodeId id = t.index_of(nb);
      if (dist[static_cast<size_t>(id)] >= 0) return;
      dist[static_cast<size_t>(id)] = dist[static_cast<size_t>(cur)] + 1;
      queue.push_back(id);
    });
  }
  return dist[static_cast<size_t>(t.index_of(to))];
}

void expect_min_hops_matches_bfs(const Topology& t) {
  for (NodeId a = 0; a < t.node_count(); ++a)
    for (NodeId b = 0; b < t.node_count(); ++b)
      ASSERT_EQ(t.min_hops(t.coord_of(a), t.coord_of(b)), bfs_hops(t, t.coord_of(a), t.coord_of(b)))
          << t.name() << " " << t.coord_of(a).to_string() << " -> " << t.coord_of(b).to_string();
}

TEST(TorusTopology, WraparoundNeighborAndIndexRoundTrip) {
  const TorusTopology t(2, 5);
  // Coordinate round trips hold exactly as on the mesh.
  for (NodeId id = 0; id < t.node_count(); ++id) EXPECT_EQ(t.index_of(t.coord_of(id)), id);
  // The -x neighbor of column 0 wraps to column 4 (and back).
  const Coord edge{0, 2};
  const Direction minus_x(0, false);
  EXPECT_TRUE(t.has_neighbor(edge, minus_x));
  EXPECT_EQ(t.step(edge, minus_x), (Coord{4, 2}));
  EXPECT_EQ(t.neighbor(t.index_of(edge), minus_x), t.index_of(Coord{4, 2}));
  EXPECT_EQ(t.step(Coord{4, 2}, Direction(0, true)), edge);
  // Every node of a torus has full degree 2n.
  EXPECT_EQ(t.neighbors(Coord{0, 0}).size(), 4u);
  // ... but the coordinate grid still has corners.
  EXPECT_TRUE(t.has_grid_neighbor(Coord{0, 0}, Direction(0, true)));
  EXPECT_FALSE(t.has_grid_neighbor(Coord{0, 0}, minus_x));
}

TEST(TorusTopology, MinHopsMatchesChannelGraphBfs) {
  expect_min_hops_matches_bfs(TorusTopology(2, 5));
  expect_min_hops_matches_bfs(TorusTopology(2, 4));  // even radix: wrap ties
  expect_min_hops_matches_bfs(TorusTopology(std::vector<int>{6, 3}));
  expect_min_hops_matches_bfs(TorusTopology(std::vector<int>{2, 7}));  // extent-2 double edge
}

TEST(MeshTopology, MinHopsMatchesChannelGraphBfs) {
  expect_min_hops_matches_bfs(MeshTopology(2, 5));
  expect_min_hops_matches_bfs(MeshTopology(std::vector<int>{8, 3}));
  expect_min_hops_matches_bfs(CMeshTopology(std::vector<int>{4, 4}, 4));
}

TEST(TorusTopology, PreferredDirectionsReduceMinHops) {
  const TorusTopology t(2, 6);
  for (NodeId a = 0; a < t.node_count(); ++a) {
    for (NodeId b = 0; b < t.node_count(); ++b) {
      const Coord u = t.coord_of(a), d = t.coord_of(b);
      for (const Direction dir : t.preferred_directions(u, d))
        EXPECT_EQ(t.min_hops(t.step(u, dir), d), t.min_hops(u, d) - 1)
            << u.to_string() << " -> " << d.to_string() << " via " << dir.to_string();
    }
  }
}

TEST(TorusTopology, WraparoundTieYieldsBothDirections) {
  const TorusTopology t(2, 6);
  // From x=0 to x=3, going +x and -x both take 3 hops.
  const auto dirs = t.preferred_directions(Coord{0, 2}, Coord{3, 2});
  ASSERT_EQ(dirs.size(), 2u);
  EXPECT_EQ(dirs[0], Direction(0, false));
  EXPECT_EQ(dirs[1], Direction(0, true));
  // axis_step_sign resolves the same tie deterministically to +1.
  EXPECT_EQ(t.axis_step_sign(0, 0, 3), 1);
}

TEST(TorusTopology, NoOuterSurfaceAndDiameterHalves) {
  const TorusTopology t(3, 8);
  for (NodeId id = 0; id < t.node_count(); ++id)
    ASSERT_FALSE(t.on_outer_surface(t.coord_of(id)));
  EXPECT_EQ(t.diameter(), 4 + 4 + 4);
  EXPECT_EQ(TorusTopology(std::vector<int>{5, 3}).diameter(), 2 + 1);
}

TEST(MeshTopology, MixedRadixDiameterIsSumOfExtentsMinusOne) {
  // Regression for the header's old "(k-1)*n" claim: mixed radices must
  // contribute per-dimension, not radix-of-dim-0 times n.
  EXPECT_EQ(MeshTopology(std::vector<int>{16, 4, 4}).diameter(), 15 + 3 + 3);
  EXPECT_EQ(MeshTopology(std::vector<int>{2, 9}).diameter(), 1 + 8);
  EXPECT_EQ(MeshTopology(3, 8).diameter(), 21);  // equal radix: (k-1)*n still
}

TEST(CMeshTopology, ConcentrationScalesTerminalsNotRouters) {
  const CMeshTopology c(2, 4, 4);
  EXPECT_EQ(c.node_count(), 16);
  EXPECT_EQ(c.concentration(), 4);
  EXPECT_EQ(c.terminal_count(), 64);
  // The router grid is a plain mesh: same channels, same surface.
  EXPECT_FALSE(c.wraps(0));
  EXPECT_TRUE(c.on_outer_surface(Coord{0, 2}));
  // mesh/torus report one terminal per router.
  EXPECT_EQ(MeshTopology(2, 4).terminal_count(), 16);
  EXPECT_EQ(MeshTopology(2, 4).concentration(), 1);
}

// ---------------------------------------------------------------------------
// The registry / config surface.
// ---------------------------------------------------------------------------

Config config_with(const std::string& overrides) {
  Config cfg = experiment_config();
  cfg.parse_string(overrides);
  return cfg;
}

TEST(TopologyRegistry, BuildsEachRegisteredTopology) {
  EXPECT_EQ(make_topology(config_with("topology=mesh radix=4"))->name(), "mesh");
  EXPECT_EQ(make_topology(config_with("topology=torus radix=4"))->name(), "torus");
  const auto cm = make_topology(config_with("topology=cmesh radix=4 concentration=2"));
  EXPECT_EQ(cm->name(), "cmesh");
  EXPECT_EQ(cm->concentration(), 2);
}

TEST(TopologyRegistry, UnknownNameGetsDidYouMean) {
  try {
    (void)make_topology(config_with("topology=tors"));
    FAIL() << "must throw on unknown topology";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("torus"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean"), std::string::npos) << msg;
  }
}

TEST(TopologyRegistry, ExtentsSpecOverridesMeshDimsAndRadix) {
  const auto t = make_topology(config_with("extents=16,4,4"));
  EXPECT_EQ(t->dims(), 3);
  EXPECT_EQ(t->extent(0), 16);
  EXPECT_EQ(t->node_count(), 256);
  // Malformed specs are rejected naming the bad token, never half-parsed.
  EXPECT_THROW((void)make_topology(config_with("extents=16x,4")), ConfigError);
  EXPECT_THROW((void)make_topology(config_with("extents=16,4,")), ConfigError);
  EXPECT_THROW((void)make_topology(config_with("extents=0,4")), ConfigError);
}

TEST(TopologyRegistry, ConcentrationRequiresCMesh) {
  EXPECT_THROW((void)make_topology(config_with("topology=mesh concentration=4")), ConfigError);
  EXPECT_THROW((void)make_topology(config_with("topology=torus concentration=4")), ConfigError);
}

TEST(TopologyEagerValidation, FaultBoxOutsideBoundsRejectedUpFront) {
  EXPECT_THROW(
      ExperimentRunner(config_with("radix=6 fault_model=box fault_box=2:9,2:3")),
      ConfigError);
  EXPECT_THROW(
      ExperimentRunner(config_with("radix=6 fault_model=box fault_box=1:2,1:2,1:2")),
      ConfigError);
  EXPECT_NO_THROW(
      ExperimentRunner(config_with("radix=6 fault_model=box fault_box=2:4,2:3")));
}

TEST(TopologyEagerValidation, TransposeNeedsEqualExtents) {
  EXPECT_THROW(ExperimentRunner(config_with("traffic=transpose extents=8,4")), ConfigError);
  EXPECT_NO_THROW(ExperimentRunner(config_with("traffic=transpose extents=4,4")));
}

// ---------------------------------------------------------------------------
// Byte-identity: topology=mesh is the seed behavior, thread-count invariant.
// ---------------------------------------------------------------------------

std::string run_metrics(const std::string& overrides) {
  const ExperimentResult r = ExperimentRunner(config_with(overrides)).run();
  std::ostringstream os;
  os.precision(17);
  for (const auto& name : r.metrics.names()) {
    const auto& s = r.metrics.stats(name);
    os << name << ":" << s.count() << "," << s.mean() << "," << s.stddev() << "," << s.min()
       << "," << s.max() << ";";
  }
  return os.str();
}

TEST(TopologyByteIdentity, ExplicitMeshMatchesDefaultAcrossThreadCounts) {
  // The E14-style traffic experiment, small: the default config (which
  // never names a topology) and topology=mesh must agree metric-for-metric
  // bit-for-bit, under both serial and parallel replication fan-out.
  const std::string base =
      "traffic=uniform radix=6 faults=4 warmup_steps=10 measure_steps=50 replications=4 "
      "routes=0";
  const std::string seed = run_metrics(base + " threads=1");
  EXPECT_FALSE(seed.empty());
  EXPECT_EQ(run_metrics(base + " topology=mesh threads=1"), seed);
  EXPECT_EQ(run_metrics(base + " topology=mesh threads=8"), seed);
}

TEST(TopologyByteIdentity, WormholeExplicitMeshMatchesDefault) {
  // The E15-style wormhole variant of the same identity.
  const std::string base =
      "traffic=uniform switching=wormhole radix=6 faults=4 warmup_steps=10 measure_steps=50 "
      "replications=2 routes=0";
  const std::string seed = run_metrics(base + " threads=1");
  EXPECT_EQ(run_metrics(base + " topology=mesh threads=8"), seed);
}

// ---------------------------------------------------------------------------
// End-to-end: routing on the new topologies self-checks against min_hops.
// ---------------------------------------------------------------------------

TEST(TopologyRouting, TorusAndCMeshDeliverWithNonNegativeDetours) {
  for (const std::string topo :
       {std::string("topology=torus"), std::string("topology=cmesh concentration=2")}) {
    const ExperimentResult r = ExperimentRunner(config_with(
                                   topo + " radix=6 faults=5 routes=40 replications=2"))
                                   .run();
    EXPECT_DOUBLE_EQ(r.metrics.mean("delivered"), 1.0) << topo;
    // detours = total_steps - min_hops(s, d): the per-topology minimal-hop
    // oracle lower-bounds every delivered route.
    EXPECT_GE(r.metrics.stats("detours").min(), 0.0) << topo;
  }
}

}  // namespace
}  // namespace lgfi
