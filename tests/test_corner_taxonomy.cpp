// Tests for the envelope taxonomy (Definitions 2 and 3), including the
// paper's Figure 2 example and the equivalence of the geometric and
// recursive-textual classifications.

#include <gtest/gtest.h>

#include "src/fault/corner_taxonomy.h"
#include "src/fault/labeling.h"

namespace lgfi {
namespace {

const Box kFig1Block(Coord{3, 5, 3}, Coord{5, 6, 4});  // [3:5, 5:6, 3:4]

TEST(CornerTaxonomy, Figure2ThreeLevelCorner) {
  // "Figure 2 shows the definition of a 3-level corner of block
  //  [3:5, 5:6, 3:4]: (6,4,5). It has three 3-level edge neighbors:
  //  (5,4,5), (6,5,5) and (6,4,4)."
  EXPECT_EQ(corner_level(Coord{6, 4, 5}, kFig1Block), 3);
  EXPECT_EQ(corner_level(Coord{5, 4, 5}, kFig1Block), 2);  // 3-level edge node
  EXPECT_EQ(corner_level(Coord{6, 5, 5}, kFig1Block), 2);
  EXPECT_EQ(corner_level(Coord{6, 4, 4}, kFig1Block), 2);
  // "Each 3-level edge node is a 2-level corner and has two neighbors
  //  adjacent to the block. For example, (5,4,5) has neighbors (5,5,5) and
  //  (5,4,4) adjacent to the block."
  EXPECT_EQ(corner_level(Coord{5, 5, 5}, kFig1Block), 1);
  EXPECT_EQ(corner_level(Coord{5, 4, 4}, kFig1Block), 1);
}

TEST(CornerTaxonomy, ClassifyInsideOutsideEnvelope) {
  const auto inside = classify_against_block(Coord{4, 5, 3}, kFig1Block);
  EXPECT_TRUE(inside.inside);
  EXPECT_FALSE(inside.on_envelope);

  const auto far = classify_against_block(Coord{0, 0, 0}, kFig1Block);
  EXPECT_FALSE(far.inside);
  EXPECT_FALSE(far.on_envelope);

  const auto face = classify_against_block(Coord{2, 5, 3}, kFig1Block);
  EXPECT_TRUE(face.on_envelope);
  EXPECT_EQ(face.out_dims, 1);
  EXPECT_EQ(face.out_dim_list[0], 0);
  EXPECT_FALSE(face.out_side_positive[0]);
}

TEST(CornerTaxonomy, CornerCountIs2PowN) {
  const MeshTopology m(3, 10);
  EXPECT_EQ(block_corners(m, kFig1Block).size(), 8u);

  const MeshTopology m4(4, 8);
  const Box b(Coord{2, 2, 2, 2}, Coord{3, 4, 3, 2});
  EXPECT_EQ(block_corners(m4, b).size(), 16u);
}

TEST(CornerTaxonomy, EnvelopeDecomposesByOutDims) {
  // In 3-D: faces = 2(ab+bc+ca), edges = 4(a+b+c), corners = 8 for a block
  // of extents a x b x c.
  const MeshTopology m(3, 12);
  const Box b(Coord{4, 4, 4}, Coord{6, 5, 7});  // extents 3, 2, 4
  const auto faces = envelope_positions(m, b, 1);
  const auto edges = envelope_positions(m, b, 2);
  const auto corners = envelope_positions(m, b, 3);
  EXPECT_EQ(faces.size(), 2u * (3 * 2 + 2 * 4 + 3 * 4));
  EXPECT_EQ(edges.size(), 4u * (3 + 2 + 4));
  EXPECT_EQ(corners.size(), 8u);
  EXPECT_EQ(envelope_positions(m, b).size(), faces.size() + edges.size() + corners.size());
}

TEST(CornerTaxonomy, EnvelopeClippedAtMeshSurface) {
  const MeshTopology m(2, 8);
  const Box b(Coord{1, 1}, Coord{2, 2});  // envelope touches x=0 / y=0
  const auto corners = block_corners(m, b);
  EXPECT_EQ(corners.size(), 4u);  // (0,0) still in bounds
  const Box edge_block(Coord{0, 3}, Coord{1, 4});  // interior rule violated on purpose
  EXPECT_EQ(block_corners(m, edge_block).size(), 2u) << "corners at x=-1 are clipped";
}

TEST(CornerTaxonomy, SurfacePositionsMatchDefinition3) {
  const MeshTopology m(3, 10);
  // S1/S4 pair: dim 1, negative/positive.  "Surfaces S1 and S4 are parallel
  // to plane Y = 0 with S1 on the south side of S4."
  const auto s1 = surface_positions(m, kFig1Block, Surface{1, false});
  const auto s4 = surface_positions(m, kFig1Block, Surface{1, true});
  EXPECT_EQ(s1.size(), 3u * 2u);  // x extent * z extent
  EXPECT_EQ(s4.size(), 3u * 2u);
  for (const auto& c : s1) EXPECT_EQ(c[1], 4);  // lo_y - 1
  for (const auto& c : s4) EXPECT_EQ(c[1], 7);  // hi_y + 1

  EXPECT_EQ((Surface{1, false}.paper_index(3)), 1);
  EXPECT_EQ((Surface{1, true}.paper_index(3)), 4);
  EXPECT_EQ((Surface{1, false}.opposite()), (Surface{1, true}));
}

TEST(CornerTaxonomy, SurfaceEdgesExcludeCorners) {
  // "the boundary for S4 starts from the edges of S1 (except for the
  // corner)" — edge positions have exactly one extra out-dimension.
  const MeshTopology m(3, 10);
  const auto edges = surface_edge_positions(m, kFig1Block, Surface{1, false});
  // Perimeter of a 3 x 2 face: 2*(3+2) ring positions minus 4 corners... the
  // ring of out-by-one positions around a 3x2 face has 2*3 + 2*2 = 10 nodes.
  EXPECT_EQ(edges.size(), 10u);
  for (const auto& c : edges) {
    EXPECT_EQ(c[1], 4);
    EXPECT_EQ(corner_level(c, kFig1Block), 2);
  }
}

TEST(CornerTaxonomy, Definition2MatchesGeometry) {
  // The recursive textual definition and the out-by-m geometric rule agree
  // on a stabilized field.
  const MeshTopology m(3, 10);
  const StatusField f = stabilized_field(
      m, {Coord{3, 5, 4}, Coord{4, 5, 4}, Coord{5, 5, 3}, Coord{3, 6, 3}});
  const auto levels = definition2_levels(f, kFig1Block);
  for (NodeId id = 0; id < f.node_count(); ++id) {
    const Coord c = m.coord_of(id);
    const int geometric = f.at(id) == NodeStatus::kEnabled ? corner_level(c, kFig1Block) : 0;
    EXPECT_EQ(levels[static_cast<size_t>(id)], geometric) << "at " << c.to_string();
  }
}

TEST(CornerTaxonomy, Definition2MatchesGeometryIn4D) {
  const MeshTopology m(4, 6);
  std::vector<Coord> faults;
  Box block(Coord{2, 2, 2, 2}, Coord{3, 3, 2, 3});
  block.for_each([&](const Coord& c) { faults.push_back(c); });
  const StatusField f = stabilized_field(m, faults);
  const auto levels = definition2_levels(f, block);
  long long corners4 = 0;
  for (NodeId id = 0; id < f.node_count(); ++id) {
    const Coord c = m.coord_of(id);
    const int geometric = f.at(id) == NodeStatus::kEnabled ? corner_level(c, block) : 0;
    EXPECT_EQ(levels[static_cast<size_t>(id)], geometric) << "at " << c.to_string();
    if (geometric == 4) ++corners4;
  }
  EXPECT_EQ(corners4, 16);
}

}  // namespace
}  // namespace lgfi
