// Focused tests for the n-level identification process mechanics: high
// dimensions, degenerate (extent-1) blocks, TTL-bounded instability
// handling, retry behaviour, and message-complexity scaling.

#include <gtest/gtest.h>

#include "src/fault/block_analyzer.h"
#include "src/fault/boundary_model.h"
#include "src/fault/corner_taxonomy.h"
#include "src/fault/distributed_model.h"
#include "src/fault/labeling.h"
#include "src/sim/fault_schedule.h"

namespace lgfi {
namespace {

/// Stabilizes a box-fault field and asserts every envelope node of the block
/// holds exactly the identified box.
void expect_identifies(const Topology& mesh, const Box& block) {
  DistributedFaultModel model(mesh);
  for (const auto& c : box_fault_placement(mesh, block)) model.inject_fault(c);
  const auto rounds = model.stabilize(50000);
  ASSERT_GT(rounds.total, 0);
  for (const auto& c : envelope_positions(mesh, block)) {
    if (model.field().at(c) != NodeStatus::kEnabled) continue;
    EXPECT_TRUE(model.info().holds(mesh.index_of(c), block))
        << "envelope node " << c.to_string() << " uninformed for " << block.to_string();
  }
}

TEST(Identification, FiveDimensionalBlock) {
  expect_identifies(MeshTopology(5, 5), Box(Coord{2, 2, 2, 2, 2}, Coord{3, 3, 2, 2, 3}));
}

TEST(Identification, DegenerateExtentOneBlocks) {
  // Every combination of extent-1 and extent-2 edges in 3-D exercises the
  // edge-walk and ring-walk end detection on shortest possible edges.
  for (int ex = 1; ex <= 2; ++ex)
    for (int ey = 1; ey <= 2; ++ey)
      for (int ez = 1; ez <= 2; ++ez) {
        SCOPED_TRACE(std::to_string(ex) + "x" + std::to_string(ey) + "x" + std::to_string(ez));
        expect_identifies(MeshTopology(3, 8),
                          Box(Coord{3, 3, 3}, Coord{2 + ex, 2 + ey, 2 + ez}));
      }
}

TEST(Identification, ElongatedBlock) {
  expect_identifies(MeshTopology(3, 12), Box(Coord{2, 5, 5}, Coord{9, 6, 5}));
}

TEST(Identification, BlockTouchingMeshSurfaceEnvelope) {
  // Faults at coordinate 1: the envelope touches the outmost surface
  // (coordinate 0), clipping some corners; identification from the
  // remaining corners must still succeed.
  expect_identifies(MeshTopology(3, 8), Box(Coord{1, 1, 1}, Coord{2, 2, 2}));
}

TEST(Identification, MessageComplexityScalesWithSurface) {
  // Identification + distribution messages should grow with the envelope
  // surface, not the mesh volume.
  long long msgs_small = 0, msgs_large = 0;
  {
    const MeshTopology mesh(3, 12);
    DistributedFaultModel model(mesh);
    for (const auto& c : box_fault_placement(mesh, Box(Coord{5, 5, 5}, Coord{6, 6, 6})))
      model.inject_fault(c);
    model.stabilize(50000);
    msgs_small = model.messages_sent();
  }
  {
    const MeshTopology mesh(3, 12);
    DistributedFaultModel model(mesh);
    for (const auto& c : box_fault_placement(mesh, Box(Coord{3, 3, 3}, Coord{8, 8, 8})))
      model.inject_fault(c);
    model.stabilize(50000);
    msgs_large = model.messages_sent();
  }
  EXPECT_GT(msgs_large, msgs_small);
  EXPECT_LT(msgs_large, 40 * msgs_small) << "scaling should be polynomial in the edge";
}

TEST(Identification, AnchorOfHelper) {
  const Coord corner{6, 4, 5};
  EXPECT_EQ(DistributedFaultModel::anchor_of(corner, {0, 1, 2}, {1, -1, 1}),
            (Coord{5, 5, 4}));
  EXPECT_EQ(DistributedFaultModel::anchor_of(Coord{2, 4}, {0}, {-1}), (Coord{3, 4}));
}

TEST(Identification, RetryAfterTransientDiscard) {
  // Inject faults one at a time WITHOUT stabilizing in between: early
  // processes launch against half-built blocks and get discarded; the retry
  // logic must still converge to the final single block.
  const MeshTopology mesh(2, 14);
  DistributedFaultModel model(mesh);
  const std::vector<Coord> chain{Coord{5, 5}, Coord{6, 6}, Coord{7, 7}, Coord{5, 7},
                                 Coord{7, 5}};
  for (const auto& c : chain) {
    model.inject_fault(c);
    model.run_round();  // deliberately interleave: no stabilization gap
  }
  model.stabilize(50000);

  const StatusField expected = stabilized_field(mesh, chain);
  const auto blocks = block_boxes(expected);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], Box(Coord{5, 5}, Coord{7, 7}));
  for (const auto& c : envelope_positions(mesh, blocks[0]))
    EXPECT_TRUE(model.info().holds(mesh.index_of(c), blocks[0])) << c.to_string();
}

TEST(Identification, ShortTtlPreventsCompletionLongTtlAllows) {
  const MeshTopology mesh(3, 10);
  const Box block(Coord{3, 3, 3}, Coord{6, 6, 6});
  {
    DistributedModelOptions opts;
    opts.message_ttl = 3;  // far too short for any walk to finish
    DistributedFaultModel model(mesh, opts);
    for (const auto& c : box_fault_placement(mesh, block)) model.inject_fault(c);
    // Bounded run: with TTL 3 nothing can complete, and the retry keeps the
    // protocol active; run a fixed number of rounds.
    for (int r = 0; r < 300; ++r) model.run_round();
    EXPECT_EQ(model.info().total_entries(), 0)
        << "TTL-starved identification must never form block info";
  }
  {
    DistributedFaultModel model(mesh);  // default generous TTL
    for (const auto& c : box_fault_placement(mesh, block)) model.inject_fault(c);
    model.stabilize(50000);
    EXPECT_GT(model.info().total_entries(), 0);
  }
}

TEST(Identification, TwoBlocksIdentifiedIndependently) {
  const MeshTopology mesh(3, 10);
  DistributedFaultModel model(mesh);
  const Box a(Coord{2, 2, 2}, Coord{3, 3, 3});
  const Box b(Coord{6, 6, 6}, Coord{7, 7, 7});
  for (const auto& c : box_fault_placement(mesh, a)) model.inject_fault(c);
  for (const auto& c : box_fault_placement(mesh, b)) model.inject_fault(c);
  model.stabilize(50000);
  for (const auto& c : envelope_positions(mesh, a))
    EXPECT_TRUE(model.info().holds(mesh.index_of(c), a)) << c.to_string();
  for (const auto& c : envelope_positions(mesh, b))
    EXPECT_TRUE(model.info().holds(mesh.index_of(c), b)) << c.to_string();
}

}  // namespace
}  // namespace lgfi
