// Regression pins for the PR-9 determinism audit (DESIGN.md §16).
//
// The three unordered-container sites the static-analysis pass audited —
// fault-placement membership sets (`taken`/`chosen`), the OracleRouter
// bounded BFS-tree cache, and persistent routing-header marks — are all
// membership-only by construction.  These tests pin the behavioural
// consequences, so a future change that starts leaking hash-traversal order
// into placement or routing decisions fails here even if it slips past the
// linter (e.g. by iterating through an alias the name-based scanner cannot
// see).

#include <gtest/gtest.h>

#include <vector>

#include "src/routing/oracle_router.h"
#include "src/routing/route_walker.h"
#include "src/sim/fault_schedule.h"
#include "src/fault/labeling.h"
#include "src/sim/rng.h"

namespace lgfi {
namespace {

std::vector<Coord> reversed(std::vector<Coord> v) {
  return {v.rbegin(), v.rend()};
}

TEST(DeterminismAudit, RandomPlacementIsSeedDeterministic) {
  const MeshTopology mesh(3, 8);
  for (const uint64_t seed : {1ull, 7ull, 12345ull}) {
    Rng a(seed), b(seed);
    const auto first = random_fault_placement(mesh, 20, a);
    const auto second = random_fault_placement(mesh, 20, b);
    EXPECT_EQ(first, second) << "placement must be a pure function of the rng stream";
  }
}

TEST(DeterminismAudit, RandomPlacementIgnoresForbiddenListOrder) {
  // `forbidden` feeds only the membership set: permuting it must not change
  // which nodes are drawn or their order (the rng stream decides both).
  const MeshTopology mesh(2, 10);
  Rng seed_rng(99);
  const auto forbidden = random_fault_placement(mesh, 12, seed_rng);
  ASSERT_EQ(forbidden.size(), 12u);

  Rng a(5), b(5);
  const auto with_forward = random_fault_placement(mesh, 10, a, {}, forbidden);
  const auto with_reversed = random_fault_placement(mesh, 10, b, {}, reversed(forbidden));
  EXPECT_EQ(with_forward, with_reversed);
  for (const auto& f : forbidden)
    for (const auto& c : with_forward) EXPECT_NE(f, c);
}

TEST(DeterminismAudit, ClusteredPlacementIsSeedDeterministic) {
  const MeshTopology mesh(3, 8);
  for (const uint64_t seed : {2ull, 42ull}) {
    Rng a(seed), b(seed);
    EXPECT_EQ(clustered_fault_placement(mesh, 15, a), clustered_fault_placement(mesh, 15, b));
  }
}

// The oracle's dist_by_dest_ cache holds at most 64 BFS trees and evicts by
// wholesale clear().  Routing a destination sequence long enough to force
// several evictions must produce exactly the decisions of a fresh router per
// destination: the cache is a pure memoization, invisible to output.
TEST(DeterminismAudit, OracleCacheEvictionInvisibleToRoutes) {
  const MeshTopology mesh(2, 12);
  const StatusField field =
      stabilized_field(mesh, box_fault_placement(mesh, Box(Coord{4, 4}, Coord{7, 7})));
  RoutingContext ctx;
  ctx.mesh = &mesh;
  ctx.field = &field;

  // >64 distinct destinations, interleaved twice so the second pass hits a
  // cache warmed (and wrapped) by the first.
  std::vector<Coord> dests;
  for (int x = 0; x < 12; ++x)
    for (int y = 0; y < 12; ++y)
      if (!is_block_member(field.at(Coord{x, y})) && !(x == 0 && y == 0))
        dests.push_back(Coord{x, y});
  ASSERT_GT(dests.size(), 64u);

  OracleRouter cached;
  const Coord source{0, 0};
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& d : dests) {
      OracleRouter fresh;
      const RouteResult via_cache = run_static_route(ctx, cached, source, d);
      const RouteResult via_fresh = run_static_route(ctx, fresh, source, d);
      EXPECT_EQ(via_cache.delivered, via_fresh.delivered);
      EXPECT_EQ(via_cache.total_steps, via_fresh.total_steps);
      EXPECT_EQ(via_cache.forward_steps, via_fresh.forward_steps);
      EXPECT_EQ(via_cache.backtrack_steps, via_fresh.backtrack_steps);
    }
  }
}

}  // namespace
}  // namespace lgfi
