// Tests for the centralized boundary construction (Definition 3 + merge
// rule): wall geometry, dangerous regions, the critical-routing predicate,
// and the P4 interception property (any monotone walk entering a dangerous
// prism crosses an information-holding node first).

#include <gtest/gtest.h>

#include <algorithm>

#include "src/fault/block_analyzer.h"
#include "src/fault/boundary_model.h"
#include "src/fault/labeling.h"
#include "src/sim/fault_schedule.h"
#include "src/sim/rng.h"

namespace lgfi {
namespace {

TEST(BoundaryModel, CutsAllMinimalPathsCondition) {
  const Box block(Coord{3, 3}, Coord{5, 5});
  // u below the block, d above, u-d x-interval inside the block's x-range.
  EXPECT_TRUE(block_cuts_all_minimal_paths(block, Coord{4, 1}, Coord{4, 7}));
  EXPECT_TRUE(block_cuts_all_minimal_paths(block, Coord{3, 2}, Coord{5, 6}));
  // d's x leaves the block range: a minimal path can slide around.
  EXPECT_FALSE(block_cuts_all_minimal_paths(block, Coord{4, 1}, Coord{6, 7}));
  // u beside the block: no dimension straddles.
  EXPECT_FALSE(block_cuts_all_minimal_paths(block, Coord{1, 1}, Coord{2, 7}));
  // Mirrored orientation (above -> below).
  EXPECT_TRUE(block_cuts_all_minimal_paths(block, Coord{4, 7}, Coord{4, 1}));
}

TEST(BoundaryModel, CutsAllMinimalPaths3D) {
  const Box block(Coord{3, 5, 3}, Coord{5, 6, 4});
  // Crossing the y-slab with x and z intervals inside the block ranges.
  EXPECT_TRUE(block_cuts_all_minimal_paths(block, Coord{4, 4, 3}, Coord{4, 7, 4}));
  // z interval escapes the block (z from 2 to 5 vs block 3:4).
  EXPECT_FALSE(block_cuts_all_minimal_paths(block, Coord{4, 4, 2}, Coord{4, 7, 5}));
}

TEST(BoundaryModel, DangerousRegionGeometry) {
  const MeshTopology m(3, 10);
  const Box block(Coord{3, 5, 3}, Coord{5, 6, 4});
  // Boundary for S4 (+y) guards the area below S1.
  const Box below = dangerous_region(m, block, Surface{1, true});
  EXPECT_EQ(below, Box(Coord{3, 0, 3}, Coord{5, 4, 4}));
  const Box above = dangerous_region(m, block, Surface{1, false});
  EXPECT_EQ(above, Box(Coord{3, 7, 3}, Coord{5, 9, 4}));
}

TEST(BoundaryModel, WallGeometry2D) {
  // In 2-D the wall for S_{y,+} is two vertical half-lines below the block,
  // one unit outside each x-side.
  const MeshTopology m(2, 10);
  const Box block(Coord{3, 4}, Coord{5, 6});
  const auto wall = wall_positions_ignoring_merges(m, block, Surface{1, true});
  std::vector<Coord> expected;
  for (int y = 0; y <= 2; ++y) {  // below lo_y - 1 = 3
    expected.push_back(Coord{2, y});
    expected.push_back(Coord{6, y});
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(wall, expected);
}

TEST(BoundaryModel, WallGeometry3DIsPrismFacesWithoutDiagonals) {
  const MeshTopology m(3, 12);
  const Box block(Coord{4, 5, 4}, Coord{6, 7, 6});
  const auto wall = wall_positions_ignoring_merges(m, block, Surface{1, true});
  for (const auto& c : wall) {
    EXPECT_LT(c[1], 4);  // strictly below the S1 plane
    const auto cls = classify_against_block(c.with(1, 5), block);
    // Cross-section: exactly one of x/z out by one (faces, not diagonals).
    EXPECT_TRUE(cls.on_envelope);
  }
  // Every wall column has full height lo_y - 1 rows (4 rows: y = 0..3).
  EXPECT_EQ(wall.size() % 4, 0u);
}

TEST(BoundaryModel, PlacementCoversEnvelopeAndWalls) {
  const MeshTopology m(3, 10);
  const Box block(Coord{3, 5, 3}, Coord{5, 6, 4});
  const auto placement = compute_information_placement(m, {block});
  // All envelope nodes hold the info.
  for (const auto& c : envelope_positions(m, block)) {
    EXPECT_TRUE(placement.store.holds(m.index_of(c), block)) << c.to_string();
  }
  // All wall nodes of every surface hold the info.
  for (int dim = 0; dim < 3; ++dim) {
    for (bool positive : {false, true}) {
      for (const auto& c :
           wall_positions_ignoring_merges(m, block, Surface{dim, positive})) {
        EXPECT_TRUE(placement.store.holds(m.index_of(c), block)) << c.to_string();
      }
    }
  }
  EXPECT_EQ(placement.merge_events, 0);
}

TEST(BoundaryModel, PlacementIsLimited) {
  // The whole point: only a small fraction of nodes store anything.
  const MeshTopology m(3, 16);
  const Box block(Coord{6, 6, 6}, Coord{8, 8, 8});
  const auto placement = compute_information_placement(m, {block});
  EXPECT_LT(placement.store.nodes_with_info(), m.node_count() / 4);
  EXPECT_GT(placement.store.nodes_with_info(), 0);
}

TEST(BoundaryModel, MergeDepositsForeignInfoOnSecondBlock) {
  // Block A directly "above" block B (same cross-section): A's downward wall
  // hits B, so B's envelope must also carry A's info (Figure 3(d)).
  const MeshTopology m(2, 16);
  const Box a(Coord{6, 10}, Coord{8, 11});
  const Box b(Coord{5, 4}, Coord{9, 6});  // wider, below a
  const auto placement = compute_information_placement(m, {a, b});
  EXPECT_GT(placement.merge_events, 0);
  for (const auto& c : envelope_positions(m, b)) {
    EXPECT_TRUE(placement.store.holds(m.index_of(c), a))
        << "B envelope node " << c.to_string() << " must carry A's info";
  }
  // And A's info continues below B on B's own S_{y,+} walls.
  bool below_b = false;
  for (const auto& c : wall_positions_ignoring_merges(m, b, Surface{1, true})) {
    if (placement.store.holds(m.index_of(c), a)) below_b = true;
  }
  EXPECT_TRUE(below_b);
}

// P4: any monotone (minimal-path) walk that starts outside a dangerous prism
// and enters it crosses a node holding the block's info no later than entry.
TEST(BoundaryModel, InterceptionProperty) {
  const MeshTopology m(3, 10);
  Rng rng(0x9A4);
  for (int trial = 0; trial < 20; ++trial) {
    Rng t = rng.fork(static_cast<uint64_t>(trial));
    const auto faults = clustered_fault_placement(m, 8, t);
    const StatusField f = stabilized_field(m, faults);
    const auto blocks = block_boxes(f);
    if (blocks.size() != 1) continue;
    const Box& block = blocks[0];
    const auto placement = compute_information_placement(m, blocks);

    for (int dim = 0; dim < 3; ++dim) {
      for (bool positive : {false, true}) {
        const Surface s{dim, positive};
        const Box danger = dangerous_region(m, block, s);
        if (danger.empty()) continue;

        // Random monotone walks toward a random point inside the prism.
        for (int w = 0; w < 10; ++w) {
          const Coord goal = danger.all_coords()[static_cast<size_t>(
              t.next_below(static_cast<uint64_t>(danger.volume())))];
          // Start outside the prism.
          Coord start(3);
          for (int i = 0; i < 3; ++i) start[i] = t.uniform_int(0, m.extent(i) - 1);
          if (danger.contains(start) || block.contains(start)) continue;

          Coord cur = start;
          bool informed = placement.store.holds(m.index_of(cur), block);
          bool entered_informed = true;
          int guard = 0;
          while (cur != goal && guard++ < 100) {
            // pick any preferred direction (deterministic: lowest dim)
            Coord next = cur;
            for (int i = 0; i < 3; ++i) {
              if (cur[i] != goal[i]) {
                next = cur.shifted(i, cur[i] < goal[i] ? 1 : -1);
                break;
              }
            }
            if (block.contains(next)) break;  // walk bumps into the block itself
            cur = next;
            if (placement.store.holds(m.index_of(cur), block)) informed = true;
            // Entry into the prism counts as informed if the entry node
            // itself (or any earlier node) held the info.
            if (danger.contains(cur) && !informed) entered_informed = false;
          }
          EXPECT_TRUE(entered_informed)
              << "walk from " << start.to_string() << " entered "
              << danger.to_string() << " uninformed (block " << block.to_string() << ")";
        }
      }
    }
  }
}

TEST(BoundaryModel, PlacementDeterministic) {
  const MeshTopology m(3, 8);
  const StatusField f = stabilized_field(
      m, {Coord{3, 5, 4}, Coord{4, 5, 4}, Coord{5, 5, 3}, Coord{3, 6, 3}});
  const auto blocks = block_boxes(f);
  const auto p1 = compute_information_placement(m, blocks);
  const auto p2 = compute_information_placement(m, blocks);
  EXPECT_EQ(p1.store.nodes_with_info(), p2.store.nodes_with_info());
  EXPECT_EQ(p1.store.total_entries(), p2.store.total_entries());
  EXPECT_EQ(p1.wall_deposits, p2.wall_deposits);
}

}  // namespace
}  // namespace lgfi
