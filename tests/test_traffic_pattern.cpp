// Tests for the traffic-pattern registry and the built-in patterns.

#include <gtest/gtest.h>

#include <set>

#include "src/sim/traffic_pattern.h"

namespace lgfi {
namespace {

Config empty_config() { return Config{}; }

TEST(TrafficPatternRegistry, BuiltInsAreRegistered) {
  auto& reg = TrafficPatternRegistry::instance();
  for (const char* name :
       {"uniform", "transpose", "bit_complement", "hotspot", "permutation"})
    EXPECT_TRUE(reg.contains(name)) << name;
  EXPECT_EQ(reg.names().size(), 5u);
}

TEST(TrafficPatternRegistry, UnknownNameThrowsListingKnownOnes) {
  const MeshTopology mesh(2, 4);
  Rng rng(1);
  const Config cfg = empty_config();
  try {
    (void)make_traffic_pattern("tornado", mesh, cfg, rng);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("uniform"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("tornado"), std::string::npos);
  }
}

TEST(TrafficPattern, UniformNeverReturnsTheSource) {
  const MeshTopology mesh(2, 4);
  Rng rng(7);
  const Config cfg = empty_config();
  auto p = make_traffic_pattern("uniform", mesh, cfg, rng);
  const Coord src{2, 2};
  std::set<std::string> seen;
  for (int i = 0; i < 200; ++i) {
    const Coord d = p->destination(src, rng);
    EXPECT_NE(d, src);
    EXPECT_TRUE(mesh.in_bounds(d));
    seen.insert(d.to_string());
  }
  EXPECT_GT(seen.size(), 5u) << "uniform should spread over many destinations";
}

TEST(TrafficPattern, TransposeRotatesCoordinates) {
  const MeshTopology mesh(2, 8);
  Rng rng(1);
  const Config cfg = empty_config();
  auto p = make_traffic_pattern("transpose", mesh, cfg, rng);
  EXPECT_EQ(p->destination(Coord{3, 5}, rng), (Coord{5, 3}));
  EXPECT_EQ(p->destination(Coord{2, 2}, rng), (Coord{2, 2}))
      << "diagonal nodes are fixed points (they do not inject)";

  const MeshTopology mesh3(3, 4);
  auto p3 = make_traffic_pattern("transpose", mesh3, cfg, rng);
  EXPECT_EQ(p3->destination(Coord{1, 2, 3}, rng), (Coord{2, 3, 1}));
}

TEST(TrafficPattern, TransposeRejectsUnequalExtents) {
  const MeshTopology mesh(std::vector<int>{8, 4});
  Rng rng(1);
  const Config cfg = empty_config();
  EXPECT_THROW((void)make_traffic_pattern("transpose", mesh, cfg, rng), ConfigError);
}

TEST(TrafficPattern, BitComplementMirrorsThroughTheCenter) {
  const MeshTopology mesh(std::vector<int>{8, 5});
  Rng rng(1);
  const Config cfg = empty_config();
  auto p = make_traffic_pattern("bit_complement", mesh, cfg, rng);
  EXPECT_EQ(p->destination(Coord{0, 0}, rng), (Coord{7, 4}));
  EXPECT_EQ(p->destination(Coord{7, 4}, rng), (Coord{0, 0}));
  EXPECT_EQ(p->destination(Coord{3, 1}, rng), (Coord{4, 3}));
}

TEST(TrafficPattern, HotspotTargetsTheCenterAtFracOne) {
  const MeshTopology mesh(2, 9);
  Rng rng(3);
  Config cfg;
  cfg.define_double("hotspot_frac", 1.0);
  auto p = make_traffic_pattern("hotspot", mesh, cfg, rng);
  const Coord hotspot = mesh_center(mesh);
  EXPECT_EQ(hotspot, (Coord{4, 4}));
  for (int i = 0; i < 50; ++i) EXPECT_EQ(p->destination(Coord{0, 0}, rng), hotspot);
  // The hotspot node itself falls back to uniform (never itself).
  for (int i = 0; i < 50; ++i) EXPECT_NE(p->destination(hotspot, rng), hotspot);
}

TEST(TrafficPattern, HotspotRejectsBadFraction) {
  const MeshTopology mesh(2, 4);
  Rng rng(1);
  Config cfg;
  cfg.define_double("hotspot_frac", 1.5);
  EXPECT_THROW((void)make_traffic_pattern("hotspot", mesh, cfg, rng), ConfigError);
}

TEST(TrafficPattern, PermutationIsAFixedBijection) {
  const MeshTopology mesh(2, 5);
  Rng rng(11);
  const Config cfg = empty_config();
  auto p = make_traffic_pattern("permutation", mesh, cfg, rng);
  std::set<std::string> images;
  for (NodeId n = 0; n < mesh.node_count(); ++n) {
    const Coord src = mesh.coord_of(n);
    const Coord d1 = p->destination(src, rng);
    const Coord d2 = p->destination(src, rng);
    EXPECT_EQ(d1, d2) << "the permutation is fixed for the workload's lifetime";
    images.insert(d1.to_string());
  }
  EXPECT_EQ(images.size(), static_cast<size_t>(mesh.node_count()));
}

TEST(TrafficPattern, PermutationDependsOnTheConstructionSeed) {
  const MeshTopology mesh(2, 6);
  const Config cfg = empty_config();
  Rng rng_a(1), rng_b(2);
  auto pa = make_traffic_pattern("permutation", mesh, cfg, rng_a);
  auto pb = make_traffic_pattern("permutation", mesh, cfg, rng_b);
  int differing = 0;
  for (NodeId n = 0; n < mesh.node_count(); ++n) {
    const Coord src = mesh.coord_of(n);
    if (pa->destination(src, rng_a) != pb->destination(src, rng_b)) ++differing;
  }
  EXPECT_GT(differing, 0);
}

}  // namespace
}  // namespace lgfi
