// Tests for the Theorem 3/4/5 bound calculators.

#include <gtest/gtest.h>

#include "src/routing/detour_bounds.h"

namespace lgfi {
namespace {

DynamicFaultTimeline simple_timeline() {
  DynamicFaultTimeline tl;
  tl.t = {10, 40, 70, 100};  // d_i = 30
  tl.a = {3, 3, 3, 3};
  tl.e_max = 4;
  tl.route_start = 10;
  return tl;
}

TEST(DetourBounds, FaultsBeforeStart) {
  auto tl = simple_timeline();
  EXPECT_EQ(tl.faults_before_start(), 1u);  // t_1 = 10 <= 10
  tl.route_start = 75;
  EXPECT_EQ(tl.faults_before_start(), 3u);
  tl.route_start = 5;
  EXPECT_EQ(tl.faults_before_start(), 0u);
}

TEST(DetourBounds, IntervalAndAMax) {
  const auto tl = simple_timeline();
  EXPECT_EQ(tl.interval(0), 30);
  EXPECT_EQ(tl.a_max(), 3);
}

TEST(DetourBounds, Theorem3TrajectoryIsMonotoneNonIncreasing) {
  const auto tl = simple_timeline();
  const auto bounds = theorem3_distance_bounds(tl, 20);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_EQ(bounds[0], 20) << "i <= p: message still at source, D(i) = D";
  for (size_t i = 1; i < bounds.size(); ++i) EXPECT_LE(bounds[i], bounds[i - 1]);
}

TEST(DetourBounds, Theorem3ProgressPerInterval) {
  // With d = 30, a = 3, e_max = 4 the guaranteed progress per interval is
  // d - 2a - 2e = 30 - 6 - 8 = 16.
  auto tl = simple_timeline();
  tl.route_start = 10;
  const auto bounds = theorem3_distance_bounds(tl, 40);
  // i = p+1 = 2 (1-based): first full interval elapsed.
  EXPECT_EQ(bounds[1], 40 - 16);
  EXPECT_EQ(bounds[2], 40 - 32);
  EXPECT_EQ(bounds[3], 0) << "clamped at zero";
}

TEST(DetourBounds, Theorem4SmallDistanceFitsOneInterval) {
  const auto tl = simple_timeline();
  const auto b = theorem4_bound(tl, 10);
  EXPECT_EQ(b.k, 1);
  EXPECT_EQ(b.max_detours, 1 * (4 + 3));
}

TEST(DetourBounds, Theorem4LargerDistanceSpansMoreIntervals) {
  const auto tl = simple_timeline();
  // progress 16/interval: D = 20 -> k = 2; D = 40 -> k = 3.
  EXPECT_EQ(theorem4_bound(tl, 20).k, 2);
  EXPECT_EQ(theorem4_bound(tl, 40).k, 3);
  EXPECT_EQ(theorem4_bound(tl, 40).max_detours, 3 * 7);
}

TEST(DetourBounds, Theorem4CreditsElapsedIntervalTime) {
  // Starting mid-interval credits t - t_p against the distance budget.
  auto tl = simple_timeline();
  tl.route_start = 25;  // 15 steps into interval d_1
  const auto late = theorem4_bound(tl, 20);
  tl.route_start = 10;
  const auto early = theorem4_bound(tl, 20);
  EXPECT_LE(late.k, early.k + 1);
  EXPECT_GE(late.k, early.k) << "never fewer intervals when starting later in one";
}

TEST(DetourBounds, Theorem5MirrorsTheorem4WithPathLength) {
  const auto tl = simple_timeline();
  EXPECT_EQ(theorem5_bound(tl, 20).k, theorem4_bound(tl, 20).k)
      << "Theorem 5 is Theorem 4 with L in place of D";
}

TEST(DetourBounds, ZeroBudgetMeansZeroIntervals) {
  const auto tl = simple_timeline();
  EXPECT_EQ(theorem4_bound(tl, 0).k, 0);
  EXPECT_EQ(theorem4_bound(tl, 0).max_detours, 0);
}

TEST(DetourBounds, RunsOutOfKnownFaultsGracefully) {
  // Huge distance: k saturates at the number of known intervals + 1.
  const auto tl = simple_timeline();
  const auto b = theorem4_bound(tl, 100000);
  EXPECT_GE(b.k, 4);
}

}  // namespace
}  // namespace lgfi
