#include "src/mesh/box.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>

namespace lgfi {

Box::Box(const Coord& a, const Coord& b) : lo_(a.size()), hi_(a.size()) {
  assert(a.size() == b.size());
  for (int i = 0; i < a.size(); ++i) {
    lo_[i] = std::min(a[i], b[i]);
    hi_[i] = std::max(a[i], b[i]);
  }
}

Box Box::point(const Coord& c) { return Box(c, c); }

bool Box::empty() const {
  if (dims() == 0) return true;
  for (int i = 0; i < dims(); ++i)
    if (hi_[i] < lo_[i]) return true;
  return false;
}

long long Box::volume() const {
  if (empty()) return 0;
  long long v = 1;
  for (int i = 0; i < dims(); ++i) v *= extent(i);
  return v;
}

int Box::max_extent() const {
  if (empty()) return 0;
  int m = 0;
  for (int i = 0; i < dims(); ++i) m = std::max(m, extent(i));
  return m;
}

bool Box::contains(const Coord& c) const {
  if (empty() || c.size() != dims()) return false;
  for (int i = 0; i < dims(); ++i)
    if (c[i] < lo_[i] || c[i] > hi_[i]) return false;
  return true;
}

bool Box::contains(const Box& other) const {
  if (other.empty()) return true;
  if (empty()) return false;
  return contains(other.lo_) && contains(other.hi_);
}

bool Box::intersects(const Box& other) const {
  if (empty() || other.empty() || dims() != other.dims()) return false;
  for (int i = 0; i < dims(); ++i)
    if (hi_[i] < other.lo_[i] || other.hi_[i] < lo_[i]) return false;
  return true;
}

std::optional<Box> Box::intersection(const Box& other) const {
  if (!intersects(other)) return std::nullopt;
  Box r;
  r.lo_ = Coord(dims());
  r.hi_ = Coord(dims());
  for (int i = 0; i < dims(); ++i) {
    r.lo_[i] = std::max(lo_[i], other.lo_[i]);
    r.hi_[i] = std::min(hi_[i], other.hi_[i]);
  }
  return r;
}

Box Box::hull(const Box& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  assert(dims() == other.dims());
  Box r = *this;
  for (int i = 0; i < dims(); ++i) {
    r.lo_[i] = std::min(lo_[i], other.lo_[i]);
    r.hi_[i] = std::max(hi_[i], other.hi_[i]);
  }
  return r;
}

Box Box::hull(const Coord& c) const { return hull(Box::point(c)); }

Box Box::inflated(int amount) const {
  Box r = *this;
  for (int i = 0; i < dims(); ++i) {
    r.lo_[i] -= amount;
    r.hi_[i] += amount;
  }
  return r;
}

bool Box::touches(const Box& other) const { return inflated(1).intersects(other); }

std::vector<Coord> Box::all_coords() const {
  std::vector<Coord> out;
  out.reserve(static_cast<size_t>(std::max<long long>(volume(), 0)));
  for_each([&out](const Coord& c) { out.push_back(c); });
  return out;
}

std::string Box::to_string() const {
  if (empty()) return "[empty]";
  std::ostringstream os;
  os << '[';
  for (int i = 0; i < dims(); ++i) {
    if (i > 0) os << ", ";
    os << lo_[i] << ':' << hi_[i];
  }
  os << ']';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Box& b) {
  return os << b.to_string();
}

Box minimal_path_box(const Coord& u, const Coord& v) { return Box(u, v); }

}  // namespace lgfi
