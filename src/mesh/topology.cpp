#include "src/mesh/topology.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace lgfi {

Topology::Topology(std::vector<int> extents, uint32_t wrap_mask, int concentration)
    : extents_(std::move(extents)), wrap_mask_(wrap_mask), concentration_(concentration) {
  if (extents_.empty() || extents_.size() > static_cast<size_t>(kMaxDims))
    throw std::invalid_argument("topology dimensionality must be in [1, kMaxDims]");
  for (int e : extents_)
    if (e < 1) throw std::invalid_argument("topology extent must be positive");
  if (concentration_ < 1) throw std::invalid_argument("concentration must be >= 1");
  strides_.assign(extents_.size(), 1);
  node_count_ = 1;
  for (int i = dims() - 1; i >= 0; --i) {
    strides_[static_cast<size_t>(i)] = node_count_;
    node_count_ *= extents_[static_cast<size_t>(i)];
  }
}

int Topology::diameter() const {
  int d = 0;
  for (int i = 0; i < dims(); ++i) d += wraps(i) ? extent(i) / 2 : extent(i) - 1;
  return d;
}

Box Topology::bounds() const {
  Coord lo(dims());
  Coord hi(dims());
  for (int i = 0; i < dims(); ++i) hi[i] = extent(i) - 1;
  return Box(lo, hi);
}

bool Topology::in_bounds(const Coord& c) const {
  if (c.size() != dims()) return false;
  for (int i = 0; i < dims(); ++i)
    if (c[i] < 0 || c[i] >= extent(i)) return false;
  return true;
}

NodeId Topology::index_of(const Coord& c) const {
  assert(in_bounds(c));
  long long idx = 0;
  for (int i = 0; i < dims(); ++i) idx += c[i] * strides_[static_cast<size_t>(i)];
  return static_cast<NodeId>(idx);
}

Coord Topology::coord_of(NodeId id) const {
  assert(id >= 0 && id < node_count_);
  Coord c(dims());
  long long rest = id;
  for (int i = 0; i < dims(); ++i) {
    c[i] = static_cast<int>(rest / strides_[static_cast<size_t>(i)]);
    rest %= strides_[static_cast<size_t>(i)];
  }
  return c;
}

NodeId Topology::neighbor(NodeId id, Direction dir) const {
  const Coord c = coord_of(id);
  const int e = extent(dir.dim());
  const int v = c[dir.dim()] + dir.sign();
  const long long stride = strides_[static_cast<size_t>(dir.dim())];
  if (v >= 0 && v < e) return static_cast<NodeId>(id + dir.sign() * stride);
  if (!wraps(dir.dim()) || e < 2) return kInvalidNode;
  // Wrapping jumps the coordinate to the far end of the dimension: e-1 steps
  // the opposite way in index space.
  return static_cast<NodeId>(id - dir.sign() * (e - 1) * stride);
}

bool Topology::has_neighbor(const Coord& c, Direction dir) const {
  const int e = extent(dir.dim());
  const int v = c[dir.dim()] + dir.sign();
  if (v >= 0 && v < e) return true;
  return wraps(dir.dim()) && e >= 2;
}

Coord Topology::step(const Coord& c, Direction dir) const {
  const int e = extent(dir.dim());
  int v = c[dir.dim()] + dir.sign();
  if (v < 0) v += e;
  else if (v >= e) v -= e;
  return c.with(dir.dim(), v);
}

std::vector<Coord> Topology::neighbors(const Coord& c) const {
  std::vector<Coord> out;
  out.reserve(static_cast<size_t>(direction_count()));
  for_each_neighbor(c, [&out](Direction, const Coord& n) { out.push_back(n); });
  return out;
}

bool Topology::has_grid_neighbor(const Coord& c, Direction dir) const {
  const int v = c[dir.dim()] + dir.sign();
  return v >= 0 && v < extent(dir.dim());
}

int Topology::axis_step_sign(int dim, int from, int to) const {
  if (from == to) return 0;
  if (!wraps(dim)) return to > from ? 1 : -1;
  const int e = extent(dim);
  const int fwd = ((to - from) % e + e) % e;  // hops going +1 per step
  const int bwd = e - fwd;                    // hops going -1 per step
  return fwd <= bwd ? 1 : -1;
}

int Topology::min_hops(const Coord& a, const Coord& b) const {
  int total = 0;
  for (int i = 0; i < dims(); ++i) total += axis_distance(i, a[i], b[i]);
  return total;
}

std::vector<Direction> Topology::preferred_directions(const Coord& u, const Coord& d) const {
  std::vector<Direction> out;
  for (int i = 0; i < dims(); ++i) {
    if (u[i] == d[i]) continue;
    if (!wraps(i)) {
      out.emplace_back(i, u[i] < d[i]);
      continue;
    }
    const int e = extent(i);
    const int fwd = ((d[i] - u[i]) % e + e) % e;
    const int bwd = e - fwd;
    // On a wraparound tie both ways are minimal; the negative direction comes
    // first to match dense direction-index order.
    if (fwd == bwd) {
      out.emplace_back(i, false);
      out.emplace_back(i, true);
    } else {
      out.emplace_back(i, fwd < bwd);
    }
  }
  return out;
}

bool Topology::on_outer_surface(const Coord& c) const {
  for (int i = 0; i < dims(); ++i) {
    if (wraps(i)) continue;
    if (c[i] == 0 || c[i] == extent(i) - 1) return true;
  }
  return false;
}

Box Topology::clip(const Box& b) const {
  if (b.empty()) return b;
  auto r = bounds().intersection(b);
  return r ? *r : Box();
}

MeshTopology::MeshTopology(int dims, int radix)
    : MeshTopology(std::vector<int>(static_cast<size_t>(dims), radix)) {}

MeshTopology::MeshTopology(std::vector<int> extents)
    : Topology(std::move(extents), /*wrap_mask=*/0, /*concentration=*/1) {}

TorusTopology::TorusTopology(int dims, int radix)
    : TorusTopology(std::vector<int>(static_cast<size_t>(dims), radix)) {}

TorusTopology::TorusTopology(std::vector<int> extents)
    : Topology(std::move(extents), /*wrap_mask=*/0xffffffffu, /*concentration=*/1) {}

CMeshTopology::CMeshTopology(int dims, int radix, int concentration)
    : CMeshTopology(std::vector<int>(static_cast<size_t>(dims), radix), concentration) {}

CMeshTopology::CMeshTopology(std::vector<int> extents, int concentration)
    : Topology(std::move(extents), /*wrap_mask=*/0, concentration) {}

}  // namespace lgfi
