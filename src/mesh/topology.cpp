#include "src/mesh/topology.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace lgfi {

MeshTopology::MeshTopology(int dims, int radix)
    : MeshTopology(std::vector<int>(static_cast<size_t>(dims), radix)) {}

MeshTopology::MeshTopology(std::vector<int> extents) : extents_(std::move(extents)) {
  if (extents_.empty() || extents_.size() > static_cast<size_t>(kMaxDims))
    throw std::invalid_argument("mesh dimensionality must be in [1, kMaxDims]");
  for (int e : extents_)
    if (e < 1) throw std::invalid_argument("mesh extent must be positive");
  strides_.assign(extents_.size(), 1);
  node_count_ = 1;
  for (int i = dims() - 1; i >= 0; --i) {
    strides_[static_cast<size_t>(i)] = node_count_;
    node_count_ *= extents_[static_cast<size_t>(i)];
  }
}

int MeshTopology::diameter() const {
  int d = 0;
  for (int e : extents_) d += e - 1;
  return d;
}

Box MeshTopology::bounds() const {
  Coord lo(dims());
  Coord hi(dims());
  for (int i = 0; i < dims(); ++i) hi[i] = extent(i) - 1;
  return Box(lo, hi);
}

bool MeshTopology::in_bounds(const Coord& c) const {
  if (c.size() != dims()) return false;
  for (int i = 0; i < dims(); ++i)
    if (c[i] < 0 || c[i] >= extent(i)) return false;
  return true;
}

NodeId MeshTopology::index_of(const Coord& c) const {
  assert(in_bounds(c));
  long long idx = 0;
  for (int i = 0; i < dims(); ++i) idx += c[i] * strides_[static_cast<size_t>(i)];
  return static_cast<NodeId>(idx);
}

Coord MeshTopology::coord_of(NodeId id) const {
  assert(id >= 0 && id < node_count_);
  Coord c(dims());
  long long rest = id;
  for (int i = 0; i < dims(); ++i) {
    c[i] = static_cast<int>(rest / strides_[static_cast<size_t>(i)]);
    rest %= strides_[static_cast<size_t>(i)];
  }
  return c;
}

NodeId MeshTopology::neighbor(NodeId id, Direction dir) const {
  const Coord c = coord_of(id);
  const int v = c[dir.dim()] + dir.sign();
  if (v < 0 || v >= extent(dir.dim())) return kInvalidNode;
  return static_cast<NodeId>(id + dir.sign() * strides_[static_cast<size_t>(dir.dim())]);
}

bool MeshTopology::has_neighbor(const Coord& c, Direction dir) const {
  const int v = c[dir.dim()] + dir.sign();
  return v >= 0 && v < extent(dir.dim());
}

std::vector<Coord> MeshTopology::neighbors(const Coord& c) const {
  std::vector<Coord> out;
  out.reserve(static_cast<size_t>(direction_count()));
  for_each_neighbor(c, [&out](Direction, const Coord& n) { out.push_back(n); });
  return out;
}

bool MeshTopology::on_outer_surface(const Coord& c) const {
  for (int i = 0; i < dims(); ++i)
    if (c[i] == 0 || c[i] == extent(i) - 1) return true;
  return false;
}

std::vector<Direction> MeshTopology::preferred_directions(const Coord& u,
                                                          const Coord& d) const {
  std::vector<Direction> out;
  for (int i = 0; i < dims(); ++i) {
    if (u[i] < d[i]) out.emplace_back(i, true);
    else if (u[i] > d[i]) out.emplace_back(i, false);
  }
  return out;
}

Box MeshTopology::clip(const Box& b) const {
  if (b.empty()) return b;
  auto r = bounds().intersection(b);
  return r ? *r : Box();
}

}  // namespace lgfi
