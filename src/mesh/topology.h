#pragma once
// k-ary n-dimensional mesh topology (Section 2.1).
//
// A k-ary n-D mesh has N = k^n nodes; two nodes are connected iff their
// addresses differ by exactly one in exactly one dimension, so nodes along
// each dimension form a linear array (no wraparound — this is a mesh, not a
// torus).  `MeshTopology` provides the address <-> dense-index mapping,
// neighbour enumeration, and the geometric predicates the rest of the
// library builds on.  Per-dimension radices may differ (a generalization the
// paper's analysis never relies against), so both 8x8x8 and 16x4x4 meshes
// are expressible.

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/mesh/box.h"
#include "src/mesh/coordinates.h"
#include "src/mesh/direction.h"

namespace lgfi {

/// Dense node identifier in [0, node_count()).
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

class MeshTopology {
 public:
  /// k-ary n-D mesh: `dims` dimensions of radix `radix` each.
  MeshTopology(int dims, int radix);

  /// Mixed-radix mesh, extents[i] nodes along dimension i.
  explicit MeshTopology(std::vector<int> extents);

  [[nodiscard]] int dims() const { return static_cast<int>(extents_.size()); }
  [[nodiscard]] int extent(int dim) const { return extents_[static_cast<size_t>(dim)]; }
  [[nodiscard]] long long node_count() const { return node_count_; }
  [[nodiscard]] int direction_count() const { return 2 * dims(); }

  /// Network diameter (k-1)*n for a k-ary n-D mesh (Section 2.1).
  [[nodiscard]] int diameter() const;

  /// The full mesh as a box [0 : extent_i - 1].
  [[nodiscard]] Box bounds() const;

  [[nodiscard]] bool in_bounds(const Coord& c) const;

  /// Address -> dense index (row-major, dimension 0 slowest).
  [[nodiscard]] NodeId index_of(const Coord& c) const;

  /// Dense index -> address.
  [[nodiscard]] Coord coord_of(NodeId id) const;

  /// The neighbour one hop along `dir`, or kInvalidNode at the mesh surface.
  [[nodiscard]] NodeId neighbor(NodeId id, Direction dir) const;
  [[nodiscard]] bool has_neighbor(const Coord& c, Direction dir) const;

  /// All in-bounds neighbours of `c` (up to 2n of them).
  [[nodiscard]] std::vector<Coord> neighbors(const Coord& c) const;

  /// Calls fn(direction, neighbor_coord) for every in-bounds neighbour.
  template <typename Fn>
  void for_each_neighbor(const Coord& c, Fn&& fn) const {
    for (int i = 0; i < direction_count(); ++i) {
      const Direction d = Direction::from_index(i);
      const int v = c[d.dim()] + d.sign();
      if (v < 0 || v >= extent(d.dim())) continue;
      fn(d, d.apply(c));
    }
  }

  /// True if `c` lies on the outmost surface of the mesh (some coordinate at
  /// 0 or extent-1).  Section 5 assumes no fault occurs on the outmost
  /// surface; boundary propagation stops there.
  [[nodiscard]] bool on_outer_surface(const Coord& c) const;

  /// Directions from u toward d that reduce Manhattan distance — the
  /// *preferred* directions; all others are *spare* (Section 2.1).
  [[nodiscard]] std::vector<Direction> preferred_directions(const Coord& u,
                                                            const Coord& d) const;

  /// Clamps a box to the mesh bounds.
  [[nodiscard]] Box clip(const Box& b) const;

 private:
  std::vector<int> extents_;
  std::vector<long long> strides_;
  long long node_count_ = 0;
};

}  // namespace lgfi
