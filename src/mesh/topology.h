#pragma once
// Pluggable network topologies over a k-ary n-D coordinate grid.
//
// `Topology` is the substrate the whole library builds on: the address <->
// dense-index mapping, neighbour/channel enumeration, the minimal-hop
// metric, and the geometric predicates of the paper's fault machinery.  All
// shipped topologies share one coordinate grid (per-dimension extents,
// row-major dense indices) and differ in which dimensions *wrap* and how
// many terminals share a router:
//
//   mesh   the paper's substrate (Section 2.1): a k-ary n-D mesh, no
//          wraparound; nodes along each dimension form a linear array
//   torus  wraparound channels in every dimension; there is no outer
//          surface, so Section 5's no-fault-on-the-outmost-surface
//          assumption becomes vacuous
//   cmesh  concentrated mesh: `concentration` terminals share each router;
//          the router grid itself is a plain mesh
//
// Two neighbour graphs coexist (DESIGN.md 13):
//
//   - the *channel graph* (`neighbor`, `for_each_neighbor`, `step`,
//     `min_hops`): what routing, switching, arbitration and traffic see —
//     wraparound links included;
//   - the *coordinate grid* (`for_each_grid_neighbor`, `in_bounds`, `clip`):
//     what the fault-information constructions operate on — blocks are
//     axis-aligned boxes in coordinate space and envelope/boundary walks
//     never cross a wraparound seam (a conservative, always-terminating
//     port of the paper's machinery; see DESIGN.md 13).
//
// Per-dimension radices may differ (both 8x8x8 and 16x4x4 are expressible);
// mixed-radix metrics account for each extent individually.
//
// Topologies register by name in topology_registry() (src/core) — the
// `topology=` config axis — exactly like routers and traffic patterns.

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/mesh/box.h"
#include "src/mesh/coordinates.h"
#include "src/mesh/direction.h"

namespace lgfi {

/// Dense node identifier in [0, node_count()).
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

class Topology {
 public:
  virtual ~Topology() = default;

  /// The registered name of this topology ("mesh", "torus", "cmesh").
  [[nodiscard]] virtual std::string name() const = 0;

  /// A deep copy with the concrete type preserved (Network stores one).
  [[nodiscard]] virtual std::unique_ptr<Topology> clone() const = 0;

  [[nodiscard]] int dims() const { return static_cast<int>(extents_.size()); }
  [[nodiscard]] int extent(int dim) const { return extents_[static_cast<size_t>(dim)]; }
  [[nodiscard]] long long node_count() const { return node_count_; }
  [[nodiscard]] int direction_count() const { return 2 * dims(); }

  /// True if dimension `dim` has wraparound channels.
  [[nodiscard]] bool wraps(int dim) const { return (wrap_mask_ & (1u << dim)) != 0; }

  /// Terminals sharing each router (1 except for the concentrated mesh).
  [[nodiscard]] int concentration() const { return concentration_; }
  /// Injection endpoints: concentration() terminals per router.
  [[nodiscard]] long long terminal_count() const { return concentration_ * node_count_; }

  /// Network diameter of the channel graph: each dimension contributes
  /// extent-1 hops (linear array) or floor(extent/2) hops (wrapped).  For a
  /// k-ary n-D mesh with equal radices this is the familiar (k-1)*n; with
  /// mixed radices it is the per-dimension sum.
  [[nodiscard]] int diameter() const;

  /// The full coordinate grid as a box [0 : extent_i - 1].
  [[nodiscard]] Box bounds() const;

  [[nodiscard]] bool in_bounds(const Coord& c) const;

  /// Address -> dense index (row-major, dimension 0 slowest).
  [[nodiscard]] NodeId index_of(const Coord& c) const;

  /// Dense index -> address.
  [[nodiscard]] Coord coord_of(NodeId id) const;

  // --- channel graph (wraparound-aware) ------------------------------------

  /// The neighbour one hop along `dir`, or kInvalidNode where no channel
  /// exists (the grid surface of a non-wrapped dimension).
  [[nodiscard]] NodeId neighbor(NodeId id, Direction dir) const;
  [[nodiscard]] bool has_neighbor(const Coord& c, Direction dir) const;

  /// The coordinate one channel hop along `dir`.  Pre: has_neighbor(c, dir).
  [[nodiscard]] Coord step(const Coord& c, Direction dir) const;

  /// All channel neighbours of `c` (up to 2n of them; a wrapped dimension of
  /// extent 2 reports the same node through both of its directions).
  [[nodiscard]] std::vector<Coord> neighbors(const Coord& c) const;

  /// Calls fn(direction, neighbor_coord) for every channel neighbour.
  template <typename Fn>
  void for_each_neighbor(const Coord& c, Fn&& fn) const {
    for (int i = 0; i < direction_count(); ++i) {
      const Direction d = Direction::from_index(i);
      const int e = extent(d.dim());
      const int v = c[d.dim()] + d.sign();
      if (v < 0 || v >= e) {
        if (!wraps(d.dim()) || e < 2) continue;
        fn(d, c.with(d.dim(), v < 0 ? e - 1 : 0));
        continue;
      }
      fn(d, d.apply(c));
    }
  }

  // --- coordinate grid (never wraps) ---------------------------------------
  // The fault-information constructions (labeling, identification, boundary
  // walls) operate on this graph so blocks stay axis-aligned boxes in
  // coordinate space on every topology.

  [[nodiscard]] bool has_grid_neighbor(const Coord& c, Direction dir) const;

  /// Calls fn(direction, neighbor_coord) for every in-grid neighbour,
  /// ignoring wraparound channels.
  template <typename Fn>
  void for_each_grid_neighbor(const Coord& c, Fn&& fn) const {
    for (int i = 0; i < direction_count(); ++i) {
      const Direction d = Direction::from_index(i);
      const int v = c[d.dim()] + d.sign();
      if (v < 0 || v >= extent(d.dim())) continue;
      fn(d, d.apply(c));
    }
  }

  // --- minimal-hop metric ---------------------------------------------------

  /// Channel-graph distance along one dimension: |a-b|, or the shorter way
  /// around when the dimension wraps.
  [[nodiscard]] int axis_distance(int dim, int a, int b) const {
    int d = a - b;
    if (d < 0) d = -d;
    if (!wraps(dim)) return d;
    const int around = extent(dim) - d;
    return around < d ? around : d;
  }

  /// Sign of the (a) shorter way along `dim` from `from` to `to`: +1 or -1,
  /// 0 when the coordinates agree.  A wraparound tie (both ways equal)
  /// resolves to +1, keeping routing deterministic.
  [[nodiscard]] int axis_step_sign(int dim, int from, int to) const;

  /// Channel-graph minimal hops between two addresses (the fault-free
  /// distance oracle; equals the Manhattan distance on a mesh).
  [[nodiscard]] int min_hops(const Coord& a, const Coord& b) const;

  /// Directions from u toward d that reduce min_hops — the *preferred*
  /// directions; all others are *spare* (Section 2.1).  A wraparound tie
  /// makes both directions of that dimension preferred.
  [[nodiscard]] std::vector<Direction> preferred_directions(const Coord& u,
                                                            const Coord& d) const;

  // --- boundary predicates --------------------------------------------------

  /// True if `c` lies on the outmost surface of the grid: some coordinate at
  /// 0 or extent-1 in a *non-wrapped* dimension.  Section 5 assumes no fault
  /// occurs there; on a torus every dimension wraps, so no node is on an
  /// outer surface and the assumption is vacuous.
  [[nodiscard]] bool on_outer_surface(const Coord& c) const;

  /// Clamps a box to the grid bounds.
  [[nodiscard]] Box clip(const Box& b) const;

 protected:
  /// `wrap_mask` bit i set = dimension i wraps; `concentration` terminals
  /// per router (>= 1).
  Topology(std::vector<int> extents, uint32_t wrap_mask, int concentration);
  Topology(const Topology&) = default;
  Topology& operator=(const Topology&) = default;

 private:
  std::vector<int> extents_;
  std::vector<long long> strides_;
  long long node_count_ = 0;
  uint32_t wrap_mask_ = 0;
  int concentration_ = 1;
};

/// The paper's substrate: k-ary n-D mesh, no wraparound.
class MeshTopology final : public Topology {
 public:
  /// k-ary n-D mesh: `dims` dimensions of radix `radix` each.
  MeshTopology(int dims, int radix);

  /// Mixed-radix mesh, extents[i] nodes along dimension i.
  explicit MeshTopology(std::vector<int> extents);

  [[nodiscard]] std::string name() const override { return "mesh"; }
  [[nodiscard]] std::unique_ptr<Topology> clone() const override {
    return std::make_unique<MeshTopology>(*this);
  }
};

/// k-ary n-D torus: wraparound channels in every dimension.
class TorusTopology final : public Topology {
 public:
  TorusTopology(int dims, int radix);
  explicit TorusTopology(std::vector<int> extents);

  [[nodiscard]] std::string name() const override { return "torus"; }
  [[nodiscard]] std::unique_ptr<Topology> clone() const override {
    return std::make_unique<TorusTopology>(*this);
  }
};

/// Concentrated mesh: `concentration` terminals share each router of a plain
/// mesh grid.  Traffic injection runs per terminal (concentration Bernoulli
/// draws per router per step) and loads normalize by terminal_count();
/// express channels are a possible later extension.
class CMeshTopology final : public Topology {
 public:
  CMeshTopology(int dims, int radix, int concentration);
  CMeshTopology(std::vector<int> extents, int concentration);

  [[nodiscard]] std::string name() const override { return "cmesh"; }
  [[nodiscard]] std::unique_ptr<Topology> clone() const override {
    return std::make_unique<CMeshTopology>(*this);
  }
};

}  // namespace lgfi
