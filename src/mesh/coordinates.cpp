#include "src/mesh/coordinates.h"

#include <cassert>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace lgfi {

Coord::Coord(int dims) : dims_(dims) {
  assert(dims >= 0 && dims <= kMaxDims);
}

Coord::Coord(std::initializer_list<int> components)
    : dims_(static_cast<int>(components.size())) {
  assert(components.size() <= static_cast<size_t>(kMaxDims));
  size_t i = 0;
  for (int v : components) c_[i++] = v;
}

Coord Coord::with(int dim, int value) const {
  assert(dim >= 0 && dim < dims_);
  Coord r = *this;
  r.c_[static_cast<size_t>(dim)] = value;
  return r;
}

Coord Coord::shifted(int dim, int delta) const {
  assert(dim >= 0 && dim < dims_);
  Coord r = *this;
  r.c_[static_cast<size_t>(dim)] += delta;
  return r;
}

bool operator<(const Coord& a, const Coord& b) {
  if (a.dims_ != b.dims_) return a.dims_ < b.dims_;
  return a.c_ < b.c_;
}

int manhattan_distance(const Coord& a, const Coord& b) {
  assert(a.size() == b.size());
  int d = 0;
  for (int i = 0; i < a.size(); ++i) d += std::abs(a[i] - b[i]);
  return d;
}

std::string Coord::to_string() const {
  std::ostringstream os;
  os << '(';
  for (int i = 0; i < dims_; ++i) {
    if (i > 0) os << ',';
    os << c_[static_cast<size_t>(i)];
  }
  os << ')';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Coord& c) {
  return os << c.to_string();
}

}  // namespace lgfi
