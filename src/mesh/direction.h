#pragma once
// Connecting directions in an n-D mesh.
//
// An interior node of an n-D mesh has degree 2n (Section 2.1): one positive
// and one negative direction per dimension.  The paper classifies outgoing
// directions relative to a destination as *preferred* (reduces distance) or
// *spare* (does not), and Algorithm 3's header records per-node sets of
// used directions — so directions need a dense integer encoding.

#include <cassert>
#include <cstdint>
#include <string>

#include "src/mesh/coordinates.h"

namespace lgfi {

/// A direction along one mesh dimension.  Encoded densely as
/// index = 2*dim + (positive ? 1 : 0), giving indices 0 .. 2n-1.
class Direction {
 public:
  Direction() = default;
  Direction(int dim, bool positive) : index_(static_cast<int8_t>(2 * dim + (positive ? 1 : 0))) {
    assert(dim >= 0 && dim < kMaxDims);
  }

  /// Reconstructs from a dense index in [0, 2n).
  static Direction from_index(int index) {
    assert(index >= 0 && index < 2 * kMaxDims);
    Direction d;
    d.index_ = static_cast<int8_t>(index);
    return d;
  }

  /// Sentinel for "no direction" (e.g. a message still at its source has no
  /// incoming direction).
  static Direction none() {
    Direction d;
    d.index_ = -1;
    return d;
  }

  [[nodiscard]] bool is_none() const { return index_ < 0; }
  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] int dim() const { return index_ >> 1; }
  [[nodiscard]] bool positive() const { return (index_ & 1) != 0; }
  [[nodiscard]] int sign() const { return positive() ? +1 : -1; }

  /// The direction back the way we came; Algorithm 3 ranks it last.
  [[nodiscard]] Direction opposite() const {
    assert(!is_none());
    Direction d;
    d.index_ = static_cast<int8_t>(index_ ^ 1);
    return d;
  }

  /// Applies this direction to a coordinate: one hop along dim() by sign().
  [[nodiscard]] Coord apply(const Coord& c) const {
    assert(!is_none());
    return c.shifted(dim(), sign());
  }

  [[nodiscard]] std::string to_string() const {
    if (is_none()) return "none";
    return std::string(positive() ? "+" : "-") + "d" + std::to_string(dim());
  }

  friend bool operator==(Direction a, Direction b) { return a.index_ == b.index_; }
  friend bool operator!=(Direction a, Direction b) { return a.index_ != b.index_; }
  friend bool operator<(Direction a, Direction b) { return a.index_ < b.index_; }

 private:
  int8_t index_ = -1;
};

/// Bit set over the <= 2n directions of a node; used for Algorithm 3's
/// per-node "list of used-directions" and for adjacency summaries.
class DirectionSet {
 public:
  DirectionSet() = default;

  void insert(Direction d) { bits_ |= bit(d); }
  void erase(Direction d) { bits_ &= static_cast<uint16_t>(~bit(d)); }
  [[nodiscard]] bool contains(Direction d) const { return (bits_ & bit(d)) != 0; }
  [[nodiscard]] bool empty() const { return bits_ == 0; }
  [[nodiscard]] int count() const { return __builtin_popcount(bits_); }
  void clear() { bits_ = 0; }
  [[nodiscard]] uint16_t raw() const { return bits_; }

  friend bool operator==(DirectionSet a, DirectionSet b) { return a.bits_ == b.bits_; }

 private:
  static uint16_t bit(Direction d) {
    assert(!d.is_none());
    return static_cast<uint16_t>(1u << d.index());
  }
  uint16_t bits_ = 0;
};

}  // namespace lgfi
