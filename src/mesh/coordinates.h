#pragma once
// Coordinates for k-ary n-dimensional meshes.
//
// The paper addresses every node u of an n-D mesh as (u_1, u_2, ..., u_n)
// with 0 <= u_i <= k-1 (Section 2.1).  `Coord` is a small value type holding
// such an address for a runtime-chosen dimensionality n (2 <= n <= kMaxDims).
// All mesh, fault-model and routing code is dimension-generic and works on
// these values; nothing in the library is specialized to 2-D or 3-D.

#include <array>
#include <cstdint>
#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>

namespace lgfi {

/// Maximum supported mesh dimensionality.  The paper treats n = 2, 3, ...;
/// eight dimensions is far beyond any mesh the analysis contemplates and
/// keeps Coord a small, trivially copyable value.
inline constexpr int kMaxDims = 8;

/// An n-dimensional integer coordinate (node address or offset).
///
/// Invariant: components at indices >= size() are zero, so equality and
/// hashing can operate on the whole array.
class Coord {
 public:
  Coord() = default;

  /// Zero coordinate of dimensionality `dims`.
  explicit Coord(int dims);

  /// Coordinate from an explicit component list, e.g. Coord{3, 5, 4}.
  Coord(std::initializer_list<int> components);

  [[nodiscard]] int size() const { return dims_; }

  [[nodiscard]] int operator[](int i) const { return c_[static_cast<size_t>(i)]; }
  [[nodiscard]] int& operator[](int i) { return c_[static_cast<size_t>(i)]; }

  /// Returns a copy with component `dim` replaced by `value`.
  [[nodiscard]] Coord with(int dim, int value) const;

  /// Returns a copy with component `dim` shifted by `delta`.
  [[nodiscard]] Coord shifted(int dim, int delta) const;

  friend bool operator==(const Coord& a, const Coord& b) {
    return a.dims_ == b.dims_ && a.c_ == b.c_;
  }
  friend bool operator!=(const Coord& a, const Coord& b) { return !(a == b); }

  /// Lexicographic order; usable as a map key and for deterministic sorting.
  friend bool operator<(const Coord& a, const Coord& b);

  /// Manhattan distance D(u, v) = sum_i |u_i - v_i|  (Section 2.1).
  friend int manhattan_distance(const Coord& a, const Coord& b);

  /// "(3, 5, 4)" — the notation the paper uses throughout.
  [[nodiscard]] std::string to_string() const;

 private:
  std::array<int, kMaxDims> c_{};
  int dims_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Coord& c);

/// FNV-1a style hash so Coord can key unordered containers.
struct CoordHash {
  size_t operator()(const Coord& c) const noexcept {
    uint64_t h = 1469598103934665603ull;
    for (int i = 0; i < c.size(); ++i) {
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(c[i]) + 0x9e3779b9u);
      h *= 1099511628211ull;
    }
    h ^= static_cast<uint64_t>(c.size());
    h *= 1099511628211ull;
    return static_cast<size_t>(h);
  }
};

}  // namespace lgfi
