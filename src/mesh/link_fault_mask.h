#pragma once
// Per-directed-channel (router-port) fault mask — the link-fault substrate
// of the fault-lifecycle subsystem (DESIGN.md §17).
//
// A link fault disables one directed channel (from, dir) without killing
// either endpoint node: routing must steer around it (direction policy,
// dimension-order, oracle BFS), arbitration must deny it, and the wormhole
// VC allocator must refuse to extend streams across it — but the
// block-construction layer never sees it.  A node joins a fault block only
// when it is node-dead; link faults steer routing, they do not label.
//
// Channels are directed: failing the physical link u <-> v means failing
// both (u, d) and (v, d.opposite()) — the lifecycle generators emit both
// events, and the mask itself stays strictly per-directed-channel so
// asymmetric port failures remain expressible.

#include <cstdint>
#include <vector>

#include "src/mesh/topology.h"

namespace lgfi {

class LinkFaultMask {
 public:
  LinkFaultMask() = default;
  explicit LinkFaultMask(const Topology& mesh)
      : dirs_(mesh.direction_count()),
        faulty_(static_cast<size_t>(mesh.node_count()) *
                    static_cast<size_t>(mesh.direction_count()),
                0) {}

  [[nodiscard]] bool any() const { return faulty_count_ > 0; }
  [[nodiscard]] long long faulty_count() const { return faulty_count_; }

  /// True if the directed channel leaving `from` along `dir` is dead.
  [[nodiscard]] bool faulty(NodeId from, Direction dir) const {
    if (faulty_count_ == 0) return false;  // common case: no link faults at all
    return faulty_[slot(from, dir)] != 0;
  }

  /// Marks the directed channel dead; bumps version() only on a real change.
  void fail(NodeId from, Direction dir) {
    uint8_t& f = faulty_[slot(from, dir)];
    if (f) return;
    f = 1;
    ++faulty_count_;
    ++version_;
  }

  /// Revives the directed channel; bumps version() only on a real change.
  void repair(NodeId from, Direction dir) {
    uint8_t& f = faulty_[slot(from, dir)];
    if (!f) return;
    f = 0;
    --faulty_count_;
    ++version_;
  }

  /// Monotone change counter, same contract as StatusField::version():
  /// consumers cache against it (oracle BFS trees, wormhole stream scans).
  [[nodiscard]] uint64_t version() const { return version_; }

  [[nodiscard]] long long memory_bytes() const {
    return static_cast<long long>(sizeof(*this)) +
           static_cast<long long>(faulty_.capacity() * sizeof(uint8_t));
  }

 private:
  [[nodiscard]] size_t slot(NodeId from, Direction dir) const {
    return static_cast<size_t>(from) * static_cast<size_t>(dirs_) +
           static_cast<size_t>(dir.index());
  }

  int dirs_ = 0;
  long long faulty_count_ = 0;
  uint64_t version_ = 0;
  std::vector<uint8_t> faulty_;
};

}  // namespace lgfi
