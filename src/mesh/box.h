#pragma once
// Axis-aligned integer boxes.
//
// Faulty blocks in the paper are rectangular regions [lo_1:hi_1, ...,
// lo_n:hi_n] (Section 2.2); their *envelope* — the adjacent nodes, edges and
// corners of Definitions 2 and 3 — is the box inflated by one in every
// dimension.  Box is the geometric workhorse shared by the fault model, the
// boundary model and the detour analysis.

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/mesh/coordinates.h"

namespace lgfi {

/// Closed integer box [lo_i, hi_i] per dimension.  Empty iff default
/// constructed (dims() == 0) or any hi_i < lo_i.
class Box {
 public:
  Box() = default;

  /// Box spanning exactly the two corner points (per-dimension min/max).
  Box(const Coord& a, const Coord& b);

  /// Degenerate box containing the single node `c`.
  static Box point(const Coord& c);

  [[nodiscard]] int dims() const { return lo_.size(); }
  [[nodiscard]] const Coord& lo() const { return lo_; }
  [[nodiscard]] const Coord& hi() const { return hi_; }
  [[nodiscard]] int lo(int dim) const { return lo_[dim]; }
  [[nodiscard]] int hi(int dim) const { return hi_[dim]; }

  [[nodiscard]] bool empty() const;

  /// Extent along `dim`: hi - lo + 1 node positions.
  [[nodiscard]] int extent(int dim) const { return hi_[dim] - lo_[dim] + 1; }

  /// Number of nodes contained (product of extents).
  [[nodiscard]] long long volume() const;

  /// The paper's e_max for this block: maximum edge length over dimensions
  /// (Table 1, "maximum length of edges of blocks").
  [[nodiscard]] int max_extent() const;

  [[nodiscard]] bool contains(const Coord& c) const;
  [[nodiscard]] bool contains(const Box& other) const;
  [[nodiscard]] bool intersects(const Box& other) const;
  [[nodiscard]] std::optional<Box> intersection(const Box& other) const;

  /// Smallest box containing both; used when accumulating block extents
  /// during the identification process.
  [[nodiscard]] Box hull(const Box& other) const;
  [[nodiscard]] Box hull(const Coord& c) const;

  /// Box inflated by `amount` in every direction — the block's envelope for
  /// amount == 1 (Definition 3's "one unit distance away").
  [[nodiscard]] Box inflated(int amount) const;

  /// True if `a` and `b` touch (Chebyshev distance <= 1), i.e. their unions
  /// would form one connected disabled region's bounding volume.
  [[nodiscard]] bool touches(const Box& other) const;

  /// Enumerates every coordinate inside the box in lexicographic order.
  [[nodiscard]] std::vector<Coord> all_coords() const;

  /// Calls fn(coord) for every node in the box (no allocation).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (empty()) return;
    Coord c = lo_;
    for (;;) {
      fn(static_cast<const Coord&>(c));
      int d = dims() - 1;
      while (d >= 0) {
        if (c[d] < hi_[d]) {
          ++c[d];
          break;
        }
        c[d] = lo_[d];
        --d;
      }
      if (d < 0) break;
    }
  }

  /// "[3:5, 5:6, 3:4]" — the block notation used in the paper.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Box& a, const Box& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }
  friend bool operator!=(const Box& a, const Box& b) { return !(a == b); }
  friend bool operator<(const Box& a, const Box& b) {
    if (a.lo_ != b.lo_) return a.lo_ < b.lo_;
    return a.hi_ < b.hi_;
  }

 private:
  Coord lo_;
  Coord hi_;
};

std::ostream& operator<<(std::ostream& os, const Box& b);

/// The box of all minimal (monotone) paths between u and v: every shortest
/// path from u to v stays inside Rect(u, v).  Central to the Theorem 2 safety
/// test and the critical-routing predicate.
Box minimal_path_box(const Coord& u, const Coord& v);

}  // namespace lgfi
