#pragma once
// Synchronous round engine.
//
// All fault-information constructions in the paper (block construction,
// identification, boundary construction) are round-based: "the
// disabled/enabled status propagation, any message header of
// identifying/identified propagation, block information propagation and
// canceling propagation advance one hop further at each round" (Section 5).
// A protocol exposes one round of that behaviour; the engine runs rounds to
// quiescence and reports how many were needed — those counts are the paper's
// a_i, b_i and c_i quantities.

#include <string>
#include <vector>

namespace lgfi {

/// One distributed protocol running over the mesh in synchronous rounds.
class SynchronousProtocol {
 public:
  virtual ~SynchronousProtocol() = default;

  /// Executes one round: deliver last round's messages, let every node act,
  /// queue this round's messages.  Returns true if anything happened (a
  /// message was delivered or sent, or some node changed state); false
  /// indicates the protocol is quiescent.
  virtual bool run_round() = 0;

  /// Human-readable protocol name for traces and diagnostics.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Result of driving a protocol to quiescence.
struct ConvergenceResult {
  int rounds = 0;        ///< rounds executed until the first quiet round
  bool converged = false;  ///< false if max_rounds was exhausted first
};

/// Runs `protocol` until a round reports no activity (or max_rounds).
/// The returned round count excludes the final quiet round, matching the
/// paper's convention that a_i counts rounds in which statuses changed.
ConvergenceResult run_until_quiescent(SynchronousProtocol& protocol, int max_rounds);

/// Runs several protocols in lockstep (one round each per call) until all are
/// simultaneously quiescent.  Used by the dynamic model where block
/// construction, identification and boundary construction proceed
/// hand-in-hand within each step's lambda rounds.
ConvergenceResult run_all_until_quiescent(const std::vector<SynchronousProtocol*>& protocols,
                                          int max_rounds);

}  // namespace lgfi
