#pragma once
// Per-channel link arbitration for the contention-aware traffic engine.
//
// The Figure 7 idealization lets every in-flight message advance one hop per
// step regardless of what other messages do.  Real interconnects serialize:
// a directed channel u -> v carries at most one message per step.
// LinkArbiter enforces that rule for the step pipeline (DESIGN.md §8): each
// step, messages submit traversal requests in per-node FIFO order;
// arbitrate() grants exactly one request per directed channel and the losers
// stall where they are until a later step.
//
// Determinism: the winner of a contended channel is picked by a per-channel
// round-robin cursor over the submission order.  The cursor advances only
// when the channel was actually contended, so uncontended traffic never
// perturbs it, and the whole grant sequence is a pure function of the
// request sequence — independent of thread count, hash order, or wall time.

#include <cstdint>
#include <vector>

#include "src/mesh/direction.h"
#include "src/mesh/link_fault_mask.h"
#include "src/mesh/topology.h"

namespace lgfi {

class LinkArbiter {
 public:
  explicit LinkArbiter(const Topology& mesh);

  /// Clears the step's requests.  Grant history — the round-robin cursors —
  /// persists across steps; that persistence is what makes repeated
  /// contention on the same channel rotate through the contenders.
  void begin_step();

  /// Submits a request to traverse the directed channel out of `from` along
  /// `dir`.  Returns a ticket to query with granted() after arbitrate().
  int request(NodeId from, Direction dir);

  /// Resolves the step: per requested channel, the requester at the
  /// channel's cursor position (counting in submission order) wins; everyone
  /// else stalls.  Requests on a link-faulted channel are denied outright —
  /// every contender stalls and the round-robin cursor stays put, so the
  /// rotation resumes where it left off once the link repairs.
  void arbitrate();

  /// Attaches the directed-channel fault mask (DESIGN.md §17); null (the
  /// default) means no link faults exist.  The mask outlives the arbiter.
  void set_link_faults(const LinkFaultMask* links) { links_ = links; }

  [[nodiscard]] bool granted(int ticket) const {
    return granted_[static_cast<size_t>(ticket)] != 0;
  }

  [[nodiscard]] long long requests_this_step() const {
    return static_cast<long long>(request_channel_.size());
  }
  [[nodiscard]] long long stalled_this_step() const { return stalled_this_step_; }
  [[nodiscard]] long long total_stalled() const { return total_stalled_; }

 private:
  [[nodiscard]] size_t channel_of(NodeId from, Direction dir) const {
    return static_cast<size_t>(from) * static_cast<size_t>(dirs_) +
           static_cast<size_t>(dir.index());
  }

  int dirs_;
  const LinkFaultMask* links_ = nullptr;
  std::vector<uint32_t> cursor_;        ///< per-channel round-robin position
  std::vector<int32_t> request_channel_;  ///< ticket -> channel (this step)
  std::vector<uint8_t> granted_;          ///< ticket -> outcome (this step)
  long long stalled_this_step_ = 0;
  long long total_stalled_ = 0;
};

}  // namespace lgfi
