#include "src/sim/wormhole_switching.h"

#include <algorithm>
#include <stdexcept>

#include "src/sim/link_arbiter.h"

namespace lgfi {

namespace {
void check_range(const char* key, int value, int lo, int hi) {
  if (value < lo || value > hi)
    throw ConfigError(std::string(key) + "=" + std::to_string(value) + " out of range [" +
                      std::to_string(lo) + ", " + std::to_string(hi) + "]");
}
}  // namespace

WormholeSwitching::WormholeSwitching(const Topology& mesh, const SwitchingOptions& options)
    : mesh_(&mesh), options_(options), dirs_(mesh.direction_count()) {
  check_range("num_vcs", options_.num_vcs, 1, 64);
  check_range("vc_buffer_depth", options_.vc_buffer_depth, 1, 4096);
  check_range("flits_per_packet", options_.flits_per_packet, 1, 4096);
  check_range("vc_stall_limit", options_.vc_stall_limit, 1, 1 << 20);
  vc_owner_.assign(static_cast<size_t>(mesh.node_count()) * static_cast<size_t>(dirs_) *
                       static_cast<size_t>(options_.num_vcs),
                   -1);
  fifo_.resize(static_cast<size_t>(mesh.node_count()));
  credit_stalls_vc_.assign(static_cast<size_t>(options_.num_vcs), 0);
  switch_stalls_vc_.assign(static_cast<size_t>(options_.num_vcs), 0);
}

int WormholeSwitching::free_vc(int32_t channel) const {
  const size_t base = static_cast<size_t>(channel) * static_cast<size_t>(options_.num_vcs);
  for (int v = 0; v < options_.num_vcs; ++v)
    if (vc_owner_[base + static_cast<size_t>(v)] < 0) return v;
  return -1;
}

void WormholeSwitching::reserve(Hop& hop, int vc, int id) {
  hop.vc = static_cast<int16_t>(vc);
  vc_owner_[static_cast<size_t>(hop.channel) * static_cast<size_t>(options_.num_vcs) +
            static_cast<size_t>(vc)] = id;
}

void WormholeSwitching::release_hop(Hop& hop) {
  vc_owner_[static_cast<size_t>(hop.channel) * static_cast<size_t>(options_.num_vcs) +
            static_cast<size_t>(hop.vc)] = -1;
  hop.vc = -1;
}

void WormholeSwitching::release_all(Worm& w) {
  if (w.streaming) {
    for (int i = w.tail; i < w.frontier; ++i) {
      Hop& hop = w.path[static_cast<size_t>(i)];
      release_hop(hop);
      // Only a deadlock-recovery drop releases buffers that still hold
      // flits; the dropped worm's flits are discarded with the circuit.
      hop.occupancy = 0;
    }
    w.tail = w.frontier;
  } else {
    for (size_t i = static_cast<size_t>(w.held_from); i < w.path.size(); ++i)
      release_hop(w.path[i]);
    w.held_from = static_cast<int>(w.path.size());
  }
}

void WormholeSwitching::remove_from_fifo(NodeId node, int id) {
  auto& q = fifo_[static_cast<size_t>(node)];
  q.erase(std::find(q.begin(), q.end(), id));
}

void WormholeSwitching::add_packet(int id, NodeId source) {
  if (id != static_cast<int>(worms_.size()))
    throw std::logic_error("wormhole: packet ids must be dense and launch-ordered");
  Worm w;
  w.node = source;
  w.at_source = options_.flits_per_packet - 1;  // the head flit is the probe
  worms_.push_back(std::move(w));
  fifo_[static_cast<size_t>(source)].push_back(id);
}

void WormholeSwitching::advance_step(SwitchingHost& host, LinkArbiter* arbiter) {
  LinkArbiter& arb = *arbiter;
  arb.begin_step();

  // Phase 0: ejection — the destination sinks one flit per streaming worm
  // per step.  Runs first so "start-of-step occupancy" below is
  // post-ejection: the frontmost buffer always drains before new arrivals
  // are considered, which is what makes full pipelining possible at
  // vc_buffer_depth >= 2.
  for (const int id : streams_) {
    Worm& w = worms_[static_cast<size_t>(id)];
    if (w.path.empty()) {
      // Degenerate source == destination packet: flits eject directly.
      if (w.at_source > 0) {
        --w.at_source;
        ++w.ejected;
      }
    } else if (w.frontier == static_cast<int>(w.path.size()) && w.path.back().occupancy > 0) {
      --w.path.back().occupancy;
      ++w.ejected;
    }
  }

  // Phase 1: probe decisions (nodes ascending, per-node FIFO order — the §8
  // service order), producing switch requests.  Decisions are pure w.r.t.
  // the header, so a blocked probe simply re-decides next step.
  enum class ReqKind : uint8_t { kProbeForward, kProbeBacktrack, kFlit, kAcquireFlit };
  struct Req {
    int ticket;
    int id;
    ReqKind kind;
    SwitchDecision decision;  // probe kinds only
    int hop;                  // flit kinds: index of the hop being crossed
    int vc_hint;              // kAcquireFlit: the VC seen free at request time
    bool forced;              // kProbeBacktrack: the §10 escape, not the router
  };
  std::vector<Req> reqs;
  std::vector<std::pair<NodeId, int>> leaving_fifo;
  std::vector<int> new_streams;
  const NodeId nodes = static_cast<NodeId>(fifo_.size());
  for (NodeId node = 0; node < nodes; ++node) {
    for (const int id : fifo_[static_cast<size_t>(node)]) {
      Worm& w = worms_[static_cast<size_t>(id)];
      const SwitchDecision d = host.decide(id);
      switch (d.action) {
        case SwitchAction::kDeliver:
          // Head arrival: the probe ejects as the packet's first flit and
          // sheds its setup holds; the body streams as a data worm from the
          // next step on.
          host.record_head_arrival(id);
          release_all(w);
          ++w.ejected;
          if (w.at_source == 0) {
            // Single-flit packet: the head is also the tail.
            host.finish(id, PacketOutcome::kDelivered);
            w.done = true;
          } else {
            w.streaming = true;
            w.tail = 0;
            w.frontier = 0;
            new_streams.push_back(id);
          }
          leaving_fifo.emplace_back(node, id);
          break;
        case SwitchAction::kUnreachable:
          release_all(w);
          host.finish(id, PacketOutcome::kUnreachable);
          w.done = true;
          leaving_fifo.emplace_back(node, id);
          break;
        case SwitchAction::kForward: {
          // A link-faulted outgoing channel can accept no probe: treat it
          // exactly like VC starvation (stall, then the §10 escape) — the
          // router's next decision sees the mask and steers elsewhere.
          const auto channel = static_cast<int32_t>(channel_of(node, d.direction));
          if (!host.link_faulty(node, d.direction) && free_vc(channel) >= 0) {
            reqs.push_back({arb.request(node, d.direction), id, ReqKind::kProbeForward, d, -1,
                            -1, false});
          } else {
            // VC allocation failed.  After vc_stall_limit consecutive
            // failures a holding probe backtracks to shed its newest
            // reservation (the §10 escape); with nothing to shed it waits.
            ++vc_alloc_stalls_;
            ++w.vc_stall;
            if (w.vc_stall >= options_.vc_stall_limit && !d.back.is_none()) {
              SwitchDecision escape;
              escape.action = SwitchAction::kBacktrack;
              escape.back = d.back;
              // The abandoned channel is healthy (VC-starved, not faulty):
              // un-mark it so the escape never exhausts the routing search.
              escape.unmark_on_backtrack = true;
              reqs.push_back({arb.request(node, d.back), id, ReqKind::kProbeBacktrack, escape,
                              -1, -1, true});
            } else {
              host.count_stall(id);
            }
          }
          break;
        }
        case SwitchAction::kBacktrack:
          // A backtrack traverses the reverse channel out of the current
          // node; it contends for the switch like any other traversal.
          reqs.push_back(
              {arb.request(node, d.back), id, ReqKind::kProbeBacktrack, d, -1, -1, false});
          break;
      }
    }
  }
  for (const auto& [node, id] : leaving_fifo) remove_from_fifo(node, id);

  // Phase 2: data-flit requests along recorded paths (streaming worms in
  // head-arrival order), against start-of-step occupancies.  Flits occupy
  // the held hop range [tail, frontier); the lead flit extends the frontier
  // by acquiring the next hop's VC — the worm slides along its path like
  // wormhole data, never holding more than its own span.
  const auto request_channel = [&](int32_t channel) {
    return arb.request(static_cast<NodeId>(channel / dirs_),
                       Direction::from_index(channel % dirs_));
  };
  const int depth = options_.vc_buffer_depth;
  for (const int id : streams_) {
    Worm& w = worms_[static_cast<size_t>(id)];
    if (w.done || w.path.empty()) continue;
    const int len = static_cast<int>(w.path.size());
    bool acquisition_blocked = false;
    if (w.at_source > 0) {
      Hop& hop0 = w.path[0];
      if (w.frontier == 0) {
        const int vc = free_vc(hop0.channel);
        if (vc >= 0) {
          reqs.push_back({request_channel(hop0.channel), id, ReqKind::kAcquireFlit,
                          SwitchDecision{}, 0, vc, false});
        } else {
          acquisition_blocked = true;
        }
      } else if (hop0.occupancy < depth) {
        reqs.push_back({request_channel(hop0.channel), id, ReqKind::kFlit, SwitchDecision{},
                        0, -1, false});
      } else {
        ++credit_stalls_vc_[static_cast<size_t>(hop0.vc)];
      }
    }
    for (int i = w.tail + 1; i < len; ++i) {
      if (i - 1 >= w.frontier) break;  // no flits live beyond the frontier
      if (w.path[static_cast<size_t>(i - 1)].occupancy == 0) continue;
      Hop& hop = w.path[static_cast<size_t>(i)];
      if (i < w.frontier) {
        if (hop.occupancy < depth) {
          reqs.push_back({request_channel(hop.channel), id, ReqKind::kFlit, SwitchDecision{},
                          i, -1, false});
        } else {
          ++credit_stalls_vc_[static_cast<size_t>(hop.vc)];
        }
      } else {  // i == frontier: the lead flit extends the worm
        const int vc = free_vc(hop.channel);
        if (vc >= 0) {
          reqs.push_back({request_channel(hop.channel), id, ReqKind::kAcquireFlit,
                          SwitchDecision{}, i, vc, false});
        } else {
          acquisition_blocked = true;
        }
      }
    }
    if (acquisition_blocked) {
      ++vc_alloc_stalls_;
      ++w.stream_stall;  // the Phase 4 drop rule watches this
    }
  }

  arb.arbitrate();

  // Phase 3: commit in submission order.  Probe winners move their header
  // one hop (reserving / releasing VCs); flit winners move one flit between
  // adjacent buffers.  All feasibility checks were taken on start-of-step
  // state, and each channel grants at most once, so commit order cannot
  // invalidate them.
  int flit_moves_this_step = 0;
  const int window = options_.flits_per_packet;  // the worm's physical extent
  for (const Req& r : reqs) {
    Worm& w = worms_[static_cast<size_t>(r.id)];
    if (!arb.granted(r.ticket)) {
      if (r.kind == ReqKind::kProbeForward || r.kind == ReqKind::kProbeBacktrack) {
        host.count_stall(r.id);
      } else {
        const Hop& hop = w.path[static_cast<size_t>(r.hop)];
        const int vc = hop.vc >= 0 ? hop.vc : r.vc_hint;
        ++switch_stalls_vc_[static_cast<size_t>(vc)];
      }
      continue;
    }
    switch (r.kind) {
      case ReqKind::kProbeForward: {
        // One grant per channel, so a VC seen free at request time is still
        // free here (earlier commits can only have *released* VCs on this
        // channel).
        const auto channel = static_cast<int32_t>(channel_of(w.node, r.decision.direction));
        const int vc = free_vc(channel);
        if (vc < 0) {  // defensive; unreachable by the argument above
          host.count_stall(r.id);
          break;
        }
        const MoveResult m = host.commit_move(r.id, r.decision);
        w.vc_stall = 0;
        Hop hop;
        hop.channel = channel;
        hop.to_node = m.node;
        w.path.push_back(hop);
        reserve(w.path.back(), vc, r.id);
        // Slide the setup window: the probe holds at most `window` hops.
        if (static_cast<int>(w.path.size()) - w.held_from > window) {
          release_hop(w.path[static_cast<size_t>(w.held_from)]);
          ++w.held_from;
        }
        remove_from_fifo(w.node, r.id);
        w.node = m.node;
        if (m.finished) {
          release_all(w);
          w.done = true;
        } else {
          fifo_[static_cast<size_t>(m.node)].push_back(r.id);
        }
        break;
      }
      case ReqKind::kProbeBacktrack: {
        if (r.forced) ++forced_backtracks_;
        const MoveResult m = host.commit_move(r.id, r.decision);
        w.vc_stall = 0;
        if (static_cast<int>(w.path.size()) - 1 >= w.held_from) release_hop(w.path.back());
        w.path.pop_back();
        if (w.held_from > static_cast<int>(w.path.size()))
          w.held_from = static_cast<int>(w.path.size());
        remove_from_fifo(w.node, r.id);
        w.node = m.node;
        if (m.finished) {
          release_all(w);
          w.done = true;
        } else {
          fifo_[static_cast<size_t>(m.node)].push_back(r.id);
        }
        break;
      }
      case ReqKind::kAcquireFlit: {
        Hop& hop = w.path[static_cast<size_t>(r.hop)];
        const int vc = free_vc(hop.channel);
        if (vc < 0) {  // defensive; see kProbeForward
          ++switch_stalls_vc_[static_cast<size_t>(r.vc_hint)];
          break;
        }
        reserve(hop, vc, r.id);
        w.frontier = r.hop + 1;
        w.stream_stall = 0;
        if (r.hop == 0) {
          --w.at_source;
        } else {
          --w.path[static_cast<size_t>(r.hop) - 1].occupancy;
        }
        ++hop.occupancy;
        ++flit_moves_this_step;
        break;
      }
      case ReqKind::kFlit:
        if (r.hop == 0) {
          --w.at_source;
        } else {
          --w.path[static_cast<size_t>(r.hop) - 1].occupancy;
        }
        ++w.path[static_cast<size_t>(r.hop)].occupancy;
        ++flit_moves_this_step;
        break;
    }
  }
  if (flit_moves_this_step > 0) {
    flit_moves_ += flit_moves_this_step;
    host.count_flit_moves(flit_moves_this_step);
  }

  // Phase 4: per-worm maintenance — fault teardown, deadlock-recovery drop,
  // circuit teardown behind the tail, and delivery once the tail flit has
  // ejected.
  const auto stream_hit_by_fault = [&](const Worm& w) {
    // Setup probes re-decide against the live field every step; an
    // established circuit must notice for itself when a node it still
    // needs — the source (flits waiting), any remaining hop's receiving
    // node, or the degenerate src==dst node — dies mid-stream.
    if (w.path.empty()) return w.at_source > 0 && host.node_faulty(w.node);
    if (w.at_source > 0 &&
        host.node_faulty(static_cast<NodeId>(w.path[0].channel / dirs_)))
      return true;
    for (size_t i = static_cast<size_t>(w.tail); i < w.path.size(); ++i) {
      if (host.node_faulty(w.path[i].to_node)) return true;
      // A link fault severs an established circuit exactly like a node
      // death: the channel can carry no further flits of this worm.
      if (host.link_faulty(static_cast<NodeId>(w.path[i].channel / dirs_),
                           Direction::from_index(w.path[i].channel % dirs_)))
        return true;
    }
    return false;
  };
  // The scan is O(remaining path) per worm, so gate it on the field version:
  // a worm is scanned on its first streaming step (its path may predate a
  // change) and again whenever the field actually changes.
  const uint64_t field_version = host.field_version();
  const bool field_changed = field_version != seen_field_version_;
  seen_field_version_ = field_version;
  size_t keep = 0;
  for (size_t s = 0; s < streams_.size(); ++s) {
    const int id = streams_[s];
    Worm& w = worms_[static_cast<size_t>(id)];
    if (w.done) continue;
    const bool scan = field_changed || !w.fault_checked;
    w.fault_checked = true;
    if (scan && stream_hit_by_fault(w)) {
      // The worm's flits are lost with the dead node: tear the circuit down
      // and report the packet unreachable (DESIGN.md §10).
      ++fault_drops_;
      release_all(w);
      host.finish(id, PacketOutcome::kUnreachable);
      w.done = true;
      continue;
    }
    if (w.stream_stall >= 4 * options_.vc_stall_limit) {
      // The lead flit has been VC-starved long enough to assume a resource
      // cycle: drop the packet and free everything it holds (DESIGN.md §10;
      // reported as budget exhaustion).
      ++deadlock_drops_;
      release_all(w);
      host.finish(id, PacketOutcome::kBudgetExhausted);
      w.done = true;
      continue;
    }
    while (w.at_source == 0 && w.tail < w.frontier &&
           w.path[static_cast<size_t>(w.tail)].occupancy == 0) {
      release_hop(w.path[static_cast<size_t>(w.tail)]);
      ++w.tail;
    }
    if (w.ejected == options_.flits_per_packet) {
      host.finish(id, PacketOutcome::kDelivered);
      w.done = true;
      continue;
    }
    streams_[keep++] = id;
  }
  streams_.resize(keep);
  streams_.insert(streams_.end(), new_streams.begin(), new_streams.end());
}

std::vector<std::pair<std::string, double>> WormholeSwitching::metrics() const {
  std::vector<std::pair<std::string, double>> out;
  out.emplace_back("flit_moves", static_cast<double>(flit_moves_));
  out.emplace_back("vc_alloc_stalls", static_cast<double>(vc_alloc_stalls_));
  out.emplace_back("forced_backtracks", static_cast<double>(forced_backtracks_));
  out.emplace_back("deadlock_drops", static_cast<double>(deadlock_drops_));
  out.emplace_back("fault_drops", static_cast<double>(fault_drops_));
  for (int v = 0; v < options_.num_vcs; ++v) {
    out.emplace_back("credit_stalls_vc" + std::to_string(v),
                     static_cast<double>(credit_stalls_vc_[static_cast<size_t>(v)]));
    out.emplace_back("switch_stalls_vc" + std::to_string(v),
                     static_cast<double>(switch_stalls_vc_[static_cast<size_t>(v)]));
  }
  return out;
}

int WormholeSwitching::reserved_vc_count() const {
  int n = 0;
  for (const int32_t owner : vc_owner_)
    if (owner >= 0) ++n;
  return n;
}

WormholeSwitching::WormView WormholeSwitching::worm(int id) const {
  const Worm& w = worms_.at(static_cast<size_t>(id));
  WormView v;
  v.streaming = w.streaming;
  v.done = w.done;
  v.flits_at_source = w.at_source;
  v.flits_ejected = w.ejected;
  for (const Hop& hop : w.path) {
    if (hop.vc >= 0) ++v.held_vcs;
    v.buffered_flits += hop.occupancy;
  }
  return v;
}

void WormholeSwitching::validate() const {
  const auto fail = [](const std::string& what) { throw std::logic_error("wormhole: " + what); };
  std::vector<long long> owned(worms_.size(), 0);
  for (size_t slot = 0; slot < vc_owner_.size(); ++slot) {
    const int32_t owner = vc_owner_[slot];
    if (owner < 0) continue;
    if (owner >= static_cast<int32_t>(worms_.size())) fail("reservation by unknown worm");
    ++owned[static_cast<size_t>(owner)];
  }
  for (size_t id = 0; id < worms_.size(); ++id) {
    const Worm& w = worms_[id];
    const int len = static_cast<int>(w.path.size());
    long long buffered = 0;
    long long held = 0;
    for (int i = 0; i < len; ++i) {
      const Hop& hop = w.path[static_cast<size_t>(i)];
      if (hop.occupancy < 0) fail("credit underflow (negative occupancy)");
      if (hop.occupancy > options_.vc_buffer_depth)
        fail("credit overflow (occupancy beyond vc_buffer_depth)");
      const bool should_hold = w.done ? false
                               : w.streaming ? (i >= w.tail && i < w.frontier)
                                             : i >= w.held_from;
      if (should_hold != (hop.vc >= 0))
        fail(should_hold ? "hop inside the held range has no VC"
                         : "hop outside the held range still holds a VC");
      if (hop.vc >= 0) {
        ++held;
        const size_t slot =
            static_cast<size_t>(hop.channel) * static_cast<size_t>(options_.num_vcs) +
            static_cast<size_t>(hop.vc);
        if (vc_owner_[slot] != static_cast<int32_t>(id))
          fail("reserved hop not owned by its worm");
      }
      if (hop.occupancy > 0 && hop.vc < 0) fail("flits buffered on an unheld hop");
      buffered += hop.occupancy;
    }
    if (owned[id] != held) fail("reservation count does not match held hops");
    if (w.done) continue;
    if (!w.streaming && buffered != 0) fail("setup worm has flits in buffers");
    // Flit conservation: setup worms hold F-1 flits at the source (the head
    // is the probe); streaming worms account for every flit exactly once.
    const long long total = w.at_source + buffered + w.ejected;
    const long long expect =
        w.streaming ? options_.flits_per_packet : options_.flits_per_packet - 1;
    if (total != expect) fail("flit conservation violated");
  }
  // Every active setup worm sits in exactly one node FIFO, at its node.
  std::vector<int> residency(worms_.size(), 0);
  for (size_t node = 0; node < fifo_.size(); ++node) {
    for (const int id : fifo_[node]) {
      ++residency[static_cast<size_t>(id)];
      if (worms_[static_cast<size_t>(id)].node != static_cast<NodeId>(node))
        fail("fifo residency disagrees with worm node");
    }
  }
  for (size_t id = 0; id < worms_.size(); ++id) {
    const Worm& w = worms_[id];
    const int expect = (w.done || w.streaming) ? 0 : 1;
    if (residency[id] != expect) fail("fifo residency count wrong");
  }
}

}  // namespace lgfi
