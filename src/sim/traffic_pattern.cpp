#include "src/sim/traffic_pattern.h"

#include <algorithm>
#include <numeric>

namespace lgfi {

Coord mesh_center(const Topology& mesh) {
  Coord c(mesh.dims());
  for (int d = 0; d < mesh.dims(); ++d) c[d] = mesh.extent(d) / 2;
  return c;
}

TrafficPatternRegistry& TrafficPatternRegistry::instance() {
  static TrafficPatternRegistry registry;
  return registry;
}

void TrafficPatternRegistry::add(const std::string& name, TrafficPatternFactory factory,
                                 ComponentMeta meta) {
  registry_.add(name, std::move(factory), std::move(meta));
}

bool TrafficPatternRegistry::contains(const std::string& name) const {
  return registry_.contains(name);
}

std::vector<std::string> TrafficPatternRegistry::names() const { return registry_.names(); }

std::unique_ptr<TrafficPattern> TrafficPatternRegistry::make(const std::string& name,
                                                             const Topology& mesh,
                                                             const Config& config,
                                                             Rng& rng) const {
  return registry_.require(name)(mesh, config, rng);
}

TrafficPatternRegistrar::TrafficPatternRegistrar(const std::string& name,
                                                 TrafficPatternFactory factory,
                                                 ComponentMeta meta) {
  TrafficPatternRegistry::instance().add(name, std::move(factory), std::move(meta));
}

std::unique_ptr<TrafficPattern> make_traffic_pattern(const std::string& name,
                                                     const Topology& mesh,
                                                     const Config& config, Rng& rng) {
  return TrafficPatternRegistry::instance().make(name, mesh, config, rng);
}

// ---------------------------------------------------------------------------
// Built-in patterns.  Registered in the same translation unit as the
// registry so a static-library link can never strip them.
// ---------------------------------------------------------------------------
namespace {

class UniformPattern final : public TrafficPattern {
 public:
  explicit UniformPattern(const Topology& mesh) : mesh_(&mesh) {}

  Coord destination(const Coord& source, Rng& rng) override {
    if (mesh_->node_count() <= 1) return source;
    for (;;) {
      const Coord d = mesh_->coord_of(
          static_cast<NodeId>(rng.next_below(static_cast<uint64_t>(mesh_->node_count()))));
      if (d != source) return d;
    }
  }

  std::string name() const override { return "uniform"; }

 private:
  const Topology* mesh_;
};

class TransposePattern final : public TrafficPattern {
 public:
  explicit TransposePattern(const Topology& mesh) : mesh_(&mesh) {
    for (int d = 0; d < mesh.dims(); ++d)
      if (mesh.extent(d) != mesh.extent(0))
        throw ConfigError("traffic=transpose needs equal extents in every dimension");
  }

  Coord destination(const Coord& source, Rng&) override {
    // The n-D generalization of (x, y) -> (y, x): coordinates rotated one
    // dimension.  Nodes on the rotation's fixed set map to themselves and do
    // not inject.
    Coord d(mesh_->dims());
    for (int i = 0; i < mesh_->dims(); ++i) d[i] = source[(i + 1) % mesh_->dims()];
    return d;
  }

  std::string name() const override { return "transpose"; }

 private:
  const Topology* mesh_;
};

class BitComplementPattern final : public TrafficPattern {
 public:
  explicit BitComplementPattern(const Topology& mesh) : mesh_(&mesh) {}

  Coord destination(const Coord& source, Rng&) override {
    Coord d(mesh_->dims());
    for (int i = 0; i < mesh_->dims(); ++i) d[i] = mesh_->extent(i) - 1 - source[i];
    return d;
  }

  std::string name() const override { return "bit_complement"; }

 private:
  const Topology* mesh_;
};

class HotspotPattern final : public TrafficPattern {
 public:
  HotspotPattern(const Topology& mesh, double frac)
      : uniform_(mesh), hotspot_(mesh_center(mesh)), frac_(frac) {
    if (frac < 0.0 || frac > 1.0)
      throw ConfigError("hotspot_frac must be in [0, 1]");
  }

  Coord destination(const Coord& source, Rng& rng) override {
    // The hotspot node itself (and the draw deciding hot vs background) still
    // consumes rng, keeping the stream layout independent of node position.
    const bool hot = rng.bernoulli(frac_);
    if (hot && source != hotspot_) return hotspot_;
    return uniform_.destination(source, rng);
  }

  std::string name() const override { return "hotspot"; }

 private:
  UniformPattern uniform_;
  Coord hotspot_;
  double frac_;
};

class PermutationPattern final : public TrafficPattern {
 public:
  PermutationPattern(const Topology& mesh, Rng& rng) : mesh_(&mesh) {
    perm_.resize(static_cast<size_t>(mesh.node_count()));
    std::iota(perm_.begin(), perm_.end(), 0);
    rng.shuffle(perm_);
  }

  Coord destination(const Coord& source, Rng&) override {
    return mesh_->coord_of(perm_[static_cast<size_t>(mesh_->index_of(source))]);
  }

  std::string name() const override { return "permutation"; }

 private:
  const Topology* mesh_;
  std::vector<NodeId> perm_;
};

const TrafficPatternRegistrar kUniform(
    "uniform",
    [](const Topology& mesh, const Config&, Rng&) {
      return std::make_unique<UniformPattern>(mesh);
    },
    {"destination uniform over all nodes != source", {}});

const TrafficPatternRegistrar kTranspose(
    "transpose",
    [](const Topology& mesh, const Config&, Rng&) {
      return std::make_unique<TransposePattern>(mesh);
    },
    {"coordinates rotated one dimension (2-D: (x,y) -> (y,x))", {}});

const TrafficPatternRegistrar kBitComplement(
    "bit_complement",
    [](const Topology& mesh, const Config&, Rng&) {
      return std::make_unique<BitComplementPattern>(mesh);
    },
    {"destination mirrored through the mesh center", {}});

const TrafficPatternRegistrar kHotspot(
    "hotspot",
    [](const Topology& mesh, const Config& cfg, Rng&) {
      const double frac =
          cfg.defined("hotspot_frac") ? cfg.get_double("hotspot_frac") : kDefaultHotspotFrac;
      return std::make_unique<HotspotPattern>(mesh, frac);
    },
    {"fraction hotspot_frac targets the center node, rest uniform", {"hotspot_frac"}});

const TrafficPatternRegistrar kPermutation(
    "permutation",
    [](const Topology& mesh, const Config&, Rng& rng) {
      return std::make_unique<PermutationPattern>(mesh, rng);
    },
    {"one fixed random node permutation per workload", {}});

}  // namespace

}  // namespace lgfi
