#include "src/sim/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace lgfi {

// Shared between the submitting thread and the workers; shared_ptr ownership
// guarantees a lagging worker that wakes up after the submitter has already
// returned still sees live state (it will find next >= count and do nothing).
struct ThreadPool::TaskState {
  std::function<void(int64_t)> fn;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
  int64_t count = 0;
};

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<TaskState> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      task = task_;
    }
    if (!task) continue;
    for (;;) {
      const int64_t i = task->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= task->count) break;
      task->fn(i);
      if (task->done.fetch_add(1, std::memory_order_acq_rel) + 1 == task->count) {
        std::lock_guard<std::mutex> lock(mu_);
        cv_done_.notify_all();
      }
    }
  }
}

void ThreadPool::parallel_for(int64_t count, const std::function<void(int64_t)>& fn) {
  if (count <= 0) return;
  if (count == 1 || workers_.empty()) {
    for (int64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  auto task = std::make_shared<TaskState>();
  task->fn = fn;
  task->count = count;
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = task;
    ++generation_;
  }
  cv_work_.notify_all();
  // The calling thread participates too.
  for (;;) {
    const int64_t i = task->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) break;
    fn(i);
    task->done.fetch_add(1, std::memory_order_acq_rel);
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return task->done.load(std::memory_order_acquire) >= count; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(int64_t count, const std::function<void(int64_t)>& fn) {
  ThreadPool::global().parallel_for(count, fn);
}

}  // namespace lgfi
