#include "src/sim/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace lgfi {

// Shared between the submitting thread and the workers; shared_ptr ownership
// guarantees a lagging worker that wakes up after the submitter has already
// returned still sees live state (it will find next >= count and do nothing).
struct ThreadPool::TaskState {
  std::function<void(int64_t)> fn;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
  int64_t count = 0;
};

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<TaskState> task;
    {
      MutexLock lock(mu_);
      // Explicit predicate loop (not the lambda overload) so the guarded
      // reads stay inside this function for the thread-safety analysis.
      while (!stopping_ && generation_ == seen) cv_work_.wait(lock);
      if (stopping_) return;
      seen = generation_;
      task = task_;
    }
    if (!task) continue;
    for (;;) {
      const int64_t i = task->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= task->count) break;
      task->fn(i);
      if (task->done.fetch_add(1, std::memory_order_acq_rel) + 1 == task->count) {
        MutexLock lock(mu_);
        cv_done_.notify_all();
      }
    }
  }
}

void ThreadPool::parallel_for(int64_t count, const std::function<void(int64_t)>& fn) {
  if (count <= 0) return;
  if (count == 1 || workers_.empty()) {
    for (int64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  auto task = std::make_shared<TaskState>();
  task->fn = fn;
  task->count = count;
  {
    MutexLock lock(mu_);
    task_ = task;
    ++generation_;
  }
  cv_work_.notify_all();
  // The calling thread participates too.
  for (;;) {
    const int64_t i = task->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) break;
    fn(i);
    task->done.fetch_add(1, std::memory_order_acq_rel);
  }
  MutexLock lock(mu_);
  // The predicate reads only TaskState atomics, so the lambda overload of
  // wait would be analysis-clean too; the explicit loop keeps both waits in
  // one style.
  while (task->done.load(std::memory_order_acquire) < count) cv_done_.wait(lock);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(int64_t count, const std::function<void(int64_t)>& fn) {
  ThreadPool::global().parallel_for(count, fn);
}

}  // namespace lgfi
