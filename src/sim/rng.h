#pragma once
// Deterministic random-number generation.
//
// Every stochastic experiment in the repository (random fault placement,
// random source/destination pairs, dynamic fault schedules) draws from this
// xoshiro256** generator seeded through SplitMix64.  Streams can be forked
// per replication / per thread so parallel sweeps remain bit-reproducible
// regardless of scheduling.

#include <cstdint>
#include <cstddef>
#include <vector>

namespace lgfi {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Independent child stream; fork(i) is deterministic in (parent seed, i).
  [[nodiscard]] Rng fork(uint64_t stream) const;

  uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias; bound must be > 0.
  uint64_t next_below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// Uniform double in [0, 1).
  double uniform_double();

  bool bernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices drawn from [0, n) (k <= n), in random order.
  std::vector<int> sample_without_replacement(int n, int k);

 private:
  uint64_t s_[4];
  uint64_t seed_;
};

}  // namespace lgfi
