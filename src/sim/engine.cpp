#include "src/sim/engine.h"

namespace lgfi {

ConvergenceResult run_until_quiescent(SynchronousProtocol& protocol, int max_rounds) {
  ConvergenceResult r;
  for (int round = 0; round < max_rounds; ++round) {
    if (!protocol.run_round()) {
      r.converged = true;
      return r;
    }
    ++r.rounds;
  }
  // One extra probe: the protocol may have gone quiet exactly at the limit.
  r.converged = !protocol.run_round();
  return r;
}

ConvergenceResult run_all_until_quiescent(const std::vector<SynchronousProtocol*>& protocols,
                                          int max_rounds) {
  ConvergenceResult r;
  for (int round = 0; round < max_rounds; ++round) {
    bool active = false;
    for (auto* p : protocols) {
      // Order matters for intra-round visibility only across protocols, not
      // within one (mailboxes are double-buffered); we keep the paper's
      // listing order: block construction, identification, boundary.
      if (p->run_round()) active = true;
    }
    if (!active) {
      r.converged = true;
      return r;
    }
    ++r.rounds;
  }
  bool active = false;
  for (auto* p : protocols)
    if (p->run_round()) active = true;
  r.converged = !active;
  return r;
}

}  // namespace lgfi
