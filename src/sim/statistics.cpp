#include "src/sim/statistics.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace lgfi {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::add_repeated(double x, long long count) {
  if (count <= 0) return;
  RunningStats bucket;
  bucket.n_ = count;
  bucket.mean_ = x;
  bucket.sum_ = x * static_cast<double>(count);
  bucket.min_ = x;
  bucket.max_ = x;
  merge(bucket);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_half_width() const {
  if (n_ < 2) return std::numeric_limits<double>::quiet_NaN();
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const long long n = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / static_cast<double>(n);
  mean_ = (mean_ * static_cast<double>(n_) + other.mean_ * static_cast<double>(other.n_)) /
          static_cast<double>(n);
  sum_ += other.sum_;
  n_ = n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::string RunningStats::summary() const {
  std::ostringstream os;
  os.precision(4);
  os << "mean=" << mean() << " sd=" << stddev() << " min=" << min() << " max=" << max()
     << " n=" << count();
  return os.str();
}

void IntHistogram::add(long long value) {
  // The buckets are value-indexed, so a negative value is unrepresentable;
  // an assert would let NDEBUG builds index with a negative and corrupt the
  // histogram silently.
  if (value < 0)
    throw std::invalid_argument("IntHistogram::add: negative value " + std::to_string(value));
  if (static_cast<size_t>(value) >= counts_.size())
    counts_.resize(static_cast<size_t>(value) + 1, 0);
  ++counts_[static_cast<size_t>(value)];
  ++total_;
  sum_ += static_cast<double>(value);
}

void IntHistogram::merge(const IntHistogram& other) {
  if (other.counts_.size() > counts_.size()) counts_.resize(other.counts_.size(), 0);
  for (size_t i = 0; i < other.counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_ += other.sum_;
}

long long IntHistogram::count_of(long long value) const {
  if (value < 0 || static_cast<size_t>(value) >= counts_.size()) return 0;
  return counts_[static_cast<size_t>(value)];
}

long long IntHistogram::min() const {
  for (size_t i = 0; i < counts_.size(); ++i)
    if (counts_[i] > 0) return static_cast<long long>(i);
  return 0;
}

long long IntHistogram::max() const {
  for (size_t i = counts_.size(); i > 0; --i)
    if (counts_[i - 1] > 0) return static_cast<long long>(i - 1);
  return 0;
}

double IntHistogram::mean() const {
  return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0;
}

long long IntHistogram::percentile(double q) const {
  // An assert here meant NDEBUG builds silently returned 0 for q <= 0 and
  // max() for q > 1; the negated comparison also rejects NaN.
  if (!(q > 0.0 && q <= 1.0))
    throw std::invalid_argument("IntHistogram::percentile: q must be in (0, 1], got " +
                                std::to_string(q));
  if (total_ == 0) return 0;
  const double target = q * static_cast<double>(total_);
  long long running = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    if (static_cast<double>(running) >= target) return static_cast<long long>(i);
  }
  return max();
}

std::vector<std::pair<long long, long long>> IntHistogram::buckets() const {
  std::vector<std::pair<long long, long long>> out;
  for (size_t i = 0; i < counts_.size(); ++i)
    if (counts_[i] > 0) out.emplace_back(static_cast<long long>(i), counts_[i]);
  return out;
}

}  // namespace lgfi
