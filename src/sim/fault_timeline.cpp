#include "src/sim/fault_timeline.h"

#include <algorithm>
#include <cmath>

namespace lgfi {

void FaultTimeline::push(LifecycleEvent e) {
  last_step_ = std::max(last_step_, e.step);
  heap_.push_back(Entry{e, next_seq_++});
  std::push_heap(heap_.begin(), heap_.end(), &FaultTimeline::after);
}

std::vector<LifecycleEvent> FaultTimeline::pop_events_at(long long step) {
  std::vector<LifecycleEvent> out;
  while (!heap_.empty() && heap_.front().event.step == step) {
    std::pop_heap(heap_.begin(), heap_.end(), &FaultTimeline::after);
    out.push_back(heap_.back().event);
    heap_.pop_back();
  }
  return out;
}

FaultTimeline timeline_from_schedule(const FaultSchedule& schedule) {
  FaultTimeline timeline;
  for (const auto& e : schedule.events()) {
    timeline.push(LifecycleEvent{e.step, e.node, Direction::none(),
                                 e.kind == FaultEventKind::kFail
                                     ? LifecycleEventKind::kFail
                                     : LifecycleEventKind::kRepair});
  }
  return timeline;
}

bool is_lifecycle_model(const std::string& name) {
  return name == "lifecycle" || name == "lifecycle_links";
}

namespace {

/// Discretized exponential inter-event time: at least one step, mean
/// roughly 1/rate steps.  `u` is uniform in [0, 1), so 1-u is in (0, 1].
long long exponential_delay(double u, double rate) {
  return 1 + static_cast<long long>(std::floor(-std::log1p(-u) / rate));
}

}  // namespace

FaultTimeline build_lifecycle_timeline(const Topology& mesh, const Config& config,
                                       Rng& rng, long long horizon) {
  const bool links = config.get_str("fault_model") == "lifecycle_links";
  const double arrival_rate = config.get_double("fault_arrival_rate");
  const double repair_rate = config.get_double("repair_rate");
  const double transient_frac = config.get_double("transient_frac");

  // Common-random-number streams (see header): arrivals (times, targets,
  // transient flags) and repairs draw from independent forks, and every
  // arrival consumes exactly one repair uniform regardless of branch — so
  // sweeping repair_rate replays the identical fault history with each
  // fault's downtime pointwise non-increasing in the rate.
  Rng arrivals = rng.fork(0xFA01);
  Rng repairs = rng.fork(0xFA02);

  FaultTimeline timeline;
  long long t = config.get_int("fault_start");
  while (true) {
    t += exponential_delay(arrivals.uniform_double(), arrival_rate);
    if (t > horizon) break;
    const bool transient = arrivals.bernoulli(transient_frac) && repair_rate > 0.0;
    const double repair_u = repairs.uniform_double();
    const LifecycleEventKind down =
        transient ? LifecycleEventKind::kTransientStart : LifecycleEventKind::kFail;
    const LifecycleEventKind up =
        transient ? LifecycleEventKind::kTransientEnd : LifecycleEventKind::kRepair;
    // Transients model short glitches: they clear at 10x the repair rate.
    const double up_rate = transient ? 10.0 * repair_rate : repair_rate;
    const long long back =
        repair_rate > 0.0 ? t + exponential_delay(repair_u, up_rate) : horizon + 1;

    if (links) {
      // Rejection-sample an existing directed channel; both directions of
      // the physical link go down and come back together.
      NodeId from = kInvalidNode;
      Direction dir = Direction::none();
      for (int attempt = 0; attempt < 128 && from == kInvalidNode; ++attempt) {
        const NodeId cand =
            static_cast<NodeId>(arrivals.next_below(static_cast<uint64_t>(mesh.node_count())));
        const Direction d =
            Direction::from_index(arrivals.uniform_int(0, mesh.direction_count() - 1));
        if (mesh.neighbor(cand, d) == kInvalidNode) continue;
        from = cand;
        dir = d;
      }
      if (from == kInvalidNode) continue;  // degenerate mesh with no channels
      const Coord u_c = mesh.coord_of(from);
      const Coord v_c = mesh.coord_of(mesh.neighbor(from, dir));
      timeline.push(LifecycleEvent{t, u_c, dir, down});
      timeline.push(LifecycleEvent{t, v_c, dir.opposite(), down});
      if (back <= horizon) {
        timeline.push(LifecycleEvent{back, u_c, dir, up});
        timeline.push(LifecycleEvent{back, v_c, dir.opposite(), up});
      }
    } else {
      const auto placed = random_fault_placement(mesh, 1, arrivals);
      if (placed.empty()) continue;  // mesh too small for interior placement
      timeline.push(LifecycleEvent{t, placed.front(), Direction::none(), down});
      if (back <= horizon)
        timeline.push(LifecycleEvent{back, placed.front(), Direction::none(), up});
    }
  }
  return timeline;
}

}  // namespace lgfi
