#pragma once
// Pluggable injection processes behind a self-registering factory — the
// seventh registry axis (`injection=`).
//
// A traffic pattern decides *where* a packet goes; the injection process
// decides *when* a terminal offers one.  TrafficWorkload consults the
// process once per terminal slot per step (slot = node * concentration +
// terminal, ascending — the same order the legacy Bernoulli loop drew its
// coins in, so `injection=bernoulli` consumes the RNG stream bit-for-bit
// identically to the pre-axis code).
//
// Registered names:
//   bernoulli    independent coin per slot per step at `injection_rate`
//   onoff        two-state burst: ON for `burst_len` steps out of a cycle
//                sized so the ON fraction is `duty_cycle`; inside ON the
//                coin is injection_rate/duty_cycle, so the long-run offered
//                load matches bernoulli at the same rate
//   batch        every slot injects a quota of `batch_size` packets as fast
//                as admission allows, the network drains, repeat
//                `batch_count` times
//   closed_loop  request-reply: a slot fires only while it has fewer than
//                `window` outstanding request-reply pairs; the workload
//                launches a reply from the destination on request delivery
//                and measures completed pairs (DESIGN.md §15)
//   trace        deterministic replay of a file recorded with
//                `trace_record=` (`trace_file=` names it)
//
// Lifecycle per step: begin_step() once (sees the step number and the count
// of in-flight messages — how batch detects a drained network), then fire()
// per slot in ascending order.  fire() owns all RNG draws of the process, so
// determinism follows from the slot order.  on_inject()/on_slot_released()
// bracket a packet's life for window accounting; replay_destination() lets
// the trace process override the traffic pattern.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/named_registry.h"
#include "src/mesh/topology.h"
#include "src/sim/rng.h"

namespace lgfi {

/// Experiment-config defaults for the per-process knobs, shared with
/// experiment_config() so the two surfaces cannot drift apart.
inline constexpr double kDefaultDutyCycle = 0.5;
inline constexpr int kDefaultBurstLen = 8;
inline constexpr int kDefaultBatchSize = 16;
inline constexpr int kDefaultBatchCount = 1;
inline constexpr int kDefaultWindow = 4;

/// What an injection process may observe at the top of a step.
struct InjectionStepView {
  long long step = 0;             ///< simulation step about to inject
  long long active_messages = 0;  ///< messages currently in flight
};

class InjectionProcess {
 public:
  virtual ~InjectionProcess() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once before the per-slot fire() sweep of a step.
  virtual void begin_step(const InjectionStepView& view) { (void)view; }

  /// Does terminal `slot` offer a packet this step?  All RNG draws the
  /// process makes happen here, in ascending slot order.
  [[nodiscard]] virtual bool fire(int slot, Rng& rng) = 0;

  /// Trace replay overrides the traffic pattern's destination.  Returns
  /// false (the default) to let the pattern choose.
  [[nodiscard]] virtual bool replay_destination(int slot, Coord& dest) {
    (void)slot;
    (void)dest;
    return false;
  }

  /// A fired offer passed admission and became message `msg_id`.
  virtual void on_inject(int slot, int msg_id) {
    (void)slot;
    (void)msg_id;
  }

  /// Closed-loop processes make the workload run the request-reply
  /// protocol and key measurement on completed pairs.
  [[nodiscard]] virtual bool closed_loop() const { return false; }

  /// A closed-loop pair owned by `slot` finished (reply delivered or the
  /// pair failed); the slot's window frees one entry.
  virtual void on_slot_released(int slot) { (void)slot; }
};

using InjectionProcessFactory = std::function<std::unique_ptr<InjectionProcess>(
    const Topology& mesh, const Config& config, Rng& rng)>;

class InjectionProcessRegistry {
 public:
  /// The process-wide registry (populated during static initialization by
  /// InjectionProcessRegistrar instances).
  static InjectionProcessRegistry& instance();

  /// Registers a factory under `name`; `meta` carries the one-line help and
  /// consumed config keys for the --list catalog.  Duplicate names throw.
  void add(const std::string& name, InjectionProcessFactory factory, ComponentMeta meta = {});

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;  ///< sorted

  /// Builds the named process; throws ConfigError with the known names (and
  /// a did-you-mean suggestion) on an unknown `name`.  `rng` seeds
  /// construction-time randomness (onoff's per-slot phases); bernoulli
  /// draws nothing at construction, preserving the legacy stream.
  [[nodiscard]] std::unique_ptr<InjectionProcess> make(const std::string& name,
                                                       const Topology& mesh,
                                                       const Config& config, Rng& rng) const;

  /// The catalog rows for every registered process (sorted by name).
  [[nodiscard]] std::vector<ComponentInfo> describe() const { return registry_.describe(); }

 private:
  NamedRegistry<InjectionProcessFactory> registry_{"injection process"};
};

/// Self-registration helper: `static InjectionProcessRegistrar r("name", fn);`
struct InjectionProcessRegistrar {
  InjectionProcessRegistrar(const std::string& name, InjectionProcessFactory factory,
                            ComponentMeta meta = {});
};

/// Convenience wrapper over InjectionProcessRegistry::instance().make().
std::unique_ptr<InjectionProcess> make_injection_process(const std::string& name,
                                                         const Topology& mesh,
                                                         const Config& config, Rng& rng);

/// The default process at `rate`, configless — what TrafficWorkload's
/// historical (sim, pattern, options, rng) ctor builds, so pre-axis call
/// sites keep compiling and draw the identical stream.
std::unique_ptr<InjectionProcess> make_bernoulli_injection(double rate);

/// Rejects process-specific keys set on a process that ignores them
/// (`window=` without closed_loop, `duty_cycle=`/`burst_len=` without
/// onoff, ...) and `injection=trace` without a `trace_file=`.  Called from
/// ExperimentRunner's eager validation; throws ConfigError naming the key.
void validate_injection_keys(const Config& config);

}  // namespace lgfi
