#include "src/sim/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lgfi {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::num(long long v) { return std::to_string(v); }
std::string TablePrinter::num(int v) { return std::to_string(v); }

void TablePrinter::print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << "  " << std::left << std::setw(static_cast<int>(widths[i])) << row[i];
    }
    os << '\n';
  };

  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("cannot open CSV output: " + path);
}

std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  return out + "\"";
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_field(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_table(const TablePrinter& table) {
  write_row(table.headers());
  for (const auto& row : table.rows()) write_row(row);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace lgfi
