#pragma once
// Minimal work-sharing thread pool for experiment replication.
//
// The HPC-facing surface of the library: Monte-Carlo sweeps (hundreds of
// independent simulator replications per configuration) are embarrassingly
// parallel.  parallel_for partitions an index range over worker threads;
// each index gets its own forked RNG stream inside the callers, so results
// are identical whatever the thread count — determinism is non-negotiable
// for a reproduction.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/mutex.h"

namespace lgfi {

class ThreadPool {
 public:
  /// `threads` == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(i) for all i in [0, count), blocking until every index is done.
  /// fn must be safe to call concurrently for distinct i.
  void parallel_for(int64_t count, const std::function<void(int64_t)>& fn);

  /// Process-wide pool (lazily constructed, sized to the hardware).
  static ThreadPool& global();

 private:
  struct TaskState;

  void worker_loop();

  std::vector<std::thread> workers_;
  // mu_ guards the submission channel only; per-task progress is lock-free
  // atomics inside TaskState.  condition_variable_any waits directly on the
  // annotated MutexLock, keeping the analysis exact across waits.
  Mutex mu_;
  std::condition_variable_any cv_work_;
  std::condition_variable_any cv_done_;
  std::shared_ptr<TaskState> task_ GUARDED_BY(mu_);
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  bool stopping_ GUARDED_BY(mu_) = false;
};

/// Convenience wrapper over the global pool.  With threads == 1 (or count
/// small) the loop runs inline, which keeps unit tests single-threaded.
void parallel_for(int64_t count, const std::function<void(int64_t)>& fn);

}  // namespace lgfi
