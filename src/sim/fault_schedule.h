#pragma once
// Dynamic fault schedules (Section 5).
//
// The paper's dynamic model has F faults f_1..f_F occurring at times
// t_1..t_F with inter-occurrence intervals d_i = t_{i+1} - t_i, plus nodes
// that recover from faulty status (Definition 4).  A FaultSchedule is the
// concrete realisation of that timeline: a sorted list of fail/recover
// events in units of routing *steps*.  Generators build the placements the
// benches sweep over: scattered faults, clustered faults (to control block
// size e_max), and whole-box failures (to plant a block of exact shape).

#include <functional>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/named_registry.h"
#include "src/mesh/topology.h"
#include "src/sim/rng.h"

namespace lgfi {

enum class FaultEventKind : uint8_t {
  kFail,     ///< node becomes faulty (f_i in the paper)
  kRecover,  ///< node recovers from faulty status (rule 5 trigger)
};

struct FaultEvent {
  long long step = 0;  ///< routing step at which the event is detected
  Coord node;
  FaultEventKind kind = FaultEventKind::kFail;
};

class FaultSchedule {
 public:
  FaultSchedule() = default;
  explicit FaultSchedule(std::vector<FaultEvent> events);

  /// Appends an event; keeps the schedule sorted by step (stable for ties).
  void add(FaultEvent e);
  void add_fail(long long step, const Coord& node);
  void add_recover(long long step, const Coord& node);

  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] size_t size() const { return events_.size(); }

  /// Events scheduled exactly at `step` (consumed by the step loop's fault
  /// detection phase).
  [[nodiscard]] std::vector<FaultEvent> events_at(long long step) const;

  /// Last event time; simulations must run at least this many steps to see
  /// the whole schedule.
  [[nodiscard]] long long last_step() const;

  /// Distinct fault-occurrence times t_1 < t_2 < ... (recoveries count as
  /// occurrences too — they also trigger reconstruction).
  [[nodiscard]] std::vector<long long> occurrence_times() const;

 private:
  void sort();
  std::vector<FaultEvent> events_;
};

/// Options shared by the random generators.
struct FaultPlacementOptions {
  bool avoid_outer_surface = true;  ///< Section 5: no fault on the outmost surface
  bool avoid_duplicates = true;
};

/// `count` faults placed independently at random interior nodes, all at
/// `step`.  `forbidden` nodes (e.g. the source/destination under test) are
/// never chosen.
std::vector<Coord> random_fault_placement(const Topology& mesh, int count, Rng& rng,
                                          const FaultPlacementOptions& opts = {},
                                          const std::vector<Coord>& forbidden = {});

/// A cluster of `count` faults grown by random adjacent steps from a random
/// interior seed — produces a compact connected fault set whose block has
/// e_max roughly count^(1/n).
std::vector<Coord> clustered_fault_placement(const Topology& mesh, int count, Rng& rng,
                                             const FaultPlacementOptions& opts = {});

/// Fails every node of `box` (clipped to the interior).  Gives exact control
/// over block extents for convergence experiments.
std::vector<Coord> box_fault_placement(const Topology& mesh, const Box& box);

/// Builds the paper's dynamic timeline: `batches` fault batches, the i-th at
/// time t_i = start + i * interval (so d_i = interval), each failing
/// `faults_per_batch` random nodes.  With `recoveries` true, earlier faults
/// are sometimes recovered instead, exercising Definition 4.
FaultSchedule periodic_random_schedule(const Topology& mesh, int batches,
                                       int faults_per_batch, long long start,
                                       long long interval, Rng& rng,
                                       bool recoveries = false,
                                       const std::vector<Coord>& forbidden = {});

/// A fault-placement generator built from config: returns the coordinates
/// one batch fails.  The config supplies model-level options (`faults`,
/// `fault_box`); `rng` draws from the replication's private stream.
using FaultModelFactory =
    std::function<std::vector<Coord>(const Topology& mesh, const Config& config, Rng& rng)>;

/// The process-wide fault-model registry (the `fault_model=` axis) — the
/// same NamedRegistry scheme as routers / traffic patterns / switching
/// models.  Built-ins: random, clustered, box.
NamedRegistry<FaultModelFactory>& fault_model_registry();

/// Places one batch of faults via the registered `fault_model`; throws
/// ConfigError with the known models (and a did-you-mean suggestion) on an
/// unknown name.
std::vector<Coord> place_faults(const Topology& mesh, const Config& config, Rng& rng);

/// Parses `fault_box` extents "lo:hi,lo:hi,..." (one range per dimension; a
/// bare "v" means "v:v").  Every bound must be a fully-consumed integer —
/// "5x:6" is rejected naming the bad token, not silently read as "5:6".
Box parse_box_spec(const std::string& spec);

}  // namespace lgfi
