#pragma once
// The fault-lifecycle event queue (DESIGN.md §17).
//
// A FaultTimeline is a bounded min-heap over (step, event): fail / repair /
// transient-start / transient-end, targeting a node or a directed link.  It
// replaces the FaultSchedule's per-step linear scan — the step loop peeks
// the heap top in O(1) and pops a step's batch in O(log events), so the
// per-step fault-phase cost is independent of the schedule length.
//
// Timelines come from two places: converting a static FaultSchedule (every
// historical fault model keeps working unchanged), or the pluggable
// lifecycle generators on the `fault_model` axis (`lifecycle`,
// `lifecycle_links`), which draw exponential inter-arrival and repair times
// from the seeded Rng.  The generators use common-random-number stream
// splitting (Rng::fork is position-independent) so the arrival process is
// identical across `repair_rate` values — the reliability sweeps compare
// repair policies against the same fault history.

#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/mesh/topology.h"
#include "src/sim/fault_schedule.h"
#include "src/sim/rng.h"

namespace lgfi {

enum class LifecycleEventKind : uint8_t {
  kFail,            ///< permanent node/link death (repairable by kRepair)
  kRepair,          ///< node/link comes back blank (Definition 4 recovery)
  kTransientStart,  ///< a glitch begins: same observable effect as kFail
  kTransientEnd,    ///< the glitch clears: same observable effect as kRepair
};

struct LifecycleEvent {
  long long step = 0;  ///< routing step at which the event is detected
  Coord node;          ///< the node, or the link's tail endpoint
  /// Direction of the affected directed channel; none() means a node-level
  /// event.  Physical-link transitions arrive as two directed events.
  Direction link = Direction::none();
  LifecycleEventKind kind = LifecycleEventKind::kFail;

  [[nodiscard]] bool is_link() const { return !link.is_none(); }
  /// True if applying the event takes the target down (fail or
  /// transient-start); false means it comes back up.
  [[nodiscard]] bool is_down_edge() const {
    return kind == LifecycleEventKind::kFail || kind == LifecycleEventKind::kTransientStart;
  }
};

/// Min-heap of lifecycle events ordered by (step, insertion order).  The
/// FIFO tiebreak makes a step's batch come out exactly in push order, so a
/// timeline converted from a sorted FaultSchedule applies events in the
/// schedule's order — byte-identical trajectories.
class FaultTimeline {
 public:
  FaultTimeline() = default;

  /// O(log size).
  void push(LifecycleEvent e);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] size_t size() const { return heap_.size(); }

  /// Step of the earliest pending event, or -1 if empty.  O(1).
  [[nodiscard]] long long next_step() const {
    return heap_.empty() ? -1 : heap_.front().event.step;
  }
  [[nodiscard]] bool has_events_at(long long step) const {
    return !heap_.empty() && heap_.front().event.step == step;
  }

  /// Pops every event scheduled at exactly `step`, in push order.
  /// O(k log size) for a batch of k; empty vector if none are due.
  std::vector<LifecycleEvent> pop_events_at(long long step);

  /// Largest step ever pushed (including already-popped events), or -1.
  [[nodiscard]] long long last_step() const { return last_step_; }

  [[nodiscard]] long long memory_bytes() const {
    return static_cast<long long>(sizeof(*this)) +
           static_cast<long long>(heap_.capacity() * sizeof(Entry));
  }

 private:
  struct Entry {
    LifecycleEvent event;
    uint64_t seq = 0;  ///< monotone insertion counter: FIFO among same-step ties
  };
  /// Heap comparator: a sorts after b, so front() is the (step, seq) minimum.
  static bool after(const Entry& a, const Entry& b) {
    if (a.event.step != b.event.step) return a.event.step > b.event.step;
    return a.seq > b.seq;
  }

  std::vector<Entry> heap_;
  uint64_t next_seq_ = 0;
  long long last_step_ = -1;
};

/// Converts a static schedule: kFail -> kFail, kRecover -> kRepair, order
/// preserved.  Every historical fault model runs through the timeline heap.
FaultTimeline timeline_from_schedule(const FaultSchedule& schedule);

/// True for the generator-backed fault models (`lifecycle`,
/// `lifecycle_links`) that produce a dynamic timeline instead of a static
/// placement — the experiment runner special-cases them in build_dynamic.
bool is_lifecycle_model(const std::string& name);

/// Generates the lifecycle timeline for `fault_model=lifecycle` (node
/// targets) or `lifecycle_links` (directed-link targets) over steps
/// [fault_start, horizon]:
///
///   - inter-arrival:   1 + floor(-log(1-u) / fault_arrival_rate)  steps
///   - repair delay:    1 + floor(-log(1-u) / repair_rate)         steps
///   - transient glitch (probability transient_frac): repairs at 10x the
///     repair rate — short outages against the permanent-fault baseline
///
/// repair_rate=0 makes every fault permanent.  Repairs that would land past
/// the horizon are dropped (the fault stays down for the measured window).
/// Arrival times, targets and transient flags draw from one forked stream
/// and repair delays from another, one uniform per arrival — so arrival
/// histories are identical across repair_rate values and each fault's
/// repair time is pointwise non-increasing in repair_rate (the monotone
/// curves E17 self-checks).
FaultTimeline build_lifecycle_timeline(const Topology& mesh, const Config& config,
                                       Rng& rng, long long horizon);

}  // namespace lgfi
