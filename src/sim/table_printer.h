#pragma once
// Aligned table and CSV output for the benchmark harness.
//
// Every bench regenerates a paper artifact as a table of rows; TablePrinter
// renders them aligned for the terminal and CsvWriter mirrors the same rows
// to a file for plotting.

#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

namespace lgfi {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Formats doubles with fixed precision; convenience for numeric rows.
  static std::string num(double v, int precision = 2);
  static std::string num(long long v);
  static std::string num(int v);

  /// Renders with a header rule and column padding.
  void print(std::ostream& os) const;

  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const { return rows_; }
  [[nodiscard]] const std::vector<std::string>& headers() const { return headers_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// `s` escaped as one RFC-4180 CSV field: quoted (with doubled quotes) only
/// when it contains a comma, quote, or newline.  Shared by CsvWriter and the
/// campaign CSV reporter.
std::string csv_field(const std::string& s);

/// Writes the same tabular data as RFC-4180-ish CSV.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);
  void write_table(const TablePrinter& table);

 private:
  std::ofstream out_;
};

/// Prints a section banner ("== Figure 4: ... ==") used by all benches.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace lgfi
