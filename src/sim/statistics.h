#pragma once
// Streaming statistics and histograms for experiment reporting.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace lgfi {

/// Welford-style running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);

  /// Adds `count` identical samples of `x` in O(1) (the merge formula with a
  /// degenerate accumulator); histogram buckets fold in without a per-sample
  /// loop.
  void add_repeated(double x, long long count);

  [[nodiscard]] long long count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1 denominator)
  [[nodiscard]] double stddev() const;
  /// Half-width of the normal-approximation 95% confidence interval on the
  /// mean (1.96 * stddev / sqrt(n)).  Quiet NaN when n < 2 — a single
  /// replication carries no spread information; reporters must render that
  /// as an *empty* field, never a literal "nan" token.
  [[nodiscard]] double ci95_half_width() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator (parallel reduction across replications).
  void merge(const RunningStats& other);

  [[nodiscard]] std::string summary() const;  ///< "mean=… sd=… min=… max=… n=…"

 private:
  long long n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact-value histogram over small non-negative integers (detour counts,
/// round counts); also provides percentiles.
class IntHistogram {
 public:
  /// Throws std::invalid_argument on negative values (the value-indexed
  /// buckets cannot represent them).
  void add(long long value);
  void merge(const IntHistogram& other);

  [[nodiscard]] long long count() const { return total_; }
  [[nodiscard]] long long count_of(long long value) const;
  [[nodiscard]] long long min() const;
  [[nodiscard]] long long max() const;
  [[nodiscard]] double mean() const;

  /// Smallest value v such that at least q of the mass is <= v; throws
  /// std::invalid_argument unless 0 < q <= 1.
  [[nodiscard]] long long percentile(double q) const;

  /// (value, count) pairs in increasing value order.
  [[nodiscard]] std::vector<std::pair<long long, long long>> buckets() const;

 private:
  std::vector<long long> counts_;  // index = value
  long long total_ = 0;
  double sum_ = 0.0;
};

}  // namespace lgfi
