#pragma once
// Compact binary traces of injected packets: record on any traffic run
// (`trace_record=<file>`), replay deterministically (`injection=trace` +
// `trace_file=<file>`), so a real workload becomes a regression fixture.
//
// Format (all integers LEB128 varints, little-endian bytes):
//
//   magic "LGT1"
//   node_count  concentration        (validated against the replay topology)
//   per packet: step_delta  slot  dest  size
//
// `step_delta` is the step distance to the previous record (records are
// written in injection order, which is non-decreasing in step and ascending
// in slot within a step, so deltas stay tiny); `slot` is the injecting
// terminal (node * concentration + terminal); `dest` is the destination
// router's NodeId; `size` is the packet size in flits (informational — the
// replaying config's switching model decides the actual flit count).  A
// bernoulli trace re-recorded from its own replay is byte-identical, which
// is the round-trip property the tests and CI smoke pin.

#include <string>
#include <vector>

#include "src/mesh/topology.h"

namespace lgfi {

/// One injected packet as recorded: absolute step, injecting terminal slot,
/// destination router, size in flits.
struct TraceRecord {
  long long step = 0;
  int slot = 0;
  NodeId dest = 0;
  int size = 1;

  friend bool operator==(const TraceRecord& a, const TraceRecord& b) {
    return a.step == b.step && a.slot == b.slot && a.dest == b.dest && a.size == b.size;
  }
};

/// Streams injection records to `path` (truncating).  Throws ConfigError when
/// the file cannot be opened; add() must be called with non-decreasing steps.
class TraceWriter {
 public:
  TraceWriter(const std::string& path, const Topology& mesh);
  ~TraceWriter();

  void add(long long step, int slot, NodeId dest, int size);

  [[nodiscard]] long long records() const { return records_; }

  /// Flushes and closes; throws ConfigError if the stream went bad (disk
  /// full, ...).  The destructor closes too but swallows errors.
  void close();

 private:
  struct Impl;
  Impl* impl_;
  long long last_step_ = 0;
  long long records_ = 0;
};

/// Reads a whole trace, validating the magic and that it was recorded on a
/// topology with the same node count and concentration as `mesh` (slots and
/// dest ids are meaningless otherwise).  Throws ConfigError on a missing
/// file, a foreign format, a topology mismatch, or a truncated record.
std::vector<TraceRecord> read_trace(const std::string& path, const Topology& mesh);

}  // namespace lgfi
