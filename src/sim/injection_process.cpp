#include "src/sim/injection_process.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/sim/trace_io.h"

namespace lgfi {

InjectionProcessRegistry& InjectionProcessRegistry::instance() {
  static InjectionProcessRegistry registry;
  return registry;
}

void InjectionProcessRegistry::add(const std::string& name, InjectionProcessFactory factory,
                                   ComponentMeta meta) {
  registry_.add(name, std::move(factory), std::move(meta));
}

bool InjectionProcessRegistry::contains(const std::string& name) const {
  return registry_.contains(name);
}

std::vector<std::string> InjectionProcessRegistry::names() const { return registry_.names(); }

std::unique_ptr<InjectionProcess> InjectionProcessRegistry::make(const std::string& name,
                                                                 const Topology& mesh,
                                                                 const Config& config,
                                                                 Rng& rng) const {
  return registry_.require(name)(mesh, config, rng);
}

InjectionProcessRegistrar::InjectionProcessRegistrar(const std::string& name,
                                                     InjectionProcessFactory factory,
                                                     ComponentMeta meta) {
  InjectionProcessRegistry::instance().add(name, std::move(factory), std::move(meta));
}

std::unique_ptr<InjectionProcess> make_injection_process(const std::string& name,
                                                         const Topology& mesh,
                                                         const Config& config, Rng& rng) {
  return InjectionProcessRegistry::instance().make(name, mesh, config, rng);
}

void validate_injection_keys(const Config& config) {
  const std::string& injection = config.get_str("injection");
  // Which process consumes each process-specific key.  A key set away from
  // its default on any other process is a silent no-op — reject it, the
  // wormhole-requires-arbitration way.
  static const struct {
    const char* key;
    const char* owner;
  } kOwned[] = {
      {"window", "closed_loop"}, {"duty_cycle", "onoff"},   {"burst_len", "onoff"},
      {"batch_size", "batch"},   {"batch_count", "batch"},  {"trace_file", "trace"},
  };
  for (const auto& owned : kOwned) {
    if (injection != owned.owner && !config.is_default(owned.key)) {
      throw ConfigError(std::string(owned.key) + "= is only used by injection=" + owned.owner +
                        " (this run has injection=" + injection + ")");
    }
  }
  if (injection == "trace" && config.get_str("trace_file").empty()) {
    throw ConfigError("injection=trace needs trace_file=<recorded trace>");
  }
}

// ---------------------------------------------------------------------------
// Built-in processes.  Registered in the same translation unit as the
// registry so a static-library link can never strip them.
// ---------------------------------------------------------------------------
namespace {

double require_rate(const Config& config) {
  const double rate = config.get_double("injection_rate");
  if (rate < 0.0) throw ConfigError("injection_rate must be >= 0");
  return rate;
}

long long slot_count(const Topology& mesh) {
  return static_cast<long long>(mesh.node_count()) * static_cast<long long>(mesh.concentration());
}

/// The legacy open-loop process: one independent coin per slot per step.
/// fire() is the only RNG consumer and draws exactly the coin the old
/// TrafficWorkload loop drew, so the default stream is bit-for-bit intact.
class BernoulliProcess final : public InjectionProcess {
 public:
  explicit BernoulliProcess(double rate) : rate_(rate) {}

  std::string name() const override { return "bernoulli"; }

  bool fire(int, Rng& rng) override { return rng.bernoulli(rate_); }

 private:
  double rate_;
};

/// Two-state burst: each slot is ON for `burst_len` consecutive steps out of
/// a cycle of burst_len / duty_cycle steps, with a per-slot phase drawn at
/// construction so bursts de-synchronize.  Inside ON the coin is
/// injection_rate / duty_cycle (clamped to 1), so the long-run offered load
/// matches bernoulli at the same injection_rate.
class OnOffProcess final : public InjectionProcess {
 public:
  OnOffProcess(const Topology& mesh, double rate, double duty, long long burst, Rng& rng)
      : burst_(burst),
        cycle_(std::max(burst, static_cast<long long>(std::llround(
                                   static_cast<double>(burst) / duty)))),
        on_rate_(std::min(1.0, rate / duty)) {
    const long long slots = slot_count(mesh);
    phase_.reserve(static_cast<size_t>(slots));
    for (long long s = 0; s < slots; ++s)
      phase_.push_back(static_cast<long long>(rng.next_below(static_cast<uint64_t>(cycle_))));
  }

  std::string name() const override { return "onoff"; }

  void begin_step(const InjectionStepView& view) override { step_ = view.step; }

  bool fire(int slot, Rng& rng) override {
    const bool on = (step_ + phase_[static_cast<size_t>(slot)]) % cycle_ < burst_;
    // The coin is drawn even when OFF so the stream layout per step stays
    // one-draw-per-slot, mirroring bernoulli's shape.
    const bool coin = rng.bernoulli(on_rate_);
    return on && coin;
  }

 private:
  long long burst_;
  long long cycle_;
  double on_rate_;
  long long step_ = 0;
  std::vector<long long> phase_;
};

/// Every slot injects a quota of `batch_size` packets as fast as admission
/// allows; when all quotas are spent and the network has drained, the next
/// of `batch_count` batches begins.  With faults=0 the total injected is
/// exactly terminals * batch_size * batch_count.
class BatchProcess final : public InjectionProcess {
 public:
  BatchProcess(const Topology& mesh, long long batch_size, long long batch_count)
      : batch_size_(batch_size),
        batches_left_(batch_count - 1),
        quota_(static_cast<size_t>(slot_count(mesh)), batch_size) {}

  std::string name() const override { return "batch"; }

  void begin_step(const InjectionStepView& view) override {
    if (batches_left_ <= 0 || view.active_messages != 0) return;
    bool exhausted = true;
    for (const long long q : quota_)
      if (q > 0) {
        exhausted = false;
        break;
      }
    if (!exhausted) return;
    std::fill(quota_.begin(), quota_.end(), batch_size_);
    --batches_left_;
  }

  bool fire(int slot, Rng&) override {
    long long& q = quota_[static_cast<size_t>(slot)];
    if (q <= 0) return false;
    --q;
    return true;
  }

 private:
  long long batch_size_;
  long long batches_left_;
  std::vector<long long> quota_;
};

/// Request-reply: a slot offers a request (coin at injection_rate) only
/// while it holds fewer than `window` outstanding request-reply pairs.  No
/// coin is drawn while the window is full — the self-throttling that makes
/// closed-loop saturation a different curve than open-loop.  The workload
/// runs the reply protocol and calls on_inject/on_slot_released.
class ClosedLoopProcess final : public InjectionProcess {
 public:
  ClosedLoopProcess(const Topology& mesh, double rate, long long window)
      : rate_(rate), window_(window), outstanding_(static_cast<size_t>(slot_count(mesh)), 0) {}

  std::string name() const override { return "closed_loop"; }

  bool closed_loop() const override { return true; }

  bool fire(int slot, Rng& rng) override {
    if (outstanding_[static_cast<size_t>(slot)] >= window_) return false;
    return rng.bernoulli(rate_);
  }

  void on_inject(int slot, int) override { ++outstanding_[static_cast<size_t>(slot)]; }

  void on_slot_released(int slot) override { --outstanding_[static_cast<size_t>(slot)]; }

 private:
  double rate_;
  long long window_;
  std::vector<long long> outstanding_;
};

/// Deterministic replay of a recorded trace: records fire at their recorded
/// (step, slot) with their recorded destination; the traffic pattern and
/// injection_rate are ignored.  Records whose step already passed (e.g. a
/// trace recorded with a longer warmup) are skipped, never re-timed.
class TraceReplayProcess final : public InjectionProcess {
 public:
  TraceReplayProcess(const Topology& mesh, const std::string& path)
      : mesh_(&mesh), records_(read_trace(path, mesh)) {}

  std::string name() const override { return "trace"; }

  void begin_step(const InjectionStepView& view) override {
    step_ = view.step;
    while (cursor_ < records_.size() && records_[cursor_].step < step_) ++cursor_;
  }

  bool fire(int slot, Rng&) override {
    if (cursor_ >= records_.size()) return false;
    const TraceRecord& r = records_[cursor_];
    if (r.step != step_ || r.slot != slot) return false;
    pending_dest_ = mesh_->coord_of(r.dest);
    ++cursor_;
    return true;
  }

  bool replay_destination(int, Coord& dest) override {
    dest = pending_dest_;
    return true;
  }

 private:
  const Topology* mesh_;
  std::vector<TraceRecord> records_;
  long long step_ = 0;
  size_t cursor_ = 0;
  Coord pending_dest_;
};

const InjectionProcessRegistrar kBernoulli(
    "bernoulli",
    [](const Topology&, const Config& cfg, Rng&) {
      return std::make_unique<BernoulliProcess>(require_rate(cfg));
    },
    {"independent coin per terminal per step at injection_rate (open loop)",
     {"injection_rate"}});

const InjectionProcessRegistrar kOnOff(
    "onoff",
    [](const Topology& mesh, const Config& cfg, Rng& rng) {
      const double duty = cfg.get_double("duty_cycle");
      if (duty <= 0.0 || duty > 1.0) throw ConfigError("duty_cycle must be in (0, 1]");
      const long long burst = cfg.get_int("burst_len");
      if (burst < 1) throw ConfigError("burst_len must be >= 1");
      return std::make_unique<OnOffProcess>(mesh, require_rate(cfg), duty, burst, rng);
    },
    {"bursty two-state: ON burst_len steps per cycle, ON fraction duty_cycle",
     {"injection_rate", "duty_cycle", "burst_len"}});

const InjectionProcessRegistrar kBatch(
    "batch",
    [](const Topology& mesh, const Config& cfg, Rng&) {
      const long long size = cfg.get_int("batch_size");
      if (size < 1) throw ConfigError("batch_size must be >= 1");
      const long long count = cfg.get_int("batch_count");
      if (count < 1) throw ConfigError("batch_count must be >= 1");
      return std::make_unique<BatchProcess>(mesh, size, count);
    },
    {"each terminal injects batch_size packets, network drains, x batch_count",
     {"batch_size", "batch_count"}});

const InjectionProcessRegistrar kClosedLoop(
    "closed_loop",
    [](const Topology& mesh, const Config& cfg, Rng&) {
      const long long window = cfg.get_int("window");
      if (window < 1) throw ConfigError("window must be >= 1");
      return std::make_unique<ClosedLoopProcess>(mesh, require_rate(cfg), window);
    },
    {"request-reply with window outstanding pairs per terminal (closed loop)",
     {"injection_rate", "window"}});

const InjectionProcessRegistrar kTrace(
    "trace",
    [](const Topology& mesh, const Config& cfg, Rng&) {
      const std::string& path = cfg.get_str("trace_file");
      if (path.empty()) throw ConfigError("injection=trace needs trace_file=<recorded trace>");
      return std::make_unique<TraceReplayProcess>(mesh, path);
    },
    {"deterministic replay of a trace recorded with trace_record=", {"trace_file"}});

}  // namespace

std::unique_ptr<InjectionProcess> make_bernoulli_injection(double rate) {
  return std::make_unique<BernoulliProcess>(rate);
}

}  // namespace lgfi
