#include "src/sim/rng.h"

#include <cassert>

namespace lgfi {
namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork(uint64_t stream) const {
  // Mix the stream id into the original seed through an odd multiplier so
  // fork(0) differs from the parent and forks are pairwise independent.
  return Rng(seed_ ^ (0xD1342543DE82EF95ull * (stream + 0x632BE59BD9B4E019ull)));
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Rng::next_below(uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::uniform_int(int lo, int hi) {
  assert(lo <= hi);
  return lo + static_cast<int>(next_below(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::uniform_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) { return uniform_double() < p; }

std::vector<int> Rng::sample_without_replacement(int n, int k) {
  assert(k >= 0 && k <= n);
  // Partial Fisher–Yates over an index vector.
  std::vector<int> idx(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) idx[static_cast<size_t>(i)] = i;
  for (int i = 0; i < k; ++i) {
    const int j = i + static_cast<int>(next_below(static_cast<uint64_t>(n - i)));
    std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
  }
  idx.resize(static_cast<size_t>(k));
  return idx;
}

}  // namespace lgfi
