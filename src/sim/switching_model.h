#pragma once
// Pluggable switching layer under the phased step pipeline (DESIGN.md §10).
//
// The advance phase of DynamicSimulation — "every in-flight message makes a
// routing decision and traverses a channel" — is really a *switching model*:
// a policy for how packets occupy channels.  This header factors it into an
// interface with self-registering implementations (the RouterRegistry /
// TrafficPatternRegistry scheme):
//
//   ideal     the historical behavior: a packet is a single header flit that
//             advances one hop per step, optionally under §8 link
//             arbitration.  The default — byte-identical to the pre-layer
//             code in both arbitration modes.
//   wormhole  flit-level switching: packets serialize into flits_per_packet
//             flits, channels multiplex num_vcs virtual channels with
//             credit-based buffers of vc_buffer_depth flits, and a VC/switch
//             allocator layers on the §8 round-robin (wormhole_switching.h).
//
// Layering: the model lives in src/sim and never sees RoutingHeader or
// MessageProgress (src/routing, src/core).  It operates on opaque packet
// ids; everything header-shaped flows through the narrow SwitchingHost
// callback interface that DynamicSimulation implements.  The split keeps
// routing *decisions* in src/routing, per-message bookkeeping in src/core,
// and channel-occupancy mechanism here.
//
// Determinism contract (DESIGN.md §2): a model's state must be a pure
// function of the add_packet/advance_step call sequence — no clocks, no
// hashes, no thread identity.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/config.h"
#include "src/core/named_registry.h"
#include "src/mesh/direction.h"
#include "src/mesh/topology.h"

namespace lgfi {

class LinkArbiter;

/// What the router told the host to do with a packet's head this step
/// (RouteAction, re-expressed without the src/routing dependency).
enum class SwitchAction : uint8_t { kDeliver, kUnreachable, kForward, kBacktrack };

struct SwitchDecision {
  SwitchAction action = SwitchAction::kUnreachable;
  Direction direction = Direction::none();  ///< outgoing channel (kForward)
  bool detour_preferred = false;
  /// The channel a backtrack traverses (opposite of the incoming direction);
  /// none at the source.  Supplied on every decision so a model can issue a
  /// resource-releasing backtrack of its own (wormhole's §10 escape rule).
  Direction back = Direction::none();
  /// Model-issued congestion escapes only: after the backtrack, erase the
  /// used mark for the abandoned direction at the node returned to.  The
  /// channel is healthy — merely VC-starved — so the routing search must not
  /// treat the escape as having exhausted it (congestion would otherwise
  /// masquerade as kUnreachable); the step budget bounds the retries.
  bool unmark_on_backtrack = false;
};

enum class PacketOutcome : uint8_t { kDelivered, kUnreachable, kBudgetExhausted };

/// Result of committing one header move.
struct MoveResult {
  NodeId node = kInvalidNode;  ///< the head's node after the move
  bool finished = false;       ///< the move exhausted the step budget
};

/// The callbacks a switching model drives the simulation through.  All
/// per-message bookkeeping (headers, budgets, stall/latency accounting, step
/// counters) stays on the host side; models only sequence the calls.
class SwitchingHost {
 public:
  virtual ~SwitchingHost() = default;

  /// One routing decision for the packet's head at its current node.  Pure
  /// with respect to the header (DESIGN.md §7): safe to call once per packet
  /// per step and discard.
  [[nodiscard]] virtual SwitchDecision decide(int id) = 0;

  /// Applies a kForward/kBacktrack decision to the header (marks + path
  /// stack), counts the move, and applies the step budget.
  virtual MoveResult commit_move(int id, const SwitchDecision& decision) = 0;

  /// Terminal outcome for a packet that did not finish through commit_move.
  virtual void finish(int id, PacketOutcome outcome) = 0;

  /// The packet's head wanted a channel and did not get one this step.
  virtual void count_stall(int id) = 0;

  /// Flit-level models: the packet's head flit reached the destination
  /// (head-latency accounting; delivery happens when the tail ejects).
  virtual void record_head_arrival(int id) = 0;

  /// Flit-level models: `n` data flits traversed channels this step.
  virtual void count_flit_moves(int n) = 0;

  /// Whether `node` is currently faulty (cannot hold or forward flits).
  /// Routing decisions already consult the live field; this lets a
  /// flit-level model notice a node on an established circuit dying
  /// mid-stream.
  [[nodiscard]] virtual bool node_faulty(NodeId node) const = 0;

  /// Whether the directed channel leaving `from` along `dir` is dead (a
  /// link/port fault, DESIGN.md §17).  Default: no link-fault notion.  A
  /// dead channel carries no flits: allocation must skip it and established
  /// streams crossing it tear down like a mid-stream node death.
  [[nodiscard]] virtual bool link_faulty(NodeId from, Direction dir) const {
    (void)from;
    (void)dir;
    return false;
  }

  /// StatusField::version() of the live field — bumped only on real status
  /// changes, so models can skip whole-network rescans while it is stable.
  [[nodiscard]] virtual uint64_t field_version() const = 0;
};

struct SwitchingOptions {
  /// §8 link arbitration (ideal model only; flit-level models always
  /// arbitrate their switch).
  bool link_arbitration = false;
  int num_vcs = 2;           ///< virtual channels per directed channel
  int vc_buffer_depth = 4;   ///< flit buffer depth per VC (credits)
  int flits_per_packet = 4;  ///< head + body + tail flits per packet
  /// Consecutive VC-allocation failures before a holding probe backtracks
  /// (the §10 escape); a streaming worm blocked 4x this long is dropped
  /// (deadlock recovery).
  int vc_stall_limit = 16;
};

class SwitchingModel {
 public:
  virtual ~SwitchingModel() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Whether the advance phase needs a LinkArbiter (the host creates one
  /// and passes it to advance_step).
  [[nodiscard]] virtual bool arbitrated() const = 0;

  /// A packet entered the network at `source` (host assigns ids densely in
  /// launch order).
  virtual void add_packet(int id, NodeId source) = 0;

  /// Runs the advance phase of one step: decisions, channel allocation and
  /// traversals, all through `host`.  `arbiter` is non-null iff arbitrated().
  virtual void advance_step(SwitchingHost& host, LinkArbiter* arbiter) = 0;

  /// Model-level aggregate counters (per-VC stalls, flit moves, ...) as
  /// sorted name/value pairs; empty for models with nothing to add.
  [[nodiscard]] virtual std::vector<std::pair<std::string, double>> metrics() const {
    return {};
  }

  /// Checks internal invariants (buffer occupancies within [0, depth],
  /// reservation consistency); throws std::logic_error on violation.  Tests
  /// call this between steps; release paths never pay for it.
  virtual void validate() const {}
};

using SwitchingModelFactory = std::function<std::unique_ptr<SwitchingModel>(
    const Topology& mesh, const SwitchingOptions& options)>;

class SwitchingModelRegistry {
 public:
  /// The process-wide registry (populated during static initialization by
  /// SwitchingModelRegistrar instances).
  static SwitchingModelRegistry& instance();

  /// Registers a factory under `name`; `meta` carries the one-line help and
  /// consumed config keys for the --list catalog.  Duplicate names throw.
  void add(const std::string& name, SwitchingModelFactory factory, ComponentMeta meta = {});

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;  ///< sorted

  /// Builds the named model; throws ConfigError with the known names (and a
  /// did-you-mean suggestion) on an unknown `name`, and on out-of-range
  /// options.
  [[nodiscard]] std::unique_ptr<SwitchingModel> make(const std::string& name,
                                                     const Topology& mesh,
                                                     const SwitchingOptions& options) const;

  /// The factory registered under `name`; throws ConfigError naming the
  /// known models otherwise.  Config validators call it (discarding the
  /// result) to fail fast on typos with the same message make() would give.
  [[nodiscard]] const SwitchingModelFactory& require(const std::string& name) const;

  /// The catalog rows for every registered model (sorted by name).
  [[nodiscard]] std::vector<ComponentInfo> describe() const { return registry_.describe(); }

 private:
  NamedRegistry<SwitchingModelFactory> registry_{"switching model"};
};

/// Self-registration helper: `static SwitchingModelRegistrar r("name", fn);`
struct SwitchingModelRegistrar {
  SwitchingModelRegistrar(const std::string& name, SwitchingModelFactory factory,
                          ComponentMeta meta = {});
};

/// Convenience wrapper over SwitchingModelRegistry::instance().make().
std::unique_ptr<SwitchingModel> make_switching_model(const std::string& name,
                                                     const Topology& mesh,
                                                     const SwitchingOptions& options);

}  // namespace lgfi
