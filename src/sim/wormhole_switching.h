#pragma once
// Flit-level wormhole switching with virtual channels (DESIGN.md §10).
//
// Packets serialize into `flits_per_packet` flits and move under the three
// classic router resources:
//
//   virtual channels   each directed physical channel multiplexes `num_vcs`
//                      VCs; a VC is reserved by at most one packet at a time
//   credits            each VC owns a `vc_buffer_depth`-flit buffer at its
//                      downstream node; a flit advances only into free space
//   switch allocation  at most one flit crosses a physical channel per step,
//                      granted by the §8 round-robin LinkArbiter
//
// The model adapts wormhole switching to this paper's routing family, whose
// header is a PCS path-setup probe that may backtrack (routing_header.h).
// A packet's life has two phases:
//
//   setup    the head flit advances as a probe under router decisions,
//            holding VCs on at most the last `flits_per_packet` hops of its
//            path (the physical extent of the worm behind it); hops sliding
//            out of that window release, and a backtrack releases the hop it
//            pops.  Data flits never enter a channel the probe could still
//            abandon (the standard way to combine backtracking with flit
//            pipelining — compressionless / pipelined circuit switching).
//   stream   once the head reaches the destination, its setup holds release
//            and the body flits stream along the recorded path as a true
//            data worm: the lead flit acquires a VC per hop as it advances,
//            flits behind it move under credit flow control, and VCs release
//            behind the tail — the worm occupies a sliding span of a few
//            channels, exactly like wormhole data movement.
//
// Progress and deadlock handling (full argument in DESIGN.md §10):
//   - a probe that cannot win a VC for `vc_stall_limit` consecutive steps
//     backtracks (releasing its newest hold) instead of holding-and-waiting
//     forever;
//   - a streaming worm whose lead flit cannot acquire its next VC for
//     4 * vc_stall_limit consecutive steps is dropped and torn down — the
//     deadlock-recovery discipline (the drop reports as budget_exhausted);
//   - a streaming worm that still needs a node that dies mid-stream (its
//     source, any buffer node, any remaining hop) is torn down and reported
//     unreachable — setup probes instead re-decide against the live field;
//   - the destination ejects one flit per step and the §8 round-robin is
//     starvation-free, so held resources always drain.
//
// Determinism: state is a pure function of the add_packet / advance_step
// sequence; requests are submitted in a fixed service order (probes in
// node-ascending FIFO order, then streaming worms in head-arrival order),
// so the §8 grant sequence — and with it every latency histogram — is
// byte-identical for any thread count.

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/switching_model.h"

namespace lgfi {

class WormholeSwitching final : public SwitchingModel {
 public:
  /// Throws ConfigError on out-of-range options (num_vcs in [1, 64],
  /// vc_buffer_depth and flits_per_packet in [1, 4096]).
  WormholeSwitching(const Topology& mesh, const SwitchingOptions& options);

  [[nodiscard]] std::string name() const override { return "wormhole"; }
  [[nodiscard]] bool arbitrated() const override { return true; }

  void add_packet(int id, NodeId source) override;
  void advance_step(SwitchingHost& host, LinkArbiter* arbiter) override;

  /// flit_moves, vc_alloc_stalls, forced_backtracks, deadlock_drops, and the
  /// per-VC credit_stalls_vc{v} / switch_stalls_vc{v} counters.
  [[nodiscard]] std::vector<std::pair<std::string, double>> metrics() const override;

  /// Checks buffer occupancies, VC-reservation consistency and per-worm flit
  /// conservation; throws std::logic_error naming the violation.
  void validate() const override;

  // --- observability (tests, benches) --------------------------------------
  /// VCs currently reserved across all channels.
  [[nodiscard]] int reserved_vc_count() const;
  [[nodiscard]] long long total_flit_moves() const { return flit_moves_; }
  [[nodiscard]] long long total_vc_alloc_stalls() const { return vc_alloc_stalls_; }
  [[nodiscard]] long long total_forced_backtracks() const { return forced_backtracks_; }
  [[nodiscard]] long long total_deadlock_drops() const { return deadlock_drops_; }
  [[nodiscard]] long long total_fault_drops() const { return fault_drops_; }

  /// Snapshot of one packet's switching state.
  struct WormView {
    bool streaming = false;   ///< head arrived; flits are streaming
    bool done = false;        ///< finished (any outcome)
    int flits_at_source = 0;  ///< data flits not yet injected
    long long flits_ejected = 0;  ///< flits sunk at the destination
    int held_vcs = 0;             ///< VCs this packet currently reserves
    int buffered_flits = 0;       ///< flits currently in VC buffers
  };
  [[nodiscard]] WormView worm(int id) const;

 private:
  struct Hop {
    int32_t channel = -1;   ///< from-node * dirs + direction index
    NodeId to_node = kInvalidNode;  ///< the channel's receiving node
    int16_t vc = -1;        ///< reserved VC on that channel, or -1 (not held)
    int16_t occupancy = 0;  ///< data flits in the VC's downstream buffer
  };
  struct Worm {
    NodeId node = kInvalidNode;  ///< probe/head node (setup phase)
    bool streaming = false;
    bool done = false;
    int at_source = 0;      ///< data flits waiting at the source
    long long ejected = 0;  ///< flits ejected at the destination (head included)
    int vc_stall = 0;       ///< consecutive VC failures (setup escape rule)
    int stream_stall = 0;   ///< consecutive lead-flit VC failures (drop rule)
    bool fault_checked = false;  ///< stream scanned against the current field
    int held_from = 0;      ///< setup: hops [held_from, size) are reserved
    int tail = 0;           ///< stream: first hop not yet released
    int frontier = 0;       ///< stream: hops [tail, frontier) are reserved
    std::vector<Hop> path;  ///< hops source -> head (mirrors the header path)
  };

  [[nodiscard]] size_t channel_of(NodeId from, Direction dir) const {
    return static_cast<size_t>(from) * static_cast<size_t>(dirs_) +
           static_cast<size_t>(dir.index());
  }
  /// Lowest free VC on `channel`, or -1 when all are reserved.
  [[nodiscard]] int free_vc(int32_t channel) const;
  void reserve(Hop& hop, int vc, int id);
  void release_hop(Hop& hop);
  /// Releases every VC the worm still holds (either phase).
  void release_all(Worm& w);
  void remove_from_fifo(NodeId node, int id);

  const Topology* mesh_;
  SwitchingOptions options_;
  int dirs_;
  std::vector<int32_t> vc_owner_;  ///< (channel * num_vcs + vc) -> worm id or -1
  std::vector<Worm> worms_;        ///< indexed by packet id (dense, launch order)
  std::vector<std::vector<int>> fifo_;  ///< setup probes resident per node
  std::vector<int> streams_;            ///< streaming worm ids, head-arrival order
  /// field_version() at the last fault scan; streams rescan only when the
  /// field actually changed (fault-free runs never pay for the scan).
  uint64_t seen_field_version_ = ~0ull;

  long long flit_moves_ = 0;
  long long vc_alloc_stalls_ = 0;
  long long forced_backtracks_ = 0;
  long long deadlock_drops_ = 0;
  long long fault_drops_ = 0;  ///< circuits torn down by a mid-stream fault
  std::vector<long long> credit_stalls_vc_;  ///< flit blocked: buffer full
  std::vector<long long> switch_stalls_vc_;  ///< flit blocked: lost the switch
};

}  // namespace lgfi
