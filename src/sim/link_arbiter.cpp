#include "src/sim/link_arbiter.h"

#include <algorithm>
#include <numeric>

namespace lgfi {

LinkArbiter::LinkArbiter(const Topology& mesh)
    : dirs_(mesh.direction_count()),
      cursor_(static_cast<size_t>(mesh.node_count()) * static_cast<size_t>(dirs_), 0) {}

void LinkArbiter::begin_step() {
  request_channel_.clear();
  granted_.clear();
  stalled_this_step_ = 0;
}

int LinkArbiter::request(NodeId from, Direction dir) {
  const int ticket = static_cast<int>(request_channel_.size());
  request_channel_.push_back(static_cast<int32_t>(channel_of(from, dir)));
  granted_.push_back(0);
  return ticket;
}

void LinkArbiter::arbitrate() {
  const size_t n = request_channel_.size();
  if (n == 0) return;

  // Tickets grouped by channel, submission order preserved inside a group.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    return request_channel_[static_cast<size_t>(a)] < request_channel_[static_cast<size_t>(b)];
  });

  size_t i = 0;
  while (i < n) {
    size_t j = i;
    const int32_t channel = request_channel_[static_cast<size_t>(order[i])];
    while (j < n && request_channel_[static_cast<size_t>(order[j])] == channel) ++j;
    const size_t contenders = j - i;
    // A link-faulted channel grants nobody: all contenders stall, and the
    // cursor does not move so the rotation resumes intact after repair.
    if (links_ != nullptr && links_->any() &&
        links_->faulty(static_cast<NodeId>(channel / dirs_),
                       Direction::from_index(channel % dirs_))) {
      stalled_this_step_ += static_cast<long long>(contenders);
      i = j;
      continue;
    }
    const size_t winner = i + cursor_[static_cast<size_t>(channel)] % contenders;
    granted_[static_cast<size_t>(order[winner])] = 1;
    if (contenders > 1) {
      ++cursor_[static_cast<size_t>(channel)];
      stalled_this_step_ += static_cast<long long>(contenders - 1);
    }
    i = j;
  }
  total_stalled_ += stalled_this_step_;
}

}  // namespace lgfi
