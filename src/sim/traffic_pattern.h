#pragma once
// Synthetic traffic patterns behind a self-registering factory.
//
// Interconnect evaluation measures latency/throughput curves under synthetic
// workloads; each pattern maps an injecting source to a destination (the
// booksim traffic-pattern vocabulary, generalized to k-ary n-D meshes).
// Patterns self-register by name — exactly the RouterRegistry scheme — so
// the traffic engine, benches and the sweep CLI build them from a Config
// string and never name a concrete type.
//
// Registered names:
//   uniform         destination uniform over all nodes != source
//   transpose       coordinates rotated one dimension (2-D: (x,y) -> (y,x))
//   bit_complement  destination mirrored through the mesh center
//   hotspot         fraction `hotspot_frac` targets the center node, rest uniform
//   permutation     one fixed random node permutation per workload
//
// A pattern may return the source itself; that means "this node does not
// inject under this pattern" (e.g. the diagonal of transpose, fixed points
// of the permutation) and the workload skips the injection slot.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/named_registry.h"
#include "src/mesh/topology.h"
#include "src/sim/rng.h"

namespace lgfi {

/// Fraction of hotspot-pattern injections that target the center node when
/// the config leaves `hotspot_frac` undefined; also the experiment-config
/// default, so the two surfaces cannot drift apart.
inline constexpr double kDefaultHotspotFrac = 0.1;

class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;

  /// Destination for a message injected at `source`.  May consult `rng` (the
  /// replication's private stream), so sampling is deterministic per
  /// replication and thread-count independent.
  [[nodiscard]] virtual Coord destination(const Coord& source, Rng& rng) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

using TrafficPatternFactory = std::function<std::unique_ptr<TrafficPattern>(
    const Topology& mesh, const Config& config, Rng& rng)>;

class TrafficPatternRegistry {
 public:
  /// The process-wide registry (populated during static initialization by
  /// TrafficPatternRegistrar instances).
  static TrafficPatternRegistry& instance();

  /// Registers a factory under `name`; `meta` carries the one-line help and
  /// consumed config keys for the --list catalog.  Duplicate names throw.
  void add(const std::string& name, TrafficPatternFactory factory, ComponentMeta meta = {});

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;  ///< sorted

  /// Builds the named pattern; throws ConfigError with the known names (and
  /// a did-you-mean suggestion) on an unknown `name`.  The config supplies
  /// pattern-level options (hotspot_frac, ...); `rng` seeds
  /// construction-time randomness (the permutation pattern's table).
  [[nodiscard]] std::unique_ptr<TrafficPattern> make(const std::string& name,
                                                     const Topology& mesh,
                                                     const Config& config, Rng& rng) const;

  /// The catalog rows for every registered pattern (sorted by name).
  [[nodiscard]] std::vector<ComponentInfo> describe() const { return registry_.describe(); }

 private:
  NamedRegistry<TrafficPatternFactory> registry_{"traffic pattern"};
};

/// Self-registration helper: `static TrafficPatternRegistrar r("name", fn);`
struct TrafficPatternRegistrar {
  TrafficPatternRegistrar(const std::string& name, TrafficPatternFactory factory,
                          ComponentMeta meta = {});
};

/// Convenience wrapper over TrafficPatternRegistry::instance().make().
std::unique_ptr<TrafficPattern> make_traffic_pattern(const std::string& name,
                                                     const Topology& mesh,
                                                     const Config& config, Rng& rng);

/// The hotspot pattern's target: the center node of the mesh.
Coord mesh_center(const Topology& mesh);

}  // namespace lgfi
