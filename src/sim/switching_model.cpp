#include "src/sim/switching_model.h"

#include <algorithm>

#include "src/sim/link_arbiter.h"
#include "src/sim/wormhole_switching.h"

namespace lgfi {

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

SwitchingModelRegistry& SwitchingModelRegistry::instance() {
  static SwitchingModelRegistry registry;
  return registry;
}

void SwitchingModelRegistry::add(const std::string& name, SwitchingModelFactory factory,
                                 ComponentMeta meta) {
  registry_.add(name, std::move(factory), std::move(meta));
}

bool SwitchingModelRegistry::contains(const std::string& name) const {
  return registry_.contains(name);
}

std::vector<std::string> SwitchingModelRegistry::names() const { return registry_.names(); }

const SwitchingModelFactory& SwitchingModelRegistry::require(const std::string& name) const {
  return registry_.require(name);
}

std::unique_ptr<SwitchingModel> SwitchingModelRegistry::make(
    const std::string& name, const Topology& mesh, const SwitchingOptions& options) const {
  return require(name)(mesh, options);
}

SwitchingModelRegistrar::SwitchingModelRegistrar(const std::string& name,
                                                 SwitchingModelFactory factory,
                                                 ComponentMeta meta) {
  SwitchingModelRegistry::instance().add(name, std::move(factory), std::move(meta));
}

std::unique_ptr<SwitchingModel> make_switching_model(const std::string& name,
                                                     const Topology& mesh,
                                                     const SwitchingOptions& options) {
  return SwitchingModelRegistry::instance().make(name, mesh, options);
}

// ---------------------------------------------------------------------------
// The ideal model: single-flit packets, one hop per step — the historical
// advance phase, kept byte-identical in both arbitration regimes.
// ---------------------------------------------------------------------------

namespace {

class IdealSwitching final : public SwitchingModel {
 public:
  IdealSwitching(const Topology& mesh, const SwitchingOptions& options)
      : arbitration_(options.link_arbitration) {
    if (arbitration_) fifo_.resize(static_cast<size_t>(mesh.node_count()));
  }

  [[nodiscard]] std::string name() const override { return "ideal"; }
  [[nodiscard]] bool arbitrated() const override { return arbitration_; }

  void add_packet(int id, NodeId source) override {
    if (arbitration_) {
      fifo_[static_cast<size_t>(source)].push_back(id);
    } else {
      order_.push_back(id);
    }
  }

  void advance_step(SwitchingHost& host, LinkArbiter* arbiter) override {
    if (arbitration_) {
      advance_arbitrated(host, *arbiter);
    } else {
      advance_contention_free(host);
    }
  }

 private:
  void advance_contention_free(SwitchingHost& host) {
    // The historical Figure 7 loop: every packet advances unconditionally,
    // one hop per step, in launch order.
    size_t keep = 0;
    for (size_t i = 0; i < order_.size(); ++i) {
      const int id = order_[i];
      const SwitchDecision d = host.decide(id);
      bool finished = false;
      switch (d.action) {
        case SwitchAction::kDeliver:
          host.finish(id, PacketOutcome::kDelivered);
          finished = true;
          break;
        case SwitchAction::kUnreachable:
          host.finish(id, PacketOutcome::kUnreachable);
          finished = true;
          break;
        case SwitchAction::kForward:
        case SwitchAction::kBacktrack:
          finished = host.commit_move(id, d).finished;
          break;
      }
      if (!finished) order_[keep++] = id;
    }
    order_.resize(keep);
  }

  void advance_arbitrated(SwitchingHost& host, LinkArbiter& arbiter) {
    // Decision sub-phase: every in-flight packet decides at its current
    // node, in per-node FIFO service order (nodes ascending, arrivals in
    // order), and moves become channel requests.  Decisions are pure w.r.t.
    // the header (marking happens on the granted traversal), so a stalled
    // packet simply re-decides next step under the then-current information.
    struct Pending {
      int id;
      SwitchDecision decision;
      int ticket;
      NodeId node;
    };
    arbiter.begin_step();
    std::vector<Pending> pending;
    std::vector<std::pair<NodeId, int>> finished_in_place;
    const NodeId nodes = static_cast<NodeId>(fifo_.size());
    for (NodeId node = 0; node < nodes; ++node) {
      for (const int id : fifo_[static_cast<size_t>(node)]) {
        const SwitchDecision d = host.decide(id);
        switch (d.action) {
          case SwitchAction::kDeliver:
            host.finish(id, PacketOutcome::kDelivered);
            finished_in_place.emplace_back(node, id);
            break;
          case SwitchAction::kUnreachable:
            host.finish(id, PacketOutcome::kUnreachable);
            finished_in_place.emplace_back(node, id);
            break;
          case SwitchAction::kForward:
            pending.push_back({id, d, arbiter.request(node, d.direction), node});
            break;
          case SwitchAction::kBacktrack:
            // Backtracking traverses the channel back to the previous node —
            // it contends like any other traversal.
            pending.push_back({id, d, arbiter.request(node, d.back), node});
            break;
        }
      }
    }
    for (const auto& [node, id] : finished_in_place) remove_from_fifo(node, id);

    arbiter.arbitrate();

    // Traversal sub-phase: winners move one hop; losers stall where they are.
    for (const Pending& p : pending) {
      if (!arbiter.granted(p.ticket)) {
        host.count_stall(p.id);
        continue;
      }
      const MoveResult r = host.commit_move(p.id, p.decision);
      remove_from_fifo(p.node, p.id);
      if (!r.finished) fifo_[static_cast<size_t>(r.node)].push_back(p.id);
    }
  }

  void remove_from_fifo(NodeId node, int id) {
    auto& q = fifo_[static_cast<size_t>(node)];
    q.erase(std::find(q.begin(), q.end(), id));
  }

  bool arbitration_;
  /// Contention-free: active packet ids in launch order.
  std::vector<int> order_;
  /// Arbitrated: per-node FIFO of resident active packet ids — the service
  /// order of the advance phase, hence the submission order the arbiter's
  /// round-robin rotates over.
  std::vector<std::vector<int>> fifo_;
};

// Both registrations live here (not next to each implementation): this
// translation unit is always linked — make_switching_model is referenced by
// DynamicSimulation — so the static-library linker cannot dead-strip the
// registrars the way it would an otherwise-unreferenced object file.
const SwitchingModelRegistrar ideal_registrar(  // NOLINT(cert-err58-cpp)
    "ideal",
    [](const Topology& mesh, const SwitchingOptions& options) {
      return std::make_unique<IdealSwitching>(mesh, options);
    },
    {"single-flit packets, one hop per step (the historical behavior)", {"arbitration"}});

const SwitchingModelRegistrar wormhole_registrar(  // NOLINT(cert-err58-cpp)
    "wormhole",
    [](const Topology& mesh, const SwitchingOptions& options) {
      return std::make_unique<WormholeSwitching>(mesh, options);
    },
    {"flit-level switching: virtual channels + credit flow control",
     {"num_vcs", "vc_buffer_depth", "flits_per_packet"}});

}  // namespace

}  // namespace lgfi
