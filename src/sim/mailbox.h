#pragma once
// Double-buffered per-node mailboxes for synchronous message passing.
//
// The paper's execution model (Section 5, Figure 7) is synchronous: within a
// round every node reads the messages its neighbours sent in the previous
// round and emits messages that arrive in the next round — information
// advances exactly one hop per round.  MailboxSystem<T> implements that BSP
// contract: send() during round r is only visible through inbox() in round
// r + 1, after flip().  Delivery order within an inbox is the deterministic
// send order, so runs are reproducible.

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/mesh/topology.h"

namespace lgfi {

/// Aggregate counters shared by all mailbox instantiations; benches report
/// these as the protocols' message complexity.
struct MailboxStats {
  long long messages_sent = 0;
  long long rounds_flipped = 0;

  void reset() { *this = MailboxStats{}; }
};

template <typename T>
class MailboxSystem {
 public:
  explicit MailboxSystem(long long node_count)
      : current_(static_cast<size_t>(node_count)),
        next_(static_cast<size_t>(node_count)) {}

  /// Queues `msg` for delivery to `to` at the start of the next round.
  void send(NodeId to, T msg) {
    assert(to >= 0 && static_cast<size_t>(to) < next_.size());
    next_[static_cast<size_t>(to)].push_back(std::move(msg));
    ++stats_.messages_sent;
  }

  /// Messages delivered to `node` this round (sent last round).
  [[nodiscard]] const std::vector<T>& inbox(NodeId node) const {
    return current_[static_cast<size_t>(node)];
  }

  /// Ends the round: everything sent becomes next round's inboxes.
  void flip() {
    for (auto& box : current_) box.clear();
    current_.swap(next_);
    ++stats_.rounds_flipped;
  }

  /// True if no message is waiting for the next round (quiescence test
  /// component; protocols also check for local state changes).
  [[nodiscard]] bool next_round_empty() const {
    for (const auto& box : next_)
      if (!box.empty()) return false;
    return true;
  }

  /// Number of messages that will be delivered next round.
  [[nodiscard]] long long pending() const {
    long long n = 0;
    for (const auto& box : next_) n += static_cast<long long>(box.size());
    return n;
  }

  void clear() {
    for (auto& box : current_) box.clear();
    for (auto& box : next_) box.clear();
  }

  [[nodiscard]] const MailboxStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

 private:
  std::vector<std::vector<T>> current_;
  std::vector<std::vector<T>> next_;
  MailboxStats stats_;
};

}  // namespace lgfi
