#pragma once
// Double-buffered per-node mailboxes for synchronous message passing.
//
// The paper's execution model (Section 5, Figure 7) is synchronous: within a
// round every node reads the messages its neighbours sent in the previous
// round and emits messages that arrive in the next round — information
// advances exactly one hop per round.  MailboxSystem<T> implements that BSP
// contract: send() during round r is only visible through inbox() in round
// r + 1, after flip().  Delivery order within an inbox is the deterministic
// send order, so runs are reproducible.
//
// Active-set bookkeeping (DESIGN.md §14): the system tracks the set of nodes
// with a non-empty next-round box, so flip(), next_round_empty() and
// pending() cost O(active nodes), not O(N).  flip() sorts the incoming
// active list, so round loops that iterate active() visit inboxes in
// ascending NodeId order — the same order as a full 0..N scan, which keeps
// message emission (and therefore every downstream pid / dedup decision)
// byte-identical between the active-set and full-scan round engines.

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/mesh/topology.h"

namespace lgfi {

/// Aggregate counters shared by all mailbox instantiations; benches report
/// these as the protocols' message complexity.
struct MailboxStats {
  long long messages_sent = 0;
  long long rounds_flipped = 0;

  void reset() { *this = MailboxStats{}; }
};

template <typename T>
class MailboxSystem {
 public:
  explicit MailboxSystem(long long node_count)
      : current_(static_cast<size_t>(node_count)),
        next_(static_cast<size_t>(node_count)) {}

  /// Queues `msg` for delivery to `to` at the start of the next round.
  void send(NodeId to, T msg) {
    assert(to >= 0 && static_cast<size_t>(to) < next_.size());
    auto& box = next_[static_cast<size_t>(to)];
    if (box.empty()) next_active_.push_back(to);  // first message: join the set
    box.push_back(std::move(msg));
    ++pending_count_;
    ++stats_.messages_sent;
  }

  /// Messages delivered to `node` this round (sent last round).
  [[nodiscard]] const std::vector<T>& inbox(NodeId node) const {
    return current_[static_cast<size_t>(node)];
  }

  /// Ends the round: everything sent becomes next round's inboxes.  Only the
  /// boxes that were actually populated are touched.
  void flip() {
    for (NodeId id : active_) current_[static_cast<size_t>(id)].clear();
    current_.swap(next_);
    active_.swap(next_active_);
    next_active_.clear();
    // Ascending order = the full-scan delivery order (see header comment).
    std::sort(active_.begin(), active_.end());
    pending_count_ = 0;
    ++stats_.rounds_flipped;
  }

  /// Nodes with a non-empty inbox this round, ascending.
  [[nodiscard]] const std::vector<NodeId>& active() const { return active_; }

  /// True if no message is waiting for the next round (quiescence test
  /// component; protocols also check for local state changes).
  [[nodiscard]] bool next_round_empty() const { return pending_count_ == 0; }

  /// Number of messages that will be delivered next round.
  [[nodiscard]] long long pending() const { return pending_count_; }

  void clear() {
    for (NodeId id : active_) current_[static_cast<size_t>(id)].clear();
    for (NodeId id : next_active_) next_[static_cast<size_t>(id)].clear();
    active_.clear();
    next_active_.clear();
    pending_count_ = 0;
  }

  [[nodiscard]] const MailboxStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  /// Estimated resident bytes (box headers + retained message capacity);
  /// feeds the bytes/node bench counter.  O(N) — not for hot paths.
  [[nodiscard]] long long memory_bytes() const {
    long long bytes = static_cast<long long>(
        (current_.capacity() + next_.capacity()) * sizeof(std::vector<T>) +
        (active_.capacity() + next_active_.capacity()) * sizeof(NodeId));
    for (const auto& box : current_) bytes += static_cast<long long>(box.capacity() * sizeof(T));
    for (const auto& box : next_) bytes += static_cast<long long>(box.capacity() * sizeof(T));
    return bytes;
  }

 private:
  std::vector<std::vector<T>> current_;
  std::vector<std::vector<T>> next_;
  std::vector<NodeId> active_;       ///< non-empty current boxes, sorted
  std::vector<NodeId> next_active_;  ///< non-empty next boxes, send order
  long long pending_count_ = 0;
  MailboxStats stats_;
};

}  // namespace lgfi
