#include "src/sim/fault_schedule.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_set>

namespace lgfi {

FaultSchedule::FaultSchedule(std::vector<FaultEvent> events) : events_(std::move(events)) {
  sort();
}

void FaultSchedule::sort() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.step < b.step; });
}

void FaultSchedule::add(FaultEvent e) {
  events_.push_back(std::move(e));
  sort();
}

void FaultSchedule::add_fail(long long step, const Coord& node) {
  add(FaultEvent{step, node, FaultEventKind::kFail});
}

void FaultSchedule::add_recover(long long step, const Coord& node) {
  add(FaultEvent{step, node, FaultEventKind::kRecover});
}

std::vector<FaultEvent> FaultSchedule::events_at(long long step) const {
  std::vector<FaultEvent> out;
  for (const auto& e : events_)
    if (e.step == step) out.push_back(e);
  return out;
}

long long FaultSchedule::last_step() const {
  return events_.empty() ? -1 : events_.back().step;
}

std::vector<long long> FaultSchedule::occurrence_times() const {
  std::vector<long long> times;
  times.reserve(events_.size());
  for (const auto& e : events_) times.push_back(e.step);
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

namespace {

bool interior_ok(const Topology& mesh, const Coord& c, const FaultPlacementOptions& opts) {
  return !opts.avoid_outer_surface || !mesh.on_outer_surface(c);
}

}  // namespace

std::vector<Coord> random_fault_placement(const Topology& mesh, int count, Rng& rng,
                                          const FaultPlacementOptions& opts,
                                          const std::vector<Coord>& forbidden) {
  // Membership-only (insert/count): the placement *order* is fully decided
  // by the rng draw sequence, never by set traversal — iterating this set
  // would trip the determinism lint (DESIGN.md §16).
  std::unordered_set<NodeId> taken;
  for (const auto& f : forbidden)
    if (mesh.in_bounds(f)) taken.insert(mesh.index_of(f));

  std::vector<Coord> out;
  out.reserve(static_cast<size_t>(count));
  // Rejection sampling; the interior is the overwhelming majority of nodes
  // for any mesh the experiments use, so this terminates fast.  A hard cap
  // protects against pathological over-constrained requests.
  long long attempts = 0;
  const long long max_attempts = 1000 + 200ll * count + 4 * mesh.node_count();
  while (static_cast<int>(out.size()) < count && attempts < max_attempts) {
    ++attempts;
    const NodeId id = static_cast<NodeId>(rng.next_below(static_cast<uint64_t>(mesh.node_count())));
    const Coord c = mesh.coord_of(id);
    if (!interior_ok(mesh, c, opts)) continue;
    if (opts.avoid_duplicates && taken.count(id)) continue;
    taken.insert(id);
    out.push_back(c);
  }
  return out;
}

std::vector<Coord> clustered_fault_placement(const Topology& mesh, int count, Rng& rng,
                                             const FaultPlacementOptions& opts) {
  std::vector<Coord> out;
  if (count <= 0) return out;
  out.reserve(static_cast<size_t>(count));

  // Random interior seed.  Wrapped dimensions have no outer surface, so the
  // interior shrink only applies where a surface exists.
  Coord seed(mesh.dims());
  for (int i = 0; i < mesh.dims(); ++i) {
    const bool shrink = opts.avoid_outer_surface && !mesh.wraps(i);
    const int lo = shrink ? 1 : 0;
    const int hi = mesh.extent(i) - 1 - (shrink ? 1 : 0);
    if (hi < lo) return out;  // mesh too small for interior placement
    seed[i] = rng.uniform_int(lo, hi);
  }

  // Membership-only, like `taken` above: growth order comes from rng picks
  // over the `frontier` vector, and candidate enumeration walks the
  // topology's fixed grid-neighbor order — the set never dictates order.
  std::unordered_set<NodeId> chosen;
  std::vector<Coord> frontier{seed};
  chosen.insert(mesh.index_of(seed));
  out.push_back(seed);

  while (static_cast<int>(out.size()) < count && !frontier.empty()) {
    const size_t pick = static_cast<size_t>(rng.next_below(frontier.size()));
    const Coord base = frontier[pick];
    std::vector<Coord> candidates;
    // Grid growth (no wraparound): blocks are coordinate-space boxes, so a
    // seam-spanning cluster would bounding-box to the whole dimension.
    mesh.for_each_grid_neighbor(base, [&](Direction, const Coord& nb) {
      if (!interior_ok(mesh, nb, opts)) return;
      if (chosen.count(mesh.index_of(nb))) return;
      candidates.push_back(nb);
    });
    if (candidates.empty()) {
      frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(pick));
      continue;
    }
    const Coord next = candidates[static_cast<size_t>(rng.next_below(candidates.size()))];
    chosen.insert(mesh.index_of(next));
    out.push_back(next);
    frontier.push_back(next);
  }
  return out;
}

std::vector<Coord> box_fault_placement(const Topology& mesh, const Box& box) {
  std::vector<Coord> out;
  const Box clipped = mesh.clip(box);
  clipped.for_each([&](const Coord& c) {
    if (!mesh.on_outer_surface(c)) out.push_back(c);
  });
  return out;
}

Box parse_box_spec(const std::string& spec) {
  // Each bound must consume its whole token: std::stoi("5x") happily
  // returns 5, so "5x:6,3:4" used to run silently as "5:6,3:4".
  const auto parse_bound = [&spec](const std::string& token) {
    size_t used = 0;
    int v = 0;
    try {
      v = std::stoi(token, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used == 0 || used != token.size())
      throw ConfigError("bad fault_box token '" + token + "' in '" + spec +
                        "' (want lo:hi,lo:hi,... per dimension)");
    return v;
  };

  std::vector<std::pair<int, int>> ranges;
  // getline would silently drop a trailing empty token, so "5:6," would
  // parse as a 1-D box instead of being rejected.
  if (!spec.empty() && spec.back() == ',')
    throw ConfigError("bad fault_box '" + spec + "' (trailing comma)");
  std::istringstream is(spec);
  std::string range;
  while (std::getline(is, range, ',')) {
    const size_t colon = range.find(':');
    if (colon == std::string::npos) {
      const int v = parse_bound(range);
      ranges.emplace_back(v, v);
    } else {
      ranges.emplace_back(parse_bound(range.substr(0, colon)),
                          parse_bound(range.substr(colon + 1)));
    }
  }
  if (ranges.empty() || ranges.size() > static_cast<size_t>(kMaxDims))
    throw ConfigError("bad fault_box '" + spec + "' (want 1.." + std::to_string(kMaxDims) +
                      " dimensions)");
  Coord lo(static_cast<int>(ranges.size())), hi(static_cast<int>(ranges.size()));
  for (size_t i = 0; i < ranges.size(); ++i) {
    lo[static_cast<int>(i)] = ranges[i].first;
    hi[static_cast<int>(i)] = ranges[i].second;
  }
  return Box(lo, hi);
}

NamedRegistry<FaultModelFactory>& fault_model_registry() {
  static NamedRegistry<FaultModelFactory> registry = [] {
    NamedRegistry<FaultModelFactory> reg("fault model");
    reg.add(
        "random",
        [](const Topology& mesh, const Config& cfg, Rng& rng) {
          return random_fault_placement(mesh, static_cast<int>(cfg.get_int("faults")), rng);
        },
        {"independent uniform placement over interior nodes", {"faults"}});
    reg.add(
        "clustered",
        [](const Topology& mesh, const Config& cfg, Rng& rng) {
          return clustered_fault_placement(mesh, static_cast<int>(cfg.get_int("faults")), rng);
        },
        {"compact connected cluster grown from a random interior seed", {"faults"}});
    reg.add(
        "box",
        [](const Topology& mesh, const Config& cfg, Rng&) {
          const Box box = parse_box_spec(cfg.get_str("fault_box"));
          if (box.lo().size() != mesh.dims())
            throw ConfigError("fault_box '" + cfg.get_str("fault_box") + "' has " +
                              std::to_string(box.lo().size()) +
                              " dimensions but the mesh has " + std::to_string(mesh.dims()));
          return box_fault_placement(mesh, box);
        },
        {"fails every interior node of the fault_box extents (exact block)", {"fault_box"}});
    // The lifecycle generators produce a dynamic fail/repair timeline, not a
    // static placement (src/sim/fault_timeline.h); the experiment runner
    // special-cases them before ever calling place_faults.  The registry
    // entries exist so `--list` documents them and typos still get the
    // did-you-mean treatment.
    const FaultModelFactory lifecycle_factory =
        [](const Topology&, const Config& cfg, Rng&) -> std::vector<Coord> {
      throw ConfigError("fault_model=" + cfg.get_str("fault_model") +
                        " generates a dynamic fail/repair timeline and needs the "
                        "dynamic step loop (set traffic= or routes>0), not a static "
                        "placement");
    };
    reg.add("lifecycle", lifecycle_factory,
            {"Poisson node fail/repair/transient lifecycle (dynamic timeline)",
             {"fault_arrival_rate", "repair_rate", "transient_frac", "fault_horizon"}});
    reg.add("lifecycle_links", lifecycle_factory,
            {"Poisson directed-link fail/repair lifecycle (ports, not nodes)",
             {"fault_arrival_rate", "repair_rate", "transient_frac", "fault_horizon"}});
    return reg;
  }();
  return registry;
}

std::vector<Coord> place_faults(const Topology& mesh, const Config& config, Rng& rng) {
  return fault_model_registry().require(config.get_str("fault_model"))(mesh, config, rng);
}

FaultSchedule periodic_random_schedule(const Topology& mesh, int batches,
                                       int faults_per_batch, long long start,
                                       long long interval, Rng& rng, bool recoveries,
                                       const std::vector<Coord>& forbidden) {
  FaultSchedule schedule;
  std::vector<Coord> failed;  // currently-faulty pool, recovery candidates
  std::vector<Coord> avoid = forbidden;
  for (int b = 0; b < batches; ++b) {
    const long long t = start + b * interval;
    const bool recover_batch = recoveries && !failed.empty() && rng.bernoulli(0.3);
    if (recover_batch) {
      const size_t pick = static_cast<size_t>(rng.next_below(failed.size()));
      schedule.add_recover(t, failed[pick]);
      failed.erase(failed.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      auto placed = random_fault_placement(mesh, faults_per_batch, rng, {}, avoid);
      for (const auto& c : placed) {
        schedule.add_fail(t, c);
        failed.push_back(c);
        avoid.push_back(c);
      }
    }
  }
  return schedule;
}

}  // namespace lgfi
