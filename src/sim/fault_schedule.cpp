#include "src/sim/fault_schedule.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace lgfi {

FaultSchedule::FaultSchedule(std::vector<FaultEvent> events) : events_(std::move(events)) {
  sort();
}

void FaultSchedule::sort() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.step < b.step; });
}

void FaultSchedule::add(FaultEvent e) {
  events_.push_back(std::move(e));
  sort();
}

void FaultSchedule::add_fail(long long step, const Coord& node) {
  add(FaultEvent{step, node, FaultEventKind::kFail});
}

void FaultSchedule::add_recover(long long step, const Coord& node) {
  add(FaultEvent{step, node, FaultEventKind::kRecover});
}

std::vector<FaultEvent> FaultSchedule::events_at(long long step) const {
  std::vector<FaultEvent> out;
  for (const auto& e : events_)
    if (e.step == step) out.push_back(e);
  return out;
}

long long FaultSchedule::last_step() const {
  return events_.empty() ? -1 : events_.back().step;
}

std::vector<long long> FaultSchedule::occurrence_times() const {
  std::vector<long long> times;
  for (const auto& e : events_) times.push_back(e.step);
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

namespace {

bool interior_ok(const MeshTopology& mesh, const Coord& c, const FaultPlacementOptions& opts) {
  return !opts.avoid_outer_surface || !mesh.on_outer_surface(c);
}

}  // namespace

std::vector<Coord> random_fault_placement(const MeshTopology& mesh, int count, Rng& rng,
                                          const FaultPlacementOptions& opts,
                                          const std::vector<Coord>& forbidden) {
  std::unordered_set<NodeId> taken;
  for (const auto& f : forbidden)
    if (mesh.in_bounds(f)) taken.insert(mesh.index_of(f));

  std::vector<Coord> out;
  out.reserve(static_cast<size_t>(count));
  // Rejection sampling; the interior is the overwhelming majority of nodes
  // for any mesh the experiments use, so this terminates fast.  A hard cap
  // protects against pathological over-constrained requests.
  long long attempts = 0;
  const long long max_attempts = 1000 + 200ll * count + 4 * mesh.node_count();
  while (static_cast<int>(out.size()) < count && attempts < max_attempts) {
    ++attempts;
    const NodeId id = static_cast<NodeId>(rng.next_below(static_cast<uint64_t>(mesh.node_count())));
    const Coord c = mesh.coord_of(id);
    if (!interior_ok(mesh, c, opts)) continue;
    if (opts.avoid_duplicates && taken.count(id)) continue;
    taken.insert(id);
    out.push_back(c);
  }
  return out;
}

std::vector<Coord> clustered_fault_placement(const MeshTopology& mesh, int count, Rng& rng,
                                             const FaultPlacementOptions& opts) {
  std::vector<Coord> out;
  if (count <= 0) return out;

  // Random interior seed.
  Coord seed(mesh.dims());
  for (int i = 0; i < mesh.dims(); ++i) {
    const int lo = opts.avoid_outer_surface ? 1 : 0;
    const int hi = mesh.extent(i) - 1 - (opts.avoid_outer_surface ? 1 : 0);
    if (hi < lo) return out;  // mesh too small for interior placement
    seed[i] = rng.uniform_int(lo, hi);
  }

  std::unordered_set<NodeId> chosen;
  std::vector<Coord> frontier{seed};
  chosen.insert(mesh.index_of(seed));
  out.push_back(seed);

  while (static_cast<int>(out.size()) < count && !frontier.empty()) {
    const size_t pick = static_cast<size_t>(rng.next_below(frontier.size()));
    const Coord base = frontier[pick];
    std::vector<Coord> candidates;
    mesh.for_each_neighbor(base, [&](Direction, const Coord& nb) {
      if (!interior_ok(mesh, nb, opts)) return;
      if (chosen.count(mesh.index_of(nb))) return;
      candidates.push_back(nb);
    });
    if (candidates.empty()) {
      frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(pick));
      continue;
    }
    const Coord next = candidates[static_cast<size_t>(rng.next_below(candidates.size()))];
    chosen.insert(mesh.index_of(next));
    out.push_back(next);
    frontier.push_back(next);
  }
  return out;
}

std::vector<Coord> box_fault_placement(const MeshTopology& mesh, const Box& box) {
  std::vector<Coord> out;
  const Box clipped = mesh.clip(box);
  clipped.for_each([&](const Coord& c) {
    if (!mesh.on_outer_surface(c)) out.push_back(c);
  });
  return out;
}

FaultSchedule periodic_random_schedule(const MeshTopology& mesh, int batches,
                                       int faults_per_batch, long long start,
                                       long long interval, Rng& rng, bool recoveries,
                                       const std::vector<Coord>& forbidden) {
  FaultSchedule schedule;
  std::vector<Coord> failed;  // currently-faulty pool, recovery candidates
  std::vector<Coord> avoid = forbidden;
  for (int b = 0; b < batches; ++b) {
    const long long t = start + b * interval;
    const bool recover_batch = recoveries && !failed.empty() && rng.bernoulli(0.3);
    if (recover_batch) {
      const size_t pick = static_cast<size_t>(rng.next_below(failed.size()));
      schedule.add_recover(t, failed[pick]);
      failed.erase(failed.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      auto placed = random_fault_placement(mesh, faults_per_batch, rng, {}, avoid);
      for (const auto& c : placed) {
        schedule.add_fail(t, c);
        failed.push_back(c);
        avoid.push_back(c);
      }
    }
  }
  return schedule;
}

}  // namespace lgfi
