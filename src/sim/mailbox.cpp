// MailboxSystem<T> is header-only; this translation unit exists to anchor the
// module in the build and to host an explicit instantiation that keeps the
// template honest against a concrete payload type.

#include "src/sim/mailbox.h"

namespace lgfi {

template class MailboxSystem<int>;

}  // namespace lgfi
