#include "src/sim/trace_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/config.h"

namespace lgfi {
namespace {

constexpr char kMagic[4] = {'L', 'G', 'T', '1'};

void write_varint(std::FILE* f, unsigned long long v) {
  // LEB128: 7 payload bits per byte, high bit = continuation.
  do {
    unsigned char byte = static_cast<unsigned char>(v & 0x7fu);
    v >>= 7;
    if (v != 0) byte |= 0x80u;
    std::fputc(byte, f);
  } while (v != 0);
}

bool read_varint(std::FILE* f, unsigned long long& out) {
  out = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const int c = std::fgetc(f);
    if (c == EOF) return false;
    out |= static_cast<unsigned long long>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) return true;
  }
  return false;  // over-long encoding
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw ConfigError("trace '" + path + "': " + what);
}

}  // namespace

struct TraceWriter::Impl {
  std::string path;
  std::FILE* file = nullptr;
};

TraceWriter::TraceWriter(const std::string& path, const Topology& mesh) : impl_(new Impl) {
  impl_->path = path;
  impl_->file = std::fopen(path.c_str(), "wb");
  if (impl_->file == nullptr) fail(path, "cannot open for writing");
  std::fwrite(kMagic, 1, sizeof kMagic, impl_->file);
  write_varint(impl_->file, static_cast<unsigned long long>(mesh.node_count()));
  write_varint(impl_->file, static_cast<unsigned long long>(mesh.concentration()));
}

TraceWriter::~TraceWriter() {
  if (impl_->file != nullptr) std::fclose(impl_->file);
  delete impl_;
}

void TraceWriter::add(long long step, int slot, NodeId dest, int size) {
  write_varint(impl_->file, static_cast<unsigned long long>(step - last_step_));
  write_varint(impl_->file, static_cast<unsigned long long>(slot));
  write_varint(impl_->file, static_cast<unsigned long long>(dest));
  write_varint(impl_->file, static_cast<unsigned long long>(size));
  last_step_ = step;
  ++records_;
}

void TraceWriter::close() {
  if (impl_->file == nullptr) return;
  const bool ok = std::fclose(impl_->file) == 0;
  impl_->file = nullptr;
  if (!ok) fail(impl_->path, "write failed on close");
}

std::vector<TraceRecord> read_trace(const std::string& path, const Topology& mesh) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) fail(path, "cannot open (does the file exist?)");
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  char magic[4] = {};
  if (std::fread(magic, 1, sizeof magic, f) != sizeof magic ||
      std::memcmp(magic, kMagic, sizeof magic) != 0) {
    fail(path, "not an LGT1 trace file");
  }
  unsigned long long nodes = 0;
  unsigned long long concentration = 0;
  if (!read_varint(f, nodes) || !read_varint(f, concentration)) fail(path, "truncated header");
  if (nodes != static_cast<unsigned long long>(mesh.node_count()) ||
      concentration != static_cast<unsigned long long>(mesh.concentration())) {
    fail(path, "recorded on a different topology (" + std::to_string(nodes) + " nodes x " +
                   std::to_string(concentration) + " terminals/node; this run has " +
                   std::to_string(mesh.node_count()) + " x " +
                   std::to_string(mesh.concentration()) + ")");
  }

  std::vector<TraceRecord> records;
  long long step = 0;
  const long long slots =
      static_cast<long long>(mesh.node_count()) * static_cast<long long>(mesh.concentration());
  for (;;) {
    unsigned long long delta = 0;
    if (!read_varint(f, delta)) break;  // clean EOF between records
    unsigned long long slot = 0;
    unsigned long long dest = 0;
    unsigned long long size = 0;
    if (!read_varint(f, slot) || !read_varint(f, dest) || !read_varint(f, size)) {
      fail(path, "truncated record");
    }
    step += static_cast<long long>(delta);
    if (static_cast<long long>(slot) >= slots) fail(path, "slot out of range");
    if (dest >= static_cast<unsigned long long>(mesh.node_count())) {
      fail(path, "destination out of range");
    }
    TraceRecord r;
    r.step = step;
    r.slot = static_cast<int>(slot);
    r.dest = static_cast<NodeId>(dest);
    r.size = static_cast<int>(size);
    records.push_back(r);
  }
  return records;
}

}  // namespace lgfi
