// Envelope propagation of identified block information (Algorithm 2 step 4)
// and the merge floods of the Definition 3 boundary rule.
//
// From the corner where the block information formed, the info floods the
// block's envelope: every enabled envelope node deposits it and forwards it
// to envelope neighbours that do not yet hold it — one hop per round, so the
// whole envelope learns within its graph diameter, matching the paper's
// structured back-propagation timing.  Each deposit at a surface-edge ring
// position also spawns the boundary wall for that surface
// (boundary_protocol.cpp).
//
// A merge flood (non-empty carrier) distributes a *foreign* block's info
// over a second block's envelope after a boundary wall ran into it; ring
// positions of the carrier then continue the foreign info's wall on the far
// side ("it will merge into the boundary for S_i of the second block").

#include "src/fault/corner_taxonomy.h"
#include "src/fault/distributed_messages.h"

namespace lgfi {

void DistributedFaultModel::start_info_flood(NodeId origin, const BlockInfo& info) {
  const Coord c = mesh_->coord_of(origin);
  InfoMessage m;
  m.info = info;
  m.ttl = static_cast<int16_t>(default_ttl());
  mesh_->for_each_grid_neighbor(c, [&](Direction, const Coord& nb) {
    if (corner_level(nb, info.box) == 0) return;  // not on the envelope
    info_mail_->send(mesh_->index_of(nb), m);
  });
}

void DistributedFaultModel::handle_info_message(NodeId node, const InfoMessage& m) {
  if (field_.at(node) == NodeStatus::kFaulty) return;
  // Members of (diagonally touching) blocks are not information carriers:
  // Definition 2 restricts the envelope roles to enabled nodes.
  if (is_member(mesh_->coord_of(node))) return;
  const Coord c = mesh_->coord_of(node);
  const bool merge_flood = !m.carrier.empty();
  const Box& shell = merge_flood ? m.carrier : m.info.box;
  if (corner_level(c, shell) == 0) return;  // off the envelope (or inside the block)

  bool fresh;
  if (merge_flood) {
    const uint64_t key =
        merge_key(m.info.box, m.carrier, m.surface_dim, m.surface_positive != 0);
    fresh = merge_seen_.insert(NodeKey{node, key}).second;
    Provenance prov;
    prov.via = InfoVia::kMerged;
    prov.carrier = m.carrier;
    prov.dim = m.surface_dim;
    prov.positive = m.surface_positive;
    if (deposit_info(node, m.info, prov)) ++envelope_deposits_;
  } else {
    fresh = deposit_info(node, m.info, Provenance{});
    if (fresh) ++envelope_deposits_;
  }
  if (!fresh) return;

  if (m.ttl <= 1) return;
  InfoMessage fwd = m;
  fwd.ttl = static_cast<int16_t>(m.ttl - 1);
  mesh_->for_each_grid_neighbor(c, [&](Direction, const Coord& nb) {
    if (corner_level(nb, shell) == 0) return;
    if (field_.at(nb) == NodeStatus::kFaulty) return;
    info_mail_->send(mesh_->index_of(nb), fwd);
  });

  if (merge_flood) {
    // Continuation below the carrier: the carrier's own surface-edge ring
    // nodes for the same surface push the foreign info onward.
    const Surface s{m.surface_dim, m.surface_positive != 0};
    const int ring_coord =
        s.positive ? m.carrier.lo(s.dim) - 1 : m.carrier.hi(s.dim) + 1;
    const EnvelopeClass cls = classify_against_block(c, m.carrier);
    if (cls.on_envelope && cls.out_dims == 2 && c[s.dim] == ring_coord) {
      WallMessage w;
      w.info = m.info;
      w.dim = static_cast<int8_t>(s.dim);
      w.positive = s.positive ? 1 : 0;
      w.ttl = static_cast<int16_t>(default_ttl());
      const Coord below = c.shifted(s.dim, s.positive ? -1 : +1);
      if (mesh_->in_bounds(below)) wall_mail_->send(mesh_->index_of(below), w);
    }
    // "This propagation may also incur a deletion of out of date
    // boundaries": if the foreign block's OLD straight wall column passes
    // through here (deposited before the carrier block appeared), the
    // segment beyond the carrier is superseded by the merge structure and
    // must be retracted.  The far face of the carrier detects it locally.
    const int far_coord =
        s.positive ? m.carrier.lo(s.dim) - 1 : m.carrier.hi(s.dim) + 1;
    if (c[s.dim] == far_coord && on_wall_column(c, m.info.box, s.dim, s.positive)) {
      CancelMessage cancel;
      cancel.box = m.info.box;
      cancel.epoch = m.info.epoch;
      cancel.kind = 1;
      cancel.dim = static_cast<int8_t>(s.dim);
      cancel.positive = s.positive ? 1 : 0;
      cancel.ttl = static_cast<int16_t>(default_ttl());
      const Coord below = c.shifted(s.dim, s.positive ? -1 : +1);
      if (mesh_->in_bounds(below)) cancel_mail_->send(mesh_->index_of(below), cancel);
    }
  } else {
    spawn_walls_if_ring(node, m.info);
    // "...and update the boundaries of other blocks": a NEW block can form
    // across an already-standing wall of another block.  No wall message is
    // in flight to trigger the merge, so the envelope node detects it
    // locally: it holds a foreign wall entry whose column continues into the
    // new block's body — start the merge flood, which also retracts the
    // out-of-date straight segment beyond the new block (above).
    const auto held = info_.at(node);
    const auto provs = info_.provenance_at(node);
    for (size_t i = 0; i < held.size(); ++i) {
      if (held[i].box == m.info.box) continue;
      if (provs[i].via != InfoVia::kWall || provs[i].dim < 0) continue;
      if (!on_wall_column(c, held[i].box, provs[i].dim, provs[i].positive != 0)) continue;
      const Coord next = c.shifted(provs[i].dim, provs[i].positive != 0 ? -1 : +1);
      if (!mesh_->in_bounds(next) || !m.info.box.contains(next)) continue;
      InfoMessage merge;
      merge.info = held[i];
      merge.carrier = m.info.box;
      merge.surface_dim = provs[i].dim;
      merge.surface_positive = provs[i].positive;
      merge.ttl = static_cast<int16_t>(default_ttl());
      info_mail_->send(node, merge);
    }
  }
}

bool DistributedFaultModel::round_envelope() {
  info_mail_->flip();
  bool any = false;
  auto deliver = [&](NodeId id) {
    ++protocol_node_visits_;
    for (const auto& msg : info_mail_->inbox(id)) {
      any = true;
      handle_info_message(id, msg);
    }
  };
  if (options_.active_set) {
    for (NodeId id : info_mail_->active()) deliver(id);
  } else {
    for (NodeId id = 0; id < field_.node_count(); ++id) deliver(id);
  }
  return any || info_mail_->pending() > 0;
}

}  // namespace lgfi
