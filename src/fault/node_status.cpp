#include "src/fault/node_status.h"

#include <cassert>

namespace lgfi {

const char* to_string(NodeStatus s) {
  switch (s) {
    case NodeStatus::kEnabled: return "enabled";
    case NodeStatus::kDisabled: return "disabled";
    case NodeStatus::kClean: return "clean";
    case NodeStatus::kFaulty: return "faulty";
  }
  return "?";
}

StatusField::StatusField(const Topology& mesh)
    : mesh_(&mesh),
      status_(static_cast<size_t>(mesh.node_count()), NodeStatus::kEnabled) {}

void StatusField::recover(const Coord& c) {
  assert(at(c) == NodeStatus::kFaulty);
  set(c, NodeStatus::kClean);
}

long long StatusField::count(NodeStatus s) const {
  long long n = 0;
  for (NodeStatus x : status_)
    if (x == s) ++n;
  return n;
}

bool StatusField::has_neighbor_with_status(NodeId id, NodeStatus s) const {
  const Coord c = mesh_->coord_of(id);
  bool found = false;
  mesh_->for_each_grid_neighbor(c, [&](Direction, const Coord& nb) {
    if (at(nb) == s) found = true;
  });
  return found;
}

StatusField make_field_with_faults(const Topology& mesh, const std::vector<Coord>& faults) {
  StatusField f(mesh);
  for (const auto& c : faults) f.inject_fault(c);
  return f;
}

}  // namespace lgfi
