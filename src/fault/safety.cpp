#include "src/fault/safety.h"

#include "src/sim/rng.h"

namespace lgfi {

bool is_safe_source(const std::vector<Box>& blocks, const Coord& source, const Coord& dest) {
  const Box section = minimal_path_box(source, dest);
  for (const Box& b : blocks)
    if (b.intersects(section)) return false;
  return true;
}

double safe_pair_fraction(const std::vector<Box>& blocks, const std::vector<Coord>& candidates,
                          int samples, Rng& rng) {
  if (candidates.size() < 2 || samples <= 0) return 1.0;
  int safe = 0;
  for (int i = 0; i < samples; ++i) {
    const auto s = candidates[static_cast<size_t>(rng.next_below(candidates.size()))];
    const auto d = candidates[static_cast<size_t>(rng.next_below(candidates.size()))];
    if (is_safe_source(blocks, s, d)) ++safe;
  }
  return static_cast<double>(safe) / static_cast<double>(samples);
}

}  // namespace lgfi
