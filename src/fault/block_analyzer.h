#pragma once
// Faulty-block extraction and geometric invariants (Section 2.2).
//
// After Definition 1 stabilizes, the connected disabled∪faulty components of
// the mesh are the *faulty blocks*; in an n-D mesh each component fills its
// axis-aligned bounding box (Wu [14]), which is why the paper can describe a
// block by two opposite corners.  BlockAnalyzer performs the extraction and
// checks the invariants the rest of the pipeline relies on (filled boxes,
// pairwise Chebyshev separation >= 2).

#include <vector>

#include "src/fault/node_status.h"
#include "src/mesh/box.h"

namespace lgfi {

/// One extracted faulty block.
struct BlockSummary {
  Box box;                   ///< bounding box of the component
  long long member_count = 0;  ///< disabled + faulty nodes in the component
  long long faulty_count = 0;  ///< faulty nodes only
  bool filled = true;          ///< member_count == box.volume()
};

/// All blocks of a (stabilized) field, sorted by box for determinism.
std::vector<BlockSummary> extract_blocks(const StatusField& field);

/// Just the boxes; the common input to the information model.
std::vector<Box> block_boxes(const StatusField& field);

/// The paper's e_max over a block set: maximum edge length of any block.
int max_block_extent(const std::vector<BlockSummary>& blocks);
int max_block_extent(const std::vector<Box>& blocks);

/// Verifies the filled-box invariant (P1): every component equals its
/// bounding box.  Returns true iff all blocks are filled.
bool all_blocks_filled(const std::vector<BlockSummary>& blocks);

/// Verifies pairwise separation: distinct blocks are disjoint and never
/// face-adjacent — their box Manhattan distance is >= 2.  Note that in
/// n >= 3 dimensions two blocks CAN touch diagonally (Chebyshev distance 1):
/// full-diagonal neighbours give no node two bad dimensions, so rule 1 never
/// merges them.  Only 2-D guarantees Chebyshev separation >= 2; see
/// blocks_chebyshev_separated for that stronger check.
bool blocks_well_separated(const std::vector<BlockSummary>& blocks);

/// Manhattan distance between two boxes (0 if they intersect).
int box_manhattan_distance(const Box& a, const Box& b);

/// The stronger 2-D-only property: 1-inflations intersect no other block.
bool blocks_chebyshev_separated(const std::vector<BlockSummary>& blocks);

/// True if the enabled∪clean subgraph of the field is connected (the paper
/// assumes no disconnected area when faults avoid the outmost surface).
bool enabled_region_connected(const StatusField& field);

}  // namespace lgfi
