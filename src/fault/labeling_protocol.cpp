// DistributedFaultModel: construction, the round driver, Algorithm 1 status
// exchange, and Definition-2 level detection with anchors.
//
// Round phases come in two engines (DESIGN.md §14): the historical full scan
// (options.active_set = false) touches every node every round; the active-set
// engine evaluates only dirty-node worklists seeded from fault events, inbox
// deliveries and prior-round state changes.  Both run the identical per-node
// logic in ascending NodeId order, so their trajectories are byte-identical.

#include <algorithm>
#include <cassert>

#include "src/fault/distributed_messages.h"
#include "src/fault/labeling.h"

namespace lgfi {

DistributedFaultModel::DistributedFaultModel(const Topology& mesh,
                                             DistributedModelOptions options)
    : mesh_(&mesh),
      options_(options),
      field_(mesh),
      freshly_clean_(static_cast<size_t>(mesh.node_count()), 0),
      levels_(static_cast<size_t>(mesh.node_count())),
      levels_prev_(static_cast<size_t>(mesh.node_count())),
      levels_prev_round_(static_cast<size_t>(mesh.node_count()), -1),
      info_(mesh),
      formed_at_corner_(static_cast<size_t>(mesh.node_count())),
      cancel_seen_count_(static_cast<size_t>(mesh.node_count()), 0),
      levels_marked_(static_cast<size_t>(mesh.node_count()), 0),
      cancel_marked_(static_cast<size_t>(mesh.node_count()), 0),
      has_corner_(static_cast<size_t>(mesh.node_count()), 0),
      corner_pending_marked_(static_cast<size_t>(mesh.node_count()), 0) {
  labeling_wl_.init(mesh.node_count());
  ident_mail_ = std::make_unique<MailboxSystem<IdentMessage>>(mesh.node_count());
  info_mail_ = std::make_unique<MailboxSystem<InfoMessage>>(mesh.node_count());
  wall_mail_ = std::make_unique<MailboxSystem<WallMessage>>(mesh.node_count());
  cancel_mail_ = std::make_unique<MailboxSystem<CancelMessage>>(mesh.node_count());
}

DistributedFaultModel::~DistributedFaultModel() = default;

MailboxSystem<DistributedFaultModel::IdentMessage>* DistributedFaultModel::ident_mail() {
  return ident_mail_.get();
}
MailboxSystem<DistributedFaultModel::InfoMessage>* DistributedFaultModel::info_mail() {
  return info_mail_.get();
}
MailboxSystem<DistributedFaultModel::WallMessage>* DistributedFaultModel::wall_mail() {
  return wall_mail_.get();
}
MailboxSystem<DistributedFaultModel::CancelMessage>* DistributedFaultModel::cancel_mail() {
  return cancel_mail_.get();
}

int DistributedFaultModel::default_ttl() const {
  if (options_.message_ttl > 0) return options_.message_ttl;
  int sum = 0;
  for (int i = 0; i < mesh_->dims(); ++i) sum += mesh_->extent(i);
  return 4 * sum + 16;
}

void DistributedFaultModel::mark_levels_neighborhood(NodeId id) {
  mark_levels(id);
  mesh_->for_each_grid_neighbor(mesh_->coord_of(id), [&](Direction, const Coord& nb) {
    mark_levels(mesh_->index_of(nb));
  });
}

void DistributedFaultModel::mark_cancel_neighborhood(NodeId id) {
  mark_cancel(id);
  mesh_->for_each_grid_neighbor(mesh_->coord_of(id), [&](Direction, const Coord& nb) {
    mark_cancel(mesh_->index_of(nb));
  });
}

bool DistributedFaultModel::deposit_info(NodeId node, const BlockInfo& info,
                                         const Provenance& prov) {
  const bool fresh = info_.deposit(node, info, prov);
  // An information change can flip this node's eager-invalidation and
  // corner-deletion predicates; the full scan re-checks every round, the
  // active engine re-checks exactly the changed nodes.
  if (fresh && options_.active_set) mark_cancel(node);
  return fresh;
}

bool DistributedFaultModel::remove_info(NodeId node, const Box& box, uint32_t epoch) {
  const bool removed = info_.cancel(node, box, epoch);
  if (removed && options_.active_set) {
    mark_cancel(node);
    // A corner whose covering info vanished must re-trigger identification.
    if (has_corner_[static_cast<size_t>(node)] == 1) mark_corner_pending(node);
  }
  return removed;
}

void DistributedFaultModel::wipe_node_memory(NodeId node) {
  info_.clear_node(node);
  levels_[static_cast<size_t>(node)].clear();
  levels_prev_[static_cast<size_t>(node)].clear();
  levels_prev_round_[static_cast<size_t>(node)] = -1;
  if (has_corner_[static_cast<size_t>(node)] == 1)
    has_corner_[static_cast<size_t>(node)] = 2;  // stays in corner_nodes_; compacted lazily
  const auto is_node = [node](const auto& entry) {
    if constexpr (requires { entry.first.node; }) return entry.first.node == node;
    else return entry.node == node;
  };
  std::erase_if(slice_results_, is_node);
  std::erase_if(corner_collect_, is_node);
  std::erase_if(launch_book_, is_node);
  std::erase_if(merge_seen_, is_node);
  std::erase_if(cancel_seen_, is_node);
  cancel_seen_count_[static_cast<size_t>(node)] = 0;
  formed_at_corner_[static_cast<size_t>(node)].clear();
}

void DistributedFaultModel::on_status_event(NodeId node) {
  labeling_wl_.mark_event(field_, node);
  mark_levels_neighborhood(node);
  mark_cancel_neighborhood(node);
  // New epoch: abandoned identifications get a fresh chance — re-arm every
  // known corner node, compacting stale list entries in the same pass.
  size_t keep = 0;
  for (NodeId id : corner_nodes_) {
    if (has_corner_[static_cast<size_t>(id)] != 1) {
      has_corner_[static_cast<size_t>(id)] = 0;  // left the list; reset for re-insertion
      continue;
    }
    corner_nodes_[keep++] = id;
    mark_corner_pending(id);
  }
  corner_nodes_.resize(keep);
}

void DistributedFaultModel::inject_fault(const Coord& c) {
  field_.inject_fault(c);
  const NodeId node = mesh_->index_of(c);
  // The failed node's memory is gone with it.
  wipe_node_memory(node);
  ++epoch_;
  // New epoch: abandoned identifications get a fresh chance.
  launch_book_.clear();
  if (options_.active_set) on_status_event(node);
}

void DistributedFaultModel::recover(const Coord& c) {
  field_.recover(c);
  const NodeId node = mesh_->index_of(c);
  // A recovered node boots with empty memory (rule 5 gives it clean status
  // only; everything else it must relearn).
  wipe_node_memory(node);
  freshly_clean_[static_cast<size_t>(node)] = 1;
  ++epoch_;
  launch_book_.clear();
  if (options_.active_set) on_status_event(node);
}

bool DistributedFaultModel::on_wall_column(const Coord& p, const Box& box, int dim,
                                           bool positive) {
  int lateral_out = 0;
  for (int d = 0; d < box.dims(); ++d) {
    if (d == dim) continue;
    if (p[d] == box.lo(d) - 1 || p[d] == box.hi(d) + 1) ++lateral_out;
    else if (p[d] < box.lo(d) || p[d] > box.hi(d)) return false;
  }
  if (lateral_out != 1) return false;
  return positive ? p[dim] < box.lo(dim) : p[dim] > box.hi(dim);
}

Coord DistributedFaultModel::anchor_of(const Coord& c, const std::vector<int>& out_dims,
                                       const std::vector<int>& out_signs) {
  Coord a = c;
  for (size_t i = 0; i < out_dims.size(); ++i)
    a = a.shifted(out_dims[i], -out_signs[i]);
  return a;
}

bool DistributedFaultModel::has_level_entry(NodeId node, const Coord& anchor,
                                            int level) const {
  for (const auto& e : levels_[static_cast<size_t>(node)])
    if (e.level == level && e.anchor == anchor) return true;
  return false;
}

std::optional<LevelEntry> DistributedFaultModel::entry_with_anchor(NodeId node,
                                                                   const Coord& anchor) const {
  for (const auto& e : levels_[static_cast<size_t>(node)])
    if (e.anchor == anchor) return e;
  return std::nullopt;
}

bool DistributedFaultModel::round_labeling() {
  if (!options_.active_set) {
    protocol_node_visits_ += field_.node_count();
    return labeling_round(field_, freshly_clean_) != 0;
  }
  const long long changes =
      labeling_round_active(field_, freshly_clean_, labeling_wl_, &protocol_node_visits_);
  // A status change is an input change for the same round's Definition-2
  // pass and for the cancel-phase predicates of the one-hop neighbourhood.
  for (NodeId id : labeling_wl_.changed) {
    mark_levels_neighborhood(id);
    mark_cancel_neighborhood(id);
  }
  return changes != 0;
}

bool DistributedFaultModel::visit_levels(NodeId id) {
  ++protocol_node_visits_;
  auto& out = levels_scratch_;
  out.clear();
  if (field_.at(id) == NodeStatus::kEnabled) {
    const Coord c = mesh_->coord_of(id);

    // Level 1: a member neighbour's coordinate is the anchor.
    mesh_->for_each_grid_neighbor(c, [&](Direction, const Coord& nb) {
      if (is_member(nb)) out.push_back(LevelEntry{nb, 1});
    });

    // Level m >= 2: an anchor w seen at level m-1 by the inward neighbour in
    // every dimension where w differs from c (all offsets +-1).
    auto& candidates = candidate_scratch_;
    candidates.clear();
    mesh_->for_each_grid_neighbor(c, [&](Direction, const Coord& nb) {
      for (const auto& e : levels_before(mesh_->index_of(nb))) {
        if (std::find(candidates.begin(), candidates.end(), e.anchor) == candidates.end())
          candidates.push_back(e.anchor);
      }
    });
    for (const Coord& w : candidates) {
      int m = 0;
      bool plausible = true;
      for (int d = 0; d < mesh_->dims() && plausible; ++d) {
        const int off = w[d] - c[d];
        if (off == 0) continue;
        if (off != 1 && off != -1) plausible = false;
        ++m;
      }
      if (!plausible || m < 2) continue;
      bool all_dims_confirm = true;
      for (int d = 0; d < mesh_->dims() && all_dims_confirm; ++d) {
        const int off = w[d] - c[d];
        if (off == 0) continue;
        const Coord nb = c.shifted(d, off);
        bool found = false;
        for (const auto& e : levels_before(mesh_->index_of(nb)))
          if (e.anchor == w && e.level == m - 1) found = true;
        if (!found) all_dims_confirm = false;
      }
      if (all_dims_confirm) out.push_back(LevelEntry{w, static_cast<int8_t>(m)});
    }

    // Canonical order: the entry SET is what matters; without sorting, nodes
    // holding entries for two blocks can oscillate between two orderings
    // forever (the candidates inherit the neighbours' changing order) and
    // quiescence is never reached.
    std::sort(out.begin(), out.end(), [](const LevelEntry& a, const LevelEntry& b) {
      if (a.level != b.level) return a.level < b.level;
      return a.anchor < b.anchor;
    });
  }

  auto& live = levels_[static_cast<size_t>(id)];
  if (out == live) return false;

  // Snapshot-on-write double buffering: neighbours evaluated later this
  // round read the pre-round entries through levels_before().
  levels_prev_[static_cast<size_t>(id)].swap(live);
  levels_prev_round_[static_cast<size_t>(id)] = levels_round_;
  live.assign(out.begin(), out.end());

  if (options_.active_set) {
    // Changed entries are next-round inputs for the one-hop neighbourhood
    // and same-round inputs for the cancel-phase corner predicates.
    mark_levels_neighborhood(id);
    mark_cancel(id);
    const int n = mesh_->dims();
    bool has_n = false;
    for (const auto& e : live)
      if (e.level == n) has_n = true;
    auto& flag = has_corner_[static_cast<size_t>(id)];
    if (has_n) {
      if (flag == 0) corner_nodes_.push_back(id);
      flag = 1;
      mark_corner_pending(id);
    } else if (flag == 1) {
      flag = 2;  // stays in corner_nodes_ until the next compaction
    }
  }
  return true;
}

bool DistributedFaultModel::round_levels() {
  // One synchronous re-evaluation of Definition 2: a node reads its
  // neighbours' previous-round entries (levels advance one hop per round,
  // giving the n-1 extra rounds the recursive definition needs).
  ++levels_round_;
  bool changed = false;
  if (!options_.active_set) {
    const long long n = field_.node_count();
    for (NodeId id = 0; id < n; ++id)
      if (visit_levels(id)) changed = true;
    return changed;
  }
  std::vector<NodeId> cur;
  cur.swap(levels_queue_);
  for (NodeId id : cur) levels_marked_[static_cast<size_t>(id)] = 0;
  std::sort(cur.begin(), cur.end());
  for (NodeId id : cur)
    if (visit_levels(id)) changed = true;
  return changed;
}

bool DistributedFaultModel::run_round() {
  RoundActivity act;
  act.labeling = round_labeling();
  act.levels = round_levels();
  act.identification = round_identification();
  act.envelope = round_envelope();
  act.boundary = round_boundary();
  act.cancel = round_cancel();
  last_activity_ = act;
  ++rounds_run_;
  messages_sent_ = ident_mail_->stats().messages_sent + info_mail_->stats().messages_sent +
                   wall_mail_->stats().messages_sent + cancel_mail_->stats().messages_sent;
  return act.any();
}

ConstructionRounds DistributedFaultModel::stabilize(int max_rounds) {
  ConstructionRounds r;
  for (int round = 1; round <= max_rounds; ++round) {
    if (!run_round()) break;
    r.total = round;
    if (last_activity_.labeling) r.labeling = round;
    if (last_activity_.levels || last_activity_.identification) r.identification = round;
    if (last_activity_.envelope || last_activity_.boundary || last_activity_.cancel)
      r.boundary = round;
  }
  return r;
}

long long DistributedFaultModel::memory_bytes() const {
  auto vec_bytes = [](const auto& v, size_t elem) {
    return static_cast<long long>(v.capacity() * elem);
  };
  long long bytes = 0;
  bytes += field_.node_count();  // status array
  bytes += vec_bytes(freshly_clean_, 1) + vec_bytes(levels_prev_round_, sizeof(int));
  bytes += vec_bytes(levels_marked_, 1) + vec_bytes(cancel_marked_, 1) +
           vec_bytes(has_corner_, 1) + vec_bytes(corner_pending_marked_, 1) +
           vec_bytes(cancel_seen_count_, sizeof(uint16_t));
  bytes += vec_bytes(levels_queue_, sizeof(NodeId)) + vec_bytes(cancel_queue_, sizeof(NodeId)) +
           vec_bytes(corner_nodes_, sizeof(NodeId)) +
           vec_bytes(corner_pending_, sizeof(NodeId));
  bytes += vec_bytes(labeling_wl_.marked, 1) + vec_bytes(labeling_wl_.queue, sizeof(NodeId));
  for (const auto& v : levels_) bytes += sizeof(v) + vec_bytes(v, sizeof(LevelEntry));
  for (const auto& v : levels_prev_) bytes += sizeof(v) + vec_bytes(v, sizeof(LevelEntry));
  for (const auto& v : formed_at_corner_) bytes += sizeof(v) + vec_bytes(v, sizeof(BlockInfo));
  bytes += info_.memory_bytes();
  // Consolidated bookkeeping tables: entries plus hash-table node overhead.
  constexpr long long kMapOverhead = 16;
  bytes += static_cast<long long>(slice_results_.size()) *
           (static_cast<long long>(sizeof(NodeKey) + sizeof(SliceResult)) + kMapOverhead);
  bytes += static_cast<long long>(corner_collect_.size()) *
           (static_cast<long long>(sizeof(NodeKey) + sizeof(CornerCollect)) + kMapOverhead);
  bytes += static_cast<long long>(launch_book_.size()) *
           (static_cast<long long>(sizeof(NodeKey) + sizeof(LaunchBook)) + kMapOverhead);
  bytes += static_cast<long long>(merge_seen_.size() + cancel_seen_.size()) *
           (static_cast<long long>(sizeof(NodeKey)) + kMapOverhead);
  bytes += ident_mail_->memory_bytes() + info_mail_->memory_bytes() +
           wall_mail_->memory_bytes() + cancel_mail_->memory_bytes();
  return bytes;
}

}  // namespace lgfi
