// DistributedFaultModel: construction, the round driver, Algorithm 1 status
// exchange, and Definition-2 level detection with anchors.

#include <algorithm>
#include <cassert>

#include "src/fault/distributed_messages.h"
#include "src/fault/labeling.h"

namespace lgfi {

DistributedFaultModel::DistributedFaultModel(const Topology& mesh,
                                             DistributedModelOptions options)
    : mesh_(&mesh),
      options_(options),
      field_(mesh),
      freshly_clean_(static_cast<size_t>(mesh.node_count()), 0),
      levels_(static_cast<size_t>(mesh.node_count())),
      levels_prev_(static_cast<size_t>(mesh.node_count())),
      info_(mesh),
      slice_results_(static_cast<size_t>(mesh.node_count())),
      corner_collect_(static_cast<size_t>(mesh.node_count())),
      last_launch_(static_cast<size_t>(mesh.node_count())),
      launch_attempts_(static_cast<size_t>(mesh.node_count())),
      formed_at_corner_(static_cast<size_t>(mesh.node_count())),
      merge_seen_(static_cast<size_t>(mesh.node_count())),
      cancel_seen_(static_cast<size_t>(mesh.node_count())) {
  ident_mail_ = std::make_unique<MailboxSystem<IdentMessage>>(mesh.node_count());
  info_mail_ = std::make_unique<MailboxSystem<InfoMessage>>(mesh.node_count());
  wall_mail_ = std::make_unique<MailboxSystem<WallMessage>>(mesh.node_count());
  cancel_mail_ = std::make_unique<MailboxSystem<CancelMessage>>(mesh.node_count());
}

DistributedFaultModel::~DistributedFaultModel() = default;

MailboxSystem<DistributedFaultModel::IdentMessage>* DistributedFaultModel::ident_mail() {
  return ident_mail_.get();
}
MailboxSystem<DistributedFaultModel::InfoMessage>* DistributedFaultModel::info_mail() {
  return info_mail_.get();
}
MailboxSystem<DistributedFaultModel::WallMessage>* DistributedFaultModel::wall_mail() {
  return wall_mail_.get();
}
MailboxSystem<DistributedFaultModel::CancelMessage>* DistributedFaultModel::cancel_mail() {
  return cancel_mail_.get();
}

int DistributedFaultModel::default_ttl() const {
  if (options_.message_ttl > 0) return options_.message_ttl;
  int sum = 0;
  for (int i = 0; i < mesh_->dims(); ++i) sum += mesh_->extent(i);
  return 4 * sum + 16;
}

void DistributedFaultModel::wipe_node_memory(NodeId node) {
  info_.clear_node(node);
  levels_[static_cast<size_t>(node)].clear();
  levels_prev_[static_cast<size_t>(node)].clear();
  slice_results_[static_cast<size_t>(node)].clear();
  corner_collect_[static_cast<size_t>(node)].clear();
  last_launch_[static_cast<size_t>(node)].clear();
  formed_at_corner_[static_cast<size_t>(node)].clear();
  merge_seen_[static_cast<size_t>(node)].clear();
  cancel_seen_[static_cast<size_t>(node)].clear();
}

void DistributedFaultModel::inject_fault(const Coord& c) {
  field_.inject_fault(c);
  // The failed node's memory is gone with it.
  wipe_node_memory(mesh_->index_of(c));
  ++epoch_;
  // New epoch: abandoned identifications get a fresh chance.
  for (auto& m : last_launch_) m.clear();
  for (auto& m : launch_attempts_) m.clear();
}

void DistributedFaultModel::recover(const Coord& c) {
  field_.recover(c);
  // A recovered node boots with empty memory (rule 5 gives it clean status
  // only; everything else it must relearn).
  wipe_node_memory(mesh_->index_of(c));
  freshly_clean_[static_cast<size_t>(mesh_->index_of(c))] = 1;
  ++epoch_;
  for (auto& m : last_launch_) m.clear();
  for (auto& m : launch_attempts_) m.clear();
}

bool DistributedFaultModel::on_wall_column(const Coord& p, const Box& box, int dim,
                                           bool positive) {
  int lateral_out = 0;
  for (int d = 0; d < box.dims(); ++d) {
    if (d == dim) continue;
    if (p[d] == box.lo(d) - 1 || p[d] == box.hi(d) + 1) ++lateral_out;
    else if (p[d] < box.lo(d) || p[d] > box.hi(d)) return false;
  }
  if (lateral_out != 1) return false;
  return positive ? p[dim] < box.lo(dim) : p[dim] > box.hi(dim);
}

Coord DistributedFaultModel::anchor_of(const Coord& c, const std::vector<int>& out_dims,
                                       const std::vector<int>& out_signs) {
  Coord a = c;
  for (size_t i = 0; i < out_dims.size(); ++i)
    a = a.shifted(out_dims[i], -out_signs[i]);
  return a;
}

bool DistributedFaultModel::has_level_entry(NodeId node, const Coord& anchor,
                                            int level) const {
  for (const auto& e : levels_[static_cast<size_t>(node)])
    if (e.level == level && e.anchor == anchor) return true;
  return false;
}

std::optional<LevelEntry> DistributedFaultModel::entry_with_anchor(NodeId node,
                                                                   const Coord& anchor) const {
  for (const auto& e : levels_[static_cast<size_t>(node)])
    if (e.anchor == anchor) return e;
  return std::nullopt;
}

bool DistributedFaultModel::round_labeling() {
  return labeling_round(field_, freshly_clean_) != 0;
}

bool DistributedFaultModel::round_levels() {
  // One synchronous re-evaluation of Definition 2 everywhere: a node reads
  // its neighbours' previous-round entries (levels advance one hop per
  // round, giving the n-1 extra rounds the recursive definition needs).
  const long long n = field_.node_count();
  levels_prev_.swap(levels_);
  bool changed = false;

  for (NodeId id = 0; id < n; ++id) {
    auto& out = levels_[static_cast<size_t>(id)];
    out.clear();
    if (field_.at(id) != NodeStatus::kEnabled) {
      if (!levels_prev_[static_cast<size_t>(id)].empty()) changed = true;
      continue;
    }
    const Coord c = mesh_->coord_of(id);

    // Level 1: a member neighbour's coordinate is the anchor.
    mesh_->for_each_grid_neighbor(c, [&](Direction, const Coord& nb) {
      if (is_member(nb)) out.push_back(LevelEntry{nb, 1});
    });

    // Level m >= 2: an anchor w seen at level m-1 by the inward neighbour in
    // every dimension where w differs from c (all offsets +-1).
    std::vector<Coord> candidates;
    mesh_->for_each_grid_neighbor(c, [&](Direction, const Coord& nb) {
      for (const auto& e : levels_prev_[static_cast<size_t>(mesh_->index_of(nb))]) {
        if (std::find(candidates.begin(), candidates.end(), e.anchor) == candidates.end())
          candidates.push_back(e.anchor);
      }
    });
    for (const Coord& w : candidates) {
      int m = 0;
      bool plausible = true;
      for (int d = 0; d < mesh_->dims() && plausible; ++d) {
        const int off = w[d] - c[d];
        if (off == 0) continue;
        if (off != 1 && off != -1) plausible = false;
        ++m;
      }
      if (!plausible || m < 2) continue;
      bool all_dims_confirm = true;
      for (int d = 0; d < mesh_->dims() && all_dims_confirm; ++d) {
        const int off = w[d] - c[d];
        if (off == 0) continue;
        const Coord nb = c.shifted(d, off);
        bool found = false;
        for (const auto& e : levels_prev_[static_cast<size_t>(mesh_->index_of(nb))])
          if (e.anchor == w && e.level == m - 1) found = true;
        if (!found) all_dims_confirm = false;
      }
      if (all_dims_confirm) out.push_back(LevelEntry{w, static_cast<int8_t>(m)});
    }

    // Canonical order: the entry SET is what matters; without sorting, nodes
    // holding entries for two blocks can oscillate between two orderings
    // forever (the candidates inherit the neighbours' changing order) and
    // quiescence is never reached.
    std::sort(out.begin(), out.end(), [](const LevelEntry& a, const LevelEntry& b) {
      if (a.level != b.level) return a.level < b.level;
      return a.anchor < b.anchor;
    });

    if (out != levels_prev_[static_cast<size_t>(id)]) changed = true;
  }
  return changed;
}

bool DistributedFaultModel::run_round() {
  RoundActivity act;
  act.labeling = round_labeling();
  act.levels = round_levels();
  act.identification = round_identification();
  act.envelope = round_envelope();
  act.boundary = round_boundary();
  act.cancel = round_cancel();
  last_activity_ = act;
  ++rounds_run_;
  messages_sent_ = ident_mail_->stats().messages_sent + info_mail_->stats().messages_sent +
                   wall_mail_->stats().messages_sent + cancel_mail_->stats().messages_sent;
  return act.any();
}

ConstructionRounds DistributedFaultModel::stabilize(int max_rounds) {
  ConstructionRounds r;
  for (int round = 1; round <= max_rounds; ++round) {
    if (!run_round()) break;
    r.total = round;
    if (last_activity_.labeling) r.labeling = round;
    if (last_activity_.levels || last_activity_.identification) r.identification = round;
    if (last_activity_.envelope || last_activity_.boundary || last_activity_.cancel)
      r.boundary = round;
  }
  return r;
}

}  // namespace lgfi
