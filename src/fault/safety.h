#pragma once
// Safe/unsafe source classification (Theorem 2, after Wu [14]).
//
// A source is *safe* for a destination iff no faulty block intersects the
// minimal-path box between them — in the paper's origin-based statement, no
// block meets the section [0 : u_i] along each axis.  A safe source is
// guaranteed a minimal path as long as no new fault occurs; Theorems 3 and 4
// are stated for safe sources, Theorem 5 lifts the restriction.

#include <vector>

#include "src/mesh/box.h"
#include "src/mesh/topology.h"

namespace lgfi {

/// True iff no block intersects the minimal-path box Rect(source, dest).
bool is_safe_source(const std::vector<Box>& blocks, const Coord& source, const Coord& dest);

/// Fraction of ordered (s, d) pairs drawn uniformly from enabled positions
/// that are safe; the E11 experiment statistic.  `samples` pairs are drawn
/// with the provided candidate list.
double safe_pair_fraction(const std::vector<Box>& blocks, const std::vector<Coord>& candidates,
                          int samples, class Rng& rng);

}  // namespace lgfi
