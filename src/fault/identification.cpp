// The n-level identification process (Algorithm 2 step 3).
//
// A new n-level corner launches a process: phase-1 edge walks along n-1 of
// its n envelope edges; every edge node passed activates a down-level
// process identifying its slice's section (recursively, down to the level-2
// base case where two ring walkers traverse the section's envelope ring and
// meet at the opposite 2-level corner); phase-3 collectors ride each
// opposite edge gathering section results and deliver them to the corner
// opposite the initiation corner, where the block information forms.
//
// All decisions are local: handlers validate the node against its own
// Definition-2 level entry (anchor + level) and discard the message when the
// expectation fails — the paper's "if there is a faulty or disabled neighbor
// in the forwarding direction, the new block is not stable ... the message
// is discarded".  TTLs bound every walk and every wait.

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "src/fault/distributed_messages.h"

namespace lgfi {

namespace {

/// Dims present in a mask, ascending.
std::vector<int> mask_dims(uint8_t mask) {
  std::vector<int> out;
  for (int d = 0; d < kMaxDims; ++d)
    if (mask & (1u << d)) out.push_back(d);
  return out;
}

/// Identity of a process *instance*.  In n >= 4 the recursion can reach the
/// same subspace through different parent chains (slice x then y vs y then
/// x), and those are distinct concurrent processes of the same pid: keying
/// bookkeeping by (pid, level) alone would conflate their completions.  The
/// instance key hashes pid, level, free mask and the whole parent stack.
uint64_t instance_key(uint64_t pid, int level, uint8_t free_mask,
                      const std::array<int8_t, kMaxDims>& parent_dims,
                      const std::array<int8_t, kMaxDims>& parent_signs, int depth) {
  uint64_t h = pid * 0x9E3779B97F4A7C15ull + 0xD6E8FEB86659FD93ull;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  mix(static_cast<uint64_t>(level));
  mix(static_cast<uint64_t>(free_mask));
  for (int i = 0; i < depth; ++i) {
    mix(static_cast<uint64_t>(parent_dims[static_cast<size_t>(i)] + 1));
    mix(static_cast<uint64_t>(parent_signs[static_cast<size_t>(i)] + 2));
  }
  return h;
}

}  // namespace

bool DistributedFaultModel::evaluate_corner_node(NodeId id, int retry) {
  const int n = mesh_->dims();
  bool uncovered_corner = false;
  for (const auto& e : levels_[static_cast<size_t>(id)]) {
    if (e.level != n) continue;
    // Already have block information covering this anchor?  Then the
    // reactive model does not restart anything.
    bool covered = false;
    for (const auto& held : info_.at(id))
      if (held.box.contains(e.anchor)) covered = true;
    if (covered) continue;

    const uint64_t anchor_key = static_cast<uint64_t>(CoordHash{}(e.anchor));
    auto& book = launch_book_[NodeKey{id, anchor_key}];
    constexpr int kMaxAttempts = 6;
    if (book.attempts >= kMaxAttempts) continue;  // abandoned this epoch
    uncovered_corner = true;

    if (book.attempts > 0 && rounds_run_ - book.last_round < retry) continue;
    book.last_round = rounds_run_;
    ++book.attempts;
    launch_process(id, e);
  }
  return uncovered_corner;
}

int DistributedFaultModel::launch_retry_interval() const {
  // Retry fast: processes discarded during a converging transient relaunch
  // as soon as the previous attempt had time to finish; duplicate
  // completions dedup at the deposit.
  int max_extent = 0;
  for (int d = 0; d < mesh_->dims(); ++d) max_extent = std::max(max_extent, mesh_->extent(d));
  return options_.retry_interval > 0 ? options_.retry_interval : 2 * max_extent + 8;
}

void DistributedFaultModel::age_identification_bookkeeping() {
  // Age out bookkeeping of dead processes.
  if (rounds_run_ % 64 != 0) return;
  const int horizon = 2 * default_ttl();
  if (!slice_results_.empty())
    std::erase_if(slice_results_,
                  [&](const auto& kv) { return rounds_run_ - kv.second.round > horizon; });
  if (!corner_collect_.empty())
    std::erase_if(corner_collect_,
                  [&](const auto& kv) { return rounds_run_ - kv.second.round > horizon; });
}

bool DistributedFaultModel::trigger_identifications() {
  const int retry = launch_retry_interval();
  const long long count = field_.node_count();
  bool uncovered_corner = false;
  for (NodeId id = 0; id < count; ++id) {
    ++protocol_node_visits_;
    if (evaluate_corner_node(id, retry)) uncovered_corner = true;
  }
  age_identification_bookkeeping();
  return uncovered_corner;
}

bool DistributedFaultModel::trigger_identifications_active() {
  // Only pending corners can launch: a node joins the pending set when it
  // gains a level-n entry, loses covering info, or a new epoch re-arms its
  // abandoned attempts; it keeps itself pending while an uncovered,
  // non-abandoned corner remains (matching the full scan's per-round
  // activity flag exactly), and drops out otherwise.
  const int retry = launch_retry_interval();
  std::vector<NodeId> cur;
  cur.swap(corner_pending_);
  for (NodeId id : cur) corner_pending_marked_[static_cast<size_t>(id)] = 0;
  std::sort(cur.begin(), cur.end());
  bool uncovered_corner = false;
  for (NodeId id : cur) {
    ++protocol_node_visits_;
    if (evaluate_corner_node(id, retry)) {
      uncovered_corner = true;
      mark_corner_pending(id);
    }
  }
  age_identification_bookkeeping();
  return uncovered_corner;
}

void DistributedFaultModel::launch_process(NodeId corner, const LevelEntry& entry) {
  const Coord c = mesh_->coord_of(corner);
  const int n = mesh_->dims();

  IdentMessage base;
  base.pid = next_pid_++;
  base.origin = c;
  base.level = static_cast<int8_t>(n);
  base.free_mask = static_cast<uint8_t>((1u << n) - 1);
  base.partial = Box::point(entry.anchor);
  base.ttl = static_cast<int16_t>(default_ttl());
  for (int d = 0; d < n; ++d)
    base.out_signs[static_cast<size_t>(d)] = static_cast<int8_t>(c[d] - entry.anchor[d]);

  if (n == 2) {
    // The whole process is the level-2 base case.
    launch_subprocess(c, 2, base.free_mask, base.out_signs, base, -1, 0);
    return;
  }
  // Phase 1: n-1 edge walks (all free dims but the last).
  for (int j = 0; j < n - 1; ++j) {
    IdentMessage m = base;
    m.kind = IdentMessage::kEdgeWalk;
    m.walk_dim = static_cast<int8_t>(j);
    m.walk_sign = static_cast<int8_t>(-base.out_signs[static_cast<size_t>(j)]);
    m.out_signs[static_cast<size_t>(j)] = 0;  // j is the walked dim, not out
    const Coord first = c.shifted(j, m.walk_sign);
    if (!mesh_->in_bounds(first)) continue;
    ident_mail_->send(mesh_->index_of(first), std::move(m));
  }
}

void DistributedFaultModel::launch_subprocess(const Coord& at, int level, uint8_t free_mask,
                                              std::array<int8_t, kMaxDims> out_signs,
                                              const IdentMessage& parent, int parent_walk_dim,
                                              int parent_walk_sign) {
  IdentMessage base;
  base.pid = parent.pid;
  base.origin = parent.origin;
  base.level = static_cast<int8_t>(level);
  base.free_mask = free_mask;
  base.out_signs = out_signs;
  base.parent_dims = parent.parent_dims;
  base.parent_signs = parent.parent_signs;
  base.depth = parent.depth;
  if (parent_walk_dim >= 0) {
    base.parent_dims[static_cast<size_t>(base.depth)] = static_cast<int8_t>(parent_walk_dim);
    base.parent_signs[static_cast<size_t>(base.depth)] = static_cast<int8_t>(parent_walk_sign);
    ++base.depth;
  }
  base.ttl = parent.ttl;

  const auto dims = mask_dims(free_mask);
  // The subprocess's initiation corner anchor (the diagonal member).
  Coord anchor = at;
  for (int d : dims) anchor = anchor.shifted(d, -out_signs[static_cast<size_t>(d)]);
  base.partial = parent.partial.hull(anchor);

  if (level == 2) {
    // Base case: two ring walkers around the section.
    assert(dims.size() == 2);
    for (int w = 0; w < 2; ++w) {
      const int walk = dims[static_cast<size_t>(w)];
      const int out = dims[static_cast<size_t>(1 - w)];
      IdentMessage m = base;
      m.kind = IdentMessage::kRingWalk;
      m.walk_dim = static_cast<int8_t>(walk);
      m.walk_sign = static_cast<int8_t>(-out_signs[static_cast<size_t>(walk)]);
      m.out_dim = static_cast<int8_t>(out);
      m.out_signs[static_cast<size_t>(walk)] = 0;
      m.turns = 0;
      const Coord first = at.shifted(walk, m.walk_sign);
      if (!mesh_->in_bounds(first)) continue;
      ident_mail_->send(mesh_->index_of(first), std::move(m));
    }
    return;
  }

  // level >= 3: phase-1 edge walks along all free dims but the last.
  for (size_t w = 0; w + 1 < dims.size(); ++w) {
    const int j = dims[w];
    IdentMessage m = base;
    m.kind = IdentMessage::kEdgeWalk;
    m.walk_dim = static_cast<int8_t>(j);
    m.walk_sign = static_cast<int8_t>(-out_signs[static_cast<size_t>(j)]);
    m.out_signs[static_cast<size_t>(j)] = 0;
    const Coord first = at.shifted(j, m.walk_sign);
    if (!mesh_->in_bounds(first)) continue;
    ident_mail_->send(mesh_->index_of(first), std::move(m));
  }
}

void DistributedFaultModel::handle_ident_message(NodeId node, IdentMessage m) {
  const Coord c = mesh_->coord_of(node);
  auto trace = [&](const char* what) {
    if (options_.trace)
      std::fprintf(stderr, "[ident r%d] pid=%llu kind=%d lvl=%d at %s: %s\n", rounds_run_,
                   static_cast<unsigned long long>(m.pid), static_cast<int>(m.kind),
                   static_cast<int>(m.level), c.to_string().c_str(), what);
  };
  if (--m.ttl <= 0) {
    trace("ttl-expired");
    return;
  }
  if (field_.at(node) != NodeStatus::kEnabled) {
    trace("discard-not-enabled");
    return;
  }
  const auto free_dims = mask_dims(m.free_mask);

  // Anchor this node would have as an edge/side node of the process
  // (inward over the out dims, which exclude the walk dim).
  Coord side_anchor = c;
  for (int d : free_dims) {
    const int8_t sgn = m.out_signs[static_cast<size_t>(d)];
    if (sgn != 0) side_anchor = side_anchor.shifted(d, -sgn);
  }

  switch (m.kind) {
    case IdentMessage::kEdgeWalk: {
      const int j = m.walk_dim;
      if (has_level_entry(node, side_anchor, m.level - 1)) {
        // Still on the edge: hull, activate the slice's down-level process,
        // keep walking.
        m.partial = m.partial.hull(side_anchor);
        uint8_t sub_mask = m.free_mask & static_cast<uint8_t>(~(1u << j));
        launch_subprocess(c, m.level - 1, sub_mask, m.out_signs, m, j, m.walk_sign);
        const Coord next = c.shifted(j, m.walk_sign);
        if (mesh_->in_bounds(next)) ident_mail_->send(mesh_->index_of(next), std::move(m));
        return;
      }
      // Far corner of the edge?
      const Coord corner_anchor = side_anchor.shifted(j, -m.walk_sign);
      if (has_level_entry(node, corner_anchor, m.level)) {
        trace("edge-walk-end");
        return;  // phase 1 done
      }
      trace("edge-walk-discard");
      return;  // unstable: discard
    }

    case IdentMessage::kRingWalk: {
      const int out = m.out_dim;
      const int8_t out_sign = m.out_signs[static_cast<size_t>(out)];
      // Side node: out only in out_dim.
      const Coord expect_side = c.shifted(out, -out_sign);
      if (has_level_entry(node, expect_side, 1)) {
        m.partial = m.partial.hull(expect_side);
        const Coord next = c.shifted(m.walk_dim, m.walk_sign);
        if (mesh_->in_bounds(next)) ident_mail_->send(mesh_->index_of(next), std::move(m));
        return;
      }
      // Corner of the ring: out in out_dim and walk_dim.
      const Coord corner_anchor = expect_side.shifted(m.walk_dim, -m.walk_sign);
      if (has_level_entry(node, corner_anchor, 2)) {
        m.partial = m.partial.hull(corner_anchor);
        if (m.turns == 0) {
          const int8_t old_out = m.out_dim;
          const int8_t old_out_sign = out_sign;
          m.out_dim = m.walk_dim;
          m.out_signs[static_cast<size_t>(m.walk_dim)] = m.walk_sign;
          m.walk_dim = old_out;
          m.walk_sign = static_cast<int8_t>(-old_out_sign);
          m.out_signs[static_cast<size_t>(old_out)] = 0;
          m.turns = 1;
          const Coord next = c.shifted(m.walk_dim, m.walk_sign);
          if (mesh_->in_bounds(next)) ident_mail_->send(mesh_->index_of(next), std::move(m));
          return;
        }
        // Second corner: the opposite 2-level corner — the section (or, for
        // n == 2, the block) is identified when both walkers agree.
        const uint64_t key =
            instance_key(m.pid, m.level, m.free_mask, m.parent_dims, m.parent_signs, m.depth);
        auto& cc = corner_collect_[NodeKey{node, key}];
        cc.round = rounds_run_;
        if (cc.arrivals == 0) {
          cc.box = m.partial;
        } else if (!(cc.box == m.partial)) {
          cc.invalid = true;  // inconsistent sections: not stable
        }
        ++cc.arrivals;
        trace(cc.invalid ? "ring-arrival-inconsistent" : "ring-arrival");
        if (cc.arrivals == 2 && !cc.invalid) {
          // Reconstruct the completion corner's full out signs: the corner
          // is out in the current walk dim too (sign = walk direction), so
          // the collector spawned downstream computes correct anchors.
          m.out_signs[static_cast<size_t>(m.walk_dim)] = m.walk_sign;
          process_complete(node, m, corner_anchor, cc.box);
        }
        return;
      }
      trace("ring-walk-discard");
      return;  // unstable: discard
    }

    case IdentMessage::kCollector: {
      const int j = m.walk_dim;
      if (has_level_entry(node, side_anchor, m.level - 1)) {
        // Opposite-edge node: wait for the slice result, merge, move on.
        const auto it = slice_results_.find(NodeKey{
            node,
            instance_key(m.pid, m.level, m.free_mask, m.parent_dims, m.parent_signs, m.depth)});
        if (it == slice_results_.end()) {
          ident_mail_->send(node, std::move(m));  // wait one round
          return;
        }
        m.partial = m.partial.hull(it->second.box);
        const Coord next = c.shifted(j, m.walk_sign);
        if (mesh_->in_bounds(next)) ident_mail_->send(mesh_->index_of(next), std::move(m));
        return;
      }
      // The opposite corner C' of this level-k process.
      const Coord corner_anchor = side_anchor.shifted(j, -m.walk_sign);
      if (has_level_entry(node, corner_anchor, m.level)) {
        const uint64_t key =
            instance_key(m.pid, m.level, m.free_mask, m.parent_dims, m.parent_signs, m.depth);
        auto& cc = corner_collect_[NodeKey{node, key}];
        cc.round = rounds_run_;
        if (cc.arrivals == 0) {
          cc.box = m.partial;
        } else if (!(cc.box == m.partial)) {
          cc.invalid = true;
        }
        ++cc.arrivals;
        trace(cc.invalid ? "collector-arrival-inconsistent" : "collector-arrival");
        if (cc.arrivals == m.level - 1 && !cc.invalid) {
          m.out_signs[static_cast<size_t>(m.walk_dim)] = m.walk_sign;
          process_complete(node, m, corner_anchor, cc.box);
        }
        return;
      }
      trace("collector-discard");
      return;  // unstable: discard
    }
  }
}

void DistributedFaultModel::process_complete(NodeId node, const IdentMessage& m,
                                             const Coord& corner_anchor, const Box& box) {
  const Coord c = mesh_->coord_of(node);

  if (m.depth == 0) {
    // Top-level completion: block information forms at the corner opposite
    // the initialization corner (Algorithm 2 step 3c), then propagates back
    // over the whole envelope (step 4), which also activates the boundary
    // construction.
    const BlockInfo info{box, epoch_};
    auto& formed = formed_at_corner_[static_cast<size_t>(node)];
    bool known = false;
    for (auto& f : formed) {
      if (f.box == box) {
        f.epoch = std::max(f.epoch, info.epoch);
        known = true;
      }
    }
    if (!known) formed.push_back(info);
    // The new formed entry must be condition-checked by this round's cancel
    // phase, exactly as the full scan would.
    if (options_.active_set) mark_cancel(node);
    if (options_.trace)
      std::fprintf(stderr, "[ident r%d] pid=%llu BLOCK FORMED at %s box=%s\n", rounds_run_,
                   static_cast<unsigned long long>(m.pid), c.to_string().c_str(),
                   box.to_string().c_str());
    if (deposit_info(node, info)) {
      ++envelope_deposits_;
      start_info_flood(node, info);
      spawn_walls_if_ring(node, info);
    }
    return;
  }

  // Slice completion: store the section for the parent's collector and
  // self-start that collector if this is the slice adjacent to the parent's
  // initiation corner (locally detected: the neighbour back along the
  // parent walk is the parent-level corner with our anchor).
  const int parent_level = m.level + 1;
  const int pj = m.parent_dims[static_cast<size_t>(m.depth - 1)];
  const int ps = m.parent_signs[static_cast<size_t>(m.depth - 1)];

  slice_results_[NodeKey{node, instance_key(m.pid, parent_level,
                                             static_cast<uint8_t>(m.free_mask | (1u << pj)),
                                             m.parent_dims, m.parent_signs, m.depth - 1)}] =
      SliceResult{box, rounds_run_};

  if (options_.trace)
    std::fprintf(stderr, "[ident r%d] pid=%llu slice-complete lvl=%d at %s box=%s\n",
                 rounds_run_, static_cast<unsigned long long>(m.pid),
                 static_cast<int>(m.level), c.to_string().c_str(), box.to_string().c_str());
  const Coord q = c.shifted(pj, -ps);
  if (!mesh_->in_bounds(q)) return;
  bool q_is_parent_corner = false;
  for (const auto& e : levels_before(mesh_->index_of(q)))
    if (e.level == parent_level && e.anchor == corner_anchor) q_is_parent_corner = true;
  if (!q_is_parent_corner) return;

  IdentMessage col;
  col.pid = m.pid;
  col.origin = m.origin;
  col.kind = IdentMessage::kCollector;
  col.level = static_cast<int8_t>(parent_level);
  col.walk_dim = static_cast<int8_t>(pj);
  col.walk_sign = static_cast<int8_t>(ps);
  col.free_mask = static_cast<uint8_t>(m.free_mask | (1u << pj));
  col.out_signs = m.out_signs;  // opposite-corner lateral signs
  col.parent_dims = m.parent_dims;
  col.parent_signs = m.parent_signs;
  col.depth = static_cast<int8_t>(m.depth - 1);
  col.partial = box;
  col.ttl = m.ttl;
  const Coord next = c.shifted(pj, ps);
  if (mesh_->in_bounds(next)) ident_mail_->send(mesh_->index_of(next), std::move(col));
}

bool DistributedFaultModel::round_identification() {
  // Deliver last round's messages first so that everything sent below —
  // fresh launches included — travels exactly one hop per round.
  ident_mail_->flip();
  // An uncovered corner counts as activity even between retries: the
  // construction is not done until every corner is covered by block info.
  const bool uncovered = options_.active_set ? trigger_identifications_active()
                                             : trigger_identifications();
  bool any = false;
  auto deliver = [&](NodeId id) {
    ++protocol_node_visits_;
    for (const auto& msg : ident_mail_->inbox(id)) {
      any = true;
      handle_ident_message(id, msg);
    }
  };
  if (options_.active_set) {
    for (NodeId id : ident_mail_->active()) deliver(id);
  } else {
    for (NodeId id = 0; id < field_.node_count(); ++id) deliver(id);
  }
  return any || uncovered || ident_mail_->pending() > 0;
}

}  // namespace lgfi
