#include "src/fault/block_registry.h"

#include <algorithm>

namespace lgfi {

InfoStore::InfoStore(const Topology& mesh)
    : infos_(static_cast<size_t>(mesh.node_count())),
      provs_(static_cast<size_t>(mesh.node_count())) {}

bool InfoStore::deposit(NodeId node, const BlockInfo& info, const Provenance& prov) {
  auto& infos = infos_[static_cast<size_t>(node)];
  auto& provs = provs_[static_cast<size_t>(node)];
  for (size_t i = 0; i < infos.size(); ++i) {
    if (infos[i].box == info.box) {
      bool changed = false;
      if (info.epoch > infos[i].epoch) {
        infos[i].epoch = info.epoch;
        changed = true;
      }
      // Upgrade to the stronger justification.
      if (static_cast<uint8_t>(prov.via) < static_cast<uint8_t>(provs[i].via))
        provs[i] = prov;
      return changed;
    }
  }
  infos.push_back(info);
  provs.push_back(prov);
  return true;
}

bool InfoStore::cancel(NodeId node, const Box& box, uint32_t epoch) {
  auto& infos = infos_[static_cast<size_t>(node)];
  auto& provs = provs_[static_cast<size_t>(node)];
  for (size_t i = 0; i < infos.size(); ++i) {
    if (infos[i].box == box && infos[i].epoch <= epoch) {
      infos.erase(infos.begin() + static_cast<std::ptrdiff_t>(i));
      provs.erase(provs.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

void InfoStore::clear_node(NodeId node) {
  infos_[static_cast<size_t>(node)].clear();
  provs_[static_cast<size_t>(node)].clear();
}

void InfoStore::clear() {
  for (auto& v : infos_) v.clear();
  for (auto& v : provs_) v.clear();
}

bool InfoStore::holds(NodeId node, const Box& box) const {
  const auto& infos = infos_[static_cast<size_t>(node)];
  return std::any_of(infos.begin(), infos.end(),
                     [&](const BlockInfo& e) { return e.box == box; });
}

std::optional<BlockInfo> InfoStore::find(NodeId node, const Box& box) const {
  for (const auto& e : infos_[static_cast<size_t>(node)])
    if (e.box == box) return e;
  return std::nullopt;
}

long long InfoStore::nodes_with_info() const {
  long long n = 0;
  for (const auto& e : infos_)
    if (!e.empty()) ++n;
  return n;
}

long long InfoStore::total_entries() const {
  long long n = 0;
  for (const auto& e : infos_) n += static_cast<long long>(e.size());
  return n;
}

long long InfoStore::memory_bytes() const {
  long long bytes = static_cast<long long>(
      infos_.capacity() * sizeof(std::vector<BlockInfo>) +
      provs_.capacity() * sizeof(std::vector<Provenance>));
  for (const auto& e : infos_) bytes += static_cast<long long>(e.capacity() * sizeof(BlockInfo));
  for (const auto& e : provs_) bytes += static_cast<long long>(e.capacity() * sizeof(Provenance));
  return bytes;
}

}  // namespace lgfi
