#pragma once
// Centralized boundary construction (Definition 3 + the merge rule).
//
// For every block B and every adjacent surface S_{j,s} (dimension j, side s)
// the *boundary for S_{j,s}* encloses the dangerous area on the opposite
// (-s) side of B: the prism of nodes from which every minimal path crossing
// toward s-side destinations is cut by B.  The boundary starts from the
// edges of the opposite surface S_{j,-s} (excluding its corners) and extends
// away from the block along dimension j until the mesh's outmost surface —
// unless it runs into another block B2, in which case B's information merges
// onto B2's envelope and continues riding B2's boundary for the same surface
// (Figure 3(d)).
//
// This module computes the *fixpoint placement* of block information over
// the whole mesh set-theoretically.  It is the reference the distributed
// boundary protocol (boundary_protocol.h) must converge to, and the direct
// input for the static routing experiments.

#include <vector>

#include "src/fault/block_registry.h"
#include "src/fault/corner_taxonomy.h"
#include "src/mesh/box.h"
#include "src/mesh/topology.h"

namespace lgfi {

struct InformationPlacement {
  InfoStore store;                 ///< node -> block infos held
  long long envelope_deposits = 0; ///< deposits on block envelopes
  long long wall_deposits = 0;     ///< deposits on boundary walls
  long long merge_events = 0;      ///< times a wall ran into another block
  int max_wall_length = 0;         ///< longest wall walk (relates to c_i)

  explicit InformationPlacement(const Topology& mesh) : store(mesh) {}
};

/// Computes the full information placement for `blocks` (their boxes must be
/// pairwise Chebyshev-separated, i.e. come from a stabilized field).
InformationPlacement compute_information_placement(const Topology& mesh,
                                                    const std::vector<Box>& blocks,
                                                    uint32_t epoch = 0);

/// The dangerous area guarded by B's boundary for surface s: the prism of
/// nodes on the -s side of B whose cross-coordinates lie within B's ranges.
/// A message inside this prism whose destination lies strictly beyond B on
/// the s side has no minimal path (clipped to the mesh; empty if B touches
/// the mesh edge on that side).
Box dangerous_region(const Topology& mesh, const Box& block, Surface s);

/// True iff every minimal path from u to d is cut by `block` (the paper's
/// critical condition "enters the area right below S1 and its destination is
/// right over S4", generalized to n-D): there is a dimension j with u and d
/// strictly on opposite sides of the block's j-slab and, for every other
/// dimension, the u–d interval contained in the block's range.
bool block_cuts_all_minimal_paths(const Box& block, const Coord& u, const Coord& d);

/// Expected wall node set for one (block, surface) pair ignoring merges —
/// used by unit tests to pin down wall geometry.
std::vector<Coord> wall_positions_ignoring_merges(const Topology& mesh, const Box& block,
                                                  Surface s);

}  // namespace lgfi
