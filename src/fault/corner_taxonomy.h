#pragma once
// Envelope taxonomy of a faulty block (Definitions 2 and 3).
//
// All the paper's information machinery lives on the *envelope* of a block —
// the shell one hop outside its box.  A node of the envelope whose
// coordinates are "out by one" in exactly m dimensions (and within the block
// range in the rest) is:
//   m = 1 : an adjacent node (it has a neighbour in the block); the 2n
//           maximal faces of such nodes are the adjacent surfaces S_0..S_{2n-1}
//   m = 2 : a 2-level corner == a 3-level edge node; in 3-D these form the
//           12 edges of Definition 3
//   m = k : a k-level corner == a (k+1)-level edge node
//   m = n : an n-level corner (2^n of them), where identification begins
//
// The recursive Definition 2 ("an n-level corner is an enabled node with n
// n-level edge neighbours of the same block") coincides with this geometric
// classification; tests verify the equivalence.

#include <optional>
#include <vector>

#include "src/fault/node_status.h"
#include "src/mesh/box.h"

namespace lgfi {

/// Identifies one of the 2n adjacent surfaces of a block: the surface on the
/// `positive` side of dimension `dim`.  In the paper's 3-D naming,
/// S0 = (dim 0, negative), S3 = (dim 0, positive), S1 = (dim 1, negative),
/// S4 = (dim 1, positive), S2 = (dim 2, negative), S5 = (dim 2, positive).
struct Surface {
  int dim = 0;
  bool positive = false;

  [[nodiscard]] Surface opposite() const { return Surface{dim, !positive}; }
  [[nodiscard]] int paper_index(int n) const { return dim + (positive ? n : 0); }
  friend bool operator==(Surface a, Surface b) {
    return a.dim == b.dim && a.positive == b.positive;
  }
};

/// Geometric classification of `c` relative to block `box`.
struct EnvelopeClass {
  bool inside = false;    ///< member position (within the box)
  bool on_envelope = false;  ///< in inflated(1) but not inside
  int out_dims = 0;       ///< m: #dims at lo-1 or hi+1 (valid when on_envelope)
  /// Which dims are out, and on which side (true = hi+1 side); parallel
  /// arrays of length out_dims.
  std::vector<int> out_dim_list;
  std::vector<bool> out_side_positive;
};

EnvelopeClass classify_against_block(const Coord& c, const Box& box);

/// Corner level per Definition 2: m-level corner for m = out_dims >= 2,
/// adjacent node for m == 1; 0 otherwise.  Purely geometric (does not check
/// enabled status).
int corner_level(const Coord& c, const Box& box);

/// All envelope positions of `box` clipped to the mesh, optionally filtered
/// to a given out-dimension count m (m = 0 means all envelope nodes).
std::vector<Coord> envelope_positions(const Topology& mesh, const Box& box, int m = 0);

/// The 2^n n-level corner positions (unclipped count may be smaller at mesh
/// edges).
std::vector<Coord> block_corners(const Topology& mesh, const Box& box);

/// Nodes of adjacent surface S(dim,positive): out exactly in `dim` on that
/// side (m == 1 positions of that face), clipped to the mesh.
std::vector<Coord> surface_positions(const Topology& mesh, const Box& box, Surface s);

/// The "edges of surface S" (Definition 3) *excluding corners*: positions at
/// the surface's coordinate in `s.dim` whose remaining coordinates are out by
/// one in exactly one other dimension.  These seed boundary propagation.
std::vector<Coord> surface_edge_positions(const Topology& mesh, const Box& box, Surface s);

/// Recursive Definition-2 evaluation over a status field: computes each
/// enabled node's corner level for the block containing `box` by iterating
/// the textual definition (level 1 = neighbour in block; level m = m
/// neighbours of level m-1 in different dims).  Exposed so tests can confirm
/// it matches corner_level() geometry.
std::vector<int> definition2_levels(const StatusField& field, const Box& box);

}  // namespace lgfi
