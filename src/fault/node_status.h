#pragma once
// Node status taxonomy (Definitions 1 and 4).
//
// Every node of the mesh is faulty or non-faulty; every non-faulty node is
// labeled enabled, disabled, or (transiently, after a recovery) clean.  The
// stabilized system contains only faulty / enabled / disabled nodes
// (Section 3); `clean` exists only while Definition 4's recovery wave is in
// flight.  StatusField is the dense per-node label array every protocol and
// analyzer operates on.

#include <cstdint>
#include <string>
#include <vector>

#include "src/mesh/topology.h"

namespace lgfi {

enum class NodeStatus : uint8_t {
  kEnabled = 0,
  kDisabled = 1,
  kClean = 2,
  kFaulty = 3,
};

[[nodiscard]] const char* to_string(NodeStatus s);

/// True for statuses that make a node part of a faulty block: connected
/// disabled and faulty nodes form the block (Definition 1).
[[nodiscard]] inline bool is_block_member(NodeStatus s) {
  return s == NodeStatus::kDisabled || s == NodeStatus::kFaulty;
}

/// Dense status array over a mesh.
class StatusField {
 public:
  explicit StatusField(const Topology& mesh);

  [[nodiscard]] const Topology& mesh() const { return *mesh_; }

  [[nodiscard]] NodeStatus at(NodeId id) const { return status_[static_cast<size_t>(id)]; }
  [[nodiscard]] NodeStatus at(const Coord& c) const { return at(mesh_->index_of(c)); }

  void set(NodeId id, NodeStatus s) {
    // No-op writes must not bump the version: the labeling rounds rewrite
    // every node each round, and a spurious bump would invalidate
    // version-keyed caches (the oracle's BFS) every single step.
    if (status_[static_cast<size_t>(id)] == s) return;
    status_[static_cast<size_t>(id)] = s;
    ++version_;
  }
  void set(const Coord& c, NodeStatus s) { set(mesh_->index_of(c), s); }

  /// Monotone mutation counter: bumped on every status *change*.  Lets
  /// consumers that cache derived structure (the oracle's BFS, the wormhole
  /// model's fault scan) detect staleness in O(1) without observing
  /// individual mutations.  Not part of field equality.
  [[nodiscard]] uint64_t version() const { return version_; }

  /// Marks `c` faulty (a fault occurrence f_i).
  void inject_fault(const Coord& c) { set(c, NodeStatus::kFaulty); }

  /// Marks a faulty node clean — rule 5, the start of the recovery wave.
  void recover(const Coord& c);

  [[nodiscard]] long long count(NodeStatus s) const;
  [[nodiscard]] long long node_count() const { return static_cast<long long>(status_.size()); }

  /// Number of dimensions in which `id` has at least one neighbour whose
  /// status satisfies `pred` — the quantity rules 1-4 test ("two or more ...
  /// neighbours in different dimensions" == dims_with >= 2).
  template <typename Pred>
  [[nodiscard]] int dims_with_neighbor(NodeId id, Pred&& pred) const {
    const Coord c = mesh_->coord_of(id);
    int dims = 0;
    for (int d = 0; d < mesh_->dims(); ++d) {
      bool hit = false;
      for (int sign : {-1, +1}) {
        const int v = c[d] + sign;
        if (v < 0 || v >= mesh_->extent(d)) continue;
        if (pred(at(c.with(d, v)))) {
          hit = true;
          break;
        }
      }
      if (hit) ++dims;
    }
    return dims;
  }

  [[nodiscard]] bool has_neighbor_with_status(NodeId id, NodeStatus s) const;

  [[nodiscard]] bool operator==(const StatusField& other) const {
    return status_ == other.status_;
  }

 private:
  const Topology* mesh_;
  std::vector<NodeStatus> status_;
  uint64_t version_ = 0;
};

/// Builds a field with the given faults injected and everything else enabled.
StatusField make_field_with_faults(const Topology& mesh, const std::vector<Coord>& faults);

}  // namespace lgfi
