#include "src/fault/labeling.h"

#include <algorithm>
#include <cassert>

namespace lgfi {

bool rule1_applies(const StatusField& field, NodeId id) {
  assert(field.at(id) == NodeStatus::kEnabled);
  return field.dims_with_neighbor(id, [](NodeStatus s) { return is_block_member(s); }) >= 2;
}

bool rule2_applies(const StatusField& field, NodeId id) {
  assert(field.at(id) == NodeStatus::kDisabled);
  if (!field.has_neighbor_with_status(id, NodeStatus::kClean)) return false;
  return field.dims_with_neighbor(id, [](NodeStatus s) { return s == NodeStatus::kFaulty; }) < 2;
}

bool rule3_applies(const StatusField& field, NodeId id) {
  assert(field.at(id) == NodeStatus::kClean);
  return field.dims_with_neighbor(id, [](NodeStatus s) { return s == NodeStatus::kFaulty; }) >= 2;
}

bool rule4_applies(const StatusField& field, NodeId id) {
  assert(field.at(id) == NodeStatus::kClean);
  return !rule3_applies(field, id);
}

long long labeling_round(StatusField& field, std::vector<uint8_t>& freshly_clean) {
  const long long n = field.node_count();
  assert(static_cast<long long>(freshly_clean.size()) == n);

  // Double-buffered: decisions read the previous round's statuses only.
  std::vector<NodeStatus> next(static_cast<size_t>(n));
  std::vector<uint8_t> next_fresh(static_cast<size_t>(n), 0);
  long long changes = 0;

  for (NodeId id = 0; id < n; ++id) {
    const NodeStatus cur = field.at(id);
    NodeStatus out = cur;
    switch (cur) {
      case NodeStatus::kFaulty:
        break;  // rule 5 is an external event, not a round action
      case NodeStatus::kEnabled:
        if (rule1_applies(field, id)) out = NodeStatus::kDisabled;
        break;
      case NodeStatus::kDisabled:
        if (rule2_applies(field, id)) {
          out = NodeStatus::kClean;
          next_fresh[static_cast<size_t>(id)] = 1;
        }
        break;
      case NodeStatus::kClean:
        if (freshly_clean[static_cast<size_t>(id)]) {
          // Clean became visible to neighbours only this round; rules 3/4
          // fire next round ("once all its neighbors know its clean status").
          out = NodeStatus::kClean;
        } else if (rule3_applies(field, id)) {
          out = NodeStatus::kDisabled;
        } else {
          out = NodeStatus::kEnabled;  // rule 4
        }
        break;
    }
    next[static_cast<size_t>(id)] = out;
    if (out != cur) ++changes;
    if (cur == NodeStatus::kClean && freshly_clean[static_cast<size_t>(id)]) {
      // The clean label is now published; staying clean this round counts as
      // activity (the wave is still moving) only via neighbours' rule 2.
      next_fresh[static_cast<size_t>(id)] = 0;
      if (out == cur) {
        // Not a status change, but the node must still be processed next
        // round; report activity so convergence isn't declared early.
        ++changes;
      }
    }
  }

  for (NodeId id = 0; id < n; ++id) field.set(id, next[static_cast<size_t>(id)]);
  freshly_clean = std::move(next_fresh);
  return changes;
}

void LabelingWorklist::mark_event(const StatusField& field, NodeId id) {
  mark(id);
  field.mesh().for_each_grid_neighbor(field.mesh().coord_of(id),
                                      [&](Direction, const Coord& nb) {
                                        mark(field.mesh().index_of(nb));
                                      });
}

long long labeling_round_active(StatusField& field, std::vector<uint8_t>& freshly_clean,
                                LabelingWorklist& wl, long long* visits) {
  assert(static_cast<long long>(freshly_clean.size()) == field.node_count());
  assert(static_cast<long long>(wl.marked.size()) == field.node_count());

  // Consume this round's worklist; marks made below build the next round's.
  std::vector<NodeId> cur;
  cur.swap(wl.queue);
  for (NodeId id : cur) wl.marked[static_cast<size_t>(id)] = 0;
  std::sort(cur.begin(), cur.end());
  wl.changed.clear();
  if (visits != nullptr) *visits += static_cast<long long>(cur.size());

  // Phase 1: decide from the unmodified field — the same double-buffered
  // read labeling_round() gets from its full `next` array.
  std::vector<NodeStatus> decision(cur.size());
  for (size_t i = 0; i < cur.size(); ++i) {
    const NodeId id = cur[i];
    const NodeStatus status = field.at(id);
    NodeStatus out = status;
    switch (status) {
      case NodeStatus::kFaulty:
        break;  // rule 5 is an external event, not a round action
      case NodeStatus::kEnabled:
        if (rule1_applies(field, id)) out = NodeStatus::kDisabled;
        break;
      case NodeStatus::kDisabled:
        if (rule2_applies(field, id)) out = NodeStatus::kClean;
        break;
      case NodeStatus::kClean:
        if (freshly_clean[static_cast<size_t>(id)]) {
          out = NodeStatus::kClean;  // visible only this round; rules 3/4 next
        } else if (rule3_applies(field, id)) {
          out = NodeStatus::kDisabled;
        } else {
          out = NodeStatus::kEnabled;  // rule 4
        }
        break;
    }
    decision[i] = out;
  }

  // Phase 2: apply, count changes exactly as labeling_round() does, and
  // re-mark the one-hop neighbourhood of every transition for next round.
  long long changes = 0;
  for (size_t i = 0; i < cur.size(); ++i) {
    const NodeId id = cur[i];
    const NodeStatus status = field.at(id);
    const NodeStatus out = decision[i];
    const bool was_fresh =
        status == NodeStatus::kClean && freshly_clean[static_cast<size_t>(id)] != 0;
    if (out != status) {
      field.set(id, out);
      ++changes;
      wl.changed.push_back(id);
      wl.mark_event(field, id);
      if (status == NodeStatus::kDisabled && out == NodeStatus::kClean)
        freshly_clean[static_cast<size_t>(id)] = 1;
    }
    if (was_fresh) {
      // The clean label is now published; the node must be re-evaluated next
      // round (rules 3/4 fire then), and staying clean still counts as
      // activity so convergence isn't declared early — both exactly as in
      // labeling_round().
      freshly_clean[static_cast<size_t>(id)] = 0;
      wl.mark(id);
      if (out == status) ++changes;
    }
  }
  return changes;
}

LabelingResult stabilize_labeling(StatusField& field, int max_rounds,
                                  const std::vector<Coord>& new_clean) {
  std::vector<uint8_t> fresh(static_cast<size_t>(field.node_count()), 0);
  for (const auto& c : new_clean) {
    assert(field.at(c) == NodeStatus::kClean);
    fresh[static_cast<size_t>(field.mesh().index_of(c))] = 1;
  }

  // Cold start: every node is dirty for round 1; after that the worklist
  // shrinks to the advancing wavefront, so stabilization costs
  // O(N + sum of per-round active nodes) instead of O(N * rounds).
  LabelingWorklist wl;
  wl.init(field.node_count());
  wl.mark_all(field.node_count());

  LabelingResult r;
  for (int round = 0; round < max_rounds; ++round) {
    const long long changes = labeling_round_active(field, fresh, wl);
    if (changes == 0) {
      r.converged = true;
      return r;
    }
    r.status_changes += changes;
    ++r.rounds;
  }
  return r;
}

StatusField stabilized_field(const Topology& mesh, const std::vector<Coord>& faults,
                             LabelingResult* result) {
  StatusField field = make_field_with_faults(mesh, faults);
  LabelingResult r = stabilize_labeling(field);
  if (result != nullptr) *result = r;
  return field;
}

}  // namespace lgfi
