#include "src/fault/labeling.h"

#include <cassert>

namespace lgfi {

bool rule1_applies(const StatusField& field, NodeId id) {
  assert(field.at(id) == NodeStatus::kEnabled);
  return field.dims_with_neighbor(id, [](NodeStatus s) { return is_block_member(s); }) >= 2;
}

bool rule2_applies(const StatusField& field, NodeId id) {
  assert(field.at(id) == NodeStatus::kDisabled);
  if (!field.has_neighbor_with_status(id, NodeStatus::kClean)) return false;
  return field.dims_with_neighbor(id, [](NodeStatus s) { return s == NodeStatus::kFaulty; }) < 2;
}

bool rule3_applies(const StatusField& field, NodeId id) {
  assert(field.at(id) == NodeStatus::kClean);
  return field.dims_with_neighbor(id, [](NodeStatus s) { return s == NodeStatus::kFaulty; }) >= 2;
}

bool rule4_applies(const StatusField& field, NodeId id) {
  assert(field.at(id) == NodeStatus::kClean);
  return !rule3_applies(field, id);
}

long long labeling_round(StatusField& field, std::vector<uint8_t>& freshly_clean) {
  const long long n = field.node_count();
  assert(static_cast<long long>(freshly_clean.size()) == n);

  // Double-buffered: decisions read the previous round's statuses only.
  std::vector<NodeStatus> next(static_cast<size_t>(n));
  std::vector<uint8_t> next_fresh(static_cast<size_t>(n), 0);
  long long changes = 0;

  for (NodeId id = 0; id < n; ++id) {
    const NodeStatus cur = field.at(id);
    NodeStatus out = cur;
    switch (cur) {
      case NodeStatus::kFaulty:
        break;  // rule 5 is an external event, not a round action
      case NodeStatus::kEnabled:
        if (rule1_applies(field, id)) out = NodeStatus::kDisabled;
        break;
      case NodeStatus::kDisabled:
        if (rule2_applies(field, id)) {
          out = NodeStatus::kClean;
          next_fresh[static_cast<size_t>(id)] = 1;
        }
        break;
      case NodeStatus::kClean:
        if (freshly_clean[static_cast<size_t>(id)]) {
          // Clean became visible to neighbours only this round; rules 3/4
          // fire next round ("once all its neighbors know its clean status").
          out = NodeStatus::kClean;
        } else if (rule3_applies(field, id)) {
          out = NodeStatus::kDisabled;
        } else {
          out = NodeStatus::kEnabled;  // rule 4
        }
        break;
    }
    next[static_cast<size_t>(id)] = out;
    if (out != cur) ++changes;
    if (cur == NodeStatus::kClean && freshly_clean[static_cast<size_t>(id)]) {
      // The clean label is now published; staying clean this round counts as
      // activity (the wave is still moving) only via neighbours' rule 2.
      next_fresh[static_cast<size_t>(id)] = 0;
      if (out == cur) {
        // Not a status change, but the node must still be processed next
        // round; report activity so convergence isn't declared early.
        ++changes;
      }
    }
  }

  for (NodeId id = 0; id < n; ++id) field.set(id, next[static_cast<size_t>(id)]);
  freshly_clean = std::move(next_fresh);
  return changes;
}

LabelingResult stabilize_labeling(StatusField& field, int max_rounds,
                                  const std::vector<Coord>& new_clean) {
  std::vector<uint8_t> fresh(static_cast<size_t>(field.node_count()), 0);
  for (const auto& c : new_clean) {
    assert(field.at(c) == NodeStatus::kClean);
    fresh[static_cast<size_t>(field.mesh().index_of(c))] = 1;
  }

  LabelingResult r;
  for (int round = 0; round < max_rounds; ++round) {
    const long long changes = labeling_round(field, fresh);
    if (changes == 0) {
      r.converged = true;
      return r;
    }
    r.status_changes += changes;
    ++r.rounds;
  }
  return r;
}

StatusField stabilized_field(const Topology& mesh, const std::vector<Coord>& faults,
                             LabelingResult* result) {
  StatusField field = make_field_with_faults(mesh, faults);
  LabelingResult r = stabilize_labeling(field);
  if (result != nullptr) *result = r;
  return field;
}

}  // namespace lgfi
