#include "src/fault/corner_taxonomy.h"

#include <algorithm>
#include <cassert>

namespace lgfi {

EnvelopeClass classify_against_block(const Coord& c, const Box& box) {
  EnvelopeClass e;
  assert(c.size() == box.dims());
  bool in_all = true;
  bool in_shell = true;
  for (int d = 0; d < box.dims(); ++d) {
    const int v = c[d];
    if (v >= box.lo(d) && v <= box.hi(d)) continue;
    in_all = false;
    if (v == box.lo(d) - 1) {
      e.out_dim_list.push_back(d);
      e.out_side_positive.push_back(false);
    } else if (v == box.hi(d) + 1) {
      e.out_dim_list.push_back(d);
      e.out_side_positive.push_back(true);
    } else {
      in_shell = false;
    }
  }
  e.inside = in_all;
  e.out_dims = static_cast<int>(e.out_dim_list.size());
  e.on_envelope = !in_all && in_shell;
  return e;
}

int corner_level(const Coord& c, const Box& box) {
  const EnvelopeClass e = classify_against_block(c, box);
  if (!e.on_envelope) return 0;
  return e.out_dims;
}

std::vector<Coord> envelope_positions(const Topology& mesh, const Box& box, int m) {
  std::vector<Coord> out;
  const Box shell = mesh.clip(box.inflated(1));
  shell.for_each([&](const Coord& c) {
    const EnvelopeClass e = classify_against_block(c, box);
    if (!e.on_envelope) return;
    if (m == 0 || e.out_dims == m) out.push_back(c);
  });
  return out;
}

std::vector<Coord> block_corners(const Topology& mesh, const Box& box) {
  return envelope_positions(mesh, box, box.dims());
}

std::vector<Coord> surface_positions(const Topology& mesh, const Box& box, Surface s) {
  std::vector<Coord> out;
  const int coord = s.positive ? box.hi(s.dim) + 1 : box.lo(s.dim) - 1;
  if (coord < 0 || coord >= mesh.extent(s.dim)) return out;
  Box face = box;  // the face: in-range in every dim except s.dim
  face.for_each([&](const Coord& c) {
    const Coord p = c.with(s.dim, coord);
    if (mesh.in_bounds(p)) out.push_back(p);
  });
  // for_each over `box` iterates the full box; dedupe to the face by fixing
  // s.dim — equivalent and simpler: collapse duplicates.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Coord> surface_edge_positions(const Topology& mesh, const Box& box, Surface s) {
  std::vector<Coord> out;
  const int coord = s.positive ? box.hi(s.dim) + 1 : box.lo(s.dim) - 1;
  if (coord < 0 || coord >= mesh.extent(s.dim)) return out;
  // Perimeter of the inflated cross-section with exactly one cross-dim out
  // by one ("except for the corner").
  const Box shell = mesh.clip(box.inflated(1));
  shell.for_each([&](const Coord& c) {
    if (c[s.dim] != coord) return;
    const EnvelopeClass e = classify_against_block(c, box);
    if (!e.on_envelope || e.out_dims != 2) return;
    // One of the two out dims must be s.dim itself (the surface side).
    const bool surface_out =
        (e.out_dim_list[0] == s.dim && e.out_side_positive[0] == s.positive) ||
        (e.out_dim_list[1] == s.dim && e.out_side_positive[1] == s.positive);
    if (surface_out) out.push_back(c);
  });
  return out;
}

std::vector<int> definition2_levels(const StatusField& field, const Box& box) {
  const Topology& mesh = field.mesh();
  const long long n = field.node_count();
  std::vector<int> level(static_cast<size_t>(n), 0);

  // Every positive level lives on the inflated-box shell: a level-1 node is
  // grid-adjacent to a member of `box`, and by induction a level-m node needs
  // level-(m-1) neighbours in m distinct dims, which is impossible more than
  // one step outside the box.  Scanning the shell instead of the whole mesh
  // makes this O(|box surface|), independent of node count.
  const Box shell = mesh.clip(box.inflated(1));

  // Level 1: enabled node with a neighbour that is a member of this block.
  shell.for_each([&](const Coord& c) {
    const NodeId id = mesh.index_of(c);
    if (field.at(id) != NodeStatus::kEnabled) return;
    bool adjacent = false;
    mesh.for_each_grid_neighbor(c, [&](Direction, const Coord& nb) {
      if (is_block_member(field.at(nb)) && box.contains(nb)) adjacent = true;
    });
    if (adjacent) level[static_cast<size_t>(id)] = 1;
  });

  // Level m: enabled node with m neighbours of level m-1 in different dims.
  // Iterate levels upward; a node's level is the highest m it satisfies.
  for (int m = 2; m <= mesh.dims(); ++m) {
    std::vector<std::pair<size_t, int>> upgrades;
    shell.for_each([&](const Coord& c) {
      const NodeId id = mesh.index_of(c);
      if (field.at(id) != NodeStatus::kEnabled) return;
      if (level[static_cast<size_t>(id)] != 0) return;  // already classified
      int dims_with = 0;
      for (int d = 0; d < mesh.dims(); ++d) {
        bool hit = false;
        for (int sign : {-1, +1}) {
          const int v = c[d] + sign;
          if (v < 0 || v >= mesh.extent(d)) continue;
          if (level[static_cast<size_t>(mesh.index_of(c.with(d, v)))] == m - 1) hit = true;
        }
        if (hit) ++dims_with;
      }
      if (dims_with >= m) upgrades.emplace_back(static_cast<size_t>(id), m);
    });
    for (const auto& [idx, lvl] : upgrades) level[idx] = lvl;
  }
  return level;
}

}  // namespace lgfi
