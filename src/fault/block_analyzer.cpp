#include "src/fault/block_analyzer.h"

#include <algorithm>
#include <queue>

namespace lgfi {

std::vector<BlockSummary> extract_blocks(const StatusField& field) {
  const Topology& mesh = field.mesh();
  const long long n = field.node_count();
  std::vector<uint8_t> seen(static_cast<size_t>(n), 0);
  std::vector<BlockSummary> out;

  for (NodeId id = 0; id < n; ++id) {
    if (seen[static_cast<size_t>(id)] || !is_block_member(field.at(id))) continue;

    // BFS over the disabled∪faulty component.
    BlockSummary block;
    Box box = Box::point(mesh.coord_of(id));
    std::queue<NodeId> q;
    q.push(id);
    seen[static_cast<size_t>(id)] = 1;
    while (!q.empty()) {
      const NodeId cur = q.front();
      q.pop();
      const Coord c = mesh.coord_of(cur);
      box = box.hull(c);
      ++block.member_count;
      if (field.at(cur) == NodeStatus::kFaulty) ++block.faulty_count;
      mesh.for_each_grid_neighbor(c, [&](Direction, const Coord& nb) {
        const NodeId nid = mesh.index_of(nb);
        if (seen[static_cast<size_t>(nid)] || !is_block_member(field.at(nid))) return;
        seen[static_cast<size_t>(nid)] = 1;
        q.push(nid);
      });
    }
    block.box = box;
    block.filled = block.member_count == box.volume();
    out.push_back(block);
  }

  std::sort(out.begin(), out.end(),
            [](const BlockSummary& a, const BlockSummary& b) { return a.box < b.box; });
  return out;
}

std::vector<Box> block_boxes(const StatusField& field) {
  std::vector<Box> out;
  for (const auto& b : extract_blocks(field)) out.push_back(b.box);
  return out;
}

int max_block_extent(const std::vector<BlockSummary>& blocks) {
  int m = 0;
  for (const auto& b : blocks) m = std::max(m, b.box.max_extent());
  return m;
}

int max_block_extent(const std::vector<Box>& blocks) {
  int m = 0;
  for (const auto& b : blocks) m = std::max(m, b.max_extent());
  return m;
}

bool all_blocks_filled(const std::vector<BlockSummary>& blocks) {
  return std::all_of(blocks.begin(), blocks.end(),
                     [](const BlockSummary& b) { return b.filled; });
}

int box_manhattan_distance(const Box& a, const Box& b) {
  int d = 0;
  for (int i = 0; i < a.dims(); ++i) {
    const int gap = std::max({0, b.lo(i) - a.hi(i), a.lo(i) - b.hi(i)});
    d += gap;
  }
  return d;
}

bool blocks_well_separated(const std::vector<BlockSummary>& blocks) {
  for (size_t i = 0; i < blocks.size(); ++i)
    for (size_t j = i + 1; j < blocks.size(); ++j)
      if (box_manhattan_distance(blocks[i].box, blocks[j].box) < 2) return false;
  return true;
}

bool blocks_chebyshev_separated(const std::vector<BlockSummary>& blocks) {
  for (size_t i = 0; i < blocks.size(); ++i)
    for (size_t j = i + 1; j < blocks.size(); ++j)
      if (blocks[i].box.inflated(1).intersects(blocks[j].box)) return false;
  return true;
}

bool enabled_region_connected(const StatusField& field) {
  const Topology& mesh = field.mesh();
  const long long n = field.node_count();
  auto alive = [&](NodeId id) {
    const NodeStatus s = field.at(id);
    return s == NodeStatus::kEnabled || s == NodeStatus::kClean;
  };

  NodeId start = kInvalidNode;
  long long alive_total = 0;
  for (NodeId id = 0; id < n; ++id) {
    if (alive(id)) {
      if (start == kInvalidNode) start = id;
      ++alive_total;
    }
  }
  if (alive_total == 0) return true;

  std::vector<uint8_t> seen(static_cast<size_t>(n), 0);
  std::queue<NodeId> q;
  q.push(start);
  seen[static_cast<size_t>(start)] = 1;
  long long reached = 0;
  while (!q.empty()) {
    const NodeId cur = q.front();
    q.pop();
    ++reached;
    mesh.for_each_grid_neighbor(mesh.coord_of(cur), [&](Direction, const Coord& nb) {
      const NodeId nid = mesh.index_of(nb);
      if (seen[static_cast<size_t>(nid)] || !alive(nid)) return;
      seen[static_cast<size_t>(nid)] = 1;
      q.push(nid);
    });
  }
  return reached == alive_total;
}

}  // namespace lgfi
