#pragma once
// The distributed fault-information machinery (Sections 3 and 5).
//
// DistributedFaultModel is the per-node protocol stack of the paper run over
// the synchronous round model: within every round, each construction's
// message advances one hop —
//
//   1. status exchange      (Algorithm 1: rules 1-5; measures a_i)
//   2. level detection      (Definition 2: adjacent nodes and all levels of
//                            edge nodes and corners, via anchor-tagged
//                            announcements)
//   3. identification       (Algorithm 2 step 3: the recursive k-level
//                            process — edge walks, ring walks, collectors,
//                            TTL discard on instability; measures b_i)
//   4. envelope propagation (Algorithm 2 step 4: identified info floods the
//                            whole envelope)
//   5. boundary construction(Definition 3: wall messages from surface-edge
//                            rings, merging onto other blocks; measures c_i)
//   6. cancellation         (deletion process: stale info waves)
//
// All decisions are node-local: a node sees its own state, its neighbours'
// previous-round state (the BSP one-hop rule), and the messages delivered
// this round.  The centralized references in labeling.h / boundary_model.h
// predict the fixpoints; integration tests assert convergence to them.
//
// Anchors.  A node out-by-one in m dimensions of a block has a unique
// diagonal member node w (its *anchor*) inside the block.  Level-m entries
// carry their anchor, which gives an exact, local same-block test even when
// two blocks touch diagonally (possible for n >= 3; see block_analyzer.h).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/fault/block_registry.h"
#include "src/fault/labeling.h"
#include "src/fault/node_status.h"
#include "src/sim/engine.h"
#include "src/sim/mailbox.h"

namespace lgfi {

struct DistributedModelOptions {
  /// Base TTL for identification messages; 0 derives 4 * (sum of extents) + 16.
  int message_ttl = 0;
  /// A level-n corner missing covering block info retries identification
  /// after this many rounds; 0 derives 2 * (sum of extents) + 8.
  int retry_interval = 0;
  /// Eager invalidation: any node holding info contradicted by a neighbour's
  /// member status starts a cancel wave (besides the corner-triggered
  /// deletion).  Ablatable; see DESIGN.md §6 note 8.
  bool eager_invalidation = true;
  /// Active-set round engine (DESIGN.md §14): every round phase iterates a
  /// dirty-node worklist seeded from fault events, inbox deliveries and
  /// prior-round state changes instead of scanning all N nodes.  The BSP
  /// one-hop rule makes the worklist sound — a node with no mail and no
  /// neighbour change cannot act — so the trajectory is byte-identical to
  /// the full scan; set false to run (and test against) the O(N)-per-round
  /// historical path.
  bool active_set = true;
  /// Prints identification message events to stderr (debugging aid).
  bool trace = false;
};

/// One (anchor, level) classification a node holds (Definition 2).
struct LevelEntry {
  Coord anchor;     ///< the diagonal block-member node
  int8_t level = 0; ///< m: out-by-m dimensions
  friend bool operator==(const LevelEntry& a, const LevelEntry& b) {
    return a.anchor == b.anchor && a.level == b.level;
  }
};

/// Per-round activity counters, used to derive a_i / b_i / c_i.
struct RoundActivity {
  bool labeling = false;
  bool levels = false;
  bool identification = false;
  bool envelope = false;
  bool boundary = false;
  bool cancel = false;
  [[nodiscard]] bool any() const {
    return labeling || levels || identification || envelope || boundary || cancel;
  }
};

struct ConstructionRounds {
  int labeling = 0;        ///< a_i: last round (1-based) with a status change
  int identification = 0;  ///< b_i: last round with level/identification activity
  int boundary = 0;        ///< c_i: last round with envelope/wall/cancel activity
  int total = 0;
};

class DistributedFaultModel final : public SynchronousProtocol {
 public:
  explicit DistributedFaultModel(const Topology& mesh,
                                 DistributedModelOptions options = {});
  // Out-of-line: the mailbox unique_ptrs hold types completed only in the
  // implementation files.
  ~DistributedFaultModel() override;

  // --- environment events (the fault-detection phase of a step) ---
  void inject_fault(const Coord& c);
  void recover(const Coord& c);

  // --- protocol execution ---
  bool run_round() override;
  [[nodiscard]] std::string name() const override { return "fault-info"; }

  /// Runs rounds to quiescence; returns per-construction round counts for
  /// the change since the previous stabilization.
  ConstructionRounds stabilize(int max_rounds = 1 << 20);

  // --- observable state ---
  [[nodiscard]] const Topology& mesh() const { return *mesh_; }
  [[nodiscard]] const StatusField& field() const { return field_; }
  [[nodiscard]] const InfoStore& info() const { return info_; }
  [[nodiscard]] const std::vector<LevelEntry>& levels_at(NodeId id) const {
    return levels_[static_cast<size_t>(id)];
  }
  [[nodiscard]] long long messages_sent() const { return messages_sent_; }
  [[nodiscard]] int rounds_run() const { return rounds_run_; }
  /// Per-node protocol evaluations performed so far, across all six round
  /// phases.  Under the active-set engine a fully quiescent round performs
  /// zero visits; the full scan performs ~6N (pinned by tests).
  [[nodiscard]] long long protocol_node_visits() const { return protocol_node_visits_; }
  /// Estimated resident bytes of the model's per-node state (SoA arrays,
  /// consolidated bookkeeping tables, mailboxes).  The bytes/node headline
  /// metric of the scale benches.
  [[nodiscard]] long long memory_bytes() const;
  /// Activity flags of the most recent round (used by the dynamic step model
  /// to attribute convergence rounds to a_i / b_i / c_i).
  [[nodiscard]] const RoundActivity& last_activity() const { return last_activity_; }

  /// Geometric helper: the anchor of position `c` if it is out-by-m (m >= 1)
  /// of a block with the given member test; exposed for tests.
  [[nodiscard]] static Coord anchor_of(const Coord& c, const std::vector<int>& out_dims,
                                       const std::vector<int>& out_signs);

 private:
  // ---- message types (definitions in identification.cpp etc.) ----
  struct IdentMessage;
  struct InfoMessage;
  struct WallMessage;
  struct CancelMessage;

  // Round phases; each returns true if anything happened.
  bool round_labeling();
  bool round_levels();
  bool round_identification();
  bool round_envelope();
  bool round_boundary();
  bool round_cancel();

  // identification.cpp helpers
  /// Returns true while some level-n corner lacks covering block info.
  /// Full-scan form; the active form evaluates only pending corner nodes.
  bool trigger_identifications();
  bool trigger_identifications_active();
  /// Shared per-corner-node launch logic; returns true if the node still has
  /// an uncovered, non-abandoned level-n corner (= it must stay pending).
  bool evaluate_corner_node(NodeId id, int retry);
  [[nodiscard]] int launch_retry_interval() const;
  void age_identification_bookkeeping();
  void handle_ident_message(NodeId node, IdentMessage m);
  void launch_process(NodeId corner, const LevelEntry& entry);
  void launch_subprocess(const Coord& at, int level, uint8_t free_mask,
                         std::array<int8_t, kMaxDims> out_signs, const IdentMessage& parent,
                         int parent_walk_dim, int parent_walk_sign);
  /// A process at `m.level` finished with `box` at `node` (an opposite
  /// corner whose anchor is `corner_anchor`): either forms block info (top)
  /// or records a slice result and possibly self-starts the parent collector.
  void process_complete(NodeId node, const IdentMessage& m, const Coord& corner_anchor,
                        const Box& box);
  [[nodiscard]] bool has_level_entry(NodeId node, const Coord& anchor, int level) const;
  [[nodiscard]] std::optional<LevelEntry> entry_with_anchor(NodeId node,
                                                            const Coord& anchor) const;

  // envelope_propagation.cpp helpers
  void start_info_flood(NodeId origin, const BlockInfo& info);
  void handle_info_message(NodeId node, const InfoMessage& m);

  // boundary_protocol.cpp helpers
  void spawn_walls_if_ring(NodeId node, const BlockInfo& info);
  void handle_wall_message(NodeId node, const WallMessage& m);

  // cancel (boundary_protocol.cpp)
  void start_cancel(NodeId origin, const Box& box, uint32_t epoch);
  void handle_cancel_message(NodeId node, const CancelMessage& m);
  /// Returns true if it fired anything (a cancel wave or a local removal) —
  /// the active-set engine re-marks such nodes so a persisting condition
  /// re-fires next round exactly as the full scan does.
  bool check_eager_invalidation(NodeId node);
  /// The corner-triggered deletion check for one node (the paper's rule);
  /// returns true if a cancel wave was started.
  bool check_formed_corners(NodeId node);
  /// Drops every entry whose provenance names `dead_carrier` as its merge
  /// carrier and retraces its continuation walls from the carrier's rings.
  void sweep_carried_info(NodeId node, const Box& dead_carrier, int ttl);

  [[nodiscard]] int default_ttl() const;
  [[nodiscard]] bool is_member(const Coord& c) const {
    return is_block_member(field_.at(c));
  }
  /// Physical memory loss: a node that fails (or comes back) has no stored
  /// information or protocol bookkeeping left.
  void wipe_node_memory(NodeId node);
  /// Shared event seeding for inject_fault / recover: marks the one-hop
  /// neighbourhood of `node` dirty in every phase worklist and resets the
  /// per-epoch launch bookkeeping.
  void on_status_event(NodeId node);

  // All InfoStore mutation goes through these wrappers so the cancel-phase
  // and identification worklists learn about every information change.
  bool deposit_info(NodeId node, const BlockInfo& info, const Provenance& prov = {});
  bool remove_info(NodeId node, const Box& box, uint32_t epoch);

  // ---- active-set worklist plumbing (options_.active_set) ----
  void mark_levels(NodeId id) {
    if (levels_marked_[static_cast<size_t>(id)]) return;
    levels_marked_[static_cast<size_t>(id)] = 1;
    levels_queue_.push_back(id);
  }
  void mark_levels_neighborhood(NodeId id);
  void mark_cancel(NodeId id) {
    if (cancel_marked_[static_cast<size_t>(id)]) return;
    cancel_marked_[static_cast<size_t>(id)] = 1;
    cancel_queue_.push_back(id);
  }
  void mark_cancel_neighborhood(NodeId id);
  void mark_corner_pending(NodeId id) {
    if (corner_pending_marked_[static_cast<size_t>(id)]) return;
    corner_pending_marked_[static_cast<size_t>(id)] = 1;
    corner_pending_.push_back(id);
  }
  /// Per-node Definition-2 recomputation (shared by both engines).  Returns
  /// true if the node's entry set changed; maintains the snapshot-on-write
  /// prev view and (active engine) the downstream worklists.
  bool visit_levels(NodeId id);
  /// The previous-round entry view of `id`: the snapshot if `id` was
  /// rewritten this round, the live entries otherwise.  Valid from
  /// round_levels until the next round's round_levels.
  [[nodiscard]] const std::vector<LevelEntry>& levels_before(NodeId id) const {
    return levels_prev_round_[static_cast<size_t>(id)] == levels_round_
               ? levels_prev_[static_cast<size_t>(id)]
               : levels_[static_cast<size_t>(id)];
  }

 public:
  /// True if `p` lies on the straight boundary-wall column of block `box`
  /// for surface (dim, positive): exactly one lateral dim out by one, the
  /// rest within range, and the dim coordinate strictly beyond the block on
  /// the guarded-opposite side.  Public for tests and analysis tools.
  [[nodiscard]] static bool on_wall_column(const Coord& p, const Box& box, int dim,
                                           bool positive);

 private:

  const Topology* mesh_;
  DistributedModelOptions options_;
  StatusField field_;
  std::vector<uint8_t> freshly_clean_;

  // Level detection state: levels_ is current; levels_prev_ is a
  // snapshot-on-write buffer valid for node id while levels_prev_round_[id]
  // == levels_round_ (read through levels_before()).  Equivalent to the old
  // wholesale array swap, but a round that changes k nodes copies k entry
  // vectors instead of rewriting N.
  std::vector<std::vector<LevelEntry>> levels_;
  std::vector<std::vector<LevelEntry>> levels_prev_;
  std::vector<int> levels_prev_round_;
  int levels_round_ = 0;

  InfoStore info_;

  // Identification bookkeeping, consolidated into (node, key) global tables:
  // a quiescent node costs zero bytes here, the per-epoch reset is an O(live
  // entries) clear instead of an O(N) sweep over per-node maps, and wiping a
  // dead node is an erase_if.  Keys mix the pid/level/parent-stack instance
  // hash (see identification.cpp); the node id is stored verbatim so the
  // dedup semantics are exactly the old per-node containers'.
  struct NodeKey {
    NodeId node;
    uint64_t key;
    friend bool operator==(const NodeKey& a, const NodeKey& b) {
      return a.node == b.node && a.key == b.key;
    }
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& k) const {
      uint64_t h = static_cast<uint64_t>(k.node) * 0x9E3779B97F4A7C15ull;
      h ^= k.key + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  uint64_t next_pid_ = 1;
  struct SliceResult {
    Box box;
    int round = 0;  ///< for aging out results of dead processes
  };
  std::unordered_map<NodeKey, SliceResult, NodeKeyHash> slice_results_;
  struct CornerCollect {
    Box box;
    int arrivals = 0;
    int round = 0;
    bool invalid = false;  ///< inconsistent sections: the block is not stable
  };
  std::unordered_map<NodeKey, CornerCollect, NodeKeyHash> corner_collect_;
  // Per-(corner, anchor) launch log: last launch round + attempts this
  // epoch.  A corner whose identification keeps failing (e.g. its walks are
  // permanently blocked by a diagonally touching block) is abandoned after a
  // few tries so the system can quiesce — it stays uninformed, which only
  // costs routing detours, never correctness.
  struct LaunchBook {
    int last_round = 0;
    int attempts = 0;
  };
  std::unordered_map<NodeKey, LaunchBook, NodeKeyHash> launch_book_;

  // Mailboxes (one hop per round each).
  MailboxSystem<IdentMessage>* ident_mail();
  MailboxSystem<InfoMessage>* info_mail();
  MailboxSystem<WallMessage>* wall_mail();
  MailboxSystem<CancelMessage>* cancel_mail();
  std::unique_ptr<MailboxSystem<IdentMessage>> ident_mail_;
  std::unique_ptr<MailboxSystem<InfoMessage>> info_mail_;
  std::unique_ptr<MailboxSystem<WallMessage>> wall_mail_;
  std::unique_ptr<MailboxSystem<CancelMessage>> cancel_mail_;

  // Corner-triggered deletion (the paper's deletion process): corners
  // remember the infos they formed so they can cancel them when their
  // existing condition no longer holds.
  std::vector<std::vector<BlockInfo>> formed_at_corner_;

  // Merge-flood dedup: (info box, carrier box, surface) triples processed,
  // keyed by (node, triple hash) in one global set.
  std::unordered_set<NodeKey, NodeKeyHash> merge_seen_;

  // Cancel-flood dedup.  Keyed by (box, epoch, carrier, surface) so the wave
  // traverses the entire envelope even across nodes that already dropped the
  // entry locally — otherwise eager invalidation could cut the wave before
  // it reaches the ring nodes that must cancel the walls.  The per-node
  // entry count preserves the historical bounded-memory rule (a node's keys
  // are dropped when it accumulates > 512).
  std::unordered_set<NodeKey, NodeKeyHash> cancel_seen_;
  std::vector<uint16_t> cancel_seen_count_;

  // ---- active-set round engine state (options_.active_set) ----
  LabelingWorklist labeling_wl_;
  std::vector<uint8_t> levels_marked_;  ///< round_levels worklist flags
  std::vector<NodeId> levels_queue_;
  std::vector<uint8_t> cancel_marked_;  ///< round_cancel check-worklist flags
  std::vector<NodeId> cancel_queue_;
  std::vector<uint8_t> has_corner_;     ///< node holds a level-n entry
  std::vector<NodeId> corner_nodes_;    ///< nodes with has_corner_ set (compacted lazily)
  std::vector<uint8_t> corner_pending_marked_;
  std::vector<NodeId> corner_pending_;  ///< corners to evaluate for (re)launch
  std::vector<LevelEntry> levels_scratch_;
  std::vector<Coord> candidate_scratch_;
  long long protocol_node_visits_ = 0;

  uint32_t epoch_ = 1;
  int rounds_run_ = 0;
  long long messages_sent_ = 0;
  long long envelope_deposits_ = 0;
  long long wall_deposits_ = 0;
  RoundActivity last_activity_;

 public:
  [[nodiscard]] long long envelope_deposits() const { return envelope_deposits_; }
  [[nodiscard]] long long wall_deposits() const { return wall_deposits_; }
  [[nodiscard]] uint32_t epoch() const { return epoch_; }
};

}  // namespace lgfi
