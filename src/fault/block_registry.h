#pragma once
// Block information records and the per-node information store.
//
// The "limited global information" of the paper is block information —
// the block's box — replicated at a *limited* set of nodes: the block's
// envelope (Algorithm 2 step 4) and the boundary walls (Definition 3).
// InfoStore is that per-node storage; the memory-overhead experiment (E10)
// reports its footprint against the every-node-stores-everything baseline.
//
// Each entry carries its *provenance* — how the deposit was justified:
// being on the block's envelope, sitting on one of its boundary walls, or
// having been merged onto another block's envelope (Definition 3's merge
// rule).  Provenance is what makes the deletion process complete: when a
// carrier block is cancelled, every entry it was carrying is swept with it
// and its continuation walls are retraced (see boundary_protocol.cpp).

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/mesh/box.h"
#include "src/mesh/topology.h"

namespace lgfi {

/// One piece of block information as distributed through the network.
struct BlockInfo {
  Box box;             ///< the faulty block [lo_1:hi_1, ..., lo_n:hi_n]
  uint32_t epoch = 0;  ///< construction epoch; newer epochs supersede older

  friend bool operator==(const BlockInfo& a, const BlockInfo& b) {
    return a.box == b.box && a.epoch == b.epoch;
  }
};

/// Why a node stores an entry.  Ordered by justification strength: an
/// envelope deposit is locally re-validatable, a wall deposit is justified
/// by the block alone, a merged deposit additionally depends on the carrier.
enum class InfoVia : uint8_t {
  kEnvelope = 0,
  kWall = 1,
  kMerged = 2,
};

struct Provenance {
  InfoVia via = InfoVia::kEnvelope;
  Box carrier;          ///< kMerged: the block whose envelope carries this
  int8_t dim = -1;      ///< kWall/kMerged: the guarded surface dimension
  int8_t positive = 0;  ///< kWall/kMerged: the guarded surface side
};

/// Per-node replicated block information for a whole mesh.
class InfoStore {
 public:
  explicit InfoStore(const Topology& mesh);

  /// Adds (or refreshes) `info` at `node`.  Returns true if the store
  /// changed (new box, or newer epoch for an existing box).  A repeated
  /// deposit upgrades the provenance if the new justification is stronger
  /// (kEnvelope > kWall > kMerged).
  bool deposit(NodeId node, const BlockInfo& info, const Provenance& prov = {});

  /// Removes the entry with `box` (any epoch <= `epoch`).  Returns true if
  /// something was removed.
  bool cancel(NodeId node, const Box& box, uint32_t epoch);

  /// Removes everything stored at `node`.
  void clear_node(NodeId node);
  void clear();

  [[nodiscard]] std::span<const BlockInfo> at(NodeId node) const {
    return infos_[static_cast<size_t>(node)];
  }
  [[nodiscard]] std::span<const Provenance> provenance_at(NodeId node) const {
    return provs_[static_cast<size_t>(node)];
  }
  [[nodiscard]] bool holds(NodeId node, const Box& box) const;
  [[nodiscard]] std::optional<BlockInfo> find(NodeId node, const Box& box) const;

  /// Number of nodes storing at least one entry — the paper's "memory
  /// requirement ... in the whole network" metric.
  [[nodiscard]] long long nodes_with_info() const;

  /// Total entries across all nodes.
  [[nodiscard]] long long total_entries() const;

  /// Estimated resident bytes (per-node vector headers + retained entry
  /// capacity).  O(N) — bench/reporting use only.
  [[nodiscard]] long long memory_bytes() const;

 private:
  // Parallel per-node vectors (infos_ stays contiguous for InfoProvider).
  std::vector<std::vector<BlockInfo>> infos_;
  std::vector<std::vector<Provenance>> provs_;
};

}  // namespace lgfi
