// Boundary construction (Definition 3) and the deletion process.
//
// Wall messages start at surface-edge ring nodes (spawned when the envelope
// flood deposits block info there) and walk away from the block, one hop per
// round, depositing the info until the outmost mesh surface — or another
// block, onto which the info merges (a merge flood over that block's
// envelope, whose ring nodes continue the wall on the far side).
//
// The deletion process mirrors the same geometry with cancel messages.  It
// is triggered the way the paper specifies — "when an n-level corner of the
// old block finds that its existing condition cannot be satisfied" — plus
// optional eager local invalidation rules (DESIGN.md §6 note 8).

#include <algorithm>
#include <cstdio>

#include "src/fault/corner_taxonomy.h"
#include "src/fault/distributed_messages.h"

namespace lgfi {

void DistributedFaultModel::spawn_walls_if_ring(NodeId node, const BlockInfo& info) {
  const Coord c = mesh_->coord_of(node);
  const EnvelopeClass cls = classify_against_block(c, info.box);
  if (!cls.on_envelope || cls.out_dims != 2) return;

  // A ring node is out in two dims; it lies on the boundary ring of surface
  // S_{j,s} for each out dim j, where s is the side OPPOSITE the node's
  // position (the wall for S_{j,+} hangs below the block).
  for (int idx = 0; idx < 2; ++idx) {
    const int j = cls.out_dim_list[static_cast<size_t>(idx)];
    const bool out_positive = cls.out_side_positive[static_cast<size_t>(idx)];
    WallMessage w;
    w.info = info;
    w.dim = static_cast<int8_t>(j);
    w.positive = out_positive ? 0 : 1;  // at lo-1 -> guards +j crossings
    w.ttl = static_cast<int16_t>(default_ttl());
    const Coord next = c.shifted(j, out_positive ? +1 : -1);  // away from the block
    if (!mesh_->in_bounds(next)) continue;
    if (is_member(next)) {
      // Immediate merge: the wall's very first hop is another block.  Route
      // the message through ourselves with the waiting flag so the handler's
      // merge logic runs even though we already hold the info.
      w.waiting = 1;
      wall_mail_->send(node, w);
      continue;
    }
    wall_mail_->send(mesh_->index_of(next), w);
  }
}

void DistributedFaultModel::handle_wall_message(NodeId node, const WallMessage& msg) {
  WallMessage m = msg;
  if (--m.ttl <= 0) return;
  const Coord c = mesh_->coord_of(node);
  if (is_member(c)) return;  // raced with a growing block; discard

  // Deposit and keep walking even when the info is already present: a node
  // may have learned it from a merge flood while the nodes further out have
  // not (stopping here would leave a hole the centralized fixpoint covers).
  Provenance prov;
  prov.via = InfoVia::kWall;
  prov.dim = m.dim;
  prov.positive = m.positive;
  if (deposit_info(node, m.info, prov)) ++wall_deposits_;

  const int dir = m.positive ? -1 : +1;  // S_{j,+} walls extend toward -j
  const Coord next = c.shifted(m.dim, dir);
  if (!mesh_->in_bounds(next)) return;  // outmost surface: the wall ends

  if (!is_member(next)) {
    m.waiting = 0;
    wall_mail_->send(mesh_->index_of(next), m);
    return;
  }

  // The wall ran into another block: merge.  We are its adjacent node, so
  // once that block is identified we hold its info and can flood ours over
  // its envelope; until then, wait here (TTL-bounded).
  for (const auto& held : info_.at(node)) {
    if (held.box.contains(next)) {
      InfoMessage flood;
      flood.info = m.info;
      flood.carrier = held.box;
      flood.surface_dim = m.dim;
      flood.surface_positive = m.positive;
      flood.ttl = static_cast<int16_t>(default_ttl());
      info_mail_->send(node, flood);
      return;
    }
  }
  m.waiting = 1;
  wall_mail_->send(node, m);  // carrier not yet identified: wait a round
}

bool DistributedFaultModel::round_boundary() {
  wall_mail_->flip();
  bool any = false;
  auto deliver = [&](NodeId id) {
    ++protocol_node_visits_;
    for (const auto& msg : wall_mail_->inbox(id)) {
      any = true;
      handle_wall_message(id, msg);
    }
  };
  if (options_.active_set) {
    for (NodeId id : wall_mail_->active()) deliver(id);
  } else {
    for (NodeId id = 0; id < field_.node_count(); ++id) deliver(id);
  }
  return any || wall_mail_->pending() > 0;
}

// ---------------------------------------------------------------- deletion

void DistributedFaultModel::start_cancel(NodeId origin, const Box& box, uint32_t epoch) {
  // Deliver the wave to ourselves first: the origin then runs the full
  // kind-0 logic — forwarding over the envelope AND spawning the wall
  // cancels if it happens to be a surface-edge ring node itself.
  CancelMessage m;
  m.box = box;
  m.epoch = epoch;
  m.kind = 0;
  m.ttl = static_cast<int16_t>(default_ttl());
  m.force = 1;
  cancel_mail_->send(origin, std::move(m));
}

void DistributedFaultModel::handle_cancel_message(NodeId node, const CancelMessage& msg) {
  CancelMessage m = msg;
  if (--m.ttl <= 0) return;
  const Coord c = mesh_->coord_of(node);

  if (m.kind == 1) {
    // Wall cancel: walk the old wall, removing as we go.  The walk must be
    // more tenacious than the wall itself was: the old wall may have been
    // deposited when the space was free and a block may sit there now, or
    // vice versa.  Disabled members are alive processors and relay the
    // cancel; a faulty blocker forces the merge-undo path (waiting for the
    // blocking block's identity if necessary, TTL-bounded).
    (void)remove_info(node, m.box, m.epoch);
    const int dir = m.positive ? -1 : +1;
    const Coord next = c.shifted(m.dim, dir);
    if (!mesh_->in_bounds(next)) return;
    if (field_.at(next) == NodeStatus::kFaulty) {
      // Undo the merge onto the blocking block (its envelope carries our
      // box's info plus the continuation walls beyond it).  Never treat the
      // cancelled block itself as a carrier: a cancel that wandered back to
      // its own block must not erase the block's live information.
      for (const auto& held : info_.at(node)) {
        if (held.box.contains(next) && !(held.box == m.box)) {
          CancelMessage flood = m;
          flood.kind = 0;
          flood.carrier = held.box;
          cancel_mail_->send(node, flood);
          return;
        }
      }
      if (!m.box.contains(next))
        cancel_mail_->send(node, m);  // blocker not yet identified: wait a round
      return;
    }
    cancel_mail_->send(mesh_->index_of(next), m);
    // If the next node is a disabled member, ALSO undo the merge onto its
    // block when we know it — the lateral merge deposits are not on the
    // straight walk.
    if (is_member(next)) {
      for (const auto& held : info_.at(node)) {
        if (held.box.contains(next) && !(held.box == m.box)) {
          CancelMessage flood = m;
          flood.kind = 0;
          flood.carrier = held.box;
          cancel_mail_->send(node, flood);
          break;
        }
      }
    }
    return;
  }

  // Envelope cancel flood (own envelope, or a carrier's when undoing merges).
  const Box& shell = m.carrier.empty() ? m.box : m.carrier;
  if (corner_level(c, shell) == 0 && !m.force) return;
  (void)remove_info(node, m.box, m.epoch);
  if (!m.carrier.empty()) {
    merge_seen_.erase(NodeKey{node, merge_key(m.box, m.carrier, m.dim, m.positive != 0)});
  }
  // Dedup by wave identity, not by removal success: a node that already lost
  // the entry (eager invalidation) must still relay the wave so the ring
  // nodes beyond it cancel their walls.
  const uint64_t wave_key =
      merge_key(m.box, m.carrier, m.dim, m.positive != 0) ^
      (0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(m.epoch) + 1));
  auto& seen_count = cancel_seen_count_[static_cast<size_t>(node)];
  if (seen_count > 512) {  // bounded memory; keys are epoch-scoped
    std::erase_if(cancel_seen_, [node](const NodeKey& k) { return k.node == node; });
    seen_count = 0;
  }
  const bool inserted = cancel_seen_.insert(NodeKey{node, wave_key}).second;
  if (inserted) ++seen_count;
  if (!inserted && !m.force) return;
  m.force = 0;

  // Sweep away everything this box was CARRYING (merged deposits): when the
  // carrier dies, the foreign info's justification dies with it, and the
  // node — if it is one of the carrier's surface-edge ring positions —
  // retraces the continuation wall it once spawned for the foreign info.
  if (m.carrier.empty()) sweep_carried_info(node, m.box, m.ttl);

  CancelMessage fwd = m;
  mesh_->for_each_grid_neighbor(c, [&](Direction, const Coord& nb) {
    if (corner_level(nb, shell) == 0) return;
    cancel_mail_->send(mesh_->index_of(nb), fwd);
  });

  // Ring positions spawn wall cancels, mirroring the wall spawning rules:
  // an own-envelope cancel (carrier empty) retraces the block's walls on
  // every surface, but a merge-undo flood retraces ONLY the continuation of
  // the wave's own surface — exactly like the forward merge continuation.
  // Spawning all directions here would launch cancels marching back toward
  // the (live) cancelled box and eventually erase it (self-cancellation).
  const EnvelopeClass cls = classify_against_block(c, shell);
  if (cls.on_envelope && cls.out_dims == 2) {
    for (int idx = 0; idx < 2; ++idx) {
      const int j = cls.out_dim_list[static_cast<size_t>(idx)];
      const bool out_positive = cls.out_side_positive[static_cast<size_t>(idx)];
      const bool guards_positive = !out_positive;
      if (!m.carrier.empty() &&
          (j != m.dim || (guards_positive ? 1 : 0) != m.positive))
        continue;  // merge-undo: same-surface continuation only
      CancelMessage w = m;
      w.kind = 1;
      w.carrier = Box();
      w.dim = static_cast<int8_t>(j);
      w.positive = guards_positive ? 1 : 0;
      const Coord next = c.shifted(j, out_positive ? +1 : -1);
      if (mesh_->in_bounds(next) && !is_member(next))
        cancel_mail_->send(mesh_->index_of(next), w);
    }
  }
}

void DistributedFaultModel::sweep_carried_info(NodeId node, const Box& dead_carrier, int ttl) {
  const Coord c = mesh_->coord_of(node);
  // Snapshot: cancelling mutates the store.
  std::vector<std::pair<BlockInfo, Provenance>> carried;
  {
    const auto infos = info_.at(node);
    const auto provs = info_.provenance_at(node);
    for (size_t i = 0; i < infos.size(); ++i) {
      if (infos[i].box == dead_carrier) continue;
      if (provs[i].via == InfoVia::kMerged && provs[i].carrier == dead_carrier)
        carried.emplace_back(infos[i], provs[i]);
    }
    // Deliberate under-coverage: straight walls that were blocked by the
    // dead carrier are NOT re-extended through the freed space (re-walking
    // can resurrect entries of blocks dying in the same window).  Missing
    // wall info is conservative — the probe learns of the block at its
    // envelope instead, at the cost of a longer detour (Theorem 5 regime);
    // the next identification epoch restores full coverage.  DESIGN.md §6
    // note 11.
  }
  for (const auto& [f, prov] : carried) {
    remove_info(node, f.box, f.epoch);
    merge_seen_.erase(NodeKey{node, merge_key(f.box, dead_carrier, prov.dim, prov.positive != 0)});
    // Self-optimizing re-assertion: with the carrier gone, the foreign
    // block's straight wall can extend through the freed space again.  A
    // swept node sitting on that wall column re-walks it downward (the wall
    // handler deposits and continues hop by hop); the information is true as
    // long as the foreign block exists, so re-placement is always safe.
    if (prov.dim >= 0 && !is_member(c) &&
        on_wall_column(c, f.box, prov.dim, prov.positive != 0)) {
      WallMessage rewalk;
      rewalk.info = f;
      rewalk.dim = prov.dim;
      rewalk.positive = prov.positive;
      rewalk.ttl = static_cast<int16_t>(default_ttl());
      rewalk.waiting = 1;  // process at ourselves first (re-deposit + continue)
      wall_mail_->send(node, rewalk);
    }
    // A ring node of the dead carrier once spawned the continuation wall for
    // this foreign info; retrace it with a wall cancel.
    const EnvelopeClass cls = classify_against_block(c, dead_carrier);
    if (cls.on_envelope && cls.out_dims == 2 && prov.dim >= 0) {
      const int ring_coord = prov.positive != 0 ? dead_carrier.lo(prov.dim) - 1
                                                : dead_carrier.hi(prov.dim) + 1;
      if (c[prov.dim] == ring_coord) {
        CancelMessage w;
        w.box = f.box;
        w.epoch = f.epoch;
        w.kind = 1;
        w.dim = prov.dim;
        w.positive = prov.positive;
        w.ttl = static_cast<int16_t>(ttl);
        const Coord next = c.shifted(prov.dim, prov.positive != 0 ? -1 : +1);
        if (mesh_->in_bounds(next) && !is_member(next))
          cancel_mail_->send(mesh_->index_of(next), w);
      }
    }
  }
}

bool DistributedFaultModel::check_eager_invalidation(NodeId node) {
  const Coord c = mesh_->coord_of(node);
  if (field_.at(node) == NodeStatus::kFaulty) return false;
  bool fired = false;
  // Copy: start_cancel mutates the store.
  const auto held_span = info_.at(node);
  const std::vector<BlockInfo> held(held_span.begin(), held_span.end());
  for (const auto& b : held) {
    // (b) the node was swallowed by a grown block: the old info of the box
    // it now sits in is necessarily stale only if the box excludes it —
    // a node inside b.box would be a member of that very block, so holding
    // info for a box containing ourselves while we are NOT a member means
    // the block shrank away.
    if (b.box.contains(c) && !is_member(c)) {
      if (options_.trace)
        std::fprintf(stderr, "[cancel r%d] eager-b at %s box=%s\n", rounds_run_,
                     c.to_string().c_str(), b.box.to_string().c_str());
      start_cancel(node, b.box, b.epoch);
      fired = true;
      continue;
    }
    // (c) adjacent (out-by-one) holder whose expected member neighbour is no
    // longer a member: the block shrank or split.
    const EnvelopeClass cls = classify_against_block(c, b.box);
    if (cls.on_envelope && cls.out_dims == 1) {
      const Coord inward = c.shifted(cls.out_dim_list[0], cls.out_side_positive[0] ? -1 : +1);
      if (mesh_->in_bounds(inward) && !is_member(inward)) {
        if (options_.trace)
          std::fprintf(stderr, "[cancel r%d] eager-c at %s box=%s inward=%s\n", rounds_run_,
                       c.to_string().c_str(), b.box.to_string().c_str(),
                       inward.to_string().c_str());
        start_cancel(node, b.box, b.epoch);
        fired = true;
      }
    }
  }
  // (e) subsumed duplicates: keep only the newest covering box.
  for (const auto& small : held) {
    for (const auto& big : held) {
      if (small.box == big.box) continue;
      if (big.box.contains(small.box) && big.epoch >= small.epoch)
        if (remove_info(node, small.box, small.epoch)) fired = true;
    }
  }
  return fired;
}

bool DistributedFaultModel::check_formed_corners(NodeId id) {
  // Corner-triggered deletion (the paper's rule): a corner that formed block
  // info whose corner condition no longer holds cancels it.
  auto& formed = formed_at_corner_[static_cast<size_t>(id)];
  if (formed.empty()) return false;
  bool any = false;
  const int n = mesh_->dims();
  const Coord c = mesh_->coord_of(id);
  for (size_t i = 0; i < formed.size();) {
    const BlockInfo f = formed[i];
    if (!info_.holds(id, f.box)) {
      // The corner's own copy vanished (e.g. a local eager invalidation):
      // its deletion duty still stands — stale replicas may survive
      // elsewhere.  Fire the wave once, then drop the bookkeeping.
      start_cancel(id, f.box, f.epoch);
      any = true;
      formed.erase(formed.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    bool condition_holds = false;
    if (field_.at(id) == NodeStatus::kEnabled && corner_level(c, f.box) == n) {
      // Still the opposite corner: must retain a level-n entry anchored at
      // the diagonal member inside the old box.
      for (const auto& e : levels_[static_cast<size_t>(id)])
        if (e.level == n && f.box.contains(e.anchor)) condition_holds = true;
    }
    if (condition_holds) {
      ++i;
    } else {
      if (options_.trace)
        std::fprintf(stderr, "[cancel r%d] corner-d at %s box=%s\n", rounds_run_,
                     mesh_->coord_of(id).to_string().c_str(), f.box.to_string().c_str());
      formed.erase(formed.begin() + static_cast<std::ptrdiff_t>(i));
      start_cancel(id, f.box, f.epoch);
      any = true;
    }
  }
  return any;
}

bool DistributedFaultModel::round_cancel() {
  cancel_mail_->flip();
  bool any = false;

  if (options_.active_set) {
    // Consume the dirty worklist up front: marks made while processing (info
    // removals, status fallout) belong to NEXT round's checks, exactly when
    // the full scan would next observe their effects.  Phase order within
    // the round — all corner checks, then all eager checks, then the inbox
    // deliveries — matches the full scan below.
    std::vector<NodeId> cur;
    cur.swap(cancel_queue_);
    for (NodeId id : cur) cancel_marked_[static_cast<size_t>(id)] = 0;
    std::sort(cur.begin(), cur.end());
    for (NodeId id : cur) {
      ++protocol_node_visits_;
      if (check_formed_corners(id)) any = true;
    }
    if (options_.eager_invalidation) {
      for (NodeId id : cur) {
        ++protocol_node_visits_;
        // A condition that persists (the wave needs a round to come back and
        // remove the entry) must re-fire next round like the full scan does.
        if (check_eager_invalidation(id)) mark_cancel(id);
      }
    }
    for (NodeId id : cancel_mail_->active()) {
      ++protocol_node_visits_;
      for (const auto& msg : cancel_mail_->inbox(id)) {
        any = true;
        handle_cancel_message(id, msg);
      }
    }
    return any || cancel_mail_->pending() > 0;
  }

  for (NodeId id = 0; id < field_.node_count(); ++id) {
    ++protocol_node_visits_;
    if (check_formed_corners(id)) any = true;
  }

  if (options_.eager_invalidation) {
    for (NodeId id = 0; id < field_.node_count(); ++id) {
      ++protocol_node_visits_;
      (void)check_eager_invalidation(id);
    }
  }

  for (NodeId id = 0; id < field_.node_count(); ++id) {
    ++protocol_node_visits_;
    for (const auto& msg : cancel_mail_->inbox(id)) {
      any = true;
      handle_cancel_message(id, msg);
    }
  }
  return any || cancel_mail_->pending() > 0;
}

}  // namespace lgfi
