#pragma once
// Private message definitions shared by the DistributedFaultModel
// translation units.  Not part of the public API.
//
// Every message advances one hop per round (Section 5).  Identification
// messages carry explicit geometric context (walk dimension/sign, the out
// signs of the corner region they emanate from, the accumulated extent
// hull) so that node handlers make purely local decisions against the
// node's own Definition-2 level entries.

#include "src/fault/distributed_model.h"

namespace lgfi {

/// Identification process messages (Algorithm 2 step 3).
struct DistributedFaultModel::IdentMessage {
  enum Kind : uint8_t {
    kEdgeWalk = 0,   ///< phase 1 of a level-k process (k >= 3)
    kRingWalk = 1,   ///< level-2 base case: walks the section ring
    kCollector = 2,  ///< phase 3: gathers slice results on the opposite edge
  };

  uint64_t pid = 0;
  Coord origin;          ///< initiating corner of the top-level process
  Kind kind = kEdgeWalk;
  int8_t level = 0;      ///< k of the process this message belongs to
  int8_t walk_dim = -1;
  int8_t walk_sign = 0;
  int8_t out_dim = -1;   ///< ring walk only: current side's out dimension
  int8_t turns = 0;      ///< ring walk only: corners already turned
  uint8_t free_mask = 0; ///< free dims of this process level
  /// Out signs (+1/-1) of the process's initiation corner region per dim;
  /// 0 for dims not out.  Ring walks mutate the walk-relevant entries as
  /// they turn; collectors carry the opposite corner's signs.
  std::array<int8_t, kMaxDims> out_signs{};
  /// Parent-process linkage stack: when this message belongs to a process
  /// identifying a slice of a higher-level process, the stack records the
  /// (walk dim, walk sign) of every enclosing phase-1 edge walk, deepest
  /// last.  Depth 0 means the top-level process.
  std::array<int8_t, kMaxDims> parent_dims{};
  std::array<int8_t, kMaxDims> parent_signs{};
  int8_t depth = 0;
  Box partial;           ///< hull of member anchors observed so far
  int16_t ttl = 0;
};

/// Block-information distribution messages (Algorithm 2 step 4 + merges).
struct DistributedFaultModel::InfoMessage {
  BlockInfo info;
  /// Empty carrier: plain envelope flood over info.box's own envelope.
  /// Non-empty: merge flood over `carrier`'s envelope for `surface`
  /// continuation (Definition 3 merge rule).
  Box carrier;
  int8_t surface_dim = -1;
  int8_t surface_positive = 0;
  int16_t ttl = 0;
};

/// Boundary wall messages (Definition 3).
struct DistributedFaultModel::WallMessage {
  BlockInfo info;     ///< the guarded block
  int8_t dim = -1;    ///< guarded crossing dimension j
  int8_t positive = 0;///< guarded crossing side s (wall extends toward -s)
  int16_t ttl = 0;
  /// Set when the wall is waiting for the carrier block's identity to merge
  /// onto (resent to self each round until the info shows up or TTL dies).
  int8_t waiting = 0;
};

/// Deletion-process messages: mirror the info/wall propagation geometry.
struct DistributedFaultModel::CancelMessage {
  Box box;            ///< the stale block info to remove
  uint32_t epoch = 0; ///< remove entries with epoch <= this
  /// kind 0: envelope flood (over box's envelope, or over `carrier`'s when
  /// carrier is non-empty — undoing a merge); kind 1: wall walk.
  int8_t kind = 0;
  Box carrier;
  int8_t dim = -1;
  int8_t positive = 0;
  int16_t ttl = 0;
  /// First hop of a corner-initiated wave: process even if the origin no
  /// longer holds the entry (it may have been removed locally while stale
  /// replicas survive downstream).
  int8_t force = 0;
};

/// Stable hash for merge dedup keys.
inline uint64_t merge_key(const Box& info, const Box& carrier, int dim, bool positive) {
  CoordHash h;
  uint64_t k = 0xcbf29ce484222325ull;
  auto mix = [&k](uint64_t v) {
    k ^= v + 0x9e3779b97f4a7c15ull + (k << 6) + (k >> 2);
  };
  mix(h(info.lo()));
  mix(h(info.hi()));
  mix(h(carrier.lo()));
  mix(h(carrier.hi()));
  mix(static_cast<uint64_t>(dim * 2 + (positive ? 1 : 0)));
  return k;
}

}  // namespace lgfi
