#include "src/fault/boundary_model.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <tuple>
#include <set>

namespace lgfi {

namespace {

/// Index of the block containing `c`, or -1.
int containing_block(const std::vector<Box>& blocks, const Coord& c) {
  for (size_t i = 0; i < blocks.size(); ++i)
    if (blocks[i].contains(c)) return static_cast<int>(i);
  return -1;
}

/// Deposits `info` on every envelope position of `carrier` (clipped).  In
/// n >= 3 an envelope position may be a member of a diagonally-touching
/// other block (a faulty/disabled node) — such positions cannot store
/// information and are skipped, matching the enabled-node requirement of
/// Definition 2.
void deposit_envelope(const Topology& mesh, const std::vector<Box>& blocks,
                      const Box& carrier, const BlockInfo& info, InformationPlacement& out) {
  for (const Coord& c : envelope_positions(mesh, carrier)) {
    if (containing_block(blocks, c) >= 0) continue;
    if (out.store.deposit(mesh.index_of(c), info)) ++out.envelope_deposits;
  }
}

}  // namespace

Box dangerous_region(const Topology& mesh, const Box& block, Surface s) {
  // The prism sits on the side OPPOSITE the guarded crossing direction: the
  // boundary for S_{j,+} encloses the area below the block.
  Coord lo = block.lo();
  Coord hi = block.hi();
  if (s.positive) {
    hi[s.dim] = block.lo(s.dim) - 1;
    lo[s.dim] = 0;
  } else {
    lo[s.dim] = block.hi(s.dim) + 1;
    hi[s.dim] = mesh.extent(s.dim) - 1;
  }
  if (hi[s.dim] < lo[s.dim]) return Box();  // block touches the mesh edge
  return mesh.clip(Box(lo, hi));
}

bool block_cuts_all_minimal_paths(const Box& block, const Coord& u, const Coord& d) {
  assert(u.size() == block.dims() && d.size() == block.dims());
  for (int j = 0; j < block.dims(); ++j) {
    const bool below_then_above = u[j] < block.lo(j) && d[j] > block.hi(j);
    const bool above_then_below = u[j] > block.hi(j) && d[j] < block.lo(j);
    if (!below_then_above && !above_then_below) continue;
    bool contained = true;
    for (int i = 0; i < block.dims() && contained; ++i) {
      if (i == j) continue;
      const int lo = std::min(u[i], d[i]);
      const int hi = std::max(u[i], d[i]);
      if (lo < block.lo(i) || hi > block.hi(i)) contained = false;
    }
    if (contained) return true;
  }
  return false;
}

std::vector<Coord> wall_positions_ignoring_merges(const Topology& mesh, const Box& block,
                                                  Surface s) {
  std::vector<Coord> out;
  // Walls extend from the edges of the opposite surface, away from the
  // block: for S_{j,+} that is from x_j = lo_j - 1 downward.
  const Surface opposite = s.opposite();
  const int step = s.positive ? -1 : +1;
  for (const Coord& ring : surface_edge_positions(mesh, block, opposite)) {
    Coord p = ring.shifted(s.dim, step);
    while (mesh.in_bounds(p)) {
      out.push_back(p);
      p = p.shifted(s.dim, step);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

InformationPlacement compute_information_placement(const Topology& mesh,
                                                   const std::vector<Box>& blocks,
                                                   uint32_t epoch) {
  InformationPlacement out(mesh);

  // Worklist of (info block, carrier block, guarded surface): deposit info on
  // the carrier's envelope and walk the carrier's walls for that surface;
  // walks that hit a third block push a new item.  Walls progress strictly
  // monotonically along the surface dimension, so the worklist terminates;
  // the visited set removes duplicates.
  struct Item {
    int info_block;
    int carrier;
    Surface surface;
  };
  std::deque<Item> work;
  std::set<std::tuple<int, int, int, int>> visited;  // (info, carrier, dim, side)

  auto push = [&](int info_block, int carrier, Surface s) {
    const auto key = std::make_tuple(info_block, carrier, s.dim, s.positive ? 1 : 0);
    if (visited.insert(key).second) work.push_back(Item{info_block, carrier, s});
  };

  for (int b = 0; b < static_cast<int>(blocks.size()); ++b) {
    const BlockInfo info{blocks[static_cast<size_t>(b)], epoch};
    // Algorithm 2 step 4: identified info reaches the whole envelope.
    deposit_envelope(mesh, blocks, blocks[static_cast<size_t>(b)], info, out);
    for (int dim = 0; dim < mesh.dims(); ++dim)
      for (bool positive : {false, true}) push(b, b, Surface{dim, positive});
  }

  while (!work.empty()) {
    const Item item = work.front();
    work.pop_front();
    const Box& info_box = blocks[static_cast<size_t>(item.info_block)];
    const Box& carrier = blocks[static_cast<size_t>(item.carrier)];
    const BlockInfo info{info_box, epoch};

    if (item.carrier != item.info_block) {
      // Merge rule: the foreign info covers the carrier's whole envelope.
      deposit_envelope(mesh, blocks, carrier, info, out);
      ++out.merge_events;
    }

    const Surface opposite = item.surface.opposite();
    const int step = item.surface.positive ? -1 : +1;
    for (const Coord& ring : surface_edge_positions(mesh, carrier, opposite)) {
      int length = 0;
      Coord p = ring.shifted(item.surface.dim, step);
      while (mesh.in_bounds(p)) {
        const int hit = containing_block(blocks, p);
        if (hit >= 0) {
          // The wall ran into another block: info merges onto it and rides
          // its boundary for the same surface.
          push(item.info_block, hit, item.surface);
          break;
        }
        if (out.store.deposit(mesh.index_of(p), info)) ++out.wall_deposits;
        ++length;
        p = p.shifted(item.surface.dim, step);
      }
      out.max_wall_length = std::max(out.max_wall_length, length);
    }
  }
  return out;
}

}  // namespace lgfi
