#pragma once
// Synchronous block-construction labeling (Definition 1, Definition 4,
// Algorithm 1) — centralized reference implementation.
//
// One round = one simultaneous application of the rules at every non-faulty
// node, using the statuses visible at the end of the previous round.  This is
// exactly the paper's model: "every non-faulty node u exchanges its status
// with that of its neighbors ... until there is no status change", with
// status propagation advancing one hop per round (Section 5).  The returned
// round count is the paper's a_i for the change that preceded the call.
//
// Rule set (Algorithm 1):
//   rule 1: enabled  -> disabled  if >= 2 disabled-or-faulty neighbours in
//                                 different dimensions
//   rule 2: disabled -> clean     if some clean neighbour and NOT >= 2 faulty
//                                 neighbours in different dimensions
//   rule 3: clean    -> disabled  if >= 2 faulty neighbours in different dims
//   rule 4: clean    -> enabled   otherwise
//   rule 5: faulty   -> clean     on recovery (event injection, not a round)
//
// Timing nuance for rules 3/4: Definition 4 says a clean node is relabeled
// "once all its neighbors know its clean status", i.e. its clean label must
// have been visible for one full round before rules 3/4 fire.  We model that
// with a freshly-clean flag: a node that became clean in round r broadcasts
// in round r (visible r+1) and transitions by rule 3/4 in round r+1.  This
// reproduces the paper's Figure 4 walkthrough exactly (see tests).

#include <vector>

#include "src/fault/node_status.h"

namespace lgfi {

struct LabelingResult {
  int rounds = 0;       ///< rounds in which at least one status changed (a_i)
  bool converged = false;
  long long status_changes = 0;  ///< total individual node transitions
};

/// One synchronous round over the whole field.  `freshly_clean` marks nodes
/// whose clean status is not yet known to neighbours; it is updated in
/// place.  Returns the number of nodes that changed status.
long long labeling_round(StatusField& field, std::vector<uint8_t>& freshly_clean);

/// Dirty-node worklist for the active-set labeling engine (DESIGN.md §14).
/// Soundness rests on the BSP one-hop rule: rules 1-4 read only a node's own
/// status and its grid neighbours' statuses, so a node whose inputs did not
/// change since its last evaluation cannot transition.  The worklist holds
/// every node with a changed input: labeling_round_active() re-marks the
/// one-hop neighbourhood of every transition, and external events (fault
/// injection, recovery) must be marked by the caller via mark_event().
struct LabelingWorklist {
  std::vector<uint8_t> marked;  ///< membership flags for `queue`
  std::vector<NodeId> queue;    ///< nodes to evaluate next round (deduped)
  std::vector<NodeId> changed;  ///< status transitions of the last round

  void init(long long node_count) {
    marked.assign(static_cast<size_t>(node_count), 0);
    queue.clear();
    changed.clear();
  }
  void mark(NodeId id) {
    if (marked[static_cast<size_t>(id)]) return;
    marked[static_cast<size_t>(id)] = 1;
    queue.push_back(id);
  }
  /// Marks a node and its grid neighbours (the read set of its neighbours'
  /// rules) — the seeding step for an external status event at `id`.
  void mark_event(const StatusField& field, NodeId id);
  /// Marks every node — the full-scan seed for a cold start.
  void mark_all(long long node_count) {
    for (NodeId id = 0; id < node_count; ++id) mark(id);
  }
};

/// labeling_round restricted to the worklist: evaluates only the queued
/// nodes, applies the identical rules with identical double-buffered timing,
/// rebuilds the worklist for the next round from the transitions it applied,
/// and records them in `wl.changed`.  The returned change count (and the
/// resulting field trajectory) is byte-identical to labeling_round() as long
/// as every external status event was seeded with mark_event().  `visits`,
/// when non-null, is incremented once per node evaluated.
long long labeling_round_active(StatusField& field, std::vector<uint8_t>& freshly_clean,
                                LabelingWorklist& wl, long long* visits = nullptr);

/// Runs rounds until no status changes (or max_rounds).  The field is
/// updated in place.  A fresh recovery must already be marked kClean (via
/// StatusField::recover) before calling; pass its node in `new_clean` so the
/// one-round visibility delay applies to it.
LabelingResult stabilize_labeling(StatusField& field, int max_rounds = 1 << 20,
                                  const std::vector<Coord>& new_clean = {});

/// Convenience: build a field from scratch with `faults` injected and
/// stabilize it (the static-fault case every block starts from).
StatusField stabilized_field(const Topology& mesh, const std::vector<Coord>& faults,
                             LabelingResult* result = nullptr);

/// Rule predicates, exposed for unit tests and for the distributed protocol
/// (which must apply the identical logic node-locally).
bool rule1_applies(const StatusField& field, NodeId id);  // enabled -> disabled
bool rule2_applies(const StatusField& field, NodeId id);  // disabled -> clean
bool rule3_applies(const StatusField& field, NodeId id);  // clean -> disabled
bool rule4_applies(const StatusField& field, NodeId id);  // clean -> enabled

}  // namespace lgfi
