#include "src/routing/direction_policy.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "src/fault/boundary_model.h"

namespace lgfi {

const char* to_string(DirectionClass c) {
  switch (c) {
    case DirectionClass::kPreferred: return "preferred";
    case DirectionClass::kSpareAlongBlock: return "spare-along-block";
    case DirectionClass::kSpare: return "spare";
    case DirectionClass::kPreferredDetour: return "preferred-but-detour";
    case DirectionClass::kExcluded: return "excluded";
  }
  return "?";
}

bool touches_block(const RoutingContext& ctx, const Coord& u) {
  bool touch = false;
  ctx.mesh->for_each_neighbor(u, [&](Direction, const Coord& nb) {
    if (is_block_member(ctx.field->at(nb))) touch = true;
  });
  return touch;
}

namespace {

/// Dimensions (other than dir.dim()) in which u touches a block member.
bool along_block(const RoutingContext& ctx, const Coord& u, Direction dir) {
  bool along = false;
  ctx.mesh->for_each_neighbor(u, [&](Direction m, const Coord& nb) {
    if (m.dim() == dir.dim()) return;
    if (is_block_member(ctx.field->at(nb))) along = true;
  });
  return along;
}

}  // namespace

DirectionClass classify_direction(const RoutingContext& ctx, const Coord& u, const Coord& dest,
                                  Direction dir, const DirectionSet& used,
                                  const DirectionPolicyOptions& opts) {
  assert(ctx.mesh != nullptr && ctx.field != nullptr);
  if (used.contains(dir)) return DirectionClass::kExcluded;
  if (!ctx.mesh->has_neighbor(u, dir)) return DirectionClass::kExcluded;
  // A link-faulted outgoing channel is as unusable as a missing one; unlike
  // a faulty neighbour it never enters block labeling (DESIGN.md §17).
  if (ctx.links != nullptr && ctx.links->faulty(ctx.mesh->index_of(u), dir))
    return DirectionClass::kExcluded;

  const Coord v = ctx.mesh->step(u, dir);
  const NodeStatus vs = ctx.field->at(v);
  if (opts.avoid_faulty_neighbors && vs == NodeStatus::kFaulty) return DirectionClass::kExcluded;
  if (opts.avoid_disabled_neighbors && vs == NodeStatus::kDisabled)
    return DirectionClass::kExcluded;

  const bool preferred = ctx.mesh->axis_distance(dir.dim(), v[dir.dim()], dest[dir.dim()]) <
                         ctx.mesh->axis_distance(dir.dim(), u[dir.dim()], dest[dir.dim()]);
  if (preferred) {
    if (opts.use_block_info && ctx.info != nullptr) {
      for (const BlockInfo& b : ctx.info->info_at(ctx.mesh->index_of(u))) {
        if (block_cuts_all_minimal_paths(b.box, v, dest))
          return DirectionClass::kPreferredDetour;
      }
    }
    return DirectionClass::kPreferred;
  }
  return along_block(ctx, u, dir) ? DirectionClass::kSpareAlongBlock : DirectionClass::kSpare;
}

std::vector<ClassifiedDirection> ordered_candidates(const RoutingContext& ctx, const Coord& u,
                                                    const Coord& dest, const DirectionSet& used,
                                                    Direction incoming,
                                                    const DirectionPolicyOptions& opts) {
  // The reverse of the arrival move is the paper's lowest-priority "incoming
  // direction": taking it is the backtrack, handled by the router.
  const Direction return_dir = incoming.is_none() ? Direction::none() : incoming.opposite();

  std::vector<ClassifiedDirection> out;
  for (int i = 0; i < ctx.mesh->direction_count(); ++i) {
    const Direction d = Direction::from_index(i);
    if (!return_dir.is_none() && d == return_dir) continue;
    const DirectionClass cls = classify_direction(ctx, u, dest, d, used, opts);
    if (cls != DirectionClass::kExcluded) out.push_back(ClassifiedDirection{d, cls});
  }

  auto offset = [&](const ClassifiedDirection& cd) {
    return ctx.mesh->axis_distance(cd.dir.dim(), u[cd.dir.dim()], dest[cd.dir.dim()]);
  };
  std::stable_sort(out.begin(), out.end(),
                   [&](const ClassifiedDirection& a, const ClassifiedDirection& b) {
                     if (a.cls != b.cls) return a.cls < b.cls;
                     if (opts.tie_break == TieBreak::kLargestOffset && offset(a) != offset(b))
                       return offset(a) > offset(b);
                     return a.dir.index() < b.dir.index();
                   });
  return out;
}

}  // namespace lgfi
