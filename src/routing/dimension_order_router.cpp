#include "src/routing/dimension_order_router.h"

namespace lgfi {

RouteDecision DimensionOrderRouter::decide(const RoutingContext& ctx, RoutingHeader& header) {
  const Coord& u = header.current();
  const Coord& dest = header.destination();
  if (u == dest) return RouteDecision{RouteAction::kDelivered};

  for (int dim = 0; dim < ctx.mesh->dims(); ++dim) {
    if (u[dim] == dest[dim]) continue;
    const Direction d(dim, u[dim] < dest[dim]);
    const Coord v = d.apply(u);
    const NodeStatus vs = ctx.field->at(v);
    const bool blocked =
        vs == NodeStatus::kFaulty || (strict_ && vs == NodeStatus::kDisabled);
    if (blocked) return RouteDecision{RouteAction::kUnreachable};
    return RouteDecision{RouteAction::kForward, d};
  }
  return RouteDecision{RouteAction::kDelivered};
}

}  // namespace lgfi
