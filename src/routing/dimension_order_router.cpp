#include "src/routing/dimension_order_router.h"

namespace lgfi {

RouteDecision DimensionOrderRouter::decide(const RoutingContext& ctx, RoutingHeader& header) {
  const Coord& u = header.current();
  const Coord& dest = header.destination();
  if (u == dest) return RouteDecision{RouteAction::kDelivered};

  for (int dim = 0; dim < ctx.mesh->dims(); ++dim) {
    const int sign = ctx.mesh->axis_step_sign(dim, u[dim], dest[dim]);
    if (sign == 0) continue;
    const Direction d(dim, sign > 0);
    const Coord v = ctx.mesh->step(u, d);
    const NodeStatus vs = ctx.field->at(v);
    const bool blocked =
        vs == NodeStatus::kFaulty || (strict_ && vs == NodeStatus::kDisabled) ||
        (ctx.links != nullptr && ctx.links->faulty(ctx.mesh->index_of(u), d));
    if (blocked) return RouteDecision{RouteAction::kUnreachable};
    return RouteDecision{RouteAction::kForward, d};
  }
  return RouteDecision{RouteAction::kDelivered};
}

}  // namespace lgfi
