#include "src/routing/router_registry.h"

#include "src/routing/dimension_order_router.h"
#include "src/routing/fault_info_router.h"
#include "src/routing/global_table_router.h"
#include "src/routing/no_info_router.h"
#include "src/routing/oracle_router.h"

namespace lgfi {

InfoMode parse_info_mode(const std::string& name) {
  if (name == "limited_global") return InfoMode::kLimitedGlobal;
  if (name == "none") return InfoMode::kNone;
  if (name == "instant_global") return InfoMode::kInstantGlobal;
  if (name == "delayed_global") return InfoMode::kDelayedGlobal;
  throw ConfigError("unknown info mode '" + name +
                    "' (want limited_global, none, instant_global, delayed_global, or auto)");
}

const char* to_string(InfoMode mode) {
  switch (mode) {
    case InfoMode::kLimitedGlobal: return "limited_global";
    case InfoMode::kNone: return "none";
    case InfoMode::kInstantGlobal: return "instant_global";
    case InfoMode::kDelayedGlobal: return "delayed_global";
  }
  return "?";
}

RouterRegistry& RouterRegistry::instance() {
  static RouterRegistry registry;
  return registry;
}

void RouterRegistry::add(const std::string& name, InfoMode default_mode, RouterFactory factory,
                         ComponentMeta meta) {
  registry_.add(name, Registration{default_mode, std::move(factory)}, std::move(meta));
}

bool RouterRegistry::contains(const std::string& name) const {
  return registry_.contains(name);
}

std::vector<std::string> RouterRegistry::names() const { return registry_.names(); }

std::unique_ptr<Router> RouterRegistry::make(const std::string& name,
                                             const Config& config) const {
  return registry_.require(name).factory(config);
}

InfoMode RouterRegistry::default_info_mode(const std::string& name) const {
  return registry_.require(name).default_mode;
}

RouterRegistrar::RouterRegistrar(const std::string& name, InfoMode default_mode,
                                 RouterFactory factory, ComponentMeta meta) {
  RouterRegistry::instance().add(name, default_mode, std::move(factory), std::move(meta));
}

std::unique_ptr<Router> make_router(const std::string& name) {
  return RouterRegistry::instance().make(name, Config{});
}

std::unique_ptr<Router> make_router(const std::string& name, const Config& config) {
  return RouterRegistry::instance().make(name, config);
}

const char* router_name_for(InfoMode mode) {
  switch (mode) {
    case InfoMode::kLimitedGlobal: return "fault_info";
    case InfoMode::kNone: return "no_info";
    case InfoMode::kInstantGlobal:
    case InfoMode::kDelayedGlobal: return "global_table";
  }
  return "fault_info";
}

InfoMode resolve_info_mode(const Config& config) {
  if (config.defined("info_mode")) {
    const std::string& mode = config.get_str("info_mode");
    if (mode != "auto") return parse_info_mode(mode);
  }
  const std::string router =
      config.defined("router") ? config.get_str("router") : "fault_info";
  return RouterRegistry::instance().default_info_mode(router);
}

// ---------------------------------------------------------------------------
// Built-in registrations.  These live in the same translation unit as the
// registry so a static-library link can never strip them.
// ---------------------------------------------------------------------------
namespace {

const RouterRegistrar kDimensionOrder(
    "dimension_order", InfoMode::kNone,
    [](const Config& cfg) -> std::unique_ptr<Router> {
      const bool strict =
          cfg.defined("ecube_strict") ? cfg.get_bool("ecube_strict") : true;
      return std::make_unique<DimensionOrderRouter>(strict);
    },
    {"e-cube baseline; consults no fault information", {"ecube_strict"}});

const RouterRegistrar kNoInfo(
    "no_info", InfoMode::kNone,
    [](const Config&) -> std::unique_ptr<Router> {
      return std::make_unique<FaultInfoRouter>(make_no_info_router().options());
    },
    {"backtracking PCS; block information ignored", {}});

const RouterRegistrar kFaultInfo(
    "fault_info", InfoMode::kLimitedGlobal,
    [](const Config&) -> std::unique_ptr<Router> {
      return std::make_unique<FaultInfoRouter>();
    },
    {"Algorithm 3 over the limited-global placement (the paper)", {}});

const RouterRegistrar kGlobalTable(
    "global_table", InfoMode::kInstantGlobal,
    [](const Config&) -> std::unique_ptr<Router> {
      return std::make_unique<FaultInfoRouter>(make_global_table_router().options());
    },
    {"Algorithm 3 with per-node global tables (baseline)", {}});

const RouterRegistrar kOracle(
    "oracle", InfoMode::kNone,
    [](const Config& cfg) -> std::unique_ptr<Router> {
      OracleAvoid avoid = OracleAvoid::kBlockMembers;
      if (cfg.defined("oracle_avoid")) {
        const std::string& a = cfg.get_str("oracle_avoid");
        if (a == "faulty_only") avoid = OracleAvoid::kFaultyOnly;
        else if (a == "block_members") avoid = OracleAvoid::kBlockMembers;
        else
          throw ConfigError("unknown oracle_avoid '" + a +
                            "' (want faulty_only or block_members)");
      }
      return std::make_unique<OracleRouter>(avoid);
    },
    {"BFS shortest path over live nodes (lower bound)", {"oracle_avoid"}});

}  // namespace

}  // namespace lgfi
