#pragma once
// Dimension-order (e-cube) routing — the non-fault-tolerant baseline.
//
// Corrects dimension 0 completely, then dimension 1, and so on.  Minimal
// and deadlock-free in a fault-free mesh, but the moment the single allowed
// next hop is faulty or disabled the route fails.  Benches use it to show
// what fraction of routes survive without any adaptivity at all.

#include "src/routing/router.h"

namespace lgfi {

class DimensionOrderRouter final : public Router {
 public:
  /// `strict`: treat disabled nodes as blocking too (default).  Non-strict
  /// lets the probe cross disabled nodes, isolating the effect of faults
  /// proper.
  explicit DimensionOrderRouter(bool strict = true) : strict_(strict) {}

  [[nodiscard]] RouteDecision decide(const RoutingContext& ctx,
                                     RoutingHeader& header) override;
  [[nodiscard]] std::string name() const override { return "dimension-order"; }

 private:
  bool strict_;
};

}  // namespace lgfi
