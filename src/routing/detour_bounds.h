#pragma once
// Detour-bound calculator (Theorems 3, 4 and 5).
//
// Given the measured per-fault quantities — occurrence times t_i, intervals
// d_i, labeling convergence round counts a_i, block edge maximum e_max —
// these functions evaluate the closed-form bounds of Section 6 so benches
// can print measured-vs-bound rows.  Notation follows Table 1.

#include <cstddef>
#include <vector>

namespace lgfi {

struct DynamicFaultTimeline {
  std::vector<long long> t;  ///< occurrence times t_1..t_F (steps)
  std::vector<long long> a;  ///< labeling convergence steps a_i per occurrence
  int e_max = 0;             ///< maximum block edge length over the run
  long long route_start = 0; ///< routing start time t

  /// d_i = t_{i+1} - t_i (defined for i < F).
  [[nodiscard]] long long interval(size_t i) const { return t[i + 1] - t[i]; }

  /// p = max{ l | t_l <= route_start }: faults that occurred before routing
  /// began (1-based count; 0 if none).
  [[nodiscard]] size_t faults_before_start() const;

  [[nodiscard]] long long a_max() const;
};

/// Theorem 3: the upper-bound trajectory of D(i), the distance to the
/// destination when fault i occurs.  Returns the bound for each i in
/// [1, F]; entries are clamped at zero (the routing may already have
/// finished).  D is the initial source-destination distance.
std::vector<long long> theorem3_distance_bounds(const DynamicFaultTimeline& tl, long long D);

/// Theorem 4: maximum number of intervals k the routing can span from a safe
/// source at distance D, and the detour bound k * (e_max + a_max).
///
/// Unit note: Theorem 3's proof charges "at most 2*a_i + 2*e_max extra
/// steps in each interval", while Theorem 4 states "the number of maximum
/// detours is k*(e_max + a_max)" — consistent exactly when one *detour*
/// means one deviation pair (a hop off the minimal path plus the hop that
/// makes up for it), i.e. two extra steps.  max_detours counts pairs;
/// max_extra_steps = 2 * max_detours counts hops beyond D.
struct DetourBound {
  long long k = 0;
  long long max_detours = 0;      ///< deviation pairs, the paper's unit
  long long max_extra_steps = 0;  ///< hops beyond the fault-free minimum
};
DetourBound theorem4_bound(const DynamicFaultTimeline& tl, long long D);

/// Theorem 5: same bound for an arbitrary (possibly unsafe) source with an
/// initial available path of length L.
DetourBound theorem5_bound(const DynamicFaultTimeline& tl, long long L);

}  // namespace lgfi
