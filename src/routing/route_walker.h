#pragma once
// Static route execution: drives a router one hop per step in a frozen
// environment.  Dynamic execution (faults appearing mid-route) lives in
// core/dynamic_simulation.h and reuses the same routers and headers.

#include "src/routing/router.h"

namespace lgfi {

struct RouteResult {
  bool delivered = false;
  bool unreachable = false;
  bool budget_exhausted = false;

  int total_steps = 0;       ///< forward + backtrack hops taken
  int forward_steps = 0;
  int backtrack_steps = 0;
  int detour_forward_steps = 0;  ///< forwards taken along detour-preferred dirs
  int final_path_hops = 0;   ///< length of the held path on delivery
  int min_distance = 0;      ///< D(s, d) — the fault-free minimum

  /// Extra steps beyond the fault-free minimum; the paper's detour count.
  [[nodiscard]] int detours() const { return total_steps - min_distance; }
};

/// Runs `router` from s to d over a static environment.  `step_budget` == 0
/// chooses the termination safety net 4 * 2n * N (see DESIGN.md §6.7).
RouteResult run_static_route(const RoutingContext& ctx, Router& router, const Coord& source,
                             const Coord& dest, long long step_budget = 0);

}  // namespace lgfi
