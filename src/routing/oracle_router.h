#pragma once
// Global-information oracle router (baseline).
//
// Routes along a true shortest path computed by BFS over the live nodes —
// the unattainable lower bound every fault-tolerant scheme is compared to.
// Two modes:  avoid faulty nodes only (the physical optimum — disabled nodes
// are functional processors), or avoid whole blocks (the best any algorithm
// honouring the block abstraction can do).  The gap between the two is the
// price of the block model itself, reported in E9.

#include <optional>
#include <vector>

#include "src/routing/router.h"

namespace lgfi {

enum class OracleAvoid : uint8_t {
  kFaultyOnly,   ///< traverse enabled and disabled nodes alike
  kBlockMembers, ///< treat disabled nodes as obstacles too
};

/// Length of the shortest path s -> d (hops), or nullopt if disconnected.
std::optional<int> oracle_path_length(const MeshTopology& mesh, const StatusField& field,
                                      const Coord& source, const Coord& dest,
                                      OracleAvoid avoid = OracleAvoid::kBlockMembers);

class OracleRouter final : public Router {
 public:
  explicit OracleRouter(OracleAvoid avoid = OracleAvoid::kBlockMembers);

  [[nodiscard]] RouteDecision decide(const RoutingContext& ctx,
                                     RoutingHeader& header) override;
  [[nodiscard]] std::string name() const override;

  /// Invalidate the cached BFS (the environment changed).
  void set_dirty() { cached_ = false; }

 private:
  void rebuild(const RoutingContext& ctx, const Coord& dest);

  OracleAvoid avoid_;
  bool cached_ = false;
  Coord cached_dest_;
  std::vector<int> dist_;  ///< hops to destination, -1 if unreachable
};

}  // namespace lgfi
