#pragma once
// Global-information oracle router (baseline).
//
// Routes along a true shortest path computed by BFS over the live nodes —
// the unattainable lower bound every fault-tolerant scheme is compared to.
// Two modes:  avoid faulty nodes only (the physical optimum — disabled nodes
// are functional processors), or avoid whole blocks (the best any algorithm
// honouring the block abstraction can do).  The gap between the two is the
// price of the block model itself, reported in E9.

#include <optional>
#include <unordered_map>
#include <vector>

#include "src/routing/router.h"

namespace lgfi {

enum class OracleAvoid : uint8_t {
  kFaultyOnly,   ///< traverse enabled and disabled nodes alike
  kBlockMembers, ///< treat disabled nodes as obstacles too
};

/// Length of the shortest path s -> d (hops), or nullopt if disconnected.
std::optional<int> oracle_path_length(const Topology& mesh, const StatusField& field,
                                      const Coord& source, const Coord& dest,
                                      OracleAvoid avoid = OracleAvoid::kBlockMembers);

class OracleRouter final : public Router {
 public:
  explicit OracleRouter(OracleAvoid avoid = OracleAvoid::kBlockMembers);

  [[nodiscard]] RouteDecision decide(const RoutingContext& ctx,
                                     RoutingHeader& header) override;
  [[nodiscard]] std::string name() const override;

  /// Invalidate the cached BFS trees (the environment changed).  decide()
  /// also invalidates automatically via StatusField::version(), so this is
  /// only needed when swapping in a different field object.
  void set_dirty() {
    dist_by_dest_.clear();
    cached_version_ = kNoVersion;
  }

 private:
  static constexpr uint64_t kNoVersion = ~0ull;
  /// Cache-size bound: one tree is O(N) ints, so the cache tops out at
  /// 64 * N rather than the N^2 of one tree per live destination.
  static constexpr size_t kMaxCachedTrees = 64;

  OracleAvoid avoid_;
  /// BFS distance trees keyed by destination, valid for cached_version_ of
  /// the field only — the dynamic traffic engine interleaves decisions for
  /// many destinations per step, so one tree per destination (instead of
  /// one slot) keeps each decision O(1) between fault events.
  uint64_t cached_version_ = kNoVersion;
  /// Membership-only access (find/emplace/clear): eviction at
  /// kMaxCachedTrees is a wholesale clear(), never an iteration-ordered
  /// LRU walk, so routing decisions cannot depend on hash traversal order
  /// (determinism contract, DESIGN.md §16).
  std::unordered_map<Coord, std::vector<int>, CoordHash> dist_by_dest_;
};

}  // namespace lgfi
