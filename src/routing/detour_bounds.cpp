#include "src/routing/detour_bounds.h"

#include <algorithm>
#include <cassert>

namespace lgfi {

size_t DynamicFaultTimeline::faults_before_start() const {
  size_t p = 0;
  while (p < t.size() && t[p] <= route_start) ++p;
  return p;
}

long long DynamicFaultTimeline::a_max() const {
  long long m = 0;
  for (long long ai : a) m = std::max(m, ai);
  return m;
}

std::vector<long long> theorem3_distance_bounds(const DynamicFaultTimeline& tl, long long D) {
  assert(tl.t.size() == tl.a.size());
  const size_t F = tl.t.size();
  const size_t p = tl.faults_before_start();
  std::vector<long long> bound(F, D);

  for (size_t i = 0; i < F; ++i) {
    if (i < p) {
      // i <= p (1-based): the message has not left the source.
      bound[i] = D;
    } else if (i == p) {
      // i = p+1 (1-based): partial first interval d_p - (t - t_p), minus the
      // worst-case construction-following penalty 2 a_{i-1} + 2 e_max.
      // With p == 0 there is no prior fault; the message simply has had no
      // interval yet, so the bound stays D.
      if (p == 0) {
        bound[i] = D;
      } else {
        const long long d_prev = tl.t[i] - tl.t[i - 1];
        const long long progress =
            d_prev - (tl.route_start - tl.t[i - 1]) - 2 * tl.a[i - 1] - 2 * tl.e_max;
        bound[i] = std::max<long long>(0, D - std::max<long long>(0, progress));
      }
    } else {
      const long long d_prev = tl.t[i] - tl.t[i - 1];
      const long long progress = d_prev - 2 * tl.a[i - 1] - 2 * tl.e_max;
      bound[i] = std::max<long long>(0, bound[i - 1] - std::max<long long>(0, progress));
    }
  }
  return bound;
}

namespace {

DetourBound bound_for_budget(const DynamicFaultTimeline& tl, long long budget) {
  // k <= max{ l | budget + t - t_p - sum_{i=p}^{p+l-2}(d_i - 2 a_i - 2 e_max) > 0 },
  // with 1-based occurrence indices: t_i == tl.t[i-1], a_i == tl.a[i-1],
  // d_i == t_{i+1} - t_i.
  const size_t p = tl.faults_before_start();
  DetourBound out;

  // "t - t_p": routing started inside interval d_p; credit the elapsed part.
  long long remaining = budget;
  if (p >= 1) remaining += tl.route_start - tl.t[p - 1];

  long long k = remaining > 0 ? 1 : 0;  // l = 1 has an empty sum
  long long sum = 0;
  for (size_t i = std::max<size_t>(p, 1); i < tl.t.size(); ++i) {
    // tl.t[i] is t_{i+1} in 1-based notation, so d_i is computable up to F-1.
    const long long d_i = tl.t[i] - tl.t[i - 1];    // t_{i+1} - t_i, 1-based
    const long long a_i = tl.a[i - 1];
    sum += d_i - 2 * a_i - 2 * tl.e_max;
    const long long l = static_cast<long long>(i - p) + 2;  // i = p + l - 2
    if (remaining - sum > 0) k = l;
    else break;
  }
  out.k = k;
  out.max_detours = k * (tl.e_max + tl.a_max());
  out.max_extra_steps = 2 * out.max_detours;
  return out;
}

}  // namespace

DetourBound theorem4_bound(const DynamicFaultTimeline& tl, long long D) {
  return bound_for_budget(tl, D);
}

DetourBound theorem5_bound(const DynamicFaultTimeline& tl, long long L) {
  return bound_for_budget(tl, L);
}

}  // namespace lgfi
