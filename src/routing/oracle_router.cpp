#include "src/routing/oracle_router.h"

#include <queue>

namespace lgfi {

namespace {

bool traversable(const StatusField& field, NodeId id, OracleAvoid avoid) {
  const NodeStatus s = field.at(id);
  if (s == NodeStatus::kFaulty) return false;
  if (avoid == OracleAvoid::kBlockMembers && s == NodeStatus::kDisabled) return false;
  return true;
}

std::vector<int> bfs_from(const Topology& mesh, const StatusField& field, const Coord& from,
                          OracleAvoid avoid, const LinkFaultMask* links) {
  std::vector<int> dist(static_cast<size_t>(mesh.node_count()), -1);
  const NodeId start = mesh.index_of(from);
  if (!traversable(field, start, avoid)) return dist;
  std::queue<NodeId> q;
  dist[static_cast<size_t>(start)] = 0;
  q.push(start);
  while (!q.empty()) {
    const NodeId cur = q.front();
    q.pop();
    mesh.for_each_neighbor(mesh.coord_of(cur), [&](Direction d, const Coord& nb) {
      const NodeId nid = mesh.index_of(nb);
      if (dist[static_cast<size_t>(nid)] >= 0 || !traversable(field, nid, avoid)) return;
      // The tree is rooted at the *destination*: a message at nb moves
      // toward cur via d.opposite(), so that is the directed channel whose
      // health gates this edge.
      if (links != nullptr && links->faulty(nid, d.opposite())) return;
      dist[static_cast<size_t>(nid)] = dist[static_cast<size_t>(cur)] + 1;
      q.push(nid);
    });
  }
  return dist;
}

}  // namespace

std::optional<int> oracle_path_length(const Topology& mesh, const StatusField& field,
                                      const Coord& source, const Coord& dest,
                                      OracleAvoid avoid) {
  const auto dist = bfs_from(mesh, field, dest, avoid, nullptr);
  const int d = dist[static_cast<size_t>(mesh.index_of(source))];
  if (d < 0) return std::nullopt;
  return d;
}

OracleRouter::OracleRouter(OracleAvoid avoid) : avoid_(avoid) {}

std::string OracleRouter::name() const {
  return avoid_ == OracleAvoid::kFaultyOnly ? "oracle-faulty-only" : "oracle-blocks";
}

RouteDecision OracleRouter::decide(const RoutingContext& ctx, RoutingHeader& header) {
  const Coord& u = header.current();
  if (u == header.destination()) return RouteDecision{RouteAction::kDelivered};

  // Every fault/recovery bumps the field version, and every link change
  // bumps the mask version; the sum of the two monotone counters strictly
  // increases on any change, so it is a sound combined cache key.  A stale
  // oracle would contradict its whole premise (it IS the instantly-informed
  // baseline).
  const uint64_t version =
      ctx.field->version() + (ctx.links != nullptr ? ctx.links->version() : 0);
  if (version != cached_version_) {
    dist_by_dest_.clear();
    cached_version_ = version;
  }
  auto it = dist_by_dest_.find(header.destination());
  if (it == dist_by_dest_.end()) {
    // Bound the cache: many-destination traffic on a big mesh would
    // otherwise hold one O(N) tree per destination (O(N^2) memory per
    // replication).  Wholesale clearing keeps eviction deterministic.
    if (dist_by_dest_.size() >= kMaxCachedTrees) dist_by_dest_.clear();
    it = dist_by_dest_
             .emplace(header.destination(),
                      bfs_from(*ctx.mesh, *ctx.field, header.destination(), avoid_, ctx.links))
             .first;
  }
  const std::vector<int>& dist = it->second;

  const int du = dist[static_cast<size_t>(ctx.mesh->index_of(u))];
  if (du < 0) return RouteDecision{RouteAction::kUnreachable};

  RouteDecision best{RouteAction::kUnreachable};
  ctx.mesh->for_each_neighbor(u, [&](Direction d, const Coord& nb) {
    if (best.action == RouteAction::kForward) return;
    if (ctx.links != nullptr && ctx.links->faulty(ctx.mesh->index_of(u), d)) return;
    const int dn = dist[static_cast<size_t>(ctx.mesh->index_of(nb))];
    if (dn >= 0 && dn == du - 1) best = RouteDecision{RouteAction::kForward, d};
  });
  return best;
}

}  // namespace lgfi
