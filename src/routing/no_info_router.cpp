#include "src/routing/no_info_router.h"

namespace lgfi {

FaultInfoRouter make_no_info_router() {
  FaultInfoRouterOptions opts;
  opts.policy.use_block_info = false;
  opts.name = "pcs-no-info";
  return FaultInfoRouter(std::move(opts));
}

}  // namespace lgfi
