#pragma once
// Information-free backtracking PCS — the "what the paper improves on"
// baseline.
//
// Identical to Algorithm 3 except no node holds any block information, so no
// direction is ever demoted to preferred-but-detour: the probe walks
// greedily into dangerous areas and pays for it with backtracking.  The
// delta between this router and FaultInfoRouter under the limited-global
// placement is the value of the paper's information model (experiment E9).

#include "src/routing/fault_info_router.h"

namespace lgfi {

/// Algorithm 3 with use_block_info disabled.
FaultInfoRouter make_no_info_router();

}  // namespace lgfi
