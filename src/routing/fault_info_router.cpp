#include "src/routing/fault_info_router.h"

namespace lgfi {

FaultInfoRouter::FaultInfoRouter(FaultInfoRouterOptions options)
    : options_(std::move(options)) {}

RouteDecision FaultInfoRouter::decide(const RoutingContext& ctx, RoutingHeader& header) {
  const Coord& u = header.current();

  if (u == header.destination()) return RouteDecision{RouteAction::kDelivered};

  // Step 1: a message sitting on a node that has become disabled (or on a
  // source that never was enabled) retreats.
  const NodeStatus us = ctx.field->at(u);
  if (us == NodeStatus::kDisabled || us == NodeStatus::kFaulty) {
    if (header.at_source()) return RouteDecision{RouteAction::kUnreachable};
    return RouteDecision{RouteAction::kBacktrack};
  }

  // Step 2: highest-priority unused outgoing direction.  The reverse of the
  // incoming direction ranks last ("incoming" in the paper's priority list)
  // and is realized as the backtrack below.
  const auto candidates = ordered_candidates(ctx, u, header.destination(), header.top().used,
                                             header.top().incoming, options_.policy);
  if (!candidates.empty()) {
    RouteDecision d{RouteAction::kForward, candidates.front().dir};
    d.detour_preferred = candidates.front().cls == DirectionClass::kPreferredDetour;
    return d;
  }

  // Steps 3 and 4.
  if (header.at_source()) return RouteDecision{RouteAction::kUnreachable};
  return RouteDecision{RouteAction::kBacktrack};
}

}  // namespace lgfi
