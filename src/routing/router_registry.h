#pragma once
// Routing-function registry: routers self-register by name and are built
// from a Config, so benches, examples and the simulators never construct a
// concrete router type directly (the booksim RegisterRoutingFunctions
// pattern).  The registry also owns the InfoMode vocabulary — where a
// router's block information comes from — and resolves it from config
// instead of hard-coded enums at call sites.
//
// Registered names:
//   dimension_order  e-cube baseline (no fault info consulted)
//   no_info          backtracking PCS, block information ignored
//   fault_info       Algorithm 3 over the limited-global placement (paper)
//   global_table     Algorithm 3 with per-node global tables (baseline)
//   oracle           BFS shortest path over live nodes (lower bound)

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/named_registry.h"
#include "src/routing/router.h"

namespace lgfi {

/// Where routing decisions get their block information from.
enum class InfoMode : uint8_t {
  kLimitedGlobal,  ///< the paper's model: the distributed InfoStore
  kNone,           ///< information-free PCS baseline
  kInstantGlobal,  ///< every node sees the true block list immediately
  kDelayedGlobal,  ///< global tables updated by a broadcast wave (baseline)
};

/// limited_global / none / instant_global / delayed_global; throws
/// ConfigError on anything else.
InfoMode parse_info_mode(const std::string& name);
const char* to_string(InfoMode mode);

using RouterFactory = std::function<std::unique_ptr<Router>(const Config&)>;

class RouterRegistry {
 public:
  /// The process-wide registry (populated during static initialization by
  /// RouterRegistrar instances).
  static RouterRegistry& instance();

  /// Registers a factory under `name`; `default_mode` is the information
  /// placement the router is designed for.  `meta` carries the one-line
  /// help text and consumed config keys for the --list catalog.  Duplicate
  /// names throw.
  void add(const std::string& name, InfoMode default_mode, RouterFactory factory,
           ComponentMeta meta = {});

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;  ///< sorted

  /// Builds the named router; throws ConfigError with the known names (and
  /// a did-you-mean suggestion) on an unknown `name`.  The config is passed
  /// to the factory for router-level options (e.g. oracle_avoid,
  /// ecube_strict).
  [[nodiscard]] std::unique_ptr<Router> make(const std::string& name,
                                             const Config& config) const;

  [[nodiscard]] InfoMode default_info_mode(const std::string& name) const;

  /// The catalog rows for every registered router (sorted by name).
  [[nodiscard]] std::vector<ComponentInfo> describe() const { return registry_.describe(); }

 private:
  struct Registration {
    InfoMode default_mode;
    RouterFactory factory;
  };
  NamedRegistry<Registration> registry_{"router"};
};

/// Self-registration helper: `static RouterRegistrar r("name", mode, fn);`
struct RouterRegistrar {
  RouterRegistrar(const std::string& name, InfoMode default_mode, RouterFactory factory,
                  ComponentMeta meta = {});
};

/// Convenience: build by name with router defaults / with options from `config`.
std::unique_ptr<Router> make_router(const std::string& name);
std::unique_ptr<Router> make_router(const std::string& name, const Config& config);

/// The router name DynamicSimulation historically paired with each mode.
const char* router_name_for(InfoMode mode);

/// Resolves the run's InfoMode from config: `info_mode` when set to a
/// concrete mode, else ("auto") the registered default of `router`.
InfoMode resolve_info_mode(const Config& config);

}  // namespace lgfi
