#include "src/routing/route_walker.h"

namespace lgfi {

RouteResult run_static_route(const RoutingContext& ctx, Router& router, const Coord& source,
                             const Coord& dest, long long step_budget) {
  RouteResult r;
  r.min_distance = ctx.mesh->min_hops(source, dest);
  if (step_budget <= 0)
    step_budget = 4ll * ctx.mesh->direction_count() * ctx.mesh->node_count();

  RoutingHeader header(source, dest);
  for (long long step = 0; step < step_budget; ++step) {
    const RouteDecision d = router.decide(ctx, header);
    switch (d.action) {
      case RouteAction::kDelivered:
        r.delivered = true;
        r.final_path_hops = header.path_hops();
        r.forward_steps = header.forward_steps();
        r.backtrack_steps = header.backtrack_steps();
        r.detour_forward_steps = header.detour_forward_steps();
        r.total_steps = header.total_steps();
        return r;
      case RouteAction::kUnreachable:
        r.unreachable = true;
        r.forward_steps = header.forward_steps();
        r.backtrack_steps = header.backtrack_steps();
        r.total_steps = header.total_steps();
        return r;
      case RouteAction::kForward:
        header.forward(d.direction, ctx.mesh->step(header.current(), d.direction));
        if (d.detour_preferred) header.count_detour_forward();
        break;
      case RouteAction::kBacktrack:
        header.backtrack();
        break;
    }
  }
  r.budget_exhausted = true;
  r.forward_steps = header.forward_steps();
  r.backtrack_steps = header.backtrack_steps();
  r.total_steps = header.total_steps();
  return r;
}

}  // namespace lgfi
