#pragma once
// The PCS routing header (Algorithm 3).
//
// "each routing header here includes a destination address and a list of
// used-directions for each forwarding node along the path" — the header is
// the entire state of a path-setup probe: the destination plus a stack of
// (node, incoming direction, used-direction set) entries from the source to
// the current node.  Forwarding pushes; backtracking pops and releases the
// hop, exactly like PCS path setup.  Popped nodes lose their used sets (the
// system is dynamic; priorities may legitimately differ on a revisit), which
// is the paper's design; the walker enforces a step budget as the safety
// net, and a persistent-marking variant exists as an ablation (E9).

#include <unordered_map>
#include <vector>

#include "src/mesh/coordinates.h"
#include "src/mesh/direction.h"
#include "src/mesh/topology.h"

namespace lgfi {

struct PathEntry {
  Coord node;
  Direction incoming = Direction::none();  ///< direction we arrived along
  DirectionSet used;                       ///< outgoing directions already tried here
};

class RoutingHeader {
 public:
  RoutingHeader(const Coord& source, const Coord& destination);

  [[nodiscard]] const Coord& destination() const { return destination_; }
  [[nodiscard]] const Coord& current() const { return path_.back().node; }
  [[nodiscard]] const Coord& source() const { return path_.front().node; }
  [[nodiscard]] bool at_source() const { return path_.size() == 1; }

  [[nodiscard]] PathEntry& top() { return path_.back(); }
  [[nodiscard]] const PathEntry& top() const { return path_.back(); }
  [[nodiscard]] const std::vector<PathEntry>& path() const { return path_; }

  /// Length of the currently-held path in hops.
  [[nodiscard]] int path_hops() const { return static_cast<int>(path_.size()) - 1; }

  /// Marks `d` used at the current node and pushes the next node (the plain
  /// grid step `d.apply(current())`; wrap-aware callers use the overload).
  void forward(Direction d);

  /// Same, with the next node supplied by the caller — `Topology::step`
  /// lands here so wraparound channels forward to the far edge.
  void forward(Direction d, const Coord& next);

  /// Pops the current node (PCS backtrack).  Pre: !at_source().
  void backtrack();

  /// Erases the used mark for `d` at the current node.  The wormhole
  /// switching layer's congestion-escape backtrack (DESIGN.md §10) un-does a
  /// forward without consuming the direction — the channel is healthy, just
  /// momentarily VC-starved, and must stay retryable; only the step budget
  /// bounds the retries.
  void unmark(Direction d);

  // --- accounting (not part of the on-wire header; experiment bookkeeping)
  [[nodiscard]] int forward_steps() const { return forward_steps_; }
  [[nodiscard]] int backtrack_steps() const { return backtrack_steps_; }
  [[nodiscard]] int total_steps() const { return forward_steps_ + backtrack_steps_; }
  [[nodiscard]] int detour_forward_steps() const { return detour_forward_steps_; }
  void count_detour_forward() { ++detour_forward_steps_; }

  /// Persistent-marking ablation: when enabled, used sets live in a global
  /// per-node map, so every (node, direction) pair is tried at most once in
  /// the whole search — the classic DFS guarantee.  The paper's header keeps
  /// marks only for nodes on the current path (the default).
  void enable_persistent_marks();
  [[nodiscard]] bool persistent_marks() const { return persistent_marks_; }

 private:
  Coord destination_;
  std::vector<PathEntry> path_;
  int forward_steps_ = 0;
  int backtrack_steps_ = 0;
  int detour_forward_steps_ = 0;
  bool persistent_marks_ = false;
  /// Persistent mode only: the authoritative per-node used sets.  Path
  /// entries mirror this map so decide() can keep reading top().used.
  /// Membership-only access (operator[]/find/erase by key): direction
  /// preference order always comes from the router's policy, never from
  /// traversing this map (determinism contract, DESIGN.md §16).
  std::unordered_map<Coord, DirectionSet, CoordHash> marks_;
};

}  // namespace lgfi
