#pragma once
// Global routing-table baseline.
//
// The traditional model the paper argues against: "fault information such as
// a routing table associated with each node" — every node stores the entire
// block list.  Routing quality equals Algorithm 3 with perfect information;
// the cost shows up in the E10 memory/update experiment (N copies of
// everything, diameter-long broadcast latency after every change, oscillation
// under churn) where the limited-global placement stores a small fraction.

#include <vector>

#include "src/routing/fault_info_router.h"
#include "src/routing/router.h"

namespace lgfi {

/// Every node sees the same global block list.
class GlobalInfoProvider final : public InfoProvider {
 public:
  GlobalInfoProvider() = default;
  explicit GlobalInfoProvider(std::vector<BlockInfo> blocks) : blocks_(std::move(blocks)) {}

  void set_blocks(std::vector<BlockInfo> blocks) { blocks_ = std::move(blocks); }

  [[nodiscard]] std::span<const BlockInfo> info_at(NodeId) const override { return blocks_; }

 private:
  std::vector<BlockInfo> blocks_;
};

/// Per-node visibility with broadcast latency: an update committed at step t
/// from origin o becomes visible at node v at t + D(o, v) (one hop per
/// round, the same propagation speed the limited model gets).  Used by the
/// dynamic-comparison experiment.
class DelayedGlobalInfoProvider final : public InfoProvider {
 public:
  explicit DelayedGlobalInfoProvider(const Topology& mesh);

  /// Publishes a new global snapshot originating at `origin` at time `now`.
  void publish(const std::vector<BlockInfo>& blocks, const Coord& origin, long long now);

  /// Advances visibility to time `now`.  O(1) when no wave is in flight.
  void advance(long long now);

  /// True while a published snapshot is still spreading — only then does
  /// advance() have any work to do.
  [[nodiscard]] bool wave_in_flight() const { return !pending_.empty(); }

  [[nodiscard]] std::span<const BlockInfo> info_at(NodeId node) const override;

  /// Nodes holding at least one entry (memory metric).
  [[nodiscard]] long long nodes_with_info() const;
  [[nodiscard]] long long total_entries() const;

 private:
  struct Pending {
    std::vector<BlockInfo> blocks;
    Coord origin;
    long long published_at = 0;
  };

  const Topology* mesh_;
  std::vector<std::vector<BlockInfo>> visible_;  ///< per node
  std::vector<Pending> pending_;
  long long now_ = 0;
};

/// Algorithm 3 configured as the routing-table baseline (pair with one of
/// the providers above in the RoutingContext).
FaultInfoRouter make_global_table_router();

}  // namespace lgfi
