#include "src/routing/global_table_router.h"

namespace lgfi {

DelayedGlobalInfoProvider::DelayedGlobalInfoProvider(const Topology& mesh)
    : mesh_(&mesh), visible_(static_cast<size_t>(mesh.node_count())) {}

void DelayedGlobalInfoProvider::publish(const std::vector<BlockInfo>& blocks,
                                        const Coord& origin, long long now) {
  pending_.push_back(Pending{blocks, origin, now});
  advance(now);
}

void DelayedGlobalInfoProvider::advance(long long now) {
  if (pending_.empty()) return;  // quiescent: nothing is spreading
  now_ = now;
  for (auto it = pending_.begin(); it != pending_.end();) {
    // Reveal the snapshot at every node the broadcast wave has reached.
    bool fully_visible = true;
    for (NodeId id = 0; id < static_cast<NodeId>(mesh_->node_count()); ++id) {
      const long long arrival =
          it->published_at + mesh_->min_hops(it->origin, mesh_->coord_of(id));
      if (arrival <= now_) {
        visible_[static_cast<size_t>(id)] = it->blocks;
      } else {
        fully_visible = false;
      }
    }
    it = fully_visible ? pending_.erase(it) : std::next(it);
  }
}

std::span<const BlockInfo> DelayedGlobalInfoProvider::info_at(NodeId node) const {
  return visible_[static_cast<size_t>(node)];
}

long long DelayedGlobalInfoProvider::nodes_with_info() const {
  long long n = 0;
  for (const auto& v : visible_)
    if (!v.empty()) ++n;
  return n;
}

long long DelayedGlobalInfoProvider::total_entries() const {
  long long n = 0;
  for (const auto& v : visible_) n += static_cast<long long>(v.size());
  return n;
}

FaultInfoRouter make_global_table_router() {
  FaultInfoRouterOptions opts;
  opts.name = "global-table";
  return FaultInfoRouter(std::move(opts));
}

}  // namespace lgfi
