#pragma once
// Router interfaces shared by Algorithm 3 and the baseline routers.
//
// A router is a *decision policy*: given the message's header (destination,
// path stack with per-node used-direction sets) and the node-local view
// (statuses of self and neighbours, locally stored block information), it
// picks the next action.  Execution — moving the header one hop per step,
// under a static or dynamic fault environment — lives in route_walker.h and
// core/dynamic_simulation.h, so the same policies run in both worlds.

#include <span>
#include <string>

#include "src/fault/block_registry.h"
#include "src/fault/node_status.h"
#include "src/mesh/link_fault_mask.h"
#include "src/routing/routing_header.h"

namespace lgfi {

/// Where a node's block information comes from.  The paper's model stores it
/// at envelope/boundary nodes only; the global-table baseline hands every
/// node the full list.
class InfoProvider {
 public:
  virtual ~InfoProvider() = default;
  /// Block infos visible at `node` right now.
  [[nodiscard]] virtual std::span<const BlockInfo> info_at(NodeId node) const = 0;
};

/// Trivial provider: nobody knows anything (the info-free PCS baseline).
class EmptyInfoProvider final : public InfoProvider {
 public:
  [[nodiscard]] std::span<const BlockInfo> info_at(NodeId) const override { return {}; }
};

/// Wraps an InfoStore (the paper's limited-global placement).
class StoreInfoProvider final : public InfoProvider {
 public:
  explicit StoreInfoProvider(const InfoStore& store) : store_(&store) {}
  [[nodiscard]] std::span<const BlockInfo> info_at(NodeId node) const override {
    return store_->at(node);
  }

 private:
  const InfoStore* store_;
};

/// The node-local view a routing decision may consult.
struct RoutingContext {
  const Topology* mesh = nullptr;
  const StatusField* field = nullptr;
  const InfoProvider* info = nullptr;
  /// Directed-channel fault state (DESIGN.md §17), or null when the
  /// environment has no link-fault notion — routers treat null as all-clear.
  const LinkFaultMask* links = nullptr;
};

enum class RouteAction : uint8_t {
  kForward,      ///< move one hop along `direction`
  kBacktrack,    ///< pop the path stack (PCS backtracking)
  kDelivered,    ///< current node is the destination
  kUnreachable,  ///< backtracked to the source with nothing left (step 4)
};

struct RouteDecision {
  RouteAction action = RouteAction::kUnreachable;
  Direction direction = Direction::none();
  /// True when the chosen direction was a preferred-but-detour direction —
  /// the message knowingly leaves the minimal box (critical routing).
  bool detour_preferred = false;
};

class Router {
 public:
  virtual ~Router() = default;

  /// One routing decision at the header's current node.  Must not mutate the
  /// environment; may record the used direction in the header.
  [[nodiscard]] virtual RouteDecision decide(const RoutingContext& ctx,
                                             RoutingHeader& header) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace lgfi
