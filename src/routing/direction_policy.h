#pragma once
// Direction classification and priority ordering (Algorithm 3).
//
// At the current node u (with destination d and incoming direction), each of
// the up-to-2n outgoing directions falls into one class:
//
//   preferred            — reduces D(u, d) and is not known to lead into a
//                          dangerous area
//   spare-along-block    — does not reduce distance but slides along the
//                          surface of an adjacent block (the productive way
//                          around an obstacle)
//   spare                — any other non-reducing direction
//   preferred-but-detour — reduces distance but the node's block information
//                          proves every minimal path beyond it is cut
//                          (critical routing); taken only as a late resort
//   excluded             — out of the mesh, already used here, or leading to
//                          a neighbour known faulty/disabled
//
// The paper ranks "preferred, spare (along with block), preferred but
// detour, and incoming"; the incoming direction as last resort coincides
// with PCS backtracking and is handled by the router, not listed here.
// Plain spares (unnamed by the paper) sit between along-block spares and
// detour-preferred; see DESIGN.md §6.6.

#include <vector>

#include "src/routing/router.h"

namespace lgfi {

enum class DirectionClass : uint8_t {
  kPreferred = 0,
  kSpareAlongBlock = 1,
  kSpare = 2,
  kPreferredDetour = 3,
  kExcluded = 4,
};

[[nodiscard]] const char* to_string(DirectionClass c);

/// Tie-breaking among same-class candidates.
enum class TieBreak : uint8_t {
  kLowestDim,      ///< deterministic e-cube-like order (default)
  kLargestOffset,  ///< prefer the dimension with the largest remaining offset
};

struct DirectionPolicyOptions {
  bool avoid_faulty_neighbors = true;
  bool avoid_disabled_neighbors = true;
  /// When false, block information is ignored (the info-free baseline): no
  /// direction is ever classified preferred-but-detour.
  bool use_block_info = true;
  TieBreak tie_break = TieBreak::kLowestDim;
};

struct ClassifiedDirection {
  Direction dir;
  DirectionClass cls = DirectionClass::kExcluded;
};

/// Classifies one direction at node `u`.
DirectionClass classify_direction(const RoutingContext& ctx, const Coord& u, const Coord& dest,
                                  Direction dir, const DirectionSet& used,
                                  const DirectionPolicyOptions& opts);

/// All non-excluded candidates at `u`, best first (class, then tie-break).
/// `incoming` is the direction the message travelled to arrive at `u` (or
/// none at the source); its reverse — "the incoming direction" in the
/// paper's priority list — ranks below every other choice, which in PCS
/// terms is the backtrack itself, so it is excluded from the forward
/// candidates here.  Without this demotion a probe bouncing off an obstacle
/// would ping-pong between two nodes forever (path-local used sets reset on
/// every new path entry).
std::vector<ClassifiedDirection> ordered_candidates(const RoutingContext& ctx, const Coord& u,
                                                    const Coord& dest, const DirectionSet& used,
                                                    Direction incoming,
                                                    const DirectionPolicyOptions& opts);

/// True iff node `u` currently touches some faulty block (has a block-member
/// neighbour) — the precondition for the spare-along-block class.
bool touches_block(const RoutingContext& ctx, const Coord& u);

}  // namespace lgfi
