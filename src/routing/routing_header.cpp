#include "src/routing/routing_header.h"

#include <cassert>

namespace lgfi {

RoutingHeader::RoutingHeader(const Coord& source, const Coord& destination)
    : destination_(destination) {
  path_.push_back(PathEntry{source, Direction::none(), {}});
}

void RoutingHeader::forward(Direction d) { forward(d, d.apply(path_.back().node)); }

void RoutingHeader::forward(Direction d, const Coord& next) {
  assert(!d.is_none());
  path_.back().used.insert(d);
  PathEntry entry{next, d, {}};
  if (persistent_marks_) {
    // Record the mark globally and hand the next node its accumulated set.
    marks_[path_.back().node].insert(d);
    const auto it = marks_.find(next);
    if (it != marks_.end()) entry.used = it->second;
  }
  path_.push_back(std::move(entry));
  ++forward_steps_;
}

void RoutingHeader::backtrack() {
  assert(!at_source());
  path_.pop_back();
  if (persistent_marks_ && !path_.empty()) {
    // A deeper duplicate entry of this node may have gone stale while the
    // path looped through it; resync from the authoritative map.
    const auto it = marks_.find(path_.back().node);
    if (it != marks_.end()) path_.back().used = it->second;
  }
  ++backtrack_steps_;
}

void RoutingHeader::unmark(Direction d) {
  assert(!d.is_none());
  path_.back().used.erase(d);
  if (persistent_marks_) {
    const auto it = marks_.find(path_.back().node);
    if (it != marks_.end()) it->second.erase(d);
  }
}

void RoutingHeader::enable_persistent_marks() { persistent_marks_ = true; }

}  // namespace lgfi
