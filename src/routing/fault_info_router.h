#pragma once
// Fault-information-based PCS routing (Algorithm 3).
//
//   1. If the current node u is disabled, backtrack; otherwise,
//   2. pick an unused outgoing direction with the highest priority; the
//      direction selected is recorded in the message header.
//   3. If there is no unused outgoing direction, backtrack.
//   4. If the message is backtracked to the source, the destination is
//      unreachable.
//
// The priority order is preferred > spare-along-block > spare >
// preferred-but-detour; taking the incoming direction (the paper's last
// priority) is realized as the PCS backtrack itself.  The same class also
// serves as the info-free baseline (options.policy.use_block_info = false)
// and, paired with a global provider, as the routing-table baseline.

#include <string>

#include "src/routing/direction_policy.h"
#include "src/routing/router.h"

namespace lgfi {

struct FaultInfoRouterOptions {
  DirectionPolicyOptions policy;
  std::string name = "lgfi";
};

class FaultInfoRouter final : public Router {
 public:
  explicit FaultInfoRouter(FaultInfoRouterOptions options = {});

  [[nodiscard]] RouteDecision decide(const RoutingContext& ctx,
                                     RoutingHeader& header) override;
  [[nodiscard]] std::string name() const override { return options_.name; }

  [[nodiscard]] const FaultInfoRouterOptions& options() const { return options_; }

 private:
  FaultInfoRouterOptions options_;
};

}  // namespace lgfi
