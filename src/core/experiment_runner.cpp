#include "src/core/experiment_runner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>
#include <ostream>
#include <sstream>

#include "src/core/campaign.h"
#include "src/core/first_error.h"
#include "src/core/scenario.h"
#include "src/core/topology_registry.h"
#include "src/core/traffic_workload.h"
#include "src/routing/global_table_router.h"
#include "src/routing/route_walker.h"
#include "src/routing/router_registry.h"
#include "src/sim/fault_timeline.h"
#include "src/sim/injection_process.h"
#include "src/sim/table_printer.h"
#include "src/sim/thread_pool.h"

namespace lgfi {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// A CI cell: round-trip number when it exists, *empty* when it does not
// (n < 2 yields quiet NaN) — "%.17g" would otherwise print a literal "nan"
// token that chokes downstream CSV tooling.
std::string csv_ci_field(double v) { return std::isfinite(v) ? json_number(v) : std::string(); }

std::string csv_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  return out + "\"";
}

void write_metrics_json(std::ostream& os, const MetricSet& metrics) {
  os << "\"metrics\":{";
  bool first = true;
  for (const auto& name : metrics.names()) {
    const RunningStats& s = metrics.stats(name);
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":{\"count\":" << s.count()
       << ",\"mean\":" << json_number(s.mean()) << ",\"stddev\":" << json_number(s.stddev())
       << ",\"min\":" << json_number(s.min()) << ",\"max\":" << json_number(s.max()) << '}';
  }
  os << '}';
}

}  // namespace

Config experiment_config() {
  Config cfg;
  cfg.define_int("mesh_dims", 2, "mesh dimensionality n")
      .define_int("radix", 16, "nodes per dimension k (the mesh is k-ary n-D)")
      .define_string("topology", "mesh",
                     "registered topology (mesh | torus | cmesh); the sixth "
                     "component axis")
      .define_string("extents", "",
                     "mixed-radix extents e0,e1,... (overrides mesh_dims/radix)")
      .define_int("concentration", 1,
                  "cmesh: terminals per router (loads normalize per terminal)")
      .define_string("router", "fault_info",
                     "registered routing function (see RouterRegistry)")
      .define_string("info_mode", "auto",
                     "limited_global|none|instant_global|delayed_global|auto "
                     "(auto = the router's default)")
      .define_string("mode", "static",
                     "static: route over a converged field; dynamic: faults "
                     "arrive while messages travel")
      .define_string("scenario", "random",
                     "random (per fault_model) | figure1 | stacked_blocks "
                     "(paper worked examples; override mesh keys)")
      .define_int("faults", 8, "fault count (per batch in dynamic mode)")
      .define_string("fault_model", "random",
                     "random | clustered | box placement generator; lifecycle | "
                     "lifecycle_links generate a dynamic fail/repair timeline")
      .define_string("fault_box", "",
                     "box extents lo:hi,lo:hi,... for fault_model=box")
      .define_double("fault_arrival_rate", 0.0,
                     "lifecycle: mean fault arrivals per step (exponential "
                     "inter-arrival; required > 0)")
      .define_double("repair_rate", 0.0,
                     "lifecycle: mean repairs per step per down element "
                     "(0: faults are permanent)")
      .define_double("transient_frac", 0.0,
                     "lifecycle: fraction of arrivals that are transient "
                     "(repair at 10x repair_rate)")
      .define_int("fault_horizon", 0,
                  "lifecycle: last step arrivals may land on (0: derive from "
                  "the run length)")
      .define_int("batches", 1, "dynamic: number of fault batches")
      .define_int("fault_start", 0, "dynamic: step of the first batch")
      .define_int("fault_interval", 60, "dynamic: steps between batches (d_i)")
      .define_bool("recoveries", false,
                   "dynamic: earlier faults sometimes recover (Definition 4)")
      .define_int("lambda", 1, "information rounds per routing step (Section 5)")
      .define_string("traffic", "none",
                     "open-loop traffic pattern (uniform | transpose | "
                     "bit_complement | hotspot | permutation); overrides mode")
      .define_double("injection_rate", 0.02,
                     "traffic: per-node per-step Bernoulli injection probability")
      .define_string("injection", "bernoulli",
                     "injection process (bernoulli | onoff | batch | closed_loop "
                     "| trace); the seventh component axis")
      .define_double("duty_cycle", kDefaultDutyCycle,
                     "injection=onoff: ON fraction of the burst cycle")
      .define_int("burst_len", kDefaultBurstLen, "injection=onoff: ON steps per cycle")
      .define_int("batch_size", kDefaultBatchSize,
                  "injection=batch: packets per terminal per batch")
      .define_int("batch_count", kDefaultBatchCount,
                  "injection=batch: batches (the network drains between them)")
      .define_int("window", kDefaultWindow,
                  "injection=closed_loop: outstanding request-reply pairs per terminal")
      .define_string("trace_file", "", "injection=trace: recorded trace to replay")
      .define_string("trace_record", "",
                     "traffic: serialize injected packets here for injection=trace "
                     "replay (needs replications=1)")
      .define_int("measure_steps", 1000, "traffic: measurement window (steps)")
      .define_int("drain_steps", 0, "traffic: drain-phase cap (0: 4*2n*N safety net)")
      .define_double("hotspot_frac", kDefaultHotspotFrac,
                     "traffic=hotspot: fraction of injections targeting the center")
      .define_bool("arbitration", true,
                   "dynamic/traffic: at most one message per directed channel "
                   "per step (losers stall in per-node FIFOs)")
      .define_string("switching", "ideal",
                     "switching model: ideal (single-flit packets) | wormhole "
                     "(flit-level, virtual channels + credits; DESIGN.md 10)")
      .define_int("num_vcs", 2, "wormhole: virtual channels per directed channel")
      .define_int("vc_buffer_depth", 4, "wormhole: flit buffer depth per VC (credits)")
      .define_int("flits_per_packet", 4,
                  "wormhole: flits per packet (head + body + tail)")
      .define_int("warmup_steps", 0, "dynamic: steps before launching messages")
      .define_int("max_steps", 1 << 20, "dynamic: hard step cap per replication")
      .define_int("replications", 1, "independent replications (Rng fork per rep)")
      .define_int("routes", 1, "random source/destination pairs per replication")
      .define_int("min_pair_distance", 1, "minimum D(s,d) of sampled pairs")
      .define_int("seed", 1, "base RNG seed")
      .define_int("threads", 0, "0: shared global pool; N: private pool of N")
      .define_int("step_budget", 0, "per-message step budget (0: 4*2n*N safety net)")
      .define_int("max_rounds", 1 << 20, "stabilization round cap (static mode)")
      .define_bool("persistent_marks", false,
                   "header ablation: marks survive backtracking (DESIGN.md 6.7)")
      .define_bool("active_set", true,
                   "protocol rounds iterate dirty-node worklists instead of "
                   "scanning all N nodes (DESIGN.md 14); false: historical "
                   "full-scan engine (byte-identical trajectories)")
      .define_bool("ecube_strict", true,
                   "dimension_order: disabled nodes block the route too")
      .define_string("oracle_avoid", "block_members",
                     "oracle: block_members | faulty_only obstacles")
      .define_string("report", "table", "reporter: table | csv | csv_ci | json");
  return cfg;
}

// ---------------------------------------------------------------------------
// Reporters.
// ---------------------------------------------------------------------------

void Reporter::report(const ExperimentResult& result, std::ostream& os) {
  Campaign campaign;
  campaign.base = result.config;
  CampaignPoint point;
  point.config = result.config;
  campaign.points.push_back(std::move(point));
  PointResult pr;
  pr.result = result;
  begin(campaign, os);
  add(pr);
  end();
}

void BufferedCampaignRows::clear() {
  axis_keys.clear();
  metric_names.clear();
  rows.clear();
}

void BufferedCampaignRows::add(const PointResult& point) {
  Row row;
  for (const auto& [key, value] : point.swept) row.swept.push_back(value);
  for (const auto& name : point.result.metrics.names()) {
    row.means[name] = point.result.metrics.mean(name);
    row.ci95[name] = point.result.metrics.stats(name).ci95_half_width();
    // names() is sorted per point; keep the union sorted too.
    const auto it = std::lower_bound(metric_names.begin(), metric_names.end(), name);
    if (it == metric_names.end() || *it != name) metric_names.insert(it, name);
  }
  rows.push_back(std::move(row));
}

void TableReporter::begin(const Campaign& campaign, std::ostream& os) {
  os_ = &os;
  single_ = campaign.single_run();
  buffer_.clear();
  if (!single_)
    for (const auto& axis : campaign.axes) buffer_.axis_keys.push_back(axis.key);
}

void TableReporter::add(const PointResult& point) {
  if (single_) {
    *os_ << "config: " << point.result.config.to_string() << "\n";
    *os_ << "replications: " << point.result.replications << "\n";
    TablePrinter t({"metric", "count", "mean", "stddev", "min", "max"});
    for (const auto& name : point.result.metrics.names()) {
      const RunningStats& s = point.result.metrics.stats(name);
      t.add_row({name, TablePrinter::num(s.count()), TablePrinter::num(s.mean(), 4),
                 TablePrinter::num(s.stddev(), 4), TablePrinter::num(s.min(), 4),
                 TablePrinter::num(s.max(), 4)});
    }
    t.print(*os_);
    return;
  }
  buffer_.add(point);
}

void TableReporter::end() {
  if (single_) return;
  std::vector<std::string> headers = buffer_.axis_keys;
  headers.insert(headers.end(), buffer_.metric_names.begin(), buffer_.metric_names.end());
  TablePrinter t(std::move(headers));
  for (const auto& pending : buffer_.rows) {
    std::vector<std::string> row = pending.swept;
    for (const auto& name : buffer_.metric_names) {
      const auto it = pending.means.find(name);
      row.push_back(it != pending.means.end() ? TablePrinter::num(it->second, 4) : "");
    }
    t.add_row(std::move(row));
  }
  t.print(*os_);
}

void CsvReporter::begin(const Campaign& campaign, std::ostream& os) {
  os_ = &os;
  single_ = campaign.single_run();
  buffer_.clear();
  if (single_) {
    os << "config,metric,count,mean,stddev,min,max\n";
  } else {
    os << "# config: " << campaign.base.to_string() << "\n";
    for (const auto& axis : campaign.axes) buffer_.axis_keys.push_back(axis.key);
  }
}

void CsvReporter::add(const PointResult& point) {
  if (single_) {
    const std::string cfg = csv_quote(point.result.config.to_string());
    for (const auto& name : point.result.metrics.names()) {
      const RunningStats& s = point.result.metrics.stats(name);
      *os_ << cfg << ',' << name << ',' << s.count() << ',' << json_number(s.mean()) << ','
           << json_number(s.stddev()) << ',' << json_number(s.min()) << ','
           << json_number(s.max()) << "\n";
    }
    return;
  }
  buffer_.add(point);
}

void CsvReporter::end() {
  if (single_) return;
  for (size_t i = 0; i < buffer_.axis_keys.size(); ++i)
    *os_ << (i > 0 ? "," : "") << csv_field(buffer_.axis_keys[i]);
  for (const auto& metric : buffer_.metric_names) *os_ << ',' << csv_field(metric);
  *os_ << "\n";
  for (const auto& pending : buffer_.rows) {
    for (size_t i = 0; i < pending.swept.size(); ++i)
      *os_ << (i > 0 ? "," : "") << csv_field(pending.swept[i]);
    for (const auto& metric : buffer_.metric_names) {
      *os_ << ',';
      const auto it = pending.means.find(metric);
      if (it != pending.means.end()) *os_ << json_number(it->second);
    }
    *os_ << "\n";
  }
}

void CsvCiReporter::begin(const Campaign& campaign, std::ostream& os) {
  os_ = &os;
  single_ = campaign.single_run();
  buffer_.clear();
  if (single_) {
    os << "config,metric,count,mean,ci95,stddev,min,max\n";
  } else {
    os << "# config: " << campaign.base.to_string() << "\n";
    for (const auto& axis : campaign.axes) buffer_.axis_keys.push_back(axis.key);
  }
}

void CsvCiReporter::add(const PointResult& point) {
  if (single_) {
    const std::string cfg = csv_quote(point.result.config.to_string());
    for (const auto& name : point.result.metrics.names()) {
      const RunningStats& s = point.result.metrics.stats(name);
      *os_ << cfg << ',' << name << ',' << s.count() << ',' << json_number(s.mean()) << ','
           << csv_ci_field(s.ci95_half_width()) << ',' << json_number(s.stddev()) << ','
           << json_number(s.min()) << ',' << json_number(s.max()) << "\n";
    }
    return;
  }
  buffer_.add(point);
}

void CsvCiReporter::end() {
  if (single_) return;
  for (size_t i = 0; i < buffer_.axis_keys.size(); ++i)
    *os_ << (i > 0 ? "," : "") << csv_field(buffer_.axis_keys[i]);
  for (const auto& metric : buffer_.metric_names)
    *os_ << ',' << csv_field(metric) << ',' << csv_field(metric + "_ci95");
  *os_ << "\n";
  for (const auto& pending : buffer_.rows) {
    for (size_t i = 0; i < pending.swept.size(); ++i)
      *os_ << (i > 0 ? "," : "") << csv_field(pending.swept[i]);
    for (const auto& metric : buffer_.metric_names) {
      *os_ << ',';
      const auto it = pending.means.find(metric);
      if (it != pending.means.end()) *os_ << json_number(it->second);
      *os_ << ',';
      const auto ci = pending.ci95.find(metric);
      if (ci != pending.ci95.end()) *os_ << csv_ci_field(ci->second);
    }
    *os_ << "\n";
  }
}

void JsonReporter::begin(const Campaign& campaign, std::ostream& os) {
  os_ = &os;
  single_ = campaign.single_run();
  first_ = true;
  if (!single_) os << '[';
}

void JsonReporter::add(const PointResult& point) {
  if (single_) {
    *os_ << "{\"config\":{";
    bool first = true;
    for (const auto& key : point.result.config.keys()) {
      if (!first) *os_ << ',';
      first = false;
      *os_ << '"' << json_escape(key) << "\":\""
           << json_escape(point.result.config.value_as_string(key)) << '"';
    }
    *os_ << "},\"replications\":" << point.result.replications << ',';
    write_metrics_json(*os_, point.result.metrics);
    *os_ << "}\n";
    return;
  }
  if (!first_) *os_ << ",\n";
  first_ = false;
  *os_ << "{\"swept\":{";
  bool first = true;
  for (const auto& [key, value] : point.swept) {
    if (!first) *os_ << ',';
    first = false;
    *os_ << '"' << json_escape(key) << "\":\"" << json_escape(value) << '"';
  }
  *os_ << "},\"replications\":" << point.result.replications << ',';
  write_metrics_json(*os_, point.result.metrics);
  *os_ << '}';
}

void JsonReporter::end() {
  if (!single_) *os_ << "]\n";
}

NamedRegistry<ReporterFactory>& reporter_registry() {
  static NamedRegistry<ReporterFactory> registry = [] {
    NamedRegistry<ReporterFactory> reg("reporter");
    reg.add(
        "table", [] { return std::unique_ptr<Reporter>(std::make_unique<TableReporter>()); },
        {"aligned terminal table; campaigns: one grid row per swept point", {}});
    reg.add(
        "csv", [] { return std::unique_ptr<Reporter>(std::make_unique<CsvReporter>()); },
        {"RFC-4180-ish CSV; campaigns: swept-key columns, one row per point", {}});
    reg.add(
        "csv_ci",
        [] { return std::unique_ptr<Reporter>(std::make_unique<CsvCiReporter>()); },
        {"CSV with 95% CI half-widths per metric (empty cell when n < 2)", {}});
    reg.add(
        "json", [] { return std::unique_ptr<Reporter>(std::make_unique<JsonReporter>()); },
        {"one JSON object (campaigns: one array; round-trip doubles)", {}});
    return reg;
  }();
  return registry;
}

std::unique_ptr<Reporter> make_reporter(const std::string& name) {
  return reporter_registry().require(name)();
}

// ---------------------------------------------------------------------------
// ExperimentRunner.
// ---------------------------------------------------------------------------

ExperimentRunner::ExperimentRunner(Config config) : config_(std::move(config)) {
  // Fail fast on name typos instead of inside a worker thread: every
  // pluggable axis — router, reporter, traffic pattern, switching model,
  // fault model — is validated against its registry up front, so an unknown
  // name reports the registered names plus a did-you-mean suggestion before
  // any replication runs.
  (void)RouterRegistry::instance().default_info_mode(config_.get_str("router"));
  (void)make_reporter(config_.get_str("report"));
  if (config_.get_str("info_mode") != "auto") (void)parse_info_mode(config_.get_str("info_mode"));
  const std::string& mode = config_.get_str("mode");
  if (mode != "static" && mode != "dynamic")
    throw ConfigError("unknown mode '" + mode + "' (want static or dynamic)");
  const std::string& traffic = config_.get_str("traffic");
  if (traffic != "none" && !TrafficPatternRegistry::instance().contains(traffic)) {
    // "none" is the disable sentinel, not a registered pattern; splice it
    // into the candidate list so the error (and suggestion) still offer it.
    auto known = TrafficPatternRegistry::instance().names();
    known.push_back("none");
    std::sort(known.begin(), known.end());
    throw ConfigError(unknown_name_message("traffic pattern", traffic, known));
  }
  const std::string& switching = config_.get_str("switching");
  (void)SwitchingModelRegistry::instance().require(switching);
  if (switching != "ideal" && !config_.get_bool("arbitration"))
    throw ConfigError("switching=" + switching +
                      " is flit-level and always arbitrates its switch; "
                      "arbitration=false only makes sense with switching=ideal");
  // Dependent keys fail eagerly too: router-level options and the topology
  // geometry via throwaway constructions, and the box model's extents spec
  // via a throwaway parse.
  (void)make_router();
  const auto topo = make_topology(config_);
  (void)fault_model_registry().require(config_.get_str("fault_model"));
  if (is_lifecycle_model(config_.get_str("fault_model"))) {
    // The lifecycle models generate a dynamic fail/repair timeline, so they
    // need the step loop, sane rates, and the random scenario (the worked
    // examples pin their own fault sets).
    if (config_.get_double("fault_arrival_rate") <= 0.0)
      throw ConfigError("fault_model=" + config_.get_str("fault_model") +
                        " needs fault_arrival_rate > 0");
    if (config_.get_double("repair_rate") < 0.0)
      throw ConfigError("repair_rate must be >= 0 (got " +
                        std::to_string(config_.get_double("repair_rate")) + ")");
    const double tf = config_.get_double("transient_frac");
    if (tf < 0.0 || tf > 1.0)
      throw ConfigError("transient_frac must be in [0, 1] (got " + std::to_string(tf) + ")");
    if (tf > 0.0 && config_.get_double("repair_rate") <= 0.0)
      throw ConfigError(
          "transient_frac > 0 needs repair_rate > 0 (a transient IS a fault "
          "with a fast repair)");
    if (config_.get_int("fault_horizon") < 0)
      throw ConfigError("fault_horizon must be >= 0 (got " +
                        std::to_string(config_.get_int("fault_horizon")) + ")");
    if (traffic == "none" && mode != "dynamic")
      throw ConfigError("fault_model=" + config_.get_str("fault_model") +
                        " generates a fail/repair timeline and needs the dynamic "
                        "step loop (set traffic= or mode=dynamic)");
    if (config_.get_bool("recoveries"))
      throw ConfigError(
          "recoveries=true and a lifecycle fault model both schedule repairs; "
          "pick one (lifecycle uses repair_rate=)");
    if (config_.get_str("scenario") != "random")
      throw ConfigError("lifecycle fault models need scenario=random");
  } else {
    // Lifecycle-only keys on a placement model would silently no-op; reject
    // them the way validate_injection_keys rejects orphan injection knobs.
    for (const char* key :
         {"fault_arrival_rate", "repair_rate", "transient_frac", "fault_horizon"}) {
      if (!config_.is_default(key))
        throw ConfigError(std::string(key) +
                          "= needs a lifecycle fault model (set "
                          "fault_model=lifecycle or lifecycle_links)");
    }
  }
  if (config_.get_str("fault_model") == "box") {
    const Box box = parse_box_spec(config_.get_str("fault_box"));
    // Cross-checks against the topology only hold for scenario=random (the
    // worked-example scenarios override the mesh keys).
    if (config_.get_str("scenario") == "random") {
      if (box.lo().size() != topo->dims())
        throw ConfigError("fault_box has " + std::to_string(box.lo().size()) +
                          " dimensions but topology has " + std::to_string(topo->dims()));
      if (topo->clip(box) != box)
        throw ConfigError("fault_box '" + config_.get_str("fault_box") +
                          "' reaches outside the topology bounds " +
                          topo->bounds().to_string());
    }
  }
  if (traffic != "none" && config_.get_str("scenario") == "random") {
    // A throwaway construction validates pattern-level geometry (transpose
    // on unequal extents, hotspot_frac range) before any replication runs.
    Rng probe(0);
    (void)make_traffic_pattern(traffic, *topo, config_, probe);
  }
  // The injection axis: unknown names fail with a did-you-mean, and keys a
  // process ignores are rejected instead of silently no-opping.
  const std::string& injection = config_.get_str("injection");
  if (!InjectionProcessRegistry::instance().contains(injection)) {
    throw ConfigError(unknown_name_message("injection process", injection,
                                           InjectionProcessRegistry::instance().names()));
  }
  validate_injection_keys(config_);
  if (traffic == "none") {
    if (injection != "bernoulli")
      throw ConfigError("injection=" + injection +
                        " needs a traffic workload (set traffic=)");
    if (!config_.get_str("trace_record").empty())
      throw ConfigError("trace_record= needs a traffic workload (set traffic=)");
  } else {
    if (config_.get_int("measure_steps") <= 0)
      throw ConfigError("measure_steps must be >= 1 (got " +
                        std::to_string(config_.get_int("measure_steps")) + ")");
    if (config_.get_int("drain_steps") < 0)
      throw ConfigError("drain_steps must be >= 0 (got " +
                        std::to_string(config_.get_int("drain_steps")) +
                        "; 0 derives the 4*2n*N safety net)");
    if (!config_.get_str("trace_record").empty() && config_.get_int("replications") != 1)
      throw ConfigError(
          "trace_record= writes one trace file; run with replications=1 "
          "(each replication would overwrite it)");
    if (config_.get_str("scenario") == "random") {
      // Throwaway construction: validates knob ranges (duty_cycle, window,
      // ...) and, for injection=trace, that the trace file exists and was
      // recorded on this topology.
      Rng probe(0);
      (void)make_injection_process(injection, *topo, config_, probe);
    }
  }
}

std::unique_ptr<Router> ExperimentRunner::make_router() const {
  return lgfi::make_router(config_.get_str("router"), config_);
}

InfoMode ExperimentRunner::info_mode() const { return resolve_info_mode(config_); }

ExperimentRunner::StaticEnv ExperimentRunner::build_static(Rng& rng) const {
  StaticEnv env;
  DistributedModelOptions mopts;
  mopts.active_set = config_.get_bool("active_set");
  const std::string& scenario = config_.get_str("scenario");
  if (scenario == "figure1") {
    env.net = std::make_unique<Network>(MeshTopology(3, 8), mopts);
    env.faults = figure1_faults();
  } else if (scenario == "stacked_blocks") {
    auto s = stacked_blocks_scenario();
    env.net = std::make_unique<Network>(s.mesh, mopts);
    env.faults = s.faults;
  } else if (scenario == "random") {
    const auto mesh = make_topology(config_);
    env.net = std::make_unique<Network>(*mesh, mopts);
    env.faults = place_faults(env.net->mesh(), config_, rng);
  } else {
    throw ConfigError("unknown scenario '" + scenario +
                      "' (want random, figure1, stacked_blocks)");
  }
  for (const auto& c : env.faults) env.net->inject_fault(c);
  env.rounds = env.net->stabilize(static_cast<int>(config_.get_int("max_rounds")));
  return env;
}

ExperimentRunner::DynamicEnv ExperimentRunner::build_dynamic(Rng& rng, bool run_warmup) const {
  DynamicEnv env;
  const std::string& scenario = config_.get_str("scenario");
  const long long start = config_.get_int("fault_start");
  const long long interval = config_.get_int("fault_interval");
  const int batches = static_cast<int>(config_.get_int("batches"));
  const bool lifecycle = is_lifecycle_model(config_.get_str("fault_model"));
  FaultTimeline timeline;

  if (scenario == "figure1") {
    env.mesh = std::make_unique<MeshTopology>(3, 8);
    for (const auto& c : figure1_faults()) env.schedule.add_fail(start, c);
  } else if (scenario == "random") {
    env.mesh = make_topology(config_);
    if (lifecycle) {
      // Arrivals land on [fault_start, horizon]; the default horizon is the
      // portion of the run the workload (or the batch grammar) covers, so
      // the tail of a traffic run still sees churn.
      long long horizon = config_.get_int("fault_horizon");
      if (horizon <= 0) {
        horizon = config_.get_str("traffic") != "none"
                      ? config_.get_int("warmup_steps") + config_.get_int("measure_steps")
                      : start + static_cast<long long>(batches) * interval;
      }
      timeline = build_lifecycle_timeline(*env.mesh, config_, rng, horizon);
    } else if (config_.get_bool("recoveries")) {
      env.schedule = periodic_random_schedule(*env.mesh, batches,
                                              static_cast<int>(config_.get_int("faults")),
                                              start, interval, rng, /*recoveries=*/true);
    } else {
      if (batches > 1 && config_.get_str("fault_model") == "box")
        throw ConfigError(
            "fault_model=box places the same nodes every batch; use batches=1 "
            "(or a random/clustered model for multi-batch schedules)");
      // Later batches never re-fail an earlier batch's node: random
      // placement excludes them up front; other models are deduplicated.
      std::vector<Coord> placed;
      for (int b = 0; b < batches; ++b) {
        const auto batch =
            config_.get_str("fault_model") == "random"
                ? random_fault_placement(*env.mesh,
                                         static_cast<int>(config_.get_int("faults")), rng,
                                         {}, placed)
                : place_faults(*env.mesh, config_, rng);
        for (const auto& c : batch) {
          if (std::find(placed.begin(), placed.end(), c) != placed.end()) continue;
          env.schedule.add_fail(start + b * interval, c);
          placed.push_back(c);
        }
      }
    }
  } else {
    throw ConfigError("unknown dynamic scenario '" + scenario + "' (want random, figure1)");
  }

  DynamicSimulationOptions opts;
  opts.lambda = static_cast<int>(config_.get_int("lambda"));
  opts.info_mode = info_mode();
  opts.router = config_.get_str("router");
  opts.router_config = config_;
  opts.persistent_marks = config_.get_bool("persistent_marks");
  opts.link_arbitration = config_.get_bool("arbitration");
  opts.switching = config_.get_str("switching");
  opts.num_vcs = static_cast<int>(config_.get_int("num_vcs"));
  opts.vc_buffer_depth = static_cast<int>(config_.get_int("vc_buffer_depth"));
  opts.flits_per_packet = static_cast<int>(config_.get_int("flits_per_packet"));
  opts.step_budget_per_message = config_.get_int("step_budget");
  opts.model.active_set = config_.get_bool("active_set");
  env.sim = lifecycle
                ? std::make_unique<DynamicSimulation>(*env.mesh, std::move(timeline), opts)
                : std::make_unique<DynamicSimulation>(*env.mesh, env.schedule, opts);
  if (run_warmup) {
    const long long warmup = config_.get_int("warmup_steps");
    for (long long i = 0; i < warmup; ++i) env.sim->step();
  }
  return env;
}

ExperimentResult ExperimentRunner::run_each(
    const std::function<void(Rng&, MetricSet&)>& body) const {
  const int replications = static_cast<int>(config_.get_int("replications"));
  const int threads = static_cast<int>(config_.get_int("threads"));
  const Rng base(static_cast<uint64_t>(config_.get_int("seed")));

  std::vector<MetricSet> per_rep(static_cast<size_t>(replications));
  // Exceptions must not escape into pool workers (std::terminate) or past
  // per_rep while other replications still write into it: capture the first
  // one and rethrow after the fan-out has fully drained.
  FirstError first_error;
  const auto task = [&](int64_t rep) {
    try {
      Rng rng = base.fork(static_cast<uint64_t>(rep));
      body(rng, per_rep[static_cast<size_t>(rep)]);
    } catch (...) {
      first_error.record();
    }
  };
  if (threads > 0) {
    ThreadPool pool(static_cast<unsigned>(threads));
    pool.parallel_for(replications, task);
  } else {
    parallel_for(replications, task);
  }
  first_error.rethrow_if_set();

  ExperimentResult result;
  result.config = config_;
  result.replications = replications;
  // Merge in replication order: byte-identical results for any thread count.
  for (const auto& m : per_rep) result.metrics.merge(m);
  return result;
}

ExperimentResult ExperimentRunner::run_each_static(
    const std::function<void(StaticEnv&, Rng&, MetricSet&)>& body) const {
  return run_each([this, &body](Rng& rng, MetricSet& out) {
    StaticEnv env = build_static(rng);
    body(env, rng, out);
  });
}

void ExperimentRunner::run_one_static(Rng& rng, MetricSet& out) const {
  StaticEnv env = build_static(rng);
  out.add("blocks", static_cast<double>(env.net->blocks().size()));
  out.add("converge_rounds", env.rounds.total);

  const auto router = make_router();
  const InfoMode mode = info_mode();
  EmptyInfoProvider empty;
  GlobalInfoProvider global;
  RoutingContext ctx = env.net->context();
  if (mode == InfoMode::kNone) {
    ctx.info = &empty;
  } else if (mode == InfoMode::kInstantGlobal || mode == InfoMode::kDelayedGlobal) {
    // A frozen field has no broadcast latency: both global modes see the
    // stabilized block list everywhere.
    std::vector<BlockInfo> infos;
    for (const auto& b : env.net->blocks())
      infos.push_back(BlockInfo{b.box, env.net->model().epoch()});
    global.set_blocks(std::move(infos));
    ctx.info = &global;
  }

  const int routes = static_cast<int>(config_.get_int("routes"));
  const int min_distance = static_cast<int>(config_.get_int("min_pair_distance"));
  for (int i = 0; i < routes; ++i) {
    const Pair pair = random_enabled_pair(env.mesh(), env.net->field(), rng, min_distance);
    const RouteResult r = run_static_route(ctx, *router, pair.source, pair.dest,
                                           config_.get_int("step_budget"));
    out.add("delivered", r.delivered ? 1.0 : 0.0);
    if (r.delivered) {
      out.add("steps", r.total_steps);
      out.add("detours", r.detours());
      out.add("backtracks", r.backtrack_steps);
      out.add("min_distance", r.min_distance);
    }
  }
}

void ExperimentRunner::run_one_dynamic(Rng& rng, MetricSet& out) const {
  DynamicEnv env = build_dynamic(rng);
  const int routes = static_cast<int>(config_.get_int("routes"));
  const int min_distance = static_cast<int>(config_.get_int("min_pair_distance"));
  std::vector<int> ids;
  for (int i = 0; i < routes; ++i) {
    const Pair pair =
        random_enabled_pair(*env.mesh, env.sim->model().field(), rng, min_distance);
    ids.push_back(env.sim->launch_message(pair.source, pair.dest));
  }
  env.sim->run(config_.get_int("max_steps"));

  out.add("occurrences", static_cast<double>(env.sim->occurrences().size()));
  if (env.sim->first_unreachable_step() >= 0)
    out.add("first_unreachable_step", static_cast<double>(env.sim->first_unreachable_step()));
  for (const int id : ids) {
    const MessageProgress& msg = env.sim->message(id);
    out.add("delivered", msg.delivered ? 1.0 : 0.0);
    if (msg.delivered) {
      out.add("steps", static_cast<double>(msg.header.total_steps()));
      out.add("detours", static_cast<double>(msg.detours()));
      out.add("backtracks", static_cast<double>(msg.header.backtrack_steps()));
      out.add("min_distance", msg.initial_distance);
    }
  }
}

void ExperimentRunner::run_one_traffic(Rng& rng, MetricSet& out) const {
  // The workload owns the warmup (it injects during it), so build_dynamic
  // must not pre-step the simulator.
  DynamicEnv env = build_dynamic(rng, /*run_warmup=*/false);
  const auto pattern =
      make_traffic_pattern(config_.get_str("traffic"), *env.mesh, config_, rng);
  // Built after the pattern, so any construction-time draws (onoff's slot
  // phases) land after the pattern's (permutation's table) — and bernoulli
  // draws nothing, keeping the default stream byte-identical to pre-axis.
  const auto process =
      make_injection_process(config_.get_str("injection"), *env.mesh, config_, rng);

  TrafficWorkloadOptions topts;
  topts.injection_rate = config_.get_double("injection_rate");
  topts.warmup_steps = config_.get_int("warmup_steps");
  topts.measure_steps = config_.get_int("measure_steps");
  topts.drain_steps = config_.get_int("drain_steps");
  topts.probes = static_cast<int>(config_.get_int("routes"));
  topts.min_probe_distance = static_cast<int>(config_.get_int("min_pair_distance"));
  topts.trace_record = config_.get_str("trace_record");
  topts.trace_packet_size = config_.get_str("switching") == "wormhole"
                                ? static_cast<int>(config_.get_int("flits_per_packet"))
                                : 1;

  TrafficWorkload workload(*env.sim, *pattern, *process, topts, rng);
  const TrafficResult r = workload.run();

  out.add("offered_load", r.offered_load);
  out.add("throughput", r.accepted_throughput);
  out.add("injected", static_cast<double>(r.injected));
  out.add("stall_steps", static_cast<double>(r.stall_steps));
  out.add("drained", r.measured_unfinished == 0 ? 1.0 : 0.0);
  if (r.measured > 0)
    out.add("delivered_frac",
            static_cast<double>(r.measured_delivered) / static_cast<double>(r.measured));
  for (const auto& [value, count] : r.latency.buckets())
    out.add_repeated("latency", static_cast<double>(value), count);
  // Flit-level switching extras; all empty under ideal, so the default
  // metric set is unchanged byte for byte.
  for (const auto& [value, count] : r.head_latency.buckets())
    out.add_repeated("head_latency", static_cast<double>(value), count);
  for (const auto& [value, count] : r.serialization.buckets())
    out.add_repeated("serialization_latency", static_cast<double>(value), count);
  for (const auto& [name, value] : env.sim->switching().metrics())
    out.add("sw_" + name, value);
  out.add("occurrences", static_cast<double>(env.sim->occurrences().size()));
  // Only lifecycle churn ever renders a node unreachable mid-run, so the
  // gate keeps the default metric set byte-identical for placement models.
  if (env.sim->first_unreachable_step() >= 0)
    out.add("first_unreachable_step", static_cast<double>(env.sim->first_unreachable_step()));

  // Probe messages: the historical single-message metrics, under load.
  for (const int id : r.probe_ids) {
    const MessageProgress& msg = env.sim->message(id);
    out.add("delivered", msg.delivered ? 1.0 : 0.0);
    if (msg.delivered) {
      out.add("steps", static_cast<double>(msg.header.total_steps()));
      out.add("detours", static_cast<double>(msg.detours()));
      out.add("backtracks", static_cast<double>(msg.header.backtrack_steps()));
      out.add("min_distance", msg.initial_distance);
    }
  }
}

void ExperimentRunner::run_replication(Rng& rng, MetricSet& out) const {
  if (config_.get_str("traffic") != "none") return run_one_traffic(rng, out);
  const std::string& mode = config_.get_str("mode");
  if (mode == "static") return run_one_static(rng, out);
  if (mode == "dynamic") return run_one_dynamic(rng, out);
  throw ConfigError("unknown mode '" + mode + "' (want static or dynamic)");
}

ExperimentResult ExperimentRunner::run() const {
  return run_each([this](Rng& rng, MetricSet& out) { run_replication(rng, out); });
}

ExperimentResult ExperimentRunner::run_and_report(std::ostream& os) const {
  ExperimentResult result = run();
  make_reporter(config_.get_str("report"))->report(result, os);
  return result;
}

}  // namespace lgfi
