#pragma once
// User-facing facade: a topology (k-ary n-D mesh by default) with the
// limited-global fault information machinery attached.
//
// Network bundles the topology, the distributed fault model and the routing
// context plumbing, so a user can inject faults, let the information
// constructions converge, and route — the library's quickstart surface.
// For step-accurate dynamics (faults during routing) use DynamicSimulation.

#include <memory>

#include "src/fault/block_analyzer.h"
#include "src/fault/distributed_model.h"
#include "src/routing/route_walker.h"
#include "src/routing/router.h"

namespace lgfi {

class Network {
 public:
  explicit Network(const Topology& mesh, DistributedModelOptions options = {});

  [[nodiscard]] const Topology& mesh() const { return *mesh_; }
  [[nodiscard]] const StatusField& field() const { return model_.field(); }
  [[nodiscard]] DistributedFaultModel& model() { return model_; }
  [[nodiscard]] const DistributedFaultModel& model() const { return model_; }

  /// Injects a fault / recovery and returns without propagating; call
  /// stabilize() (or run DynamicSimulation steps) to converge.
  void inject_fault(const Coord& c) { model_.inject_fault(c); }
  void recover(const Coord& c) { model_.recover(c); }

  /// Runs information constructions to quiescence; returns round counts.
  ConstructionRounds stabilize(int max_rounds = 1 << 20) {
    return model_.stabilize(max_rounds);
  }

  /// Current faulty blocks (extracted from the stabilized field).
  [[nodiscard]] std::vector<BlockSummary> blocks() const {
    return extract_blocks(model_.field());
  }

  /// Routing context wired to the distributed information placement.
  [[nodiscard]] RoutingContext context() const;

  /// Convenience: routes s -> d with Algorithm 3 over the current (frozen)
  /// state.
  RouteResult route(const Coord& source, const Coord& dest, long long step_budget = 0);

 private:
  std::unique_ptr<Topology> mesh_;  ///< owned clone; stable address for model_/context()
  DistributedFaultModel model_;
  StoreInfoProvider provider_;
  std::unique_ptr<Router> router_;  ///< registry-built Algorithm 3 (route())
};

}  // namespace lgfi
