#include "src/core/network.h"

#include "src/routing/fault_info_router.h"

namespace lgfi {

Network::Network(MeshTopology mesh, DistributedModelOptions options)
    : mesh_(std::move(mesh)), model_(mesh_, options), provider_(model_.info()) {}

RoutingContext Network::context() const {
  RoutingContext ctx;
  ctx.mesh = &mesh_;
  ctx.field = &model_.field();
  ctx.info = &provider_;
  return ctx;
}

RouteResult Network::route(const Coord& source, const Coord& dest, long long step_budget) {
  FaultInfoRouter router;
  return run_static_route(context(), router, source, dest, step_budget);
}

}  // namespace lgfi
