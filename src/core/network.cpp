#include "src/core/network.h"

#include "src/routing/router_registry.h"

namespace lgfi {

Network::Network(const Topology& mesh, DistributedModelOptions options)
    : mesh_(mesh.clone()),
      model_(*mesh_, options),
      provider_(model_.info()),
      router_(make_router("fault_info")) {}

RoutingContext Network::context() const {
  RoutingContext ctx;
  ctx.mesh = mesh_.get();
  ctx.field = &model_.field();
  ctx.info = &provider_;
  return ctx;
}

RouteResult Network::route(const Coord& source, const Coord& dest, long long step_budget) {
  return run_static_route(context(), *router_, source, dest, step_budget);
}

}  // namespace lgfi
