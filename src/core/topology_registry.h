#pragma once
// The topology axis: the sixth pluggable component registry.
//
// Topologies join routers, traffic patterns, switching models, fault models
// and reporters as a `NamedRegistry` axis — the `topology=` config key names
// the substrate every experiment runs on.  Built-ins: mesh (default, the
// paper's), torus, cmesh.  Factories read the shared geometry keys:
//
//   mesh_dims, radix   k-ary n-D grid (the seed interface)
//   extents            mixed-radix override, e.g. extents=16,4,4
//   concentration      terminals per router (cmesh only; others require 1)

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/named_registry.h"
#include "src/mesh/topology.h"

namespace lgfi {

/// Builds a topology from config geometry keys.
using TopologyFactory = std::function<std::unique_ptr<Topology>(const Config& config)>;

/// The process-wide topology registry (the `topology=` axis).
NamedRegistry<TopologyFactory>& topology_registry();

/// Builds the topology named by `topology` (default "mesh"); throws
/// ConfigError with the known names (and a did-you-mean suggestion) on an
/// unknown name, and on invalid geometry (bad extents, concentration on a
/// non-concentrated topology, ...).
std::unique_ptr<Topology> make_topology(const Config& config);

/// Parses an `extents` spec "e0,e1,..." into per-dimension extents; an empty
/// spec falls back to `mesh_dims` dimensions of `radix` each.  Every token
/// must be a fully-consumed positive integer — "16x,4" is rejected naming
/// the bad token.
std::vector<int> parse_extents_spec(const std::string& spec, int mesh_dims, int radix);

}  // namespace lgfi
