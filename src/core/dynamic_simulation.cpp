#include "src/core/dynamic_simulation.h"

#include <cassert>

#include "src/fault/block_analyzer.h"
#include "src/fault/labeling.h"
#include "src/routing/router_registry.h"

namespace lgfi {

DynamicSimulation::DynamicSimulation(const MeshTopology& mesh, FaultSchedule schedule,
                                     DynamicSimulationOptions options)
    : mesh_(&mesh),
      schedule_(std::move(schedule)),
      options_(options),
      model_(mesh, options.model),
      limited_provider_(model_.info()) {
  assert(options_.lambda >= 1);
  if (options_.info_mode == InfoMode::kDelayedGlobal)
    delayed_provider_ = std::make_unique<DelayedGlobalInfoProvider>(mesh);

  router_ = make_router(options_.router == "auto" ? router_name_for(options_.info_mode)
                                                  : options_.router,
                        options_.router_config);
}

RoutingContext DynamicSimulation::context() const {
  RoutingContext ctx;
  ctx.mesh = mesh_;
  ctx.field = &model_.field();
  switch (options_.info_mode) {
    case InfoMode::kLimitedGlobal: ctx.info = &limited_provider_; break;
    case InfoMode::kNone: ctx.info = &empty_provider_; break;
    case InfoMode::kInstantGlobal: ctx.info = &instant_provider_; break;
    case InfoMode::kDelayedGlobal: ctx.info = delayed_provider_.get(); break;
  }
  return ctx;
}

int DynamicSimulation::launch_message(const Coord& source, const Coord& dest) {
  MessageProgress msg(static_cast<int>(messages_.size()), source, dest);
  msg.start_step = now_;
  if (options_.persistent_marks) msg.header.enable_persistent_marks();
  // Occurrences that already happened have D(i) = D (message at source).
  msg.distance_at_occurrence.assign(occurrences_.size(), msg.initial_distance);
  messages_.push_back(std::move(msg));
  return messages_.back().id;
}

void DynamicSimulation::apply_fault_events() {
  const auto events = schedule_.events_at(now_);
  if (events.empty()) return;

  for (const auto& e : events) {
    if (e.kind == FaultEventKind::kFail) {
      if (model_.field().at(e.node) != NodeStatus::kFaulty) model_.inject_fault(e.node);
    } else {
      if (model_.field().at(e.node) == NodeStatus::kFaulty) model_.recover(e.node);
    }
  }

  // Open a new occurrence record (simultaneous events form one occurrence,
  // matching the paper's "only one new block in each interval" reading).
  if (converging_ >= 0)
    occurrences_[static_cast<size_t>(converging_)].stabilized_before_next = false;
  OccurrenceRecord rec;
  rec.step = now_;
  occurrences_.push_back(rec);
  converging_ = static_cast<int>(occurrences_.size()) - 1;

  // Record D(i) for every in-flight message at this occurrence.
  for (auto& msg : messages_) {
    const int d = (msg.delivered || msg.unreachable)
                      ? 0
                      : manhattan_distance(msg.header.current(), msg.header.destination());
    msg.distance_at_occurrence.push_back(d);
  }

  if (options_.info_mode == InfoMode::kInstantGlobal) {
    // The oracle baseline sees the *final* blocks of this change instantly.
    StatusField copy = model_.field();
    stabilize_labeling(copy);
    std::vector<BlockInfo> infos;
    for (const auto& b : block_boxes(copy)) infos.push_back(BlockInfo{b, model_.epoch()});
    instant_provider_.set_blocks(std::move(infos));
  }
}

void DynamicSimulation::run_information_rounds() {
  for (int r = 0; r < options_.lambda; ++r) {
    const bool active = model_.run_round();
    if (converging_ >= 0) {
      auto& rec = occurrences_[static_cast<size_t>(converging_)];
      const auto& act = model_.last_activity();
      const int round_in_occurrence =
          static_cast<int>((now_ - rec.step) * options_.lambda) + r + 1;
      if (act.labeling) rec.rounds_labeling = round_in_occurrence;
      if (act.levels || act.identification) rec.rounds_identification = round_in_occurrence;
      if (act.envelope || act.boundary || act.cancel) rec.rounds_boundary = round_in_occurrence;
      if (!active) {
        rec.e_max_after = max_block_extent(block_boxes(model_.field()));
        if (options_.info_mode == InfoMode::kDelayedGlobal) {
          // The routing-table baseline publishes the new global snapshot
          // from the site of the change once stabilized; it spreads one hop
          // per step.
          std::vector<BlockInfo> infos;
          for (const auto& b : block_boxes(model_.field()))
            infos.push_back(BlockInfo{b, model_.epoch()});
          delayed_provider_->publish(infos, mesh_->coord_of(0), now_);
        }
        converging_ = -1;
      }
    }
  }
  if (options_.info_mode == InfoMode::kDelayedGlobal) delayed_provider_->advance(now_);
}

void DynamicSimulation::advance_messages() {
  const RoutingContext ctx = context();
  const long long budget = options_.step_budget_per_message > 0
                               ? options_.step_budget_per_message
                               : 4ll * mesh_->direction_count() * mesh_->node_count();
  for (auto& msg : messages_) {
    if (msg.delivered || msg.unreachable || msg.budget_exhausted) continue;
    const RouteDecision d = router_->decide(ctx, msg.header);
    switch (d.action) {
      case RouteAction::kDelivered:
        msg.delivered = true;
        msg.end_step = now_;
        break;
      case RouteAction::kUnreachable:
        msg.unreachable = true;
        msg.end_step = now_;
        break;
      case RouteAction::kForward:
        msg.header.forward(d.direction);
        if (d.detour_preferred) ++msg.detour_preferred_taken;
        break;
      case RouteAction::kBacktrack:
        msg.header.backtrack();
        break;
    }
    if (msg.header.total_steps() >= budget && !msg.delivered && !msg.unreachable) {
      msg.budget_exhausted = true;
      msg.end_step = now_;
    }
  }
}

void DynamicSimulation::step() {
  apply_fault_events();       // fault detection phase
  run_information_rounds();   // lambda rounds of the three constructions
  advance_messages();         // message reception + routing decision + send
  ++now_;
}

bool DynamicSimulation::all_messages_done() const {
  for (const auto& m : messages_)
    if (!m.delivered && !m.unreachable && !m.budget_exhausted) return false;
  return true;
}

void DynamicSimulation::run(long long max_steps) {
  for (long long i = 0; i < max_steps; ++i) {
    const bool schedule_done = schedule_.last_step() < now_;
    if (schedule_done && all_messages_done() && converging_ < 0) return;
    step();
  }
}

DynamicFaultTimeline DynamicSimulation::timeline(long long route_start) const {
  DynamicFaultTimeline tl;
  tl.route_start = route_start;
  int e_max = 0;
  for (const auto& rec : occurrences_) {
    tl.t.push_back(rec.step);
    // a_i in steps: each step runs lambda rounds.
    tl.a.push_back((rec.rounds_labeling + options_.lambda - 1) / options_.lambda);
    e_max = std::max(e_max, rec.e_max_after);
  }
  tl.e_max = e_max;
  return tl;
}

}  // namespace lgfi
