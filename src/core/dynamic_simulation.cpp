#include "src/core/dynamic_simulation.h"

#include <algorithm>
#include <cassert>

#include "src/fault/block_analyzer.h"
#include "src/fault/labeling.h"
#include "src/routing/router_registry.h"

namespace lgfi {

DynamicSimulation::DynamicSimulation(const Topology& mesh, const FaultSchedule& schedule,
                                     DynamicSimulationOptions options)
    : DynamicSimulation(mesh, timeline_from_schedule(schedule), options) {}

DynamicSimulation::DynamicSimulation(const Topology& mesh, FaultTimeline timeline,
                                     DynamicSimulationOptions options)
    : mesh_(&mesh),
      timeline_(std::move(timeline)),
      link_faults_(mesh),
      options_(options),
      model_(mesh, options.model),
      limited_provider_(model_.info()) {
  assert(options_.lambda >= 1);
  if (options_.info_mode == InfoMode::kDelayedGlobal)
    delayed_provider_ = std::make_unique<DelayedGlobalInfoProvider>(mesh);

  SwitchingOptions sopts;
  sopts.link_arbitration = options_.link_arbitration;
  sopts.num_vcs = options_.num_vcs;
  sopts.vc_buffer_depth = options_.vc_buffer_depth;
  sopts.flits_per_packet = options_.flits_per_packet;
  switching_ = make_switching_model(options_.switching, mesh, sopts);
  if (switching_->arbitrated()) {
    arbiter_ = std::make_unique<LinkArbiter>(mesh);
    arbiter_->set_link_faults(&link_faults_);
  }

  // The per-message step budget depends only on construction-time values;
  // computing it here keeps it out of the per-step hot path.
  step_budget_ = options_.step_budget_per_message > 0
                     ? options_.step_budget_per_message
                     : 4ll * mesh_->direction_count() * mesh_->node_count();

  router_ = make_router(options_.router == "auto" ? router_name_for(options_.info_mode)
                                                  : options_.router,
                        options_.router_config);
}

RoutingContext DynamicSimulation::context() const {
  RoutingContext ctx;
  ctx.mesh = mesh_;
  ctx.field = &model_.field();
  ctx.links = &link_faults_;
  switch (options_.info_mode) {
    case InfoMode::kLimitedGlobal: ctx.info = &limited_provider_; break;
    case InfoMode::kNone: ctx.info = &empty_provider_; break;
    case InfoMode::kInstantGlobal: ctx.info = &instant_provider_; break;
    case InfoMode::kDelayedGlobal: ctx.info = delayed_provider_.get(); break;
  }
  return ctx;
}

int DynamicSimulation::launch_message(const Coord& source, const Coord& dest) {
  MessageProgress msg(static_cast<int>(messages_.size()), source, dest,
                      mesh_->min_hops(source, dest));
  msg.start_step = now_;
  if (options_.persistent_marks) msg.header.enable_persistent_marks();
  // Occurrences that already happened have D(i) = D (message at source).
  msg.distance_at_occurrence.assign(occurrences_.size(), msg.initial_distance);
  messages_.push_back(std::move(msg));
  ++active_messages_;
  switching_->add_packet(messages_.back().id, mesh_->index_of(source));
  return messages_.back().id;
}

StepContext DynamicSimulation::begin_step() {
  StepContext ctx;
  ctx.step = now_;
  return ctx;
}

void DynamicSimulation::end_step(StepContext&) { ++now_; }

void DynamicSimulation::apply_fault_events(StepContext& ctx) {
  // O(1) peek against the timeline heap; a step with no due events costs
  // nothing regardless of how many are still pending.
  if (!timeline_.has_events_at(now_)) return;
  ctx.events = timeline_.pop_events_at(now_);

  bool node_change = false;
  Coord origin;
  for (const auto& e : ctx.events) {
    if (e.is_link()) {
      // Link faults live in the per-channel mask only: routing and
      // arbitration consult it, the protocol stack never does (a node is
      // faulty-for-labeling only when node-dead, DESIGN.md §17).
      if (e.is_down_edge())
        link_faults_.fail(mesh_->index_of(e.node), e.link);
      else
        link_faults_.repair(mesh_->index_of(e.node), e.link);
      continue;
    }
    if (e.is_down_edge()) {
      if (model_.field().at(e.node) != NodeStatus::kFaulty) model_.inject_fault(e.node);
    } else {
      if (model_.field().at(e.node) == NodeStatus::kFaulty) model_.recover(e.node);
    }
    if (!node_change) {
      node_change = true;
      origin = e.node;
    }
  }

  // A link-only batch changes no protocol state — no occurrence record, no
  // D(i) snapshots, no oracle republish.
  if (!node_change) return;

  // Open a new occurrence record (simultaneous events form one occurrence,
  // matching the paper's "only one new block in each interval" reading).
  if (converging_ >= 0)
    occurrences_[static_cast<size_t>(converging_)].stabilized_before_next = false;
  OccurrenceRecord rec;
  rec.step = now_;
  rec.origin = origin;
  occurrences_.push_back(rec);
  converging_ = static_cast<int>(occurrences_.size()) - 1;
  ctx.occurrence_opened = true;

  // Record D(i) for every in-flight message at this occurrence.
  for (auto& msg : messages_) {
    const int d = (msg.delivered || msg.unreachable)
                      ? 0
                      : mesh_->min_hops(msg.header.current(), msg.header.destination());
    msg.distance_at_occurrence.push_back(d);
  }

  if (options_.info_mode == InfoMode::kInstantGlobal) {
    // The oracle baseline sees the *final* blocks of this change instantly.
    StatusField copy = model_.field();
    stabilize_labeling(copy);
    std::vector<BlockInfo> infos;
    for (const auto& b : block_boxes(copy)) infos.push_back(BlockInfo{b, model_.epoch()});
    instant_provider_.set_blocks(std::move(infos));
  }
}

void DynamicSimulation::run_information_rounds(StepContext& ctx) {
  for (int r = 0; r < options_.lambda; ++r) {
    const bool active = model_.run_round();
    if (converging_ >= 0) {
      auto& rec = occurrences_[static_cast<size_t>(converging_)];
      const auto& act = model_.last_activity();
      const int round_in_occurrence =
          static_cast<int>((now_ - rec.step) * options_.lambda) + r + 1;
      if (act.labeling) rec.rounds_labeling = round_in_occurrence;
      if (act.levels || act.identification) rec.rounds_identification = round_in_occurrence;
      if (act.envelope || act.boundary || act.cancel) rec.rounds_boundary = round_in_occurrence;
      if (!active) {
        rec.e_max_after = max_block_extent(block_boxes(model_.field()));
        if (options_.info_mode == InfoMode::kDelayedGlobal) {
          // The routing-table baseline publishes the new global snapshot
          // from the site of the change once stabilized; it spreads one hop
          // per step.
          std::vector<BlockInfo> infos;
          for (const auto& b : block_boxes(model_.field()))
            infos.push_back(BlockInfo{b, model_.epoch()});
          delayed_provider_->publish(infos, rec.origin, now_);
        }
        converging_ = -1;
        ctx.stabilized = true;
      }
    }
  }
  // Skip the provider's O(N) reveal sweep entirely while no snapshot wave is
  // spreading — the common case once the network has stabilized.
  if (options_.info_mode == InfoMode::kDelayedGlobal && delayed_provider_->wave_in_flight())
    delayed_provider_->advance(now_);
}

void DynamicSimulation::finish_message(MessageProgress& msg, StepContext& ctx) {
  msg.end_step = now_;
  --active_messages_;
  ++ctx.finished;
}

// --- SwitchingHost --------------------------------------------------------
// The model sequences these callbacks during arbitrate_and_advance; all
// header mutation, budget enforcement and per-message accounting stays here.

SwitchDecision DynamicSimulation::decide(int id) {
  MessageProgress& msg = messages_[static_cast<size_t>(id)];
  const RouteDecision d = router_->decide(step_ctx_->routing, msg.header);
  SwitchDecision out;
  switch (d.action) {
    case RouteAction::kDelivered: out.action = SwitchAction::kDeliver; break;
    case RouteAction::kUnreachable: out.action = SwitchAction::kUnreachable; break;
    case RouteAction::kForward: out.action = SwitchAction::kForward; break;
    case RouteAction::kBacktrack: out.action = SwitchAction::kBacktrack; break;
  }
  out.direction = d.direction;
  out.detour_preferred = d.detour_preferred;
  // The channel a backtrack would traverse — supplied on every decision so
  // flit-level models can issue resource-releasing backtracks of their own.
  if (!msg.header.at_source() && !msg.header.top().incoming.is_none())
    out.back = msg.header.top().incoming.opposite();
  return out;
}

MoveResult DynamicSimulation::commit_move(int id, const SwitchDecision& decision) {
  MessageProgress& msg = messages_[static_cast<size_t>(id)];
  if (decision.action == SwitchAction::kForward) {
    msg.header.forward(decision.direction,
                       mesh_->step(msg.header.current(), decision.direction));
    if (decision.detour_preferred) ++msg.detour_preferred_taken;
  } else {
    msg.header.backtrack();
    if (decision.unmark_on_backtrack) msg.header.unmark(decision.back.opposite());
  }
  ++step_ctx_->moved;
  MoveResult r;
  r.node = mesh_->index_of(msg.header.current());
  if (msg.header.total_steps() >= step_budget_ && !msg.delivered && !msg.unreachable) {
    msg.budget_exhausted = true;
    finish_message(msg, *step_ctx_);
    r.finished = true;
  }
  return r;
}

void DynamicSimulation::finish(int id, PacketOutcome outcome) {
  MessageProgress& msg = messages_[static_cast<size_t>(id)];
  switch (outcome) {
    case PacketOutcome::kDelivered:
      msg.delivered = true;
      ++step_ctx_->delivered;
      break;
    case PacketOutcome::kUnreachable:
      msg.unreachable = true;
      if (first_unreachable_step_ < 0) first_unreachable_step_ = now_;
      break;
    case PacketOutcome::kBudgetExhausted: msg.budget_exhausted = true; break;
  }
  finish_message(msg, *step_ctx_);
}

void DynamicSimulation::count_stall(int id) {
  ++messages_[static_cast<size_t>(id)].stall_steps;
  ++step_ctx_->stalled;
}

void DynamicSimulation::record_head_arrival(int id) {
  messages_[static_cast<size_t>(id)].head_arrival_step = now_;
}

void DynamicSimulation::count_flit_moves(int n) { step_ctx_->flits_moved += n; }

bool DynamicSimulation::node_faulty(NodeId node) const {
  return model_.field().at(node) == NodeStatus::kFaulty;
}

bool DynamicSimulation::link_faulty(NodeId from, Direction dir) const {
  return link_faults_.faulty(from, dir);
}

uint64_t DynamicSimulation::field_version() const {
  // Sum of two monotone counters: strictly increases on any node *or* link
  // change, so version-caching consumers (oracle BFS trees, wormhole stream
  // teardown scans) react to both without a wider interface.
  return model_.field().version() + link_faults_.version();
}

void DynamicSimulation::arbitrate_and_advance(StepContext& ctx) {
  ctx.routing = context();
  step_ctx_ = &ctx;
  switching_->advance_step(*this, arbiter_.get());
  step_ctx_ = nullptr;
}

void DynamicSimulation::step() {
  StepContext ctx = begin_step();
  apply_fault_events(ctx);       // fault detection phase
  run_information_rounds(ctx);   // lambda rounds of the three constructions
  arbitrate_and_advance(ctx);    // message reception + routing decision + send
  end_step(ctx);
}

void DynamicSimulation::run(long long max_steps) {
  for (long long i = 0; i < max_steps; ++i) {
    const bool schedule_done = timeline_.empty();
    if (schedule_done && all_messages_done() && converging_ < 0) return;
    step();
  }
}

DynamicFaultTimeline DynamicSimulation::timeline(long long route_start) const {
  DynamicFaultTimeline tl;
  tl.route_start = route_start;
  int e_max = 0;
  for (const auto& rec : occurrences_) {
    tl.t.push_back(rec.step);
    // a_i in steps: each step runs lambda rounds.
    tl.a.push_back((rec.rounds_labeling + options_.lambda - 1) / options_.lambda);
    e_max = std::max(e_max, rec.e_max_after);
  }
  tl.e_max = e_max;
  return tl;
}

}  // namespace lgfi
