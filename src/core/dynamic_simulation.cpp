#include "src/core/dynamic_simulation.h"

#include <algorithm>
#include <cassert>

#include "src/fault/block_analyzer.h"
#include "src/fault/labeling.h"
#include "src/routing/router_registry.h"

namespace lgfi {

DynamicSimulation::DynamicSimulation(const MeshTopology& mesh, FaultSchedule schedule,
                                     DynamicSimulationOptions options)
    : mesh_(&mesh),
      schedule_(std::move(schedule)),
      options_(options),
      model_(mesh, options.model),
      limited_provider_(model_.info()) {
  assert(options_.lambda >= 1);
  if (options_.info_mode == InfoMode::kDelayedGlobal)
    delayed_provider_ = std::make_unique<DelayedGlobalInfoProvider>(mesh);
  if (options_.link_arbitration) {
    arbiter_ = std::make_unique<LinkArbiter>(mesh);
    node_fifo_.resize(static_cast<size_t>(mesh.node_count()));
  }

  router_ = make_router(options_.router == "auto" ? router_name_for(options_.info_mode)
                                                  : options_.router,
                        options_.router_config);
}

RoutingContext DynamicSimulation::context() const {
  RoutingContext ctx;
  ctx.mesh = mesh_;
  ctx.field = &model_.field();
  switch (options_.info_mode) {
    case InfoMode::kLimitedGlobal: ctx.info = &limited_provider_; break;
    case InfoMode::kNone: ctx.info = &empty_provider_; break;
    case InfoMode::kInstantGlobal: ctx.info = &instant_provider_; break;
    case InfoMode::kDelayedGlobal: ctx.info = delayed_provider_.get(); break;
  }
  return ctx;
}

int DynamicSimulation::launch_message(const Coord& source, const Coord& dest) {
  MessageProgress msg(static_cast<int>(messages_.size()), source, dest);
  msg.start_step = now_;
  if (options_.persistent_marks) msg.header.enable_persistent_marks();
  // Occurrences that already happened have D(i) = D (message at source).
  msg.distance_at_occurrence.assign(occurrences_.size(), msg.initial_distance);
  messages_.push_back(std::move(msg));
  ++active_messages_;
  if (options_.link_arbitration)
    node_fifo_[static_cast<size_t>(mesh_->index_of(source))].push_back(messages_.back().id);
  return messages_.back().id;
}

StepContext DynamicSimulation::begin_step() {
  StepContext ctx;
  ctx.step = now_;
  ctx.arbiter = arbiter_.get();
  return ctx;
}

void DynamicSimulation::end_step(StepContext&) { ++now_; }

void DynamicSimulation::apply_fault_events(StepContext& ctx) {
  ctx.events = schedule_.events_at(now_);
  if (ctx.events.empty()) return;

  for (const auto& e : ctx.events) {
    if (e.kind == FaultEventKind::kFail) {
      if (model_.field().at(e.node) != NodeStatus::kFaulty) model_.inject_fault(e.node);
    } else {
      if (model_.field().at(e.node) == NodeStatus::kFaulty) model_.recover(e.node);
    }
  }

  // Open a new occurrence record (simultaneous events form one occurrence,
  // matching the paper's "only one new block in each interval" reading).
  if (converging_ >= 0)
    occurrences_[static_cast<size_t>(converging_)].stabilized_before_next = false;
  OccurrenceRecord rec;
  rec.step = now_;
  rec.origin = ctx.events.front().node;
  occurrences_.push_back(rec);
  converging_ = static_cast<int>(occurrences_.size()) - 1;
  ctx.occurrence_opened = true;

  // Record D(i) for every in-flight message at this occurrence.
  for (auto& msg : messages_) {
    const int d = (msg.delivered || msg.unreachable)
                      ? 0
                      : manhattan_distance(msg.header.current(), msg.header.destination());
    msg.distance_at_occurrence.push_back(d);
  }

  if (options_.info_mode == InfoMode::kInstantGlobal) {
    // The oracle baseline sees the *final* blocks of this change instantly.
    StatusField copy = model_.field();
    stabilize_labeling(copy);
    std::vector<BlockInfo> infos;
    for (const auto& b : block_boxes(copy)) infos.push_back(BlockInfo{b, model_.epoch()});
    instant_provider_.set_blocks(std::move(infos));
  }
}

void DynamicSimulation::run_information_rounds(StepContext& ctx) {
  for (int r = 0; r < options_.lambda; ++r) {
    const bool active = model_.run_round();
    if (converging_ >= 0) {
      auto& rec = occurrences_[static_cast<size_t>(converging_)];
      const auto& act = model_.last_activity();
      const int round_in_occurrence =
          static_cast<int>((now_ - rec.step) * options_.lambda) + r + 1;
      if (act.labeling) rec.rounds_labeling = round_in_occurrence;
      if (act.levels || act.identification) rec.rounds_identification = round_in_occurrence;
      if (act.envelope || act.boundary || act.cancel) rec.rounds_boundary = round_in_occurrence;
      if (!active) {
        rec.e_max_after = max_block_extent(block_boxes(model_.field()));
        if (options_.info_mode == InfoMode::kDelayedGlobal) {
          // The routing-table baseline publishes the new global snapshot
          // from the site of the change once stabilized; it spreads one hop
          // per step.
          std::vector<BlockInfo> infos;
          for (const auto& b : block_boxes(model_.field()))
            infos.push_back(BlockInfo{b, model_.epoch()});
          delayed_provider_->publish(infos, rec.origin, now_);
        }
        converging_ = -1;
        ctx.stabilized = true;
      }
    }
  }
  if (options_.info_mode == InfoMode::kDelayedGlobal) delayed_provider_->advance(now_);
}

void DynamicSimulation::finish_message(MessageProgress& msg, StepContext& ctx) {
  msg.end_step = now_;
  --active_messages_;
  ++ctx.finished;
}

void DynamicSimulation::move_between_fifos(int id, NodeId from, NodeId to) {
  auto& q = node_fifo_[static_cast<size_t>(from)];
  q.erase(std::find(q.begin(), q.end(), id));
  if (to != kInvalidNode) node_fifo_[static_cast<size_t>(to)].push_back(id);
}

void DynamicSimulation::advance_contention_free(StepContext& ctx, long long budget) {
  // The historical Figure 7 loop: every message advances unconditionally,
  // one hop per step, in launch order.
  for (auto& msg : messages_) {
    if (msg.done()) continue;
    const RouteDecision d = router_->decide(ctx.routing, msg.header);
    switch (d.action) {
      case RouteAction::kDelivered:
        msg.delivered = true;
        ++ctx.delivered;
        finish_message(msg, ctx);
        break;
      case RouteAction::kUnreachable:
        msg.unreachable = true;
        finish_message(msg, ctx);
        break;
      case RouteAction::kForward:
        msg.header.forward(d.direction);
        if (d.detour_preferred) ++msg.detour_preferred_taken;
        ++ctx.moved;
        break;
      case RouteAction::kBacktrack:
        msg.header.backtrack();
        ++ctx.moved;
        break;
    }
    if (msg.header.total_steps() >= budget && !msg.delivered && !msg.unreachable) {
      msg.budget_exhausted = true;
      finish_message(msg, ctx);
    }
  }
}

void DynamicSimulation::advance_arbitrated(StepContext& ctx, long long budget) {
  LinkArbiter& arbiter = *ctx.arbiter;
  // Decision sub-phase: every in-flight message decides at its current node,
  // in per-node FIFO service order (nodes ascending, arrivals in order), and
  // moves become channel requests.  Decisions are pure w.r.t. the header
  // (marking happens on the granted traversal), so a stalled message simply
  // re-decides next step under the then-current information.
  struct Pending {
    int id;
    RouteDecision decision;
    int ticket;
  };
  arbiter.begin_step();
  std::vector<Pending> pending;
  std::vector<std::pair<NodeId, int>> finished_in_place;
  const NodeId nodes = static_cast<NodeId>(mesh_->node_count());
  for (NodeId node = 0; node < nodes; ++node) {
    for (const int id : node_fifo_[static_cast<size_t>(node)]) {
      MessageProgress& msg = messages_[static_cast<size_t>(id)];
      const RouteDecision d = router_->decide(ctx.routing, msg.header);
      switch (d.action) {
        case RouteAction::kDelivered:
          msg.delivered = true;
          ++ctx.delivered;
          finish_message(msg, ctx);
          finished_in_place.emplace_back(node, id);
          break;
        case RouteAction::kUnreachable:
          msg.unreachable = true;
          finish_message(msg, ctx);
          finished_in_place.emplace_back(node, id);
          break;
        case RouteAction::kForward:
          pending.push_back({id, d, arbiter.request(node, d.direction)});
          break;
        case RouteAction::kBacktrack: {
          // Backtracking traverses the channel back to the previous node —
          // it contends like any other traversal.
          const Direction back = msg.header.top().incoming.opposite();
          pending.push_back({id, d, arbiter.request(node, back)});
          break;
        }
      }
    }
  }
  for (const auto& [node, id] : finished_in_place) move_between_fifos(id, node, kInvalidNode);

  arbiter.arbitrate();

  // Traversal sub-phase: winners move one hop; losers stall where they are.
  for (const Pending& p : pending) {
    MessageProgress& msg = messages_[static_cast<size_t>(p.id)];
    if (!arbiter.granted(p.ticket)) {
      ++msg.stall_steps;
      ++ctx.stalled;
      continue;
    }
    const NodeId from = mesh_->index_of(msg.header.current());
    if (p.decision.action == RouteAction::kForward) {
      msg.header.forward(p.decision.direction);
      if (p.decision.detour_preferred) ++msg.detour_preferred_taken;
    } else {
      msg.header.backtrack();
    }
    ++ctx.moved;
    const NodeId to = mesh_->index_of(msg.header.current());
    move_between_fifos(p.id, from, to);
    if (msg.header.total_steps() >= budget) {
      msg.budget_exhausted = true;
      finish_message(msg, ctx);
      move_between_fifos(p.id, to, kInvalidNode);
    }
  }
}

void DynamicSimulation::arbitrate_and_advance(StepContext& ctx) {
  ctx.routing = context();
  const long long budget = options_.step_budget_per_message > 0
                               ? options_.step_budget_per_message
                               : 4ll * mesh_->direction_count() * mesh_->node_count();
  if (options_.link_arbitration) {
    advance_arbitrated(ctx, budget);
  } else {
    advance_contention_free(ctx, budget);
  }
}

void DynamicSimulation::step() {
  StepContext ctx = begin_step();
  apply_fault_events(ctx);       // fault detection phase
  run_information_rounds(ctx);   // lambda rounds of the three constructions
  arbitrate_and_advance(ctx);    // message reception + routing decision + send
  end_step(ctx);
}

void DynamicSimulation::run(long long max_steps) {
  for (long long i = 0; i < max_steps; ++i) {
    const bool schedule_done = schedule_.last_step() < now_;
    if (schedule_done && all_messages_done() && converging_ < 0) return;
    step();
  }
}

DynamicFaultTimeline DynamicSimulation::timeline(long long route_start) const {
  DynamicFaultTimeline tl;
  tl.route_start = route_start;
  int e_max = 0;
  for (const auto& rec : occurrences_) {
    tl.t.push_back(rec.step);
    // a_i in steps: each step runs lambda rounds.
    tl.a.push_back((rec.rounds_labeling + options_.lambda - 1) / options_.lambda);
    e_max = std::max(e_max, rec.e_max_after);
  }
  tl.e_max = e_max;
  return tl;
}

}  // namespace lgfi
