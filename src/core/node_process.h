#pragma once
// Per-node inspection: what role does a node currently play in the
// information model?  Used by examples and diagnostics to narrate the state
// of the system in the paper's vocabulary.

#include <string>
#include <vector>

#include "src/fault/distributed_model.h"

namespace lgfi {

struct NodeReport {
  Coord coord;
  NodeStatus status = NodeStatus::kEnabled;
  int corner_level = 0;           ///< highest Definition-2 level held (0 = none)
  std::vector<BlockInfo> held;    ///< block information stored here
  bool on_some_envelope = false;  ///< adjacent/edge/corner of a held block
  bool on_some_wall = false;      ///< holds info of a block it is not adjacent to

  [[nodiscard]] std::string describe() const;
};

/// Snapshot of one node's role in the model.
NodeReport inspect_node(const DistributedFaultModel& model, const Coord& c);

/// Totals for the memory experiment: how many nodes store anything, split by
/// envelope vs wall placement.
struct PlacementFootprint {
  long long nodes_with_info = 0;
  long long total_entries = 0;
  long long envelope_nodes = 0;
  long long wall_nodes = 0;
  long long node_count = 0;

  [[nodiscard]] double fraction_of_mesh() const {
    return node_count > 0 ? static_cast<double>(nodes_with_info) /
                                static_cast<double>(node_count)
                          : 0.0;
  }
};
PlacementFootprint placement_footprint(const DistributedFaultModel& model);

}  // namespace lgfi
