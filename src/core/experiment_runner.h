#pragma once
// The declarative experiment surface.
//
// An ExperimentRunner takes a Config (schema: experiment_config()), builds
// the mesh / network / fault schedule / router it describes, fans the
// replications over the thread pool, and reports the collected metrics
// through a pluggable Reporter.  One config line reproduces any run:
//
//   Config cfg = experiment_config();
//   cfg.parse_string("mesh_dims=3 radix=10 router=fault_info faults=18 "
//                    "replications=200 seed=7");
//   ExperimentRunner(cfg).run_and_report(std::cout);
//
// Replication fan-out is deterministic *and* schedule-independent: each
// replication gets Rng(seed).fork(rep) and its own MetricSet, and the
// per-replication sets are merged in replication order, so results are
// byte-identical for any thread count.
//
// Benches with bespoke measurements keep their own tables but reuse the
// environment construction: build_static()/build_dynamic() turn the config
// into a ready simulator, and run_each()/run_each_static() provide the
// deterministic replication fan-out.

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/dynamic_simulation.h"
#include "src/core/experiment.h"
#include "src/core/named_registry.h"
#include "src/core/network.h"
#include "src/sim/fault_schedule.h"

namespace lgfi {

/// The standard experiment schema: every key with a typed default and help
/// line.  `Config::help()` prints the grammar; see README.md for the table.
Config experiment_config();

struct ExperimentResult {
  Config config;       ///< the exact configuration that produced the metrics
  MetricSet metrics;   ///< merged over all replications
  int replications = 0;
};

/// Pluggable result sink.
class Reporter {
 public:
  virtual ~Reporter() = default;
  virtual void report(const ExperimentResult& result, std::ostream& os) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Aligned terminal table (TablePrinter): metric, count, mean, sd, min, max.
class TableReporter final : public Reporter {
 public:
  void report(const ExperimentResult& result, std::ostream& os) const override;
  [[nodiscard]] std::string name() const override { return "table"; }
};

/// RFC-4180-ish CSV with a header row; first column is the config string.
class CsvReporter final : public Reporter {
 public:
  void report(const ExperimentResult& result, std::ostream& os) const override;
  [[nodiscard]] std::string name() const override { return "csv"; }
};

/// One JSON object: {"config": {...}, "replications": N, "metrics": {...}}.
/// Doubles print with round-trip precision, so equal runs emit equal bytes.
class JsonReporter final : public Reporter {
 public:
  void report(const ExperimentResult& result, std::ostream& os) const override;
  [[nodiscard]] std::string name() const override { return "json"; }
};

using ReporterFactory = std::function<std::unique_ptr<Reporter>()>;

/// The process-wide reporter registry (the `report=` axis) — the same
/// NamedRegistry scheme as every other pluggable component.  Built-ins:
/// table, csv, json.
NamedRegistry<ReporterFactory>& reporter_registry();

/// table / csv / json; throws ConfigError with the registered names (and a
/// did-you-mean suggestion) on anything else.
std::unique_ptr<Reporter> make_reporter(const std::string& name);

class ExperimentRunner {
 public:
  explicit ExperimentRunner(Config config);

  [[nodiscard]] const Config& config() const { return config_; }

  /// A fully-built static environment: mesh + faults injected + information
  /// constructions converged.
  struct StaticEnv {
    std::unique_ptr<Network> net;
    std::vector<Coord> faults;
    ConstructionRounds rounds;
    [[nodiscard]] const MeshTopology& mesh() const { return net->mesh(); }
  };
  [[nodiscard]] StaticEnv build_static(Rng& rng) const;

  /// A fully-built dynamic environment: schedule realized per config and
  /// (with `run_warmup`) `warmup_steps` already stepped.  Traffic runs pass
  /// run_warmup=false because the workload injects during its own warmup.
  struct DynamicEnv {
    std::unique_ptr<MeshTopology> mesh;
    FaultSchedule schedule;
    std::unique_ptr<DynamicSimulation> sim;
  };
  [[nodiscard]] DynamicEnv build_dynamic(Rng& rng, bool run_warmup = true) const;

  /// The configured router (from the registry) and its information mode.
  [[nodiscard]] std::unique_ptr<Router> make_router() const;
  [[nodiscard]] InfoMode info_mode() const;

  /// Deterministic replication fan-out: runs `body(rng, metrics)` once per
  /// replication (Rng(seed).fork(rep)), merging per-replication metrics in
  /// replication order.  `threads` > 0 uses a private pool of that size.
  ExperimentResult run_each(const std::function<void(Rng&, MetricSet&)>& body) const;

  /// run_each with the static environment already built per replication.
  ExperimentResult run_each_static(
      const std::function<void(StaticEnv&, Rng&, MetricSet&)>& body) const;

  /// The standard scenario: per replication, build the configured
  /// environment, route `routes` random pairs with the configured router,
  /// and record delivery / steps / detours / backtracks (+ environment
  /// metrics).  mode=static routes over the frozen field; mode=dynamic
  /// launches the messages into the step loop.  With traffic != none the
  /// TrafficWorkload engine runs instead: open-loop injection per the
  /// pattern, with latency / throughput / stall metrics (README "Traffic
  /// workloads").
  [[nodiscard]] ExperimentResult run() const;

  /// run() + report through the configured reporter.
  ExperimentResult run_and_report(std::ostream& os) const;

 private:
  void run_one_static(Rng& rng, MetricSet& out) const;
  void run_one_dynamic(Rng& rng, MetricSet& out) const;
  void run_one_traffic(Rng& rng, MetricSet& out) const;

  Config config_;
};

}  // namespace lgfi
