#pragma once
// The declarative experiment surface.
//
// An ExperimentRunner takes a Config (schema: experiment_config()), builds
// the mesh / network / fault schedule / router it describes, fans the
// replications over the thread pool, and reports the collected metrics
// through a pluggable Reporter.  One config line reproduces any run:
//
//   Config cfg = experiment_config();
//   cfg.parse_string("mesh_dims=3 radix=10 router=fault_info faults=18 "
//                    "replications=200 seed=7");
//   ExperimentRunner(cfg).run_and_report(std::cout);
//
// Replication fan-out is deterministic *and* schedule-independent: each
// replication gets Rng(seed).fork(rep) and its own MetricSet, and the
// per-replication sets are merged in replication order, so results are
// byte-identical for any thread count.
//
// Benches with bespoke measurements keep their own tables but reuse the
// environment construction: build_static()/build_dynamic() turn the config
// into a ready simulator, and run_each()/run_each_static() provide the
// deterministic replication fan-out.

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/dynamic_simulation.h"
#include "src/core/experiment.h"
#include "src/core/named_registry.h"
#include "src/core/network.h"
#include "src/sim/fault_schedule.h"

namespace lgfi {

/// The standard experiment schema: every key with a typed default and help
/// line.  `Config::help()` prints the grammar; see README.md for the table.
Config experiment_config();

struct ExperimentResult {
  Config config;       ///< the exact configuration that produced the metrics
  MetricSet metrics;   ///< merged over all replications
  int replications = 0;
};

struct Campaign;     // campaign.h: the sweep description a sink is begun with
struct PointResult;  // campaign.h: one grid point's swept labels + result

/// Pluggable result sink with a streaming lifecycle: begin(campaign) once,
/// add(point) once per grid point *in grid order*, end() once — so csv can
/// emit one header plus one row per point, json one array, and table one
/// grid keyed by the swept axes.  For a single run (a campaign with no swept
/// axis) every built-in reporter reproduces the historical per-result output
/// byte for byte.
class Reporter {
 public:
  virtual ~Reporter() = default;
  virtual void begin(const Campaign& campaign, std::ostream& os) = 0;
  virtual void add(const PointResult& point) = 0;
  virtual void end() = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Single-result convenience: begin/add/end over the 1-point no-axis
  /// campaign (the historical `report(result, os)` surface).
  void report(const ExperimentResult& result, std::ostream& os);
};

/// Buffered campaign state shared by the table/csv reporters: one row of
/// swept values + per-metric means per point, rendered in end() against the
/// sorted union of metric names over all points (so a heterogeneous grid —
/// e.g. switching=[ideal,wormhole] — keeps every column; absent metrics
/// render as empty cells).
struct BufferedCampaignRows {
  struct Row {
    std::vector<std::string> swept;
    std::map<std::string, double> means;
    /// 95% CI half-widths per metric; NaN when the point has < 2 samples.
    /// Only the csv_ci reporter renders these (as empty fields when NaN).
    std::map<std::string, double> ci95;
  };

  void clear();
  void add(const PointResult& point);

  std::vector<std::string> axis_keys;
  std::vector<std::string> metric_names;  ///< sorted union over added points
  std::vector<Row> rows;
};

/// Aligned terminal table.  Single run: metric, count, mean, sd, min, max.
/// Campaign: one aligned grid — swept keys as leading columns, then the
/// mean of every metric, one row per point, rendered in end().
class TableReporter final : public Reporter {
 public:
  void begin(const Campaign& campaign, std::ostream& os) override;
  void add(const PointResult& point) override;
  void end() override;
  [[nodiscard]] std::string name() const override { return "table"; }

 private:
  std::ostream* os_ = nullptr;
  bool single_ = true;
  BufferedCampaignRows buffer_;
};

/// RFC-4180-ish CSV.  Single run: one row per metric, first column the
/// config string.  Campaign: the full base config once in a "# config:"
/// comment, then one header and one row per point — swept keys as leading
/// columns, then the mean of every metric.  The metric columns are the
/// sorted union over all points (a switching=[ideal,wormhole] sweep keeps
/// the wormhole-only columns), so the header and rows are written in end();
/// round-trip doubles, so equal campaigns emit equal bytes.
class CsvReporter final : public Reporter {
 public:
  void begin(const Campaign& campaign, std::ostream& os) override;
  void add(const PointResult& point) override;
  void end() override;
  [[nodiscard]] std::string name() const override { return "csv"; }

 private:
  std::ostream* os_ = nullptr;
  bool single_ = true;
  BufferedCampaignRows buffer_;
};

/// CSV with per-metric 95% confidence intervals (the reliability-campaign
/// reporter).  Single run: the csv layout plus a ci95 column.  Campaign:
/// the csv layout with a `<metric>_ci95` column after every metric column.
/// A CI that does not exist — fewer than two replications — renders as an
/// *empty* field, never a literal "nan" token; the historical `csv`
/// reporter stays byte-identical by living in its own class.
class CsvCiReporter final : public Reporter {
 public:
  void begin(const Campaign& campaign, std::ostream& os) override;
  void add(const PointResult& point) override;
  void end() override;
  [[nodiscard]] std::string name() const override { return "csv_ci"; }

 private:
  std::ostream* os_ = nullptr;
  bool single_ = true;
  BufferedCampaignRows buffer_;
};

/// JSON.  Single run: one object {"config": {...}, "replications": N,
/// "metrics": {...}}.  Campaign: one array with one
/// {"swept": {...}, "replications": N, "metrics": {...}} object per point
/// (the point config is base + swept; campaign-level keys like `threads`
/// are deliberately absent, so equal campaigns emit equal bytes whatever
/// the thread count).  Doubles print with round-trip precision.
class JsonReporter final : public Reporter {
 public:
  void begin(const Campaign& campaign, std::ostream& os) override;
  void add(const PointResult& point) override;
  void end() override;
  [[nodiscard]] std::string name() const override { return "json"; }

 private:
  std::ostream* os_ = nullptr;
  bool single_ = true;
  bool first_ = true;
};

using ReporterFactory = std::function<std::unique_ptr<Reporter>()>;

/// The process-wide reporter registry (the `report=` axis) — the same
/// NamedRegistry scheme as every other pluggable component.  Built-ins:
/// table, csv, json.
NamedRegistry<ReporterFactory>& reporter_registry();

/// table / csv / json; throws ConfigError with the registered names (and a
/// did-you-mean suggestion) on anything else.
std::unique_ptr<Reporter> make_reporter(const std::string& name);

class ExperimentRunner {
 public:
  explicit ExperimentRunner(Config config);

  [[nodiscard]] const Config& config() const { return config_; }

  /// A fully-built static environment: mesh + faults injected + information
  /// constructions converged.
  struct StaticEnv {
    std::unique_ptr<Network> net;
    std::vector<Coord> faults;
    ConstructionRounds rounds;
    [[nodiscard]] const Topology& mesh() const { return net->mesh(); }
  };
  [[nodiscard]] StaticEnv build_static(Rng& rng) const;

  /// A fully-built dynamic environment: schedule realized per config and
  /// (with `run_warmup`) `warmup_steps` already stepped.  Traffic runs pass
  /// run_warmup=false because the workload injects during its own warmup.
  struct DynamicEnv {
    std::unique_ptr<Topology> mesh;
    FaultSchedule schedule;
    std::unique_ptr<DynamicSimulation> sim;
  };
  [[nodiscard]] DynamicEnv build_dynamic(Rng& rng, bool run_warmup = true) const;

  /// The configured router (from the registry) and its information mode.
  [[nodiscard]] std::unique_ptr<Router> make_router() const;
  [[nodiscard]] InfoMode info_mode() const;

  /// Deterministic replication fan-out: runs `body(rng, metrics)` once per
  /// replication (Rng(seed).fork(rep)), merging per-replication metrics in
  /// replication order.  `threads` > 0 uses a private pool of that size.
  ExperimentResult run_each(const std::function<void(Rng&, MetricSet&)>& body) const;

  /// run_each with the static environment already built per replication.
  ExperimentResult run_each_static(
      const std::function<void(StaticEnv&, Rng&, MetricSet&)>& body) const;

  /// One replication of the standard scenario (the traffic / static /
  /// dynamic dispatch run() fans out).  CampaignRunner schedules these as
  /// point x replication tasks on one pool.
  void run_replication(Rng& rng, MetricSet& out) const;

  /// The standard scenario: per replication, build the configured
  /// environment, route `routes` random pairs with the configured router,
  /// and record delivery / steps / detours / backtracks (+ environment
  /// metrics).  mode=static routes over the frozen field; mode=dynamic
  /// launches the messages into the step loop.  With traffic != none the
  /// TrafficWorkload engine runs instead: open-loop injection per the
  /// pattern, with latency / throughput / stall metrics (README "Traffic
  /// workloads").
  [[nodiscard]] ExperimentResult run() const;

  /// run() + report through the configured reporter.
  ExperimentResult run_and_report(std::ostream& os) const;

 private:
  void run_one_static(Rng& rng, MetricSet& out) const;
  void run_one_dynamic(Rng& rng, MetricSet& out) const;
  void run_one_traffic(Rng& rng, MetricSet& out) const;

  Config config_;
};

}  // namespace lgfi
