#pragma once
// Open-loop traffic driver for the contention-aware step pipeline.
//
// The standard interconnect measurement methodology: every node injects
// messages by an independent Bernoulli process of rate `injection_rate`
// (messages per node per step), destinations drawn from a TrafficPattern,
// and the run is split into three phases:
//
//   warmup   inject but do not measure (fills the network to steady state)
//   measure  inject and tag; tagged messages are the statistics population
//   drain    stop injecting; run until every message finished (capped)
//
// Per tagged message the workload records latency (end - start steps,
// stalls included) into an exact histogram, plus stall counts; per run it
// reports offered load and accepted throughput in messages/node/step.  The
// whole process draws from one replication-private Rng, so results are
// deterministic and thread-count independent (DESIGN.md §9).
//
// Optionally, `probes` single messages are launched at the start of the
// measurement window and reported separately — with injection_rate=0 this
// reduces exactly to the historical single-message dynamic experiment, which
// is how the Theorem 3-5 regime stays reachable from the traffic surface.

#include <vector>

#include "src/core/dynamic_simulation.h"
#include "src/sim/statistics.h"
#include "src/sim/traffic_pattern.h"

namespace lgfi {

struct TrafficWorkloadOptions {
  double injection_rate = 0.02;  ///< per-node per-step Bernoulli probability
  long long warmup_steps = 0;
  long long measure_steps = 1000;
  /// Cap on the drain phase; 0 derives the per-message step-budget safety
  /// net (4 * 2n * N).
  long long drain_steps = 0;
  int probes = 0;                ///< single messages launched at measure start
  int min_probe_distance = 1;    ///< minimum D(s, d) of probe pairs
};

struct TrafficResult {
  long long offered = 0;    ///< Bernoulli firings in the measurement window
  long long injected = 0;   ///< messages actually launched (all phases)
  long long measured = 0;   ///< tagged messages (measurement window)
  long long measured_delivered = 0;
  long long measured_unreachable = 0;
  long long measured_exhausted = 0;   ///< hit the per-message step budget
  long long measured_unfinished = 0;  ///< still in flight at the drain cap
  long long stall_steps = 0;          ///< total stalls of tagged messages
  IntHistogram latency;               ///< per delivered tagged message (tail)
  /// Flit-level switching only (empty under ideal): head-flit arrival
  /// latency and the serialization tail (delivery - head arrival), per
  /// delivered tagged message.  `latency` above is the tail latency, so
  /// latency == head_latency + serialization sample-by-sample.
  IntHistogram head_latency;
  IntHistogram serialization;
  double offered_load = 0.0;          ///< offered / (measure_steps * N)
  double accepted_throughput = 0.0;   ///< delivered tagged / (measure_steps * N)
  long long steps_run = 0;            ///< total steps across all three phases
  std::vector<int> probe_ids;         ///< message ids of the probes
  std::vector<int> measured_ids;      ///< message ids of the tagged population
};

class TrafficWorkload {
 public:
  /// Drives `sim` (typically built with link_arbitration on).  `pattern` and
  /// `rng` must outlive run().
  TrafficWorkload(DynamicSimulation& sim, TrafficPattern& pattern,
                  TrafficWorkloadOptions options, Rng& rng);

  TrafficResult run();

 private:
  /// One injection sweep over the nodes (ascending id, one Bernoulli draw
  /// each — the rng stream layout is fixed, so runs are reproducible).
  void inject(bool measured, TrafficResult& result);

  DynamicSimulation* sim_;
  TrafficPattern* pattern_;
  TrafficWorkloadOptions options_;
  Rng* rng_;
};

}  // namespace lgfi
