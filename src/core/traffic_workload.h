#pragma once
// Traffic driver for the contention-aware step pipeline.
//
// Every terminal offers messages according to a pluggable InjectionProcess
// (`injection=` axis — Bernoulli open loop by default, on/off bursts, batch
// mode, closed-loop request-reply, trace replay), destinations drawn from a
// TrafficPattern, and the run is split into three phases:
//
//   warmup   inject but do not measure (fills the network to steady state)
//   measure  inject and tag; tagged messages are the statistics population
//   drain    stop injecting; run until every message finished (capped)
//
// Per tagged message the workload records latency (end - start steps,
// stalls included) into an exact histogram, plus stall counts; per run it
// reports offered load and accepted throughput in messages/node/step.  The
// whole process draws from one replication-private Rng, so results are
// deterministic and thread-count independent (DESIGN.md §9).
//
// Under a closed-loop process the workload additionally runs the
// request-reply protocol: when a request is delivered, a reply is launched
// from the destination back to the source, the measurement population is
// completed *pairs*, and pair latency spans request start to reply delivery
// (DESIGN.md §15).
//
// With `trace_record` set, every primary injection (not replies) is
// serialized to a compact binary trace replayable via `injection=trace`.
//
// Optionally, `probes` single messages are launched at the start of the
// measurement window and reported separately — with injection_rate=0 this
// reduces exactly to the historical single-message dynamic experiment, which
// is how the Theorem 3-5 regime stays reachable from the traffic surface.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/dynamic_simulation.h"
#include "src/sim/injection_process.h"
#include "src/sim/statistics.h"
#include "src/sim/trace_io.h"
#include "src/sim/traffic_pattern.h"

namespace lgfi {

struct TrafficWorkloadOptions {
  double injection_rate = 0.02;  ///< per-node per-step Bernoulli probability
  long long warmup_steps = 0;
  long long measure_steps = 1000;
  /// Cap on the drain phase; 0 derives the per-message step-budget safety
  /// net (4 * 2n * N).
  long long drain_steps = 0;
  int probes = 0;                ///< single messages launched at measure start
  int min_probe_distance = 1;    ///< minimum D(s, d) of probe pairs
  std::string trace_record;      ///< non-empty: serialize injections here
  int trace_packet_size = 1;     ///< flits per packet stamped into the trace
};

struct TrafficResult {
  long long offered = 0;    ///< injection-process firings in the measurement window
  long long injected = 0;   ///< messages actually launched (all phases)
  long long measured = 0;   ///< tagged messages/pairs (measurement window)
  long long measured_delivered = 0;
  long long measured_unreachable = 0;
  long long measured_exhausted = 0;   ///< hit the per-message step budget
  long long measured_unfinished = 0;  ///< still in flight at the drain cap
  long long stall_steps = 0;          ///< total stalls of tagged messages
  IntHistogram latency;               ///< per delivered tagged message (tail)
  /// Flit-level switching only (empty under ideal): head-flit arrival
  /// latency and the serialization tail (delivery - head arrival), per
  /// delivered tagged message.  `latency` above is the tail latency, so
  /// latency == head_latency + serialization sample-by-sample.  Closed-loop
  /// pairs span two messages, so both stay empty there.
  IntHistogram head_latency;
  IntHistogram serialization;
  double offered_load = 0.0;          ///< offered / (measure_steps * N)
  double accepted_throughput = 0.0;   ///< delivered tagged / (measure_steps * N)
  long long steps_run = 0;            ///< total steps across all three phases
  std::vector<int> probe_ids;         ///< message ids of the probes
  std::vector<int> measured_ids;      ///< message ids of the tagged population
};

class TrafficWorkload {
 public:
  /// Historical form: open-loop Bernoulli at options.injection_rate —
  /// byte-identical to the pre-axis workload.  `pattern` and `rng` must
  /// outlive run().
  TrafficWorkload(DynamicSimulation& sim, TrafficPattern& pattern,
                  TrafficWorkloadOptions options, Rng& rng);

  /// Injection-process form: `process` decides when each terminal offers a
  /// packet; must outlive run() (as must `pattern` and `rng`).
  TrafficWorkload(DynamicSimulation& sim, TrafficPattern& pattern, InjectionProcess& process,
                  TrafficWorkloadOptions options, Rng& rng);

  TrafficResult run();

 private:
  /// A closed-loop request-reply pair, keyed first by the request id, then
  /// (once the reply launches) by the reply id.
  struct PairState {
    int slot = 0;
    bool measured = false;
    long long start_step = 0;       ///< request launch step
    long long request_stalls = 0;   ///< filled when the reply launches
  };

  /// One injection sweep over the terminal slots (ascending, one fire()
  /// consult each — the rng stream layout is fixed, so runs are
  /// reproducible).
  void inject(bool measured, TrafficResult& result);

  /// After every sim step: closed-loop bookkeeping (launch replies for
  /// delivered requests, settle completed pairs).  No-op for open loop.
  void post_step(TrafficResult& result);

  /// The pair ended without a delivered reply: frees the window entry and
  /// classifies the tagged outcome by the failing message (`msg` null when
  /// the reply could not even launch — counted unreachable).
  void fail_pair(const PairState& pair, const MessageProgress* msg, TrafficResult& result);

  DynamicSimulation* sim_;
  TrafficPattern* pattern_;
  TrafficWorkloadOptions options_;
  Rng* rng_;
  std::unique_ptr<InjectionProcess> owned_process_;  ///< legacy-ctor bernoulli
  InjectionProcess* process_;
  std::unique_ptr<TraceWriter> trace_;

  // Closed-loop state (unused for open-loop processes).
  std::vector<int> inflight_;             ///< request/reply ids still flying
  std::map<int, PairState> requests_;     ///< request id -> pair
  std::map<int, PairState> replies_;      ///< reply id -> pair (request done)
};

}  // namespace lgfi
