#include "src/core/topology_registry.h"

#include <sstream>

namespace lgfi {

namespace {

std::vector<int> config_extents(const Config& config) {
  const std::string spec = config.defined("extents") ? config.get_str("extents") : "";
  return parse_extents_spec(spec, static_cast<int>(config.get_int("mesh_dims")),
                            static_cast<int>(config.get_int("radix")));
}

int config_concentration(const Config& config) {
  const int c =
      config.defined("concentration") ? static_cast<int>(config.get_int("concentration")) : 1;
  if (c < 1) throw ConfigError("concentration must be >= 1");
  return c;
}

/// mesh and torus have exactly one terminal per router; a stray
/// concentration=4 on them would silently change load normalization, so it
/// is rejected instead of ignored.
void reject_concentration(const Config& config, const std::string& name) {
  if (config_concentration(config) != 1)
    throw ConfigError("concentration > 1 requires topology=cmesh (got topology=" + name + ")");
}

NamedRegistry<TopologyFactory> build_registry() {
  NamedRegistry<TopologyFactory> r("topology");
  r.add(
      "mesh",
      [](const Config& config) -> std::unique_ptr<Topology> {
        reject_concentration(config, "mesh");
        return std::make_unique<MeshTopology>(config_extents(config));
      },
      {"k-ary n-D mesh, the paper's substrate (no wraparound)",
       {"mesh_dims", "radix", "extents"}});
  r.add(
      "torus",
      [](const Config& config) -> std::unique_ptr<Topology> {
        reject_concentration(config, "torus");
        return std::make_unique<TorusTopology>(config_extents(config));
      },
      {"k-ary n-D torus: wraparound channels, no outer surface",
       {"mesh_dims", "radix", "extents"}});
  r.add(
      "cmesh",
      [](const Config& config) -> std::unique_ptr<Topology> {
        return std::make_unique<CMeshTopology>(config_extents(config),
                                               config_concentration(config));
      },
      {"concentrated mesh: `concentration` terminals share each router",
       {"mesh_dims", "radix", "extents", "concentration"}});
  return r;
}

}  // namespace

NamedRegistry<TopologyFactory>& topology_registry() {
  static NamedRegistry<TopologyFactory> registry = build_registry();
  return registry;
}

std::unique_ptr<Topology> make_topology(const Config& config) {
  const std::string name = config.defined("topology") ? config.get_str("topology") : "mesh";
  return topology_registry().require(name)(config);
}

std::vector<int> parse_extents_spec(const std::string& spec, int mesh_dims, int radix) {
  if (spec.empty()) return std::vector<int>(static_cast<size_t>(mesh_dims), radix);
  // Same hardening as parse_box_spec: every token must consume fully
  // (std::stoi("16x") happily returns 16) and a trailing comma is a typo,
  // not an empty dimension.
  if (spec.back() == ',')
    throw ConfigError("bad extents '" + spec + "' (trailing comma)");
  std::vector<int> extents;
  std::istringstream is(spec);
  std::string token;
  while (std::getline(is, token, ',')) {
    size_t used = 0;
    int v = 0;
    try {
      v = std::stoi(token, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used == 0 || used != token.size() || v < 1)
      throw ConfigError("bad extents token '" + token + "' in '" + spec +
                        "' (want a comma list of positive integers, e.g. 16,4,4)");
    extents.push_back(v);
  }
  if (extents.empty() || extents.size() > static_cast<size_t>(kMaxDims))
    throw ConfigError("bad extents '" + spec + "' (want 1.." + std::to_string(kMaxDims) +
                      " dimensions)");
  return extents;
}

}  // namespace lgfi
