#pragma once
// The dynamic fault model's step loop (Section 5, Figure 7), structured as a
// phased pipeline (DESIGN.md §7).
//
// At each step, every node: (1) detects adjacent faults/recoveries scheduled
// for this step; (2) collects and distributes the three kinds of fault
// information — block, identifying, boundary — through lambda rounds of
// exchanges, each advancing one hop; (3) receives at most one routing
// message, makes a routing decision, and sends it one hop.  Thus every
// routing message advances one hop per step while the information model
// converges around it — the regime Theorems 3-5 bound.
//
// step() composes three explicit phases over a shared StepContext:
//
//   apply_fault_events      fault detection, occurrence bookkeeping
//   run_information_rounds  lambda rounds of the three constructions
//   arbitrate_and_advance   routing decisions + channel traversal
//
// The advance phase is delegated to a pluggable SwitchingModel (DESIGN.md
// §10): `ideal` (the default) is the historical single-flit behavior — with
// options.link_arbitration it is contention-aware (at most one message per
// directed channel per step, LinkArbiter, DESIGN.md §8; losers stall in the
// holding node's FIFO and retry), without it it is the paper's
// contention-free idealization, byte-identical to the historical loop.
// `wormhole` serializes packets into flits under virtual-channel flow
// control (src/sim/wormhole_switching.h).  DynamicSimulation implements the
// SwitchingHost callbacks, keeping headers, budgets and per-message
// accounting here while the model owns channel occupancy.
//
// The simulation also records the quantities of Table 1: occurrence times
// t_i, per-occurrence convergence rounds a_i (labeling), b_i
// (identification), c_i (boundary), e_max, and per-message D(i) snapshots.

#include <memory>
#include <vector>

#include "src/core/network.h"
#include "src/core/step_context.h"
#include "src/mesh/link_fault_mask.h"
#include "src/routing/detour_bounds.h"
#include "src/routing/global_table_router.h"
#include "src/routing/oracle_router.h"
#include "src/routing/router_registry.h"
#include "src/sim/fault_schedule.h"
#include "src/sim/fault_timeline.h"
#include "src/sim/link_arbiter.h"
#include "src/sim/switching_model.h"

namespace lgfi {

struct DynamicSimulationOptions {
  int lambda = 1;  ///< information rounds per routing step (Section 5's lambda)
  InfoMode info_mode = InfoMode::kLimitedGlobal;
  /// Registered router name; "auto" pairs the historical router with
  /// info_mode (fault_info / no_info / global_table).
  std::string router = "auto";
  /// Router-level options (oracle_avoid, ecube_strict, ...) forwarded to the
  /// registry factory; an empty config means router defaults.
  Config router_config;
  bool persistent_marks = false;      ///< header ablation (DESIGN.md §6.7)
  /// Contention-aware advance phase: at most one message per directed
  /// channel per step (DESIGN.md §8).  Off = the Figure 7 idealization.
  /// Flit-level switching models arbitrate regardless.
  bool link_arbitration = false;
  /// Registered switching model (DESIGN.md §10): ideal | wormhole.
  std::string switching = "ideal";
  int num_vcs = 2;           ///< wormhole: virtual channels per directed channel
  int vc_buffer_depth = 4;   ///< wormhole: flit buffer depth per VC
  int flits_per_packet = 4;  ///< wormhole: flits per packet (head + body + tail)
  DistributedModelOptions model;
  long long step_budget_per_message = 0;  ///< 0: 4 * 2n * N safety net
};

/// One routing message progressing through the dynamic system.
struct MessageProgress {
  int id = 0;
  RoutingHeader header;
  bool delivered = false;
  bool unreachable = false;
  bool budget_exhausted = false;
  long long start_step = 0;    ///< the paper's t
  long long end_step = -1;
  int initial_distance = 0;    ///< D
  int detour_preferred_taken = 0;
  /// Steps spent waiting for a contended channel (link_arbitration only);
  /// latency = moves + stalls, so end_step - start_step ==
  /// header.total_steps() + stall_steps for a delivered message under the
  /// ideal switching model (wormhole adds flit-serialization steps).
  int stall_steps = 0;
  /// Wormhole switching: step at which the head flit reached the
  /// destination (delivery happens when the tail ejects); -1 under ideal
  /// switching, where head arrival *is* delivery.
  long long head_arrival_step = -1;
  /// D(i) at each fault occurrence (Theorem 3's measured trajectory);
  /// parallel to occurrence_steps() of the simulation.
  std::vector<int> distance_at_occurrence;

  /// `min_distance` is the topology's fault-free min_hops(s, d) — the
  /// baseline detours() measures against.
  MessageProgress(int id_, const Coord& s, const Coord& d, int min_distance)
      : id(id_), header(s, d), initial_distance(min_distance) {}

  [[nodiscard]] bool done() const { return delivered || unreachable || budget_exhausted; }

  /// Extra steps beyond the fault-free minimum once delivered.
  [[nodiscard]] long long detours() const {
    return header.total_steps() - initial_distance;
  }
};

/// Per-fault-occurrence convergence record (the a_i, b_i, c_i of Table 1).
struct OccurrenceRecord {
  long long step = 0;      ///< t_i
  Coord origin;            ///< site of the change (first event of the occurrence)
  int rounds_labeling = 0;       ///< a_i (in rounds)
  int rounds_identification = 0; ///< b_i
  int rounds_boundary = 0;       ///< c_i
  int e_max_after = 0;           ///< max block edge once stabilized
  bool stabilized_before_next = true;
};

class DynamicSimulation final : public SwitchingHost {
 public:
  /// Lifecycle form: the timeline heap drives the fault phase directly
  /// (O(log events) per step regardless of schedule length, DESIGN.md §17).
  DynamicSimulation(const Topology& mesh, FaultTimeline timeline,
                    DynamicSimulationOptions options = {});
  /// Static-schedule form (every historical fault model): converts to a
  /// timeline, order preserved — byte-identical trajectories.
  DynamicSimulation(const Topology& mesh, const FaultSchedule& schedule,
                    DynamicSimulationOptions options = {});

  /// Injects a routing message at `source` toward `dest`; it advances one
  /// hop per subsequent step.  Returns the message id.
  int launch_message(const Coord& source, const Coord& dest);

  // --- the phased pipeline (DESIGN.md §7) ---------------------------------
  /// Opens a step: a StepContext carrying the step number.
  [[nodiscard]] StepContext begin_step();
  /// Phase 1: fault detection — applies the schedule's events for this step
  /// and opens the occurrence record.
  void apply_fault_events(StepContext& ctx);
  /// Phase 2: lambda rounds of the three information constructions, plus
  /// convergence bookkeeping and (delayed-global) snapshot publication.
  void run_information_rounds(StepContext& ctx);
  /// Phase 3: routing decisions for every in-flight message, then channel
  /// traversal — arbitrated per directed channel when link_arbitration is
  /// on, unconditional otherwise.  Builds ctx.routing on entry.
  void arbitrate_and_advance(StepContext& ctx);
  /// Closes the step (advances the clock).
  void end_step(StepContext& ctx);

  /// Runs one step of the Figure 7 loop — the composed pipeline.
  void step();

  /// Runs until all messages finished and the schedule is exhausted (with a
  /// hard step cap).
  void run(long long max_steps = 1 << 20);

  [[nodiscard]] long long now() const { return now_; }
  [[nodiscard]] const std::vector<MessageProgress>& messages() const { return messages_; }
  [[nodiscard]] const MessageProgress& message(int id) const {
    return messages_[static_cast<size_t>(id)];
  }
  [[nodiscard]] const std::vector<OccurrenceRecord>& occurrences() const {
    return occurrences_;
  }
  [[nodiscard]] const DistributedFaultModel& model() const { return model_; }
  [[nodiscard]] const Topology& mesh() const { return *mesh_; }
  /// The directed-channel fault state (lifecycle_links); empty otherwise.
  [[nodiscard]] const LinkFaultMask& link_faults() const { return link_faults_; }
  /// Step of the first message declared unreachable, or -1 if none was —
  /// the time-to-first-unreachable reliability metric (E17).
  [[nodiscard]] long long first_unreachable_step() const { return first_unreachable_step_; }
  /// Resident bytes of the fault machinery: protocol state plus the
  /// lifecycle timeline heap and the link-fault mask (pinned alongside the
  /// model's own accounting by the quiescent-step bench).
  [[nodiscard]] long long memory_bytes() const {
    return model_.memory_bytes() + timeline_.memory_bytes() + link_faults_.memory_bytes();
  }
  /// The delayed-global provider, or null unless info_mode=kDelayedGlobal.
  [[nodiscard]] const DelayedGlobalInfoProvider* delayed_provider() const {
    return delayed_provider_.get();
  }

  /// Messages launched but not yet delivered/unreachable/budget-exhausted.
  /// Maintained incrementally, so the run() loop's termination test is O(1)
  /// even with thousands of injected messages.
  [[nodiscard]] long long active_messages() const { return active_messages_; }
  [[nodiscard]] bool all_messages_done() const { return active_messages_ == 0; }

  /// Total channel-traversal requests denied by arbitration so far.
  [[nodiscard]] long long total_stalls() const {
    return arbiter_ ? arbiter_->total_stalled() : 0;
  }

  /// The switching model executing the advance phase (DESIGN.md §10).
  [[nodiscard]] const SwitchingModel& switching() const { return *switching_; }
  [[nodiscard]] SwitchingModel& switching() { return *switching_; }

  /// Builds the Theorem 3/4/5 timeline from the recorded occurrences (a_i in
  /// steps, i.e. ceil(rounds / lambda)).
  [[nodiscard]] DynamicFaultTimeline timeline(long long route_start) const;

  // --- SwitchingHost (called by the model during arbitrate_and_advance) ----
  [[nodiscard]] SwitchDecision decide(int id) override;
  MoveResult commit_move(int id, const SwitchDecision& decision) override;
  void finish(int id, PacketOutcome outcome) override;
  void count_stall(int id) override;
  void record_head_arrival(int id) override;
  void count_flit_moves(int n) override;
  [[nodiscard]] bool node_faulty(NodeId node) const override;
  [[nodiscard]] bool link_faulty(NodeId from, Direction dir) const override;
  [[nodiscard]] uint64_t field_version() const override;

 private:
  [[nodiscard]] RoutingContext context() const;
  void finish_message(MessageProgress& msg, StepContext& ctx);

  const Topology* mesh_;
  FaultTimeline timeline_;
  LinkFaultMask link_faults_;
  DynamicSimulationOptions options_;
  DistributedFaultModel model_;
  StoreInfoProvider limited_provider_;
  EmptyInfoProvider empty_provider_;
  GlobalInfoProvider instant_provider_;
  std::unique_ptr<DelayedGlobalInfoProvider> delayed_provider_;
  std::unique_ptr<Router> router_;
  std::unique_ptr<SwitchingModel> switching_;
  std::unique_ptr<LinkArbiter> arbiter_;  ///< present iff switching_->arbitrated()

  std::vector<MessageProgress> messages_;
  std::vector<OccurrenceRecord> occurrences_;
  long long now_ = 0;
  long long active_messages_ = 0;
  long long first_unreachable_step_ = -1;
  /// Open occurrence currently converging (index into occurrences_), or -1.
  int converging_ = -1;
  /// Host-callback context, valid only inside arbitrate_and_advance.
  StepContext* step_ctx_ = nullptr;
  long long step_budget_ = 0;
};

}  // namespace lgfi
