#pragma once
// The dynamic fault model's step loop (Section 5, Figure 7).
//
// At each step, every node: (1) detects adjacent faults/recoveries scheduled
// for this step; (2) collects and distributes the three kinds of fault
// information — block, identifying, boundary — through lambda rounds of
// exchanges, each advancing one hop; (3) receives at most one routing
// message, makes a routing decision, and sends it one hop.  Thus every
// routing message advances one hop per step while the information model
// converges around it — the regime Theorems 3-5 bound.
//
// The simulation also records the quantities of Table 1: occurrence times
// t_i, per-occurrence convergence rounds a_i (labeling), b_i
// (identification), c_i (boundary), e_max, and per-message D(i) snapshots.

#include <memory>
#include <vector>

#include "src/core/network.h"
#include "src/routing/detour_bounds.h"
#include "src/routing/global_table_router.h"
#include "src/routing/oracle_router.h"
#include "src/routing/router_registry.h"
#include "src/sim/fault_schedule.h"

namespace lgfi {

struct DynamicSimulationOptions {
  int lambda = 1;  ///< information rounds per routing step (Section 5's lambda)
  InfoMode info_mode = InfoMode::kLimitedGlobal;
  /// Registered router name; "auto" pairs the historical router with
  /// info_mode (fault_info / no_info / global_table).
  std::string router = "auto";
  /// Router-level options (oracle_avoid, ecube_strict, ...) forwarded to the
  /// registry factory; an empty config means router defaults.
  Config router_config;
  bool persistent_marks = false;      ///< header ablation (DESIGN.md §6.7)
  DistributedModelOptions model;
  long long step_budget_per_message = 0;  ///< 0: 4 * 2n * N safety net
};

/// One routing message progressing through the dynamic system.
struct MessageProgress {
  int id = 0;
  RoutingHeader header;
  bool delivered = false;
  bool unreachable = false;
  bool budget_exhausted = false;
  long long start_step = 0;    ///< the paper's t
  long long end_step = -1;
  int initial_distance = 0;    ///< D
  int detour_preferred_taken = 0;
  /// D(i) at each fault occurrence (Theorem 3's measured trajectory);
  /// parallel to occurrence_steps() of the simulation.
  std::vector<int> distance_at_occurrence;

  MessageProgress(int id_, const Coord& s, const Coord& d)
      : id(id_), header(s, d), initial_distance(manhattan_distance(s, d)) {}

  /// Extra steps beyond the fault-free minimum once delivered.
  [[nodiscard]] long long detours() const {
    return header.total_steps() - initial_distance;
  }
};

/// Per-fault-occurrence convergence record (the a_i, b_i, c_i of Table 1).
struct OccurrenceRecord {
  long long step = 0;      ///< t_i
  int rounds_labeling = 0;       ///< a_i (in rounds)
  int rounds_identification = 0; ///< b_i
  int rounds_boundary = 0;       ///< c_i
  int e_max_after = 0;           ///< max block edge once stabilized
  bool stabilized_before_next = true;
};

class DynamicSimulation {
 public:
  DynamicSimulation(const MeshTopology& mesh, FaultSchedule schedule,
                    DynamicSimulationOptions options = {});

  /// Injects a routing message at `source` toward `dest`; it advances one
  /// hop per subsequent step.  Returns the message id.
  int launch_message(const Coord& source, const Coord& dest);

  /// Runs one step of the Figure 7 loop.
  void step();

  /// Runs until all messages finished and the schedule is exhausted (with a
  /// hard step cap).
  void run(long long max_steps = 1 << 20);

  [[nodiscard]] long long now() const { return now_; }
  [[nodiscard]] const std::vector<MessageProgress>& messages() const { return messages_; }
  [[nodiscard]] const MessageProgress& message(int id) const {
    return messages_[static_cast<size_t>(id)];
  }
  [[nodiscard]] const std::vector<OccurrenceRecord>& occurrences() const {
    return occurrences_;
  }
  [[nodiscard]] const DistributedFaultModel& model() const { return model_; }
  [[nodiscard]] const MeshTopology& mesh() const { return *mesh_; }

  /// Builds the Theorem 3/4/5 timeline from the recorded occurrences (a_i in
  /// steps, i.e. ceil(rounds / lambda)).
  [[nodiscard]] DynamicFaultTimeline timeline(long long route_start) const;

  [[nodiscard]] bool all_messages_done() const;

 private:
  void apply_fault_events();
  void run_information_rounds();
  void advance_messages();
  [[nodiscard]] RoutingContext context() const;

  const MeshTopology* mesh_;
  FaultSchedule schedule_;
  DynamicSimulationOptions options_;
  DistributedFaultModel model_;
  StoreInfoProvider limited_provider_;
  EmptyInfoProvider empty_provider_;
  GlobalInfoProvider instant_provider_;
  std::unique_ptr<DelayedGlobalInfoProvider> delayed_provider_;
  std::unique_ptr<Router> router_;

  std::vector<MessageProgress> messages_;
  std::vector<OccurrenceRecord> occurrences_;
  long long now_ = 0;
  /// Open occurrence currently converging (index into occurrences_), or -1.
  int converging_ = -1;
};

}  // namespace lgfi
