#pragma once
// Clang thread-safety annotation macros (no-ops elsewhere).
//
// The determinism contract (DESIGN.md §16) requires every piece of state
// shared across pool workers to have a named guard the compiler can check:
// clang's -Wthread-safety analysis proves at compile time that annotated
// members are only touched with their mutex held.  CI promotes the warning
// to an error on clang builds; gcc compiles the macros away.  The custom
// determinism linter (tools/lint/determinism_lint.py) closes the loop by
// rejecting raw std::mutex members that have no GUARDED_BY users.
//
// Macro set and spelling follow the de-facto standard header shipped with
// abseil / the clang docs, trimmed to what this codebase uses.

#if defined(__clang__) && (!defined(SWIG))
#define LGFI_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LGFI_THREAD_ANNOTATION(x)  // no-op
#endif

/// Class is a lockable capability (mutex wrappers).
#define CAPABILITY(x) LGFI_THREAD_ANNOTATION(capability(x))

/// Class is an RAII lock whose lifetime holds capabilities.
#define SCOPED_CAPABILITY LGFI_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with `x` held.
#define GUARDED_BY(x) LGFI_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define PT_GUARDED_BY(x) LGFI_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires `...` held on entry (caller locks).
#define REQUIRES(...) LGFI_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must NOT be called with `...` held (it locks internally).
#define EXCLUDES(...) LGFI_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires `...` and leaves it held.
#define ACQUIRE(...) LGFI_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases `...`.
#define RELEASE(...) LGFI_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Escape hatch: the function's locking is intentionally invisible to the
/// analysis (constructors/destructors of racy-by-design state).  Pair with a
/// comment explaining why.
#define NO_THREAD_SAFETY_ANALYSIS LGFI_THREAD_ANNOTATION(no_thread_safety_analysis)
