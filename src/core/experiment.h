#pragma once
// Parallel experiment replication (the repository's HPC surface).
//
// Benches run hundreds of independent simulator replications per
// configuration; MetricSet collects named statistics, and
// parallel_replicate fans replications over the global thread pool with one
// forked RNG stream per replication, so results are identical for any
// thread count.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/core/mutex.h"
#include "src/sim/rng.h"
#include "src/sim/statistics.h"
#include "src/sim/table_printer.h"

namespace lgfi {

/// Named statistics for one experiment configuration.
class MetricSet {
 public:
  MetricSet() = default;
  MetricSet(MetricSet&& other) noexcept;
  MetricSet& operator=(MetricSet&& other) noexcept;
  MetricSet(const MetricSet& other);
  MetricSet& operator=(const MetricSet& other);

  /// Records a sample (thread-safe).
  void add(const std::string& name, double value);

  /// Records `count` identical samples in one O(1) update — the histogram
  /// fold-in path (one lock + map lookup per bucket, not per sample).
  void add_repeated(const std::string& name, double value, long long count);

  /// Statistics for `name`; throws std::out_of_range naming the missing
  /// metric (and listing what was recorded) so metric-name typos in benches
  /// fail loudly.  Use has() / mean() for optional metrics.
  [[nodiscard]] const RunningStats& stats(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// mean of `name` (0 if absent — metrics recorded only on success, e.g.
  /// "steps" of delivered routes, may legitimately be empty).
  [[nodiscard]] double mean(const std::string& name) const;

  /// Folds `other` into this set (deterministic parallel reduction: merge
  /// per-replication sets in replication order).
  void merge(const MetricSet& other);

 private:
  mutable Mutex mu_;
  // std::map, not unordered: names() / reporters iterate, and metric-name
  // order must be stable for byte-identical output (DESIGN.md §16).
  std::map<std::string, RunningStats> stats_ GUARDED_BY(mu_);
};

/// Runs `fn(rng, metrics)` for `replications` independent replications in
/// parallel.  Each replication gets Rng(seed).fork(rep), making the sweep
/// deterministic and schedule-independent.
void parallel_replicate(int replications, uint64_t seed, MetricSet& metrics,
                        const std::function<void(Rng&, MetricSet&)>& fn);

}  // namespace lgfi
