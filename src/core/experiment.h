#pragma once
// Parallel experiment replication (the repository's HPC surface).
//
// Benches run hundreds of independent simulator replications per
// configuration; MetricSet collects named statistics, and
// parallel_replicate fans replications over the global thread pool with one
// forked RNG stream per replication, so results are identical for any
// thread count.

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/statistics.h"
#include "src/sim/table_printer.h"

namespace lgfi {

/// Named statistics for one experiment configuration.
class MetricSet {
 public:
  /// Records a sample (thread-safe).
  void add(const std::string& name, double value);

  [[nodiscard]] const RunningStats& stats(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// mean of `name` (0 if absent) — the common bench accessor.
  [[nodiscard]] double mean(const std::string& name) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, RunningStats> stats_;
};

/// Runs `fn(rng, metrics)` for `replications` independent replications in
/// parallel.  Each replication gets Rng(seed).fork(rep), making the sweep
/// deterministic and schedule-independent.
void parallel_replicate(int replications, uint64_t seed, MetricSet& metrics,
                        const std::function<void(Rng&, MetricSet&)>& fn);

}  // namespace lgfi
