#include "src/core/node_process.h"

#include <sstream>

#include "src/fault/corner_taxonomy.h"

namespace lgfi {

NodeReport inspect_node(const DistributedFaultModel& model, const Coord& c) {
  const Topology& mesh = model.mesh();
  NodeReport r;
  r.coord = c;
  const NodeId id = mesh.index_of(c);
  r.status = model.field().at(id);
  for (const auto& e : model.levels_at(id)) r.corner_level = std::max<int>(r.corner_level, e.level);
  for (const auto& info : model.info().at(id)) {
    r.held.push_back(info);
    if (corner_level(c, info.box) > 0) r.on_some_envelope = true;
    else r.on_some_wall = true;
  }
  return r;
}

std::string NodeReport::describe() const {
  std::ostringstream os;
  os << coord.to_string() << " " << to_string(status);
  if (corner_level == 1) os << ", adjacent node";
  else if (corner_level > 1) os << ", " << corner_level << "-level corner";
  if (!held.empty()) {
    os << ", holds";
    for (const auto& h : held) os << " " << h.box.to_string();
    os << (on_some_wall ? " (boundary)" : " (envelope)");
  }
  return os.str();
}

PlacementFootprint placement_footprint(const DistributedFaultModel& model) {
  const Topology& mesh = model.mesh();
  PlacementFootprint f;
  f.node_count = mesh.node_count();
  for (NodeId id = 0; id < mesh.node_count(); ++id) {
    const auto& held = model.info().at(id);
    if (held.empty()) continue;
    ++f.nodes_with_info;
    f.total_entries += static_cast<long long>(held.size());
    const Coord c = mesh.coord_of(id);
    bool envelope = false;
    for (const auto& info : held)
      if (corner_level(c, info.box) > 0) envelope = true;
    if (envelope) ++f.envelope_nodes;
    else ++f.wall_nodes;
  }
  return f;
}

}  // namespace lgfi
