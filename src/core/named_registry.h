#pragma once
// The shared self-registration machinery behind every pluggable axis.
//
// RouterRegistry, TrafficPatternRegistry and SwitchingModelRegistry grew as
// three verbatim copies of the same name -> factory map; this header is the
// one implementation they (plus the fault-model and reporter registries)
// now share.  A NamedRegistry<Value> maps unique names to values (usually
// factories) and carries per-component introspection metadata — a one-line
// help text and the list of config keys the component consumes — so the
// catalog a CLI prints under --list and the error message an unknown name
// produces both come from the registrations themselves and cannot drift.
//
// Unknown names throw ConfigError with the sorted list of registered names
// plus a did-you-mean suggestion when an edit-distance-close candidate
// exists:
//
//   unknown router 'fault_inof' (registered: dimension_order, fault_info,
//   global_table, no_info, oracle); did you mean 'fault_info'?

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/core/config.h"

namespace lgfi {

/// Introspection metadata carried by every registered component.
struct ComponentMeta {
  std::string help;                      ///< one-line description
  std::vector<std::string> config_keys;  ///< config keys the component consumes
};

/// One catalog row: the component's name plus its metadata (the
/// value/factory is deliberately absent so rows are uniform across
/// registries of different factory types).
struct ComponentInfo {
  std::string name;
  std::string help;
  std::vector<std::string> config_keys;
};

/// The registered name closest to `name` by edit distance, or "" when
/// nothing is close enough to plausibly be a typo (distance above
/// max(2, len/3)).  Ties break to the lexicographically smallest name so
/// the suggestion is deterministic.
std::string closest_name(const std::string& name, const std::vector<std::string>& names);

/// "unknown <kind> '<name>' (registered: a, b, c); did you mean 'b'?" —
/// the suggestion clause is omitted when closest_name finds nothing.
std::string unknown_name_message(const std::string& kind, const std::string& name,
                                 const std::vector<std::string>& names);

template <typename Value>
class NamedRegistry {
 public:
  /// `kind` names the component family in error messages ("router",
  /// "traffic pattern", ...).
  explicit NamedRegistry(std::string kind) : kind_(std::move(kind)) {}

  /// Registers `value` under `name`; duplicate names throw ConfigError.
  void add(const std::string& name, Value value, ComponentMeta meta = {}) {
    if (find(name) != nullptr) throw ConfigError(kind_ + " '" + name + "' registered twice");
    components_.push_back(Component{name, std::move(value), std::move(meta)});
  }

  [[nodiscard]] bool contains(const std::string& name) const { return find(name) != nullptr; }

  [[nodiscard]] std::vector<std::string> names() const {  ///< sorted
    std::vector<std::string> out;
    out.reserve(components_.size());
    for (const auto& c : components_) out.push_back(c.name);
    std::sort(out.begin(), out.end());
    return out;
  }

  /// The value registered under `name`; throws ConfigError listing the
  /// registered names (plus a did-you-mean suggestion) otherwise.
  [[nodiscard]] const Value& require(const std::string& name) const {
    if (const Component* c = find(name)) return c->value;
    throw ConfigError(unknown_name_message(kind_, name, names()));
  }

  /// The metadata registered under `name`; same error contract as require.
  [[nodiscard]] const ComponentMeta& meta(const std::string& name) const {
    if (const Component* c = find(name)) return c->meta;
    throw ConfigError(unknown_name_message(kind_, name, names()));
  }

  /// The full catalog, sorted by name — the describe/--list surface.
  [[nodiscard]] std::vector<ComponentInfo> describe() const {
    std::vector<ComponentInfo> out;
    out.reserve(components_.size());
    for (const auto& c : components_)
      out.push_back(ComponentInfo{c.name, c.meta.help, c.meta.config_keys});
    std::sort(out.begin(), out.end(),
              [](const ComponentInfo& a, const ComponentInfo& b) { return a.name < b.name; });
    return out;
  }

  [[nodiscard]] const std::string& kind() const { return kind_; }

 private:
  struct Component {
    std::string name;
    Value value;
    ComponentMeta meta;
  };

  [[nodiscard]] const Component* find(const std::string& name) const {
    for (const auto& c : components_)
      if (c.name == name) return &c;
    return nullptr;
  }

  std::string kind_;
  /// Insertion order; names()/describe() sort on the way out.
  std::vector<Component> components_;
};

}  // namespace lgfi
