#include "src/core/scenario.h"

#include "src/fault/node_status.h"

namespace lgfi {

std::vector<Coord> figure1_faults() {
  return {Coord{3, 5, 4}, Coord{4, 5, 4}, Coord{5, 5, 3}, Coord{3, 6, 3}};
}

Box figure1_block() { return Box(Coord{3, 5, 3}, Coord{5, 6, 4}); }

Coord figure2_corner() { return Coord{6, 4, 5}; }

Coord figure4_recovered_node() { return Coord{5, 5, 3}; }

Box figure4_block_after_recovery() { return Box(Coord{3, 5, 3}, Coord{4, 6, 4}); }

StackedBlocksScenario stacked_blocks_scenario() {
  StackedBlocksScenario s{MeshTopology(2, 16), {}, Box(Coord{6, 10}, Coord{8, 11}),
                          Box(Coord{5, 4}, Coord{9, 6})};
  for (const auto& c : box_fault_placement(s.mesh, s.upper)) s.faults.push_back(c);
  for (const auto& c : box_fault_placement(s.mesh, s.lower)) s.faults.push_back(c);
  return s;
}

Pair random_enabled_pair(const Topology& mesh, const StatusField& field, Rng& rng,
                         int min_distance) {
  for (int attempt = 0; attempt < 100000; ++attempt) {
    const NodeId a =
        static_cast<NodeId>(rng.next_below(static_cast<uint64_t>(mesh.node_count())));
    const NodeId b =
        static_cast<NodeId>(rng.next_below(static_cast<uint64_t>(mesh.node_count())));
    if (field.at(a) != NodeStatus::kEnabled || field.at(b) != NodeStatus::kEnabled) continue;
    const Coord s = mesh.coord_of(a);
    const Coord d = mesh.coord_of(b);
    if (mesh.min_hops(s, d) < min_distance) continue;
    return Pair{s, d};
  }
  return Pair{mesh.coord_of(0), mesh.coord_of(0)};
}

}  // namespace lgfi
