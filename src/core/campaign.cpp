#include "src/core/campaign.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <memory>
#include <ostream>
#include <sstream>

#include "src/core/first_error.h"
#include "src/core/mutex.h"
#include "src/sim/thread_pool.h"

namespace lgfi {

namespace {

// Every grid point is validated eagerly (one ExperimentRunner construction,
// including throwaway router/fault-model builds) and stored twice (point
// config + runner config), so the cap has to be one that setup can actually
// serve, not merely one that fits an address space.
constexpr size_t kMaxGridPoints = 10'000;

/// Keys that configure the campaign machinery itself (pool sizing, sink
/// selection).  Sweeping them cannot change a point's result — only make the
/// output lie about what varied — so they are rejected as axes.
bool campaign_level_key(const std::string& key) { return key == "threads" || key == "report"; }

/// %.15g keeps range-generated points readable ("0.06", not the %.17g
/// round-trip spelling of lo + i*step); the text re-parses into the point
/// config, so what is displayed is exactly what ran.
std::string format_range_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  return buf;
}

/// Comma-split preserving empty elements ("a,,b" and "a,b," both surface the
/// empty token so the caller can reject it by name).
std::vector<std::string> split_list(const std::string& inner) {
  std::vector<std::string> out;
  std::string token;
  std::istringstream is(inner);
  while (std::getline(is, token, ',')) out.push_back(token);
  if (!inner.empty() && inner.back() == ',') out.push_back("");
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// SweepSpec.
// ---------------------------------------------------------------------------

bool SweepSpec::has_axis(const std::string& key) const {
  return std::any_of(axes_.begin(), axes_.end(),
                     [&](const SweepAxis& a) { return a.key == key; });
}

void SweepSpec::add_axis(const std::string& key, std::vector<std::string> values,
                         const std::string& token, bool from_default) {
  if (campaign_level_key(key))
    throw ConfigError("config key '" + key +
                      "' selects how the campaign runs and cannot be swept (in '" + token +
                      "')");
  if (values.empty())
    throw ConfigError("empty sweep list in '" + token + "' (want key=[v1,v2,...])");
  // Validate every element against the key's declared type on a scratch
  // config, so a typo fails at parse time naming the sweep token.
  Config scratch = base_;
  for (const auto& value : values) {
    if (value.empty()) throw ConfigError("empty value in sweep list '" + token + "'");
    try {
      scratch.set_from_string(key, value);
    } catch (const ConfigError& e) {
      throw ConfigError(std::string(e.what()) + " (in sweep token '" + token + "')");
    }
  }
  // A repeated value would silently double that grid point's weight.
  std::vector<std::string> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const auto dup = std::adjacent_find(sorted.begin(), sorted.end());
  if (dup != sorted.end())
    throw ConfigError("duplicate value '" + *dup + "' in sweep list '" + token + "'");

  const auto existing = std::find_if(axes_.begin(), axes_.end(),
                                     [&](const SweepAxis& a) { return a.key == key; });
  if (existing != axes_.end()) {
    if (!from_default && !existing->is_default)
      throw ConfigError("sweep axis '" + key + "' given twice (second: '" + token + "')");
    if (from_default && !existing->is_default) return;  // the user's sweep wins
    // Replacing keeps the axis position, so a rates= override does not
    // reshuffle a bench's grid order.
    existing->values = std::move(values);
    existing->is_default = from_default;
    return;
  }
  axes_.push_back(SweepAxis{key, std::move(values), from_default});
}

std::vector<std::string> SweepSpec::expand_range(const std::string& key,
                                                 const std::string& inner,
                                                 const std::string& token) const {
  const Config::Type type = base_.type(key);  // throws on an unknown key
  if (type != Config::Type::kInt && type != Config::Type::kDouble)
    throw ConfigError("range() sweeps a numeric key, and '" + key + "' is not (in '" + token +
                      "')");
  const auto parts = split_list(inner);
  if (parts.size() != 3)
    throw ConfigError("bad range in '" + token + "' (want key=range(lo,hi,step))");
  const auto parse_num = [&](const std::string& s) {
    size_t used = 0;
    double v = 0.0;
    try {
      v = std::stod(s, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used == 0 || used != s.size())
      throw ConfigError("bad number '" + s + "' in '" + token + "'");
    return v;
  };
  const double lo = parse_num(parts[0]);
  const double hi = parse_num(parts[1]);
  const double step = parse_num(parts[2]);
  if (!(step > 0.0)) throw ConfigError("range() step must be > 0 in '" + token + "'");
  if (hi < lo) throw ConfigError("range() wants lo <= hi in '" + token + "'");
  // Include hi when it lands on the progression; the epsilon absorbs the
  // accumulated rounding of (hi - lo) / step without admitting an extra
  // point a whole step past hi.
  const double raw_count = std::floor((hi - lo) / step + 1e-9) + 1.0;
  if (raw_count > static_cast<double>(kMaxGridPoints))
    throw ConfigError("range() in '" + token + "' expands to more than " +
                      std::to_string(kMaxGridPoints) + " values");
  const long long count = static_cast<long long>(raw_count);
  std::vector<std::string> values;
  values.reserve(static_cast<size_t>(count));
  if (type == Config::Type::kInt) {
    const auto integral = [](double v) { return std::nearbyint(v) == v; };
    if (!integral(lo) || !integral(hi) || !integral(step))
      throw ConfigError("range() bounds for int key '" + key + "' must be integers (in '" +
                        token + "')");
    for (long long i = 0; i < count; ++i)
      values.push_back(std::to_string(static_cast<long long>(lo) +
                                      i * static_cast<long long>(step)));
  } else {
    for (long long i = 0; i < count; ++i)
      values.push_back(format_range_value(lo + static_cast<double>(i) * step));
  }
  return values;
}

void SweepSpec::parse_token(const std::string& token) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0)
    throw ConfigError("bad override '" + token + "' (want key=value)");
  std::string key = token.substr(0, eq);
  std::string value = token.substr(eq + 1);

  if (key == "rates") {
    // Legacy alias from the sweep CLIs and benches: rates=a,b,c sweeps the
    // injection rate through the same grammar (brackets optional).
    // Deprecated in favor of the uniform axis syntax; warn once per process.
    static const bool warned = [] {
      std::fprintf(stderr,
                   "warning: rates= is deprecated; use injection_rate=[a,b,c] instead\n");
      return true;
    }();
    (void)warned;
    if (value.size() >= 2 && value.front() == '[' && value.back() == ']')
      value = value.substr(1, value.size() - 2);
    add_axis("injection_rate", split_list(value), token, /*from_default=*/false);
    return;
  }
  if (!value.empty() && value.front() == '[') {
    if (value.size() < 2 || value.back() != ']')
      throw ConfigError("unterminated sweep list in '" + token + "' (want key=[v1,v2,...])");
    add_axis(key, split_list(value.substr(1, value.size() - 2)), token,
             /*from_default=*/false);
    return;
  }
  if (value.rfind("range(", 0) == 0 && value.back() == ')') {
    add_axis(key, expand_range(key, value.substr(6, value.size() - 7), token), token,
             /*from_default=*/false);
    return;
  }
  // Scalar: collapses a default axis back to a point; a user-swept key
  // cannot also take a scalar.
  const auto existing = std::find_if(axes_.begin(), axes_.end(),
                                     [&](const SweepAxis& a) { return a.key == key; });
  if (existing != axes_.end()) {
    if (!existing->is_default)
      throw ConfigError("config key '" + key + "' is already swept; scalar '" + token +
                        "' conflicts with the axis");
    axes_.erase(existing);
  }
  base_.parse_token(token);
  // Remember the pin so a default axis added *after* parsing (the benches
  // install theirs post-CLI) cannot silently resurrect the sweep and
  // discard the user's scalar.
  scalar_keys_.insert(key);
}

void SweepSpec::parse_string(const std::string& line) {
  std::istringstream is(line);
  std::string token;
  while (is >> token) parse_token(token);
}

void SweepSpec::parse_args(int argc, const char* const* argv, int first) {
  for (int i = first; i < argc; ++i) parse_token(argv[i]);
}

void SweepSpec::add_default_axis(const std::string& key, std::vector<std::string> values) {
  if (scalar_keys_.count(key) > 0) return;  // the user pinned the key to a point
  std::string token = key + "=[";
  for (size_t i = 0; i < values.size(); ++i) token += (i > 0 ? "," : "") + values[i];
  token += "]";
  add_axis(key, std::move(values), token, /*from_default=*/true);
}

size_t SweepSpec::point_count() const {
  size_t total = 1;
  for (const auto& axis : axes_) {
    total *= axis.values.size();
    if (total > kMaxGridPoints)
      throw ConfigError("sweep grid exceeds " + std::to_string(kMaxGridPoints) + " points");
  }
  return total;
}

std::vector<CampaignPoint> SweepSpec::expand() const {
  const size_t total = point_count();
  std::vector<CampaignPoint> points;
  points.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    CampaignPoint point;
    point.index = i;
    point.config = base_;
    point.swept.resize(axes_.size());
    // Row-major: peel the point index from the back so the last-declared
    // axis varies fastest.
    size_t rem = i;
    for (size_t a = axes_.size(); a-- > 0;) {
      const SweepAxis& axis = axes_[a];
      const std::string& value = axis.values[rem % axis.values.size()];
      rem /= axis.values.size();
      point.config.set_from_string(axis.key, value);
      point.swept[a] = {axis.key, value};
    }
    points.push_back(std::move(point));
  }
  return points;
}

// ---------------------------------------------------------------------------
// CampaignRunner.
// ---------------------------------------------------------------------------

CampaignRunner::CampaignRunner(const SweepSpec& spec) {
  campaign_.base = spec.base();
  campaign_.axes = spec.axes();
  campaign_.points = spec.expand();
  runners_.reserve(campaign_.points.size());
  for (const auto& point : campaign_.points) runners_.emplace_back(point.config);
}

CampaignRunner::CampaignRunner(Config base, std::vector<std::string> swept_keys,
                               std::vector<Config> points) {
  campaign_.base = std::move(base);
  init_points(swept_keys, std::move(points));
  // Synthesize the axes from the values each key actually takes, in order
  // of first appearance (an explicit grid has no Cartesian structure).
  for (size_t k = 0; k < swept_keys.size(); ++k) {
    SweepAxis axis{swept_keys[k], {}, false};
    for (const auto& point : campaign_.points) {
      const std::string& value = point.swept[k].second;
      if (std::find(axis.values.begin(), axis.values.end(), value) == axis.values.end())
        axis.values.push_back(value);
    }
    campaign_.axes.push_back(std::move(axis));
  }
}

void CampaignRunner::init_points(const std::vector<std::string>& swept_keys,
                                 std::vector<Config> points) {
  campaign_.points.reserve(points.size());
  runners_.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    CampaignPoint point;
    point.index = i;
    point.config = std::move(points[i]);
    for (const auto& key : swept_keys)
      point.swept.emplace_back(key, point.config.value_as_string(key));
    runners_.emplace_back(point.config);  // eager per-point validation
    campaign_.points.push_back(std::move(point));
  }
}

std::vector<PointResult> CampaignRunner::run() const {
  return run_with(
      [](const ExperimentRunner& r, Rng& rng, MetricSet& out) { r.run_replication(rng, out); });
}

std::vector<PointResult> CampaignRunner::run(Reporter& sink, std::ostream& os) const {
  return run_with(
      [](const ExperimentRunner& r, Rng& rng, MetricSet& out) { r.run_replication(rng, out); },
      &sink, &os);
}

std::vector<PointResult> CampaignRunner::run_and_report(std::ostream& os) const {
  const auto reporter = make_reporter(campaign_.base.get_str("report"));
  return run_with(
      [](const ExperimentRunner& r, Rng& rng, MetricSet& out) { r.run_replication(rng, out); },
      reporter.get(), &os);
}

std::vector<PointResult> CampaignRunner::run_with(const ReplicationBody& body, Reporter* sink,
                                                  std::ostream* os) const {
  const size_t npoints = campaign_.points.size();
  // Flatten the grid into point x replication tasks: one pool fans out the
  // whole campaign, so a many-point sweep of cheap points no longer
  // serializes at replication granularity.
  std::vector<int> reps(npoints);
  std::vector<uint64_t> seeds(npoints);
  std::vector<size_t> offset(npoints + 1, 0);
  for (size_t p = 0; p < npoints; ++p) {
    reps[p] = static_cast<int>(std::max(0LL, runners_[p].config().get_int("replications")));
    seeds[p] = static_cast<uint64_t>(runners_[p].config().get_int("seed"));
    offset[p + 1] = offset[p] + static_cast<size_t>(reps[p]);
  }
  std::vector<std::vector<MetricSet>> per_task(npoints);
  for (size_t p = 0; p < npoints; ++p) per_task[p].resize(static_cast<size_t>(reps[p]));

  if (sink) sink->begin(campaign_, *os);

  std::vector<PointResult> results(npoints);
  const std::unique_ptr<std::atomic<int>[]> pending(new std::atomic<int>[npoints]);
  for (size_t p = 0; p < npoints; ++p) pending[p].store(reps[p]);
  // Exceptions must not escape into pool workers; capture the first one and
  // rethrow once the fan-out has drained (same contract as run_each).
  FirstError first_error;

  // Completed points stream to the sink in grid order: whoever finishes a
  // point's last replication merges-and-flushes the contiguous ready prefix
  // under one mutex, so the sink sees a deterministic sequence while later
  // grid points are still running.  The flush cursor and completion flags
  // live in a named struct so the mutex/state relationship is visible to the
  // thread-safety analysis (results/per_task are protected by the same lock
  // during a flush, but workers also write disjoint per_task slots lock-free
  // before their point's final pending decrement — see DESIGN.md §16).
  struct FlushState {
    explicit FlushState(size_t npoints) : complete(npoints, 0) {}
    Mutex mu;
    std::vector<char> complete GUARDED_BY(mu);
    size_t next_flush GUARDED_BY(mu) = 0;
  } flush(npoints);
  const auto mark_complete_and_flush = [&](size_t completed_point) {
    MutexLock lock(flush.mu);
    if (completed_point != SIZE_MAX) flush.complete[completed_point] = 1;
    while (flush.next_flush < npoints && flush.complete[flush.next_flush]) {
      const size_t p = flush.next_flush;
      PointResult& r = results[p];
      r.index = p;
      r.swept = campaign_.points[p].swept;
      r.result.config = campaign_.points[p].config;
      r.result.replications = reps[p];
      // Merge in replication order: byte-identical for any thread count.
      for (const auto& m : per_task[p]) r.result.metrics.merge(m);
      per_task[p].clear();
      if (sink && !first_error.failed()) {
        try {
          sink->add(r);
        } catch (...) {
          first_error.record();
        }
      }
      ++flush.next_flush;
    }
  };

  {
    MutexLock lock(flush.mu);
    for (size_t p = 0; p < npoints; ++p)
      if (reps[p] == 0) flush.complete[p] = 1;
  }
  mark_complete_and_flush(SIZE_MAX);

  const auto task = [&](int64_t t) {
    const size_t p = static_cast<size_t>(std::upper_bound(offset.begin(), offset.end(),
                                                          static_cast<size_t>(t)) -
                                         offset.begin()) -
                     1;
    const size_t rep = static_cast<size_t>(t) - offset[p];
    try {
      Rng rng = Rng(seeds[p]).fork(static_cast<uint64_t>(rep));
      body(runners_[p], rng, per_task[p][rep]);
    } catch (...) {
      first_error.record();
    }
    if (pending[p].fetch_sub(1) == 1) mark_complete_and_flush(p);
  };

  const int threads = static_cast<int>(campaign_.base.get_int("threads"));
  const auto total = static_cast<int64_t>(offset[npoints]);
  if (threads > 0) {
    ThreadPool pool(static_cast<unsigned>(threads));
    pool.parallel_for(total, task);
  } else {
    parallel_for(total, task);
  }
  first_error.rethrow_if_set();
  if (sink) sink->end();
  return results;
}

}  // namespace lgfi
