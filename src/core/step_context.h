#pragma once
// Shared state of one step of the phased pipeline (DESIGN.md §7).
//
// DynamicSimulation::step() builds one StepContext and threads it through
// the three phases — apply_fault_events, run_information_rounds,
// arbitrate_and_advance — so each phase reads what the previous ones
// established and records what it did.  Callers that need to interleave
// work between phases (the traffic engine injects before the advance phase;
// tests inspect intermediate state) run the phases themselves between
// begin_step() and end_step().
//
// The context is also the step's observability surface: per-step counters
// (moved / stalled / delivered / finished / flits_moved) let phase-driving
// callers — tests, bespoke experiment loops — observe what a step did
// without rescanning every message (regression-pinned in
// test_switching_model.cpp).

#include <vector>

#include "src/routing/router.h"
#include "src/sim/fault_timeline.h"

namespace lgfi {

struct StepContext {
  long long step = 0;  ///< the step being executed (DynamicSimulation::now())

  // Written by apply_fault_events:
  std::vector<LifecycleEvent> events;  ///< lifecycle events applied this step
  bool occurrence_opened = false;  ///< the events formed a new occurrence record

  // Written by run_information_rounds:
  bool stabilized = false;  ///< the open occurrence quiesced during this step

  // Written (routing) and read by arbitrate_and_advance (the phase hands
  // the simulation's LinkArbiter straight to the switching model):
  RoutingContext routing;  ///< the step's node-local view
  int moved = 0;      ///< messages whose head traversed a channel this step
  int stalled = 0;    ///< traversal requests denied by arbitration this step
  int delivered = 0;  ///< messages delivered this step
  int finished = 0;   ///< delivered + unreachable + budget_exhausted this step
  int flits_moved = 0;  ///< data flits that traversed channels (wormhole only)
};

}  // namespace lgfi
