#include "src/core/config.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace lgfi {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

const char* type_name(Config::Type t) {
  switch (t) {
    case Config::Type::kInt: return "int";
    case Config::Type::kDouble: return "double";
    case Config::Type::kBool: return "bool";
    case Config::Type::kString: return "string";
  }
  return "?";
}

/// Doubles print with enough digits to round-trip exactly.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Config& Config::define(const std::string& key, Entry entry) {
  if (entries_.count(key) > 0)
    throw ConfigError("config key '" + key + "' defined twice");
  if (key.empty() || key.find('=') != std::string::npos ||
      key.find_first_of(" \t\n") != std::string::npos)
    throw ConfigError("invalid config key '" + key + "'");
  entries_.emplace(key, std::move(entry));
  return *this;
}

Config& Config::define_int(const std::string& key, long long def, std::string help) {
  Entry e;
  e.type = Type::kInt;
  e.int_value = def;
  e.default_as_string = std::to_string(def);
  e.help = std::move(help);
  return define(key, std::move(e));
}

Config& Config::define_double(const std::string& key, double def, std::string help) {
  Entry e;
  e.type = Type::kDouble;
  e.double_value = def;
  e.default_as_string = format_double(def);
  e.help = std::move(help);
  return define(key, std::move(e));
}

Config& Config::define_bool(const std::string& key, bool def, std::string help) {
  Entry e;
  e.type = Type::kBool;
  e.bool_value = def;
  e.default_as_string = def ? "true" : "false";
  e.help = std::move(help);
  return define(key, std::move(e));
}

Config& Config::define_string(const std::string& key, std::string def, std::string help) {
  Entry e;
  e.type = Type::kString;
  e.string_value = std::move(def);
  e.default_as_string = e.string_value;
  e.help = std::move(help);
  return define(key, std::move(e));
}

Config::Entry& Config::require(const std::string& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& [k, _] : entries_) known += (known.empty() ? "" : ", ") + k;
    throw ConfigError("unknown config key '" + key + "' (known keys: " + known + ")");
  }
  return it->second;
}

const Config::Entry& Config::require(const std::string& key) const {
  return const_cast<Config*>(this)->require(key);
}

bool Config::defined(const std::string& key) const { return entries_.count(key) > 0; }

Config::Type Config::type(const std::string& key) const { return require(key).type; }

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [k, _] : entries_) out.push_back(k);
  return out;
}

long long Config::get_int(const std::string& key) const {
  const Entry& e = require(key);
  if (e.type != Type::kInt)
    throw ConfigError("config key '" + key + "' is " + type_name(e.type) + ", not int");
  return e.int_value;
}

double Config::get_double(const std::string& key) const {
  const Entry& e = require(key);
  if (e.type == Type::kDouble) return e.double_value;
  if (e.type == Type::kInt) return static_cast<double>(e.int_value);
  throw ConfigError("config key '" + key + "' is " + type_name(e.type) + ", not double");
}

bool Config::get_bool(const std::string& key) const {
  const Entry& e = require(key);
  if (e.type != Type::kBool)
    throw ConfigError("config key '" + key + "' is " + type_name(e.type) + ", not bool");
  return e.bool_value;
}

const std::string& Config::get_str(const std::string& key) const {
  const Entry& e = require(key);
  if (e.type != Type::kString)
    throw ConfigError("config key '" + key + "' is " + type_name(e.type) + ", not string");
  return e.string_value;
}

void Config::set_int(const std::string& key, long long value) {
  Entry& e = require(key);
  if (e.type != Type::kInt)
    throw ConfigError("config key '" + key + "' is " + type_name(e.type) + ", not int");
  e.int_value = value;
}

void Config::set_double(const std::string& key, double value) {
  Entry& e = require(key);
  if (e.type != Type::kDouble)
    throw ConfigError("config key '" + key + "' is " + type_name(e.type) + ", not double");
  e.double_value = value;
}

void Config::set_bool(const std::string& key, bool value) {
  Entry& e = require(key);
  if (e.type != Type::kBool)
    throw ConfigError("config key '" + key + "' is " + type_name(e.type) + ", not bool");
  e.bool_value = value;
}

void Config::set_str(const std::string& key, std::string value) {
  Entry& e = require(key);
  if (e.type != Type::kString)
    throw ConfigError("config key '" + key + "' is " + type_name(e.type) + ", not string");
  // Values are serialized as whitespace-separated tokens; embedded
  // whitespace would break the to_string()/parse_string() round trip.
  if (value.find_first_of(" \t\n\r") != std::string::npos)
    throw ConfigError("string value for config key '" + key +
                      "' must not contain whitespace: '" + value + "'");
  e.string_value = std::move(value);
}

void Config::set_from_string(const std::string& key, const std::string& value) {
  Entry& e = require(key);
  switch (e.type) {
    case Type::kInt: {
      size_t pos = 0;
      long long v = 0;
      try {
        v = std::stoll(value, &pos, 0);
      } catch (const std::exception&) {
        pos = 0;
      }
      if (pos == 0 || pos != value.size())
        throw ConfigError("bad int value '" + value + "' for config key '" + key + "'");
      e.int_value = v;
      break;
    }
    case Type::kDouble: {
      size_t pos = 0;
      double v = 0.0;
      try {
        v = std::stod(value, &pos);
      } catch (const std::exception&) {
        pos = 0;
      }
      if (pos == 0 || pos != value.size())
        throw ConfigError("bad double value '" + value + "' for config key '" + key + "'");
      e.double_value = v;
      break;
    }
    case Type::kBool: {
      const std::string v = lower(value);
      if (v == "true" || v == "1" || v == "yes" || v == "on") e.bool_value = true;
      else if (v == "false" || v == "0" || v == "no" || v == "off") e.bool_value = false;
      else
        throw ConfigError("bad bool value '" + value + "' for config key '" + key +
                          "' (want true/false/1/0/yes/no/on/off)");
      break;
    }
    case Type::kString:
      if (value.find_first_of(" \t\n\r") != std::string::npos)
        throw ConfigError("string value for config key '" + key +
                          "' must not contain whitespace: '" + value + "'");
      e.string_value = value;
      break;
  }
}

void Config::parse_token(const std::string& token) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0)
    throw ConfigError("bad override '" + token + "' (want key=value)");
  set_from_string(token.substr(0, eq), token.substr(eq + 1));
}

void Config::parse_string(const std::string& line) {
  std::istringstream is(line);
  std::string token;
  while (is >> token) parse_token(token);
}

void Config::parse_args(int argc, const char* const* argv, int first) {
  for (int i = first; i < argc; ++i) parse_token(argv[i]);
}

std::string Config::value_as_string(const std::string& key) const {
  const Entry& e = require(key);
  switch (e.type) {
    case Type::kInt: return std::to_string(e.int_value);
    case Type::kDouble: return format_double(e.double_value);
    case Type::kBool: return e.bool_value ? "true" : "false";
    case Type::kString: return e.string_value;
  }
  return "";
}

bool Config::is_default(const std::string& key) const {
  return value_as_string(key) == require(key).default_as_string;
}

std::string Config::to_string() const {
  std::string out;
  for (const auto& [key, _] : entries_) {
    if (!out.empty()) out += ' ';
    out += key + "=" + value_as_string(key);
  }
  return out;
}

std::string Config::help() const {
  std::ostringstream os;
  size_t key_w = 3, type_w = 4, def_w = 7;
  for (const auto& [key, e] : entries_) {
    key_w = std::max(key_w, key.size());
    type_w = std::max(type_w, std::string(type_name(e.type)).size());
    def_w = std::max(def_w, e.default_as_string.size());
  }
  for (const auto& [key, e] : entries_) {
    os << "  " << key << std::string(key_w - key.size() + 2, ' ') << type_name(e.type)
       << std::string(type_w - std::string(type_name(e.type)).size() + 2, ' ') << "default="
       << e.default_as_string << std::string(def_w - e.default_as_string.size() + 2, ' ')
       << e.help << "\n";
  }
  return os.str();
}

bool operator==(const Config& a, const Config& b) {
  if (a.entries_.size() != b.entries_.size()) return false;
  for (const auto& [key, ea] : a.entries_) {
    const auto it = b.entries_.find(key);
    if (it == b.entries_.end() || it->second.type != ea.type) return false;
    if (a.value_as_string(key) != b.value_as_string(key)) return false;
  }
  return true;
}

}  // namespace lgfi
