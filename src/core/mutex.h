#pragma once
// Annotated mutex capability wrappers.
//
// libstdc++'s std::mutex carries no capability attributes, so clang's
// -Wthread-safety analysis cannot see through std::lock_guard /
// std::unique_lock.  These thin wrappers (the reference pattern from the
// clang Thread Safety Analysis docs) make every lock acquisition visible to
// the analysis: members declared GUARDED_BY(mu_) are compile-time-checked to
// be touched only under MutexLock/MutexLock2.  On gcc the attributes expand
// to nothing and the wrappers cost exactly a std::mutex.
//
// Use Mutex + GUARDED_BY for any state shared across ThreadPool workers;
// the determinism linter rejects raw std::mutex members without annotations
// (DESIGN.md §16).

#include <mutex>

#include "src/core/thread_annotations.h"

namespace lgfi {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  friend class MutexLock2;
  std::mutex mu_;  // lint: mutex-ok(the Mutex capability wrapper *is* the annotation layer)
};

/// RAII lock; also a BasicLockable so std::condition_variable_any can
/// release/reacquire it across a wait (the capability state is unchanged
/// around the wait call, which is exactly what the analysis assumes).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // condition_variable_any interface.
  void lock() ACQUIRE(mu_) { mu_.lock(); }
  void unlock() RELEASE(mu_) { mu_.unlock(); }

 private:
  Mutex& mu_;
};

/// Two-mutex RAII lock with std::lock deadlock avoidance (the annotated
/// stand-in for std::scoped_lock(a, b)).
class SCOPED_CAPABILITY MutexLock2 {
 public:
  MutexLock2(Mutex& a, Mutex& b) ACQUIRE(a, b) : a_(a), b_(b) { std::lock(a_.mu_, b_.mu_); }
  ~MutexLock2() RELEASE() {
    a_.mu_.unlock();
    b_.mu_.unlock();
  }

  MutexLock2(const MutexLock2&) = delete;
  MutexLock2& operator=(const MutexLock2&) = delete;

 private:
  Mutex& a_;
  Mutex& b_;
};

}  // namespace lgfi
