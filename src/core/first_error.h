#pragma once
// First-exception capture for thread-pool fan-outs.
//
// Exceptions must not escape into pool workers (std::terminate) or past the
// per-replication buffers while other tasks still write into them: every
// fan-out captures the first exception and rethrows once the pool has fully
// drained.  This used to be a copy-pasted exception_ptr + mutex pair in
// ExperimentRunner::run_each and CampaignRunner::run_with; centralizing it
// gives the pattern thread-safety annotations once.

#include <atomic>
#include <exception>

#include "src/core/mutex.h"

namespace lgfi {

class FirstError {
 public:
  /// Call from a catch block: records std::current_exception() if this is
  /// the first failure.  Safe to call concurrently from pool workers.
  void record() noexcept {
    MutexLock lock(mu_);
    if (!first_) first_ = std::current_exception();
    failed_.store(true, std::memory_order_release);
  }

  /// Cheap racy check (e.g. to stop streaming output after a failure).
  [[nodiscard]] bool failed() const noexcept {
    return failed_.load(std::memory_order_acquire);
  }

  /// Rethrows the captured exception, if any.  Call only after the fan-out
  /// has fully drained (no concurrent record()).
  void rethrow_if_set() const {
    std::exception_ptr first;
    {
      MutexLock lock(mu_);
      first = first_;
    }
    if (first) std::rethrow_exception(first);
  }

 private:
  mutable Mutex mu_;
  std::exception_ptr first_ GUARDED_BY(mu_);
  std::atomic<bool> failed_{false};
};

}  // namespace lgfi
