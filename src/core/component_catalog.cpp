#include "src/core/component_catalog.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "src/core/experiment_runner.h"
#include "src/core/topology_registry.h"
#include "src/routing/router_registry.h"
#include "src/sim/fault_schedule.h"
#include "src/sim/injection_process.h"
#include "src/sim/switching_model.h"
#include "src/sim/traffic_pattern.h"

namespace lgfi {

std::vector<ComponentCatalogSection> component_catalog() {
  std::vector<ComponentCatalogSection> sections;
  sections.push_back({"topology", "topology", "", topology_registry().describe()});
  sections.push_back({"router", "router", "", RouterRegistry::instance().describe()});
  sections.push_back({"traffic pattern", "traffic", "traffic=none disables the engine",
                      TrafficPatternRegistry::instance().describe()});
  sections.push_back({"injection process", "injection", "",
                      InjectionProcessRegistry::instance().describe()});
  sections.push_back(
      {"switching model", "switching", "", SwitchingModelRegistry::instance().describe()});
  sections.push_back({"fault model", "fault_model", "", fault_model_registry().describe()});
  sections.push_back({"reporter", "report", "", reporter_registry().describe()});
  return sections;
}

std::string describe_components() {
  std::ostringstream os;
  bool first_section = true;
  for (const auto& section : component_catalog()) {
    if (!first_section) os << "\n";
    first_section = false;
    // "router" -> "routers", "topology" -> "topologies",
    // "injection process" -> "injection processes".
    const bool ies = !section.kind.empty() && section.kind.back() == 'y';
    const bool es = !section.kind.empty() && section.kind.back() == 's';
    os << (ies ? section.kind.substr(0, section.kind.size() - 1) + "ies"
               : section.kind + (es ? "es" : "s"))
       << " (" << section.config_key << "=)";
    if (!section.note.empty()) os << "  [" << section.note << "]";
    os << "\n";
    size_t name_w = 0;
    for (const auto& c : section.components) name_w = std::max(name_w, c.name.size());
    for (const auto& c : section.components) {
      os << "  " << c.name << std::string(name_w - c.name.size() + 2, ' ') << c.help;
      if (!c.config_keys.empty()) {
        os << "  [keys:";
        for (const auto& key : c.config_keys) os << " " << key;
        os << "]";
      }
      os << "\n";
    }
  }
  return os.str();
}

void print_component_catalog(std::ostream& os) { os << describe_components(); }

}  // namespace lgfi
