#include "src/core/traffic_workload.h"

#include <utility>

#include "src/core/scenario.h"

namespace lgfi {

TrafficWorkload::TrafficWorkload(DynamicSimulation& sim, TrafficPattern& pattern,
                                 TrafficWorkloadOptions options, Rng& rng)
    : sim_(&sim),
      pattern_(&pattern),
      options_(std::move(options)),
      rng_(&rng),
      owned_process_(make_bernoulli_injection(options_.injection_rate)),
      process_(owned_process_.get()) {}

TrafficWorkload::TrafficWorkload(DynamicSimulation& sim, TrafficPattern& pattern,
                                 InjectionProcess& process, TrafficWorkloadOptions options,
                                 Rng& rng)
    : sim_(&sim),
      pattern_(&pattern),
      options_(std::move(options)),
      rng_(&rng),
      process_(&process) {}

void TrafficWorkload::inject(bool measured, TrafficResult& result) {
  const Topology& mesh = sim_->mesh();
  const StatusField& field = sim_->model().field();
  const NodeId nodes = static_cast<NodeId>(mesh.node_count());
  InjectionStepView view;
  view.step = sim_->now();
  view.active_messages = sim_->active_messages();
  process_->begin_step(view);
  int slot = 0;
  for (NodeId node = 0; node < nodes; ++node) {
    // Every terminal on the router consults the process in ascending slot
    // order; under bernoulli that is one coin per slot, the historical RNG
    // stream exactly.
    for (int t = 0; t < mesh.concentration(); ++t, ++slot) {
      if (!process_->fire(slot, *rng_)) continue;
      if (measured) ++result.offered;
      // Only enabled nodes inject; a source absorbed into a block has no
      // functional injection port this step.
      if (field.at(node) != NodeStatus::kEnabled) continue;
      const Coord source = mesh.coord_of(node);
      Coord dest;
      if (!process_->replay_destination(slot, dest)) {
        dest = pattern_->destination(source, *rng_);
      }
      // dest == source: the pattern's fixed points do not inject.  A block-
      // member destination is retired at injection (standard practice:
      // traffic to a dead endpoint cannot be delivered, and routing it to
      // exhaustion would measure the budget, not the network).
      if (dest == source) continue;
      if (is_block_member(field.at(dest))) continue;
      const int id = sim_->launch_message(source, dest);
      ++result.injected;
      process_->on_inject(slot, id);
      if (trace_ != nullptr) {
        trace_->add(view.step, slot, mesh.index_of(dest), options_.trace_packet_size);
      }
      if (measured) {
        ++result.measured;
        result.measured_ids.push_back(id);
      }
      if (process_->closed_loop()) {
        PairState pair;
        pair.slot = slot;
        pair.measured = measured;
        pair.start_step = view.step;
        requests_.emplace(id, pair);
        inflight_.push_back(id);
      }
    }
  }
}

void TrafficWorkload::fail_pair(const PairState& pair, const MessageProgress* msg,
                                TrafficResult& result) {
  process_->on_slot_released(pair.slot);
  if (!pair.measured) return;
  if (msg != nullptr && msg->budget_exhausted) {
    ++result.measured_exhausted;
  } else {
    ++result.measured_unreachable;
  }
}

void TrafficWorkload::post_step(TrafficResult& result) {
  if (!process_->closed_loop() || inflight_.empty()) return;
  const StatusField& field = sim_->model().field();
  std::vector<int> alive;
  alive.reserve(inflight_.size());
  for (const int id : inflight_) {
    if (!sim_->message(id).done()) {
      alive.push_back(id);
      continue;
    }
    const auto req = requests_.find(id);
    if (req != requests_.end()) {
      PairState pair = req->second;
      requests_.erase(req);
      // Copy everything out of the message record before launching the
      // reply: launch_message may reallocate the message table.
      const MessageProgress& msg = sim_->message(id);
      if (!msg.delivered) {
        fail_pair(pair, &msg, result);
        continue;
      }
      const Coord reply_src = msg.header.destination();
      const Coord reply_dst = msg.header.source();
      pair.request_stalls = msg.stall_steps;
      // Request delivered: the destination answers.  If the replier died or
      // the original source was absorbed into a block since, the pair fails
      // the same way an injection toward a dead endpoint is retired.
      if (field.at(reply_src) != NodeStatus::kEnabled || is_block_member(field.at(reply_dst))) {
        fail_pair(pair, nullptr, result);
        continue;
      }
      const int reply_id = sim_->launch_message(reply_src, reply_dst);
      ++result.injected;
      replies_.emplace(reply_id, pair);
      alive.push_back(reply_id);
      continue;
    }
    const auto rep = replies_.find(id);
    PairState pair = rep->second;
    replies_.erase(rep);
    const MessageProgress& msg = sim_->message(id);
    if (!msg.delivered) {
      fail_pair(pair, &msg, result);
      continue;
    }
    process_->on_slot_released(pair.slot);
    if (pair.measured) {
      ++result.measured_delivered;
      // Pair latency: request launch to reply delivery — what a terminal
      // actually waits for.  Stalls sum both halves.
      result.latency.add(msg.end_step - pair.start_step);
      result.stall_steps += pair.request_stalls + msg.stall_steps;
    }
  }
  inflight_ = std::move(alive);
}

TrafficResult TrafficWorkload::run() {
  TrafficResult result;
  const Topology& mesh = sim_->mesh();
  if (!options_.trace_record.empty()) {
    trace_ = std::make_unique<TraceWriter>(options_.trace_record, mesh);
  }

  // Warmup: fill the network; nothing injected here is measured.
  for (long long s = 0; s < options_.warmup_steps; ++s) {
    inject(/*measured=*/false, result);
    sim_->step();
    ++result.steps_run;
    post_step(result);
  }

  // Probes: the historical single-message experiment, riding on whatever
  // background load the injection process creates.
  for (int p = 0; p < options_.probes; ++p) {
    const Pair pair = random_enabled_pair(mesh, sim_->model().field(), *rng_,
                                          options_.min_probe_distance);
    result.probe_ids.push_back(sim_->launch_message(pair.source, pair.dest));
  }

  // Measurement window.
  for (long long s = 0; s < options_.measure_steps; ++s) {
    inject(/*measured=*/true, result);
    sim_->step();
    ++result.steps_run;
    post_step(result);
  }

  // Drain: no new primary injections; run until every message (tagged or
  // not, probes and closed-loop replies included) finished, capped by
  // drain_steps.  Pairs completing here still count.
  long long cap = options_.drain_steps > 0
                      ? options_.drain_steps
                      : 4ll * mesh.direction_count() * mesh.node_count();
  while (!sim_->all_messages_done() && cap-- > 0) {
    sim_->step();
    ++result.steps_run;
    post_step(result);
  }

  if (process_->closed_loop()) {
    // The measurement population is pairs; anything still holding a window
    // entry at the cap is unfinished.
    for (const auto& [id, pair] : requests_) {
      if (pair.measured) ++result.measured_unfinished;
    }
    for (const auto& [id, pair] : replies_) {
      if (pair.measured) ++result.measured_unfinished;
    }
  } else {
    for (const int id : result.measured_ids) {
      const MessageProgress& msg = sim_->message(id);
      result.stall_steps += msg.stall_steps;
      if (msg.delivered) {
        ++result.measured_delivered;
        result.latency.add(msg.end_step - msg.start_step);
        if (msg.head_arrival_step >= 0) {
          // Flit-level switching: split the tail latency into path setup
          // (head) and flit streaming (serialization).
          result.head_latency.add(msg.head_arrival_step - msg.start_step);
          result.serialization.add(msg.end_step - msg.head_arrival_step);
        }
      } else if (msg.unreachable) {
        ++result.measured_unreachable;
      } else if (msg.budget_exhausted) {
        ++result.measured_exhausted;
      } else {
        ++result.measured_unfinished;
      }
    }
  }

  if (trace_ != nullptr) {
    trace_->close();
    trace_.reset();
  }

  // Loads normalize per injection endpoint: terminal_count() terminals, not
  // routers (they coincide except on the concentrated mesh).
  const double window =
      static_cast<double>(options_.measure_steps) * static_cast<double>(mesh.terminal_count());
  if (window > 0) {
    result.offered_load = static_cast<double>(result.offered) / window;
    result.accepted_throughput = static_cast<double>(result.measured_delivered) / window;
  }
  return result;
}

}  // namespace lgfi
