#include "src/core/traffic_workload.h"

#include "src/core/scenario.h"

namespace lgfi {

TrafficWorkload::TrafficWorkload(DynamicSimulation& sim, TrafficPattern& pattern,
                                 TrafficWorkloadOptions options, Rng& rng)
    : sim_(&sim), pattern_(&pattern), options_(options), rng_(&rng) {}

void TrafficWorkload::inject(bool measured, TrafficResult& result) {
  const Topology& mesh = sim_->mesh();
  const StatusField& field = sim_->model().field();
  const NodeId nodes = static_cast<NodeId>(mesh.node_count());
  for (NodeId node = 0; node < nodes; ++node) {
    // Every terminal on the router draws its own injection Bernoulli; with
    // concentration 1 (mesh/torus) the RNG stream is the historical one.
    for (int t = 0; t < mesh.concentration(); ++t) {
      if (!rng_->bernoulli(options_.injection_rate)) continue;
      if (measured) ++result.offered;
      // Only enabled nodes inject; a source absorbed into a block has no
      // functional injection port this step.
      if (field.at(node) != NodeStatus::kEnabled) continue;
      const Coord source = mesh.coord_of(node);
      const Coord dest = pattern_->destination(source, *rng_);
      // dest == source: the pattern's fixed points do not inject.  A block-
      // member destination is retired at injection (standard practice:
      // traffic to a dead endpoint cannot be delivered, and routing it to
      // exhaustion would measure the budget, not the network).
      if (dest == source) continue;
      if (is_block_member(field.at(dest))) continue;
      const int id = sim_->launch_message(source, dest);
      ++result.injected;
      if (measured) {
        ++result.measured;
        result.measured_ids.push_back(id);
      }
    }
  }
}

TrafficResult TrafficWorkload::run() {
  TrafficResult result;
  const Topology& mesh = sim_->mesh();

  // Warmup: fill the network; nothing injected here is measured.
  for (long long s = 0; s < options_.warmup_steps; ++s) {
    inject(/*measured=*/false, result);
    sim_->step();
    ++result.steps_run;
  }

  // Probes: the historical single-message experiment, riding on whatever
  // background load the injection process creates.
  for (int p = 0; p < options_.probes; ++p) {
    const Pair pair = random_enabled_pair(mesh, sim_->model().field(), *rng_,
                                          options_.min_probe_distance);
    result.probe_ids.push_back(sim_->launch_message(pair.source, pair.dest));
  }

  // Measurement window.
  for (long long s = 0; s < options_.measure_steps; ++s) {
    inject(/*measured=*/true, result);
    sim_->step();
    ++result.steps_run;
  }

  // Drain: no new injections; run until every message (tagged or not, probes
  // included) finished, capped by drain_steps.
  long long cap = options_.drain_steps > 0
                      ? options_.drain_steps
                      : 4ll * mesh.direction_count() * mesh.node_count();
  while (!sim_->all_messages_done() && cap-- > 0) {
    sim_->step();
    ++result.steps_run;
  }

  for (const int id : result.measured_ids) {
    const MessageProgress& msg = sim_->message(id);
    result.stall_steps += msg.stall_steps;
    if (msg.delivered) {
      ++result.measured_delivered;
      result.latency.add(msg.end_step - msg.start_step);
      if (msg.head_arrival_step >= 0) {
        // Flit-level switching: split the tail latency into path setup
        // (head) and flit streaming (serialization).
        result.head_latency.add(msg.head_arrival_step - msg.start_step);
        result.serialization.add(msg.end_step - msg.head_arrival_step);
      }
    } else if (msg.unreachable) {
      ++result.measured_unreachable;
    } else if (msg.budget_exhausted) {
      ++result.measured_exhausted;
    } else {
      ++result.measured_unfinished;
    }
  }

  // Loads normalize per injection endpoint: terminal_count() terminals, not
  // routers (they coincide except on the concentrated mesh).
  const double window =
      static_cast<double>(options_.measure_steps) * static_cast<double>(mesh.terminal_count());
  if (window > 0) {
    result.offered_load = static_cast<double>(result.offered) / window;
    result.accepted_throughput = static_cast<double>(result.measured_delivered) / window;
  }
  return result;
}

}  // namespace lgfi
