#pragma once
// The component-introspection surface: one call that gathers every
// pluggable axis — routers, traffic patterns, switching models, fault
// models, reporters — from its NamedRegistry and renders the catalog the
// CLIs print under --list.  Because the rows come straight from the
// registrations (name, help line, consumed config keys), the catalog can
// never drift from what the `router=` / `traffic=` / `switching=` /
// `fault_model=` / `report=` keys actually accept.

#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/named_registry.h"

namespace lgfi {

/// One pluggable axis: the config key that selects from it plus its rows.
struct ComponentCatalogSection {
  std::string kind;        ///< "router", "traffic pattern", ...
  std::string config_key;  ///< the experiment-config key ("router", ...)
  std::string note;        ///< section-level remark ("" when none)
  std::vector<ComponentInfo> components;  ///< sorted by name
};

/// Every registered component, grouped by axis (routers first, then traffic
/// patterns, switching models, fault models, reporters).
std::vector<ComponentCatalogSection> component_catalog();

/// The catalog rendered as aligned text — the --list output:
///
///   router (router=)
///     dimension_order  e-cube baseline; ...         [ecube_strict]
///     ...
std::string describe_components();

/// describe_components() streamed to `os` (the CLI convenience).
void print_component_catalog(std::ostream& os);

}  // namespace lgfi
