#pragma once
// Canned scenarios: the paper's worked examples and the randomized workloads
// the benches sweep over.

#include <vector>

#include "src/mesh/box.h"
#include "src/mesh/topology.h"
#include "src/sim/fault_schedule.h"
#include "src/sim/rng.h"

namespace lgfi {

/// Figure 1(a): four faults in an 8-ary 3-D mesh forming block [3:5,5:6,3:4].
std::vector<Coord> figure1_faults();
Box figure1_block();

/// Figure 2's 3-level corner of the Figure 1 block.
Coord figure2_corner();

/// Figure 4: the node whose recovery shrinks the Figure 1 block.
Coord figure4_recovered_node();
Box figure4_block_after_recovery();

/// Figure 3(d): two stacked blocks in 2-D whose boundaries merge.
struct StackedBlocksScenario {
  MeshTopology mesh;
  std::vector<Coord> faults;
  Box upper;
  Box lower;
};
StackedBlocksScenario stacked_blocks_scenario();

/// A random enabled source/destination pair over a stabilized field, both
/// endpoints enabled and distinct.
struct Pair {
  Coord source;
  Coord dest;
};
Pair random_enabled_pair(const Topology& mesh, const class StatusField& field, Rng& rng,
                         int min_distance = 1);

}  // namespace lgfi
