#pragma once
// First-class multi-axis sweeps: the Campaign API.
//
// The declarative surface of PR 1-4 describes a single point; every curve
// the paper's evaluation is built from (latency vs injection rate,
// reachability vs fault count, overhead vs dimension) lived as a bespoke
// `for` loop around ExperimentRunner.  A Campaign makes the curve itself
// declarative:
//
//   SweepSpec spec(experiment_config());
//   spec.parse_string("router=[no_info,fault_info] injection_rate=range(0.02,0.1,0.04) "
//                     "radix=8 replications=4 report=csv");
//   CampaignRunner(spec).run_and_report(std::cout);
//
// Grammar (on top of the Config "key=value" tokens):
//   key=[v1,v2,...]        an explicit value list — the key becomes a sweep
//                          axis; each element must parse as the key's type
//   key=range(lo,hi,step)  arithmetic progression lo, lo+step, ... up to and
//                          including hi (numeric keys only; hi is included
//                          when it lands on the progression, with an epsilon
//                          for doubles)
//   rates=a,b,c            legacy alias for injection_rate=[a,b,c]
//   key=value              everything else: a scalar override of the base
//
// The Cartesian product of the axes — in declaration order, last axis
// fastest — expands to an ordered grid of point Configs.  CampaignRunner
// schedules every point x replication task on one thread pool (a 30-point
// sweep of cheap points no longer serializes at replication granularity)
// and streams per-point results to the Reporter sink *in grid order*, so
// output bytes are identical for any thread count (DESIGN.md 12).

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/core/config.h"
#include "src/core/experiment_runner.h"

namespace lgfi {

/// One sweep axis: the config key plus its values as the literal token text
/// (rendered verbatim in swept columns; applied via Config::set_from_string).
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
  /// Program-provided default (add_default_axis), replaced by a user token
  /// for the same key without a duplicate-axis error.
  bool is_default = false;
};

/// One grid point: its position, its fully-applied Config, and the swept
/// (key, value-text) pairs in axis order.
struct CampaignPoint {
  size_t index = 0;
  Config config;
  std::vector<std::pair<std::string, std::string>> swept;
};

/// One grid point's outcome: the swept labels plus the standard
/// ExperimentResult (point config, merged metrics, replications) — what a
/// Reporter receives per add().
struct PointResult {
  size_t index = 0;
  std::vector<std::pair<std::string, std::string>> swept;
  ExperimentResult result;
};

/// The immutable description a Reporter receives in begin(): the base
/// config, the axes, and the full point grid.
struct Campaign {
  Config base;
  std::vector<SweepAxis> axes;
  std::vector<CampaignPoint> points;
  /// No swept axis: the 1-point campaign whose report is byte-identical to
  /// the historical single-run output.
  [[nodiscard]] bool single_run() const { return axes.empty(); }
};

/// A base Config plus the sweep axes parsed from its override tokens.
class SweepSpec {
 public:
  explicit SweepSpec(Config base) : base_(std::move(base)) {}

  [[nodiscard]] Config& base() { return base_; }
  [[nodiscard]] const Config& base() const { return base_; }
  [[nodiscard]] const std::vector<SweepAxis>& axes() const { return axes_; }
  [[nodiscard]] bool has_axis(const std::string& key) const;

  /// One override token: scalar, list, range, or the rates= alias (see the
  /// grammar above).  A scalar for a default-swept key collapses that axis
  /// back to a point; a second list/range for a user-swept key throws.
  void parse_token(const std::string& token);
  void parse_string(const std::string& line);
  void parse_args(int argc, const char* const* argv, int first = 1);

  /// Adds a sweep axis programmatically (the CLIs' built-in sweeps, e.g. the
  /// saturation curves' default injection rates).  A user token for the same
  /// key replaces the values but keeps the axis position, so the bench grid
  /// order is stable under overrides.  No-op if the user already swept `key`
  /// — or pinned it with a scalar token, whichever order the CLI parses in.
  void add_default_axis(const std::string& key, std::vector<std::string> values);

  /// Number of grid points (product of axis sizes; 1 when no axis is swept).
  /// Throws once the product exceeds 10,000 points — every point is
  /// eagerly validated and stored, so the grid must stay constructible.
  [[nodiscard]] size_t point_count() const;

  /// The ordered grid: base with each axis combination applied, axes in
  /// declaration order with the last axis varying fastest.
  [[nodiscard]] std::vector<CampaignPoint> expand() const;

 private:
  /// Validates and installs an axis parsed from `token` (or built
  /// programmatically when from_default).
  void add_axis(const std::string& key, std::vector<std::string> values,
                const std::string& token, bool from_default);

  /// range(lo,hi,step) for `key`, expanded to value text.
  [[nodiscard]] std::vector<std::string> expand_range(const std::string& key,
                                                      const std::string& inner,
                                                      const std::string& token) const;

  Config base_;
  std::vector<SweepAxis> axes_;
  std::set<std::string> scalar_keys_;  ///< user-pinned keys; defaults skip them
};

class CampaignRunner {
 public:
  /// Per-replication body override for benches/examples with bespoke
  /// measurements (the default body is ExperimentRunner::run_replication).
  using ReplicationBody =
      std::function<void(const ExperimentRunner& runner, Rng& rng, MetricSet& out)>;

  /// Expands the spec and eagerly validates every grid point (one
  /// ExperimentRunner per point), so a bad component name anywhere in the
  /// grid fails before any task runs.
  explicit CampaignRunner(const SweepSpec& spec);

  /// An explicit (non-Cartesian) grid: one Config per point, labelled by
  /// `swept_keys` (rendered from each point's config).  For zipped sweeps
  /// like the high-dimensional table, where mesh_dims/radix/faults co-vary.
  CampaignRunner(Config base, std::vector<std::string> swept_keys, std::vector<Config> points);

  [[nodiscard]] const Campaign& campaign() const { return campaign_; }

  /// Runs every point x replication task on one pool (base `threads` key: 0
  /// shared global pool, N private pool) and returns per-point results in
  /// grid order, each merged in replication order — byte-identical for any
  /// thread count.  With a sink, completed points stream to it in grid order
  /// while later points still run.
  std::vector<PointResult> run() const;
  std::vector<PointResult> run(Reporter& sink, std::ostream& os) const;

  /// run() through the reporter named by the base `report` key.
  std::vector<PointResult> run_and_report(std::ostream& os) const;

  /// run() with a custom per-replication body instead of the standard
  /// scenario.
  std::vector<PointResult> run_with(const ReplicationBody& body, Reporter* sink = nullptr,
                                    std::ostream* os = nullptr) const;

 private:
  void init_points(const std::vector<std::string>& swept_keys, std::vector<Config> points);

  Campaign campaign_;
  std::vector<ExperimentRunner> runners_;  ///< one per point, eagerly validated
};

}  // namespace lgfi
