#include "src/core/experiment.h"

#include "src/sim/thread_pool.h"

namespace lgfi {

void MetricSet::add(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_[name].add(value);
}

const RunningStats& MetricSet::stats(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  static const RunningStats empty;
  const auto it = stats_.find(name);
  return it != stats_.end() ? it->second : empty;
}

bool MetricSet::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.count(name) > 0;
}

std::vector<std::string> MetricSet::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, _] : stats_) out.push_back(name);
  return out;
}

double MetricSet::mean(const std::string& name) const { return stats(name).mean(); }

void parallel_replicate(int replications, uint64_t seed, MetricSet& metrics,
                        const std::function<void(Rng&, MetricSet&)>& fn) {
  const Rng base(seed);
  parallel_for(replications, [&](int64_t rep) {
    Rng rng = base.fork(static_cast<uint64_t>(rep));
    fn(rng, metrics);
  });
}

}  // namespace lgfi
