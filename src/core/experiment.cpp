#include "src/core/experiment.h"

#include <stdexcept>

#include "src/sim/thread_pool.h"

namespace lgfi {

MetricSet::MetricSet(MetricSet&& other) noexcept {
  MutexLock lock(other.mu_);
  stats_ = std::move(other.stats_);
}

MetricSet& MetricSet::operator=(MetricSet&& other) noexcept {
  if (this != &other) {
    MutexLock2 lock(mu_, other.mu_);
    stats_ = std::move(other.stats_);
  }
  return *this;
}

MetricSet::MetricSet(const MetricSet& other) {
  MutexLock lock(other.mu_);
  stats_ = other.stats_;
}

MetricSet& MetricSet::operator=(const MetricSet& other) {
  if (this != &other) {
    MutexLock2 lock(mu_, other.mu_);
    stats_ = other.stats_;
  }
  return *this;
}

void MetricSet::add(const std::string& name, double value) {
  MutexLock lock(mu_);
  stats_[name].add(value);
}

void MetricSet::add_repeated(const std::string& name, double value, long long count) {
  MutexLock lock(mu_);
  stats_[name].add_repeated(value, count);
}

const RunningStats& MetricSet::stats(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = stats_.find(name);
  if (it == stats_.end()) {
    std::string recorded;
    for (const auto& [n, _] : stats_) recorded += (recorded.empty() ? "" : ", ") + n;
    throw std::out_of_range("no metric named '" + name + "' (recorded: " +
                            (recorded.empty() ? "<none>" : recorded) + ")");
  }
  return it->second;
}

bool MetricSet::has(const std::string& name) const {
  MutexLock lock(mu_);
  return stats_.count(name) > 0;
}

std::vector<std::string> MetricSet::names() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(stats_.size());
  for (const auto& [name, _] : stats_) out.push_back(name);
  return out;
}

double MetricSet::mean(const std::string& name) const {
  return has(name) ? stats(name).mean() : 0.0;
}

void MetricSet::merge(const MetricSet& other) {
  MutexLock2 lock(mu_, other.mu_);
  for (const auto& [name, stats] : other.stats_) stats_[name].merge(stats);
}

void parallel_replicate(int replications, uint64_t seed, MetricSet& metrics,
                        const std::function<void(Rng&, MetricSet&)>& fn) {
  const Rng base(seed);
  parallel_for(replications, [&](int64_t rep) {
    Rng rng = base.fork(static_cast<uint64_t>(rep));
    fn(rng, metrics);
  });
}

}  // namespace lgfi
