#include "src/core/named_registry.h"

#include <limits>

namespace lgfi {

namespace {

/// Classic two-row Levenshtein distance.
size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t subst = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, subst});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

std::string closest_name(const std::string& name, const std::vector<std::string>& names) {
  std::string best;
  size_t best_distance = std::numeric_limits<size_t>::max();
  for (const auto& candidate : names) {
    const size_t d = edit_distance(name, candidate);
    if (d < best_distance || (d == best_distance && candidate < best)) {
      best_distance = d;
      best = candidate;
    }
  }
  // A plausible typo mangles a minority of the characters; beyond that the
  // suggestion would be noise ("warp_drive" is not a misspelled router).
  const size_t threshold = std::max<size_t>(2, name.size() / 3);
  return best_distance <= threshold ? best : std::string{};
}

std::string unknown_name_message(const std::string& kind, const std::string& name,
                                 const std::vector<std::string>& names) {
  std::string known;
  for (const auto& n : names) known += (known.empty() ? "" : ", ") + n;
  std::string msg = "unknown " + kind + " '" + name + "' (registered: " +
                    (known.empty() ? "nothing" : known) + ")";
  const std::string suggestion = closest_name(name, names);
  if (!suggestion.empty()) msg += "; did you mean '" + suggestion + "'?";
  return msg;
}

}  // namespace lgfi
