#pragma once
// Declarative experiment configuration.
//
// A Config is a typed key/value store: every key is *defined* once with a
// type, a default and a help line, after which it can be overridden from
// strings ("key=value" tokens, command lines, serialized configs).  Unknown
// keys and unparsable values throw ConfigError, so a typo in a sweep script
// fails loudly instead of silently running the default scenario.
//
// Round-trip guarantee: to_string() emits every key as "key=value" in sorted
// order, and parse_string() applied to a config with the same schema
// restores exactly the same values — one line fully reproduces a run.

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace lgfi {

/// Unknown key, wrong type, or unparsable value.
class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Config {
 public:
  enum class Type : uint8_t { kInt, kDouble, kBool, kString };

  Config() = default;

  /// Defines a key with its type, default and help line.  Redefinition
  /// throws; chainable for schema building.
  Config& define_int(const std::string& key, long long def, std::string help = "");
  Config& define_double(const std::string& key, double def, std::string help = "");
  Config& define_bool(const std::string& key, bool def, std::string help = "");
  Config& define_string(const std::string& key, std::string def, std::string help = "");

  [[nodiscard]] bool defined(const std::string& key) const;
  [[nodiscard]] Type type(const std::string& key) const;
  [[nodiscard]] std::vector<std::string> keys() const;  ///< sorted

  // Typed access.  get_int/get_bool/get_str require an exact type match;
  // get_double also accepts int keys (promotion).  All throw ConfigError on
  // an unknown key.
  [[nodiscard]] long long get_int(const std::string& key) const;
  [[nodiscard]] double get_double(const std::string& key) const;
  [[nodiscard]] bool get_bool(const std::string& key) const;
  [[nodiscard]] const std::string& get_str(const std::string& key) const;

  void set_int(const std::string& key, long long value);
  void set_double(const std::string& key, double value);
  void set_bool(const std::string& key, bool value);
  void set_str(const std::string& key, std::string value);

  /// Parses `value` according to the declared type of `key`.  Bool accepts
  /// true/false/1/0/yes/no/on/off (case-insensitive).
  void set_from_string(const std::string& key, const std::string& value);

  /// One "key=value" override token.
  void parse_token(const std::string& token);

  /// Whitespace-separated "key=value" tokens — the serialized form.
  /// parse_string(other.to_string()) copies other's values.
  void parse_string(const std::string& line);

  /// argv[first..argc) as override tokens (the command-line surface).
  void parse_args(int argc, const char* const* argv, int first = 1);

  /// The current value of `key` rendered as a string (round-trips through
  /// set_from_string).
  [[nodiscard]] std::string value_as_string(const std::string& key) const;

  /// True when `key` still holds the default it was defined with — how
  /// eager validation distinguishes "user asked for window=8 on a process
  /// that ignores it" from the schema default merely existing.
  [[nodiscard]] bool is_default(const std::string& key) const;

  /// "key1=v1 key2=v2 ..." over all keys, sorted — the one-line reproducible
  /// description of a run.
  [[nodiscard]] std::string to_string() const;

  /// Human-readable schema table: key, type, default, current, help.
  [[nodiscard]] std::string help() const;

  friend bool operator==(const Config& a, const Config& b);

 private:
  struct Entry {
    Type type = Type::kString;
    long long int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    std::string string_value;
    std::string default_as_string;
    std::string help;
  };

  Entry& require(const std::string& key);
  [[nodiscard]] const Entry& require(const std::string& key) const;
  Config& define(const std::string& key, Entry entry);

  std::map<std::string, Entry> entries_;
};

}  // namespace lgfi
