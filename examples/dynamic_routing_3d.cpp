// Dynamic routing in a 3-D mesh (the paper's headline scenario): faults
// appear WHILE a message travels; the constructions and the routing proceed
// hand-in-hand, one hop per round/step, and the message detours around the
// growing damage.

#include <iostream>

#include "src/core/dynamic_simulation.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main() {
  const MeshTopology mesh(3, 10);

  // A block materializes at step 6 squarely across the message's path, and
  // a second one at step 18 near the first detour corridor.
  FaultSchedule schedule;
  for (const auto& c : box_fault_placement(mesh, Box(Coord{4, 4, 4}, Coord{6, 5, 5})))
    schedule.add_fail(6, c);
  for (const auto& c : box_fault_placement(mesh, Box(Coord{7, 6, 4}, Coord{8, 7, 5})))
    schedule.add_fail(18, c);

  DynamicSimulation sim(mesh, schedule);
  const Coord source{5, 0, 5};
  const Coord dest{5, 9, 4};
  const int id = sim.launch_message(source, dest);
  std::cout << "message launched " << source.to_string() << " -> " << dest.to_string()
            << " (D = " << manhattan_distance(source, dest) << ")\n\n";

  TablePrinter t({"step", "position", "D(u,d)", "events"});
  long long last_logged = -1;
  while (!sim.all_messages_done() && sim.now() < 500) {
    const auto events = FaultSchedule(schedule).events_at(sim.now());
    sim.step();
    const auto& msg = sim.message(id);
    const bool fault_step = !events.empty();
    if (fault_step || sim.now() <= 3 || sim.now() % 5 == 0 || msg.delivered) {
      if (sim.now() != last_logged) {
        last_logged = sim.now();
        std::string note;
        if (fault_step) note = "faults injected — block construction starts";
        if (msg.delivered) note = "DELIVERED";
        t.add_row({TablePrinter::num(sim.now()), msg.header.current().to_string(),
                   TablePrinter::num(manhattan_distance(msg.header.current(), dest)), note});
      }
    }
  }
  sim.run();
  t.print(std::cout);

  const auto& msg = sim.message(id);
  std::cout << "\nresult: " << (msg.delivered ? "delivered" : "NOT delivered") << " at step "
            << msg.end_step << "; total hops " << msg.header.total_steps() << " (minimum "
            << msg.initial_distance << "), detours " << msg.detours() << ", backtracks "
            << msg.header.backtrack_steps() << "\n";

  std::cout << "fault occurrences and their convergence (rounds):\n";
  for (const auto& rec : sim.occurrences())
    std::cout << "  t=" << rec.step << "  a_i=" << rec.rounds_labeling
              << "  b_i=" << rec.rounds_identification << "  c_i=" << rec.rounds_boundary
              << "  e_max=" << rec.e_max_after << "\n";
  return msg.delivered ? 0 : 1;
}
