// Dynamic routing in a 3-D mesh (the paper's headline scenario): faults
// appear WHILE a message travels; the constructions and the routing proceed
// hand-in-hand, one hop per round/step, and the message detours around the
// growing damage.
//
// The step loop's knobs come from the experiment config, so the same
// narrative runs under any router / lambda / info mode:
//
//   ./dynamic_routing_3d router=no_info
//   ./dynamic_routing_3d lambda=4 info_mode=delayed_global

#include <iostream>

#include "src/core/experiment_runner.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main(int argc, char** argv) {
  // Only the step-loop knobs are overridable — the mesh and fault timeline
  // are this example's narrative.  A schema with just these keys makes any
  // other override fail loudly instead of being silently ignored.
  Config cfg;
  cfg.define_int("lambda", 1, "information rounds per routing step")
      .define_string("router", "auto", "registered router name")
      .define_string("info_mode", "auto", "information placement mode")
      .define_bool("persistent_marks", false, "header ablation");
  DynamicSimulationOptions opts;
  try {
    cfg.parse_args(argc, argv);
    opts.lambda = static_cast<int>(cfg.get_int("lambda"));
    opts.router = cfg.get_str("router") == "auto" ? "fault_info" : cfg.get_str("router");
    Config resolve = cfg;
    resolve.set_str("router", opts.router);
    opts.info_mode = resolve_info_mode(resolve);
    opts.persistent_marks = cfg.get_bool("persistent_marks");
  } catch (const ConfigError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  const MeshTopology mesh(3, 10);

  // A block materializes at step 6 squarely across the message's path, and
  // a second one at step 18 near the first detour corridor.
  FaultSchedule schedule;
  for (const auto& c : box_fault_placement(mesh, Box(Coord{4, 4, 4}, Coord{6, 5, 5})))
    schedule.add_fail(6, c);
  for (const auto& c : box_fault_placement(mesh, Box(Coord{7, 6, 4}, Coord{8, 7, 5})))
    schedule.add_fail(18, c);

  DynamicSimulation sim(mesh, schedule, opts);
  const Coord source{5, 0, 5};
  const Coord dest{5, 9, 4};
  const int id = sim.launch_message(source, dest);
  std::cout << "message launched " << source.to_string() << " -> " << dest.to_string()
            << " (D = " << manhattan_distance(source, dest) << ")\n\n";

  TablePrinter t({"step", "position", "D(u,d)", "events"});
  long long last_logged = -1;
  while (!sim.all_messages_done() && sim.now() < 500) {
    const auto events = FaultSchedule(schedule).events_at(sim.now());
    sim.step();
    const auto& msg = sim.message(id);
    const bool fault_step = !events.empty();
    if (fault_step || sim.now() <= 3 || sim.now() % 5 == 0 || msg.delivered) {
      if (sim.now() != last_logged) {
        last_logged = sim.now();
        std::string note;
        if (fault_step) note = "faults injected — block construction starts";
        if (msg.delivered) note = "DELIVERED";
        t.add_row({TablePrinter::num(sim.now()), msg.header.current().to_string(),
                   TablePrinter::num(manhattan_distance(msg.header.current(), dest)), note});
      }
    }
  }
  sim.run();
  t.print(std::cout);

  const auto& msg = sim.message(id);
  std::cout << "\nresult: " << (msg.delivered ? "delivered" : "NOT delivered") << " at step "
            << msg.end_step << "; total hops " << msg.header.total_steps() << " (minimum "
            << msg.initial_distance << "), detours " << msg.detours() << ", backtracks "
            << msg.header.backtrack_steps() << "\n";

  std::cout << "fault occurrences and their convergence (rounds):\n";
  for (const auto& rec : sim.occurrences())
    std::cout << "  t=" << rec.step << "  a_i=" << rec.rounds_labeling
              << "  b_i=" << rec.rounds_identification << "  c_i=" << rec.rounds_boundary
              << "  e_max=" << rec.e_max_after << "\n";
  return msg.delivered ? 0 : 1;
}
