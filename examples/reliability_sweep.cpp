// Reliability-campaign CLI: sweeps fault arrival rate x repair rate under
// the lifecycle fault engine and prints P(route success), latency and
// time-to-first-unreachable curves with 95% confidence intervals — the
// MTTF-style reliability surface over the declarative config.
//
//   ./reliability_sweep                                        # defaults below
//   ./reliability_sweep repair_rate=[0,0.05,0.2,1.0]           # incl. permanent
//   ./reliability_sweep fault_model=lifecycle_links            # link faults
//   ./reliability_sweep transient_frac=0.5 replications=16
//   ./reliability_sweep mesh_dims=3 radix=6 router=global_table
//   ./reliability_sweep --help
//   ./reliability_sweep --list     # the full component catalog
//
// The lifecycle generators use common random numbers across repair_rate
// values (same fault history, only the repair times move), so the columns of
// the grid are directly comparable.  Output defaults to report=csv_ci: every
// metric column is followed by a `<metric>_ci95` half-width column, empty
// when a point has fewer than two replications.

#include "examples/cli_common.h"
#include "src/core/experiment_runner.h"

using namespace lgfi;

int main(int argc, char** argv) {
  SweepSpec spec(experiment_config());
  Config& cfg = spec.base();
  cfg.set_str("traffic", "uniform");
  cfg.set_int("mesh_dims", 2);
  cfg.set_int("radix", 8);
  cfg.set_str("fault_model", "lifecycle");
  cfg.set_double("fault_arrival_rate", 0.05);
  cfg.set_double("repair_rate", 0.1);
  cfg.set_int("warmup_steps", 50);
  cfg.set_int("measure_steps", 400);
  cfg.set_int("routes", 0);
  cfg.set_int("replications", 8);
  cfg.set_str("report", "csv_ci");
  spec.add_default_axis("fault_arrival_rate", {"0.01", "0.05", "0.1", "0.2"});
  spec.add_default_axis("repair_rate", {"0", "0.05", "0.2"});

  return cli::campaign_main(
      argc, argv, std::move(spec),
      {"reliability_sweep",
       "reliability surface under lifecycle fault churn: P(route success), "
       "latency and time-to-first-unreachable vs fault arrival x repair rate, "
       "with 95% confidence intervals (report=csv_ci)",
       "",
       "\ndelivered_frac is P(route success) for measured packets; "
       "first_unreachable_step\nis the per-replication time until some "
       "source first found its destination\nunreachable (absent while the "
       "mesh stayed connected).  repair_rate=0 is the\npermanent-fault "
       "baseline; transients (transient_frac=) repair at 10x the\nrepair "
       "rate.\n"});
}
