#include "examples/cli_common.h"

#include <iostream>

#include "src/core/component_catalog.h"

namespace lgfi::cli {

int parse_args(int argc, const char* const* argv, SweepSpec& spec, const CliUsage& usage) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h" || arg == "help") {
      std::cout << usage.summary << "\n\nusage: " << usage.binary
                << " [key=value ...] [--list]\n\n"
                   "sweep axes (any key; every combination runs as one grid):\n"
                   "  key=[v1,v2,...]        explicit value list\n"
                   "  key=range(lo,hi,step)  lo, lo+step, ... up to and including hi\n"
                   "  rates=a,b,c            deprecated alias for injection_rate=[a,b,c]\n\n"
                   "config keys:\n"
                << spec.base().help();
      if (!usage.extra.empty()) std::cout << "\n" << usage.extra;
      std::cout << "\n(--list prints the full component catalog)\n";
      return 0;
    }
    if (arg == "--list") {
      print_component_catalog(std::cout);
      return 0;
    }
  }
  try {
    spec.parse_args(argc, argv);
  } catch (const ConfigError& e) {
    std::cerr << "error: " << e.what() << "\n(run with --help for the config grammar)\n";
    return 2;
  }
  return -1;
}

int campaign_main(int argc, const char* const* argv, SweepSpec spec, const CliUsage& usage) {
  const int parsed = parse_args(argc, argv, spec, usage);
  if (parsed >= 0) return parsed;
  try {
    CampaignRunner(spec).run_and_report(std::cout);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n(run with --help for the config grammar)\n";
    return 2;
  }
  if (!usage.outro.empty()) std::cout << usage.outro;
  return 0;
}

}  // namespace lgfi::cli
