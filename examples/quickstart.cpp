// Quickstart: the paper's Figure 1 scenario in a dozen lines of API.
//
//   1. build an 8-ary 3-D mesh,
//   2. fail four nodes,
//   3. let the limited-global information model converge,
//   4. inspect what individual nodes know,
//   5. route a message with Algorithm 3.

#include <iostream>

#include "src/core/network.h"
#include "src/core/node_process.h"
#include "src/core/scenario.h"

using namespace lgfi;

int main() {
  // An 8-ary 3-D mesh: 512 nodes, interior degree 6.
  Network net(MeshTopology(3, 8));

  // The four faults of the paper's Figure 1.
  for (const Coord& f : figure1_faults()) net.inject_fault(f);

  // Run the distributed constructions (Algorithm 1 labeling, Algorithm 2
  // identification + distribution, Definition 3 boundaries) to quiescence.
  const ConstructionRounds rounds = net.stabilize();
  std::cout << "constructions converged: labeling " << rounds.labeling
            << " rounds, identification " << rounds.identification
            << " rounds, boundaries " << rounds.boundary << " rounds\n";

  // One faulty block formed, exactly as the paper says: [3:5, 5:6, 3:4].
  for (const BlockSummary& b : net.blocks())
    std::cout << "faulty block " << b.box.to_string() << " (" << b.faulty_count
              << " faulty, " << b.member_count - b.faulty_count << " disabled)\n";

  // Who knows what?  Only envelope and boundary nodes store anything.
  for (const Coord& probe : {Coord{6, 4, 5}, Coord{2, 0, 3}, Coord{0, 0, 0}})
    std::cout << "  " << inspect_node(net.model(), probe).describe() << "\n";

  // Route around the block: fault-information-based PCS (Algorithm 3).
  const Coord source{4, 0, 4};
  const Coord dest{4, 7, 4};  // straight across the dangerous area
  const RouteResult r = net.route(source, dest);
  std::cout << "route " << source.to_string() << " -> " << dest.to_string() << ": "
            << (r.delivered ? "delivered" : "failed") << " in " << r.total_steps
            << " steps (minimum " << r.min_distance << ", detours " << r.detours()
            << ", backtracks " << r.backtrack_steps << ")\n";
  return r.delivered ? 0 : 1;
}
