// Quickstart: the paper's Figure 1 scenario through the declarative
// experiment API.
//
// The library has two public surfaces:
//
//   * Network / DynamicSimulation — the object API, for poking at one
//     scenario interactively (inject faults, stabilize, inspect, route);
//   * Config + ExperimentRunner — the declarative API, where one line of
//     "key=value" tokens describes a whole experiment (mesh, fault
//     placement, router, replication count) and reproduces it exactly.
//
// This example drives both: it builds the Figure 1 environment from a
// config, inspects it with the object API, routes one message with a
// registry-built router, and finally runs the same scenario as a replicated
// experiment with a one-line config.

#include <iostream>

#include "src/core/experiment_runner.h"
#include "src/core/node_process.h"
#include "src/core/scenario.h"
#include "src/routing/route_walker.h"
#include "src/routing/router_registry.h"

using namespace lgfi;

int main() {
  // 1. Describe the scenario declaratively.  `scenario=figure1` is the
  //    paper's worked example: an 8-ary 3-D mesh (512 nodes) with the four
  //    faults of Figure 1.  Any key can be overridden from a string or the
  //    command line; Config rejects unknown keys and bad values.
  Config cfg = experiment_config();
  cfg.parse_string("scenario=figure1 routes=1 replications=1");
  std::cout << "config: " << cfg.to_string() << "\n\n";

  // 2. Build it.  build_static injects the faults and runs the distributed
  //    constructions (Algorithm 1 labeling, Algorithm 2 identification +
  //    distribution, Definition 3 boundaries) to quiescence.
  ExperimentRunner runner(cfg);
  Rng rng(static_cast<uint64_t>(cfg.get_int("seed")));
  auto env = runner.build_static(rng);
  Network& net = *env.net;
  std::cout << "constructions converged: labeling " << env.rounds.labeling
            << " rounds, identification " << env.rounds.identification
            << " rounds, boundaries " << env.rounds.boundary << " rounds\n";

  // 3. One faulty block formed, exactly as the paper says: [3:5, 5:6, 3:4].
  for (const BlockSummary& b : net.blocks())
    std::cout << "faulty block " << b.box.to_string() << " (" << b.faulty_count
              << " faulty, " << b.member_count - b.faulty_count << " disabled)\n";

  // 4. Who knows what?  Only envelope and boundary nodes store anything —
  //    the limited-global placement the paper is about.
  for (const Coord& probe : {Coord{6, 4, 5}, Coord{2, 0, 3}, Coord{0, 0, 0}})
    std::cout << "  " << inspect_node(net.model(), probe).describe() << "\n";

  // 5. Route around the block.  Routers come from the registry by name —
  //    the same names the `router=` config key accepts (fault_info is
  //    Algorithm 3 over the limited-global placement).
  const auto router = make_router("fault_info");
  const Coord source{4, 0, 4};
  const Coord dest{4, 7, 4};  // straight across the dangerous area
  const RouteResult r =
      run_static_route(net.context(), *router, source, dest);
  std::cout << "route " << source.to_string() << " -> " << dest.to_string() << ": "
            << (r.delivered ? "delivered" : "failed") << " in " << r.total_steps
            << " steps (minimum " << r.min_distance << ", detours " << r.detours()
            << ", backtracks " << r.backtrack_steps << ")\n";

  // 6. The same scenario as a replicated experiment: 32 random pairs over
  //    the Figure 1 field, fanned over the thread pool, reported as a
  //    table.  Identical results for any thread count.
  std::cout << "\nreplicated experiment over the same scenario:\n";
  Config sweep = experiment_config();
  sweep.parse_string("scenario=figure1 routes=8 replications=4 min_pair_distance=7");
  ExperimentRunner(sweep).run_and_report(std::cout);
  return r.delivered ? 0 : 1;
}
