// Saturation-curve CLI: sweeps the injection rate for one traffic
// configuration and prints the latency/throughput curve — the standard
// interconnect evaluation plot, from the declarative config surface.
//
//   ./saturation_sweep                                   # uniform on 8x8, defaults
//   ./saturation_sweep traffic=hotspot hotspot_frac=0.2 router=global_table
//   ./saturation_sweep mesh_dims=3 radix=6 faults=8 rates=0.02,0.05,0.1,0.3
//   ./saturation_sweep switching=wormhole rates=0.005,0.01,0.02   # flit-level
//   ./saturation_sweep --help
//   ./saturation_sweep --list     # the full component catalog
//
// Every key=value token overrides the experiment config; the special token
// rates=a,b,c picks the injection rates to sweep.  Results are byte-identical
// for any thread count (the ExperimentRunner determinism contract).

#include <iostream>
#include <string>
#include <vector>

#include "src/core/component_catalog.h"
#include "src/core/experiment_runner.h"
#include "src/sim/table_printer.h"
#include "src/sim/traffic_pattern.h"

using namespace lgfi;

int main(int argc, char** argv) {
  Config cfg = experiment_config();
  cfg.set_str("traffic", "uniform");
  cfg.set_int("mesh_dims", 2);
  cfg.set_int("radix", 8);
  cfg.set_int("warmup_steps", 100);
  cfg.set_int("measure_steps", 400);
  cfg.set_int("routes", 0);
  cfg.set_int("faults", 0);
  cfg.set_int("replications", 4);

  std::vector<double> rates = {0.02, 0.05, 0.1, 0.15, 0.2, 0.3};
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        std::cout << "usage: saturation_sweep [key=value ...] [rates=a,b,c] [--list]\n\n"
                     "traffic patterns:";
        for (const auto& n : TrafficPatternRegistry::instance().names()) std::cout << " " << n;
        std::cout << "\n\nconfig keys:\n" << cfg.help();
        return 0;
      }
      if (arg == "--list") {
        print_component_catalog(std::cout);
        return 0;
      }
      if (arg.rfind("rates=", 0) == 0) {
        rates = parse_double_list(arg.substr(6), "rates=");
        continue;
      }
      cfg.parse_token(arg);
    }

    std::cout << "pattern=" << cfg.get_str("traffic") << " router=" << cfg.get_str("router")
              << " mesh=" << cfg.get_int("radix") << "^" << cfg.get_int("mesh_dims")
              << " faults=" << cfg.get_int("faults")
              << " measure_steps=" << cfg.get_int("measure_steps") << "\n\n";

    TablePrinter t({"inj rate", "offered", "throughput", "lat mean", "lat p-max", "stalls",
                    "delivered %", "drained"});
    for (const double rate : rates) {
      cfg.set_double("injection_rate", rate);
      const auto res = ExperimentRunner(cfg).run();
      const MetricSet& m = res.metrics;
      t.add_row({TablePrinter::num(rate, 3), TablePrinter::num(m.mean("offered_load"), 4),
                 TablePrinter::num(m.mean("throughput"), 4),
                 TablePrinter::num(m.mean("latency"), 2),
                 TablePrinter::num(m.has("latency") ? m.stats("latency").max() : 0.0, 0),
                 TablePrinter::num(m.mean("stall_steps"), 0),
                 TablePrinter::num(100.0 * m.mean("delivered_frac"), 1),
                 TablePrinter::num(100.0 * m.mean("drained"), 0)});
    }
    t.print(std::cout);
    std::cout << "\nthroughput tracks offered load until channels saturate; past the knee,\n"
                 "latency climbs and stalls dominate — the curve Figure-7-style analysis\n"
                 "cannot see without link contention.\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n(run with --help for the config grammar)\n";
    return 2;
  }
  return 0;
}
