// Saturation-curve CLI: sweeps the injection rate for one traffic
// configuration and prints the latency/throughput curve — the standard
// interconnect evaluation plot, as a one-axis campaign over the declarative
// config surface.
//
//   ./saturation_sweep                                   # uniform on 8x8, defaults
//   ./saturation_sweep traffic=hotspot hotspot_frac=0.2 router=global_table
//   ./saturation_sweep mesh_dims=3 radix=6 faults=8 injection_rate=[0.02,0.05,0.1,0.3]
//   ./saturation_sweep switching=wormhole injection_rate=[0.005,0.01,0.02]  # flit-level
//   ./saturation_sweep injection_rate=range(0.02,0.3,0.04) report=csv
//   ./saturation_sweep injection=closed_loop window=2 faults=8  # round-trip curve
//   ./saturation_sweep injection_rate=[0.05,0.1] router=[no_info,fault_info]
//
// rates=a,b,c is still accepted as a deprecated alias for
// injection_rate=[a,b,c] (it warns once on stderr).
//   ./saturation_sweep --help
//   ./saturation_sweep --list     # the full component catalog
//
// Every key=value token overrides the experiment config, and any key=[...] /
// key=range(...) token adds a sweep axis; the default campaign sweeps
// injection_rate.  Results are byte-identical for any thread count (the
// campaign determinism contract).

#include "examples/cli_common.h"
#include "src/core/experiment_runner.h"

using namespace lgfi;

int main(int argc, char** argv) {
  SweepSpec spec(experiment_config());
  Config& cfg = spec.base();
  cfg.set_str("traffic", "uniform");
  cfg.set_int("mesh_dims", 2);
  cfg.set_int("radix", 8);
  cfg.set_int("warmup_steps", 100);
  cfg.set_int("measure_steps", 400);
  cfg.set_int("routes", 0);
  cfg.set_int("faults", 0);
  cfg.set_int("replications", 4);
  spec.add_default_axis("injection_rate", {"0.02", "0.05", "0.1", "0.15", "0.2", "0.3"});

  return cli::campaign_main(
      argc, argv, std::move(spec),
      {"saturation_sweep",
       "latency/throughput saturation curve: one campaign over the injection "
       "rate (injection_rate=[...] picks the points; rates= is a deprecated "
       "alias)",
       "",
       "\nthroughput tracks offered load until channels saturate; past the knee,\n"
       "latency climbs and stalls dominate — the curve Figure-7-style analysis\n"
       "cannot see without link contention.\n"});
}
