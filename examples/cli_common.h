#pragma once
// The shared argv surface of the example CLIs and the self-checking
// saturation benches.  Every binary used to hand-roll the same
// --help / --list / key=value loop (with its own drift: some had --help,
// some only --list, each re-parsed rates= itself); this is the one copy.
//
//   SweepSpec spec(experiment_config());
//   ...defaults / default axes...
//   return lgfi::cli::campaign_main(argc, argv, std::move(spec), usage);
//
// Tokens go through SweepSpec::parse_token, so every binary linking this
// helper speaks the full sweep grammar: key=value scalars, key=[v1,v2,...]
// lists, key=range(lo,hi,step), and the deprecated rates= alias (which
// warns once on stderr; use injection_rate=[a,b,c]).

#include <string>

#include "src/core/campaign.h"

namespace lgfi::cli {

struct CliUsage {
  std::string binary;   ///< argv[0] name printed in the usage line
  std::string summary;  ///< one-line description shown by --help
  std::string extra;    ///< extra --help text after the schema ("" for none)
  std::string outro;    ///< note printed after a successful campaign_main run
};

/// Parses the shared surface: --help/-h prints the usage, sweep grammar and
/// config schema; --list prints the component catalog; every other token is
/// parsed into `spec`.  Returns an exit code when the invocation is already
/// done (help/list printed, or a parse error reported on stderr), and -1
/// when the caller should continue with the populated spec.
int parse_args(int argc, const char* const* argv, SweepSpec& spec, const CliUsage& usage);

/// parse_args + CampaignRunner(spec).run_and_report(std::cout) with the
/// shared error rendering — the whole main() of the config-driven CLIs.
int campaign_main(int argc, const char* const* argv, SweepSpec spec, const CliUsage& usage);

}  // namespace lgfi::cli
