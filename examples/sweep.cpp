// The unified sweep CLI: the whole declarative surface — single runs,
// multi-axis campaigns, every reporter — from one binary.
//
//   ./sweep mesh_dims=4 radix=6 router=fault_info replications=200
//   ./sweep mode=dynamic faults=10 batches=2 router=global_table report=json
//   ./sweep router=[no_info,fault_info] injection_rate=[0.02,0.05,0.1] \
//       traffic=uniform report=csv            # 2-axis campaign, 6 grid rows
//   ./sweep faults=range(0,24,4) replications=100 report=table
//   ./sweep traffic=uniform injection=[bernoulli,closed_loop] report=csv
//   ./sweep traffic=uniform trace_record=run.trace replications=1   # then:
//   ./sweep traffic=uniform injection=trace trace_file=run.trace    # replay
//   ./sweep --help          # config grammar + sweep grammar
//   ./sweep --list          # the component catalog (all registries)
//
// Any key accepts a value list (key=[a,b,c]) or a range
// (key=range(lo,hi,step)); the Cartesian product of the swept axes runs as
// one campaign, point x replication tasks fanned over one thread pool, with
// results streamed in grid order — byte-identical for any thread count
// (DESIGN.md 12).

#include "examples/cli_common.h"
#include "src/core/experiment_runner.h"

using namespace lgfi;

int main(int argc, char** argv) {
  SweepSpec spec(experiment_config());
  return cli::campaign_main(
      argc, argv, std::move(spec),
      {"sweep",
       "config-driven experiments: one run or a multi-axis campaign, "
       "reported as table, csv, or json",
       "", ""});
}
