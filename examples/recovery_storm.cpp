// Recovery storm: nodes fail and recover in waves (Definition 4's regime).
// Shows the self-healing behaviour the paper advertises: blocks shrink,
// split, and vanish; stale boundary information is deleted; the information
// footprint returns to exactly what the surviving faults justify.

#include <iostream>

#include "src/core/experiment_runner.h"
#include "src/core/node_process.h"
#include "src/sim/fault_schedule.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main() {
  // Start from an empty 20^2 field built by the experiment runner; the
  // fail/recover waves below then drive the object API directly.
  Config cfg = experiment_config();
  cfg.parse_string("mesh_dims=2 radix=20 faults=0 seed=2026");
  Rng rng(static_cast<uint64_t>(cfg.get_int("seed")));
  auto env = ExperimentRunner(cfg).build_static(rng);
  Network& net = *env.net;
  const Topology& mesh = net.mesh();

  TablePrinter t({"wave", "event", "faulty", "disabled", "blocks", "e_max",
                  "nodes w/ info", "settle rounds"});

  std::vector<Coord> alive_faults;
  auto snapshot = [&](int wave, const std::string& event, int rounds) {
    const auto blocks = net.blocks();
    const auto f = placement_footprint(net.model());
    t.add_row({TablePrinter::num(wave), event,
               TablePrinter::num(net.field().count(NodeStatus::kFaulty)),
               TablePrinter::num(net.field().count(NodeStatus::kDisabled)),
               TablePrinter::num((long long)blocks.size()),
               TablePrinter::num(max_block_extent(blocks)),
               TablePrinter::num(f.nodes_with_info), TablePrinter::num(rounds)});
  };

  for (int wave = 1; wave <= 6; ++wave) {
    if (wave % 2 == 1) {
      // Failure wave: a compact cluster of 6 nodes goes down.
      const auto faults = clustered_fault_placement(mesh, 6, rng);
      for (const auto& c : faults) {
        if (net.field().at(c) != NodeStatus::kFaulty) {
          net.inject_fault(c);
          alive_faults.push_back(c);
        }
      }
      const auto r = net.stabilize();
      snapshot(wave, "fail x" + std::to_string(faults.size()), r.total);
    } else {
      // Recovery wave: half of the currently faulty nodes come back.
      const size_t recover_count = alive_faults.size() / 2;
      for (size_t i = 0; i < recover_count; ++i) {
        const size_t pick = static_cast<size_t>(rng.next_below(alive_faults.size()));
        net.recover(alive_faults[pick]);
        alive_faults.erase(alive_faults.begin() + static_cast<std::ptrdiff_t>(pick));
      }
      const auto r = net.stabilize();
      snapshot(wave, "recover x" + std::to_string(recover_count), r.total);
    }
  }

  // Final flush: recover everything — the mesh must heal completely.
  for (const auto& c : alive_faults) net.recover(c);
  const auto r = net.stabilize();
  snapshot(7, "recover all", r.total);
  t.print(std::cout);

  // The deletion process cleans essentially everything.  A handful of
  // entries can survive pathological interleavings (a block and the carrier
  // block its boundary merged onto dying in overlapping windows with faulty
  // nodes blocking the cancel path) — the paper's model excludes these by
  // assuming stabilization between occurrences; stale entries cost at most
  // spurious detours, never correctness (see DESIGN.md §6 note 11).
  const long long residue = net.model().info().total_entries();
  const bool healed = net.field().count(NodeStatus::kFaulty) == 0 &&
                      net.field().count(NodeStatus::kDisabled) == 0 && residue <= 2;
  std::cout << "\nafter full recovery: faulty=" << net.field().count(NodeStatus::kFaulty)
            << " disabled=" << net.field().count(NodeStatus::kDisabled)
            << " info entries=" << residue
            << (healed ? "  (healed; residue within documented bound)"
                       : "  (UNEXPECTED RESIDUE)")
            << "\n";
  return healed ? 0 : 1;
}
