// Side-by-side switching comparison: one traffic configuration, both
// switching models (DESIGN.md §10), one row each — the quickest way to see
// what flit-level fidelity changes.
//
//   ./wormhole_vs_ideal                              # uniform on 8x8, defaults
//   ./wormhole_vs_ideal faults=8 fault_model=clustered injection_rate=0.02
//   ./wormhole_vs_ideal flits_per_packet=8 num_vcs=4 vc_buffer_depth=2
//   ./wormhole_vs_ideal --help
//   ./wormhole_vs_ideal --list    # the full component catalog
//
// Every key=value token overrides the experiment config; the `switching` key
// itself is the compared dimension and is overwritten.  Results are
// byte-identical for any thread count (the ExperimentRunner determinism
// contract).

#include <iostream>
#include <string>

#include "src/core/component_catalog.h"
#include "src/core/experiment_runner.h"
#include "src/sim/switching_model.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main(int argc, char** argv) {
  Config cfg = experiment_config();
  cfg.set_str("traffic", "uniform");
  cfg.set_int("mesh_dims", 2);
  cfg.set_int("radix", 8);
  cfg.set_int("warmup_steps", 100);
  cfg.set_int("measure_steps", 400);
  cfg.set_int("routes", 0);
  cfg.set_int("faults", 6);
  cfg.set_str("fault_model", "clustered");
  cfg.set_double("injection_rate", 0.01);
  cfg.set_int("replications", 4);

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        std::cout << "usage: wormhole_vs_ideal [key=value ...] [--list]\n\nswitching models:";
        for (const auto& n : SwitchingModelRegistry::instance().names()) std::cout << " " << n;
        std::cout << "\n\nconfig keys:\n" << cfg.help();
        return 0;
      }
      if (arg == "--list") {
        print_component_catalog(std::cout);
        return 0;
      }
      cfg.parse_token(arg);
    }

    std::cout << "pattern=" << cfg.get_str("traffic") << " router=" << cfg.get_str("router")
              << " mesh=" << cfg.get_int("radix") << "^" << cfg.get_int("mesh_dims")
              << " faults=" << cfg.get_int("faults")
              << " rate=" << cfg.get_double("injection_rate")
              << " flits=" << cfg.get_int("flits_per_packet")
              << " vcs=" << cfg.get_int("num_vcs") << "\n\n";

    TablePrinter t({"switching", "throughput", "lat mean", "head lat", "serial lat",
                    "delivered %", "flit moves"});
    for (const std::string& switching : {std::string("ideal"), std::string("wormhole")}) {
      cfg.set_str("switching", switching);
      const auto res = ExperimentRunner(cfg).run();
      const MetricSet& m = res.metrics;
      t.add_row({switching, TablePrinter::num(m.mean("throughput"), 4),
                 TablePrinter::num(m.mean("latency"), 2),
                 TablePrinter::num(m.has("head_latency") ? m.mean("head_latency") : 0.0, 2),
                 TablePrinter::num(
                     m.has("serialization_latency") ? m.mean("serialization_latency") : 0.0, 2),
                 TablePrinter::num(100.0 * m.mean("delivered_frac"), 1),
                 TablePrinter::num(m.has("sw_flit_moves") ? m.mean("sw_flit_moves") : 0.0, 0)});
    }
    t.print(std::cout);
    std::cout << "\nwormhole latency = head (path setup) + serialization (flit streaming);\n"
                 "the throughput gap is the capacity multi-flit packets cost the mesh.\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n(run with --help for the config grammar)\n";
    return 2;
  }
  return 0;
}
