// Side-by-side switching comparison: one traffic configuration, both
// switching models (DESIGN.md §10), one campaign row each — the quickest way
// to see what flit-level fidelity changes.
//
//   ./wormhole_vs_ideal                              # uniform on 8x8, defaults
//   ./wormhole_vs_ideal faults=8 fault_model=clustered injection_rate=0.02
//   ./wormhole_vs_ideal flits_per_packet=8 num_vcs=4 vc_buffer_depth=2
//   ./wormhole_vs_ideal rates=0.005,0.01,0.02        # switching x rate grid
//   ./wormhole_vs_ideal --help
//   ./wormhole_vs_ideal --list    # the full component catalog
//
// Every key=value token overrides the experiment config; `switching` is the
// compared axis by default and any other key=[...] / key=range(...) token
// adds a further axis to the grid.  Results are byte-identical for any
// thread count (the campaign determinism contract).

#include "examples/cli_common.h"
#include "src/core/experiment_runner.h"

using namespace lgfi;

int main(int argc, char** argv) {
  SweepSpec spec(experiment_config());
  Config& cfg = spec.base();
  cfg.set_str("traffic", "uniform");
  cfg.set_int("mesh_dims", 2);
  cfg.set_int("radix", 8);
  cfg.set_int("warmup_steps", 100);
  cfg.set_int("measure_steps", 400);
  cfg.set_int("routes", 0);
  cfg.set_int("faults", 6);
  cfg.set_str("fault_model", "clustered");
  cfg.set_double("injection_rate", 0.01);
  cfg.set_int("replications", 4);
  spec.add_default_axis("switching", {"ideal", "wormhole"});

  return cli::campaign_main(
      argc, argv, std::move(spec),
      {"wormhole_vs_ideal",
       "switching-model comparison: the same traffic under ideal single-flit "
       "and wormhole flit-level switching, one campaign row each",
       "",
       "\nwormhole latency = head (path setup) + serialization (flit streaming);\n"
       "the throughput gap is the capacity multi-flit packets cost the mesh.\n"});
}
