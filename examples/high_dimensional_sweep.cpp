// n-D sweep: the library is dimension-generic — the same code runs the
// paper's model in 2-D through 6-D meshes.  For each dimensionality, build
// random blocks, converge the information model, and route a batch of
// messages; report distances, detours and the information footprint.

#include <iostream>

#include "src/core/network.h"
#include "src/core/node_process.h"
#include "src/core/scenario.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main() {
  TablePrinter t({"mesh", "nodes", "faults", "blocks", "converge rounds", "info nodes %",
                  "routes", "delivered", "mean detours"});

  struct Config {
    int dims, radix, faults;
  };
  for (const Config cfg : {Config{2, 24, 20}, Config{3, 10, 16}, Config{4, 6, 12},
                           Config{5, 5, 10}, Config{6, 4, 8}}) {
    const MeshTopology mesh(cfg.dims, cfg.radix);
    Network net(mesh);
    Rng rng(42 + static_cast<uint64_t>(cfg.dims));
    for (const auto& c : random_fault_placement(mesh, cfg.faults, rng)) net.inject_fault(c);
    const auto rounds = net.stabilize(200000);

    const auto footprint = placement_footprint(net.model());
    int delivered = 0;
    double detours = 0;
    const int routes = 40;
    for (int i = 0; i < routes; ++i) {
      const auto pair = random_enabled_pair(mesh, net.field(), rng, cfg.radix);
      const auto r = net.route(pair.source, pair.dest);
      if (r.delivered) {
        ++delivered;
        detours += r.detours();
      }
    }

    t.add_row({std::to_string(cfg.radix) + "^" + std::to_string(cfg.dims),
               TablePrinter::num(mesh.node_count()), TablePrinter::num(cfg.faults),
               TablePrinter::num((long long)net.blocks().size()),
               TablePrinter::num(rounds.total),
               TablePrinter::num(100.0 * footprint.fraction_of_mesh(), 1),
               TablePrinter::num(routes), TablePrinter::num(delivered),
               TablePrinter::num(delivered > 0 ? detours / delivered : 0.0, 2)});
  }
  t.print(std::cout);
  std::cout << "\nthe same fault model, identification process and routing algorithm run\n"
               "unchanged from 2-D to 6-D — the n-D generality the paper claims.\n";
  return 0;
}
