// Config-driven experiment CLI (builds as `sweep`).
//
// With arguments, every "key=value" token overrides the experiment config
// and one run executes end-to-end — the full declarative surface:
//
//   ./sweep mesh_dims=4 radix=6 router=fault_info replications=200
//   ./sweep mode=dynamic faults=10 batches=2 router=global_table report=json
//   ./sweep --help          # prints the config grammar
//   ./sweep --list          # prints the component catalog (all registries)
//
// Without arguments, it demonstrates the library's dimension-generality by
// sweeping the same config from 2-D to 6-D meshes — the paper's model,
// identification process and routing algorithm run unchanged in every
// dimensionality.

#include <iostream>

#include "src/core/component_catalog.h"
#include "src/core/experiment_runner.h"
#include "src/core/node_process.h"
#include "src/core/scenario.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

namespace {

int run_cli(int argc, char** argv) {
  Config cfg = experiment_config();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h" || arg == "help") {
      std::cout << "usage: sweep [key=value ...] [--list]\n\nconfig keys:\n" << cfg.help();
      std::cout << "\nregistered routers:";
      for (const auto& name : RouterRegistry::instance().names()) std::cout << " " << name;
      std::cout << "\n(--list prints the full component catalog)\n";
      return 0;
    }
    if (arg == "--list") {
      print_component_catalog(std::cout);
      return 0;
    }
  }
  try {
    cfg.parse_args(argc, argv);
    ExperimentRunner(cfg).run_and_report(std::cout);
  } catch (const ConfigError& e) {
    std::cerr << "error: " << e.what() << "\n(run with --help for the config grammar)\n";
    return 2;
  }
  return 0;
}

int run_default_sweep() {
  TablePrinter t({"mesh", "nodes", "faults", "blocks", "converge rounds", "info nodes %",
                  "routes", "delivered", "mean detours"});

  struct Row {
    int dims, radix, faults;
  };
  for (const Row row : {Row{2, 24, 20}, Row{3, 10, 16}, Row{4, 6, 12},
                        Row{5, 5, 10}, Row{6, 4, 8}}) {
    Config cfg = experiment_config();
    cfg.set_int("mesh_dims", row.dims);
    cfg.set_int("radix", row.radix);
    cfg.set_int("faults", row.faults);
    cfg.set_int("routes", 40);
    cfg.set_int("min_pair_distance", row.radix);
    cfg.set_int("max_rounds", 200000);
    cfg.set_int("seed", 42 + row.dims);

    // The standard run() records delivery metrics; the footprint and block
    // census need the built environment, so use the per-replication hook.
    ExperimentRunner runner(cfg);
    const auto res = runner.run_each_static(
        [&runner](ExperimentRunner::StaticEnv& env, Rng& rng, MetricSet& out) {
          out.add("blocks", static_cast<double>(env.net->blocks().size()));
          out.add("rounds", env.rounds.total);
          out.add("info_frac", 100.0 * placement_footprint(env.net->model()).fraction_of_mesh());
          const auto router = runner.make_router();
          const int routes = static_cast<int>(runner.config().get_int("routes"));
          for (int i = 0; i < routes; ++i) {
            const auto pair = random_enabled_pair(env.mesh(), env.net->field(), rng,
                                                  env.mesh().extent(0));
            const auto r = run_static_route(env.net->context(), *router, pair.source, pair.dest);
            out.add("delivered", r.delivered ? 1.0 : 0.0);
            if (r.delivered) out.add("detours", static_cast<double>(r.detours()));
          }
        });
    const MetricSet& m = res.metrics;
    const long long nodes = [&] {
      long long n = 1;
      for (int i = 0; i < row.dims; ++i) n *= row.radix;
      return n;
    }();
    t.add_row({std::to_string(row.radix) + "^" + std::to_string(row.dims),
               TablePrinter::num(nodes), TablePrinter::num(row.faults),
               TablePrinter::num(m.mean("blocks"), 0), TablePrinter::num(m.mean("rounds"), 0),
               TablePrinter::num(m.mean("info_frac"), 1),
               TablePrinter::num((long long)m.stats("delivered").count()),
               TablePrinter::num((long long)m.stats("delivered").sum()),
               TablePrinter::num(m.mean("detours"), 2)});
  }
  t.print(std::cout);
  std::cout << "\nthe same fault model, identification process and routing algorithm run\n"
               "unchanged from 2-D to 6-D — the n-D generality the paper claims.\n"
               "(run with key=value overrides or --help for the config-driven CLI)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) return run_cli(argc, argv);
  return run_default_sweep();
}
