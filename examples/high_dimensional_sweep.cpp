// Dimension-generality demo (builds as `high_dimensional_sweep`).
//
// Without arguments, it demonstrates the library's n-D generality by running
// the same configuration from 2-D to 6-D meshes — a *zipped* campaign
// (mesh_dims, radix and faults co-vary row by row, so the node count stays
// comparable) built on CampaignRunner's explicit-grid constructor: all five
// dimensionalities and their replications fan out over one thread pool
// instead of running serially row by row.
//
// With arguments, every token goes through the full sweep grammar and the
// campaign runs end-to-end — the same surface as the `sweep` binary:
//
//   ./high_dimensional_sweep mesh_dims=[2,3,4] radix=6 replications=50
//   ./high_dimensional_sweep --help          # config + sweep grammar
//   ./high_dimensional_sweep --list          # the component catalog

#include <iostream>
#include <string>
#include <vector>

#include "examples/cli_common.h"
#include "src/core/node_process.h"
#include "src/core/scenario.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

namespace {

int run_default_sweep() {
  Config base = experiment_config();
  base.set_int("routes", 40);
  base.set_int("max_rounds", 200000);

  struct Row {
    int dims, radix, faults;
  };
  std::vector<Config> points;
  for (const Row row : {Row{2, 24, 20}, Row{3, 10, 16}, Row{4, 6, 12},
                        Row{5, 5, 10}, Row{6, 4, 8}}) {
    Config cfg = base;
    cfg.set_int("mesh_dims", row.dims);
    cfg.set_int("radix", row.radix);
    cfg.set_int("faults", row.faults);
    cfg.set_int("min_pair_distance", row.radix);
    cfg.set_int("seed", 42 + row.dims);
    points.push_back(std::move(cfg));
  }

  // The standard run() records delivery metrics; the footprint and block
  // census need the built environment, so the campaign runs a custom body.
  CampaignRunner runner(base, {"mesh_dims", "radix", "faults"}, std::move(points));
  const auto results = runner.run_with(
      [](const ExperimentRunner& r, Rng& rng, MetricSet& out) {
        ExperimentRunner::StaticEnv env = r.build_static(rng);
        out.add("blocks", static_cast<double>(env.net->blocks().size()));
        out.add("rounds", env.rounds.total);
        out.add("info_frac", 100.0 * placement_footprint(env.net->model()).fraction_of_mesh());
        const auto router = r.make_router();
        const int routes = static_cast<int>(r.config().get_int("routes"));
        for (int i = 0; i < routes; ++i) {
          const auto pair = random_enabled_pair(env.mesh(), env.net->field(), rng,
                                                env.mesh().extent(0));
          const auto res = run_static_route(env.net->context(), *router, pair.source, pair.dest);
          out.add("delivered", res.delivered ? 1.0 : 0.0);
          if (res.delivered) out.add("detours", static_cast<double>(res.detours()));
        }
      });

  TablePrinter t({"mesh", "nodes", "faults", "blocks", "converge rounds", "info nodes %",
                  "routes", "delivered", "mean detours"});
  for (const PointResult& point : results) {
    const Config& cfg = point.result.config;
    const int dims = static_cast<int>(cfg.get_int("mesh_dims"));
    const int radix = static_cast<int>(cfg.get_int("radix"));
    const MetricSet& m = point.result.metrics;
    long long nodes = 1;
    for (int i = 0; i < dims; ++i) nodes *= radix;
    t.add_row({std::to_string(radix) + "^" + std::to_string(dims), TablePrinter::num(nodes),
               TablePrinter::num(cfg.get_int("faults")), TablePrinter::num(m.mean("blocks"), 0),
               TablePrinter::num(m.mean("rounds"), 0),
               TablePrinter::num(m.mean("info_frac"), 1),
               TablePrinter::num((long long)m.stats("delivered").count()),
               TablePrinter::num((long long)m.stats("delivered").sum()),
               TablePrinter::num(m.mean("detours"), 2)});
  }
  t.print(std::cout);
  std::cout << "\nthe same fault model, identification process and routing algorithm run\n"
               "unchanged from 2-D to 6-D — the n-D generality the paper claims.\n"
               "(run with key=value / key=[...] overrides or --help for the campaign CLI)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1)
    return cli::campaign_main(
        argc, argv, SweepSpec(experiment_config()),
        {"high_dimensional_sweep",
         "config-driven campaign CLI (no arguments: the 2-D..6-D generality demo)",
         "", ""});
  return run_default_sweep();
}
