// E8 — Theorem 5: arbitrary (possibly unsafe) sources.  If a path of length
// L exists at start time, the routing ends within k intervals with
// k <= max{ l | L + t - t_p - sum (d_i - 2a_i - 2e_max) > 0 }.  The bench
// selects deliberately UNSAFE sources (a block intersects the minimal box),
// takes L from the block-avoiding oracle, and checks the interval count.

#include <iostream>

#include "src/core/dynamic_simulation.h"
#include "src/core/scenario.h"
#include "src/fault/safety.h"
#include "src/routing/oracle_router.h"
#include "src/sim/statistics.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main() {
  print_banner(std::cout, "E8 / Theorem 5: unsafe sources, interval bound with path length L");

  TablePrinter t({"mesh", "runs", "delivered", "mean L-D", "mean intervals used",
                  "mean bound k", "violations"});
  int total_violations = 0;
  struct Config {
    int dims, radix;
  };
  for (const Config cfg : {Config{2, 16}, Config{3, 10}}) {
    Rng rng(0xE8 + static_cast<uint64_t>(cfg.dims));
    RunningStats slack, used, bound_k;
    int runs = 0, delivered = 0, violations = 0;
    for (int trial = 0; trial < 80; ++trial) {
      Rng tr = rng.fork(static_cast<uint64_t>(trial));
      const MeshTopology mesh(cfg.dims, cfg.radix);
      FaultSchedule sch;
      const long long interval = 70;
      for (int b = 0; b < 3; ++b) {
        const auto faults = clustered_fault_placement(mesh, 4, tr);
        for (const auto& c : faults) sch.add_fail(b * interval, c);
      }
      DynamicSimulation sim(mesh, sch);
      for (int i = 0; i < 40; ++i) sim.step();

      // Hunt for an UNSAFE pair.
      Pair pair{};
      bool found = false;
      const auto blocks = block_boxes(sim.model().field());
      for (int attempt = 0; attempt < 200; ++attempt) {
        pair = random_enabled_pair(mesh, sim.model().field(), tr, cfg.radix);
        if (!is_safe_source(blocks, pair.source, pair.dest)) {
          found = true;
          break;
        }
      }
      if (!found) continue;
      const auto L =
          oracle_path_length(mesh, sim.model().field(), pair.source, pair.dest);
      if (!L.has_value()) continue;

      const int id = sim.launch_message(pair.source, pair.dest);
      sim.run(8000);
      const auto& msg = sim.message(id);
      ++runs;
      if (!msg.delivered) continue;
      ++delivered;

      const auto tl = sim.timeline(msg.start_step);
      const auto bound = theorem5_bound(tl, *L);
      // Intervals the routing actually spanned: occurrences in
      // [start_step, end_step] plus the one underway at start.
      long long intervals_used = 1;
      for (const auto t_i : tl.t)
        if (t_i > msg.start_step && t_i <= msg.end_step) ++intervals_used;
      slack.add(static_cast<double>(*L - msg.initial_distance));
      used.add(static_cast<double>(intervals_used));
      bound_k.add(static_cast<double>(bound.k));
      if (intervals_used > bound.k) ++violations;
    }
    total_violations += violations;
    t.add_row({std::to_string(cfg.radix) + "^" + std::to_string(cfg.dims),
               TablePrinter::num(runs), TablePrinter::num(delivered),
               TablePrinter::num(slack.mean(), 2), TablePrinter::num(used.mean(), 2),
               TablePrinter::num(bound_k.mean(), 2), TablePrinter::num(violations)});
  }
  t.print(std::cout);
  std::cout << "  shape check: unsafe sources pay L - D extra distance up front; the number\n"
               "  of fault intervals the route spans stays within Theorem 5's k.\n";
  std::cout << "  RESULT: " << (total_violations == 0 ? "Theorem 5 bound holds" : "VIOLATED")
            << "\n";
  return total_violations == 0 ? 0 : 1;
}
