// E8 — Theorem 5: arbitrary (possibly unsafe) sources.  If a path of length
// L exists at start time, the routing ends within k intervals with
// k <= max{ l | L + t - t_p - sum (d_i - 2a_i - 2e_max) > 0 }.  The bench
// selects deliberately UNSAFE sources (a block intersects the minimal box),
// takes L from the block-avoiding oracle, and checks the interval count.

#include <iostream>

#include "src/core/experiment_runner.h"
#include "src/core/scenario.h"
#include "src/fault/safety.h"
#include "src/routing/oracle_router.h"
#include "src/sim/statistics.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main() {
  print_banner(std::cout, "E8 / Theorem 5: unsafe sources, interval bound with path length L");

  TablePrinter t({"mesh", "runs", "delivered", "mean L-D", "mean intervals used",
                  "mean bound k", "violations"});
  int total_violations = 0;
  struct Row {
    int dims, radix;
  };
  for (const Row row : {Row{2, 16}, Row{3, 10}}) {
    Config cfg = experiment_config();
    cfg.parse_string("mode=dynamic fault_model=clustered faults=4 batches=3 "
                     "fault_interval=70 warmup_steps=40 max_steps=8000 replications=80");
    cfg.set_int("mesh_dims", row.dims);
    cfg.set_int("radix", row.radix);
    cfg.set_int("min_pair_distance", row.radix);
    cfg.set_int("seed", 0xE8 + row.dims);
    ExperimentRunner runner(cfg);
    const auto res = runner.run_each([&runner, &row](Rng& rng, MetricSet& out) {
      auto env = runner.build_dynamic(rng);
      DynamicSimulation& sim = *env.sim;
      const Topology& mesh = *env.mesh;

      // Hunt for an UNSAFE pair.
      Pair pair{};
      bool found = false;
      const auto blocks = block_boxes(sim.model().field());
      for (int attempt = 0; attempt < 200; ++attempt) {
        pair = random_enabled_pair(mesh, sim.model().field(), rng, row.radix);
        if (!is_safe_source(blocks, pair.source, pair.dest)) {
          found = true;
          break;
        }
      }
      if (!found) return;
      const auto L = oracle_path_length(mesh, sim.model().field(), pair.source, pair.dest);
      if (!L.has_value()) return;

      const int id = sim.launch_message(pair.source, pair.dest);
      sim.run(8000);
      const auto& msg = sim.message(id);
      out.add("runs", 1.0);
      if (!msg.delivered) return;

      const auto tl = sim.timeline(msg.start_step);
      const auto bound = theorem5_bound(tl, *L);
      // Intervals the routing actually spanned: occurrences in
      // [start_step, end_step] plus the one underway at start.
      long long intervals_used = 1;
      for (const auto t_i : tl.t)
        if (t_i > msg.start_step && t_i <= msg.end_step) ++intervals_used;
      out.add("slack", static_cast<double>(*L - msg.initial_distance));
      out.add("used", static_cast<double>(intervals_used));
      out.add("bound_k", static_cast<double>(bound.k));
      out.add("violations", intervals_used > bound.k ? 1.0 : 0.0);
    });
    const MetricSet& m = res.metrics;
    const int runs = m.has("runs") ? static_cast<int>(m.stats("runs").count()) : 0;
    const int delivered = m.has("used") ? static_cast<int>(m.stats("used").count()) : 0;
    const int violations =
        m.has("violations") ? static_cast<int>(m.stats("violations").sum()) : 0;
    total_violations += violations;
    t.add_row({std::to_string(row.radix) + "^" + std::to_string(row.dims),
               TablePrinter::num(runs), TablePrinter::num(delivered),
               TablePrinter::num(m.mean("slack"), 2), TablePrinter::num(m.mean("used"), 2),
               TablePrinter::num(m.mean("bound_k"), 2), TablePrinter::num(violations)});
  }
  t.print(std::cout);
  std::cout << "  shape check: unsafe sources pay L - D extra distance up front; the number\n"
               "  of fault intervals the route spans stays within Theorem 5's k.\n";
  std::cout << "  RESULT: " << (total_violations == 0 ? "Theorem 5 bound holds" : "VIOLATED")
            << "\n";
  return total_violations == 0 ? 0 : 1;
}
