// E11 — Theorem 2: how much of the traffic is "safe" (guaranteed a minimal
// path) as faults accumulate, per mesh dimensionality.  Safe fractions are
// the regime where Theorems 3-4 apply directly; Theorem 5 covers the rest.

#include <iostream>

#include "src/core/experiment_runner.h"
#include "src/fault/safety.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main() {
  print_banner(std::cout, "E11 / Theorem 2: fraction of safe (s,d) pairs vs fault count");

  TablePrinter t({"mesh", "faults", "blocks", "safe pairs %", "minimal delivery % (measured)"});
  struct Row {
    int dims, radix;
  };
  for (const Row cfg : {Row{2, 16}, Row{3, 10}, Row{4, 6}}) {
    for (const int faults : {2, 6, 12, 24}) {
      Config c = experiment_config();
      c.set_int("mesh_dims", cfg.dims);
      c.set_int("radix", cfg.radix);
      c.set_int("faults", faults);
      c.set_int("replications", 12);
      c.set_int("seed", 0xE11 + cfg.dims * 100 + faults);
      const auto res = ExperimentRunner(c).run_each_static(
          [](ExperimentRunner::StaticEnv& env, Rng& rng, MetricSet& out) {
            const Topology& mesh = env.mesh();
            Network& net = *env.net;
            const auto blocks = block_boxes(net.field());
            out.add("blocks", static_cast<double>(blocks.size()));

            // Sample pairs; classify safety and verify safe => minimal.
            int safe = 0, sampled = 0, minimal = 0, safe_minimal = 0;
            for (int i = 0; i < 60; ++i) {
              const NodeId a = static_cast<NodeId>(
                  rng.next_below(static_cast<uint64_t>(mesh.node_count())));
              const NodeId b = static_cast<NodeId>(
                  rng.next_below(static_cast<uint64_t>(mesh.node_count())));
              if (net.field().at(a) != NodeStatus::kEnabled ||
                  net.field().at(b) != NodeStatus::kEnabled)
                continue;
              const Coord s = mesh.coord_of(a), d = mesh.coord_of(b);
              ++sampled;
              const bool is_safe = is_safe_source(blocks, s, d);
              if (is_safe) ++safe;
              const auto r = net.route(s, d, 30 * mesh.diameter());
              if (r.delivered && r.detours() == 0) {
                ++minimal;
                if (is_safe) ++safe_minimal;
              }
            }
            if (sampled > 0) {
              out.add("safe", 100.0 * safe / sampled);
              out.add("minimal", 100.0 * minimal / sampled);
              // Theorem 2 promise: every safe pair delivers minimally.
              out.add("safe_honored", safe > 0 ? 100.0 * safe_minimal / safe : 100.0);
            }
          });
      const MetricSet& m = res.metrics;
      t.add_row({std::to_string(cfg.radix) + "^" + std::to_string(cfg.dims),
                 TablePrinter::num(faults), TablePrinter::num(m.mean("blocks"), 1),
                 TablePrinter::num(m.mean("safe"), 1), TablePrinter::num(m.mean("minimal"), 1)});
      if (m.mean("safe_honored") < 100.0) {
        std::cout << "  WARNING: safe pair delivered non-minimally ("
                  << m.mean("safe_honored") << "%)\n";
        return 1;
      }
    }
  }
  t.print(std::cout);
  std::cout << "  shape check: the safe fraction decays with fault count and decays faster in\n"
               "  lower dimensions (blocks cut more of the minimal boxes); every safe pair\n"
               "  delivered minimally, as Theorem 2 promises.\n";
  return 0;
}
