// E4 — Figures 5 and 6: the identification process and the propagation of
// identified information.  Measures the three-phase process on the Figure 1
// block (rounds until the opposite corner forms the block info, then rounds
// until the whole envelope holds it), and sweeps block size to show b_i
// grows linearly with the block edge — "fault information can be
// distributed quickly".

#include <iostream>

#include "src/core/experiment_runner.h"
#include "src/core/scenario.h"
#include "src/fault/corner_taxonomy.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main() {
  print_banner(std::cout, "E4 / Figure 5: identification of the Figure 1 block (8-ary 3-D)");

  {
    Network net(MeshTopology(3, 8));
    for (const auto& f : figure1_faults()) net.inject_fault(f);

    // Step the protocol manually to observe the milestones.
    int round = 0, formed_round = -1, envelope_round = -1;
    const Box block = figure1_block();
    const auto envelope = envelope_positions(net.mesh(), block);
    while (net.model().run_round() && round < 1000) {
      ++round;
      if (formed_round < 0) {
        for (const auto& c : block_corners(net.mesh(), block))
          if (net.model().info().holds(net.mesh().index_of(c), block)) formed_round = round;
      }
      if (envelope_round < 0) {
        bool all = true;
        for (const auto& c : envelope)
          if (!net.model().info().holds(net.mesh().index_of(c), block)) all = false;
        if (all) envelope_round = round;
      }
    }

    TablePrinter t({"milestone", "round", "paper phase"});
    t.add_row({"block info formed at a corner", TablePrinter::num(formed_round),
               "phases 1-3 (Figure 5)"});
    t.add_row({"whole envelope informed", TablePrinter::num(envelope_round),
               "back-propagation (Figure 6)"});
    t.add_row({"fully quiescent (incl. walls)", TablePrinter::num(round), "boundary construction"});
    t.print(std::cout);
    std::cout << "  identification messages sent in total: " << net.model().messages_sent()
              << "\n";
    if (formed_round < 0 || envelope_round < 0) {
      std::cout << "  RESULT: MISMATCH (identification did not complete)\n";
      return 1;
    }
  }

  print_banner(std::cout, "E4: b_i scales linearly with block edge length (cube blocks, 3-D)");
  TablePrinter sweep({"mesh", "block edge e", "a_i (rounds)", "b_i (rounds)", "c_i (rounds)",
                      "messages"});
  for (int e = 1; e <= 5; ++e) {
    const int radix = std::max(8, 2 * e + 6);
    const int lo = radix / 2 - e / 2;
    std::string box;
    for (int d = 0; d < 3; ++d)
      box += (d > 0 ? "," : "") + std::to_string(lo) + ":" + std::to_string(lo + e - 1);
    Config cfg = experiment_config();
    cfg.set_int("mesh_dims", 3);
    cfg.set_int("radix", radix);
    cfg.set_str("fault_model", "box");
    cfg.set_str("fault_box", box);
    Rng rng(static_cast<uint64_t>(cfg.get_int("seed")));
    const auto env = ExperimentRunner(cfg).build_static(rng);
    sweep.add_row({std::to_string(radix) + "^3", TablePrinter::num(e),
                   TablePrinter::num(env.rounds.labeling),
                   TablePrinter::num(env.rounds.identification),
                   TablePrinter::num(env.rounds.boundary),
                   TablePrinter::num(env.net->model().messages_sent())});
  }
  sweep.print(std::cout);
  std::cout << "  (the paper's claim: constructions stabilize in O(block edge + mesh extent) "
               "rounds,\n   so d_i > (a_i+b_i+c_i)/lambda is easy to satisfy)\n";
  std::cout << "  RESULT: reproduces Figure 5/6 process\n";
  return 0;
}
