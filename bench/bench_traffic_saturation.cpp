// E14: traffic saturation sweep — latency/throughput under contention.
//
// The ROADMAP's north-star question: how does limited-global information
// routing behave under sustained load?  This bench runs one campaign over
// router x fault count x injection rate for the three information
// placements the paper compares — fault_info (limited-global), global_table
// (instant global), no_info — and prints the latency/throughput matrix,
// with link arbitration on (at most one message per directed channel per
// step).  Every point x replication task fans out over one thread pool (the
// CampaignRunner grid contract), so the matrix parallelizes across points,
// not just replications.
//
// Self-checks (exit non-zero on violation):
//   - every configuration delivers traffic (throughput > 0);
//   - accepted throughput never exceeds the measured offered load;
//   - mean latency is at least 1 step (a message needs >= 1 hop);
//   - for the fault-free fault_info sweep, mean latency at the highest rate
//     is no lower than at the lowest rate (congestion cannot help).
//
// Any key=value argument overrides the base config (mesh size, steps,
// replications, seed, ...) and any sweep token (rates=a,b,c,
// injection_rate=[...], router=[...], faults=[...]) replaces the
// corresponding default axis; remaining axes keep their defaults, and a
// scalar for a swept key (e.g. faults=12) pins that axis to the one value.
// CI smoke-runs this through scripts/traffic_smoke.sh with a tiny mesh and
// short windows:
//
//   ./bench_traffic_saturation radix=6 warmup_steps=30 measure_steps=200 replications=4

#include <iostream>
#include <string>
#include <vector>

#include "examples/cli_common.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main(int argc, char** argv) {
  SweepSpec spec(experiment_config());
  Config& base = spec.base();
  base.set_str("traffic", "uniform");
  base.set_int("mesh_dims", 2);
  base.set_int("radix", 8);
  base.set_int("warmup_steps", 60);
  base.set_int("measure_steps", 300);
  base.set_int("routes", 0);
  base.set_int("faults", 0);
  base.set_int("replications", 4);
  base.set_int("seed", 14);

  const int parsed = cli::parse_args(argc, argv, spec,
                                     {"bench_traffic_saturation",
                                      "E14: router x faults x injection-rate saturation "
                                      "matrix under link contention (self-checking)",
                                      "", ""});
  if (parsed >= 0) return parsed;

  spec.add_default_axis("router", {"fault_info", "global_table", "no_info"});
  spec.add_default_axis("faults", {"0", "6"});
  spec.add_default_axis("injection_rate", {"0.02", "0.05", "0.1", "0.2"});

  TablePrinter t({"router", "faults", "inj rate", "offered", "throughput", "lat mean",
                  "lat max", "stalls", "delivered %"});
  bool ok = true;
  double fault_free_low_latency = -1.0, fault_free_high_latency = -1.0;
  try {
    const CampaignRunner runner(spec);
    const auto results = runner.run();

    // The swept rate list (user-overridable) anchors the low/high-load
    // comparison below.
    std::vector<double> rates;
    for (const auto& axis : runner.campaign().axes)
      if (axis.key == "injection_rate")
        for (const auto& value : axis.values) rates.push_back(std::stod(value));

    for (const PointResult& point : results) {
      const Config& cfg = point.result.config;
      const std::string& router = cfg.get_str("router");
      const long long faults = cfg.get_int("faults");
      const double rate = cfg.get_double("injection_rate");
      const MetricSet& m = point.result.metrics;
      const double offered = m.mean("offered_load");
      const double throughput = m.mean("throughput");
      const double lat_mean = m.mean("latency");
      const double lat_max = m.has("latency") ? m.stats("latency").max() : 0.0;
      const double delivered = 100.0 * m.mean("delivered_frac");
      t.add_row({router, TablePrinter::num(faults), TablePrinter::num(rate, 2),
                 TablePrinter::num(offered, 4), TablePrinter::num(throughput, 4),
                 TablePrinter::num(lat_mean, 2), TablePrinter::num(lat_max, 0),
                 TablePrinter::num(m.mean("stall_steps"), 0),
                 TablePrinter::num(delivered, 1)});

      if (throughput <= 0.0) {
        std::cerr << "FAIL: " << router << " faults=" << faults << " rate=" << rate
                  << " accepted no traffic\n";
        ok = false;
      }
      if (throughput > offered + 1e-9) {
        std::cerr << "FAIL: " << router << " accepted more than offered\n";
        ok = false;
      }
      if (m.has("latency") && lat_mean < 1.0) {
        std::cerr << "FAIL: " << router << " mean latency below one hop\n";
        ok = false;
      }
      if (router == "fault_info" && faults == 0 && !rates.empty()) {
        if (rate == rates.front()) fault_free_low_latency = lat_mean;
        if (rate == rates.back()) fault_free_high_latency = lat_mean;
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  t.print(std::cout);

  if (fault_free_low_latency > 0 && fault_free_high_latency + 1e-9 < fault_free_low_latency) {
    std::cerr << "FAIL: fault-free latency decreased with load (" << fault_free_low_latency
              << " -> " << fault_free_high_latency << ")\n";
    ok = false;
  }

  std::cout << "\nRESULT: "
            << (ok ? "saturation sweep sane (throughput bounded by offered load, "
                     "latency grows with congestion)"
                   : "VIOLATIONS FOUND")
            << "\n";
  return ok ? 0 : 1;
}
