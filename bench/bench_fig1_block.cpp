// E1 — Figure 1(a) + Figure 2: faulty-block formation and the corner
// taxonomy.  Regenerates the paper's worked example: four faults in an
// 8-ary 3-D mesh form block [3:5, 5:6, 3:4]; (6,4,5) is a 3-level corner
// with 3-level edge neighbours (5,4,5), (6,5,5), (6,4,4); (5,4,5)'s
// neighbours (5,5,5) and (5,4,4) are adjacent to the block.

#include <iostream>

#include "src/core/experiment_runner.h"
#include "src/core/node_process.h"
#include "src/core/scenario.h"
#include "src/fault/corner_taxonomy.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main() {
  print_banner(std::cout, "E1 / Figure 1(a): block construction from four faults (8-ary 3-D)");

  Config cfg = experiment_config();
  cfg.parse_string("scenario=figure1");
  Rng rng(static_cast<uint64_t>(cfg.get_int("seed")));
  auto env = ExperimentRunner(cfg).build_static(rng);
  Network& net = *env.net;

  std::cout << "  faults:";
  for (const auto& f : env.faults) std::cout << " " << f.to_string();
  std::cout << "\n  labeling rounds (a_i): " << env.rounds.labeling << "\n";

  const auto blocks = net.blocks();
  TablePrinter t({"block", "members", "faulty", "disabled", "filled", "e_max",
                  "paper says"});
  for (const auto& b : blocks) {
    t.add_row({b.box.to_string(), TablePrinter::num(b.member_count),
               TablePrinter::num(b.faulty_count),
               TablePrinter::num(b.member_count - b.faulty_count),
               b.filled ? "yes" : "NO", TablePrinter::num(b.box.max_extent()),
               b.box == figure1_block() ? "[3:5, 5:6, 3:4]  MATCH" : "MISMATCH!"});
  }
  t.print(std::cout);

  print_banner(std::cout, "E1 / Figure 2: 3-level corner taxonomy of the block");
  TablePrinter c({"node", "role (paper)", "role (measured)"});
  auto role = [&](const Coord& p) { return inspect_node(net.model(), p).describe(); };
  c.add_row({"(6,4,5)", "3-level corner", role(figure2_corner())});
  c.add_row({"(5,4,5)", "3-level edge node (2-level corner)", role(Coord{5, 4, 5})});
  c.add_row({"(6,5,5)", "3-level edge node", role(Coord{6, 5, 5})});
  c.add_row({"(6,4,4)", "3-level edge node", role(Coord{6, 4, 4})});
  c.add_row({"(5,5,5)", "adjacent node", role(Coord{5, 5, 5})});
  c.add_row({"(5,4,4)", "adjacent node", role(Coord{5, 4, 4})});
  c.print(std::cout);

  print_banner(std::cout, "E1: envelope census (Definition 2 positions, measured)");
  const Box block = blocks.empty() ? Box() : blocks[0].box;
  TablePrinter e({"role", "count", "expected"});
  const Topology& mesh = net.mesh();
  e.add_row({"adjacent (faces)",
             TablePrinter::num((long long)envelope_positions(mesh, block, 1).size()),
             "2(ab+bc+ca) = 2(6+6+4) = 32"});
  e.add_row({"2-level corners (edges)",
             TablePrinter::num((long long)envelope_positions(mesh, block, 2).size()),
             "4(a+b+c) = 4(3+2+2) = 28"});
  e.add_row({"3-level corners",
             TablePrinter::num((long long)envelope_positions(mesh, block, 3).size()),
             "2^3 = 8"});
  e.print(std::cout);

  const bool ok = blocks.size() == 1 && blocks[0].box == figure1_block() && blocks[0].filled;
  std::cout << "\n  RESULT: " << (ok ? "reproduces Figure 1/2" : "MISMATCH") << "\n";
  return ok ? 0 : 1;
}
