// E16: closed-loop vs open-loop saturation — the curves diverge.
//
// Open-loop Bernoulli injection keeps offering packets no matter how
// congested the network is, so past saturation latency blows up and
// offered load stays at the configured rate.  A closed-loop request-reply
// process (injection=closed_loop) self-throttles: each terminal holds at
// most `window` outstanding request-reply pairs, so as congestion grows the
// achieved offered load falls below the configured rate and latency stays
// bounded — "millions of users" behave like the latter, which is why
// saturation studies under the two regimes answer different questions.
// This bench runs one campaign over injection process x injection rate on
// the default router and prints both curves side by side.
//
// Self-checks (exit non-zero on violation):
//   - every configuration delivers traffic (throughput > 0);
//   - accepted throughput never exceeds the measured offered load;
//   - closed-loop pairs complete (delivered fraction stays high);
//   - divergence at the top configured rate: closed_loop's achieved offered
//     load is measurably below bernoulli's (self-throttling), and its mean
//     latency is below bernoulli's (bounded queueing).
//
// Any key=value argument overrides the base config and any sweep token
// replaces the corresponding default axis.  CI smoke-runs this through
// scripts/traffic_smoke.sh with a tiny mesh and short windows:
//
//   ./bench_closed_loop_saturation radix=6 warmup_steps=30 measure_steps=200 replications=2

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "examples/cli_common.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main(int argc, char** argv) {
  SweepSpec spec(experiment_config());
  Config& base = spec.base();
  base.set_str("traffic", "uniform");
  base.set_int("mesh_dims", 2);
  base.set_int("radix", 8);
  base.set_int("warmup_steps", 60);
  base.set_int("measure_steps", 300);
  base.set_int("routes", 0);
  base.set_int("faults", 0);
  base.set_int("replications", 4);
  base.set_int("seed", 16);

  const int parsed = cli::parse_args(argc, argv, spec,
                                     {"bench_closed_loop_saturation",
                                      "E16: open-loop (bernoulli) vs closed-loop "
                                      "(request-reply) saturation curves (self-checking)",
                                      "", ""});
  if (parsed >= 0) return parsed;

  spec.add_default_axis("injection", {"bernoulli", "closed_loop"});
  spec.add_default_axis("injection_rate", {"0.05", "0.1", "0.2", "0.4"});

  TablePrinter t({"injection", "conf rate", "offered", "throughput", "lat mean", "lat max",
                  "stalls", "delivered %"});
  bool ok = true;
  // Per configured rate: the achieved offered load and latency of each
  // process, for the divergence check at the top rate.
  std::map<std::string, std::pair<double, double>> by_key;  // key -> {offered, latency}
  std::vector<double> rates;
  try {
    const CampaignRunner runner(spec);
    const auto results = runner.run();

    for (const auto& axis : runner.campaign().axes)
      if (axis.key == "injection_rate")
        for (const auto& value : axis.values) rates.push_back(std::stod(value));

    for (const PointResult& point : results) {
      const Config& cfg = point.result.config;
      const std::string& injection = cfg.get_str("injection");
      const double rate = cfg.get_double("injection_rate");
      const MetricSet& m = point.result.metrics;
      const double offered = m.mean("offered_load");
      const double throughput = m.mean("throughput");
      const double lat_mean = m.mean("latency");
      const double lat_max = m.has("latency") ? m.stats("latency").max() : 0.0;
      const double delivered = 100.0 * m.mean("delivered_frac");
      t.add_row({injection, TablePrinter::num(rate, 2), TablePrinter::num(offered, 4),
                 TablePrinter::num(throughput, 4), TablePrinter::num(lat_mean, 2),
                 TablePrinter::num(lat_max, 0), TablePrinter::num(m.mean("stall_steps"), 0),
                 TablePrinter::num(delivered, 1)});

      if (throughput <= 0.0) {
        std::cerr << "FAIL: " << injection << " rate=" << rate << " accepted no traffic\n";
        ok = false;
      }
      if (throughput > offered + 1e-9) {
        std::cerr << "FAIL: " << injection << " rate=" << rate
                  << " accepted more than offered\n";
        ok = false;
      }
      if (injection == "closed_loop" && delivered < 90.0) {
        std::cerr << "FAIL: closed_loop rate=" << rate << " only " << delivered
                  << "% of pairs completed\n";
        ok = false;
      }
      by_key[injection + "@" + TablePrinter::num(rate, 2)] = {offered, lat_mean};
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  t.print(std::cout);

  // The divergence that makes closed-loop measurement a different
  // experiment: open-loop offered load tracks the configured rate no matter
  // what (the Bernoulli coin keeps firing), while closed-loop offered load
  // flattens once the windows fill — so at the top configured rate (past
  // saturation) the two achieved loads separate measurably.  Note pair
  // latency is a round trip (request + reply), so it is NOT comparable to
  // the open-loop one-way latency; the curves diverge in offered load.
  if (rates.size() >= 2) {
    const std::string first = TablePrinter::num(rates.front(), 2);
    const std::string top = TablePrinter::num(rates.back(), 2);
    const auto open = by_key.find("bernoulli@" + top);
    const auto closed = by_key.find("closed_loop@" + top);
    const auto closed_first = by_key.find("closed_loop@" + first);
    if (open != by_key.end() && closed != by_key.end() && closed_first != by_key.end()) {
      const double open_offered = open->second.first;
      const double closed_offered = closed->second.first;
      if (closed_offered > 0.8 * open_offered) {
        std::cerr << "FAIL: closed-loop did not self-throttle at rate " << top << " (offered "
                  << closed_offered << " vs open-loop " << open_offered << ")\n";
        ok = false;
      }
      // Flattening: scaling the configured rate by rates.back()/rates.front()
      // scales open-loop offered load by the same factor, but closed-loop
      // offered load by measurably less.
      const double rate_ratio = rates.back() / rates.front();
      const double closed_ratio = closed->second.first / closed_first->second.first;
      if (closed_ratio > 0.8 * rate_ratio) {
        std::cerr << "FAIL: closed-loop offered load did not flatten (grew " << closed_ratio
                  << "x over a " << rate_ratio << "x rate range)\n";
        ok = false;
      }
    }
  }

  std::cout << "\nRESULT: "
            << (ok ? "closed-loop saturation diverges from open-loop (window "
                     "self-throttles past saturation; offered load flattens)"
                   : "VIOLATIONS FOUND")
            << "\n";
  return ok ? 0 : 1;
}
