// E17: the reliability surface under lifecycle fault churn is monotone.
//
// The lifecycle fault engine (DESIGN.md §17) generates fail/repair/transient
// timelines with common random numbers across repair_rate values: the fault
// history is identical down each column of the arrival x repair grid, and
// each fault's repair time is pointwise non-increasing in repair_rate.  That
// construction makes two directional claims testable without enormous
// replication counts:
//
//   - P(route success) (delivered_frac) does not *improve* as the fault
//     arrival rate grows, at fixed repair rate;
//   - P(route success) does not *degrade* as the repair rate grows, at fixed
//     arrival rate (repair_rate=0 — permanent faults — is the floor).
//
// Both checks are epsilon-tolerant: the protocol reroutes around blocks, so
// tiny non-monotonicities from discretization are expected noise, but a
// reversal larger than epsilon means repair events are not actually
// restoring capacity (or arrivals are not actually removing it).
//
// Self-checks (exit 1 on violation, 2 on error):
//   - every grid point delivers traffic (throughput > 0);
//   - monotone non-increase of P(route success) in fault_arrival_rate;
//   - monotone non-decrease of P(route success) in repair_rate;
//   - permanent faults (repair_rate=0) eventually disconnect someone at the
//     top arrival rate (first_unreachable_step was recorded), while the
//     fastest-repair column keeps the mean latency below the permanent one.
//
// Any key=value argument overrides the base config and any sweep token
// replaces the corresponding default axis.  CI smoke-runs this through
// scripts/traffic_smoke.sh with a tiny mesh and short windows:
//
//   ./bench_reliability radix=6 measure_steps=150 replications=2

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "examples/cli_common.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main(int argc, char** argv) {
  SweepSpec spec(experiment_config());
  Config& base = spec.base();
  base.set_str("traffic", "uniform");
  base.set_int("mesh_dims", 2);
  base.set_int("radix", 8);
  base.set_str("fault_model", "lifecycle");
  base.set_double("fault_arrival_rate", 0.05);
  base.set_double("repair_rate", 0.1);
  base.set_int("warmup_steps", 50);
  base.set_int("measure_steps", 400);
  base.set_int("routes", 0);
  base.set_int("replications", 4);
  base.set_int("seed", 17);

  const int parsed = cli::parse_args(argc, argv, spec,
                                     {"bench_reliability",
                                      "E17: monotone reliability surface under lifecycle "
                                      "fault churn (self-checking)",
                                      "", ""});
  if (parsed >= 0) return parsed;

  spec.add_default_axis("fault_arrival_rate", {"0.02", "0.08", "0.2"});
  spec.add_default_axis("repair_rate", {"0", "0.05", "0.5"});

  // The epsilon for the monotonicity checks: reroute noise, not headroom for
  // real reversals.
  const double eps = 0.04;

  TablePrinter t({"arrival", "repair", "P(success)", "ci95", "lat mean", "stalls",
                  "first unreach", "occurrences"});
  bool ok = true;
  std::vector<double> arrivals;
  std::vector<double> repairs;
  // (arrival, repair) -> {P(success), latency, had first_unreachable}
  struct Cell {
    double success = 0.0;
    double latency = 0.0;
    bool disconnected = false;
  };
  std::map<std::pair<double, double>, Cell> grid;
  try {
    const CampaignRunner runner(spec);
    const auto results = runner.run();

    for (const auto& axis : runner.campaign().axes) {
      if (axis.key == "fault_arrival_rate")
        for (const auto& value : axis.values) arrivals.push_back(std::stod(value));
      if (axis.key == "repair_rate")
        for (const auto& value : axis.values) repairs.push_back(std::stod(value));
    }

    for (const PointResult& point : results) {
      const Config& cfg = point.result.config;
      const double arrival = cfg.get_double("fault_arrival_rate");
      const double repair = cfg.get_double("repair_rate");
      const MetricSet& m = point.result.metrics;
      const double success = m.has("delivered_frac") ? m.mean("delivered_frac") : 0.0;
      const double ci = m.has("delivered_frac")
                            ? m.stats("delivered_frac").ci95_half_width()
                            : 0.0;
      const double latency = m.has("latency") ? m.mean("latency") : 0.0;
      const bool disconnected = m.has("first_unreachable_step");
      t.add_row({TablePrinter::num(arrival, 2), TablePrinter::num(repair, 2),
                 TablePrinter::num(success, 4),
                 ci == ci ? TablePrinter::num(ci, 4) : "",  // NaN when replications=1
                 TablePrinter::num(latency, 2), TablePrinter::num(m.mean("stall_steps"), 0),
                 disconnected ? TablePrinter::num(m.mean("first_unreachable_step"), 0) : "-",
                 TablePrinter::num(m.mean("occurrences"), 1)});

      if (m.mean("throughput") <= 0.0) {
        std::cerr << "FAIL: arrival=" << arrival << " repair=" << repair
                  << " accepted no traffic\n";
        ok = false;
      }
      grid[{arrival, repair}] = Cell{success, latency, disconnected};
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  t.print(std::cout);

  // Monotone non-increase in the arrival rate, per repair column.
  for (const double repair : repairs) {
    for (size_t i = 0; i + 1 < arrivals.size(); ++i) {
      const Cell& lo = grid[{arrivals[i], repair}];
      const Cell& hi = grid[{arrivals[i + 1], repair}];
      if (hi.success > lo.success + eps) {
        std::cerr << "FAIL: P(success) improved from " << lo.success << " to " << hi.success
                  << " as fault_arrival_rate rose " << arrivals[i] << " -> " << arrivals[i + 1]
                  << " (repair_rate=" << repair << ")\n";
        ok = false;
      }
    }
  }
  // Monotone non-decrease in the repair rate, per arrival row.
  for (const double arrival : arrivals) {
    for (size_t i = 0; i + 1 < repairs.size(); ++i) {
      const Cell& slow = grid[{arrival, repairs[i]}];
      const Cell& fast = grid[{arrival, repairs[i + 1]}];
      if (fast.success < slow.success - eps) {
        std::cerr << "FAIL: P(success) degraded from " << slow.success << " to "
                  << fast.success << " as repair_rate rose " << repairs[i] << " -> "
                  << repairs[i + 1] << " (fault_arrival_rate=" << arrival << ")\n";
        ok = false;
      }
    }
  }
  // Somewhere on the grid churn must actually sever a route — otherwise the
  // time-to-first-unreachable instrument never fired and the surface says
  // nothing about disconnection.  (Which *cell* disconnects first is
  // seed-dependent on small meshes, so the check is grid-wide.)  And at the
  // top arrival rate, the fastest repair policy must not be slower than
  // permanent faults.
  bool any_disconnected = false;
  for (const auto& [key, cell] : grid) any_disconnected = any_disconnected || cell.disconnected;
  if (!any_disconnected) {
    std::cerr << "FAIL: no grid point ever made a destination unreachable "
                 "(first_unreachable_step never recorded)\n";
    ok = false;
  }
  if (!arrivals.empty() && !repairs.empty() && repairs.front() == 0.0) {
    const Cell& permanent = grid[{arrivals.back(), 0.0}];
    const Cell& fastest = grid[{arrivals.back(), repairs.back()}];
    if (fastest.latency > permanent.latency * 1.25 + 1.0) {
      std::cerr << "FAIL: fastest repair (rate=" << repairs.back() << ") has latency "
                << fastest.latency << " vs permanent " << permanent.latency << "\n";
      ok = false;
    }
  }

  std::cout << "\nRESULT: "
            << (ok ? "reliability surface is monotone (P(route success) falls with fault "
                     "arrivals, rises with repair rate; permanent faults disconnect)"
                   : "VIOLATIONS FOUND")
            << "\n";
  return ok ? 0 : 1;
}
