// E6 — Theorem 3: the distance-to-destination trajectory D(i) under dynamic
// faults, measured against the paper's per-interval bound
//   D(i) <= D(i-1) - (d_{i-1} - 2 a_{i-1} - 2 e_max).
// Random dynamic schedules honouring the d_i assumption; safe sources.

#include <iostream>

#include "src/core/dynamic_simulation.h"
#include "src/core/scenario.h"
#include "src/fault/labeling.h"
#include "src/fault/safety.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main() {
  print_banner(std::cout, "E6 / Theorem 3: measured D(i) vs bound, one illustrated run (2-D 16^2)");

  const MeshTopology mesh(2, 16);
  FaultSchedule schedule;
  // Three fault batches, interval 40 steps (>> a_i + e_max), away from the
  // source-destination diagonal start.
  for (const auto& c : box_fault_placement(mesh, Box(Coord{6, 4}, Coord{7, 5})))
    schedule.add_fail(0, c);
  for (const auto& c : box_fault_placement(mesh, Box(Coord{10, 9}, Coord{11, 10})))
    schedule.add_fail(40, c);
  for (const auto& c : box_fault_placement(mesh, Box(Coord{3, 11}, Coord{4, 12})))
    schedule.add_fail(80, c);

  DynamicSimulation sim(mesh, schedule);
  for (int i = 0; i < 30; ++i) sim.step();  // converge the first batch
  const Coord s{0, 0}, d{14, 14};
  const int id = sim.launch_message(s, d);
  sim.run(4000);
  const auto& msg = sim.message(id);

  const auto tl = sim.timeline(msg.start_step);
  const auto bounds = theorem3_distance_bounds(tl, msg.initial_distance);

  TablePrinter t({"i", "t_i", "a_i", "measured D(i)", "Theorem-3 bound", "holds"});
  bool all_hold = true;
  for (size_t i = 0; i < tl.t.size(); ++i) {
    const int measured = i < msg.distance_at_occurrence.size()
                             ? msg.distance_at_occurrence[i]
                             : 0;
    const bool holds = measured <= bounds[i];
    all_hold = all_hold && holds;
    t.add_row({TablePrinter::num((long long)(i + 1)), TablePrinter::num(tl.t[i]),
               TablePrinter::num(tl.a[i]), TablePrinter::num(measured),
               TablePrinter::num(bounds[i]), holds ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "  message: D=" << msg.initial_distance << ", delivered="
            << (msg.delivered ? "yes" : "no") << ", total steps=" << msg.header.total_steps()
            << ", detours=" << msg.detours() << "\n";

  print_banner(std::cout, "E6: randomized validation (100 runs, 2-D and 3-D)");
  int runs = 0, violations = 0, delivered = 0;
  Rng rng(0xE6);
  for (int trial = 0; trial < 100; ++trial) {
    Rng t2 = rng.fork(static_cast<uint64_t>(trial));
    const int dims = 2 + trial % 2;
    const MeshTopology m2(dims, dims == 2 ? 16 : 10);
    FaultSchedule sch;
    const long long interval = 60;
    for (int b = 0; b < 3; ++b) {
      const auto faults = clustered_fault_placement(m2, 3, t2);
      for (const auto& c : faults) sch.add_fail(b * interval, c);
    }
    DynamicSimulationOptions opts;
    DynamicSimulation sim2(m2, sch, opts);
    for (int i = 0; i < 40; ++i) sim2.step();
    const auto pair = random_enabled_pair(m2, sim2.model().field(), t2, m2.extent(0));
    if (!is_safe_source(block_boxes(sim2.model().field()), pair.source, pair.dest)) continue;
    const int mid = sim2.launch_message(pair.source, pair.dest);
    sim2.run(8000);
    const auto& m = sim2.message(mid);
    if (!m.delivered) continue;
    ++delivered;
    const auto tl2 = sim2.timeline(m.start_step);
    const auto b2 = theorem3_distance_bounds(tl2, m.initial_distance);
    ++runs;
    for (size_t i = 0; i < tl2.t.size() && i < m.distance_at_occurrence.size(); ++i)
      if (m.distance_at_occurrence[i] > b2[i]) ++violations;
  }
  std::cout << "  runs checked: " << runs << "  delivered: " << delivered
            << "  bound violations: " << violations << "\n";
  std::cout << "  RESULT: " << (all_hold && violations == 0 ? "Theorem 3 bound holds"
                                                            : "VIOLATIONS FOUND")
            << "\n";
  return all_hold && violations == 0 ? 0 : 1;
}
