// E6 — Theorem 3: the distance-to-destination trajectory D(i) under dynamic
// faults, measured against the paper's per-interval bound
//   D(i) <= D(i-1) - (d_{i-1} - 2 a_{i-1} - 2 e_max).
// Random dynamic schedules honouring the d_i assumption; safe sources.

#include <iostream>

#include "src/core/experiment_runner.h"
#include "src/core/scenario.h"
#include "src/fault/labeling.h"
#include "src/fault/safety.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main() {
  print_banner(std::cout, "E6 / Theorem 3: measured D(i) vs bound, one illustrated run (2-D 16^2)");

  const MeshTopology mesh(2, 16);
  FaultSchedule schedule;
  // Three fault batches, interval 40 steps (>> a_i + e_max), away from the
  // source-destination diagonal start.
  for (const auto& c : box_fault_placement(mesh, Box(Coord{6, 4}, Coord{7, 5})))
    schedule.add_fail(0, c);
  for (const auto& c : box_fault_placement(mesh, Box(Coord{10, 9}, Coord{11, 10})))
    schedule.add_fail(40, c);
  for (const auto& c : box_fault_placement(mesh, Box(Coord{3, 11}, Coord{4, 12})))
    schedule.add_fail(80, c);

  DynamicSimulation sim(mesh, schedule);
  for (int i = 0; i < 30; ++i) sim.step();  // converge the first batch
  const Coord s{0, 0}, d{14, 14};
  const int id = sim.launch_message(s, d);
  sim.run(4000);
  const auto& msg = sim.message(id);

  const auto tl = sim.timeline(msg.start_step);
  const auto bounds = theorem3_distance_bounds(tl, msg.initial_distance);

  TablePrinter t({"i", "t_i", "a_i", "measured D(i)", "Theorem-3 bound", "holds"});
  bool all_hold = true;
  for (size_t i = 0; i < tl.t.size(); ++i) {
    const int measured = i < msg.distance_at_occurrence.size()
                             ? msg.distance_at_occurrence[i]
                             : 0;
    const bool holds = measured <= bounds[i];
    all_hold = all_hold && holds;
    t.add_row({TablePrinter::num((long long)(i + 1)), TablePrinter::num(tl.t[i]),
               TablePrinter::num(tl.a[i]), TablePrinter::num(measured),
               TablePrinter::num(bounds[i]), holds ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "  message: D=" << msg.initial_distance << ", delivered="
            << (msg.delivered ? "yes" : "no") << ", total steps=" << msg.header.total_steps()
            << ", detours=" << msg.detours() << "\n";

  print_banner(std::cout, "E6: randomized validation (100 runs, 2-D and 3-D)");
  int runs = 0, violations = 0, delivered = 0;
  for (const int dims : {2, 3}) {
    Config cfg = experiment_config();
    cfg.parse_string("mode=dynamic fault_model=clustered faults=3 batches=3 "
                     "fault_interval=60 warmup_steps=40 max_steps=8000 replications=50");
    cfg.set_int("mesh_dims", dims);
    cfg.set_int("radix", dims == 2 ? 16 : 10);
    cfg.set_int("seed", 0xE6 + dims);
    ExperimentRunner runner(cfg);
    const auto res = runner.run_each([&runner](Rng& rng, MetricSet& out) {
      auto env = runner.build_dynamic(rng);
      const auto pair = random_enabled_pair(*env.mesh, env.sim->model().field(), rng,
                                            env.mesh->extent(0));
      if (!is_safe_source(block_boxes(env.sim->model().field()), pair.source, pair.dest))
        return;
      const int mid = env.sim->launch_message(pair.source, pair.dest);
      env.sim->run(8000);
      const auto& m = env.sim->message(mid);
      if (!m.delivered) return;
      out.add("delivered", 1.0);
      const auto tl2 = env.sim->timeline(m.start_step);
      const auto b2 = theorem3_distance_bounds(tl2, m.initial_distance);
      out.add("runs", 1.0);
      int bad = 0;
      for (size_t i = 0; i < tl2.t.size() && i < m.distance_at_occurrence.size(); ++i)
        if (m.distance_at_occurrence[i] > b2[i]) ++bad;
      out.add("violations", bad);
    });
    runs += static_cast<int>(res.metrics.has("runs") ? res.metrics.stats("runs").sum() : 0);
    delivered += static_cast<int>(
        res.metrics.has("delivered") ? res.metrics.stats("delivered").sum() : 0);
    violations += static_cast<int>(
        res.metrics.has("violations") ? res.metrics.stats("violations").sum() : 0);
  }
  std::cout << "  runs checked: " << runs << "  delivered: " << delivered
            << "  bound violations: " << violations << "\n";
  std::cout << "  RESULT: " << (all_hold && violations == 0 ? "Theorem 3 bound holds"
                                                            : "VIOLATIONS FOUND")
            << "\n";
  return all_hold && violations == 0 ? 0 : 1;
}
