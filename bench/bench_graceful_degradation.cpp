// E9 — the paper's headline empirical claim: "the performance of routing
// process degrades gracefully in such a dynamic system", and the value of
// the limited-global information against the paper's comparison points:
// the information-free backtracking PCS, the instant-global oracle tables,
// the broadcast-delayed global tables, and dimension-order routing.
// Also ablates the persistent-marks header variant (DESIGN.md §6.7).

#include <iostream>

#include "src/core/dynamic_simulation.h"
#include "src/core/experiment.h"
#include "src/core/scenario.h"
#include "src/routing/dimension_order_router.h"
#include "src/routing/route_walker.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

namespace {

struct ModeRow {
  const char* name;
  InfoMode mode;
  bool persistent;
};

void degradation_sweep(int dims, int radix, std::ostream& os) {
  print_banner(os, "E9: delivery cost vs fault load, " + std::to_string(radix) + "^" +
                       std::to_string(dims) + " mesh (mean over 40 runs each)");
  TablePrinter t({"faults", "router", "success %", "mean steps", "mean detours",
                  "mean backtracks"});
  for (const int faults : {4, 10, 18, 28}) {
    for (const ModeRow row :
         {ModeRow{"lgfi (paper)", InfoMode::kLimitedGlobal, false},
          ModeRow{"pcs-no-info", InfoMode::kNone, false},
          ModeRow{"global-instant", InfoMode::kInstantGlobal, false},
          ModeRow{"global-delayed", InfoMode::kDelayedGlobal, false},
          ModeRow{"lgfi+persistent", InfoMode::kLimitedGlobal, true}}) {
      MetricSet m;
      parallel_replicate(
          40, 0xE9 + static_cast<uint64_t>(faults * 10), m,
          [&](Rng& rng, MetricSet& out) {
            const MeshTopology mesh(dims, radix);
            FaultSchedule sch;
            // Half the faults before the route, half arriving while it runs.
            const auto batch1 = random_fault_placement(mesh, faults / 2, rng);
            for (const auto& c : batch1) sch.add_fail(0, c);
            Rng rng2 = rng.fork(1);
            const auto batch2 =
                random_fault_placement(mesh, faults - faults / 2, rng2, {}, batch1);
            for (const auto& c : batch2) sch.add_fail(50, c);

            DynamicSimulationOptions opts;
            opts.info_mode = row.mode;
            opts.persistent_marks = row.persistent;
            DynamicSimulation sim(mesh, sch, opts);
            for (int i = 0; i < 40; ++i) sim.step();
            Rng rng3 = rng.fork(2);
            const auto pair =
                random_enabled_pair(mesh, sim.model().field(), rng3, radix);
            const int id = sim.launch_message(pair.source, pair.dest);
            sim.run(8000);
            const auto& msg = sim.message(id);
            out.add("success", msg.delivered ? 100.0 : 0.0);
            if (msg.delivered) {
              out.add("steps", msg.header.total_steps());
              out.add("detours", static_cast<double>(msg.detours()));
              out.add("backtracks", msg.header.backtrack_steps());
            }
          });
      t.add_row({TablePrinter::num(faults), row.name, TablePrinter::num(m.mean("success"), 0),
                 TablePrinter::num(m.mean("steps"), 1), TablePrinter::num(m.mean("detours"), 2),
                 TablePrinter::num(m.mean("backtracks"), 2)});
    }
  }
  t.print(os);
}

}  // namespace

int main() {
  degradation_sweep(2, 16, std::cout);
  degradation_sweep(3, 10, std::cout);

  print_banner(std::cout, "E9: dimension-order baseline collapses under the same loads (static)");
  TablePrinter d({"faults", "e-cube success %", "lgfi success %"});
  for (const int faults : {4, 10, 18, 28}) {
    MetricSet m;
    parallel_replicate(60, 0xD0 + static_cast<uint64_t>(faults), m,
                       [&](Rng& rng, MetricSet& out) {
                         const MeshTopology mesh(2, 16);
                         Network net(mesh, {});
                         for (const auto& c : random_fault_placement(mesh, faults, rng))
                           net.inject_fault(c);
                         net.stabilize();
                         const auto pair =
                             random_enabled_pair(mesh, net.field(), rng, 16);
                         DimensionOrderRouter ecube;
                         const auto r1 =
                             run_static_route(net.context(), ecube, pair.source, pair.dest);
                         out.add("ecube", r1.delivered ? 100.0 : 0.0);
                         const auto r2 = net.route(pair.source, pair.dest);
                         out.add("lgfi", r2.delivered ? 100.0 : 0.0);
                       });
    d.add_row({TablePrinter::num(faults), TablePrinter::num(m.mean("ecube"), 0),
               TablePrinter::num(m.mean("lgfi"), 0)});
  }
  d.print(std::cout);
  std::cout
      << "  shape check: lgfi tracks the oracle closely, beats info-free PCS on steps and\n"
         "  backtracks, and degrades smoothly as faults accumulate — dimension-order\n"
         "  routing, with no adaptivity, collapses instead.\n";
  return 0;
}
