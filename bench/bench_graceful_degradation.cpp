// E9 — the paper's headline empirical claim: "the performance of routing
// process degrades gracefully in such a dynamic system", and the value of
// the limited-global information against the paper's comparison points:
// the information-free backtracking PCS, the instant-global oracle tables,
// the broadcast-delayed global tables, and dimension-order routing.
// Also ablates the persistent-marks header variant (DESIGN.md §6.7).
//
// Every row is one ExperimentRunner config: the comparison points differ
// only in the router / info_mode / persistent_marks overrides.

#include <iostream>

#include "src/core/experiment_runner.h"
#include "src/core/scenario.h"
#include "src/routing/route_walker.h"
#include "src/routing/router_registry.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

namespace {

struct ModeRow {
  const char* label;
  const char* overrides;  ///< config tokens selecting the comparison point
};

void degradation_sweep(int dims, int radix, std::ostream& os) {
  print_banner(os, "E9: delivery cost vs fault load, " + std::to_string(radix) + "^" +
                       std::to_string(dims) + " mesh (mean over 40 runs each)");
  TablePrinter t({"faults", "router", "success %", "mean steps", "mean detours",
                  "mean backtracks"});
  for (const int faults : {4, 10, 18, 28}) {
    for (const ModeRow row :
         {ModeRow{"lgfi (paper)", "router=fault_info"},
          ModeRow{"pcs-no-info", "router=no_info"},
          ModeRow{"global-instant", "router=global_table"},
          ModeRow{"global-delayed", "router=global_table info_mode=delayed_global"},
          ModeRow{"lgfi+persistent", "router=fault_info persistent_marks=true"}}) {
      Config cfg = experiment_config();
      // Two fault batches: half before the route starts, half at step 50
      // while it runs.
      cfg.set_int("mesh_dims", dims);
      cfg.set_int("radix", radix);
      cfg.parse_string("mode=dynamic batches=2 fault_interval=50 warmup_steps=40 "
                       "max_steps=8000 routes=1");
      cfg.set_int("faults", faults / 2);
      cfg.set_int("min_pair_distance", radix);
      cfg.set_int("replications", 40);
      cfg.set_int("seed", 0xE9 + faults * 10);
      cfg.parse_string(row.overrides);

      const MetricSet m = ExperimentRunner(cfg).run().metrics;
      t.add_row({TablePrinter::num(faults), row.label,
                 TablePrinter::num(100.0 * m.mean("delivered"), 0),
                 TablePrinter::num(m.mean("steps"), 1), TablePrinter::num(m.mean("detours"), 2),
                 TablePrinter::num(m.mean("backtracks"), 2)});
    }
  }
  t.print(os);
}

}  // namespace

int main() {
  degradation_sweep(2, 16, std::cout);
  degradation_sweep(3, 10, std::cout);

  print_banner(std::cout, "E9: dimension-order baseline collapses under the same loads (static)");
  TablePrinter d({"faults", "e-cube success %", "lgfi success %"});
  for (const int faults : {4, 10, 18, 28}) {
    Config cfg = experiment_config();
    cfg.parse_string("mesh_dims=2 radix=16 min_pair_distance=16 replications=60");
    cfg.set_int("faults", faults);
    cfg.set_int("seed", 0xD0 + faults);
    const auto res = ExperimentRunner(cfg).run_each_static(
        [](ExperimentRunner::StaticEnv& env, Rng& rng, MetricSet& out) {
          const auto pair = random_enabled_pair(env.mesh(), env.net->field(), rng, 16);
          const auto ecube = make_router("dimension_order");
          const auto r1 =
              run_static_route(env.net->context(), *ecube, pair.source, pair.dest);
          out.add("ecube", r1.delivered ? 100.0 : 0.0);
          const auto r2 = env.net->route(pair.source, pair.dest);
          out.add("lgfi", r2.delivered ? 100.0 : 0.0);
        });
    d.add_row({TablePrinter::num(faults), TablePrinter::num(res.metrics.mean("ecube"), 0),
               TablePrinter::num(res.metrics.mean("lgfi"), 0)});
  }
  d.print(std::cout);
  std::cout
      << "  shape check: lgfi tracks the oracle closely, beats info-free PCS on steps and\n"
         "  backtracks, and degrades smoothly as faults accumulate — dimension-order\n"
         "  routing, with no adaptivity, collapses instead.\n";
  return 0;
}
