// E5 / E12 — the Section 5 model quantities: convergence rounds a_i, b_i,
// c_i versus block size, mesh size and dimensionality (Table 1's notation
// audit), and the minimum fault interval d_i for which the constructions
// stabilize before the next fault under different lambda.

#include <iostream>

#include "src/core/experiment_runner.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main() {
  print_banner(std::cout,
               "E5: convergence rounds vs dimension and cluster size (random clusters)");
  TablePrinter t({"mesh", "cluster", "e_max", "a_i", "b_i", "c_i", "msgs/node"});
  struct Row {
    int dims, radix, cluster;
  };
  for (const Row row : {Row{2, 16, 4}, Row{2, 16, 9}, Row{2, 16, 16},
                        Row{3, 10, 8}, Row{3, 10, 18}, Row{3, 10, 27},
                        Row{4, 6, 8}, Row{4, 6, 16}}) {
    Config cfg = experiment_config();
    cfg.set_int("mesh_dims", row.dims);
    cfg.set_int("radix", row.radix);
    cfg.set_str("fault_model", "clustered");
    cfg.set_int("faults", row.cluster);
    cfg.set_int("replications", 12);
    cfg.set_int("max_rounds", 100000);
    cfg.set_int("seed", 0xE5 + row.dims * 100 + row.cluster);

    const auto res = ExperimentRunner(cfg).run_each_static(
        [](ExperimentRunner::StaticEnv& env, Rng&, MetricSet& out) {
          out.add("a", env.rounds.labeling);
          out.add("b", env.rounds.identification);
          out.add("c", env.rounds.boundary);
          out.add("emax", max_block_extent(env.net->blocks()));
          out.add("msgs", static_cast<double>(env.net->model().messages_sent()) /
                              static_cast<double>(env.mesh().node_count()));
        });
    const MetricSet& m = res.metrics;
    t.add_row({std::to_string(row.radix) + "^" + std::to_string(row.dims),
               TablePrinter::num(row.cluster), TablePrinter::num(m.mean("emax"), 1),
               TablePrinter::num(m.mean("a"), 1), TablePrinter::num(m.mean("b"), 1),
               TablePrinter::num(m.mean("c"), 1), TablePrinter::num(m.mean("msgs"), 2)});
  }
  t.print(std::cout);
  std::cout << "  shape check: a_i tracks e_max; b_i and c_i stay O(mesh extent) — the\n"
               "  information is collected and distributed quickly (Section 7's claim).\n";

  print_banner(std::cout, "E5: minimum interval d_i for stabilization before the next fault");
  TablePrinter l({"lambda", "rounds to stabilize (3-D, e=3)", "min d_i (steps)"});
  for (const int lambda : {1, 2, 4, 8}) {
    Config cfg = experiment_config();
    cfg.parse_string("mesh_dims=3 radix=10 fault_model=box fault_box=4:6,4:6,4:6");
    Rng rng(static_cast<uint64_t>(cfg.get_int("seed")));
    const auto env = ExperimentRunner(cfg).build_static(rng);
    const int steps = (env.rounds.total + lambda - 1) / lambda;
    l.add_row({TablePrinter::num(lambda), TablePrinter::num(env.rounds.total),
               TablePrinter::num(steps)});
  }
  l.print(std::cout);
  std::cout << "  (the paper assumes d_i > (a_i + b_i + c_i) / lambda; these rows give the\n"
               "   concrete thresholds for this workload)\n";
  return 0;
}
