// E5 / E12 — the Section 5 model quantities: convergence rounds a_i, b_i,
// c_i versus block size, mesh size and dimensionality (Table 1's notation
// audit), and the minimum fault interval d_i for which the constructions
// stabilize before the next fault under different lambda.

#include <iostream>

#include "src/core/experiment.h"
#include "src/core/network.h"
#include "src/sim/fault_schedule.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main() {
  print_banner(std::cout,
               "E5: convergence rounds vs dimension and cluster size (random clusters)");
  TablePrinter t({"mesh", "cluster", "e_max", "a_i", "b_i", "c_i", "msgs/node"});
  struct Config {
    int dims, radix, cluster;
  };
  for (const Config cfg : {Config{2, 16, 4}, Config{2, 16, 9}, Config{2, 16, 16},
                           Config{3, 10, 8}, Config{3, 10, 18}, Config{3, 10, 27},
                           Config{4, 6, 8}, Config{4, 6, 16}}) {
    MetricSet m;
    parallel_replicate(12, 0xE5 + static_cast<uint64_t>(cfg.dims * 100 + cfg.cluster), m,
                       [&](Rng& rng, MetricSet& out) {
                         const MeshTopology mesh(cfg.dims, cfg.radix);
                         Network net(mesh);
                         for (const auto& c : clustered_fault_placement(mesh, cfg.cluster, rng))
                           net.inject_fault(c);
                         const auto rounds = net.stabilize(100000);
                         out.add("a", rounds.labeling);
                         out.add("b", rounds.identification);
                         out.add("c", rounds.boundary);
                         out.add("emax", max_block_extent(net.blocks()));
                         out.add("msgs", static_cast<double>(net.model().messages_sent()) /
                                             static_cast<double>(mesh.node_count()));
                       });
    t.add_row({std::to_string(cfg.radix) + "^" + std::to_string(cfg.dims),
               TablePrinter::num(cfg.cluster), TablePrinter::num(m.mean("emax"), 1),
               TablePrinter::num(m.mean("a"), 1), TablePrinter::num(m.mean("b"), 1),
               TablePrinter::num(m.mean("c"), 1), TablePrinter::num(m.mean("msgs"), 2)});
  }
  t.print(std::cout);
  std::cout << "  shape check: a_i tracks e_max; b_i and c_i stay O(mesh extent) — the\n"
               "  information is collected and distributed quickly (Section 7's claim).\n";

  print_banner(std::cout, "E5: minimum interval d_i for stabilization before the next fault");
  TablePrinter l({"lambda", "rounds to stabilize (3-D, e=3)", "min d_i (steps)"});
  for (const int lambda : {1, 2, 4, 8}) {
    const MeshTopology mesh(3, 10);
    Network net(mesh);
    for (const auto& c : box_fault_placement(mesh, Box(Coord{4, 4, 4}, Coord{6, 6, 6})))
      net.inject_fault(c);
    const auto rounds = net.stabilize();
    const int steps = (rounds.total + lambda - 1) / lambda;
    l.add_row({TablePrinter::num(lambda), TablePrinter::num(rounds.total),
               TablePrinter::num(steps)});
  }
  l.print(std::cout);
  std::cout << "  (the paper assumes d_i > (a_i + b_i + c_i) / lambda; these rows give the\n"
               "   concrete thresholds for this workload)\n";
  return 0;
}
