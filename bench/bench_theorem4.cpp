// E7 — Theorem 4: for a safe source at distance D, the routing ends within
// k intervals, k <= max{ l | D + t - t_p - sum (d_i - 2a_i - 2e_max) > 0 },
// with at most k * (e_max + a_max) detours.  Randomized dynamic schedules;
// the bench reports the measured detour distribution against the bound.

#include <iostream>

#include "src/core/dynamic_simulation.h"
#include "src/core/scenario.h"
#include "src/fault/safety.h"
#include "src/sim/statistics.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main() {
  print_banner(std::cout, "E7 / Theorem 4: detours vs bound from safe sources (dynamic faults)");

  TablePrinter t({"mesh", "interval d", "runs", "delivered", "mean detours", "max detours",
                  "mean bound (extra steps)", "violations"});
  int total_violations = 0;
  struct Config {
    int dims, radix;
    long long interval;
  };
  for (const Config cfg :
       {Config{2, 16, 50}, Config{2, 16, 80}, Config{3, 10, 60}, Config{3, 10, 90}}) {
    Rng rng(0xE7 + static_cast<uint64_t>(cfg.dims * 1000 + cfg.interval));
    RunningStats detours, bounds;
    int runs = 0, delivered = 0, violations = 0;
    for (int trial = 0; trial < 60; ++trial) {
      Rng tr = rng.fork(static_cast<uint64_t>(trial));
      const MeshTopology mesh(cfg.dims, cfg.radix);
      FaultSchedule sch;
      for (int b = 0; b < 3; ++b) {
        const auto faults = clustered_fault_placement(mesh, 3, tr);
        for (const auto& c : faults) sch.add_fail(b * cfg.interval, c);
      }
      DynamicSimulation sim(mesh, sch);
      for (int i = 0; i < 35; ++i) sim.step();  // first batch converges; p >= 1
      const auto pair = random_enabled_pair(mesh, sim.model().field(), tr, cfg.radix);
      if (!is_safe_source(block_boxes(sim.model().field()), pair.source, pair.dest)) continue;
      const int id = sim.launch_message(pair.source, pair.dest);
      sim.run(8000);
      const auto& msg = sim.message(id);
      ++runs;
      if (!msg.delivered) continue;
      ++delivered;
      const auto tl = sim.timeline(msg.start_step);
      const auto bound = theorem4_bound(tl, msg.initial_distance);
      detours.add(static_cast<double>(msg.detours()));
      bounds.add(static_cast<double>(bound.max_extra_steps));
      if (msg.detours() > bound.max_extra_steps) ++violations;
    }
    total_violations += violations;
    t.add_row({std::to_string(cfg.radix) + "^" + std::to_string(cfg.dims),
               TablePrinter::num(cfg.interval), TablePrinter::num(runs),
               TablePrinter::num(delivered), TablePrinter::num(detours.mean(), 2),
               TablePrinter::num(detours.max(), 0), TablePrinter::num(bounds.mean(), 1),
               TablePrinter::num(violations)});
  }
  t.print(std::cout);
  std::cout << "  shape check: random faults rarely cut the route — measured extra steps sit\n"
               "  far below the 2*k*(e_max+a_max) extra-step bound (one paper 'detour' = one\n"
               "  deviation pair = two extra steps; see detour_bounds.h).\n";

  print_banner(std::cout, "E7: adversarial ambush — a wide block cuts ALL minimal paths mid-flight");
  // A straight-line route up column x=8; a block spanning x in [8-w, 8+w]
  // materializes across it while the message is inside the future dangerous
  // prism, forcing a genuine detour of ~2(w+1) steps.  Wider blocks (larger
  // e_max) must show proportionally larger measured detours, all within the
  // k*(e_max+a_max) bound.
  TablePrinter a({"half-width w", "e_max", "D", "extra steps", "bound k",
                  "bound extra steps", "holds"});
  int ambush_violations = 0;
  for (int w = 1; w <= 5; ++w) {
    const MeshTopology mesh(2, 18);
    FaultSchedule sch;
    for (const auto& c :
         box_fault_placement(mesh, Box(Coord{8 - w, 8}, Coord{8 + w, 9})))
      sch.add_fail(4, c);
    DynamicSimulation sim(mesh, sch);
    const int id = sim.launch_message(Coord{8, 1}, Coord{8, 16});
    sim.run(8000);
    const auto& msg = sim.message(id);
    if (!msg.delivered) continue;
    const auto tl = sim.timeline(msg.start_step);
    const auto bound = theorem4_bound(tl, msg.initial_distance);
    const bool holds = msg.detours() <= bound.max_extra_steps;
    if (!holds) ++ambush_violations;
    a.add_row({TablePrinter::num(w), TablePrinter::num(tl.e_max),
               TablePrinter::num(msg.initial_distance), TablePrinter::num(msg.detours()),
               TablePrinter::num(bound.k), TablePrinter::num(bound.max_extra_steps),
               holds ? "yes" : "NO"});
  }
  a.print(std::cout);

  total_violations += ambush_violations;
  std::cout << "  RESULT: " << (total_violations == 0 ? "Theorem 4 bound holds" : "VIOLATED")
            << "\n";
  return total_violations == 0 ? 0 : 1;
}
