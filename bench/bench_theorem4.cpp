// E7 — Theorem 4: for a safe source at distance D, the routing ends within
// k intervals, k <= max{ l | D + t - t_p - sum (d_i - 2a_i - 2e_max) > 0 },
// with at most k * (e_max + a_max) detours.  Randomized dynamic schedules;
// the bench reports the measured detour distribution against the bound.

#include <iostream>

#include "src/core/experiment_runner.h"
#include "src/core/scenario.h"
#include "src/fault/safety.h"
#include "src/sim/statistics.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main() {
  print_banner(std::cout, "E7 / Theorem 4: detours vs bound from safe sources (dynamic faults)");

  TablePrinter t({"mesh", "interval d", "runs", "delivered", "mean detours", "max detours",
                  "mean bound (extra steps)", "violations"});
  int total_violations = 0;
  struct Row {
    int dims, radix;
    long long interval;
  };
  for (const Row row :
       {Row{2, 16, 50}, Row{2, 16, 80}, Row{3, 10, 60}, Row{3, 10, 90}}) {
    Config cfg = experiment_config();
    cfg.parse_string("mode=dynamic fault_model=clustered faults=3 batches=3 "
                     "warmup_steps=35 max_steps=8000 replications=60");
    cfg.set_int("mesh_dims", row.dims);
    cfg.set_int("radix", row.radix);
    cfg.set_int("fault_interval", row.interval);
    cfg.set_int("min_pair_distance", row.radix);
    cfg.set_int("seed", 0xE7 + row.dims * 1000 + row.interval);
    ExperimentRunner runner(cfg);
    const auto res = runner.run_each([&runner, &row](Rng& rng, MetricSet& out) {
      auto env = runner.build_dynamic(rng);
      const auto pair =
          random_enabled_pair(*env.mesh, env.sim->model().field(), rng, row.radix);
      if (!is_safe_source(block_boxes(env.sim->model().field()), pair.source, pair.dest))
        return;
      const int id = env.sim->launch_message(pair.source, pair.dest);
      env.sim->run(8000);
      const auto& msg = env.sim->message(id);
      out.add("runs", 1.0);
      if (!msg.delivered) return;
      const auto tl = env.sim->timeline(msg.start_step);
      const auto bound = theorem4_bound(tl, msg.initial_distance);
      out.add("detours", static_cast<double>(msg.detours()));
      out.add("bounds", static_cast<double>(bound.max_extra_steps));
      out.add("violations", msg.detours() > bound.max_extra_steps ? 1.0 : 0.0);
    });
    const MetricSet& m = res.metrics;
    const int runs = m.has("runs") ? static_cast<int>(m.stats("runs").count()) : 0;
    const int delivered = m.has("detours") ? static_cast<int>(m.stats("detours").count()) : 0;
    const int violations =
        m.has("violations") ? static_cast<int>(m.stats("violations").sum()) : 0;
    total_violations += violations;
    t.add_row({std::to_string(row.radix) + "^" + std::to_string(row.dims),
               TablePrinter::num(row.interval), TablePrinter::num(runs),
               TablePrinter::num(delivered), TablePrinter::num(m.mean("detours"), 2),
               TablePrinter::num(m.has("detours") ? m.stats("detours").max() : 0.0, 0),
               TablePrinter::num(m.mean("bounds"), 1), TablePrinter::num(violations)});
  }
  t.print(std::cout);
  std::cout << "  shape check: random faults rarely cut the route — measured extra steps sit\n"
               "  far below the 2*k*(e_max+a_max) extra-step bound (one paper 'detour' = one\n"
               "  deviation pair = two extra steps; see detour_bounds.h).\n";

  print_banner(std::cout,
               "E7: adversarial ambush — a wide block cuts ALL minimal paths mid-flight");
  // A straight-line route up column x=8; a block spanning x in [8-w, 8+w]
  // materializes across it while the message is inside the future dangerous
  // prism, forcing a genuine detour of ~2(w+1) steps.  Wider blocks (larger
  // e_max) must show proportionally larger measured detours, all within the
  // k*(e_max+a_max) bound.
  TablePrinter a({"half-width w", "e_max", "D", "extra steps", "bound k",
                  "bound extra steps", "holds"});
  int ambush_violations = 0;
  for (int w = 1; w <= 5; ++w) {
    const MeshTopology mesh(2, 18);
    FaultSchedule sch;
    for (const auto& c :
         box_fault_placement(mesh, Box(Coord{8 - w, 8}, Coord{8 + w, 9})))
      sch.add_fail(4, c);
    DynamicSimulation sim(mesh, sch);
    const int id = sim.launch_message(Coord{8, 1}, Coord{8, 16});
    sim.run(8000);
    const auto& msg = sim.message(id);
    if (!msg.delivered) continue;
    const auto tl = sim.timeline(msg.start_step);
    const auto bound = theorem4_bound(tl, msg.initial_distance);
    const bool holds = msg.detours() <= bound.max_extra_steps;
    if (!holds) ++ambush_violations;
    a.add_row({TablePrinter::num(w), TablePrinter::num(tl.e_max),
               TablePrinter::num(msg.initial_distance), TablePrinter::num(msg.detours()),
               TablePrinter::num(bound.k), TablePrinter::num(bound.max_extra_steps),
               holds ? "yes" : "NO"});
  }
  a.print(std::cout);

  total_violations += ambush_violations;
  std::cout << "  RESULT: " << (total_violations == 0 ? "Theorem 4 bound holds" : "VIOLATED")
            << "\n";
  return total_violations == 0 ? 0 : 1;
}
