// E13 — simulator performance (google-benchmark): cost of the building
// blocks (labeling rounds, full construction, static routes, dynamic steps)
// and thread-scaling of replicated sweeps — the HPC-facing numbers.

#include <benchmark/benchmark.h>

#include "src/core/experiment_runner.h"
#include "src/core/scenario.h"
#include "src/fault/labeling.h"
#include "src/sim/thread_pool.h"

namespace lgfi {
namespace {

void BM_LabelingStabilize(benchmark::State& state) {
  const int radix = static_cast<int>(state.range(0));
  const MeshTopology mesh(3, radix);
  Rng rng(1);
  const auto faults = clustered_fault_placement(mesh, 20, rng);
  for (auto _ : state) {
    StatusField f = make_field_with_faults(mesh, faults);
    LabelingResult r = stabilize_labeling(f);
    benchmark::DoNotOptimize(r.rounds);
  }
  state.SetItemsProcessed(state.iterations() * mesh.node_count());
}
BENCHMARK(BM_LabelingStabilize)->Arg(8)->Arg(12)->Arg(16);

void BM_FullConstruction(benchmark::State& state) {
  const int radix = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    const MeshTopology mesh(3, radix);
    Network net(mesh);
    Rng rng(2);
    const auto faults = clustered_fault_placement(mesh, 10, rng);
    state.ResumeTiming();
    for (const auto& c : faults) net.inject_fault(c);
    const auto rounds = net.stabilize();
    benchmark::DoNotOptimize(rounds.total);
  }
}
BENCHMARK(BM_FullConstruction)->Arg(8)->Arg(12);

void BM_StaticRoute(benchmark::State& state) {
  Config cfg = experiment_config();
  cfg.parse_string("mesh_dims=3 radix=10 fault_model=clustered faults=12 seed=3");
  Rng rng(3);
  const auto env = ExperimentRunner(cfg).build_static(rng);
  Rng pairs(4);
  for (auto _ : state) {
    const auto pair = random_enabled_pair(env.mesh(), env.net->field(), pairs, 10);
    const auto r = env.net->route(pair.source, pair.dest);
    benchmark::DoNotOptimize(r.total_steps);
  }
}
BENCHMARK(BM_StaticRoute);

void BM_ExperimentRunnerStatic(benchmark::State& state) {
  // Whole-facade cost: config -> build -> route -> merge, one replication.
  Config cfg = experiment_config();
  cfg.parse_string("mesh_dims=2 radix=12 fault_model=clustered faults=6 routes=4 "
                   "replications=1 threads=1");
  for (auto _ : state) {
    const auto res = ExperimentRunner(cfg).run();
    benchmark::DoNotOptimize(res.metrics.mean("delivered"));
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_ExperimentRunnerStatic);

void BM_DynamicStep(benchmark::State& state) {
  const MeshTopology mesh(3, 10);
  FaultSchedule sch;
  Rng rng(5);
  for (const auto& c : clustered_fault_placement(mesh, 10, rng)) sch.add_fail(0, c);
  DynamicSimulation sim(mesh, sch);
  sim.launch_message(Coord{0, 0, 0}, Coord{9, 9, 9});
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(state.iterations() * mesh.node_count());
}
BENCHMARK(BM_DynamicStep);

// --- active-set scale benches (DESIGN.md §14) -----------------------------
// The headline numbers of the active-set round engine: quiescent-step cost
// must be independent of node count (the full scan grows ~8x from 32^3 to
// 64^3), and steady-state steps/sec with localized faults must hold up at
// 100^3 = one million nodes.  bytes_per_node tracks the resident footprint
// of the per-node protocol state.

/// Steps the simulation until the information model reports three
/// consecutive quiet rounds (converged after the step-0 fault batch).
void converge(DynamicSimulation& sim) {
  int quiet = 0;
  for (int i = 0; i < 10000 && quiet < 3; ++i) {
    sim.step();
    quiet = sim.model().last_activity().any() ? 0 : quiet + 1;
  }
}

/// A small fault cluster near (4,4,4) — localized, radix-independent.
FaultSchedule localized_cluster() {
  FaultSchedule sch;
  for (const Coord& c : {Coord{4, 4, 4}, Coord{4, 5, 4}, Coord{5, 4, 4}, Coord{4, 4, 5},
                         Coord{5, 5, 4}, Coord{4, 5, 5}})
    sch.add_fail(0, c);
  return sch;
}

void BM_QuiescentStep(benchmark::State& state) {
  const int radix = static_cast<int>(state.range(0));
  const bool active = state.range(1) != 0;
  const MeshTopology mesh(3, radix);
  DynamicSimulationOptions opts;
  opts.model.active_set = active;
  DynamicSimulation sim(mesh, localized_cluster(), opts);
  converge(sim);
  const long long visits_before = sim.model().protocol_node_visits();
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(state.iterations());
  state.counters["visits_per_step"] =
      static_cast<double>(sim.model().protocol_node_visits() - visits_before) /
      static_cast<double>(state.iterations());
  state.counters["bytes_per_node"] = static_cast<double>(sim.model().memory_bytes()) /
                                     static_cast<double>(mesh.node_count());
}
// 100^3 full-scan omitted: it only re-measures the O(N) scaling already
// visible at 32 -> 64 and would dominate the perf job's wall clock.
BENCHMARK(BM_QuiescentStep)
    ->Args({32, 1})
    ->Args({64, 1})
    ->Args({100, 1})
    ->Args({32, 0})
    ->Args({64, 0});

void BM_StepsPerSec(benchmark::State& state) {
  const int radix = static_cast<int>(state.range(0));
  const MeshTopology mesh(3, radix);
  DynamicSimulation sim(mesh, localized_cluster());
  converge(sim);
  const Coord src{0, 0, 0};
  const Coord dst{radix - 1, radix - 1, radix - 1};
  int id = sim.launch_message(src, dst);
  for (auto _ : state) {
    sim.step();
    const auto& m = sim.message(id);
    if (m.delivered || m.unreachable || m.budget_exhausted)
      id = sim.launch_message(src, dst);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["steps_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["bytes_per_node"] = static_cast<double>(sim.model().memory_bytes()) /
                                     static_cast<double>(mesh.node_count());
}
BENCHMARK(BM_StepsPerSec)->Arg(64)->Arg(100);

void BM_FaultChurn(benchmark::State& state) {
  // Cost of a run under continuous lifecycle churn: fail/repair/transient
  // events drain from the timeline heap while the protocol re-converges
  // after every batch.  The heap makes the per-step fault phase O(log
  // events) instead of a scan over the whole schedule; bytes_per_node folds
  // in the pending-event heap and the link-fault mask.
  const MeshTopology mesh(3, 10);
  Config cfg = experiment_config();
  cfg.parse_string(
      "fault_model=lifecycle fault_arrival_rate=0.1 repair_rate=0.05 "
      "transient_frac=0.3");
  Rng rng(23);
  const FaultTimeline proto = build_lifecycle_timeline(mesh, cfg, rng, 400);
  for (auto _ : state) {
    FaultTimeline timeline = proto;  // the run consumes its copy
    DynamicSimulation sim(mesh, std::move(timeline));
    sim.launch_message(Coord{0, 0, 0}, Coord{9, 9, 9});
    sim.run(400);
    benchmark::DoNotOptimize(sim.now());
    state.counters["bytes_per_node"] = static_cast<double>(sim.memory_bytes()) /
                                       static_cast<double>(mesh.node_count());
  }
  state.SetItemsProcessed(state.iterations() * 400);
}
BENCHMARK(BM_FaultChurn);

void BM_ClosedLoopTraffic(benchmark::State& state) {
  // Whole-workload cost of the closed-loop request-reply protocol: one
  // replication of a windowed uniform workload, replies and pair
  // bookkeeping included (the injection-process axis's hot path).
  Config cfg = experiment_config();
  cfg.parse_string(
      "traffic=uniform injection=closed_loop window=4 injection_rate=0.2 "
      "mesh_dims=2 radix=8 faults=0 warmup_steps=20 measure_steps=100 "
      "routes=0 replications=1 threads=1 seed=16");
  for (auto _ : state) {
    const auto res = ExperimentRunner(cfg).run();
    benchmark::DoNotOptimize(res.metrics.mean("throughput"));
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_ClosedLoopTraffic);

void BM_ParallelReplication(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  ThreadPool pool(static_cast<unsigned>(threads));
  for (auto _ : state) {
    std::atomic<long long> total{0};
    pool.parallel_for(32, [&](int64_t rep) {
      const MeshTopology mesh(2, 12);
      Network net(mesh);
      Rng rng = Rng(7).fork(static_cast<uint64_t>(rep));
      for (const auto& c : clustered_fault_placement(mesh, 6, rng)) net.inject_fault(c);
      net.stabilize();
      const auto pair = random_enabled_pair(mesh, net.field(), rng, 8);
      const auto r = net.route(pair.source, pair.dest);
      total += r.total_steps;
    });
    benchmark::DoNotOptimize(total.load());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ParallelReplication)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace
}  // namespace lgfi
