// E13 — simulator performance (google-benchmark): cost of the building
// blocks (labeling rounds, full construction, static routes, dynamic steps)
// and thread-scaling of replicated sweeps — the HPC-facing numbers.

#include <benchmark/benchmark.h>

#include "src/core/experiment_runner.h"
#include "src/core/scenario.h"
#include "src/fault/labeling.h"
#include "src/sim/thread_pool.h"

namespace lgfi {
namespace {

void BM_LabelingStabilize(benchmark::State& state) {
  const int radix = static_cast<int>(state.range(0));
  const MeshTopology mesh(3, radix);
  Rng rng(1);
  const auto faults = clustered_fault_placement(mesh, 20, rng);
  for (auto _ : state) {
    StatusField f = make_field_with_faults(mesh, faults);
    LabelingResult r = stabilize_labeling(f);
    benchmark::DoNotOptimize(r.rounds);
  }
  state.SetItemsProcessed(state.iterations() * mesh.node_count());
}
BENCHMARK(BM_LabelingStabilize)->Arg(8)->Arg(12)->Arg(16);

void BM_FullConstruction(benchmark::State& state) {
  const int radix = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    const MeshTopology mesh(3, radix);
    Network net(mesh);
    Rng rng(2);
    const auto faults = clustered_fault_placement(mesh, 10, rng);
    state.ResumeTiming();
    for (const auto& c : faults) net.inject_fault(c);
    const auto rounds = net.stabilize();
    benchmark::DoNotOptimize(rounds.total);
  }
}
BENCHMARK(BM_FullConstruction)->Arg(8)->Arg(12);

void BM_StaticRoute(benchmark::State& state) {
  Config cfg = experiment_config();
  cfg.parse_string("mesh_dims=3 radix=10 fault_model=clustered faults=12 seed=3");
  Rng rng(3);
  const auto env = ExperimentRunner(cfg).build_static(rng);
  Rng pairs(4);
  for (auto _ : state) {
    const auto pair = random_enabled_pair(env.mesh(), env.net->field(), pairs, 10);
    const auto r = env.net->route(pair.source, pair.dest);
    benchmark::DoNotOptimize(r.total_steps);
  }
}
BENCHMARK(BM_StaticRoute);

void BM_ExperimentRunnerStatic(benchmark::State& state) {
  // Whole-facade cost: config -> build -> route -> merge, one replication.
  Config cfg = experiment_config();
  cfg.parse_string("mesh_dims=2 radix=12 fault_model=clustered faults=6 routes=4 "
                   "replications=1 threads=1");
  for (auto _ : state) {
    const auto res = ExperimentRunner(cfg).run();
    benchmark::DoNotOptimize(res.metrics.mean("delivered"));
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_ExperimentRunnerStatic);

void BM_DynamicStep(benchmark::State& state) {
  const MeshTopology mesh(3, 10);
  FaultSchedule sch;
  Rng rng(5);
  for (const auto& c : clustered_fault_placement(mesh, 10, rng)) sch.add_fail(0, c);
  DynamicSimulation sim(mesh, sch);
  sim.launch_message(Coord{0, 0, 0}, Coord{9, 9, 9});
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(state.iterations() * mesh.node_count());
}
BENCHMARK(BM_DynamicStep);

void BM_ParallelReplication(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  ThreadPool pool(static_cast<unsigned>(threads));
  for (auto _ : state) {
    std::atomic<long long> total{0};
    pool.parallel_for(32, [&](int64_t rep) {
      const MeshTopology mesh(2, 12);
      Network net(mesh);
      Rng rng = Rng(7).fork(static_cast<uint64_t>(rep));
      for (const auto& c : clustered_fault_placement(mesh, 6, rng)) net.inject_fault(c);
      net.stabilize();
      const auto pair = random_enabled_pair(mesh, net.field(), rng, 8);
      const auto r = net.route(pair.source, pair.dest);
      total += r.total_steps;
    });
    benchmark::DoNotOptimize(total.load());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ParallelReplication)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace
}  // namespace lgfi
