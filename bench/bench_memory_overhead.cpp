// E10 — the paper's resource claims: "our approach reduces the memory
// requirement to store fault information in the whole network", "only those
// affected nodes need to update fault information", and "reduces oscillation
// update caused by inconsistent information".  Compares the limited-global
// placement footprint and update traffic against per-node global routing
// tables, and measures churn under a fault/recovery oscillation.

#include <iostream>

#include "src/core/experiment_runner.h"
#include "src/core/node_process.h"
#include "src/sim/fault_schedule.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main() {
  print_banner(std::cout, "E10: information placement footprint (3-D, 10^3 = 1000 nodes)");
  TablePrinter t({"faults", "blocks", "lgfi nodes w/ info", "% of mesh", "lgfi entries",
                  "global entries (N*B)", "saving"});
  for (const int faults : {2, 6, 12, 24}) {
    Config cfg = experiment_config();
    cfg.parse_string("mesh_dims=3 radix=10 replications=16");
    cfg.set_int("faults", faults);
    cfg.set_int("seed", 0x10A + faults);
    const auto res = ExperimentRunner(cfg).run_each_static(
        [](ExperimentRunner::StaticEnv& env, Rng&, MetricSet& out) {
          const auto f = placement_footprint(env.net->model());
          const double blocks = static_cast<double>(env.net->blocks().size());
          out.add("blocks", blocks);
          out.add("nodes", static_cast<double>(f.nodes_with_info));
          out.add("frac", 100.0 * f.fraction_of_mesh());
          out.add("entries", static_cast<double>(f.total_entries));
          out.add("global", static_cast<double>(env.mesh().node_count()) * blocks);
        });
    const MetricSet& m = res.metrics;
    const double saving = m.mean("global") > 0 ? m.mean("global") / m.mean("entries") : 0;
    t.add_row({TablePrinter::num(faults), TablePrinter::num(m.mean("blocks"), 1),
               TablePrinter::num(m.mean("nodes"), 0), TablePrinter::num(m.mean("frac"), 1),
               TablePrinter::num(m.mean("entries"), 0), TablePrinter::num(m.mean("global"), 0),
               TablePrinter::num(saving, 1) + "x"});
  }
  t.print(std::cout);

  print_banner(std::cout, "E10: update traffic per fault occurrence (messages)");
  TablePrinter u({"mesh", "lgfi msgs/fault", "global broadcast msgs/fault (= N)"});
  for (const int radix : {8, 10, 12}) {
    Config cfg = experiment_config();
    cfg.parse_string("mesh_dims=3 faults=0 replications=8");
    cfg.set_int("radix", radix);
    cfg.set_int("seed", 0x10B + radix);
    const auto res = ExperimentRunner(cfg).run_each_static(
        [](ExperimentRunner::StaticEnv& env, Rng& rng, MetricSet& out) {
          const Topology& mesh = env.mesh();
          Network& net = *env.net;
          long long prev = 0;
          const int events = 4;
          for (int e = 0; e < events; ++e) {
            const auto f = random_fault_placement(mesh, 1, rng);
            if (f.empty()) continue;
            net.inject_fault(f[0]);
            net.stabilize();
            const long long now_msgs = net.model().messages_sent();
            out.add("msgs", static_cast<double>(now_msgs - prev));
            prev = now_msgs;
          }
          out.add("n", static_cast<double>(mesh.node_count()));
        });
    u.add_row({std::to_string(radix) + "^3", TablePrinter::num(res.metrics.mean("msgs"), 0),
               TablePrinter::num(res.metrics.mean("n"), 0)});
  }
  u.print(std::cout);

  print_banner(std::cout, "E10: oscillation — one node failing/recovering repeatedly (2-D 12^2)");
  {
    Config cfg = experiment_config();
    cfg.parse_string("mesh_dims=2 radix=12 faults=0");
    Rng rng(static_cast<uint64_t>(cfg.get_int("seed")));
    auto env = ExperimentRunner(cfg).build_static(rng);
    Network& net = *env.net;
    const Coord victim{6, 6};
    TablePrinter o({"cycle", "entries after fail", "entries after recover", "rounds to settle"});
    for (int cycle = 1; cycle <= 4; ++cycle) {
      net.inject_fault(victim);
      net.stabilize();
      const long long after_fail = net.model().info().total_entries();
      net.recover(victim);
      const auto rounds = net.stabilize();
      const long long after_recover = net.model().info().total_entries();
      o.add_row({TablePrinter::num(cycle), TablePrinter::num(after_fail),
                 TablePrinter::num(after_recover), TablePrinter::num(rounds.total)});
    }
    o.print(std::cout);
    std::cout << "  shape check: the placement returns to the same footprint every cycle and\n"
                 "  recovery leaves zero entries — updates touch only the affected region,\n"
                 "  with no residual oscillation.\n";
  }
  return 0;
}
